
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table1_commands.cc" "bench/CMakeFiles/bench_table1_commands.dir/bench_table1_commands.cc.o" "gcc" "bench/CMakeFiles/bench_table1_commands.dir/bench_table1_commands.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/securedimm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sdimm/CMakeFiles/securedimm_sdimm.dir/DependInfo.cmake"
  "/root/repo/build/src/oram/CMakeFiles/securedimm_oram.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/securedimm_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/securedimm_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/securedimm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/analytic/CMakeFiles/securedimm_analytic.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/securedimm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
