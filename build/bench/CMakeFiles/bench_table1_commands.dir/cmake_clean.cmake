file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_commands.dir/bench_table1_commands.cc.o"
  "CMakeFiles/bench_table1_commands.dir/bench_table1_commands.cc.o.d"
  "bench_table1_commands"
  "bench_table1_commands.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_commands.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
