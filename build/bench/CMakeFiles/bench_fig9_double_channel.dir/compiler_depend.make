# Empty compiler generated dependencies file for bench_fig9_double_channel.
# This may be replaced when dependencies are built.
