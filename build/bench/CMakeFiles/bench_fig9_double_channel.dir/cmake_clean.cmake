file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_double_channel.dir/bench_fig9_double_channel.cc.o"
  "CMakeFiles/bench_fig9_double_channel.dir/bench_fig9_double_channel.cc.o.d"
  "bench_fig9_double_channel"
  "bench_fig9_double_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_double_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
