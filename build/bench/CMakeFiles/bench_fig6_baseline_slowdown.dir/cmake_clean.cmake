file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_baseline_slowdown.dir/bench_fig6_baseline_slowdown.cc.o"
  "CMakeFiles/bench_fig6_baseline_slowdown.dir/bench_fig6_baseline_slowdown.cc.o.d"
  "bench_fig6_baseline_slowdown"
  "bench_fig6_baseline_slowdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_baseline_slowdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
