# Empty dependencies file for bench_coresident.
# This may be replaced when dependencies are built.
