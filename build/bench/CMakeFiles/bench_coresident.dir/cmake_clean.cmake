file(REMOVE_RECURSE
  "CMakeFiles/bench_coresident.dir/bench_coresident.cc.o"
  "CMakeFiles/bench_coresident.dir/bench_coresident.cc.o.d"
  "bench_coresident"
  "bench_coresident.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_coresident.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
