file(REMOVE_RECURSE
  "CMakeFiles/bench_lowpower.dir/bench_lowpower.cc.o"
  "CMakeFiles/bench_lowpower.dir/bench_lowpower.cc.o.d"
  "bench_lowpower"
  "bench_lowpower.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lowpower.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
