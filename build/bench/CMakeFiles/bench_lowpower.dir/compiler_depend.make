# Empty compiler generated dependencies file for bench_lowpower.
# This may be replaced when dependencies are built.
