# Empty dependencies file for bench_offdimm_traffic.
# This may be replaced when dependencies are built.
