file(REMOVE_RECURSE
  "CMakeFiles/bench_offdimm_traffic.dir/bench_offdimm_traffic.cc.o"
  "CMakeFiles/bench_offdimm_traffic.dir/bench_offdimm_traffic.cc.o.d"
  "bench_offdimm_traffic"
  "bench_offdimm_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_offdimm_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
