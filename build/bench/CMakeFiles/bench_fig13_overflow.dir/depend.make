# Empty dependencies file for bench_fig13_overflow.
# This may be replaced when dependencies are built.
