file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_overflow.dir/bench_fig13_overflow.cc.o"
  "CMakeFiles/bench_fig13_overflow.dir/bench_fig13_overflow.cc.o.d"
  "bench_fig13_overflow"
  "bench_fig13_overflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_overflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
