file(REMOVE_RECURSE
  "CMakeFiles/securedimm_trace.dir/cache.cc.o"
  "CMakeFiles/securedimm_trace.dir/cache.cc.o.d"
  "CMakeFiles/securedimm_trace.dir/core_model.cc.o"
  "CMakeFiles/securedimm_trace.dir/core_model.cc.o.d"
  "CMakeFiles/securedimm_trace.dir/trace_io.cc.o"
  "CMakeFiles/securedimm_trace.dir/trace_io.cc.o.d"
  "CMakeFiles/securedimm_trace.dir/workload.cc.o"
  "CMakeFiles/securedimm_trace.dir/workload.cc.o.d"
  "libsecuredimm_trace.a"
  "libsecuredimm_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/securedimm_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
