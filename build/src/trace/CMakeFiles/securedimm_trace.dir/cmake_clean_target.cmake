file(REMOVE_RECURSE
  "libsecuredimm_trace.a"
)
