# Empty compiler generated dependencies file for securedimm_trace.
# This may be replaced when dependencies are built.
