# Empty compiler generated dependencies file for securedimm_sdimm.
# This may be replaced when dependencies are built.
