
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sdimm/indep_split_oram.cc" "src/sdimm/CMakeFiles/securedimm_sdimm.dir/indep_split_oram.cc.o" "gcc" "src/sdimm/CMakeFiles/securedimm_sdimm.dir/indep_split_oram.cc.o.d"
  "/root/repo/src/sdimm/independent_backend.cc" "src/sdimm/CMakeFiles/securedimm_sdimm.dir/independent_backend.cc.o" "gcc" "src/sdimm/CMakeFiles/securedimm_sdimm.dir/independent_backend.cc.o.d"
  "/root/repo/src/sdimm/independent_oram.cc" "src/sdimm/CMakeFiles/securedimm_sdimm.dir/independent_oram.cc.o" "gcc" "src/sdimm/CMakeFiles/securedimm_sdimm.dir/independent_oram.cc.o.d"
  "/root/repo/src/sdimm/link_session.cc" "src/sdimm/CMakeFiles/securedimm_sdimm.dir/link_session.cc.o" "gcc" "src/sdimm/CMakeFiles/securedimm_sdimm.dir/link_session.cc.o.d"
  "/root/repo/src/sdimm/path_executor.cc" "src/sdimm/CMakeFiles/securedimm_sdimm.dir/path_executor.cc.o" "gcc" "src/sdimm/CMakeFiles/securedimm_sdimm.dir/path_executor.cc.o.d"
  "/root/repo/src/sdimm/sdimm_command.cc" "src/sdimm/CMakeFiles/securedimm_sdimm.dir/sdimm_command.cc.o" "gcc" "src/sdimm/CMakeFiles/securedimm_sdimm.dir/sdimm_command.cc.o.d"
  "/root/repo/src/sdimm/secure_buffer.cc" "src/sdimm/CMakeFiles/securedimm_sdimm.dir/secure_buffer.cc.o" "gcc" "src/sdimm/CMakeFiles/securedimm_sdimm.dir/secure_buffer.cc.o.d"
  "/root/repo/src/sdimm/split_backend.cc" "src/sdimm/CMakeFiles/securedimm_sdimm.dir/split_backend.cc.o" "gcc" "src/sdimm/CMakeFiles/securedimm_sdimm.dir/split_backend.cc.o.d"
  "/root/repo/src/sdimm/split_engine.cc" "src/sdimm/CMakeFiles/securedimm_sdimm.dir/split_engine.cc.o" "gcc" "src/sdimm/CMakeFiles/securedimm_sdimm.dir/split_engine.cc.o.d"
  "/root/repo/src/sdimm/split_oram.cc" "src/sdimm/CMakeFiles/securedimm_sdimm.dir/split_oram.cc.o" "gcc" "src/sdimm/CMakeFiles/securedimm_sdimm.dir/split_oram.cc.o.d"
  "/root/repo/src/sdimm/transfer_queue.cc" "src/sdimm/CMakeFiles/securedimm_sdimm.dir/transfer_queue.cc.o" "gcc" "src/sdimm/CMakeFiles/securedimm_sdimm.dir/transfer_queue.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/securedimm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/securedimm_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/securedimm_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/oram/CMakeFiles/securedimm_oram.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/securedimm_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
