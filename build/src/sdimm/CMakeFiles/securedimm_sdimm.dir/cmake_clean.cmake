file(REMOVE_RECURSE
  "CMakeFiles/securedimm_sdimm.dir/indep_split_oram.cc.o"
  "CMakeFiles/securedimm_sdimm.dir/indep_split_oram.cc.o.d"
  "CMakeFiles/securedimm_sdimm.dir/independent_backend.cc.o"
  "CMakeFiles/securedimm_sdimm.dir/independent_backend.cc.o.d"
  "CMakeFiles/securedimm_sdimm.dir/independent_oram.cc.o"
  "CMakeFiles/securedimm_sdimm.dir/independent_oram.cc.o.d"
  "CMakeFiles/securedimm_sdimm.dir/link_session.cc.o"
  "CMakeFiles/securedimm_sdimm.dir/link_session.cc.o.d"
  "CMakeFiles/securedimm_sdimm.dir/path_executor.cc.o"
  "CMakeFiles/securedimm_sdimm.dir/path_executor.cc.o.d"
  "CMakeFiles/securedimm_sdimm.dir/sdimm_command.cc.o"
  "CMakeFiles/securedimm_sdimm.dir/sdimm_command.cc.o.d"
  "CMakeFiles/securedimm_sdimm.dir/secure_buffer.cc.o"
  "CMakeFiles/securedimm_sdimm.dir/secure_buffer.cc.o.d"
  "CMakeFiles/securedimm_sdimm.dir/split_backend.cc.o"
  "CMakeFiles/securedimm_sdimm.dir/split_backend.cc.o.d"
  "CMakeFiles/securedimm_sdimm.dir/split_engine.cc.o"
  "CMakeFiles/securedimm_sdimm.dir/split_engine.cc.o.d"
  "CMakeFiles/securedimm_sdimm.dir/split_oram.cc.o"
  "CMakeFiles/securedimm_sdimm.dir/split_oram.cc.o.d"
  "CMakeFiles/securedimm_sdimm.dir/transfer_queue.cc.o"
  "CMakeFiles/securedimm_sdimm.dir/transfer_queue.cc.o.d"
  "libsecuredimm_sdimm.a"
  "libsecuredimm_sdimm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/securedimm_sdimm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
