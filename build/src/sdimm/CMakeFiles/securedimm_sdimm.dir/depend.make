# Empty dependencies file for securedimm_sdimm.
# This may be replaced when dependencies are built.
