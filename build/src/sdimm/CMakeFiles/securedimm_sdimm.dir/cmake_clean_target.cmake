file(REMOVE_RECURSE
  "libsecuredimm_sdimm.a"
)
