file(REMOVE_RECURSE
  "libsecuredimm_core.a"
)
