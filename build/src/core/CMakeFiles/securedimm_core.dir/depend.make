# Empty dependencies file for securedimm_core.
# This may be replaced when dependencies are built.
