file(REMOVE_RECURSE
  "CMakeFiles/securedimm_core.dir/secure_memory_system.cc.o"
  "CMakeFiles/securedimm_core.dir/secure_memory_system.cc.o.d"
  "CMakeFiles/securedimm_core.dir/simulator.cc.o"
  "CMakeFiles/securedimm_core.dir/simulator.cc.o.d"
  "CMakeFiles/securedimm_core.dir/system_config.cc.o"
  "CMakeFiles/securedimm_core.dir/system_config.cc.o.d"
  "libsecuredimm_core.a"
  "libsecuredimm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/securedimm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
