file(REMOVE_RECURSE
  "libsecuredimm_util.a"
)
