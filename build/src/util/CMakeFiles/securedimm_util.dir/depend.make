# Empty dependencies file for securedimm_util.
# This may be replaced when dependencies are built.
