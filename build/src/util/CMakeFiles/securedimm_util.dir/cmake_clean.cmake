file(REMOVE_RECURSE
  "CMakeFiles/securedimm_util.dir/config.cc.o"
  "CMakeFiles/securedimm_util.dir/config.cc.o.d"
  "CMakeFiles/securedimm_util.dir/logging.cc.o"
  "CMakeFiles/securedimm_util.dir/logging.cc.o.d"
  "CMakeFiles/securedimm_util.dir/rng.cc.o"
  "CMakeFiles/securedimm_util.dir/rng.cc.o.d"
  "CMakeFiles/securedimm_util.dir/stats.cc.o"
  "CMakeFiles/securedimm_util.dir/stats.cc.o.d"
  "libsecuredimm_util.a"
  "libsecuredimm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/securedimm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
