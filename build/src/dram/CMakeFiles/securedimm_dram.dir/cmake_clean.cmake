file(REMOVE_RECURSE
  "CMakeFiles/securedimm_dram.dir/address_map.cc.o"
  "CMakeFiles/securedimm_dram.dir/address_map.cc.o.d"
  "CMakeFiles/securedimm_dram.dir/channel.cc.o"
  "CMakeFiles/securedimm_dram.dir/channel.cc.o.d"
  "CMakeFiles/securedimm_dram.dir/dram_system.cc.o"
  "CMakeFiles/securedimm_dram.dir/dram_system.cc.o.d"
  "CMakeFiles/securedimm_dram.dir/power_model.cc.o"
  "CMakeFiles/securedimm_dram.dir/power_model.cc.o.d"
  "CMakeFiles/securedimm_dram.dir/timing.cc.o"
  "CMakeFiles/securedimm_dram.dir/timing.cc.o.d"
  "libsecuredimm_dram.a"
  "libsecuredimm_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/securedimm_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
