file(REMOVE_RECURSE
  "libsecuredimm_dram.a"
)
