# Empty compiler generated dependencies file for securedimm_dram.
# This may be replaced when dependencies are built.
