
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/aes128.cc" "src/crypto/CMakeFiles/securedimm_crypto.dir/aes128.cc.o" "gcc" "src/crypto/CMakeFiles/securedimm_crypto.dir/aes128.cc.o.d"
  "/root/repo/src/crypto/cmac.cc" "src/crypto/CMakeFiles/securedimm_crypto.dir/cmac.cc.o" "gcc" "src/crypto/CMakeFiles/securedimm_crypto.dir/cmac.cc.o.d"
  "/root/repo/src/crypto/ctr_mode.cc" "src/crypto/CMakeFiles/securedimm_crypto.dir/ctr_mode.cc.o" "gcc" "src/crypto/CMakeFiles/securedimm_crypto.dir/ctr_mode.cc.o.d"
  "/root/repo/src/crypto/key_exchange.cc" "src/crypto/CMakeFiles/securedimm_crypto.dir/key_exchange.cc.o" "gcc" "src/crypto/CMakeFiles/securedimm_crypto.dir/key_exchange.cc.o.d"
  "/root/repo/src/crypto/pmmac.cc" "src/crypto/CMakeFiles/securedimm_crypto.dir/pmmac.cc.o" "gcc" "src/crypto/CMakeFiles/securedimm_crypto.dir/pmmac.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/securedimm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
