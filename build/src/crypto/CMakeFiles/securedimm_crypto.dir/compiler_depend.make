# Empty compiler generated dependencies file for securedimm_crypto.
# This may be replaced when dependencies are built.
