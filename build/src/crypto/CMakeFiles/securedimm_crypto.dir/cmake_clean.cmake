file(REMOVE_RECURSE
  "CMakeFiles/securedimm_crypto.dir/aes128.cc.o"
  "CMakeFiles/securedimm_crypto.dir/aes128.cc.o.d"
  "CMakeFiles/securedimm_crypto.dir/cmac.cc.o"
  "CMakeFiles/securedimm_crypto.dir/cmac.cc.o.d"
  "CMakeFiles/securedimm_crypto.dir/ctr_mode.cc.o"
  "CMakeFiles/securedimm_crypto.dir/ctr_mode.cc.o.d"
  "CMakeFiles/securedimm_crypto.dir/key_exchange.cc.o"
  "CMakeFiles/securedimm_crypto.dir/key_exchange.cc.o.d"
  "CMakeFiles/securedimm_crypto.dir/pmmac.cc.o"
  "CMakeFiles/securedimm_crypto.dir/pmmac.cc.o.d"
  "libsecuredimm_crypto.a"
  "libsecuredimm_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/securedimm_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
