file(REMOVE_RECURSE
  "libsecuredimm_crypto.a"
)
