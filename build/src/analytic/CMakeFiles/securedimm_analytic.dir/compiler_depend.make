# Empty compiler generated dependencies file for securedimm_analytic.
# This may be replaced when dependencies are built.
