file(REMOVE_RECURSE
  "CMakeFiles/securedimm_analytic.dir/area_model.cc.o"
  "CMakeFiles/securedimm_analytic.dir/area_model.cc.o.d"
  "CMakeFiles/securedimm_analytic.dir/mm1k.cc.o"
  "CMakeFiles/securedimm_analytic.dir/mm1k.cc.o.d"
  "CMakeFiles/securedimm_analytic.dir/random_walk.cc.o"
  "CMakeFiles/securedimm_analytic.dir/random_walk.cc.o.d"
  "libsecuredimm_analytic.a"
  "libsecuredimm_analytic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/securedimm_analytic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
