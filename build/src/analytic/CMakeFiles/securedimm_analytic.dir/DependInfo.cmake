
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analytic/area_model.cc" "src/analytic/CMakeFiles/securedimm_analytic.dir/area_model.cc.o" "gcc" "src/analytic/CMakeFiles/securedimm_analytic.dir/area_model.cc.o.d"
  "/root/repo/src/analytic/mm1k.cc" "src/analytic/CMakeFiles/securedimm_analytic.dir/mm1k.cc.o" "gcc" "src/analytic/CMakeFiles/securedimm_analytic.dir/mm1k.cc.o.d"
  "/root/repo/src/analytic/random_walk.cc" "src/analytic/CMakeFiles/securedimm_analytic.dir/random_walk.cc.o" "gcc" "src/analytic/CMakeFiles/securedimm_analytic.dir/random_walk.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/securedimm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
