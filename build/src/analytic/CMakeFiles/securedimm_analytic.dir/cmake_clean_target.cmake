file(REMOVE_RECURSE
  "libsecuredimm_analytic.a"
)
