file(REMOVE_RECURSE
  "libsecuredimm_oram.a"
)
