file(REMOVE_RECURSE
  "CMakeFiles/securedimm_oram.dir/bucket.cc.o"
  "CMakeFiles/securedimm_oram.dir/bucket.cc.o.d"
  "CMakeFiles/securedimm_oram.dir/bucket_store.cc.o"
  "CMakeFiles/securedimm_oram.dir/bucket_store.cc.o.d"
  "CMakeFiles/securedimm_oram.dir/freecursive_backend.cc.o"
  "CMakeFiles/securedimm_oram.dir/freecursive_backend.cc.o.d"
  "CMakeFiles/securedimm_oram.dir/nonsecure_backend.cc.o"
  "CMakeFiles/securedimm_oram.dir/nonsecure_backend.cc.o.d"
  "CMakeFiles/securedimm_oram.dir/path_oram.cc.o"
  "CMakeFiles/securedimm_oram.dir/path_oram.cc.o.d"
  "CMakeFiles/securedimm_oram.dir/plb.cc.o"
  "CMakeFiles/securedimm_oram.dir/plb.cc.o.d"
  "CMakeFiles/securedimm_oram.dir/recursion.cc.o"
  "CMakeFiles/securedimm_oram.dir/recursion.cc.o.d"
  "CMakeFiles/securedimm_oram.dir/recursive_oram.cc.o"
  "CMakeFiles/securedimm_oram.dir/recursive_oram.cc.o.d"
  "CMakeFiles/securedimm_oram.dir/stash.cc.o"
  "CMakeFiles/securedimm_oram.dir/stash.cc.o.d"
  "CMakeFiles/securedimm_oram.dir/tree_layout.cc.o"
  "CMakeFiles/securedimm_oram.dir/tree_layout.cc.o.d"
  "libsecuredimm_oram.a"
  "libsecuredimm_oram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/securedimm_oram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
