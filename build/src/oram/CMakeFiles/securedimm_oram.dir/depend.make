# Empty dependencies file for securedimm_oram.
# This may be replaced when dependencies are built.
