
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/oram/bucket.cc" "src/oram/CMakeFiles/securedimm_oram.dir/bucket.cc.o" "gcc" "src/oram/CMakeFiles/securedimm_oram.dir/bucket.cc.o.d"
  "/root/repo/src/oram/bucket_store.cc" "src/oram/CMakeFiles/securedimm_oram.dir/bucket_store.cc.o" "gcc" "src/oram/CMakeFiles/securedimm_oram.dir/bucket_store.cc.o.d"
  "/root/repo/src/oram/freecursive_backend.cc" "src/oram/CMakeFiles/securedimm_oram.dir/freecursive_backend.cc.o" "gcc" "src/oram/CMakeFiles/securedimm_oram.dir/freecursive_backend.cc.o.d"
  "/root/repo/src/oram/nonsecure_backend.cc" "src/oram/CMakeFiles/securedimm_oram.dir/nonsecure_backend.cc.o" "gcc" "src/oram/CMakeFiles/securedimm_oram.dir/nonsecure_backend.cc.o.d"
  "/root/repo/src/oram/path_oram.cc" "src/oram/CMakeFiles/securedimm_oram.dir/path_oram.cc.o" "gcc" "src/oram/CMakeFiles/securedimm_oram.dir/path_oram.cc.o.d"
  "/root/repo/src/oram/plb.cc" "src/oram/CMakeFiles/securedimm_oram.dir/plb.cc.o" "gcc" "src/oram/CMakeFiles/securedimm_oram.dir/plb.cc.o.d"
  "/root/repo/src/oram/recursion.cc" "src/oram/CMakeFiles/securedimm_oram.dir/recursion.cc.o" "gcc" "src/oram/CMakeFiles/securedimm_oram.dir/recursion.cc.o.d"
  "/root/repo/src/oram/recursive_oram.cc" "src/oram/CMakeFiles/securedimm_oram.dir/recursive_oram.cc.o" "gcc" "src/oram/CMakeFiles/securedimm_oram.dir/recursive_oram.cc.o.d"
  "/root/repo/src/oram/stash.cc" "src/oram/CMakeFiles/securedimm_oram.dir/stash.cc.o" "gcc" "src/oram/CMakeFiles/securedimm_oram.dir/stash.cc.o.d"
  "/root/repo/src/oram/tree_layout.cc" "src/oram/CMakeFiles/securedimm_oram.dir/tree_layout.cc.o" "gcc" "src/oram/CMakeFiles/securedimm_oram.dir/tree_layout.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/securedimm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/securedimm_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/securedimm_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/securedimm_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
