# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_crypto[1]_include.cmake")
include("/root/repo/build/tests/test_dram[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_oram[1]_include.cmake")
include("/root/repo/build/tests/test_sdimm[1]_include.cmake")
include("/root/repo/build/tests/test_analytic[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
