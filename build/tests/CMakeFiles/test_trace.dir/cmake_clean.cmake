file(REMOVE_RECURSE
  "CMakeFiles/test_trace.dir/trace/test_cache.cc.o"
  "CMakeFiles/test_trace.dir/trace/test_cache.cc.o.d"
  "CMakeFiles/test_trace.dir/trace/test_core_model.cc.o"
  "CMakeFiles/test_trace.dir/trace/test_core_model.cc.o.d"
  "CMakeFiles/test_trace.dir/trace/test_trace_io.cc.o"
  "CMakeFiles/test_trace.dir/trace/test_trace_io.cc.o.d"
  "CMakeFiles/test_trace.dir/trace/test_workload.cc.o"
  "CMakeFiles/test_trace.dir/trace/test_workload.cc.o.d"
  "test_trace"
  "test_trace.pdb"
  "test_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
