# Empty dependencies file for test_sdimm.
# This may be replaced when dependencies are built.
