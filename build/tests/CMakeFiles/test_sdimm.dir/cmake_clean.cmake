file(REMOVE_RECURSE
  "CMakeFiles/test_sdimm.dir/sdimm/test_command.cc.o"
  "CMakeFiles/test_sdimm.dir/sdimm/test_command.cc.o.d"
  "CMakeFiles/test_sdimm.dir/sdimm/test_indep_split_oram.cc.o"
  "CMakeFiles/test_sdimm.dir/sdimm/test_indep_split_oram.cc.o.d"
  "CMakeFiles/test_sdimm.dir/sdimm/test_independent_oram.cc.o"
  "CMakeFiles/test_sdimm.dir/sdimm/test_independent_oram.cc.o.d"
  "CMakeFiles/test_sdimm.dir/sdimm/test_link_session.cc.o"
  "CMakeFiles/test_sdimm.dir/sdimm/test_link_session.cc.o.d"
  "CMakeFiles/test_sdimm.dir/sdimm/test_protocol_properties.cc.o"
  "CMakeFiles/test_sdimm.dir/sdimm/test_protocol_properties.cc.o.d"
  "CMakeFiles/test_sdimm.dir/sdimm/test_split_oram.cc.o"
  "CMakeFiles/test_sdimm.dir/sdimm/test_split_oram.cc.o.d"
  "CMakeFiles/test_sdimm.dir/sdimm/test_timing_backends.cc.o"
  "CMakeFiles/test_sdimm.dir/sdimm/test_timing_backends.cc.o.d"
  "CMakeFiles/test_sdimm.dir/sdimm/test_timing_engines.cc.o"
  "CMakeFiles/test_sdimm.dir/sdimm/test_timing_engines.cc.o.d"
  "CMakeFiles/test_sdimm.dir/sdimm/test_transfer_queue.cc.o"
  "CMakeFiles/test_sdimm.dir/sdimm/test_transfer_queue.cc.o.d"
  "test_sdimm"
  "test_sdimm.pdb"
  "test_sdimm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sdimm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
