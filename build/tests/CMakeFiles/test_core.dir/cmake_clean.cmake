file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_backend_properties.cc.o"
  "CMakeFiles/test_core.dir/core/test_backend_properties.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_secure_memory_system.cc.o"
  "CMakeFiles/test_core.dir/core/test_secure_memory_system.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_simulator.cc.o"
  "CMakeFiles/test_core.dir/core/test_simulator.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_system_config.cc.o"
  "CMakeFiles/test_core.dir/core/test_system_config.cc.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
