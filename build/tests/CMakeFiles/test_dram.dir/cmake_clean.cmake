file(REMOVE_RECURSE
  "CMakeFiles/test_dram.dir/dram/test_address_map.cc.o"
  "CMakeFiles/test_dram.dir/dram/test_address_map.cc.o.d"
  "CMakeFiles/test_dram.dir/dram/test_channel.cc.o"
  "CMakeFiles/test_dram.dir/dram/test_channel.cc.o.d"
  "CMakeFiles/test_dram.dir/dram/test_channel_properties.cc.o"
  "CMakeFiles/test_dram.dir/dram/test_channel_properties.cc.o.d"
  "CMakeFiles/test_dram.dir/dram/test_dram_system.cc.o"
  "CMakeFiles/test_dram.dir/dram/test_dram_system.cc.o.d"
  "CMakeFiles/test_dram.dir/dram/test_power_model.cc.o"
  "CMakeFiles/test_dram.dir/dram/test_power_model.cc.o.d"
  "test_dram"
  "test_dram.pdb"
  "test_dram[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
