file(REMOVE_RECURSE
  "CMakeFiles/test_oram.dir/oram/test_backends.cc.o"
  "CMakeFiles/test_oram.dir/oram/test_backends.cc.o.d"
  "CMakeFiles/test_oram.dir/oram/test_bucket.cc.o"
  "CMakeFiles/test_oram.dir/oram/test_bucket.cc.o.d"
  "CMakeFiles/test_oram.dir/oram/test_coresident.cc.o"
  "CMakeFiles/test_oram.dir/oram/test_coresident.cc.o.d"
  "CMakeFiles/test_oram.dir/oram/test_path_oram.cc.o"
  "CMakeFiles/test_oram.dir/oram/test_path_oram.cc.o.d"
  "CMakeFiles/test_oram.dir/oram/test_path_oram_properties.cc.o"
  "CMakeFiles/test_oram.dir/oram/test_path_oram_properties.cc.o.d"
  "CMakeFiles/test_oram.dir/oram/test_plb.cc.o"
  "CMakeFiles/test_oram.dir/oram/test_plb.cc.o.d"
  "CMakeFiles/test_oram.dir/oram/test_recursion.cc.o"
  "CMakeFiles/test_oram.dir/oram/test_recursion.cc.o.d"
  "CMakeFiles/test_oram.dir/oram/test_recursive_oram.cc.o"
  "CMakeFiles/test_oram.dir/oram/test_recursive_oram.cc.o.d"
  "CMakeFiles/test_oram.dir/oram/test_stash.cc.o"
  "CMakeFiles/test_oram.dir/oram/test_stash.cc.o.d"
  "CMakeFiles/test_oram.dir/oram/test_tree_layout.cc.o"
  "CMakeFiles/test_oram.dir/oram/test_tree_layout.cc.o.d"
  "test_oram"
  "test_oram.pdb"
  "test_oram[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_oram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
