
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/oram/test_backends.cc" "tests/CMakeFiles/test_oram.dir/oram/test_backends.cc.o" "gcc" "tests/CMakeFiles/test_oram.dir/oram/test_backends.cc.o.d"
  "/root/repo/tests/oram/test_bucket.cc" "tests/CMakeFiles/test_oram.dir/oram/test_bucket.cc.o" "gcc" "tests/CMakeFiles/test_oram.dir/oram/test_bucket.cc.o.d"
  "/root/repo/tests/oram/test_coresident.cc" "tests/CMakeFiles/test_oram.dir/oram/test_coresident.cc.o" "gcc" "tests/CMakeFiles/test_oram.dir/oram/test_coresident.cc.o.d"
  "/root/repo/tests/oram/test_path_oram.cc" "tests/CMakeFiles/test_oram.dir/oram/test_path_oram.cc.o" "gcc" "tests/CMakeFiles/test_oram.dir/oram/test_path_oram.cc.o.d"
  "/root/repo/tests/oram/test_path_oram_properties.cc" "tests/CMakeFiles/test_oram.dir/oram/test_path_oram_properties.cc.o" "gcc" "tests/CMakeFiles/test_oram.dir/oram/test_path_oram_properties.cc.o.d"
  "/root/repo/tests/oram/test_plb.cc" "tests/CMakeFiles/test_oram.dir/oram/test_plb.cc.o" "gcc" "tests/CMakeFiles/test_oram.dir/oram/test_plb.cc.o.d"
  "/root/repo/tests/oram/test_recursion.cc" "tests/CMakeFiles/test_oram.dir/oram/test_recursion.cc.o" "gcc" "tests/CMakeFiles/test_oram.dir/oram/test_recursion.cc.o.d"
  "/root/repo/tests/oram/test_recursive_oram.cc" "tests/CMakeFiles/test_oram.dir/oram/test_recursive_oram.cc.o" "gcc" "tests/CMakeFiles/test_oram.dir/oram/test_recursive_oram.cc.o.d"
  "/root/repo/tests/oram/test_stash.cc" "tests/CMakeFiles/test_oram.dir/oram/test_stash.cc.o" "gcc" "tests/CMakeFiles/test_oram.dir/oram/test_stash.cc.o.d"
  "/root/repo/tests/oram/test_tree_layout.cc" "tests/CMakeFiles/test_oram.dir/oram/test_tree_layout.cc.o" "gcc" "tests/CMakeFiles/test_oram.dir/oram/test_tree_layout.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/securedimm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sdimm/CMakeFiles/securedimm_sdimm.dir/DependInfo.cmake"
  "/root/repo/build/src/oram/CMakeFiles/securedimm_oram.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/securedimm_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/securedimm_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/securedimm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/analytic/CMakeFiles/securedimm_analytic.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/securedimm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
