file(REMOVE_RECURSE
  "CMakeFiles/test_crypto.dir/crypto/test_aes128.cc.o"
  "CMakeFiles/test_crypto.dir/crypto/test_aes128.cc.o.d"
  "CMakeFiles/test_crypto.dir/crypto/test_cmac.cc.o"
  "CMakeFiles/test_crypto.dir/crypto/test_cmac.cc.o.d"
  "CMakeFiles/test_crypto.dir/crypto/test_crypto_properties.cc.o"
  "CMakeFiles/test_crypto.dir/crypto/test_crypto_properties.cc.o.d"
  "CMakeFiles/test_crypto.dir/crypto/test_ctr_mode.cc.o"
  "CMakeFiles/test_crypto.dir/crypto/test_ctr_mode.cc.o.d"
  "CMakeFiles/test_crypto.dir/crypto/test_key_exchange.cc.o"
  "CMakeFiles/test_crypto.dir/crypto/test_key_exchange.cc.o.d"
  "CMakeFiles/test_crypto.dir/crypto/test_pmmac.cc.o"
  "CMakeFiles/test_crypto.dir/crypto/test_pmmac.cc.o.d"
  "test_crypto"
  "test_crypto.pdb"
  "test_crypto[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
