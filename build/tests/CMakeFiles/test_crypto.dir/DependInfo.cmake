
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/crypto/test_aes128.cc" "tests/CMakeFiles/test_crypto.dir/crypto/test_aes128.cc.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/test_aes128.cc.o.d"
  "/root/repo/tests/crypto/test_cmac.cc" "tests/CMakeFiles/test_crypto.dir/crypto/test_cmac.cc.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/test_cmac.cc.o.d"
  "/root/repo/tests/crypto/test_crypto_properties.cc" "tests/CMakeFiles/test_crypto.dir/crypto/test_crypto_properties.cc.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/test_crypto_properties.cc.o.d"
  "/root/repo/tests/crypto/test_ctr_mode.cc" "tests/CMakeFiles/test_crypto.dir/crypto/test_ctr_mode.cc.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/test_ctr_mode.cc.o.d"
  "/root/repo/tests/crypto/test_key_exchange.cc" "tests/CMakeFiles/test_crypto.dir/crypto/test_key_exchange.cc.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/test_key_exchange.cc.o.d"
  "/root/repo/tests/crypto/test_pmmac.cc" "tests/CMakeFiles/test_crypto.dir/crypto/test_pmmac.cc.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/test_pmmac.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/securedimm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sdimm/CMakeFiles/securedimm_sdimm.dir/DependInfo.cmake"
  "/root/repo/build/src/oram/CMakeFiles/securedimm_oram.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/securedimm_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/securedimm_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/securedimm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/analytic/CMakeFiles/securedimm_analytic.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/securedimm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
