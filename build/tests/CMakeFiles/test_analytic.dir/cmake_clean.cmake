file(REMOVE_RECURSE
  "CMakeFiles/test_analytic.dir/analytic/test_mm1k.cc.o"
  "CMakeFiles/test_analytic.dir/analytic/test_mm1k.cc.o.d"
  "CMakeFiles/test_analytic.dir/analytic/test_random_walk.cc.o"
  "CMakeFiles/test_analytic.dir/analytic/test_random_walk.cc.o.d"
  "test_analytic"
  "test_analytic.pdb"
  "test_analytic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analytic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
