# Empty compiler generated dependencies file for adversary_view.
# This may be replaced when dependencies are built.
