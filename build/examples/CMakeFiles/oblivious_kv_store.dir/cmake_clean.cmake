file(REMOVE_RECURSE
  "CMakeFiles/oblivious_kv_store.dir/oblivious_kv_store.cpp.o"
  "CMakeFiles/oblivious_kv_store.dir/oblivious_kv_store.cpp.o.d"
  "oblivious_kv_store"
  "oblivious_kv_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oblivious_kv_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
