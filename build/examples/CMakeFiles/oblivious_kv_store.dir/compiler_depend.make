# Empty compiler generated dependencies file for oblivious_kv_store.
# This may be replaced when dependencies are built.
