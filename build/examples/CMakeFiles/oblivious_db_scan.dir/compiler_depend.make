# Empty compiler generated dependencies file for oblivious_db_scan.
# This may be replaced when dependencies are built.
