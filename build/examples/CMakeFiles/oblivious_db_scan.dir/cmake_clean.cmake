file(REMOVE_RECURSE
  "CMakeFiles/oblivious_db_scan.dir/oblivious_db_scan.cpp.o"
  "CMakeFiles/oblivious_db_scan.dir/oblivious_db_scan.cpp.o.d"
  "oblivious_db_scan"
  "oblivious_db_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oblivious_db_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
