#include <gtest/gtest.h>

#include "util/bit_utils.hh"

namespace secdimm
{
namespace
{

TEST(BitUtils, PowerOfTwo)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(1ULL << 63));
    EXPECT_FALSE(isPowerOfTwo((1ULL << 63) + 1));
}

TEST(BitUtils, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(4), 2u);
    EXPECT_EQ(floorLog2(1023), 9u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(floorLog2(~0ULL), 63u);
}

TEST(BitUtils, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(4), 2u);
    EXPECT_EQ(ceilLog2(5), 3u);
    EXPECT_EQ(ceilLog2(1ULL << 40), 40u);
    EXPECT_EQ(ceilLog2((1ULL << 40) + 1), 41u);
}

TEST(BitUtils, BitsExtract)
{
    EXPECT_EQ(bits(0xdeadbeef, 0, 8), 0xefu);
    EXPECT_EQ(bits(0xdeadbeef, 8, 8), 0xbeu);
    EXPECT_EQ(bits(0xdeadbeef, 16, 16), 0xdeadu);
    EXPECT_EQ(bits(0xff, 4, 0), 0u);
    EXPECT_EQ(bits(~0ULL, 0, 64), ~0ULL);
}

TEST(BitUtils, InsertBits)
{
    EXPECT_EQ(insertBits(0, 0, 8, 0xab), 0xabULL);
    EXPECT_EQ(insertBits(0xff00, 0, 8, 0xab), 0xffabULL);
    EXPECT_EQ(insertBits(0xffff, 4, 8, 0), 0xf00fULL);
    // Field wider than width is masked.
    EXPECT_EQ(insertBits(0, 0, 4, 0xff), 0xfULL);
}

TEST(BitUtils, InsertThenExtractRoundTrip)
{
    for (unsigned lo = 0; lo < 60; lo += 7) {
        for (unsigned w = 1; w <= 16; w += 3) {
            if (lo + w > 64)
                continue; // field would not fit
            const std::uint64_t field = 0x5a5a5a5a5a5a5a5aULL;
            const std::uint64_t v = insertBits(0, lo, w, field);
            EXPECT_EQ(bits(v, lo, w), bits(field, 0, w))
                << "lo=" << lo << " w=" << w;
        }
    }
}

TEST(BitUtils, DivCeil)
{
    EXPECT_EQ(divCeil(0, 4), 0u);
    EXPECT_EQ(divCeil(1, 4), 1u);
    EXPECT_EQ(divCeil(4, 4), 1u);
    EXPECT_EQ(divCeil(5, 4), 2u);
}

TEST(BitUtils, RoundUpPow2)
{
    EXPECT_EQ(roundUpPow2(0, 64), 0u);
    EXPECT_EQ(roundUpPow2(1, 64), 64u);
    EXPECT_EQ(roundUpPow2(64, 64), 64u);
    EXPECT_EQ(roundUpPow2(65, 64), 128u);
}

} // namespace
} // namespace secdimm
