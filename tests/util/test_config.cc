#include <gtest/gtest.h>

#include <cstdlib>

#include "util/config.hh"

namespace secdimm
{
namespace
{

TEST(Config, TypedRoundTrip)
{
    Config c;
    c.setUInt("n", 42);
    c.setDouble("x", 2.5);
    c.setBool("flag", true);
    c.set("s", "hello");
    EXPECT_EQ(c.getUInt("n"), 42u);
    EXPECT_DOUBLE_EQ(c.getDouble("x"), 2.5);
    EXPECT_TRUE(c.getBool("flag"));
    EXPECT_EQ(c.getString("s"), "hello");
}

TEST(Config, DefaultsWhenAbsent)
{
    Config c;
    EXPECT_EQ(c.getUInt("missing", 7), 7u);
    EXPECT_DOUBLE_EQ(c.getDouble("missing", 1.5), 1.5);
    EXPECT_FALSE(c.getBool("missing", false));
    EXPECT_EQ(c.getString("missing", "d"), "d");
}

TEST(Config, ParseLineHandlesCommentsAndBlank)
{
    Config c;
    EXPECT_TRUE(c.parseLine("# comment"));
    EXPECT_TRUE(c.parseLine("   "));
    EXPECT_TRUE(c.parseLine("key = value"));
    EXPECT_EQ(c.getString("key"), "value");
}

TEST(Config, ParseLineRejectsMalformed)
{
    Config c;
    EXPECT_FALSE(c.parseLine("no equals sign"));
    EXPECT_FALSE(c.parseLine("= value without key"));
}

TEST(Config, BoolSpellings)
{
    Config c;
    c.set("a", "YES");
    c.set("b", "off");
    c.set("c", "1");
    c.set("d", "garbage");
    EXPECT_TRUE(c.getBool("a"));
    EXPECT_FALSE(c.getBool("b"));
    EXPECT_TRUE(c.getBool("c"));
    EXPECT_TRUE(c.getBool("d", true)); // falls back to default
}

TEST(Config, HexUInt)
{
    Config c;
    c.set("addr", "0x40");
    EXPECT_EQ(c.getUInt("addr"), 64u);
}

TEST(Config, EnvOverride)
{
    Config c;
    c.setUInt("dram.channels", 1);
    ::setenv("SDTEST_DRAM_CHANNELS", "4", 1);
    c.applyEnvOverrides("SDTEST_");
    EXPECT_EQ(c.getUInt("dram.channels"), 4u);
    ::unsetenv("SDTEST_DRAM_CHANNELS");
}

} // namespace
} // namespace secdimm
