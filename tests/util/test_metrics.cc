/**
 * @file
 * MetricsRegistry / LogHistogram unit tests: counter, gauge, and
 * histogram semantics, kind-collision detection, merging, and the
 * JSON round trip the BENCH_*.json snapshots rely on.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "util/metrics.hh"

using namespace secdimm;
using util::LogHistogram;
using util::MetricsRegistry;

TEST(LogHistogram, BucketsArePowerOfTwoRanges)
{
    LogHistogram h;
    h.sample(0); // Bucket 0.
    h.sample(1); // Bucket 1: [1, 2).
    h.sample(2); // Bucket 2: [2, 4).
    h.sample(3);
    h.sample(4); // Bucket 3: [4, 8).
    h.sample(7);

    ASSERT_EQ(h.buckets().size(), 4u);
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.buckets()[1], 1u);
    EXPECT_EQ(h.buckets()[2], 2u);
    EXPECT_EQ(h.buckets()[3], 2u);
    EXPECT_EQ(h.count(), 6u);
    EXPECT_EQ(h.max(), 7u);
    EXPECT_DOUBLE_EQ(h.sum(), 17.0);
    EXPECT_DOUBLE_EQ(h.mean(), 17.0 / 6.0);
}

TEST(LogHistogram, BucketBoundsMatchSampling)
{
    EXPECT_EQ(LogHistogram::bucketLow(0), 0u);
    EXPECT_EQ(LogHistogram::bucketHigh(0), 0u);
    EXPECT_EQ(LogHistogram::bucketLow(1), 1u);
    EXPECT_EQ(LogHistogram::bucketHigh(1), 1u);
    EXPECT_EQ(LogHistogram::bucketLow(4), 8u);
    EXPECT_EQ(LogHistogram::bucketHigh(4), 15u);

    // Sampling a bucket's bounds lands in that bucket.
    for (std::size_t i = 0; i < 12; ++i) {
        LogHistogram h;
        h.sample(LogHistogram::bucketLow(i));
        h.sample(LogHistogram::bucketHigh(i));
        ASSERT_EQ(h.buckets().size(), i + 1);
        EXPECT_EQ(h.buckets()[i], 2u);
    }
}

TEST(LogHistogram, MergeAddsBucketsAndMoments)
{
    LogHistogram a, b;
    a.sample(1);
    a.sample(100);
    b.sample(5);

    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_EQ(a.max(), 100u);
    EXPECT_DOUBLE_EQ(a.sum(), 106.0);

    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_TRUE(a.buckets().empty());
}

TEST(MetricsRegistry, CounterSemantics)
{
    MetricsRegistry m;
    EXPECT_TRUE(m.empty());
    m.incCounter("a.events");
    m.incCounter("a.events", 4);
    EXPECT_EQ(m.counter("a.events"), 5u);
    m.setCounter("a.events", 2);
    EXPECT_EQ(m.counter("a.events"), 2u);
    // Unknown counters read as zero.
    EXPECT_EQ(m.counter("a.absent"), 0u);
    EXPECT_TRUE(m.has("a.events"));
    EXPECT_FALSE(m.has("a.absent"));
}

TEST(MetricsRegistry, GaugeAndHistogramSemantics)
{
    MetricsRegistry m;
    m.setGauge("x.rate", 0.5);
    m.setGauge("x.rate", 0.75); // Overwrite.
    EXPECT_DOUBLE_EQ(m.gauge("x.rate"), 0.75);
    EXPECT_DOUBLE_EQ(m.gauge("x.absent"), 0.0);

    m.histogram("x.depth").sample(3);
    m.histogram("x.depth").sample(9);
    EXPECT_EQ(m.histogram("x.depth").count(), 2u);
    EXPECT_NE(m.findHistogram("x.depth"), nullptr);
    EXPECT_EQ(m.findHistogram("x.absent"), nullptr);
}

TEST(MetricsRegistry, KindCollisionThrows)
{
    MetricsRegistry m;
    m.incCounter("dup");
    EXPECT_THROW(m.setGauge("dup", 1.0), std::logic_error);
    EXPECT_THROW(m.histogram("dup"), std::logic_error);

    m.setGauge("g", 1.0);
    EXPECT_THROW(m.incCounter("g"), std::logic_error);
}

TEST(MetricsRegistry, NamesAreSortedAcrossKinds)
{
    MetricsRegistry m;
    m.setGauge("b", 1.0);
    m.incCounter("a");
    m.histogram("c").sample(1);
    const auto names = m.names();
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "a");
    EXPECT_EQ(names[1], "b");
    EXPECT_EQ(names[2], "c");
}

TEST(MetricsRegistry, MergeCombines)
{
    MetricsRegistry a, b;
    a.incCounter("n", 2);
    a.setGauge("g", 1.0);
    a.histogram("h").sample(1);
    b.incCounter("n", 3);
    b.setGauge("g", 7.0);
    b.histogram("h").sample(2);

    a.merge(b);
    EXPECT_EQ(a.counter("n"), 5u);     // Counters add.
    EXPECT_DOUBLE_EQ(a.gauge("g"), 7.0); // Gauges overwrite.
    EXPECT_EQ(a.histogram("h").count(), 2u); // Histograms merge.
}

TEST(MetricsRegistry, JsonRoundTrip)
{
    MetricsRegistry m;
    m.incCounter("dram.ch0.reads", 12345);
    m.setCounter("big", ~0ULL >> 1);
    m.setGauge("core.ipc", 0.125);
    m.setGauge("neg", -2.5e-3);
    m.setGauge("quote\"key", 1.0); // Escaping in names.
    auto &h = m.histogram("sdimm.queue_depth");
    h.sample(0);
    h.sample(3);
    h.sample(250);

    for (int indent : {-1, 0, 2}) {
        const std::string json = m.toJson(indent);
        const auto parsed = MetricsRegistry::fromJson(json);
        ASSERT_TRUE(parsed.has_value()) << json;
        EXPECT_EQ(parsed->counter("dram.ch0.reads"), 12345u);
        EXPECT_EQ(parsed->counter("big"), ~0ULL >> 1);
        EXPECT_DOUBLE_EQ(parsed->gauge("core.ipc"), 0.125);
        EXPECT_DOUBLE_EQ(parsed->gauge("neg"), -2.5e-3);
        EXPECT_DOUBLE_EQ(parsed->gauge("quote\"key"), 1.0);
        const auto *ph = parsed->findHistogram("sdimm.queue_depth");
        ASSERT_NE(ph, nullptr);
        EXPECT_EQ(ph->count(), 3u);
        EXPECT_EQ(ph->max(), 250u);
        EXPECT_DOUBLE_EQ(ph->sum(), 253.0);
        EXPECT_EQ(ph->buckets(), h.buckets());
    }
}

TEST(MetricsRegistry, FromJsonRejectsMalformedInput)
{
    EXPECT_FALSE(MetricsRegistry::fromJson("").has_value());
    EXPECT_FALSE(MetricsRegistry::fromJson("{").has_value());
    EXPECT_FALSE(MetricsRegistry::fromJson("[]").has_value());
    EXPECT_FALSE(
        MetricsRegistry::fromJson("{\"counters\":{\"a\":}}")
            .has_value());
    // Trailing garbage after a valid object.
    const std::string good = MetricsRegistry().toJson();
    EXPECT_TRUE(MetricsRegistry::fromJson(good).has_value());
    EXPECT_FALSE(MetricsRegistry::fromJson(good + "x").has_value());
}

TEST(MetricsRegistry, ResetClearsEverything)
{
    MetricsRegistry m;
    m.incCounter("a");
    m.setGauge("b", 1);
    m.histogram("c").sample(1);
    m.reset();
    EXPECT_TRUE(m.empty());
    EXPECT_TRUE(m.names().empty());
}

/* ------------------------------------------------------------------
 * Thread safety: the serve shards write one shared registry from N
 * worker threads (src/serve), so concurrent named operations must
 * neither race nor lose updates.
 */

TEST(MetricsRegistry, ConcurrentWritersLoseNothing)
{
    constexpr unsigned kThreads = 8;
    constexpr unsigned kIters = 2000;
    MetricsRegistry m;
    std::vector<std::thread> ts;
    ts.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
        ts.emplace_back([&m, t] {
            const std::string own =
                "own.t" + std::to_string(t) + ".count";
            for (unsigned i = 0; i < kIters; ++i) {
                m.incCounter("shared.count");
                m.incCounter(own);
                m.sampleHistogram("shared.hist", i % 17);
                m.setGauge("shared.gauge", static_cast<double>(t));
            }
        });
    }
    for (auto &t : ts)
        t.join();
    EXPECT_EQ(m.counter("shared.count"),
              static_cast<std::uint64_t>(kThreads) * kIters);
    for (unsigned t = 0; t < kThreads; ++t) {
        EXPECT_EQ(m.counter("own.t" + std::to_string(t) + ".count"),
                  kIters);
    }
    const auto *h = m.findHistogram("shared.hist");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count(), static_cast<std::uint64_t>(kThreads) * kIters);
    EXPECT_LT(m.gauge("shared.gauge"), static_cast<double>(kThreads));
}

TEST(MetricsRegistry, ConcurrentReadersDuringWrites)
{
    MetricsRegistry m;
    std::atomic<bool> stop{false};
    std::thread writer([&] {
        std::uint64_t i = 0;
        while (!stop.load(std::memory_order_relaxed)) {
            m.incCounter("w.count");
            m.sampleHistogram("w.hist", i++ & 31);
        }
    });
    // Wait for the writer to get scheduled (single-core machines can
    // run the whole reader loop before the thread first executes).
    while (m.counter("w.count") == 0)
        std::this_thread::yield();
    // Readers exercise the snapshot paths writers race against.
    for (unsigned r = 0; r < 200; ++r) {
        const std::string json = m.toJson(-1);
        EXPECT_FALSE(json.empty());
        MetricsRegistry copy(m); // Copy ctor locks the source.
        EXPECT_LE(copy.counter("w.count"), m.counter("w.count"));
        (void)m.names();
    }
    stop = true;
    writer.join();
    EXPECT_GT(m.counter("w.count"), 0u);
}

TEST(MetricsRegistry, MergeIsSelfMergeSafeAndLocked)
{
    MetricsRegistry a;
    a.incCounter("x", 3);
    a.merge(a); // Self-merge must not deadlock or double.
    EXPECT_EQ(a.counter("x"), 3u);

    MetricsRegistry b;
    b.incCounter("x", 4);
    a.merge(b);
    EXPECT_EQ(a.counter("x"), 7u);
}
