#include <gtest/gtest.h>

#include <sstream>

#include "util/stats.hh"

namespace secdimm
{
namespace
{

TEST(Counter, IncrementAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(4);
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Average, TracksMeanMinMax)
{
    Average a;
    a.sample(2.0);
    a.sample(4.0);
    a.sample(9.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
}

TEST(Average, EmptyIsZero)
{
    Average a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(4, 10.0);
    h.sample(0.0);
    h.sample(9.99);
    h.sample(10.0);
    h.sample(35.0);
    h.sample(40.0);   // overflow
    h.sample(-1.0);   // negative counts as overflow too
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.total(), 6u);
}

TEST(StatRegistry, CountersPersistByName)
{
    StatRegistry reg;
    reg.counter("a").inc(3);
    reg.counter("a").inc(2);
    EXPECT_EQ(reg.counterValue("a"), 5u);
    EXPECT_EQ(reg.counterValue("missing"), 0u);
}

TEST(StatRegistry, DumpIsSortedAndComplete)
{
    StatRegistry reg;
    reg.counter("z.last").inc(1);
    reg.counter("a.first").inc(2);
    std::ostringstream os;
    reg.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("a.first 2"), std::string::npos);
    EXPECT_NE(out.find("z.last 1"), std::string::npos);
    EXPECT_LT(out.find("a.first"), out.find("z.last"));
}

TEST(StatRegistry, ResetClearsEverything)
{
    StatRegistry reg;
    reg.counter("c").inc(9);
    reg.average("avg").sample(4.0);
    reg.histogram("h").sample(1.0);
    reg.reset();
    EXPECT_EQ(reg.counterValue("c"), 0u);
    EXPECT_EQ(reg.average("avg").count(), 0u);
    EXPECT_EQ(reg.histogram("h").total(), 0u);
}

} // namespace
} // namespace secdimm
