#include <gtest/gtest.h>

#include <set>

#include "util/rng.hh"

namespace secdimm
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowRespectsBound)
{
    Rng r(7);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(r.nextBelow(bound), bound);
    }
    EXPECT_EQ(r.nextBelow(0), 0u);
}

TEST(Rng, NextBelowCoversRange)
{
    Rng r(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(r.nextBelow(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng r(3);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double d = r.nextDouble();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
        sum += d;
    }
    // Mean of U(0,1) should be ~0.5.
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliFrequency)
{
    Rng r(5);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += r.nextBool(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, GeometricMeanApproximatesTarget)
{
    Rng r(9);
    for (double mean : {2.0, 10.0, 50.0}) {
        double sum = 0;
        const int n = 20000;
        for (int i = 0; i < n; ++i)
            sum += static_cast<double>(r.nextGeometric(mean));
        EXPECT_NEAR(sum / n, mean, mean * 0.1) << "mean=" << mean;
    }
}

TEST(Rng, GeometricAlwaysAtLeastOne)
{
    Rng r(13);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GE(r.nextGeometric(0.5), 1u);
}

TEST(Rng, ReseedResetsSequence)
{
    Rng a(100);
    const auto x0 = a.next();
    a.next();
    a.reseed(100);
    EXPECT_EQ(a.next(), x0);
}

} // namespace
} // namespace secdimm
