/**
 * @file
 * The robustness acceptance suite (docs/FAULTS.md): with >=1% frame
 * corruption plus DRAM bit flips, every secure protocol must complete
 * a 10k-access workload under the RetryThenStop policy with
 * fault.detected == fault.injected (no silent corruption), full
 * recovery within the retry budget, intact integrity state, and
 * bit-exact data.  Separate tests pin down the two degradation
 * policies past an exhausted budget: RetryThenStop fail-stops
 * (integrityOk() goes false, zeros are served, the bus schedule keeps
 * its shape) and Degraded quarantines the faulty SDIMM and routes new
 * leaf draws around it.
 *
 * Everything here is deterministic: workload, protocol, and injector
 * RNGs are all seeded, so these campaigns reproduce exactly.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>

#include "core/secure_memory_system.hh"
#include "fault/fault_injector.hh"
#include "sdimm/indep_split_oram.hh"
#include "sdimm/independent_oram.hh"
#include "sdimm/split_oram.hh"
#include "util/rng.hh"

namespace secdimm::verify
{
namespace
{

constexpr std::size_t kAcceptanceAccesses = 10000;

/** Fill a block with a value stream derived from (salt, index). */
BlockData
valueBlock(std::uint64_t salt, std::uint64_t idx)
{
    BlockData d{};
    for (std::size_t i = 0; i < d.size(); ++i) {
        d[i] = static_cast<std::uint8_t>(
            (salt * 0x9e3779b97f4a7c15ull + idx * 131 + i) & 0xff);
    }
    return d;
}

/**
 * Drive @p access(addr, op, data) with a mixed read/write workload
 * against a shadow mirror; every read of a previously written block
 * must return the mirrored value bit-exactly.  Returns the number of
 * mirrored reads checked (so a test can assert the workload actually
 * exercised the read path).
 */
template <typename AccessFn>
std::size_t
runMirroredWorkload(AccessFn &&access, std::uint64_t region_blocks,
                    std::size_t count, std::uint64_t workload_seed)
{
    Rng rng(workload_seed);
    std::unordered_map<Addr, BlockData> mirror;
    std::size_t checked = 0;
    for (std::size_t i = 0; i < count; ++i) {
        const Addr addr = rng.nextBelow(region_blocks);
        if (rng.nextBool(0.5)) {
            const BlockData d = valueBlock(workload_seed, i);
            access(addr, oram::OramOp::Write, &d);
            mirror[addr] = d;
        } else {
            const BlockData got =
                access(addr, oram::OramOp::Read, nullptr);
            const auto it = mirror.find(addr);
            if (it != mirror.end()) {
                ++checked;
                EXPECT_EQ(got, it->second)
                    << "corrupt data at block " << addr << " (access "
                    << i << ")";
            }
        }
    }
    return checked;
}

/** The >=1% acceptance plan of ISSUE.md (wire faults + DRAM flips). */
fault::FaultPlan
acceptancePlan(std::uint64_t seed)
{
    fault::FaultPlan plan;
    plan.linkCorruptRate = 0.01;
    plan.linkDropRate = 0.005;
    plan.linkDelayRate = 0.005;
    plan.dramBitFlipRate = 0.01;
    plan.queuePerturbRate = 0.01;
    // Generous budget: with per-attempt failure probability ~0.07
    // (worst case, a whole path re-read under 1% per-bucket flips),
    // 6 retries push the per-site exhaust probability below 1e-8.
    plan.maxRetries = 6;
    plan.seed = seed;
    return plan;
}

/** Common post-campaign recovery invariants. */
void
expectFullRecovery(const fault::FaultInjector &inj)
{
    EXPECT_GT(inj.injectedTotal(), 100u)
        << "campaign too quiet to mean anything";
    EXPECT_EQ(inj.detectedTotal(), inj.injectedTotal())
        << "an injected fault went undetected";
    EXPECT_EQ(inj.unrecoveredTotal(), 0u);
    EXPECT_EQ(inj.recoveredTotal(), inj.detectedTotal())
        << "a detected fault was neither recovered nor fail-stopped";
}

TEST(FaultRecovery, IndependentCompletes10kAccessCampaign)
{
    sdimm::IndependentOram::Params ip;
    ip.perSdimm.levels = 6;
    ip.perSdimm.stashCapacity = 200;
    ip.numSdimms = 2;
    sdimm::IndependentOram o(ip, 11);

    fault::FaultInjector inj(acceptancePlan(21));
    o.setFaultInjector(&inj, fault::DegradationPolicy::RetryThenStop);

    const std::size_t checked = runMirroredWorkload(
        [&](Addr a, oram::OramOp op, const BlockData *d) {
            return o.access(a, op, d);
        },
        128, kAcceptanceAccesses, 42);

    EXPECT_GT(checked, 1000u);
    EXPECT_FALSE(o.failedStop());
    EXPECT_TRUE(o.integrityOk());
    EXPECT_EQ(o.quarantinedCount(), 0u);
    expectFullRecovery(inj);
}

TEST(FaultRecovery, SplitCompletes10kAccessCampaign)
{
    sdimm::SplitOram::Params sp;
    sp.tree.levels = 6;
    sp.tree.stashCapacity = 200;
    sp.slices = 2;
    sdimm::SplitOram o(sp, 13);

    fault::FaultInjector inj(acceptancePlan(23));
    o.setFaultInjector(&inj);

    const std::size_t checked = runMirroredWorkload(
        [&](Addr a, oram::OramOp op, const BlockData *d) {
            return o.access(a, op, d);
        },
        64, kAcceptanceAccesses, 43);

    EXPECT_GT(checked, 1000u);
    EXPECT_TRUE(o.integrityOk());
    expectFullRecovery(inj);
}

TEST(FaultRecovery, IndepSplitCompletes10kAccessCampaign)
{
    sdimm::IndepSplitOram::Params gp;
    gp.perGroupTree.levels = 6;
    gp.perGroupTree.stashCapacity = 200;
    gp.groups = 2;
    gp.slicesPerGroup = 2;
    sdimm::IndepSplitOram o(gp, 17);

    fault::FaultInjector inj(acceptancePlan(27));
    o.setFaultInjector(&inj, fault::DegradationPolicy::RetryThenStop);

    const std::size_t checked = runMirroredWorkload(
        [&](Addr a, oram::OramOp op, const BlockData *d) {
            return o.access(a, op, d);
        },
        128, kAcceptanceAccesses, 44);

    EXPECT_GT(checked, 1000u);
    EXPECT_FALSE(o.failedStop());
    EXPECT_TRUE(o.integrityOk());
    expectFullRecovery(inj);
}

TEST(FaultRecovery, RetryThenStopFailsStopOnExhaustedBudget)
{
    sdimm::IndependentOram::Params ip;
    ip.perSdimm.levels = 4;
    ip.perSdimm.stashCapacity = 150;
    ip.numSdimms = 2;
    sdimm::IndependentOram o(ip, 7);

    fault::FaultPlan hostile; // Every frame corrupted: nothing gets
    hostile.linkCorruptRate = 1.0; // through, the budget must blow.
    hostile.maxRetries = 2;
    hostile.seed = 3;
    fault::FaultInjector inj(hostile);
    o.setFaultInjector(&inj, fault::DegradationPolicy::RetryThenStop);

    const BlockData zero{};
    const BlockData first = o.access(0, oram::OramOp::Read, nullptr);
    EXPECT_EQ(first, zero);
    EXPECT_TRUE(o.failedStop());
    EXPECT_FALSE(o.integrityOk());
    EXPECT_GE(inj.unrecoveredTotal(), 1u);
    EXPECT_EQ(inj.detectedTotal(), inj.injectedTotal());

    // A stopped system still walks the full (shaped) schedule and
    // serves zeros -- it must not crash or leak which block was lost.
    const std::size_t bus_before = o.busTrace().size();
    const BlockData later = o.access(1, oram::OramOp::Read, nullptr);
    EXPECT_EQ(later, zero);
    EXPECT_GT(o.busTrace().size(), bus_before);
}

TEST(FaultRecovery, DegradedPolicyQuarantinesAndContinues)
{
    sdimm::IndependentOram::Params ip;
    ip.perSdimm.levels = 4;
    ip.perSdimm.stashCapacity = 150;
    ip.numSdimms = 4;
    sdimm::IndependentOram o(ip, 9);

    // Exhausts the 1-retry budget every few dozen accesses, but
    // gently enough that an evacuation stream usually survives.
    fault::FaultPlan rough;
    rough.linkCorruptRate = 0.05;
    rough.maxRetries = 1;
    rough.seed = 5;
    fault::FaultInjector inj(rough);
    o.setFaultInjector(&inj, fault::DegradationPolicy::Degraded);

    // The protocol degrades instead of stopping: the first exhaustion
    // quarantines that SDIMM and the schedule keeps running on the
    // survivors.
    Addr a = 0;
    while (o.quarantinedCount() == 0 && a < 2000) {
        const BlockData d = valueBlock(1, a);
        o.access(a % 32, (a & 1) ? oram::OramOp::Write : oram::OramOp::Read,
                 (a & 1) ? &d : nullptr);
        ++a;
    }
    ASSERT_GE(o.quarantinedCount(), 1u);
    ASSERT_LT(o.quarantinedCount(), ip.numSdimms);
    EXPECT_FALSE(o.failedStop());
    EXPECT_TRUE(o.integrityOk());
    EXPECT_GT(inj.unrecoveredTotal(), 0u);
    EXPECT_EQ(inj.detectedTotal(), inj.injectedTotal());

    // The quarantine is visible in the exported metrics.  (No
    // degraded accesses yet: the evacuation remapped every block off
    // the dead unit, so surviving traffic is served normally.)
    util::MetricsRegistry m;
    o.exportMetrics(m, "sdimm");
    EXPECT_GE(m.counter("sdimm.quarantined"), 1u);

    // Keep hammering: when the LAST unit's budget also exhausts there
    // is nowhere left to degrade to, and the protocol takes the
    // zero-survivor fail-stop with its distinct ledger entry instead
    // of quarantining everything and serving zeros.
    for (a = 0; a < 20000 && !o.failedStop(); ++a)
        o.access(a % 32, oram::OramOp::Read, nullptr);
    EXPECT_TRUE(o.failedStop());
    EXPECT_FALSE(o.integrityOk());
    EXPECT_EQ(inj.zeroSurvivorFailStops(), 1u);
    EXPECT_EQ(inj.detectedTotal(),
              inj.recoveredTotal() + inj.unrecoveredTotal());

    // A stopped system still walks the shaped schedule and counts the
    // zero-served accesses as degraded.
    for (Addr extra = 0; extra < 4; ++extra)
        o.access(extra % 32, oram::OramOp::Read, nullptr);
    EXPECT_GT(inj.degradedAccesses(), 0u);
}

TEST(FaultRecovery, ZeroRatePlanDoesNotPerturbTheProtocol)
{
    // An armed injector whose plan injects nothing must leave the
    // protocol bit-identical to an unarmed run: the injector draws
    // from its own RNG stream, never the protocol's.
    sdimm::IndependentOram::Params ip;
    ip.perSdimm.levels = 5;
    ip.perSdimm.stashCapacity = 200;
    ip.numSdimms = 2;

    sdimm::IndependentOram plain(ip, 31);
    sdimm::IndependentOram armed(ip, 31);
    fault::FaultInjector inj(fault::FaultPlan::none());
    armed.setFaultInjector(&inj, fault::DegradationPolicy::RetryThenStop);

    Rng rng(8);
    for (int i = 0; i < 300; ++i) {
        const Addr a = rng.nextBelow(64);
        const bool write = rng.nextBool(0.5);
        const BlockData d = valueBlock(2, static_cast<std::uint64_t>(i));
        const BlockData got_plain =
            plain.access(a, write ? oram::OramOp::Write : oram::OramOp::Read,
                         write ? &d : nullptr);
        const BlockData got_armed =
            armed.access(a, write ? oram::OramOp::Write : oram::OramOp::Read,
                         write ? &d : nullptr);
        ASSERT_EQ(got_plain, got_armed) << "diverged at access " << i;
    }
    ASSERT_EQ(plain.busTrace().size(), armed.busTrace().size());
    for (std::size_t i = 0; i < plain.busTrace().size(); ++i) {
        EXPECT_EQ(plain.busTrace()[i].type, armed.busTrace()[i].type);
        EXPECT_EQ(plain.busTrace()[i].sdimm, armed.busTrace()[i].sdimm);
    }
    EXPECT_EQ(inj.injectedTotal(), 0u);
    EXPECT_EQ(inj.detectedTotal(), 0u);
}

// ---------------------------------------------------------------------
// Permanent faults (docs/FAULTS.md): watchdog detection, quarantine,
// and oblivious evacuation under DegradationPolicy::Degraded.
// ---------------------------------------------------------------------

TEST(PermanentFaults, IndependentSurvivesHardDeathMidCampaign)
{
    sdimm::IndependentOram::Params ip;
    ip.perSdimm.levels = 6;
    ip.perSdimm.stashCapacity = 200;
    ip.numSdimms = 2;
    sdimm::IndependentOram o(ip, 11);

    // SDIMM 1 dies hard at access 2500 of a 10k-access campaign; no
    // transient noise, so every ledger entry is the one watchdog
    // episode and the campaign must come back bit-exact.
    const fault::FaultPlan plan = fault::FaultPlan::hardDeath(1, 2500, 21);
    fault::FaultInjector inj(plan);
    o.setFaultInjector(&inj, fault::DegradationPolicy::Degraded);

    const std::size_t checked = runMirroredWorkload(
        [&](Addr a, oram::OramOp op, const BlockData *d) {
            return o.access(a, op, d);
        },
        128, kAcceptanceAccesses, 42);

    EXPECT_GT(checked, 1000u);
    EXPECT_FALSE(o.failedStop());
    EXPECT_TRUE(o.integrityOk());
    EXPECT_EQ(o.quarantinedCount(), 1u);
    EXPECT_TRUE(o.isQuarantined(1));

    EXPECT_EQ(inj.injected(fault::FaultKind::WatchdogTimeout), 1u);
    EXPECT_EQ(inj.detectedTotal(), inj.injectedTotal());
    EXPECT_EQ(inj.unrecoveredTotal(), 0u);
    EXPECT_EQ(inj.recoveredTotal(), inj.detectedTotal());
    EXPECT_EQ(inj.watchdogProbes(), plan.watchdogMaxProbes);
    EXPECT_GT(inj.watchdogBackoffCycles(), 0u);
    EXPECT_EQ(inj.quarantinedUnits(), 1u);

    // The dead subtree was drained: every block lives off SDIMM 1
    // now, and the evacuation stream was geometry-padded.
    EXPECT_GT(o.evacuatedBlocks(), 0u);
    EXPECT_EQ(inj.evacuatedBlocks(), o.evacuatedBlocks());
    EXPECT_GE(inj.evacuationAppends(),
              ip.perSdimm.capacityBlocks() * ip.numSdimms);
    const unsigned local_levels = ip.perSdimm.levels;
    for (Addr a = 0; a < 128; ++a)
        EXPECT_NE(o.leafOf(a) >> local_levels, 1u) << "block " << a;

    util::MetricsRegistry m;
    inj.exportMetrics(m, "fault");
    EXPECT_EQ(m.counter("fault.quarantined_sdimms"), 1u);
    EXPECT_GT(m.counter("fault.evacuated_blocks"), 0u);
}

TEST(PermanentFaults, IndepSplitSurvivesHardDeathMidCampaign)
{
    sdimm::IndepSplitOram::Params gp;
    gp.perGroupTree.levels = 6;
    gp.perGroupTree.stashCapacity = 200;
    gp.groups = 2;
    gp.slicesPerGroup = 2;
    sdimm::IndepSplitOram o(gp, 17);

    const fault::FaultPlan plan = fault::FaultPlan::hardDeath(0, 2500, 27);
    fault::FaultInjector inj(plan);
    o.setFaultInjector(&inj, fault::DegradationPolicy::Degraded);

    const std::size_t checked = runMirroredWorkload(
        [&](Addr a, oram::OramOp op, const BlockData *d) {
            return o.access(a, op, d);
        },
        128, kAcceptanceAccesses, 44);

    EXPECT_GT(checked, 1000u);
    EXPECT_FALSE(o.failedStop());
    EXPECT_TRUE(o.integrityOk());
    EXPECT_EQ(o.quarantinedGroupCount(), 1u);
    EXPECT_TRUE(o.isGroupQuarantined(0));

    EXPECT_EQ(inj.injected(fault::FaultKind::WatchdogTimeout), 1u);
    EXPECT_EQ(inj.detectedTotal(), inj.injectedTotal());
    EXPECT_EQ(inj.unrecoveredTotal(), 0u);
    EXPECT_EQ(inj.recoveredTotal(), inj.detectedTotal());
    EXPECT_EQ(inj.quarantinedUnits(), 1u);
    EXPECT_GT(o.evacuatedBlocks(), 0u);
    EXPECT_EQ(inj.evacuatedBlocks(), o.evacuatedBlocks());

    util::MetricsRegistry m;
    o.exportMetrics(m, "sdimm.indep_split");
    EXPECT_EQ(m.counter("sdimm.indep_split.quarantined_groups"), 1u);
    EXPECT_GT(m.counter("sdimm.indep_split.evacuated_blocks"), 0u);
}

TEST(PermanentFaults, StuckAtIsCaughtOnTheFirstAccess)
{
    sdimm::IndependentOram::Params ip;
    ip.perSdimm.levels = 4;
    ip.perSdimm.stashCapacity = 150;
    ip.numSdimms = 2;
    sdimm::IndependentOram o(ip, 19);

    fault::FaultInjector inj(fault::FaultPlan::stuckAt(0, 33));
    o.setFaultInjector(&inj, fault::DegradationPolicy::Degraded);

    const BlockData d = valueBlock(3, 0);
    o.access(0, oram::OramOp::Write, &d);
    EXPECT_TRUE(o.isQuarantined(0));
    EXPECT_EQ(inj.detected(fault::FaultKind::WatchdogTimeout), 1u);
    EXPECT_EQ(inj.unrecoveredTotal(), 0u);
    // A boot-dead SDIMM holds no live blocks, so the evacuation is
    // pure geometry-padded dummies.
    EXPECT_EQ(o.evacuatedBlocks(), 0u);
    EXPECT_EQ(o.access(0, oram::OramOp::Read, nullptr), d);
    EXPECT_TRUE(o.integrityOk());
}

TEST(PermanentFaults, NonDegradedPolicyFailsStopOnDeadSdimm)
{
    sdimm::IndependentOram::Params ip;
    ip.perSdimm.levels = 4;
    ip.perSdimm.stashCapacity = 150;
    ip.numSdimms = 2;
    sdimm::IndependentOram o(ip, 23);

    fault::FaultInjector inj(fault::FaultPlan::stuckAt(0, 35));
    o.setFaultInjector(&inj, fault::DegradationPolicy::RetryThenStop);

    const BlockData zero{};
    EXPECT_EQ(o.access(0, oram::OramOp::Read, nullptr), zero);
    EXPECT_TRUE(o.failedStop());
    EXPECT_FALSE(o.integrityOk());
    EXPECT_EQ(inj.detected(fault::FaultKind::WatchdogTimeout), 1u);
    EXPECT_EQ(inj.unrecoveredTotal(), 1u);
    EXPECT_EQ(o.quarantinedCount(), 0u);
}

// ---------------------------------------------------------------------
// Facade level: Options.faultPlan arms every protocol uniformly.
// ---------------------------------------------------------------------

using Protocol = core::SecureMemorySystem::Protocol;

class FacadeFaultRecovery : public ::testing::TestWithParam<Protocol>
{
};

INSTANTIATE_TEST_SUITE_P(
    Protocols, FacadeFaultRecovery,
    ::testing::Values(Protocol::PathOram, Protocol::Freecursive,
                      Protocol::Independent, Protocol::Split,
                      Protocol::IndepSplit),
    [](const ::testing::TestParamInfo<Protocol> &info) {
        switch (info.param) {
          case Protocol::PathOram: return "PathOram";
          case Protocol::Freecursive: return "Freecursive";
          case Protocol::Independent: return "Independent";
          case Protocol::Split: return "Split";
          case Protocol::IndepSplit: return "IndepSplit";
        }
        return "unknown";
    });

TEST_P(FacadeFaultRecovery, FaultPlanOptionArmsAndRecovers)
{
    core::SecureMemorySystem::Options opt;
    opt.protocol = GetParam();
    opt.capacityBytes = 64 << 10;
    opt.numSdimms = 2;
    opt.seed = 5;
    opt.faultPlan = acceptancePlan(99);
    opt.degradationPolicy = fault::DegradationPolicy::RetryThenStop;
    core::SecureMemorySystem mem(opt);
    ASSERT_NE(mem.faultInjector(), nullptr);

    const std::size_t checked = runMirroredWorkload(
        [&](Addr a, oram::OramOp op, const BlockData *d) -> BlockData {
            if (op == oram::OramOp::Write) {
                mem.writeBlock(a, *d);
                return BlockData{};
            }
            return mem.readBlock(a);
        },
        100, 1000, 45);

    EXPECT_GT(checked, 100u);
    EXPECT_TRUE(mem.integrityOk());
    const fault::FaultInjector &inj = *mem.faultInjector();
    EXPECT_GT(inj.injectedTotal(), 0u);
    EXPECT_EQ(inj.detectedTotal(), inj.injectedTotal());
    EXPECT_EQ(inj.unrecoveredTotal(), 0u);
    EXPECT_EQ(inj.recoveredTotal(), inj.detectedTotal());

    // The fault.* family lands in the facade metric snapshot.
    const util::MetricsRegistry m = mem.metrics();
    EXPECT_EQ(m.counter("fault.injected.total"), inj.injectedTotal());
    EXPECT_EQ(m.counter("fault.unrecovered.total"), 0u);
}

TEST(FaultRecovery, FacadeWithoutPlanHasNoInjector)
{
    core::SecureMemorySystem::Options opt;
    opt.protocol = Protocol::Independent;
    opt.capacityBytes = 64 << 10;
    core::SecureMemorySystem mem(opt);
    EXPECT_EQ(mem.faultInjector(), nullptr);
    const util::MetricsRegistry m = mem.metrics();
    for (const auto &n : m.names())
        EXPECT_EQ(n.rfind("fault.", 0), std::string::npos) << n;
}

} // namespace
} // namespace secdimm::verify
