/**
 * @file
 * The tentpole security test: two workloads of identical length and
 * identical index/reuse structure but DIFFERENT addresses (disjoint
 * regions) and different values are run through every backend, and the
 * externally visible traces are compared.  Every secure design must
 * leave the pair statistically indistinguishable; the non-secure
 * baseline, which puts the raw address stream on the channel, must
 * fail -- a positive control proving the checker has teeth.
 */

#include <gtest/gtest.h>

#include "core/system_config.hh"
#include "crypto/aes128.hh"
#include "oram/path_oram.hh"
#include "sdimm/indep_split_oram.hh"
#include "sdimm/independent_oram.hh"
#include "sdimm/split_oram.hh"
#include "util/rng.hh"
#include "verify/channel_observer.hh"
#include "verify/trace_checker.hh"

namespace secdimm::verify
{
namespace
{

constexpr std::size_t kAccesses = 256;

/**
 * Byte-address access sequence with a reproducible index/reuse
 * structure: the SAME @p structure_seed yields the same draw of
 * indices, reuses, and read/write flags, so two sequences differing
 * only in @p base_block touch disjoint regions through identical
 * locality.  (Identical structure matters: the Freecursive PLB reacts
 * to reuse, and an asymmetric pair would fail for benign reasons.)
 */
std::vector<std::pair<Addr, bool>>
makeSequence(std::uint64_t structure_seed, std::uint64_t base_block,
             std::uint64_t region_blocks, std::size_t count = kAccesses)
{
    Rng rng(structure_seed);
    std::vector<std::pair<Addr, bool>> seq;
    std::vector<std::uint64_t> pool;
    seq.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        std::uint64_t idx;
        if (!pool.empty() && rng.nextBool(0.3)) {
            idx = pool[rng.nextBelow(pool.size())];
        } else {
            idx = rng.nextBelow(region_blocks);
            pool.push_back(idx);
        }
        seq.emplace_back((base_block + idx) * blockBytes,
                         rng.nextBool(0.5));
    }
    return seq;
}

// ---------------------------------------------------------------------
// Timing layer: DRAM channels / link buses, via attachToBackend().
// ---------------------------------------------------------------------

struct OblCase
{
    core::DesignPoint design;
    bool expectIndistinguishable;
};

class TimingObliviousness : public ::testing::TestWithParam<OblCase>
{
  protected:
    std::vector<TraceEvent>
    runTrace(const std::vector<std::pair<Addr, bool>> &seq,
             std::uint64_t backend_seed) const
    {
        core::SystemConfig cfg =
            core::makeConfig(GetParam().design, 12, 4);
        cfg.cpuGeom.rowsPerBank = 4096;
        cfg.sdimmGeom.rowsPerBank = 4096;
        auto backend = core::buildBackend(cfg, backend_seed);
        ChannelObserver obs;
        EXPECT_GT(attachToBackend(*backend, obs), 0u);
        driveBackend(*backend, seq);
        return obs.events();
    }
};

INSTANTIATE_TEST_SUITE_P(
    Designs, TimingObliviousness,
    ::testing::Values(
        OblCase{core::DesignPoint::NonSecure, false},
        OblCase{core::DesignPoint::PathOram, true},
        OblCase{core::DesignPoint::Freecursive, true},
        OblCase{core::DesignPoint::Indep2, true},
        OblCase{core::DesignPoint::Split2, true},
        OblCase{core::DesignPoint::IndepSplit, true}),
    [](const ::testing::TestParamInfo<OblCase> &info) {
        std::string n = core::designName(info.param.design);
        for (char &c : n) {
            if (c == '-')
                c = '_';
        }
        return n;
    });

TEST_P(TimingObliviousness, DisjointRegionsMatchVerdict)
{
    // Same structure, disjoint regions, independent backend seeds (so
    // a PASS cannot come from shared randomness).
    const auto trace_a = runTrace(makeSequence(42, 0, 2048), 11);
    const auto trace_b = runTrace(makeSequence(42, 1 << 16, 2048), 77);
    ASSERT_FALSE(trace_a.empty());
    ASSERT_FALSE(trace_b.empty());
    const TraceComparison c = compareTraces(trace_a, trace_b);
    EXPECT_EQ(c.indistinguishable, GetParam().expectIndistinguishable)
        << core::designName(GetParam().design) << ": " << c.summary();
}

TEST_P(TimingObliviousness, SameWorkloadAlwaysIndistinguishable)
{
    // Sanity: the thresholds admit the null case (same addresses, only
    // the backend seed differs), so a FAIL above really is leakage.
    const auto seq = makeSequence(42, 0, 2048);
    const TraceComparison c =
        compareTraces(runTrace(seq, 11), runTrace(seq, 77));
    EXPECT_TRUE(c.indistinguishable)
        << core::designName(GetParam().design) << ": " << c.summary();
}

// ---------------------------------------------------------------------
// Functional layer: the real-crypto protocol implementations.
// ---------------------------------------------------------------------

/** Fill a block with a value stream derived from (salt, index). */
BlockData
valueBlock(std::uint64_t salt, std::uint64_t idx)
{
    BlockData d{};
    for (std::size_t i = 0; i < d.size(); ++i) {
        d[i] = static_cast<std::uint8_t>(
            (salt * 0x9e3779b97f4a7c15ull + idx * 31 + i) & 0xff);
    }
    return d;
}

/** Drive @p access(addr, write, data) with the shared structure. */
template <typename AccessFn>
void
driveFunctional(AccessFn &&access, std::uint64_t structure_seed,
                std::uint64_t base_block, std::uint64_t region_blocks,
                std::uint64_t value_salt, std::size_t count = 512)
{
    Rng rng(structure_seed);
    std::vector<std::uint64_t> pool;
    for (std::size_t i = 0; i < count; ++i) {
        std::uint64_t idx;
        if (!pool.empty() && rng.nextBool(0.3)) {
            idx = pool[rng.nextBelow(pool.size())];
        } else {
            idx = rng.nextBelow(region_blocks);
            pool.push_back(idx);
        }
        access(base_block + idx, rng.nextBool(0.5),
               valueBlock(value_salt, idx));
    }
}

std::vector<TraceEvent>
pathOramTrace(std::uint64_t oram_seed, std::uint64_t base_block,
              std::uint64_t region_blocks, std::uint64_t value_salt)
{
    oram::OramParams p;
    p.levels = 8;
    p.stashCapacity = 200;
    oram::PathOram o(p, crypto::makeKey(0xaa, oram_seed),
                     crypto::makeKey(0xbb, oram_seed * 3 + 1),
                     oram_seed);
    ChannelObserver obs;
    obs.attach(o.store());
    driveFunctional(
        [&](Addr addr, bool write, const BlockData &d) {
            o.access(addr, write ? oram::OramOp::Write : oram::OramOp::Read,
                     write ? &d : nullptr);
        },
        42, base_block, region_blocks, value_salt);
    return obs.events();
}

TEST(FunctionalObliviousness, PathOramAddressRegions)
{
    // Disjoint halves of the address space: the bucket access
    // sequence must not betray which half is in use.
    const TraceComparison c = compareTraces(
        pathOramTrace(11, 0, 256, 5), pathOramTrace(77, 256, 256, 9));
    EXPECT_TRUE(c.indistinguishable) << c.summary();
}

TEST(FunctionalObliviousness, PathOramValuesOnly)
{
    // Same addresses, different written values: ciphertext hides data.
    const TraceComparison c = compareTraces(
        pathOramTrace(11, 0, 256, 5), pathOramTrace(77, 0, 256, 1234));
    EXPECT_TRUE(c.indistinguishable) << c.summary();
}

std::vector<TraceEvent>
independentTrace(std::uint64_t oram_seed, std::uint64_t base_block,
                 std::uint64_t region_blocks)
{
    sdimm::IndependentOram::Params ip;
    ip.perSdimm.levels = 6;
    ip.perSdimm.stashCapacity = 200;
    ip.numSdimms = 2;
    sdimm::IndependentOram o(ip, oram_seed);
    driveFunctional(
        [&](Addr addr, bool write, const BlockData &d) {
            o.access(addr, write ? oram::OramOp::Write : oram::OramOp::Read,
                     write ? &d : nullptr);
        },
        42, base_block, region_blocks, oram_seed, 384);
    // The visible trace is the (command type, target SDIMM) stream.
    std::vector<TraceEvent> t;
    t.reserve(o.busTrace().size());
    for (const sdimm::BusEvent &e : o.busTrace()) {
        t.push_back(TraceEvent{
            TraceEventKind::ShortCmd,
            (static_cast<std::uint64_t>(e.type) << 8) | e.sdimm,
            t.size()});
    }
    return t;
}

TEST(FunctionalObliviousness, IndependentCommandStream)
{
    const TraceComparison c = compareTraces(
        independentTrace(11, 0, 128), independentTrace(77, 128, 128));
    EXPECT_TRUE(c.indistinguishable) << c.summary();
}

std::vector<TraceEvent>
indepSplitTrace(std::uint64_t oram_seed, std::uint64_t base_block,
                std::uint64_t region_blocks)
{
    sdimm::IndepSplitOram::Params gp;
    gp.perGroupTree.levels = 6;
    gp.perGroupTree.stashCapacity = 200;
    gp.groups = 2;
    gp.slicesPerGroup = 2;
    sdimm::IndepSplitOram o(gp, oram_seed);
    driveFunctional(
        [&](Addr addr, bool write, const BlockData &d) {
            o.access(addr, write ? oram::OramOp::Write : oram::OramOp::Read,
                     write ? &d : nullptr);
        },
        42, base_block, region_blocks, oram_seed, 384);
    std::vector<TraceEvent> t;
    t.reserve(o.busTrace().size());
    for (const sdimm::GroupBusEvent &e : o.busTrace()) {
        t.push_back(TraceEvent{
            TraceEventKind::ShortCmd,
            (static_cast<std::uint64_t>(e.type) << 8) | e.group,
            t.size()});
    }
    return t;
}

TEST(FunctionalObliviousness, IndepSplitCommandStream)
{
    const TraceComparison c = compareTraces(
        indepSplitTrace(11, 0, 128), indepSplitTrace(77, 128, 128));
    EXPECT_TRUE(c.indistinguishable) << c.summary();
}

std::vector<TraceEvent>
splitLeafTrace(std::uint64_t oram_seed, std::uint64_t base_block,
               std::uint64_t region_blocks)
{
    sdimm::SplitOram::Params sp;
    sp.tree.levels = 6;
    sp.tree.stashCapacity = 200;
    sp.slices = 2;
    sdimm::SplitOram o(sp, oram_seed);
    driveFunctional(
        [&](Addr addr, bool write, const BlockData &d) {
            o.access(addr, write ? oram::OramOp::Write : oram::OramOp::Read,
                     write ? &d : nullptr);
        },
        42, base_block, region_blocks, oram_seed, 4096);
    // The path (leaf) choice is what the CPU channel reveals per
    // access; it must look uniform regardless of the addresses.  4096
    // samples keep the expected statistical TV distance over the 64
    // leaf bins (~sqrt(bins/(pi*n)) ~= 0.07) well inside the 0.12
    // threshold; 512 samples would sit right at it.
    std::vector<TraceEvent> t;
    t.reserve(o.leafTrace().size());
    for (LeafId leaf : o.leafTrace())
        t.push_back(TraceEvent{TraceEventKind::Read, leaf, t.size()});
    return t;
}

TEST(FunctionalObliviousness, SplitLeafSequence)
{
    const TraceComparison c = compareTraces(
        splitLeafTrace(11, 0, 64), splitLeafTrace(77, 64, 64));
    EXPECT_TRUE(c.indistinguishable) << c.summary();
}

} // namespace
} // namespace secdimm::verify
