/**
 * @file
 * Retries must not leak: a fault-laden run (injected wire faults and
 * DRAM bit flips, each triggering detect-and-retry) is compared
 * against a fault-free run of the SAME workload structure over a
 * DIFFERENT address region, through the PR 2 trace checker.  Because
 * every injector roll happens unconditionally per opportunity
 * (message sent / bucket read), the retransmission schedule is a pure
 * function of (plan.seed, opportunity index) -- so the extra events it
 * adds are address-independent noise and the pair must stay
 * statistically indistinguishable for every secure design point.
 */

#include <gtest/gtest.h>

#include <optional>

#include "crypto/aes128.hh"
#include "fault/fault_injector.hh"
#include "oram/path_oram.hh"
#include "sdimm/indep_split_oram.hh"
#include "sdimm/independent_oram.hh"
#include "sdimm/split_oram.hh"
#include "util/rng.hh"
#include "verify/channel_observer.hh"
#include "verify/trace_checker.hh"

namespace secdimm::verify
{
namespace
{

/** Fill a block with a value stream derived from (salt, index). */
BlockData
valueBlock(std::uint64_t salt, std::uint64_t idx)
{
    BlockData d{};
    for (std::size_t i = 0; i < d.size(); ++i) {
        d[i] = static_cast<std::uint8_t>(
            (salt * 0x9e3779b97f4a7c15ull + idx * 31 + i) & 0xff);
    }
    return d;
}

/** Drive @p access(addr, write, data) with the shared structure. */
template <typename AccessFn>
void
driveFunctional(AccessFn &&access, std::uint64_t structure_seed,
                std::uint64_t base_block, std::uint64_t region_blocks,
                std::uint64_t value_salt, std::size_t count)
{
    Rng rng(structure_seed);
    std::vector<std::uint64_t> pool;
    for (std::size_t i = 0; i < count; ++i) {
        std::uint64_t idx;
        if (!pool.empty() && rng.nextBool(0.3)) {
            idx = pool[rng.nextBelow(pool.size())];
        } else {
            idx = rng.nextBelow(region_blocks);
            pool.push_back(idx);
        }
        access(base_block + idx, rng.nextBool(0.5),
               valueBlock(value_salt, idx));
    }
}

/** 1-3% wire faults plus DRAM flips; generous budget, no fail-stop. */
fault::FaultPlan
ladenPlan(std::uint64_t seed)
{
    fault::FaultPlan plan;
    plan.linkCorruptRate = 0.01;
    plan.linkDropRate = 0.01;
    plan.linkDelayRate = 0.01;
    plan.dramBitFlipRate = 0.01;
    plan.queuePerturbRate = 0.01;
    plan.maxRetries = 6;
    plan.seed = seed;
    return plan;
}

std::vector<TraceEvent>
pathOramStoreTrace(std::uint64_t oram_seed, std::uint64_t base_block,
                   bool with_faults)
{
    oram::OramParams p;
    p.levels = 8;
    p.stashCapacity = 200;
    oram::PathOram o(p, crypto::makeKey(0xaa, oram_seed),
                     crypto::makeKey(0xbb, oram_seed * 3 + 1),
                     oram_seed);
    std::optional<fault::FaultInjector> inj;
    if (with_faults) {
        inj.emplace(ladenPlan(oram_seed));
        o.setFaultInjector(&*inj);
    }
    ChannelObserver obs;
    obs.attach(o.store());
    driveFunctional(
        [&](Addr addr, bool write, const BlockData &d) {
            o.access(addr, write ? oram::OramOp::Write : oram::OramOp::Read,
                     write ? &d : nullptr);
        },
        42, base_block, 256, oram_seed, 512);
    if (with_faults) {
        EXPECT_GT(inj->injectedTotal(), 0u);
        EXPECT_EQ(inj->unrecoveredTotal(), 0u);
    }
    return obs.events();
}

TEST(FaultObliviousness, PathOramRetriesDoNotLeakRegion)
{
    // Fault-laden over region A vs fault-free over disjoint region B:
    // the extra (retried) bucket reads must not betray the region.
    const TraceComparison c =
        compareTraces(pathOramStoreTrace(11, 0, true),
                      pathOramStoreTrace(77, 256, false));
    EXPECT_TRUE(c.indistinguishable) << c.summary();
}

std::vector<TraceEvent>
independentBusTrace(std::uint64_t oram_seed, std::uint64_t base_block,
                    bool with_faults)
{
    sdimm::IndependentOram::Params ip;
    ip.perSdimm.levels = 6;
    ip.perSdimm.stashCapacity = 200;
    ip.numSdimms = 2;
    sdimm::IndependentOram o(ip, oram_seed);
    std::optional<fault::FaultInjector> inj;
    if (with_faults) {
        inj.emplace(ladenPlan(oram_seed));
        o.setFaultInjector(&*inj,
                           fault::DegradationPolicy::RetryThenStop);
    }
    driveFunctional(
        [&](Addr addr, bool write, const BlockData &d) {
            o.access(addr, write ? oram::OramOp::Write : oram::OramOp::Read,
                     write ? &d : nullptr);
        },
        42, base_block, 128, oram_seed, 384);
    if (with_faults) {
        EXPECT_GT(inj->injectedTotal(), 0u);
        EXPECT_FALSE(o.failedStop());
    }
    // The visible trace is the (command type, target SDIMM) stream --
    // retransmissions included, exactly as a bus analyst would see it.
    std::vector<TraceEvent> t;
    t.reserve(o.busTrace().size());
    for (const sdimm::BusEvent &e : o.busTrace()) {
        t.push_back(TraceEvent{
            TraceEventKind::ShortCmd,
            (static_cast<std::uint64_t>(e.type) << 8) | e.sdimm,
            t.size()});
    }
    return t;
}

TEST(FaultObliviousness, IndependentRetriesDoNotLeakRegion)
{
    const TraceComparison c =
        compareTraces(independentBusTrace(11, 0, true),
                      independentBusTrace(77, 128, false));
    EXPECT_TRUE(c.indistinguishable) << c.summary();
}

TEST(FaultObliviousness, IndependentFaultScheduleIsDataIndependent)
{
    // Same addresses, same injector seed, different VALUES (the salt
    // is the oram seed's job only in disjoint-region tests): if any
    // roll were gated on data, the two command streams would diverge.
    const auto run = [](std::uint64_t value_salt) {
        sdimm::IndependentOram::Params ip;
        ip.perSdimm.levels = 6;
        ip.perSdimm.stashCapacity = 200;
        ip.numSdimms = 2;
        sdimm::IndependentOram o(ip, 19);
        fault::FaultInjector inj(ladenPlan(55));
        o.setFaultInjector(&inj,
                           fault::DegradationPolicy::RetryThenStop);
        driveFunctional(
            [&](Addr addr, bool write, const BlockData &d) {
                o.access(addr,
                         write ? oram::OramOp::Write : oram::OramOp::Read,
                         write ? &d : nullptr);
            },
            42, 0, 128, value_salt, 256);
        std::vector<std::pair<sdimm::SdimmCommandType, unsigned>> t;
        for (const sdimm::BusEvent &e : o.busTrace())
            t.emplace_back(e.type, e.sdimm);
        return t;
    };
    // Not merely statistically close: the schedules are IDENTICAL.
    EXPECT_EQ(run(5), run(1234));
}

std::vector<TraceEvent>
postQuarantineTrace(std::uint64_t oram_seed, std::uint64_t base_block,
                    bool hard_death)
{
    sdimm::IndependentOram::Params ip;
    ip.perSdimm.levels = 6;
    ip.perSdimm.stashCapacity = 200;
    ip.numSdimms = 2;
    sdimm::IndependentOram o(ip, oram_seed);
    // Either SDIMM 1 dies mid-warm-up or it was dead from boot (the
    // survivor-only baseline); in both cases the measured window
    // starts with the unit quarantined and its subtree evacuated.
    fault::FaultInjector inj(
        hard_death ? fault::FaultPlan::hardDeath(1, 200, oram_seed)
                   : fault::FaultPlan::stuckAt(1, oram_seed));
    o.setFaultInjector(&inj, fault::DegradationPolicy::Degraded);
    driveFunctional(
        [&](Addr addr, bool write, const BlockData &d) {
            o.access(addr, write ? oram::OramOp::Write : oram::OramOp::Read,
                     write ? &d : nullptr);
        },
        42, base_block, 128, oram_seed, 400);
    EXPECT_TRUE(o.isQuarantined(1));
    EXPECT_EQ(inj.unrecoveredTotal(), 0u);
    o.clearBusTrace();
    driveFunctional(
        [&](Addr addr, bool write, const BlockData &d) {
            o.access(addr, write ? oram::OramOp::Write : oram::OramOp::Read,
                     write ? &d : nullptr);
        },
        43, base_block, 128, oram_seed, 384);
    std::vector<TraceEvent> t;
    t.reserve(o.busTrace().size());
    for (const sdimm::BusEvent &e : o.busTrace()) {
        t.push_back(TraceEvent{
            TraceEventKind::ShortCmd,
            (static_cast<std::uint64_t>(e.type) << 8) | e.sdimm,
            t.size()});
    }
    return t;
}

TEST(FaultObliviousness, PostQuarantineTraceMatchesSurvivorOnlyRun)
{
    // A bus analyst watching the channel AFTER the fail-over must not
    // be able to tell a system that lost an SDIMM mid-run from one
    // that booted without it (disjoint regions, different seeds).
    const TraceComparison c =
        compareTraces(postQuarantineTrace(11, 0, true),
                      postQuarantineTrace(77, 128, false));
    EXPECT_TRUE(c.indistinguishable) << c.summary();
}

std::vector<TraceEvent>
indepSplitBusTrace(std::uint64_t oram_seed, std::uint64_t base_block,
                   bool with_faults)
{
    sdimm::IndepSplitOram::Params gp;
    gp.perGroupTree.levels = 6;
    gp.perGroupTree.stashCapacity = 200;
    gp.groups = 2;
    gp.slicesPerGroup = 2;
    sdimm::IndepSplitOram o(gp, oram_seed);
    std::optional<fault::FaultInjector> inj;
    if (with_faults) {
        inj.emplace(ladenPlan(oram_seed));
        o.setFaultInjector(&*inj,
                           fault::DegradationPolicy::RetryThenStop);
    }
    driveFunctional(
        [&](Addr addr, bool write, const BlockData &d) {
            o.access(addr, write ? oram::OramOp::Write : oram::OramOp::Read,
                     write ? &d : nullptr);
        },
        42, base_block, 128, oram_seed, 384);
    if (with_faults) {
        EXPECT_GT(inj->injectedTotal(), 0u);
        EXPECT_FALSE(o.failedStop());
    }
    std::vector<TraceEvent> t;
    t.reserve(o.busTrace().size());
    for (const sdimm::GroupBusEvent &e : o.busTrace()) {
        t.push_back(TraceEvent{
            TraceEventKind::ShortCmd,
            (static_cast<std::uint64_t>(e.type) << 8) | e.group,
            t.size()});
    }
    return t;
}

TEST(FaultObliviousness, IndepSplitRetriesDoNotLeakRegion)
{
    const TraceComparison c =
        compareTraces(indepSplitBusTrace(11, 0, true),
                      indepSplitBusTrace(77, 128, false));
    EXPECT_TRUE(c.indistinguishable) << c.summary();
}

std::vector<TraceEvent>
splitLeafTrace(std::uint64_t oram_seed, std::uint64_t base_block,
               bool with_faults)
{
    sdimm::SplitOram::Params sp;
    sp.tree.levels = 6;
    sp.tree.stashCapacity = 200;
    sp.slices = 2;
    sdimm::SplitOram o(sp, oram_seed);
    std::optional<fault::FaultInjector> inj;
    if (with_faults) {
        inj.emplace(ladenPlan(oram_seed));
        o.setFaultInjector(&*inj);
    }
    driveFunctional(
        [&](Addr addr, bool write, const BlockData &d) {
            o.access(addr, write ? oram::OramOp::Write : oram::OramOp::Read,
                     write ? &d : nullptr);
        },
        42, base_block, 64, oram_seed, 4096);
    if (with_faults) {
        EXPECT_GT(inj->injectedTotal(), 0u);
        EXPECT_TRUE(o.integrityOk());
    }
    // The leaf (path) choice is what the CPU channel reveals per
    // access; retries re-walk the SAME path, so the sequence is
    // untouched by faults (4096 samples: see test_obliviousness.cc).
    std::vector<TraceEvent> t;
    t.reserve(o.leafTrace().size());
    for (LeafId leaf : o.leafTrace())
        t.push_back(TraceEvent{TraceEventKind::Read, leaf, t.size()});
    return t;
}

TEST(FaultObliviousness, SplitLeafSequenceUnaffectedByFaults)
{
    const TraceComparison c = compareTraces(
        splitLeafTrace(11, 0, true), splitLeafTrace(77, 64, false));
    EXPECT_TRUE(c.indistinguishable) << c.summary();
}

} // namespace
} // namespace secdimm::verify
