/**
 * @file
 * Fixed-seed fuzz campaigns over the attacker-reachable parsers, plus
 * the hand-written regressions the fuzzer's findings were distilled
 * into (truncation, bad magic, opcode mismatch, wrong-size bodies).
 */

#include <gtest/gtest.h>

#include "sdimm/sdimm_command.hh"
#include "sdimm/secure_buffer.hh"
#include "verify/fuzz.hh"

namespace secdimm::verify
{
namespace
{

using sdimm::BusDecodeStatus;
using sdimm::CommandFrame;
using sdimm::FrameError;
using sdimm::FrameParseResult;
using sdimm::SdimmCommandType;

TEST(Fuzz, CommandCodecCampaignClean)
{
    const FuzzResult r = fuzzCommandCodec(1, 20000);
    EXPECT_TRUE(r.ok()) << r.firstFailure;
    EXPECT_EQ(r.iterations, 20000u);
}

TEST(Fuzz, CommandFramesCampaignClean)
{
    const FuzzResult r = fuzzCommandFrames(1, 20000);
    EXPECT_TRUE(r.ok()) << r.firstFailure;
}

TEST(Fuzz, LinkSessionCampaignClean)
{
    const FuzzResult r = fuzzLinkSession(1, 5000);
    EXPECT_TRUE(r.ok()) << r.firstFailure;
}

TEST(Fuzz, MessageCodecsCampaignClean)
{
    const FuzzResult r = fuzzMessageCodecs(1, 20000);
    EXPECT_TRUE(r.ok()) << r.firstFailure;
}

TEST(Fuzz, CampaignsAreDeterministic)
{
    const FuzzResult a = fuzzCommandFrames(9, 2000);
    const FuzzResult b = fuzzCommandFrames(9, 2000);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.failures, b.failures);
    EXPECT_EQ(a.firstFailure, b.firstFailure);
}

TEST(Fuzz, PermanentFaultCampaignClean)
{
    // ~100 whole campaigns, rotating INDEP-2 / INDEP-4 / INDEP-SPLIT
    // with one stuck-at or hard-death unit each; the nightly workflow
    // runs the long version of this.
    const FuzzResult r = fuzzPermanentFaults(1, 100);
    EXPECT_TRUE(r.ok()) << r.firstFailure;
    EXPECT_EQ(r.iterations, 100u);
}

TEST(Fuzz, PermanentFaultCampaignIsDeterministic)
{
    const FuzzResult a = fuzzPermanentFaults(5, 30);
    const FuzzResult b = fuzzPermanentFaults(5, 30);
    EXPECT_EQ(a.failures, b.failures);
    EXPECT_EQ(a.firstFailure, b.firstFailure);
}

// ---------------------------------------------------------------------
// Frame-codec regressions (each one a malformation class the strict
// parser must name rather than crash on or misparse).
// ---------------------------------------------------------------------

TEST(FrameRegression, ShortFrameRoundTrips)
{
    CommandFrame f;
    f.type = SdimmCommandType::Probe;
    const auto wire = sdimm::serializeFrame(f);
    const FrameParseResult r = sdimm::parseFrame(wire.data(), wire.size());
    ASSERT_TRUE(r.frame.has_value()) << frameErrorName(r.error);
    EXPECT_EQ(r.frame->type, SdimmCommandType::Probe);
    EXPECT_TRUE(r.frame->payload.empty());
}

TEST(FrameRegression, LongFrameRoundTrips)
{
    CommandFrame f;
    f.type = SdimmCommandType::Access;
    f.payload = {sdimm::encodeCommand(f.type).opcode, 1, 2, 3};
    const auto wire = sdimm::serializeFrame(f);
    const FrameParseResult r = sdimm::parseFrame(wire.data(), wire.size());
    ASSERT_TRUE(r.frame.has_value()) << frameErrorName(r.error);
    EXPECT_EQ(r.frame->payload, f.payload);
}

TEST(FrameRegression, TruncatedHeaderRejected)
{
    const std::uint8_t buf[] = {sdimm::frameMagic, 0, 0};
    EXPECT_EQ(sdimm::parseFrame(buf, sizeof(buf)).error,
              FrameError::Truncated);
    EXPECT_EQ(sdimm::parseFrame(buf, 0).error, FrameError::Truncated);
}

TEST(FrameRegression, TruncatedBodyRejected)
{
    CommandFrame f;
    f.type = SdimmCommandType::Append;
    f.payload = {sdimm::encodeCommand(f.type).opcode, 9, 9, 9};
    const auto wire = sdimm::serializeFrame(f);
    for (std::size_t keep = sdimm::frameHeaderBytes;
         keep < wire.size(); ++keep) {
        EXPECT_EQ(sdimm::parseFrame(wire.data(), keep).error,
                  FrameError::Truncated)
            << "prefix length " << keep;
    }
}

TEST(FrameRegression, BadMagicRejected)
{
    CommandFrame f;
    f.type = SdimmCommandType::Probe;
    auto wire = sdimm::serializeFrame(f);
    wire[0] ^= 0xff;
    EXPECT_EQ(sdimm::parseFrame(wire.data(), wire.size()).error,
              FrameError::BadMagic);
}

TEST(FrameRegression, UnknownTypeRejected)
{
    const std::uint8_t buf[] = {sdimm::frameMagic, 9, 0, 0};
    EXPECT_EQ(sdimm::parseFrame(buf, sizeof(buf)).error,
              FrameError::UnknownType);
}

TEST(FrameRegression, TrailingBytesRejected)
{
    CommandFrame f;
    f.type = SdimmCommandType::Probe;
    auto wire = sdimm::serializeFrame(f);
    wire.push_back(0xab);
    EXPECT_EQ(sdimm::parseFrame(wire.data(), wire.size()).error,
              FrameError::LengthMismatch);
}

TEST(FrameRegression, ShortCommandWithPayloadRejected)
{
    // SendPkey is short: a declared payload is a protocol violation.
    const std::uint8_t buf[] = {sdimm::frameMagic, 0, 1, 0, 0x55};
    EXPECT_EQ(sdimm::parseFrame(buf, sizeof(buf)).error,
              FrameError::UnexpectedPayload);
}

TEST(FrameRegression, LongCommandWithoutPayloadRejected)
{
    // ReceiveSecret (type 1) is long: it must carry its opcode byte.
    const std::uint8_t buf[] = {sdimm::frameMagic, 1, 0, 0};
    EXPECT_EQ(sdimm::parseFrame(buf, sizeof(buf)).error,
              FrameError::MissingPayload);
}

TEST(FrameRegression, OpcodeMismatchRejected)
{
    CommandFrame f;
    f.type = SdimmCommandType::Access;
    f.payload = {sdimm::encodeCommand(f.type).opcode, 7};
    auto wire = sdimm::serializeFrame(f);
    wire[sdimm::frameHeaderBytes] ^= 0xff;
    EXPECT_EQ(sdimm::parseFrame(wire.data(), wire.size()).error,
              FrameError::OpcodeMismatch);
}

TEST(FrameRegression, LengthFieldSkewNamedPrecisely)
{
    // Distilled from the mode-5 structure-aware mutation: each length
    // skew direction maps to its own definite error.
    CommandFrame f;
    f.type = SdimmCommandType::Access;
    f.payload = {sdimm::encodeCommand(f.type).opcode, 1, 2};
    const auto wire = sdimm::serializeFrame(f);
    const auto skew = [&](int delta) {
        auto w = wire;
        const std::uint16_t declared = static_cast<std::uint16_t>(
            w[2] | (static_cast<unsigned>(w[3]) << 8));
        const std::uint16_t s =
            static_cast<std::uint16_t>(declared + delta);
        w[2] = static_cast<std::uint8_t>(s & 0xff);
        w[3] = static_cast<std::uint8_t>(s >> 8);
        return sdimm::parseFrame(w.data(), w.size()).error;
    };
    EXPECT_EQ(skew(1), FrameError::Truncated);
    EXPECT_EQ(skew(8), FrameError::Truncated);
    EXPECT_EQ(skew(-1), FrameError::LengthMismatch);
    // 3 - 8 wraps to 65531, past maxFramePayload.
    EXPECT_EQ(skew(-8), FrameError::Oversize);
}

TEST(FrameRegression, SplicedFramesRejected)
{
    // Mode-4 shape: the header of a long ACCESS glued onto a short
    // PROBE's (empty) body claims a payload the wire doesn't carry.
    CommandFrame a;
    a.type = SdimmCommandType::Access;
    a.payload = {sdimm::encodeCommand(a.type).opcode, 1, 2, 3};
    CommandFrame b;
    b.type = SdimmCommandType::Probe;
    const auto wa = sdimm::serializeFrame(a);
    const auto wb = sdimm::serializeFrame(b);
    std::vector<std::uint8_t> spliced(
        wa.begin(), wa.begin() + sdimm::frameHeaderBytes);
    spliced.insert(spliced.end(), wb.begin() + sdimm::frameHeaderBytes,
                   wb.end());
    EXPECT_EQ(sdimm::parseFrame(spliced.data(), spliced.size()).error,
              FrameError::Truncated);
}

TEST(FrameRegression, OversizeDeclarationRejected)
{
    // Declared payload of 5000 > maxFramePayload (checked before the
    // body-truncation test, so a 4-byte probe suffices).
    const std::uint8_t buf[] = {sdimm::frameMagic, 2, 0x88, 0x13};
    EXPECT_EQ(sdimm::parseFrame(buf, sizeof(buf)).error,
              FrameError::Oversize);
}

// ---------------------------------------------------------------------
// Strict bus decode and wrong-size message bodies (fuzz-derived
// hardening of the former SD_ASSERT paths).
// ---------------------------------------------------------------------

TEST(DecodeRegression, EveryCommandRoundTripsStrictly)
{
    for (SdimmCommandType t : sdimm::allCommands()) {
        const sdimm::DdrEncoding e = sdimm::encodeCommand(t);
        const sdimm::BusDecodeResult r = sdimm::decodeBusCommand(
            e.write, e.rasRow, e.casCol, e.opcode);
        EXPECT_EQ(r.status, BusDecodeStatus::Command)
            << sdimm::commandName(t);
        ASSERT_TRUE(r.command.has_value());
        EXPECT_EQ(*r.command, t);
    }
}

TEST(DecodeRegression, NormalAccessOutsideReservedRegion)
{
    const sdimm::BusDecodeResult r =
        sdimm::decodeBusCommand(false, 0x100, 0x0, 0);
    EXPECT_EQ(r.status, BusDecodeStatus::NormalAccess);
    EXPECT_FALSE(r.command.has_value());
    // Lenient wrapper: still nullopt, indistinguishable from malformed.
    EXPECT_FALSE(sdimm::decodeCommand(false, 0x100, 0x0, 0).has_value());
}

TEST(DecodeRegression, ReservedRegionGarbageIsMalformed)
{
    // RAS 0 with a CAS matching no Table I row.
    const sdimm::BusDecodeResult r =
        sdimm::decodeBusCommand(false, 0x0, 0x20, 0);
    EXPECT_EQ(r.status, BusDecodeStatus::Malformed);
    EXPECT_FALSE(r.command.has_value());
    // Long encoding with an unknown opcode is equally malformed.
    EXPECT_EQ(sdimm::decodeBusCommand(true, 0x0, 0x00, 0xee).status,
              BusDecodeStatus::Malformed);
}

TEST(MessageRegression, WrongSizeBodiesYieldNullopt)
{
    using sdimm::accessBodyBytes;
    using sdimm::appendBodyBytes;
    using sdimm::responseBodyBytes;
    for (const std::size_t n :
         {std::size_t{0}, accessBodyBytes - 1, accessBodyBytes + 1}) {
        EXPECT_FALSE(
            sdimm::unpackAccess(std::vector<std::uint8_t>(n)).has_value())
            << n;
    }
    EXPECT_FALSE(sdimm::unpackResponse(
                     std::vector<std::uint8_t>(responseBodyBytes - 1))
                     .has_value());
    EXPECT_FALSE(sdimm::unpackAppend(
                     std::vector<std::uint8_t>(appendBodyBytes + 7))
                     .has_value());

    // Exact sizes parse.
    EXPECT_TRUE(sdimm::unpackAccess(
                    std::vector<std::uint8_t>(accessBodyBytes))
                    .has_value());
    EXPECT_TRUE(sdimm::unpackResponse(
                    std::vector<std::uint8_t>(responseBodyBytes))
                    .has_value());
    EXPECT_TRUE(sdimm::unpackAppend(
                    std::vector<std::uint8_t>(appendBodyBytes))
                    .has_value());
}

TEST(MessageRegression, PackUnpackRoundTrip)
{
    sdimm::AccessRequest req;
    req.addr = 0x1234;
    req.localLeaf = 7;
    req.newLocalLeaf = invalidLeaf;
    req.write = true;
    req.data[0] = 0xaa;
    req.data[63] = 0x55;
    const auto parsed = sdimm::unpackAccess(sdimm::packAccess(req));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->addr, req.addr);
    EXPECT_EQ(parsed->localLeaf, req.localLeaf);
    EXPECT_EQ(parsed->newLocalLeaf, req.newLocalLeaf);
    EXPECT_EQ(parsed->write, req.write);
    EXPECT_EQ(parsed->data, req.data);
}

} // namespace
} // namespace secdimm::verify
