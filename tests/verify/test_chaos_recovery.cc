/**
 * @file
 * Chaos-layer acceptance: correlated multi-unit failure groups,
 * re-entrant (nested) recovery, the zero-survivor fail-stop, and
 * proactive latency-tax retirement.  Everything is seeded and
 * deterministic; the data-survival assertions are bit-exact.
 *
 * The MidSweepRedraw regression pins the nastiest interaction found
 * while building the layer: a nested evacuation triggered inside a
 * slot's per-unit APPEND sweep can redraw that slot's destination
 * onto a unit the sweep had already passed, which silently dropped
 * the block until the slot-re-run fix.  It fires across many write
 * orders because the loss was order-dependent.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "fault/fault_injector.hh"
#include "fault/fault_plan.hh"
#include "sdimm/indep_split_oram.hh"
#include "sdimm/independent_oram.hh"
#include "util/rng.hh"

namespace secdimm::verify
{
namespace
{

BlockData
valueBlock(std::uint64_t b)
{
    BlockData d{};
    for (std::size_t i = 0; i < d.size(); ++i)
        d[i] = static_cast<std::uint8_t>(
            (b * 0x9e3779b97f4a7c15ull + i * 131) & 0xff);
    return d;
}

sdimm::IndependentOram::Params
indepParams(unsigned units)
{
    sdimm::IndependentOram::Params p;
    p.perSdimm.levels = 6;
    p.perSdimm.stashCapacity = 200;
    p.numSdimms = units;
    return p;
}

sdimm::IndepSplitOram::Params
groupParams(unsigned groups)
{
    sdimm::IndepSplitOram::Params p;
    p.perGroupTree.levels = 6;
    p.perGroupTree.stashCapacity = 200;
    p.groups = groups;
    p.slicesPerGroup = 2;
    return p;
}

/** Write blocks 0..n-1 in a seeded shuffled order. */
template <typename Oram>
void
writeShuffled(Oram &o, std::uint64_t n, std::uint64_t order_seed)
{
    std::vector<std::uint64_t> order(n);
    for (std::uint64_t i = 0; i < n; ++i)
        order[i] = i;
    Rng rng(order_seed);
    for (std::uint64_t i = n - 1; i > 0; --i)
        std::swap(order[i], order[rng.nextBelow(i + 1)]);
    for (const std::uint64_t b : order) {
        const BlockData d = valueBlock(b);
        o.access(b, oram::OramOp::Write, &d);
    }
}

template <typename Oram>
std::uint64_t
countCorrupt(Oram &o, std::uint64_t n)
{
    std::uint64_t bad = 0;
    for (std::uint64_t b = 0; b < n; ++b) {
        if (o.access(b, oram::OramOp::Read, nullptr) != valueBlock(b))
            ++bad;
    }
    return bad;
}

void
expectLedgerIdentity(const fault::FaultInjector &inj)
{
    EXPECT_EQ(inj.detectedTotal(),
              inj.recoveredTotal() + inj.unrecoveredTotal())
        << "ledger identity broken: detected="
        << inj.detectedTotal() << " recovered=" << inj.recoveredTotal()
        << " unrecovered=" << inj.unrecoveredTotal();
}

TEST(ChaosRecovery, CorrelatedBurstNestsInsideEvacuation)
{
    // Units 1 and 2 die in one simultaneous burst: the watchdog finds
    // unit 1 first, and unit 2's death is discovered INSIDE unit 1's
    // evacuation stream -- the recovery must nest, keep the ledger
    // identity, and lose no data.
    fault::FaultInjector inj(
        fault::FaultPlan::correlatedDeath({1, 2}, 16, 0, 7));
    sdimm::IndependentOram o(indepParams(4), 11);
    o.setFaultInjector(&inj, fault::DegradationPolicy::Degraded);

    const std::uint64_t n = 256;
    writeShuffled(o, n, 3);

    EXPECT_GT(o.nestedEvacuations(), 0u)
        << "the burst should be discovered mid-evacuation";
    EXPECT_EQ(o.quarantinedCount(), 2u);
    EXPECT_FALSE(o.failedStop());
    EXPECT_TRUE(o.integrityOk());
    EXPECT_EQ(countCorrupt(o, n), 0u);
    expectLedgerIdentity(inj);
    EXPECT_EQ(inj.unrecoveredTotal(), 0u)
        << "a survivable burst must be fully recovered";
    EXPECT_EQ(inj.correlatedGroups(), 1u);
    EXPECT_EQ(inj.correlatedUnits(), 2u);
    EXPECT_EQ(inj.correlatedActivations(), 2u);
}

TEST(ChaosRecovery, CascadeWithGapAlsoSurvives)
{
    // A cascade (gap > 0): unit 1 at access 16, unit 2 at access 24.
    // Both deaths are detected by the normal sweep; recovery must
    // leave the same end state as the burst.
    fault::FaultInjector inj(
        fault::FaultPlan::correlatedDeath({1, 2}, 16, 8, 7));
    sdimm::IndependentOram o(indepParams(4), 11);
    o.setFaultInjector(&inj, fault::DegradationPolicy::Degraded);

    const std::uint64_t n = 256;
    writeShuffled(o, n, 5);
    EXPECT_EQ(o.quarantinedCount(), 2u);
    EXPECT_TRUE(o.integrityOk());
    EXPECT_EQ(countCorrupt(o, n), 0u);
    expectLedgerIdentity(inj);
}

TEST(ChaosRecovery, MidSweepRedrawRegression)
{
    // Regression for the mid-sweep destination redraw: across many
    // write orders, a nested evacuation must never drop the slot
    // whose APPEND sweep it interrupted.
    for (std::uint64_t order_seed = 0; order_seed < 24; ++order_seed) {
        fault::FaultInjector inj(
            fault::FaultPlan::correlatedDeath({1, 2}, 16, 0, 12345));
        sdimm::IndependentOram o(indepParams(4), 99);
        o.setFaultInjector(&inj, fault::DegradationPolicy::Degraded);
        const std::uint64_t n = 192;
        writeShuffled(o, n, order_seed * 7919 + 11);
        EXPECT_EQ(countCorrupt(o, n), 0u)
            << "data lost with write order seed " << order_seed;
        expectLedgerIdentity(inj);
    }
}

TEST(ChaosRecovery, IndepSplitBurstNestsAtGroupLevel)
{
    fault::FaultInjector inj(
        fault::FaultPlan::correlatedDeath({1, 2}, 16, 0, 7));
    sdimm::IndepSplitOram o(groupParams(4), 11);
    o.setFaultInjector(&inj, fault::DegradationPolicy::Degraded);

    const std::uint64_t n = 256;
    writeShuffled(o, n, 3);
    EXPECT_GT(o.nestedEvacuations(), 0u);
    EXPECT_EQ(o.quarantinedGroupCount(), 2u);
    EXPECT_TRUE(o.integrityOk());
    EXPECT_EQ(countCorrupt(o, n), 0u);
    expectLedgerIdentity(inj);
}

TEST(ChaosRecovery, ZeroSurvivorBurstFailsStopWithDistinctLedgerEntry)
{
    // Every unit dies at once: nothing is left to evacuate onto, so
    // the handler must fail-stop with the distinct zero-survivor
    // ledger entry instead of recursing into a corner.
    fault::FaultInjector inj(
        fault::FaultPlan::correlatedDeath({0, 1, 2, 3}, 8, 0, 7));
    sdimm::IndependentOram o(indepParams(4), 11);
    o.setFaultInjector(&inj, fault::DegradationPolicy::Degraded);

    const std::uint64_t n = 64;
    writeShuffled(o, n, 3);

    EXPECT_TRUE(o.failedStop());
    EXPECT_FALSE(o.integrityOk());
    EXPECT_EQ(inj.zeroSurvivorFailStops(), 1u);
    EXPECT_GE(inj.unrecoveredTotal(), 1u)
        << "the zero-survivor death must be ledgered as unrecovered";
    expectLedgerIdentity(inj);
}

TEST(ChaosRecovery, ZeroSurvivorGroupBurstFailsStop)
{
    fault::FaultInjector inj(
        fault::FaultPlan::correlatedDeath({0, 1}, 8, 0, 7));
    sdimm::IndepSplitOram o(groupParams(2), 11);
    o.setFaultInjector(&inj, fault::DegradationPolicy::Degraded);

    const std::uint64_t n = 64;
    writeShuffled(o, n, 3);
    EXPECT_TRUE(o.failedStop());
    EXPECT_EQ(inj.zeroSurvivorFailStops(), 1u);
    expectLedgerIdentity(inj);
}

TEST(ProactiveRetirement, DegradedUnitIsEvacuatedBeforeItDies)
{
    // Unit 1 pays 1000 cycles of tax per access; with threshold 500
    // and the default hysteresis streak the EWMA crosses within ~11
    // accesses, and the unit is obliviously retired while still
    // functionally alive.
    fault::FaultInjector inj(
        fault::FaultPlan::proactiveRetire(1, 1000, 500, 7));
    sdimm::IndependentOram o(indepParams(4), 11);
    o.setFaultInjector(&inj, fault::DegradationPolicy::Degraded);

    const std::uint64_t n = 256;
    writeShuffled(o, n, 3);

    EXPECT_EQ(o.retiredUnits(), 1u);
    EXPECT_EQ(inj.retiredUnits(), 1u);
    EXPECT_TRUE(inj.unitRetired(1));
    EXPECT_EQ(o.quarantinedCount(), 1u);
    EXPECT_FALSE(o.failedStop());
    EXPECT_TRUE(o.integrityOk());
    EXPECT_EQ(countCorrupt(o, n), 0u);

    // Retirement is ledger-neutral: latency tax is not a fault.
    EXPECT_EQ(inj.unrecoveredTotal(), 0u);
    expectLedgerIdentity(inj);
    EXPECT_GT(inj.unitTaxEwma(1), 500.0);
}

TEST(ProactiveRetirement, NeverRetiresTheLastUnit)
{
    // EVERY unit limps above the threshold: the policy may retire all
    // but one, and the survivor keeps serving.
    fault::FaultPlan p;
    for (unsigned u = 0; u < 4; ++u) {
        fault::PermanentFault f;
        f.kind = fault::PermanentFaultKind::DegradedLatency;
        f.unit = u;
        f.latencyCycles = 1000;
        p.permanentFaults.push_back(f);
    }
    p.retireTaxThresholdCycles = 500;
    p.seed = 7;
    fault::FaultInjector inj(p);
    sdimm::IndependentOram o(indepParams(4), 11);
    o.setFaultInjector(&inj, fault::DegradationPolicy::Degraded);

    const std::uint64_t n = 256;
    writeShuffled(o, n, 3);

    EXPECT_LE(o.retiredUnits(), 3u);
    EXPECT_LT(o.quarantinedCount(), 4u);
    EXPECT_FALSE(o.failedStop());
    EXPECT_TRUE(o.integrityOk());
    EXPECT_EQ(countCorrupt(o, n), 0u);
    expectLedgerIdentity(inj);
}

TEST(ProactiveRetirement, HealthyUnitsAreNeverRetired)
{
    // Transients alone must not trip the latency-tax policy.
    fault::FaultPlan p = fault::FaultPlan::uniform(0.01, 7);
    p.retireTaxThresholdCycles = 500;
    fault::FaultInjector inj(p);
    sdimm::IndependentOram o(indepParams(4), 11);
    o.setFaultInjector(&inj, fault::DegradationPolicy::Degraded);

    const std::uint64_t n = 128;
    writeShuffled(o, n, 3);
    EXPECT_EQ(o.retiredUnits(), 0u);
    EXPECT_EQ(inj.retireCandidates(), 0u);
    EXPECT_EQ(o.quarantinedCount(), 0u);
    EXPECT_EQ(countCorrupt(o, n), 0u);
}

} // namespace
} // namespace secdimm::verify
