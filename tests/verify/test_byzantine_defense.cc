/**
 * @file
 * Byzantine-defense acceptance (docs/FAULTS.md "Byzantine units"):
 * wrong-but-authenticated units -- persistent corruptors, duty-cycle
 * liars, lost-write ACKers, group equivocators -- must be detected,
 * attributed through the mistrust score, convicted, and obliviously
 * evicted, without losing recoverable data, breaking the ledger
 * identity, or convicting anyone honest.
 *
 * Everything is seeded and deterministic.  The conviction policy has
 * three stacked guards (EWMA threshold, consecutive-access
 * hysteresis, lifetime-evidence floor); the restraint tests pin each
 * one separately so a regression names the guard it broke.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/secure_memory_system.hh"
#include "fault/fault_injector.hh"
#include "fault/fault_plan.hh"
#include "sdimm/indep_split_oram.hh"
#include "sdimm/independent_oram.hh"
#include "serve/sharded_memory.hh"
#include "util/rng.hh"
#include "verify/trace_checker.hh"

namespace secdimm::verify
{
namespace
{

BlockData
valueBlock(std::uint64_t b)
{
    BlockData d{};
    for (std::size_t i = 0; i < d.size(); ++i)
        d[i] = static_cast<std::uint8_t>(
            (b * 0x9e3779b97f4a7c15ull + i * 131) & 0xff);
    return d;
}

sdimm::IndependentOram::Params
indepParams(unsigned units)
{
    sdimm::IndependentOram::Params p;
    p.perSdimm.levels = 6;
    p.perSdimm.stashCapacity = 200;
    p.numSdimms = units;
    return p;
}

sdimm::IndepSplitOram::Params
groupParams(unsigned groups)
{
    sdimm::IndepSplitOram::Params p;
    p.perGroupTree.levels = 6;
    p.perGroupTree.stashCapacity = 200;
    p.groups = groups;
    p.slicesPerGroup = 2;
    return p;
}

template <typename Oram>
void
writeRange(Oram &o, std::uint64_t n)
{
    for (std::uint64_t b = 0; b < n; ++b) {
        const BlockData d = valueBlock(b);
        o.access(b, oram::OramOp::Write, &d);
    }
}

template <typename Oram>
void
readPasses(Oram &o, std::uint64_t n, unsigned passes)
{
    for (unsigned p = 0; p < passes; ++p)
        for (std::uint64_t b = 0; b < n; ++b)
            o.access(b, oram::OramOp::Read, nullptr);
}

template <typename Oram>
std::uint64_t
countCorrupt(Oram &o, std::uint64_t n)
{
    std::uint64_t bad = 0;
    for (std::uint64_t b = 0; b < n; ++b) {
        if (o.access(b, oram::OramOp::Read, nullptr) != valueBlock(b))
            ++bad;
    }
    return bad;
}

void
expectLedgerIdentity(const fault::FaultInjector &inj)
{
    EXPECT_EQ(inj.detectedTotal(),
              inj.recoveredTotal() + inj.unrecoveredTotal())
        << "ledger identity broken: detected="
        << inj.detectedTotal() << " recovered=" << inj.recoveredTotal()
        << " unrecovered=" << inj.unrecoveredTotal();
}

/* ------------------------------------------------------------------ */
/* Conviction: the liar archetypes                                     */
/* ------------------------------------------------------------------ */

TEST(ByzantineDefense, PersistentCorruptorConvictedAndEvacuated)
{
    // Unit 1 garbles every FETCH_RESULT once armed: the first touch
    // exhausts the retry budget, preemption-conviction fires, and the
    // honest latch contents recover the in-flight block.  Everything
    // survives bit-exact.
    fault::FaultInjector inj(fault::FaultPlan::byzantineCorruptor(1, 16, 7));
    sdimm::IndependentOram o(indepParams(4), 21);
    o.setFaultInjector(&inj, fault::DegradationPolicy::Degraded);

    const std::uint64_t n = 128;
    writeRange(o, n);
    readPasses(o, n, 2);

    EXPECT_EQ(inj.convictedUnits(), 1u);
    EXPECT_EQ(o.convictedUnits(), 1u);
    EXPECT_TRUE(o.isQuarantined(1));
    EXPECT_TRUE(inj.unitConvicted(1));
    EXPECT_FALSE(o.failedStop());
    EXPECT_EQ(countCorrupt(o, n), 0u);
    EXPECT_EQ(inj.unrecoveredTotal(), 0u);
    EXPECT_GT(inj.detected(fault::FaultKind::ByzantineCorrupt), 0u);
    EXPECT_EQ(inj.detected(fault::FaultKind::ByzantineConvict), 1u);
    expectLedgerIdentity(inj);
}

TEST(ByzantineDefense, DutyCycleLiarCrossesMistrustThreshold)
{
    // A 25%-duty liar recovers through retries (no single access
    // exhausts the budget), so conviction must come from the mistrust
    // EWMA accumulating across accesses.
    fault::FaultInjector inj(fault::FaultPlan::byzantineLiar(1, 0.25, 16, 3));
    sdimm::IndependentOram o(indepParams(4), 22);
    o.setFaultInjector(&inj, fault::DegradationPolicy::Degraded);

    const std::uint64_t n = 128;
    writeRange(o, n);
    readPasses(o, n, 6);

    EXPECT_EQ(inj.convictedUnits(), 1u);
    EXPECT_TRUE(o.isQuarantined(1));
    EXPECT_FALSE(o.failedStop());
    EXPECT_EQ(countCorrupt(o, n), 0u);
    EXPECT_EQ(inj.unrecoveredTotal(), 0u);
    expectLedgerIdentity(inj);
}

TEST(ByzantineDefense, LostWritesDetectedAtReadBackAndAttributed)
{
    // Unit 1 ACKs real APPENDs and drops half the payloads.  The
    // dropped data is gone -- but every drop must be discovered at
    // read-back, booked detected+unrecovered against the recorded
    // culprit (exactly once), and the culprit convicted.
    fault::FaultInjector inj(fault::FaultPlan::byzantine(
        fault::ByzantineFaultKind::LostWrite, 1, 0.5, 16, 0.12, 5));
    sdimm::IndependentOram o(indepParams(4), 23);
    o.setFaultInjector(&inj, fault::DegradationPolicy::Degraded);

    const std::uint64_t n = 128;
    writeRange(o, n);
    readPasses(o, n, 3);

    const std::uint64_t lost =
        inj.detected(fault::FaultKind::ByzantineLostWrite);
    EXPECT_GT(lost, 0u);
    // Exactly-once accounting: every drop is one detected and one
    // unrecovered entry, and nothing else went unrecovered.
    EXPECT_EQ(inj.unrecoveredTotal(), lost);
    EXPECT_EQ(inj.convictedUnits(), 1u);
    EXPECT_TRUE(o.isQuarantined(1));
    EXPECT_FALSE(o.failedStop());
    // The loss is bounded by what was attributed: a block is corrupt
    // only if its write was dropped.
    EXPECT_LE(countCorrupt(o, n), lost);
    expectLedgerIdentity(inj);
}

TEST(ByzantineDefense, EquivocatingGroupConvicted)
{
    // INDEP-SPLIT: group 1 serves stale-consistent slices on every
    // touch.  The group is convicted as a unit and its blocks
    // evacuated to the surviving groups.
    fault::FaultInjector inj(fault::FaultPlan::byzantine(
        fault::ByzantineFaultKind::Equivocate, 1, 1.0, 16, 0.12, 9));
    sdimm::IndepSplitOram o(groupParams(4), 24);
    o.setFaultInjector(&inj, fault::DegradationPolicy::Degraded);

    const std::uint64_t n = 128;
    writeRange(o, n);
    readPasses(o, n, 2);

    EXPECT_EQ(inj.convictedUnits(), 1u);
    EXPECT_EQ(o.convictedUnits(), 1u);
    EXPECT_TRUE(o.isGroupQuarantined(1));
    EXPECT_FALSE(o.failedStop());
    EXPECT_EQ(countCorrupt(o, n), 0u);
    EXPECT_EQ(inj.unrecoveredTotal(), 0u);
    EXPECT_GT(inj.detected(fault::FaultKind::ByzantineEquivocate), 0u);
    expectLedgerIdentity(inj);
}

/* ------------------------------------------------------------------ */
/* Restraint: nobody honest gets convicted                             */
/* ------------------------------------------------------------------ */

TEST(ByzantineDefense, EvidenceFloorBlocksClusteredTransients)
{
    // Mechanism test of the third guard: a couple of unluckily
    // ADJACENT failures spike the EWMA over the threshold and could
    // outlast the hysteresis, but they cannot fake a body of
    // evidence.  Conviction must wait for mistrustMinEvidence
    // lifetime failures.
    fault::FaultPlan plan;
    plan.mistrustConvictThreshold = 0.12;
    plan.mistrustHysteresisAccesses = 2;
    plan.mistrustMinEvidence = 6;
    fault::FaultInjector inj(plan);

    for (int i = 0; i < 6; ++i) {
        EXPECT_FALSE(inj.convictionDue(0))
            << "only " << i << " failures: below the evidence floor";
        inj.noteMistrust(0, 1.0);
    }
    // The hysteresis streak starts counting only once the floor is
    // met: one more over-threshold access completes streak 2.
    EXPECT_FALSE(inj.convictionDue(0)) << "floor met, streak 1 of 2";
    inj.noteMistrust(0, 1.0);
    EXPECT_TRUE(inj.convictionDue(0)) << "floor met, streak held";
}

TEST(ByzantineDefense, TransientNoiseNeverConvicts)
{
    // Honest-but-noisy wire: uniform transients with the scorer
    // armed.  Failures recover through retries, the EWMA decays
    // between them, and nobody reaches the conviction bar.
    fault::FaultPlan plan = fault::FaultPlan::uniform(0.005, 13);
    plan.mistrustConvictThreshold = 0.12;
    fault::FaultInjector inj(plan);
    sdimm::IndependentOram o(indepParams(4), 25);
    o.setFaultInjector(&inj, fault::DegradationPolicy::Degraded);

    const std::uint64_t n = 128;
    writeRange(o, n);
    readPasses(o, n, 4);

    EXPECT_EQ(inj.convictedUnits(), 0u);
    EXPECT_EQ(o.quarantinedCount(), 0u);
    EXPECT_FALSE(o.failedStop());
    EXPECT_EQ(countCorrupt(o, n), 0u);
    expectLedgerIdentity(inj);
}

TEST(ByzantineDefense, FaultFreeArmedRunShowsZeroConvictions)
{
    // The false-conviction soak of ISSUE 9: >= 10k accesses under the
    // byzantine-enabled build with nobody lying must see zero
    // detections and zero convictions on both unit designs.
    fault::FaultPlan armed;
    armed.mistrustConvictThreshold = 0.12;
    {
        fault::FaultInjector inj(armed);
        sdimm::IndependentOram o(indepParams(4), 26);
        o.setFaultInjector(&inj, fault::DegradationPolicy::Degraded);
        const std::uint64_t n = 128;
        writeRange(o, n);
        Rng rng(77);
        for (std::uint64_t i = 0; i < 10000; ++i)
            o.access(rng.nextBelow(n), oram::OramOp::Read, nullptr);
        EXPECT_EQ(inj.convictedUnits(), 0u);
        EXPECT_EQ(inj.detectedTotal(), 0u);
        EXPECT_EQ(countCorrupt(o, n), 0u);
    }
    {
        fault::FaultInjector inj(armed);
        sdimm::IndepSplitOram o(groupParams(4), 27);
        o.setFaultInjector(&inj, fault::DegradationPolicy::Degraded);
        const std::uint64_t n = 128;
        writeRange(o, n);
        Rng rng(78);
        for (std::uint64_t i = 0; i < 10000; ++i)
            o.access(rng.nextBelow(n), oram::OramOp::Read, nullptr);
        EXPECT_EQ(inj.convictedUnits(), 0u);
        EXPECT_EQ(inj.detectedTotal(), 0u);
        EXPECT_EQ(countCorrupt(o, n), 0u);
    }
}

/* ------------------------------------------------------------------ */
/* The last survivor                                                   */
/* ------------------------------------------------------------------ */

TEST(ByzantineDefense, ConvictingLastSurvivorFailsStopInstead)
{
    // Two units, one already quarantined, the survivor lying: there
    // is nowhere to evacuate to.  The defense must fail-stop with the
    // zero-survivor ledger entry rather than convict the service into
    // nothing (or keep trusting the liar).
    fault::FaultInjector inj(
        fault::FaultPlan::byzantineLiar(1, 0.25, 0, 31));
    sdimm::IndependentOram o(indepParams(2), 28);
    o.setFaultInjector(&inj, fault::DegradationPolicy::Degraded);

    const std::uint64_t n = 32;
    writeRange(o, n);
    o.quarantine(0); // Evacuates unit 0's blocks onto the liar.

    for (std::uint64_t i = 0; i < 256 && !o.failedStop(); ++i)
        o.access(i % n, oram::OramOp::Read, nullptr);

    EXPECT_TRUE(o.failedStop());
    EXPECT_EQ(inj.convictedUnits(), 1u);
    EXPECT_EQ(inj.zeroSurvivorFailStops(), 1u);
    EXPECT_GT(inj.unrecoveredTotal(), 0u);
    expectLedgerIdentity(inj);
}

/* ------------------------------------------------------------------ */
/* Post-conviction obliviousness                                       */
/* ------------------------------------------------------------------ */

TEST(ByzantineDefense, PostConvictionTracesDeepCompare)
{
    // Two runs with different SECRET address streams under the same
    // public byzantine plan: traces spanning detection, conviction,
    // and the eviction storm must stay statistically
    // indistinguishable (marginals, lag-k ACF, gap profiles).
    const auto run = [](std::uint64_t secret) {
        fault::FaultInjector inj(
            fault::FaultPlan::byzantineCorruptor(1, 300, 17));
        sdimm::IndependentOram o(indepParams(4), 17);
        o.setFaultInjector(&inj, fault::DegradationPolicy::Degraded);
        Rng rng(secret);
        for (std::size_t i = 0; i < 1200; ++i)
            o.access(rng.nextBelow(o.capacityBlocks()),
                     oram::OramOp::Read, nullptr);
        std::vector<TraceEvent> t;
        for (const sdimm::BusEvent &e : o.busTrace())
            t.push_back(TraceEvent{
                TraceEventKind::ShortCmd,
                (static_cast<std::uint64_t>(e.type) << 8) | e.sdimm, 0});
        for (std::size_t i = 0; i < t.size(); ++i)
            t[i].at = 10 * i;
        return t;
    };
    const auto a = run(101);
    const auto b = run(202);
    const DeepComparison cmp = deepCompareTraces(a, b);
    EXPECT_TRUE(cmp.pass) << cmp.summary();
}

/* ------------------------------------------------------------------ */
/* Serve frontend                                                      */
/* ------------------------------------------------------------------ */

TEST(ByzantineDefense, ShardedFrontendSurfacesByzantineHealth)
{
    // One shard runs a persistent corruptor: after traffic, that
    // shard must be Degraded (convicted unit quarantined) and the
    // fleet gauge serve.shard_health.byzantine must count it.
    serve::ShardedSecureMemory::Options opt;
    opt.shard.protocol = core::SecureMemorySystem::Protocol::Independent;
    opt.shard.capacityBytes = 1 << 16;
    opt.shard.numSdimms = 4;
    opt.shard.stashCapacity = 200;
    opt.shard.seed = 5;
    opt.shard.degradationPolicy = fault::DegradationPolicy::Degraded;
    opt.numShards = 2;
    opt.shardFaultPlans = {fault::FaultPlan::byzantineCorruptor(1, 16, 6),
                           fault::FaultPlan::none()};
    serve::ShardedSecureMemory mem(opt);

    const std::uint64_t n = 128;
    for (std::uint64_t b = 0; b < n; ++b)
        mem.writeBlock(b, valueBlock(b));
    for (std::uint64_t b = 0; b < n; ++b)
        EXPECT_EQ(mem.readBlock(b), valueBlock(b));

    util::MetricsRegistry m = mem.metrics();
    EXPECT_EQ(m.gauge("serve.shard_health.byzantine"), 1.0);
    EXPECT_EQ(mem.shardHealth(0), serve::ShardHealth::Degraded);
    EXPECT_EQ(mem.shardHealth(1), serve::ShardHealth::Healthy);
}

} // namespace
} // namespace secdimm::verify
