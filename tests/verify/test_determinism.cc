/**
 * @file
 * The seeding contract of util/rng.hh, enforced end to end: identical
 * (config, profile, lengths, seed) inputs produce byte-identical
 * metrics JSON, at both the simulator and the functional facade.
 */

#include <gtest/gtest.h>

#include "core/secure_memory_system.hh"
#include "core/simulator.hh"
#include "trace/workload.hh"
#include "util/rng.hh"

namespace secdimm::verify
{
namespace
{

core::SystemConfig
tinyConfig(core::DesignPoint d)
{
    core::SystemConfig cfg = core::makeConfig(d, 12, 4);
    cfg.cpuGeom.rowsPerBank = 4096;
    cfg.sdimmGeom.rowsPerBank = 4096;
    return cfg;
}

core::SimLengths
tinyLengths()
{
    core::SimLengths l;
    l.warmupRecords = 1000;
    l.measureRecords = 200;
    return l;
}

TEST(Determinism, RunWorkloadMetricsJsonByteIdentical)
{
    for (core::DesignPoint d :
         {core::DesignPoint::PathOram, core::DesignPoint::Freecursive,
          core::DesignPoint::Indep2, core::DesignPoint::Split2}) {
        const core::SystemConfig cfg = tinyConfig(d);
        const trace::WorkloadProfile &profile =
            *trace::findProfile("mcf");
        const core::SimResult a =
            core::runWorkload(cfg, profile, tinyLengths(), 9);
        const core::SimResult b =
            core::runWorkload(cfg, profile, tinyLengths(), 9);
        EXPECT_EQ(a.metrics.toJson(), b.metrics.toJson())
            << core::designName(d);
    }
}

TEST(Determinism, DifferentSeedsDiverge)
{
    const core::SystemConfig cfg =
        tinyConfig(core::DesignPoint::Indep2);
    const trace::WorkloadProfile &profile = *trace::findProfile("mcf");
    const core::SimResult a =
        core::runWorkload(cfg, profile, tinyLengths(), 9);
    const core::SimResult b =
        core::runWorkload(cfg, profile, tinyLengths(), 10);
    EXPECT_NE(a.metrics.toJson(), b.metrics.toJson());
}

TEST(Determinism, SecureMemorySystemByteIdentical)
{
    const auto run = [] {
        core::SecureMemorySystem::Options opt;
        opt.protocol = core::SecureMemorySystem::Protocol::Split;
        opt.capacityBytes = 1 << 15;
        opt.seed = 21;
        core::SecureMemorySystem mem(opt);
        const std::uint64_t cap = mem.capacityBytes() / blockBytes;
        Rng rng(4);
        std::string reads;
        for (unsigned i = 0; i < 200; ++i) {
            const Addr a = rng.nextBelow(cap);
            if (rng.nextBool(0.5)) {
                BlockData d{};
                d[0] = static_cast<std::uint8_t>(i);
                mem.writeBlock(a, d);
            } else {
                reads.push_back(
                    static_cast<char>(mem.readBlock(a)[0]));
            }
        }
        return std::make_pair(reads, mem.metrics().toJson());
    };
    const auto a = run();
    const auto b = run();
    EXPECT_EQ(a.first, b.first);
    EXPECT_EQ(a.second, b.second);
}

TEST(Determinism, RngStreamsReproducible)
{
    Rng a(5);
    Rng b(5);
    for (unsigned i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
    // reseed() restarts the stream exactly.
    a.reseed(5);
    Rng c(5);
    for (unsigned i = 0; i < 100; ++i)
        ASSERT_EQ(a.next(), c.next());
}

} // namespace
} // namespace secdimm::verify
