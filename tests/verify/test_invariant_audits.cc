/**
 * @file
 * Runtime invariant audits, both directions: heavy churn leaves every
 * protocol clean, and injected corruption (tampered buckets, wrong
 * leaves, forced queue overflow) is detected and described.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/secure_memory_system.hh"
#include "crypto/aes128.hh"
#include "oram/path_oram.hh"
#include "oram/recursive_oram.hh"
#include "oram/stash.hh"
#include "sdimm/indep_split_oram.hh"
#include "sdimm/independent_oram.hh"
#include "sdimm/split_oram.hh"
#include "sdimm/transfer_queue.hh"
#include "util/rng.hh"
#include "verify/invariant_audit.hh"

namespace secdimm::verify
{
namespace
{

BlockData
patternBlock(std::uint64_t x)
{
    BlockData d{};
    for (std::size_t i = 0; i < d.size(); ++i)
        d[i] = static_cast<std::uint8_t>((x * 131 + i) & 0xff);
    return d;
}

oram::PathOram
makePathOram(unsigned levels, std::uint64_t seed)
{
    oram::OramParams p;
    p.levels = levels;
    p.stashCapacity = 200;
    return oram::PathOram(p, crypto::makeKey(0x11, seed),
                          crypto::makeKey(0x22, seed * 3 + 1), seed);
}

TEST(InvariantAudit, PathOramCleanUnderHeavyChurn)
{
    oram::PathOram o = makePathOram(7, 5);
    const std::uint64_t cap = o.params().capacityBlocks();
    Rng rng(9);
    for (unsigned i = 0; i < 10000; ++i) {
        const Addr a = rng.nextBelow(cap);
        if (rng.nextBool(0.5)) {
            const BlockData d = patternBlock(a);
            o.access(a, oram::OramOp::Write, &d);
        } else {
            o.access(a, oram::OramOp::Read);
        }
        if (i % 2500 == 2499) {
            const AuditReport r = auditPathOram(o, true);
            ASSERT_TRUE(r.ok()) << "after " << (i + 1)
                                << " accesses: " << r.summary();
        }
    }
    const AuditReport r = auditPathOram(o, true);
    EXPECT_TRUE(r.ok()) << r.summary();
    EXPECT_GT(r.checksRun, 100u);
}

TEST(InvariantAudit, PathOramDetectsTamperedBucket)
{
    oram::PathOram o = makePathOram(5, 6);
    for (Addr a = 0; a < 20; ++a) {
        const BlockData d = patternBlock(a);
        o.access(a, oram::OramOp::Write, &d);
    }
    ASSERT_TRUE(auditPathOram(o, true).ok());
    o.store().tamperData(3, 17);
    const AuditReport r = auditPathOram(o, true);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.summary().find("authentication"), std::string::npos)
        << r.summary();
}

TEST(InvariantAudit, PathOramDetectsLeafPosMapMismatch)
{
    oram::PathOram o = makePathOram(5, 7);
    const BlockData d = patternBlock(1);
    o.access(0, oram::OramOp::Write, &d);
    ASSERT_TRUE(auditPathOram(o, true).ok());
    // Adopt the same block under a different (valid) leaf: for an
    // access()-driven tree that contradicts the PosMap (and possibly
    // duplicates the block) -- either way the audit must object.
    const LeafId wrong = (o.leafOf(0) + 1) % o.params().numLeaves();
    ASSERT_TRUE(o.adoptBlock(0, wrong, d));
    EXPECT_FALSE(auditPathOram(o, true).ok());
}

TEST(InvariantAudit, RecursiveOramCleanAfterChurn)
{
    oram::RecursiveOram::Params rp;
    rp.data.levels = 8;
    rp.data.stashCapacity = 200;
    oram::RecursiveOram o(rp, 3);
    const std::uint64_t cap = o.capacityBlocks();
    Rng rng(4);
    for (unsigned i = 0; i < 2000; ++i) {
        const Addr a = rng.nextBelow(cap);
        const BlockData d = patternBlock(a);
        if (rng.nextBool(0.5))
            o.access(a, oram::OramOp::Write, &d);
        else
            o.access(a, oram::OramOp::Read);
    }
    const AuditReport r = auditRecursiveOram(o);
    EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(InvariantAudit, IndependentCleanAfterChurn)
{
    sdimm::IndependentOram::Params ip;
    ip.perSdimm.levels = 6;
    ip.perSdimm.stashCapacity = 200;
    ip.numSdimms = 2;
    sdimm::IndependentOram o(ip, 8);
    const std::uint64_t cap = o.capacityBlocks();
    Rng rng(2);
    for (unsigned i = 0; i < 2000; ++i) {
        const Addr a = rng.nextBelow(cap);
        const BlockData d = patternBlock(a);
        if (rng.nextBool(0.5))
            o.access(a, oram::OramOp::Write, &d);
        else
            o.access(a, oram::OramOp::Read);
    }
    const AuditReport r = auditIndependentOram(o);
    EXPECT_TRUE(r.ok()) << r.summary();
    EXPECT_GT(r.checksRun, 100u);
}

TEST(InvariantAudit, SplitCleanAfterChurnAndDetectsTamper)
{
    sdimm::SplitOram::Params sp;
    sp.tree.levels = 6;
    sp.tree.stashCapacity = 200;
    sp.slices = 2;
    sdimm::SplitOram o(sp, 12);
    const std::uint64_t cap = o.capacityBlocks();
    Rng rng(6);
    for (unsigned i = 0; i < 2000; ++i) {
        const Addr a = rng.nextBelow(cap);
        const BlockData d = patternBlock(a);
        if (rng.nextBool(0.5))
            o.access(a, oram::OramOp::Write, &d);
        else
            o.access(a, oram::OramOp::Read);
    }
    const AuditReport clean = auditSplitOram(o, true);
    ASSERT_TRUE(clean.ok()) << clean.summary();

    o.tamperSlice(0, 0, 0, 5);
    const AuditReport r = auditSplitOram(o, true);
    EXPECT_FALSE(r.ok());
    EXPECT_NE(r.summary().find("MAC"), std::string::npos)
        << r.summary();
}

TEST(InvariantAudit, IndepSplitCleanAfterChurn)
{
    sdimm::IndepSplitOram::Params gp;
    gp.perGroupTree.levels = 6;
    gp.perGroupTree.stashCapacity = 200;
    gp.groups = 2;
    gp.slicesPerGroup = 2;
    sdimm::IndepSplitOram o(gp, 21);
    const std::uint64_t cap = o.capacityBlocks();
    Rng rng(3);
    for (unsigned i = 0; i < 1000; ++i) {
        const Addr a = rng.nextBelow(cap);
        const BlockData d = patternBlock(a);
        if (rng.nextBool(0.5))
            o.access(a, oram::OramOp::Write, &d);
        else
            o.access(a, oram::OramOp::Read);
    }
    const AuditReport r = auditIndepSplitOram(o);
    EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(InvariantAudit, TransferQueueCleanUnderModel)
{
    sdimm::TransferQueue q(16, 0.25, 3);
    Rng rng(1);
    for (unsigned i = 0; i < 500; ++i) {
        // Arrivals slower than the combined service rate (background
        // drain at 0.25 plus the owner popping on every access) keep
        // the queue un-saturated, which is the regime the analytic
        // overflow bound describes.
        if (rng.nextBool(0.5)) {
            oram::StashEntry e;
            e.addr = i;
            e.leaf = 0;
            q.push(e);
        }
        if (q.rollDrain())
            q.pop();
        // The owner also services on its own accesses.
        q.pop();
    }
    const AuditReport r = auditTransferQueue(q);
    EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(InvariantAudit, TransferQueueFlagsExcessOverflow)
{
    // drainProb 0.9 predicts near-zero overflow; never servicing the
    // queue forces far more than the model's 10x allowance.
    sdimm::TransferQueue q(2, 0.9, 3);
    for (unsigned i = 0; i < 60; ++i) {
        oram::StashEntry e;
        e.addr = i;
        q.push(e);
        q.rollDrain();
    }
    const AuditReport r = auditTransferQueue(q);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.summary().find("queueing-model"), std::string::npos)
        << r.summary();
}

TEST(InvariantAudit, SettingsFromEnvOverride)
{
    ::setenv("SDIMM_AUDIT", "1", 1);
    ::setenv("SDIMM_AUDIT_INTERVAL", "77", 1);
    const AuditSettings s = AuditSettings::fromEnv();
    EXPECT_TRUE(s.enabled);
    EXPECT_EQ(s.interval, 77u);
    ::unsetenv("SDIMM_AUDIT");
    ::unsetenv("SDIMM_AUDIT_INTERVAL");
    const AuditSettings d = AuditSettings::fromEnv();
    EXPECT_FALSE(d.enabled);
    EXPECT_EQ(d.interval, 512u);
}

class FacadeAudit
    : public ::testing::TestWithParam<core::SecureMemorySystem::Protocol>
{
};

INSTANTIATE_TEST_SUITE_P(
    Protocols, FacadeAudit,
    ::testing::Values(core::SecureMemorySystem::Protocol::PathOram,
                      core::SecureMemorySystem::Protocol::Freecursive,
                      core::SecureMemorySystem::Protocol::Independent,
                      core::SecureMemorySystem::Protocol::Split),
    [](const ::testing::TestParamInfo<
        core::SecureMemorySystem::Protocol> &info) {
        switch (info.param) {
          case core::SecureMemorySystem::Protocol::PathOram:
            return "PathOram";
          case core::SecureMemorySystem::Protocol::Freecursive:
            return "Freecursive";
          case core::SecureMemorySystem::Protocol::Independent:
            return "Independent";
          case core::SecureMemorySystem::Protocol::Split:
            return "Split";
        }
        return "Unknown";
    });

TEST_P(FacadeAudit, PeriodicAuditsRunCleanUnderChurn)
{
    core::SecureMemorySystem::Options opt;
    opt.protocol = GetParam();
    opt.capacityBytes = 1 << 16;
    opt.seed = 5;
    opt.audits.enabled = true;
    opt.audits.interval = 64;
    core::SecureMemorySystem mem(opt);

    const std::uint64_t cap = mem.capacityBytes() / blockBytes;
    Rng rng(7);
    for (unsigned i = 0; i < 300; ++i) {
        const Addr a = rng.nextBelow(cap);
        if (rng.nextBool(0.5))
            mem.writeBlock(a, patternBlock(a));
        else
            mem.readBlock(a);
    }

    const AuditReport r = mem.auditNow();
    EXPECT_TRUE(r.ok()) << r.summary();
    const util::MetricsRegistry m = mem.metrics();
    EXPECT_GE(m.counter("core.audits_run"), 4u);
    EXPECT_EQ(m.counter("core.audit_violations"), 0u);
    EXPECT_TRUE(mem.integrityOk());
}

} // namespace
} // namespace secdimm::verify
