/**
 * @file
 * Unit tests of the second-order trace statistics (timing_stats.hh):
 * series extraction, lag-k autocorrelation, the two-trace ACF
 * comparison, the within-trace gap permutation test, the differential
 * gap-profile comparison, and the deepCompareTraces aggregate --
 * including the property the whole PR exists for: a deliberately
 * leaky trace that the v1 marginal checker PASSES and the v2
 * statistics FAIL.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hh"
#include "verify/leak_meter.hh"
#include "verify/timing_stats.hh"
#include "verify/trace_checker.hh"

namespace secdimm::verify
{
namespace
{

/** A synthetic trace: uniform addresses, uniform-ish rhythm, with an
 *  optional secret-keyed distortion applied by the caller. */
std::vector<TraceEvent>
syntheticTrace(std::uint64_t seed, std::size_t n,
               std::uint64_t addr_space = 256, Tick step = 10)
{
    Rng rng(seed);
    std::vector<TraceEvent> t;
    t.reserve(n);
    Tick at = 0;
    for (std::size_t i = 0; i < n; ++i) {
        at += step + rng.nextBelow(3); // Benign jitter.
        t.push_back(TraceEvent{TraceEventKind::StoreRead,
                               rng.nextBelow(addr_space), at});
    }
    return t;
}

TEST(TimingSeries, ExtractionBasics)
{
    std::vector<TraceEvent> t;
    t.push_back(TraceEvent{TraceEventKind::StoreRead, 5, 100});
    t.push_back(TraceEvent{TraceEventKind::StoreWrite, 9, 130});
    t.push_back(TraceEvent{TraceEventKind::StoreRead, 2, 130});

    const std::vector<double> addrs = addressSeries(t);
    ASSERT_EQ(addrs.size(), 3u);
    EXPECT_DOUBLE_EQ(addrs[0], 5.0);
    EXPECT_DOUBLE_EQ(addrs[2], 2.0);

    const std::vector<double> gaps = gapSeries(t);
    ASSERT_EQ(gaps.size(), 2u);
    EXPECT_DOUBLE_EQ(gaps[0], 30.0);
    EXPECT_DOUBLE_EQ(gaps[1], 0.0);
}

TEST(TimingSeries, GapSeriesClampsNonMonotoneTicks)
{
    // Merged multi-source traces can interleave ticks out of order;
    // the gap series clamps at zero instead of going negative.
    std::vector<TraceEvent> t;
    t.push_back(TraceEvent{TraceEventKind::StoreRead, 1, 100});
    t.push_back(TraceEvent{TraceEventKind::StoreRead, 2, 60});
    const std::vector<double> gaps = gapSeries(t);
    ASSERT_EQ(gaps.size(), 1u);
    EXPECT_DOUBLE_EQ(gaps[0], 0.0);
}

TEST(TimingSeries, EmptyAndSingletonAreSafe)
{
    EXPECT_TRUE(addressSeries({}).empty());
    EXPECT_TRUE(gapSeries({}).empty());
    std::vector<TraceEvent> one{
        TraceEvent{TraceEventKind::StoreRead, 1, 5}};
    EXPECT_TRUE(gapSeries(one).empty());
}

TEST(Autocorrelation, ConstantSeriesIsZero)
{
    const std::vector<double> c(100, 7.0);
    EXPECT_DOUBLE_EQ(lagAutocorrelation(c, 1), 0.0);
    EXPECT_DOUBLE_EQ(lagAutocorrelation({}, 1), 0.0);
    EXPECT_DOUBLE_EQ(lagAutocorrelation({1.0, 2.0}, 5), 0.0);
}

TEST(Autocorrelation, AlternatingSeriesIsNegativeAtLag1)
{
    std::vector<double> s;
    for (int i = 0; i < 200; ++i)
        s.push_back(i % 2 ? 1.0 : -1.0);
    EXPECT_LT(lagAutocorrelation(s, 1), -0.9);
    EXPECT_GT(lagAutocorrelation(s, 2), 0.9);
}

TEST(Autocorrelation, RandomSeriesIsNearZero)
{
    Rng rng(42);
    std::vector<double> s;
    for (int i = 0; i < 4000; ++i)
        s.push_back(static_cast<double>(rng.nextBelow(1000)));
    EXPECT_LT(std::abs(lagAutocorrelation(s, 1)), 0.06);
    EXPECT_LT(std::abs(lagAutocorrelation(s, 5)), 0.06);
}

TEST(AcfComparison, SameProcessPasses)
{
    const auto a = syntheticTrace(1, 800);
    const auto b = syntheticTrace(2, 800);
    const AcfComparison c = compareAutocorrelation(a, b);
    EXPECT_TRUE(c.pass) << c.summary();
    EXPECT_GT(c.band, 0.0);
    EXPECT_LE(c.maxAddressDelta, c.band);
}

TEST(AcfComparison, SortedWindowsFail)
{
    const auto a = syntheticTrace(1, 800);
    const auto b = injectOrderingLeak(syntheticTrace(2, 800), 8);
    const AcfComparison c = compareAutocorrelation(a, b);
    EXPECT_FALSE(c.pass) << c.summary();
    EXPECT_GT(c.maxAddressDelta, c.band);
    EXPECT_FALSE(c.summary().empty());
}

TEST(GapPermutation, IndependentGapsPass)
{
    // Gap never depends on the address: H0 holds.
    const auto t = syntheticTrace(3, 600);
    const GapPermutationResult r = gapPermutationTest(t);
    EXPECT_TRUE(r.pass) << r.summary();
    EXPECT_GT(r.pValue, 0.01);
    EXPECT_EQ(r.permutations, TimingCheckOptions{}.permutations);
    EXPECT_FALSE(r.degenerate);
}

TEST(GapPermutation, AddressKeyedGapsFail)
{
    // Events in the top half of the address space are followed by a
    // long stall: the classic secret-keyed slow path.
    auto t = syntheticTrace(4, 600);
    const GapPermutationResult r =
        gapPermutationTest(injectTimingLeak(t, 128, 256, 50));
    EXPECT_FALSE(r.pass) << r.summary();
    EXPECT_LE(r.pValue, 0.01);
}

TEST(GapPermutation, UntimedTraceIsVacuous)
{
    // Functional-layer traces carry at == 0 everywhere.
    auto t = syntheticTrace(5, 300);
    for (TraceEvent &e : t)
        e.at = 0;
    const GapPermutationResult r = gapPermutationTest(t);
    EXPECT_TRUE(r.pass);
    EXPECT_TRUE(r.degenerate);
}

TEST(GapProfile, SameProcessPasses)
{
    const auto a = syntheticTrace(6, 900);
    const auto b = syntheticTrace(7, 900);
    const GapProfileComparison c = compareGapProfiles(a, b);
    EXPECT_TRUE(c.pass) << c.summary();
    EXPECT_GT(c.binsCompared, 0u);
    EXPECT_FALSE(c.degenerate);
}

TEST(GapProfile, SharedBenignStructureCancels)
{
    // Both traces stall on the SAME address band (think row-buffer
    // miss latency): the differential profile must not flag it.
    const auto a = injectTimingLeak(syntheticTrace(8, 900), 0, 64, 30);
    const auto b = injectTimingLeak(syntheticTrace(9, 900), 0, 64, 30);
    const GapProfileComparison c = compareGapProfiles(a, b);
    EXPECT_TRUE(c.pass) << c.summary();
}

TEST(GapProfile, OneSidedSlowPathFails)
{
    const auto a = syntheticTrace(10, 900);
    const auto b = injectTimingLeak(syntheticTrace(11, 900), 0, 64, 60);
    const GapProfileComparison c = compareGapProfiles(a, b);
    EXPECT_FALSE(c.pass) << c.summary();
    EXPECT_GT(c.maxDelta, c.threshold);
}

TEST(GapProfile, BothUntimedIsVacuousPass)
{
    auto a = syntheticTrace(12, 300);
    auto b = syntheticTrace(13, 300);
    for (TraceEvent &e : a)
        e.at = 0;
    for (TraceEvent &e : b)
        e.at = 0;
    const GapProfileComparison c = compareGapProfiles(a, b);
    EXPECT_TRUE(c.pass);
    EXPECT_TRUE(c.degenerate);
}

TEST(GapProfile, OneSidedTickingFails)
{
    // One trace carries a clock, the other does not: structurally
    // different visible channels, never indistinguishable.
    const auto a = syntheticTrace(14, 300);
    auto b = syntheticTrace(15, 300);
    for (TraceEvent &e : b)
        e.at = 0;
    const GapProfileComparison c = compareGapProfiles(a, b);
    EXPECT_FALSE(c.pass);
}

/* ------------------------------------------------------------------ */
/* The aggregate: deepCompareTraces                                    */
/* ------------------------------------------------------------------ */

TEST(DeepCompare, SameProcessPasses)
{
    const auto a = syntheticTrace(20, 3000);
    const auto b = syntheticTrace(21, 3000);
    const DeepComparison d = deepCompareTraces(a, b);
    EXPECT_TRUE(d.pass) << d.summary();
    EXPECT_TRUE(d.marginal.indistinguishable);
    EXPECT_TRUE(d.ordering.pass);
    EXPECT_TRUE(d.gapProfile.pass);
    EXPECT_FALSE(d.summary().empty());
}

TEST(DeepCompare, OrderingLeakPassesV1FailsV2)
{
    // THE acceptance property: same multiset of (kind, addr), same
    // timestamps -- v1 provably cannot see the difference, v2 must.
    const auto a = injectOrderingLeak(syntheticTrace(22, 3000), 8);
    const auto b = syntheticTrace(23, 3000);
    EXPECT_TRUE(compareTraces(a, b).indistinguishable);
    const DeepComparison d = deepCompareTraces(a, b);
    EXPECT_FALSE(d.pass) << d.summary();
    EXPECT_TRUE(d.marginal.indistinguishable);
    EXPECT_FALSE(d.ordering.pass);
}

TEST(DeepCompare, TimingLeakPassesV1FailsV2)
{
    const auto a = injectTimingLeak(syntheticTrace(24, 3000), 0, 128, 60);
    const auto b = syntheticTrace(25, 3000);
    EXPECT_TRUE(compareTraces(a, b).indistinguishable);
    const DeepComparison d = deepCompareTraces(a, b);
    EXPECT_FALSE(d.pass) << d.summary();
    EXPECT_TRUE(d.marginal.indistinguishable);
    EXPECT_FALSE(d.gapProfile.pass);
}

TEST(DeepCompare, UntimedFunctionalTracesStillOrderChecked)
{
    // No timestamps: gap statistics go vacuous, but the address-order
    // ACF still works and still catches sorted windows.
    auto a = syntheticTrace(26, 3000);
    auto b = syntheticTrace(27, 3000);
    for (TraceEvent &e : a)
        e.at = 0;
    for (TraceEvent &e : b)
        e.at = 0;
    EXPECT_TRUE(deepCompareTraces(a, b).pass);
    const auto leaky = injectOrderingLeak(a, 8);
    const DeepComparison d = deepCompareTraces(leaky, b);
    EXPECT_FALSE(d.pass) << d.summary();
}

TEST(DeepCompare, ReportsWithinTraceDependenceWithoutGating)
{
    // Both traces share benign address-timing coupling: the
    // within-trace permutation tests report it (low p), but the
    // differential gate still passes.
    const auto a = injectTimingLeak(syntheticTrace(28, 3000), 0, 64, 30);
    const auto b = injectTimingLeak(syntheticTrace(29, 3000), 0, 64, 30);
    const DeepComparison d = deepCompareTraces(a, b);
    EXPECT_TRUE(d.pass) << d.summary();
    EXPECT_LE(d.gapDependenceA.pValue, 0.01);
    EXPECT_LE(d.gapDependenceB.pValue, 0.01);
}

} // namespace
} // namespace secdimm::verify
