/**
 * @file
 * Exhaustive tamper sweeps: every byte position of a MAC'd payload, a
 * stored bucket image, and a Split ORAM slice share is flipped in
 * turn, and each flip must be detected.  Small blocks keep the sweeps
 * exhaustive rather than sampled.
 */

#include <gtest/gtest.h>

#include "crypto/aes128.hh"
#include "crypto/pmmac.hh"
#include "oram/path_oram.hh"
#include "oram/tree_layout.hh"
#include "sdimm/split_oram.hh"

namespace secdimm::verify
{
namespace
{

TEST(TamperExhaustive, PmmacDetectsEveryByteFlip)
{
    const crypto::Pmmac mac(crypto::makeKey(0x77, 0x88));
    std::vector<std::uint8_t> msg(64);
    for (std::size_t i = 0; i < msg.size(); ++i)
        msg[i] = static_cast<std::uint8_t>(i * 37 + 5);
    const std::uint64_t id = 42;
    const std::uint64_t ctr = 7;
    const crypto::Tag64 tag = mac.tag(id, ctr, msg.data(), msg.size());
    ASSERT_TRUE(mac.verify(id, ctr, msg.data(), msg.size(), tag));

    for (std::size_t i = 0; i < msg.size(); ++i) {
        for (const std::uint8_t flip : {0x01, 0x80, 0xff}) {
            msg[i] ^= flip;
            EXPECT_FALSE(
                mac.verify(id, ctr, msg.data(), msg.size(), tag))
                << "byte " << i << " flip 0x" << std::hex << int(flip);
            msg[i] ^= flip;
        }
    }
    // Identity, counter, and tag perturbations all fail too.
    EXPECT_FALSE(mac.verify(id + 1, ctr, msg.data(), msg.size(), tag));
    EXPECT_FALSE(mac.verify(id, ctr + 1, msg.data(), msg.size(), tag));
    EXPECT_FALSE(mac.verify(id, ctr, msg.data(), msg.size(), tag ^ 1));
    // And the original still verifies (the sweep restored every byte).
    EXPECT_TRUE(mac.verify(id, ctr, msg.data(), msg.size(), tag));
}

TEST(TamperExhaustive, BucketStoreDetectsEveryImageByteFlip)
{
    oram::OramParams p;
    p.levels = 4;
    p.stashCapacity = 200;
    oram::PathOram o(p, crypto::makeKey(0x1, 0x2),
                     crypto::makeKey(0x3, 0x4), 11);
    for (Addr a = 0; a < 16; ++a) {
        BlockData d{};
        d[0] = static_cast<std::uint8_t>(a);
        o.access(a, oram::OramOp::Write, &d);
    }

    const std::uint64_t seq = 0;
    const std::size_t image_bytes = o.store().rawImage(seq).size();
    ASSERT_GT(image_bytes, 0u);
    for (std::size_t i = 0; i < image_bytes; ++i) {
        o.store().tamperData(seq, i); // XORs 0x01 into byte i.
        EXPECT_FALSE(o.store().readBucket(seq).authentic)
            << "byte " << i << " of " << image_bytes;
        o.store().tamperData(seq, i); // Undo (XOR is an involution).
        EXPECT_TRUE(o.store().readBucket(seq).authentic)
            << "byte " << i << " failed to restore";
    }
}

TEST(TamperExhaustive, SplitSliceShareEveryByteFlipDetected)
{
    sdimm::SplitOram::Params sp;
    sp.tree.levels = 4;
    sp.tree.stashCapacity = 200;
    sp.slices = 2;
    sdimm::SplitOram o(sp, 13);

    // The root bucket lies on every path, so any access re-reads (and,
    // on write-back, re-MACs) it: tamper, access, expect exactly one
    // new integrity failure per swept byte.
    const oram::TreeLayout layout(sp.tree.levels,
                                  sp.tree.linesPerBucket());
    const std::uint64_t root_seq =
        layout.bucketSeq(oram::BucketPos{0, 0});
    const std::size_t share_bytes = blockBytes / sp.slices;

    BlockData d{};
    d[0] = 0xcd;
    o.access(0, oram::OramOp::Write, &d);
    ASSERT_EQ(o.stats().integrityFailures, 0u);

    for (std::size_t b = 0; b < share_bytes; ++b) {
        o.tamperSlice(1, root_seq, 0, b);
        o.access(b % o.capacityBlocks(), oram::OramOp::Read);
        EXPECT_EQ(o.stats().integrityFailures, b + 1)
            << "share byte " << b;
    }
    EXPECT_FALSE(o.integrityOk());
}

} // namespace
} // namespace secdimm::verify
