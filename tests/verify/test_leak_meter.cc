/**
 * @file
 * Tests of the quantitative leak meter (leak_meter.hh): the MI
 * estimator's calibration (zero for independence, log2|X| for a
 * deterministic channel, CI behaviour), the PLB locality experiment
 * (Freecursive measures a nonzero leak, flat PosMap designs measure
 * ~zero -- the paper's Section II-D claim turned into a number), the
 * marginal-preservation contracts of the leaky-control transforms,
 * and determinism of the whole pipeline.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "util/rng.hh"
#include "verify/leak_meter.hh"
#include "verify/trace_checker.hh"

namespace secdimm::verify
{
namespace
{

MiOptions
fastMi()
{
    MiOptions o;
    o.bootstrap = 80;
    return o;
}

TEST(MiEstimator, IndependentSymbolsMeasureZero)
{
    Rng rng(11);
    std::vector<unsigned> x, y;
    for (int i = 0; i < 2000; ++i) {
        x.push_back(static_cast<unsigned>(rng.nextBelow(2)));
        y.push_back(static_cast<unsigned>(rng.nextBelow(8)));
    }
    const MiEstimate e = estimateMutualInformation(x, y, fastMi());
    EXPECT_LT(e.bitsPerAccess, 0.01) << e.summary();
    EXPECT_FALSE(e.leakDetected()) << e.summary();
    EXPECT_EQ(e.samples, x.size());
    // The raw plug-in estimate is biased upward; the correction must
    // have removed roughly that bias.
    EXPECT_GE(e.rawBits, 0.0);
    EXPECT_GE(e.biasBits, 0.0);
}

TEST(MiEstimator, DeterministicChannelMeasuresEntropy)
{
    // y == x over a uniform 4-symbol alphabet: I(X;Y) = 2 bits.
    Rng rng(12);
    std::vector<unsigned> x;
    for (int i = 0; i < 2000; ++i)
        x.push_back(static_cast<unsigned>(rng.nextBelow(4)));
    const MiEstimate e = estimateMutualInformation(x, x, fastMi());
    EXPECT_NEAR(e.bitsPerAccess, 2.0, 0.05) << e.summary();
    EXPECT_TRUE(e.leakDetected());
    EXPECT_GT(e.ciLow, 1.9);
    EXPECT_LT(e.ciHigh, 2.1);
}

TEST(MiEstimator, NoisyChannelMeasuresBetween)
{
    // y leaks x through 25% symbol noise: 0 << I < 1 bit.
    Rng rng(13);
    std::vector<unsigned> x, y;
    for (int i = 0; i < 3000; ++i) {
        const unsigned xi = static_cast<unsigned>(rng.nextBelow(2));
        const bool flip = rng.nextBelow(4) == 0;
        x.push_back(xi);
        y.push_back(flip ? 1 - xi : xi);
    }
    const MiEstimate e = estimateMutualInformation(x, y, fastMi());
    EXPECT_TRUE(e.leakDetected()) << e.summary();
    EXPECT_GT(e.bitsPerAccess, 0.1);
    EXPECT_LT(e.bitsPerAccess, 1.0);
    EXPECT_LE(e.ciLow, e.bitsPerAccess);
    EXPECT_GE(e.ciHigh, e.bitsPerAccess);
}

TEST(MiEstimator, WideAlphabetsAreRangeBinned)
{
    // Alphabet far beyond maxSymbols: the estimator bins instead of
    // exploding the joint table; y = x >> 6 is still fully dependent.
    std::vector<unsigned> x, y;
    Rng rng(14);
    for (int i = 0; i < 3000; ++i) {
        const unsigned v = static_cast<unsigned>(rng.nextBelow(4096));
        x.push_back(v);
        y.push_back(v >> 6);
    }
    const MiEstimate e = estimateMutualInformation(x, y, fastMi());
    EXPECT_TRUE(e.leakDetected()) << e.summary();
    EXPECT_GT(e.bitsPerAccess, 1.0);
}

TEST(MiEstimator, DeterministicAcrossRuns)
{
    Rng rng(15);
    std::vector<unsigned> x, y;
    for (int i = 0; i < 500; ++i) {
        x.push_back(static_cast<unsigned>(rng.nextBelow(3)));
        y.push_back(static_cast<unsigned>(rng.nextBelow(5)));
    }
    const MiEstimate a = estimateMutualInformation(x, y, fastMi());
    const MiEstimate b = estimateMutualInformation(x, y, fastMi());
    EXPECT_DOUBLE_EQ(a.bitsPerAccess, b.bitsPerAccess);
    EXPECT_DOUBLE_EQ(a.ciLow, b.ciLow);
    EXPECT_DOUBLE_EQ(a.ciHigh, b.ciHigh);
}

/* ------------------------------------------------------------------ */
/* The PLB locality experiment                                         */
/* ------------------------------------------------------------------ */

PlbLeakOptions
fastLeak(std::uint64_t seed)
{
    PlbLeakOptions o;
    o.requests = 1200;
    // Deep enough that the first PosMap level exceeds the on-chip
    // capacity: shallower trees hold the whole PosMap on-chip and
    // recursion depth stops varying (no leak left to measure).
    o.dataLevels = 11;
    o.seed = seed;
    o.mi.bootstrap = 80;
    return o;
}

TEST(PlbLeak, FreecursiveMeasuresNonzeroLeak)
{
    // The acceptance criterion: MI between the secret locality phase
    // and the visible activity is nonzero with CI excluding zero.
    const LeakReport r =
        measurePlbLocalityLeak(LeakDesign::Freecursive, fastLeak(3));
    EXPECT_TRUE(r.mi.leakDetected()) << r.summary();
    EXPECT_GT(r.mi.bitsPerAccess, 0.05) << r.summary();
    // The mechanism: scatter phases miss the PLB and recurse deeper,
    // so they emit visibly more tree accesses per request.
    EXPECT_GT(r.meanVisibleScatter, r.meanVisibleLocal * 1.2);
    EXPECT_EQ(r.design, "Freecursive");
    EXPECT_EQ(r.requests, fastLeak(3).requests);
}

TEST(PlbLeak, PathOramMeasuresZero)
{
    // Flat PosMap: exactly one tree access per request, no matter the
    // locality phase.  The estimator must report a CI containing 0.
    const LeakReport r =
        measurePlbLocalityLeak(LeakDesign::PathOram, fastLeak(4));
    EXPECT_FALSE(r.mi.leakDetected()) << r.summary();
    EXPECT_LT(r.mi.bitsPerAccess, 0.01);
    EXPECT_DOUBLE_EQ(r.meanVisibleLocal, r.meanVisibleScatter);
}

TEST(PlbLeak, GenericHarnessMatchesConstantChannel)
{
    // A synthetic protocol whose visible count is constant per access
    // must measure zero through the generic entry point.
    std::uint64_t visible = 0;
    const LeakReport r = measureLocalityLeakWith(
        "Constant", 1024, fastLeak(5), [&](Addr) { visible += 3; },
        [&] { return visible; });
    EXPECT_FALSE(r.mi.leakDetected()) << r.summary();
    EXPECT_EQ(r.design, "Constant");
    EXPECT_DOUBLE_EQ(r.meanVisibleLocal, 3.0);
}

TEST(PlbLeak, GenericHarnessCatchesPhaseKeyedChannel)
{
    // A synthetic protocol that emits one extra event when the
    // address falls in a small window (i.e. during local phases).
    std::uint64_t visible = 0;
    std::uint64_t last_base = ~std::uint64_t{0};
    const LeakReport r = measureLocalityLeakWith(
        "Leaky", 1024, fastLeak(6),
        [&](Addr a) {
            // Heuristic locality detector standing in for a PLB: hit
            // when the address repeats a recent 16-block frame.
            const std::uint64_t base = a / 16;
            visible += base == last_base ? 1 : 3;
            last_base = base;
        },
        [&] { return visible; });
    EXPECT_TRUE(r.mi.leakDetected()) << r.summary();
}

TEST(PlbLeak, ReportJsonHasTheContractFields)
{
    const LeakReport r =
        measurePlbLocalityLeak(LeakDesign::PathOram, fastLeak(7));
    const std::string j = r.toJson();
    for (const char *key :
         {"\"design\"", "\"mi_bits_per_access\"", "\"ci_low\"",
          "\"ci_high\"", "\"leak_detected\"", "\"requests\"",
          "\"mean_visible_local\"", "\"mean_visible_scatter\""}) {
        EXPECT_NE(j.find(key), std::string::npos)
            << "missing " << key << " in " << j;
    }
}

TEST(PlbLeak, DeterministicAcrossRuns)
{
    const LeakReport a =
        measurePlbLocalityLeak(LeakDesign::Freecursive, fastLeak(8));
    const LeakReport b =
        measurePlbLocalityLeak(LeakDesign::Freecursive, fastLeak(8));
    EXPECT_DOUBLE_EQ(a.mi.bitsPerAccess, b.mi.bitsPerAccess);
    EXPECT_DOUBLE_EQ(a.meanVisibleLocal, b.meanVisibleLocal);
}

/* ------------------------------------------------------------------ */
/* Leaky-control transforms                                            */
/* ------------------------------------------------------------------ */

std::vector<TraceEvent>
rhythmTrace(std::uint64_t seed, std::size_t n)
{
    Rng rng(seed);
    std::vector<TraceEvent> t;
    Tick at = 0;
    for (std::size_t i = 0; i < n; ++i) {
        at += 10;
        t.push_back(TraceEvent{i % 3 ? TraceEventKind::StoreRead
                                     : TraceEventKind::StoreWrite,
                               rng.nextBelow(128), at});
    }
    return t;
}

TEST(LeakControls, OrderingLeakPreservesMarginalsExactly)
{
    const auto base = rhythmTrace(21, 400);
    const auto leaky = injectOrderingLeak(base, 8);
    ASSERT_EQ(leaky.size(), base.size());

    // Same multiset of (kind, addr); identical timestamp sequence.
    auto key = [](const TraceEvent &e) {
        return (static_cast<std::uint64_t>(e.kind) << 56) | e.addr;
    };
    std::vector<std::uint64_t> ka, kb;
    for (std::size_t i = 0; i < base.size(); ++i) {
        ka.push_back(key(base[i]));
        kb.push_back(key(leaky[i]));
        EXPECT_EQ(base[i].at, leaky[i].at);
    }
    std::sort(ka.begin(), ka.end());
    std::sort(kb.begin(), kb.end());
    EXPECT_EQ(ka, kb);

    // Which is WHY the v1 checker cannot possibly flag it.
    EXPECT_TRUE(compareTraces(base, leaky).indistinguishable);
}

TEST(LeakControls, TimingLeakPreservesEventSequence)
{
    const auto base = rhythmTrace(22, 400);
    const auto leaky = injectTimingLeak(base, 0, 64, 40);
    ASSERT_EQ(leaky.size(), base.size());
    Tick carried = 0;
    for (std::size_t i = 0; i < base.size(); ++i) {
        EXPECT_EQ(base[i].kind, leaky[i].kind);
        EXPECT_EQ(base[i].addr, leaky[i].addr);
        EXPECT_GE(leaky[i].at, base[i].at + carried);
        if (base[i].addr < 64)
            carried += 40;
    }
    EXPECT_TRUE(compareTraces(base, leaky).indistinguishable);
}

/* ------------------------------------------------------------------ */
/* Schedule recording and comparison                                   */
/* ------------------------------------------------------------------ */

TEST(Schedules, RecorderAssignsGlobalSeq)
{
    ScheduleRecorder rec;
    rec.record(2, false);
    rec.record(0, true);
    rec.record(1, false);
    const auto ev = rec.events();
    ASSERT_EQ(ev.size(), 3u);
    EXPECT_EQ(ev[0].shard, 2u);
    EXPECT_TRUE(ev[1].write);
    EXPECT_EQ(ev[2].seq, 2u);
    rec.clear();
    EXPECT_EQ(rec.size(), 0u);
}

TEST(Schedules, TraceRenderingMapsShardToAddr)
{
    std::vector<ScheduleEvent> s{{3, false, 0}, {1, true, 1}};
    const auto t = scheduleToTrace(s);
    ASSERT_EQ(t.size(), 2u);
    EXPECT_EQ(t[0].addr, 3u);
    EXPECT_EQ(t[1].addr, 1u);
    EXPECT_EQ(t[1].at, Tick{1});
}

std::vector<ScheduleEvent>
randomSchedule(std::uint64_t seed, std::size_t n, unsigned shards)
{
    Rng rng(seed);
    std::vector<ScheduleEvent> s;
    for (std::size_t i = 0; i < n; ++i)
        s.push_back(ScheduleEvent{
            static_cast<unsigned>(rng.nextBelow(shards)),
            rng.nextBelow(2) == 0, i});
    return s;
}

TEST(Schedules, LikeDistributedSchedulesPass)
{
    const auto a = randomSchedule(31, 600, 4);
    const auto b = randomSchedule(32, 600, 4);
    const ScheduleComparison c = compareSchedules(a, b);
    EXPECT_TRUE(c.pass) << c.summary();
    EXPECT_FALSE(c.summary().empty());
}

TEST(Schedules, WithinShardKindSortingFails)
{
    // Reorder each shard's subsequence writes-first while keeping the
    // global position->shard assignment: marginal view and global
    // shard-order ACF are identical, so only the per-shard FIFO kind
    // statistic can catch it.
    const auto b = randomSchedule(35, 800, 4);
    auto a = b;
    for (unsigned s = 0; s < 4; ++s) {
        std::vector<bool> kinds;
        for (const ScheduleEvent &e : a) {
            if (e.shard == s)
                kinds.push_back(e.write);
        }
        std::stable_partition(kinds.begin(), kinds.end(),
                              [](bool w) { return w; });
        std::size_t k = 0;
        for (ScheduleEvent &e : a) {
            if (e.shard == s)
                e.write = kinds[k++];
        }
    }
    const ScheduleComparison c = compareSchedules(a, b);
    EXPECT_TRUE(c.marginal.indistinguishable) << c.summary();
    EXPECT_TRUE(c.ordering.pass) << c.summary();
    EXPECT_FALSE(c.perShardPass) << c.summary();
    EXPECT_FALSE(c.pass);
}

TEST(Schedules, ShardSortedScheduleFails)
{
    // Shard-sorted completion order (long same-shard runs) against a
    // well-mixed one: identical shard occupancy, so the marginal view
    // passes -- only the ordering statistic can catch it.
    const auto b = randomSchedule(33, 600, 4);
    auto a = b;
    std::stable_sort(a.begin(), a.end(),
                     [](const ScheduleEvent &x, const ScheduleEvent &y) {
                         return x.shard < y.shard;
                     });
    const ScheduleComparison c = compareSchedules(a, b);
    EXPECT_TRUE(c.marginal.indistinguishable);
    EXPECT_FALSE(c.pass) << c.summary();
    EXPECT_FALSE(c.ordering.pass);
}

} // namespace
} // namespace secdimm::verify
