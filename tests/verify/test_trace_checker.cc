/**
 * @file
 * Unit tests of the trace-indistinguishability checker itself:
 * identical and same-distribution traces pass, disjoint address
 * regions / mismatched kinds / mismatched counts fail, and
 * driveBackend honours the MemoryBackend contract.
 */

#include <gtest/gtest.h>

#include <map>

#include "core/system_config.hh"
#include "util/rng.hh"
#include "verify/trace_checker.hh"

namespace secdimm::verify
{
namespace
{

std::vector<TraceEvent>
uniformTrace(std::uint64_t seed, std::size_t n, std::uint64_t lo,
             std::uint64_t span,
             TraceEventKind kind = TraceEventKind::Read)
{
    Rng rng(seed);
    std::vector<TraceEvent> t;
    t.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        t.push_back(TraceEvent{kind, lo + rng.nextBelow(span), i});
    return t;
}

TEST(TraceChecker, IdenticalTracesIndistinguishable)
{
    const auto t = uniformTrace(1, 2000, 0, 1 << 16);
    const TraceComparison c = compareTraces(t, t);
    EXPECT_TRUE(c.indistinguishable) << c.summary();
    EXPECT_DOUBLE_EQ(c.addressDistance, 0.0);
    EXPECT_DOUBLE_EQ(c.kindDistance, 0.0);
    EXPECT_DOUBLE_EQ(c.countRatioDelta, 0.0);
}

TEST(TraceChecker, SameDistributionIndistinguishable)
{
    const auto a = uniformTrace(11, 8000, 0, 1 << 16);
    const auto b = uniformTrace(77, 8000, 0, 1 << 16);
    const TraceComparison c = compareTraces(a, b);
    EXPECT_TRUE(c.indistinguishable) << c.summary();
}

TEST(TraceChecker, DisjointRegionsDistinguishable)
{
    const auto a = uniformTrace(11, 4000, 0, 1 << 12);
    const auto b = uniformTrace(77, 4000, 1 << 20, 1 << 12);
    const TraceComparison c = compareTraces(a, b);
    EXPECT_FALSE(c.indistinguishable) << c.summary();
    EXPECT_GT(c.addressDistance, 0.9);
}

TEST(TraceChecker, EmptyPairIndistinguishable)
{
    const TraceComparison c = compareTraces({}, {});
    EXPECT_TRUE(c.indistinguishable);
}

TEST(TraceChecker, OneSidedEmptyDistinguishable)
{
    const auto a = uniformTrace(1, 100, 0, 64);
    const TraceComparison c = compareTraces(a, {});
    EXPECT_FALSE(c.indistinguishable);
    EXPECT_DOUBLE_EQ(c.addressDistance, 1.0);
}

TEST(TraceChecker, CountMismatchDistinguishable)
{
    const auto a = uniformTrace(11, 8000, 0, 1 << 16);
    const auto b = uniformTrace(77, 4000, 0, 1 << 16);
    const TraceComparison c = compareTraces(a, b);
    EXPECT_FALSE(c.indistinguishable) << c.summary();
    EXPECT_NEAR(c.countRatioDelta, 0.5, 1e-9);
}

TEST(TraceChecker, KindMismatchDistinguishable)
{
    const auto a =
        uniformTrace(11, 4000, 0, 1 << 12, TraceEventKind::Read);
    const auto b =
        uniformTrace(11, 4000, 0, 1 << 12, TraceEventKind::Write);
    const TraceComparison c = compareTraces(a, b);
    EXPECT_FALSE(c.indistinguishable) << c.summary();
    EXPECT_DOUBLE_EQ(c.kindDistance, 1.0);
}

TEST(TraceChecker, SummaryStatesVerdict)
{
    const auto t = uniformTrace(1, 100, 0, 64);
    EXPECT_NE(compareTraces(t, t).summary().find("INDISTINGUISHABLE"),
              std::string::npos);
    EXPECT_NE(compareTraces(t, {}).summary().find("DISTINGUISHABLE"),
              std::string::npos);
}

TEST(TraceChecker, ThresholdsAreConfigurable)
{
    const auto a = uniformTrace(11, 8000, 0, 1 << 16);
    const auto b = uniformTrace(77, 8000, 0, 1 << 16);
    TraceCheckerOptions strict;
    strict.maxAddressDistance = 0.0;
    EXPECT_FALSE(compareTraces(a, b, strict).indistinguishable);
}

TEST(DriveBackend, CompletesEveryAccess)
{
    const core::SystemConfig cfg =
        core::makeConfig(core::DesignPoint::NonSecure, 12, 4);
    auto backend = core::buildBackend(cfg, 1);
    std::map<std::uint64_t, unsigned> completions;
    backend->setCompletionCallback(
        [&](std::uint64_t id, Tick) { ++completions[id]; });

    std::vector<std::pair<Addr, bool>> accesses;
    for (unsigned i = 0; i < 24; ++i)
        accesses.emplace_back(Addr{i} * 8191 * 64, i % 2 == 0);
    const Tick end = driveBackend(*backend, accesses);

    EXPECT_GT(end, 0u);
    EXPECT_TRUE(backend->idle());
    ASSERT_EQ(completions.size(), accesses.size());
    for (const auto &kv : completions)
        EXPECT_EQ(kv.second, 1u) << "id " << kv.first;
}

} // namespace
} // namespace secdimm::verify
