#include <gtest/gtest.h>

#include <map>

#include "sdimm/split_oram.hh"

namespace secdimm::sdimm
{
namespace
{

SplitOram::Params
smallParams(unsigned slices = 2, unsigned levels = 7)
{
    SplitOram::Params p;
    p.tree.levels = levels;
    p.tree.stashCapacity = 200;
    p.slices = slices;
    return p;
}

BlockData
blockOf(std::uint64_t v)
{
    BlockData d{};
    for (int i = 0; i < 8; ++i)
        d[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(v >> (8 * i));
    return d;
}

TEST(SplitShares, ExtractMergeRoundTrip)
{
    std::vector<std::uint8_t> full(64);
    for (std::size_t i = 0; i < full.size(); ++i)
        full[i] = static_cast<std::uint8_t>(i * 7);
    for (unsigned s : {2u, 4u}) {
        std::vector<std::uint8_t> rebuilt(64, 0);
        for (unsigned j = 0; j < s; ++j)
            mergeShare(rebuilt, extractShare(full, j, s), j, s);
        EXPECT_EQ(rebuilt, full) << "slices=" << s;
    }
}

TEST(SplitShares, SharesPartitionTheBytes)
{
    std::vector<std::uint8_t> full(64, 0xff);
    const auto s0 = extractShare(full, 0, 2);
    const auto s1 = extractShare(full, 1, 2);
    EXPECT_EQ(s0.size() + s1.size(), full.size());
}

TEST(SplitOram, UninitializedReadsZero)
{
    SplitOram oram(smallParams(), 1);
    EXPECT_EQ(oram.access(0, oram::OramOp::Read), BlockData{});
}

TEST(SplitOram, ReadYourWrites)
{
    SplitOram oram(smallParams(), 1);
    const BlockData v = blockOf(0xfeedfacecafebeefULL);
    oram.access(3, oram::OramOp::Write, &v);
    EXPECT_EQ(oram.access(3, oram::OramOp::Read), v);
    EXPECT_TRUE(oram.integrityOk());
}

TEST(SplitOram, WriteReturnsOldValue)
{
    SplitOram oram(smallParams(), 1);
    const BlockData v1 = blockOf(1), v2 = blockOf(2);
    oram.access(3, oram::OramOp::Write, &v1);
    EXPECT_EQ(oram.access(3, oram::OramOp::Write, &v2), v1);
    EXPECT_EQ(oram.access(3, oram::OramOp::Read), v2);
}

TEST(SplitOram, ManyBlocksSurviveShuffling)
{
    SplitOram oram(smallParams(2, 8), 3);
    const std::uint64_t capacity = oram.capacityBlocks();
    std::map<Addr, std::uint64_t> expected;
    Rng rng(21);
    for (int i = 0; i < 200; ++i) {
        const Addr a = rng.nextBelow(capacity);
        const std::uint64_t v = rng.next();
        const BlockData d = blockOf(v);
        oram.access(a, oram::OramOp::Write, &d);
        expected[a] = v;
    }
    for (int i = 0; i < 400; ++i) {
        const Addr a = rng.nextBelow(capacity);
        const auto it = expected.find(a);
        const BlockData want =
            it == expected.end() ? BlockData{} : blockOf(it->second);
        ASSERT_EQ(oram.access(a, oram::OramOp::Read), want)
            << "addr " << a << " iter " << i;
    }
    EXPECT_TRUE(oram.integrityOk());
    EXPECT_EQ(oram.stats().integrityFailures, 0u);
}

TEST(SplitOram, FourWaySplitWorks)
{
    SplitOram oram(smallParams(4, 6), 5);
    const BlockData v = blockOf(77);
    for (Addr a = 0; a < 40; ++a)
        oram.access(a, oram::OramOp::Write, &v);
    for (Addr a = 0; a < 40; ++a)
        EXPECT_EQ(oram.access(a, oram::OramOp::Read), v);
    EXPECT_TRUE(oram.integrityOk());
}

TEST(SplitOram, SliceTamperDetected)
{
    SplitOram oram(smallParams(2, 6), 7);
    const BlockData v = blockOf(1);
    oram.access(0, oram::OramOp::Write, &v);
    // Corrupt one byte of slice 1's share of the root bucket data.
    oram.tamperSlice(1, 0, 0, 0);
    oram.access(0, oram::OramOp::Read);
    EXPECT_FALSE(oram.integrityOk());
}

TEST(SplitOram, ChannelTrafficIsMetadataDominated)
{
    // The point of Split: local (on-DIMM) bytes dwarf channel bytes.
    SplitOram oram(smallParams(2, 10), 9);
    const BlockData v = blockOf(5);
    for (int i = 0; i < 50; ++i)
        oram.access(static_cast<Addr>(i), oram::OramOp::Write, &v);
    EXPECT_GT(oram.stats().localBytes, oram.stats().channelBytes);
}

TEST(SplitOram, LeafTraceUniformUnderHammering)
{
    SplitOram oram(smallParams(2, 8), 11);
    const BlockData v = blockOf(1);
    oram.access(0, oram::OramOp::Write, &v);
    oram.clearLeafTrace();
    for (int i = 0; i < 400; ++i)
        oram.access(0, oram::OramOp::Read);
    std::vector<int> bins(16, 0);
    for (LeafId l : oram.leafTrace())
        ++bins[l % 16];
    const double expect =
        static_cast<double>(oram.leafTrace().size()) / bins.size();
    double chi2 = 0;
    for (int b : bins)
        chi2 += (b - expect) * (b - expect) / expect;
    EXPECT_LT(chi2, 45.0);
}

TEST(SplitOram, ShadowStashStaysBounded)
{
    SplitOram oram(smallParams(2, 7), 13);
    const BlockData v = blockOf(3);
    for (int i = 0; i < 1000; ++i)
        oram.access(static_cast<Addr>(i) % oram.capacityBlocks(),
                    oram::OramOp::Write, &v);
    EXPECT_LE(oram.stats().maxShadowStash,
              oram.capacityBlocks()); // Sanity.
    EXPECT_LE(oram.shadowStashSize(), 200u);
}

TEST(SplitOram, OverwritePersistsAcrossManyAccesses)
{
    SplitOram oram(smallParams(2, 7), 15);
    const BlockData v1 = blockOf(0xaaaa), v2 = blockOf(0xbbbb);
    oram.access(9, oram::OramOp::Write, &v1);
    for (int i = 0; i < 100; ++i)
        oram.access(static_cast<Addr>(i % 30 + 10), oram::OramOp::Read);
    EXPECT_EQ(oram.access(9, oram::OramOp::Write, &v2), v1);
    for (int i = 0; i < 100; ++i)
        oram.access(static_cast<Addr>(i % 30 + 10), oram::OramOp::Read);
    EXPECT_EQ(oram.access(9, oram::OramOp::Read), v2);
}

} // namespace
} // namespace secdimm::sdimm
