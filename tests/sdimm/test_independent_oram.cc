#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "fault/fault_injector.hh"
#include "sdimm/independent_oram.hh"

namespace secdimm::sdimm
{
namespace
{

IndependentOram::Params
smallParams(unsigned sdimms = 2, unsigned levels = 7)
{
    IndependentOram::Params p;
    p.perSdimm.levels = levels;
    p.perSdimm.stashCapacity = 200;
    p.numSdimms = sdimms;
    return p;
}

BlockData
blockOf(std::uint64_t v)
{
    BlockData d{};
    for (int i = 0; i < 8; ++i)
        d[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(v >> (8 * i));
    return d;
}

TEST(IndependentOram, ReadYourWrites)
{
    IndependentOram oram(smallParams(), 1);
    const BlockData v = blockOf(0x1122334455667788ULL);
    oram.access(5, oram::OramOp::Write, &v);
    EXPECT_EQ(oram.access(5, oram::OramOp::Read), v);
}

TEST(IndependentOram, BlocksMigrateAcrossSdimmsAndSurvive)
{
    IndependentOram oram(smallParams(2), 3);
    const std::uint64_t capacity = oram.capacityBlocks();
    std::map<Addr, std::uint64_t> expected;
    Rng rng(17);
    for (int i = 0; i < 200; ++i) {
        const Addr a = rng.nextBelow(capacity);
        const std::uint64_t v = rng.next();
        const BlockData d = blockOf(v);
        oram.access(a, oram::OramOp::Write, &d);
        expected[a] = v;
    }
    for (int i = 0; i < 400; ++i) {
        const Addr a = rng.nextBelow(capacity);
        const auto it = expected.find(a);
        const BlockData want =
            it == expected.end() ? BlockData{} : blockOf(it->second);
        ASSERT_EQ(oram.access(a, oram::OramOp::Read), want)
            << "addr " << a << " iter " << i;
    }
    EXPECT_TRUE(oram.integrityOk());
}

TEST(IndependentOram, FourSdimmsWork)
{
    IndependentOram oram(smallParams(4, 6), 5);
    const BlockData v = blockOf(42);
    for (Addr a = 0; a < 64; ++a)
        oram.access(a, oram::OramOp::Write, &v);
    for (Addr a = 0; a < 64; ++a)
        EXPECT_EQ(oram.access(a, oram::OramOp::Read), v);
    EXPECT_TRUE(oram.integrityOk());
}

TEST(IndependentOram, EveryAccessAppendsToAllSdimms)
{
    // The obfuscation invariant of Section III-C step 6: per access,
    // exactly one ACCESS and one APPEND per SDIMM, regardless of
    // whether the block moved.
    IndependentOram oram(smallParams(2), 7);
    const BlockData v = blockOf(1);
    oram.access(0, oram::OramOp::Write, &v);
    oram.clearBusTrace();
    const int n = 50;
    for (int i = 0; i < n; ++i)
        oram.access(0, oram::OramOp::Read);

    int accesses = 0, appends0 = 0, appends1 = 0, fetches = 0;
    for (const BusEvent &e : oram.busTrace()) {
        switch (e.type) {
          case SdimmCommandType::Access: ++accesses; break;
          case SdimmCommandType::FetchResult: ++fetches; break;
          case SdimmCommandType::Append:
            (e.sdimm == 0 ? appends0 : appends1)++;
            break;
          default: break;
        }
    }
    EXPECT_EQ(accesses, n);
    EXPECT_EQ(fetches, n);
    EXPECT_EQ(appends0, n);
    EXPECT_EQ(appends1, n);
}

TEST(IndependentOram, MessageSizesAreOperationIndependent)
{
    // Reads and writes, moving and staying blocks -- every ACCESS and
    // APPEND must have the same sealed size or the bus leaks the
    // operation type.
    IndependentOram oram(smallParams(2), 9);
    const BlockData v = blockOf(9);
    for (int i = 0; i < 30; ++i) {
        if (i % 2)
            oram.access(static_cast<Addr>(i % 5), oram::OramOp::Read);
        else
            oram.access(static_cast<Addr>(i % 5), oram::OramOp::Write,
                        &v);
    }
    std::size_t access_size = 0, append_size = 0;
    for (const BusEvent &e : oram.busTrace()) {
        if (e.type == SdimmCommandType::Access) {
            if (access_size == 0)
                access_size = e.bytes;
            EXPECT_EQ(e.bytes, access_size);
        } else if (e.type == SdimmCommandType::Append) {
            if (append_size == 0)
                append_size = e.bytes;
            EXPECT_EQ(e.bytes, append_size);
        }
    }
    EXPECT_GT(access_size, blockBytes);
    EXPECT_GT(append_size, blockBytes);
}

TEST(IndependentOram, TargetSdimmSequenceLooksUniform)
{
    // Hammering one address must spread ACCESS commands evenly over
    // SDIMMs (leaf remapping): the attacker cannot localize a block.
    IndependentOram oram(smallParams(4, 6), 11);
    const BlockData v = blockOf(1);
    oram.access(0, oram::OramOp::Write, &v);
    oram.clearBusTrace();
    const int n = 400;
    for (int i = 0; i < n; ++i)
        oram.access(0, oram::OramOp::Read);
    std::vector<int> counts(4, 0);
    for (const BusEvent &e : oram.busTrace()) {
        if (e.type == SdimmCommandType::Access)
            ++counts[e.sdimm];
    }
    for (int c : counts) {
        EXPECT_GT(c, n / 4 - n / 8);
        EXPECT_LT(c, n / 4 + n / 8);
    }
}

TEST(IndependentOram, TransferQueueSeesTraffic)
{
    IndependentOram oram(smallParams(2), 13);
    const BlockData v = blockOf(2);
    for (int i = 0; i < 100; ++i)
        oram.access(static_cast<Addr>(i % 20), oram::OramOp::Write, &v);
    std::uint64_t arrivals = 0;
    for (unsigned s = 0; s < 2; ++s)
        arrivals += oram.buffer(s).transferQueue().stats().arrivals;
    // Roughly half of accesses move the block between SDIMMs.
    EXPECT_GT(arrivals, 20u);
    std::uint64_t overflows = 0;
    for (unsigned s = 0; s < 2; ++s)
        overflows += oram.buffer(s).transferQueue().stats().overflows;
    EXPECT_EQ(overflows, 0u);
}

TEST(IndependentOram, DegradedSurvivorLeafDrawsAreUniform)
{
    // After a quarantine, every fresh leaf draw must be uniform over
    // the SURVIVOR leaves: a skew would let a bus analyst spot the
    // fail-over region, and a survivor hotspot would break Path ORAM's
    // load argument.  Chi-squared over 10k post-quarantine draws.
    IndependentOram oram(smallParams(2, 5), 21);
    fault::FaultInjector inj(fault::FaultPlan::stuckAt(0, 31));
    oram.setFaultInjector(&inj, fault::DegradationPolicy::Degraded);

    const std::uint64_t leaves_per_sdimm =
        oram.params().perSdimm.numLeaves();
    const unsigned levels = oram.params().perSdimm.levels;
    std::vector<std::uint64_t> counts(leaves_per_sdimm, 0);
    Rng rng(7);
    const std::uint64_t samples = 10000;
    const BlockData v = blockOf(77);
    for (std::uint64_t i = 0; i < samples; ++i) {
        const Addr a = rng.nextBelow(64);
        oram.access(a, (i & 1) ? oram::OramOp::Write : oram::OramOp::Read,
                    (i & 1) ? &v : nullptr);
        const LeafId leaf = oram.leafOf(a); // Freshly drawn this access.
        ASSERT_EQ(leaf >> levels, 1u) << "draw landed on the dead SDIMM";
        ++counts[leaf & (leaves_per_sdimm - 1)];
    }
    EXPECT_TRUE(oram.isQuarantined(0));
    const double expected =
        static_cast<double>(samples) / static_cast<double>(counts.size());
    double chi2 = 0;
    for (const std::uint64_t c : counts) {
        const double d = static_cast<double>(c) - expected;
        chi2 += d * d / expected;
    }
    // 31 degrees of freedom: 70 is far beyond the p=0.001 critical
    // value (~61.1) -- loose enough to be stable, tight enough to
    // catch any structural skew.
    EXPECT_LT(chi2, 70.0);
}

TEST(IndependentOram, QuarantineCountIsMonotone)
{
    IndependentOram oram(smallParams(2, 4), 23);
    fault::FaultInjector inj(fault::FaultPlan::hardDeath(1, 100, 37));
    oram.setFaultInjector(&inj, fault::DegradationPolicy::Degraded);

    std::uint64_t last = 0;
    const BlockData v = blockOf(5);
    for (int i = 0; i < 300; ++i) {
        oram.access(static_cast<Addr>(i % 16),
                    (i & 1) ? oram::OramOp::Write : oram::OramOp::Read,
                    (i & 1) ? &v : nullptr);
        const std::uint64_t q = inj.quarantinedUnits();
        ASSERT_GE(q, last) << "quarantine count regressed at access " << i;
        last = q;
    }
    EXPECT_EQ(last, 1u);
    EXPECT_EQ(oram.quarantinedCount(), 1u);
}

TEST(IndependentOram, DummyAppendsDoNotCorruptState)
{
    IndependentOram oram(smallParams(2), 15);
    const BlockData v1 = blockOf(111), v2 = blockOf(222);
    oram.access(1, oram::OramOp::Write, &v1);
    oram.access(2, oram::OramOp::Write, &v2);
    for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(oram.access(1, oram::OramOp::Read), v1);
        EXPECT_EQ(oram.access(2, oram::OramOp::Read), v2);
    }
}

} // namespace
} // namespace secdimm::sdimm
