#include <gtest/gtest.h>

#include "sdimm/link_session.hh"
#include "sdimm/secure_buffer.hh"

namespace secdimm::sdimm
{
namespace
{

std::vector<std::uint8_t>
payload(std::size_t n, std::uint8_t seed)
{
    std::vector<std::uint8_t> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<std::uint8_t>(seed + i);
    return v;
}

class LinkSessionTest : public ::testing::Test
{
  protected:
    LinkSessionTest() : rng_(2024), ends_(establishLink(rng_)) {}

    Rng rng_;
    std::pair<LinkEndpoint, LinkEndpoint> ends_;
    LinkEndpoint &cpu() { return ends_.first; }
    LinkEndpoint &dimm() { return ends_.second; }
};

TEST_F(LinkSessionTest, SealUnsealRoundTripBothDirections)
{
    const auto msg = payload(89, 3);
    const SealedMessage up = cpu().seal(0x02, msg);
    const auto up_plain = dimm().unseal(up);
    ASSERT_TRUE(up_plain.has_value());
    EXPECT_EQ(*up_plain, msg);

    const SealedMessage down = dimm().seal(0x10, msg);
    const auto down_plain = cpu().unseal(down);
    ASSERT_TRUE(down_plain.has_value());
    EXPECT_EQ(*down_plain, msg);
}

TEST_F(LinkSessionTest, CiphertextHidesPlaintext)
{
    const auto msg = payload(64, 5);
    const SealedMessage sealed = cpu().seal(0x02, msg);
    EXPECT_NE(sealed.body, msg);
}

TEST_F(LinkSessionTest, SamePlaintextDifferentCiphertext)
{
    const auto msg = payload(64, 5);
    const SealedMessage a = cpu().seal(0x02, msg);
    const SealedMessage b = cpu().seal(0x02, msg);
    EXPECT_NE(a.body, b.body) << "counter-mode pad reuse";
}

TEST_F(LinkSessionTest, BitFlipRejected)
{
    SealedMessage sealed = cpu().seal(0x02, payload(64, 1));
    sealed.body[10] ^= 0x80;
    EXPECT_FALSE(dimm().unseal(sealed).has_value());
    EXPECT_EQ(dimm().authFailures(), 1u);
}

TEST_F(LinkSessionTest, HeaderTamperRejected)
{
    SealedMessage sealed = cpu().seal(0x02, payload(64, 1));
    sealed.opcode = 0x03;
    EXPECT_FALSE(dimm().unseal(sealed).has_value());
}

TEST_F(LinkSessionTest, ReplayRejected)
{
    const SealedMessage sealed = cpu().seal(0x02, payload(64, 1));
    ASSERT_TRUE(dimm().unseal(sealed).has_value());
    EXPECT_FALSE(dimm().unseal(sealed).has_value()) << "replay accepted";
}

TEST_F(LinkSessionTest, DistinctSessionsCannotCrossTalk)
{
    Rng other_rng(9999);
    auto other = establishLink(other_rng);
    const SealedMessage sealed = cpu().seal(0x02, payload(64, 1));
    EXPECT_FALSE(other.second.unseal(sealed).has_value());
}

TEST_F(LinkSessionTest, SequenceNumbersAdvance)
{
    const SealedMessage a = cpu().seal(0x02, payload(16, 1));
    const SealedMessage b = cpu().seal(0x02, payload(16, 1));
    EXPECT_EQ(b.seq, a.seq + 1);
    EXPECT_EQ(cpu().sendCount(), 2u);
}

// ---------------------------------------------------------------------
// Error paths: truncated frames, out-of-order session state, and the
// double-FETCH (re-FETCH) recovery contract.
// ---------------------------------------------------------------------

TEST_F(LinkSessionTest, TruncatedFrameRejected)
{
    SealedMessage sealed = cpu().seal(0x02, payload(64, 1));
    sealed.body.pop_back(); // Last ciphertext byte lost in flight.
    EXPECT_FALSE(dimm().unseal(sealed).has_value());
    EXPECT_EQ(dimm().authFailures(), 1u);
    EXPECT_EQ(dimm().openedCount(), 0u);
}

TEST_F(LinkSessionTest, EmptiedFrameRejected)
{
    SealedMessage sealed = cpu().seal(0x02, payload(64, 1));
    sealed.body.clear();
    EXPECT_FALSE(dimm().unseal(sealed).has_value());
}

TEST_F(LinkSessionTest, PaddedFrameRejected)
{
    SealedMessage sealed = cpu().seal(0x02, payload(64, 1));
    sealed.body.push_back(0x00); // Trailing garbage breaks the CMAC.
    EXPECT_FALSE(dimm().unseal(sealed).has_value());
}

TEST_F(LinkSessionTest, TruncationDoesNotPoisonTheSession)
{
    // A rejected frame must leave the receive window where it was:
    // the CPU re-seals under a fresh sequence number and that retry
    // is accepted (the recovery layer's whole premise).
    const auto msg = payload(64, 1);
    SealedMessage bad = cpu().seal(0x02, msg);
    bad.body.pop_back();
    EXPECT_FALSE(dimm().unseal(bad).has_value());
    const SealedMessage retry = cpu().seal(0x02, msg);
    const auto plain = dimm().unseal(retry);
    ASSERT_TRUE(plain.has_value());
    EXPECT_EQ(*plain, msg);
}

TEST_F(LinkSessionTest, OutOfOrderDeliveryWithinTheWindow)
{
    // seq numbers are monotonic, not gap-free: a newer frame may
    // overtake a dropped older one (the older is then dead -- replay
    // protection -- and its content must be re-sent re-sealed).
    const SealedMessage first = cpu().seal(0x02, payload(16, 1));
    const SealedMessage second = cpu().seal(0x02, payload(16, 2));
    EXPECT_TRUE(dimm().unseal(second).has_value());
    EXPECT_FALSE(dimm().unseal(first).has_value())
        << "stale frame accepted after the window advanced";
    EXPECT_EQ(dimm().authFailures(), 1u);
}

TEST_F(LinkSessionTest, ForgedSequenceNumberRejected)
{
    // Skipping the window forward needs a valid MAC over the new seq;
    // an attacker advancing the counter on a captured frame fails.
    SealedMessage sealed = cpu().seal(0x02, payload(16, 1));
    sealed.seq += 10;
    EXPECT_FALSE(dimm().unseal(sealed).has_value());
    // The honest original still goes through: the failed forgery did
    // not advance the window.
    EXPECT_TRUE(dimm().unseal(cpu().seal(0x02, payload(16, 1))).has_value());
}

class SecureBufferFetchTest : public ::testing::Test
{
  protected:
    SecureBufferFetchTest() : rng_(7), buf_(params(), 0, 99, 8, 0.25, rng_)
    {
    }

    static oram::OramParams params()
    {
        oram::OramParams p;
        p.levels = 4;
        p.stashCapacity = 150;
        return p;
    }

    SealedMessage sealAccess(Addr addr)
    {
        AccessRequest req;
        req.addr = addr;
        req.localLeaf = 0;
        req.newLocalLeaf = 1;
        return buf_.cpuLink().seal(0x02, packAccess(req));
    }

    Rng rng_;
    SecureBuffer buf_;
};

TEST_F(SecureBufferFetchTest, RefetchBeforeAnyAccessIsEmpty)
{
    EXPECT_FALSE(buf_.refetchResult().has_value());
}

TEST_F(SecureBufferFetchTest, DoubleFetchYieldsFreshSeqsSamePlaintext)
{
    const auto resp = buf_.handleAccess(sealAccess(3));
    ASSERT_TRUE(resp.has_value());
    const auto re1 = buf_.refetchResult();
    const auto re2 = buf_.refetchResult();
    ASSERT_TRUE(re1.has_value());
    ASSERT_TRUE(re2.has_value());
    // Each re-FETCH is a fresh sealed frame, not a replay...
    EXPECT_EQ(re1->seq, resp->seq + 1);
    EXPECT_EQ(re2->seq, re1->seq + 1);
    EXPECT_NE(re1->body, resp->body);
    // ...and all of them unseal (in order) to the same response.
    const auto p0 = buf_.cpuLink().unseal(*resp);
    const auto p1 = buf_.cpuLink().unseal(*re1);
    const auto p2 = buf_.cpuLink().unseal(*re2);
    ASSERT_TRUE(p0.has_value());
    ASSERT_TRUE(p1.has_value());
    ASSERT_TRUE(p2.has_value());
    EXPECT_EQ(*p0, *p1);
    EXPECT_EQ(*p0, *p2);
}

TEST_F(SecureBufferFetchTest, RefetchAfterLostOriginalStillUnseals)
{
    // The double-FETCH scenario the recovery layer actually uses: the
    // first FETCH_RESULT never reaches the CPU (dropped), so only the
    // re-FETCH is unsealed -- the skipped seq must not block it.
    const auto resp = buf_.handleAccess(sealAccess(5));
    ASSERT_TRUE(resp.has_value());
    const auto re = buf_.refetchResult();
    ASSERT_TRUE(re.has_value());
    const auto plain = buf_.cpuLink().unseal(*re);
    ASSERT_TRUE(plain.has_value());
    const auto parsed = unpackResponse(*plain);
    ASSERT_TRUE(parsed.has_value());
}

} // namespace
} // namespace secdimm::sdimm
