#include <gtest/gtest.h>

#include "sdimm/link_session.hh"

namespace secdimm::sdimm
{
namespace
{

std::vector<std::uint8_t>
payload(std::size_t n, std::uint8_t seed)
{
    std::vector<std::uint8_t> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<std::uint8_t>(seed + i);
    return v;
}

class LinkSessionTest : public ::testing::Test
{
  protected:
    LinkSessionTest() : rng_(2024), ends_(establishLink(rng_)) {}

    Rng rng_;
    std::pair<LinkEndpoint, LinkEndpoint> ends_;
    LinkEndpoint &cpu() { return ends_.first; }
    LinkEndpoint &dimm() { return ends_.second; }
};

TEST_F(LinkSessionTest, SealUnsealRoundTripBothDirections)
{
    const auto msg = payload(89, 3);
    const SealedMessage up = cpu().seal(0x02, msg);
    const auto up_plain = dimm().unseal(up);
    ASSERT_TRUE(up_plain.has_value());
    EXPECT_EQ(*up_plain, msg);

    const SealedMessage down = dimm().seal(0x10, msg);
    const auto down_plain = cpu().unseal(down);
    ASSERT_TRUE(down_plain.has_value());
    EXPECT_EQ(*down_plain, msg);
}

TEST_F(LinkSessionTest, CiphertextHidesPlaintext)
{
    const auto msg = payload(64, 5);
    const SealedMessage sealed = cpu().seal(0x02, msg);
    EXPECT_NE(sealed.body, msg);
}

TEST_F(LinkSessionTest, SamePlaintextDifferentCiphertext)
{
    const auto msg = payload(64, 5);
    const SealedMessage a = cpu().seal(0x02, msg);
    const SealedMessage b = cpu().seal(0x02, msg);
    EXPECT_NE(a.body, b.body) << "counter-mode pad reuse";
}

TEST_F(LinkSessionTest, BitFlipRejected)
{
    SealedMessage sealed = cpu().seal(0x02, payload(64, 1));
    sealed.body[10] ^= 0x80;
    EXPECT_FALSE(dimm().unseal(sealed).has_value());
    EXPECT_EQ(dimm().authFailures(), 1u);
}

TEST_F(LinkSessionTest, HeaderTamperRejected)
{
    SealedMessage sealed = cpu().seal(0x02, payload(64, 1));
    sealed.opcode = 0x03;
    EXPECT_FALSE(dimm().unseal(sealed).has_value());
}

TEST_F(LinkSessionTest, ReplayRejected)
{
    const SealedMessage sealed = cpu().seal(0x02, payload(64, 1));
    ASSERT_TRUE(dimm().unseal(sealed).has_value());
    EXPECT_FALSE(dimm().unseal(sealed).has_value()) << "replay accepted";
}

TEST_F(LinkSessionTest, DistinctSessionsCannotCrossTalk)
{
    Rng other_rng(9999);
    auto other = establishLink(other_rng);
    const SealedMessage sealed = cpu().seal(0x02, payload(64, 1));
    EXPECT_FALSE(other.second.unseal(sealed).has_value());
}

TEST_F(LinkSessionTest, SequenceNumbersAdvance)
{
    const SealedMessage a = cpu().seal(0x02, payload(16, 1));
    const SealedMessage b = cpu().seal(0x02, payload(16, 1));
    EXPECT_EQ(b.seq, a.seq + 1);
    EXPECT_EQ(cpu().sendCount(), 2u);
}

} // namespace
} // namespace secdimm::sdimm
