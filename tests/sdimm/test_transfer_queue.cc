#include <gtest/gtest.h>

#include "analytic/mm1k.hh"
#include "sdimm/independent_oram.hh"
#include "sdimm/transfer_queue.hh"
#include "verify/invariant_audit.hh"

namespace secdimm::sdimm
{
namespace
{

oram::StashEntry
entry(Addr a)
{
    return oram::StashEntry{a, a % 16, BlockData{}};
}

TEST(TransferQueue, FifoOrder)
{
    TransferQueue q(8, 0.5, 1);
    q.push(entry(1));
    q.push(entry(2));
    EXPECT_EQ(q.pop()->addr, 1u);
    EXPECT_EQ(q.pop()->addr, 2u);
    EXPECT_FALSE(q.pop().has_value());
}

TEST(TransferQueue, OverflowCounted)
{
    TransferQueue q(2, 0.5, 1);
    EXPECT_TRUE(q.push(entry(1)));
    EXPECT_TRUE(q.push(entry(2)));
    EXPECT_FALSE(q.push(entry(3)));
    EXPECT_EQ(q.stats().overflows, 1u);
    EXPECT_EQ(q.stats().arrivals, 3u);
}

TEST(TransferQueue, DrainFrequencyMatchesProbability)
{
    TransferQueue q(1024, 0.3, 7);
    int drains = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        q.push(entry(static_cast<Addr>(i)));
        drains += q.rollDrain();
        // Keep the queue non-empty but bounded.
        if (q.size() > 512)
            q.pop();
    }
    EXPECT_NEAR(static_cast<double>(drains) / n, 0.3, 0.02);
}

TEST(TransferQueue, NoDrainWhenEmpty)
{
    TransferQueue q(8, 1.0, 1);
    EXPECT_FALSE(q.rollDrain());
}

TEST(TransferQueue, MaxOccupancyTracked)
{
    TransferQueue q(8, 0.0, 1);
    q.push(entry(1));
    q.push(entry(2));
    q.push(entry(3));
    q.pop();
    q.pop();
    q.pop();
    EXPECT_EQ(q.stats().maxOccupancy, 3u);
    EXPECT_EQ(q.stats().services, 3u);
}

/**
 * Section IV-C end-to-end: simulate the arrival/service process the
 * paper models and compare the observed overflow behaviour against
 * the M/M/1/K prediction -- with drains (p=0.25) a small queue almost
 * never overflows; without them it saturates.
 */
TEST(TransferQueue, DrainingPreventsSaturation)
{
    Rng rng(33);
    auto run = [&](double p, std::size_t cap) {
        TransferQueue q(cap, p, 55);
        std::uint64_t overflowed = 0;
        for (int step = 0; step < 200000; ++step) {
            // Arrival with prob 1/4 (dual-SDIMM model).
            if (rng.nextBool(0.25)) {
                if (!q.push(entry(static_cast<Addr>(step))))
                    ++overflowed;
                else if (q.rollDrain())
                    q.pop(); // Extra accessORAM services one entry.
            }
            // Baseline service with prob 1/4.
            if (rng.nextBool(0.25))
                q.pop();
        }
        return overflowed;
    };
    EXPECT_EQ(run(0.25, 64), 0u);
    EXPECT_GT(run(0.0, 16), 0u);
}

TEST(TransferQueue, ObservedOccupancyMatchesMm1k)
{
    // The Section IV-C model: arrivals at rate 1/4, baseline service
    // at rate 1/4, plus an extra accessORAM drain at rate p per step;
    // with p = 0.25, rho = 0.25/(0.25+0.25) = 0.5 and the mean
    // occupancy of M/M/1/16 is ~1.
    Rng rng(44);
    TransferQueue q(16, 0.25, 66);
    double occupancy_sum = 0;
    const int steps = 100000;
    for (int step = 0; step < steps; ++step) {
        if (rng.nextBool(0.25))
            q.push(entry(static_cast<Addr>(step)));
        if (rng.nextBool(0.25))
            q.pop(); // Baseline service.
        if (q.rollDrain())
            q.pop(); // Extra drain accessORAM.
        occupancy_sum += static_cast<double>(q.size());
    }
    const double mean = occupancy_sum / steps;
    const double predicted = analytic::mm1kMeanOccupancy(
        analytic::mm1kUtilization(0.25), 16);
    EXPECT_NEAR(mean, predicted, 0.5);
}

TEST(TransferQueue, ForcedDrainCountedAndAuditClean)
{
    TransferQueue q(2, 0.25, 1);
    EXPECT_TRUE(q.push(entry(1)));
    EXPECT_TRUE(q.push(entry(2)));
    // The owner finds the queue full, runs one extra accessORAM to
    // service an entry, and only then enqueues the arrival.
    ASSERT_TRUE(q.full());
    q.recordForcedDrain();
    ASSERT_TRUE(q.pop().has_value());
    EXPECT_TRUE(q.push(entry(3)));

    EXPECT_EQ(q.stats().forcedDrains, 1u);
    EXPECT_EQ(q.stats().overflows, 0u);
    const verify::AuditReport r = verify::auditTransferQueue(q);
    EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(TransferQueue, ForcedDrainExportedAsMetric)
{
    TransferQueue q(1, 0.25, 1);
    q.push(entry(1));
    q.recordForcedDrain();
    util::MetricsRegistry m;
    q.exportMetrics(m, "xfer");
    EXPECT_EQ(m.counter("xfer.forced_drains"), 1u);
    EXPECT_EQ(m.counter("xfer.overflows"), 0u);
}

TEST(TransferQueue, HighWaterGaugeMirrorsMaxOccupancy)
{
    TransferQueue q(8, 0.0, 1);
    for (int i = 0; i < 5; ++i)
        q.push(entry(static_cast<Addr>(i)));
    q.pop();
    q.pop(); // Watermark survives the occupancy dropping back.
    util::MetricsRegistry m;
    q.exportMetrics(m, "xfer");
    EXPECT_EQ(m.counter("xfer.max_occupancy"), 5u);
    EXPECT_DOUBLE_EQ(m.gauge("xfer.occupancy_max"), 5.0);
    EXPECT_TRUE(verify::auditTransferQueue(q).ok());
}

TEST(TransferQueue, AuditCatchesImpossibleHighWaterMark)
{
    // An empty queue that claims arrivals but a zero watermark (or
    // vice versa) is inconsistent accounting; the PR 4 assertions in
    // auditTransferQueue must flag it.  A fresh queue is consistent.
    TransferQueue fresh(4, 0.25, 1);
    EXPECT_TRUE(verify::auditTransferQueue(fresh).ok());
    TransferQueue q(4, 0.25, 1);
    q.push(entry(1));
    EXPECT_TRUE(verify::auditTransferQueue(q).ok());
    // Overflowed-only arrivals must NOT move the watermark: fill the
    // queue, overflow once, and the watermark stays at capacity.
    TransferQueue full(2, 0.25, 1);
    full.push(entry(1));
    full.push(entry(2));
    full.push(entry(3)); // Overflow.
    EXPECT_EQ(full.stats().overflows, 1u);
    EXPECT_EQ(full.stats().maxOccupancy, 2u);
    EXPECT_TRUE(verify::auditTransferQueue(full).ok());
}

TEST(TransferQueue, AuditFlagsForcedDrainWithoutFullQueue)
{
    // A forced drain claims the queue was full; if occupancy never
    // reached capacity the accounting is lying and the audit says so.
    TransferQueue q(4, 0.25, 1);
    q.push(entry(1));
    q.recordForcedDrain();
    const verify::AuditReport r = verify::auditTransferQueue(q);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.summary().find("forced drain"), std::string::npos)
        << r.summary();
}

TEST(TransferQueue, AuditBoundsForcedDrainsByQueueingModel)
{
    // Full-queue arrivals (overflows + forced drains) far beyond the
    // M/M/1/K blocking prediction must trip the Section IV-C bound.
    TransferQueue q(8, 0.25, 1);
    for (int i = 0; i < 8; ++i)
        q.push(entry(static_cast<Addr>(i)));
    for (int i = 0; i < 400; ++i) {
        q.recordForcedDrain(); // Full-queue arrival...
        q.pop();               // ...drained...
        q.push(entry(100));    // ...and enqueued.
    }
    const verify::AuditReport r = verify::auditTransferQueue(q);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.summary().find("queueing-model bound"),
              std::string::npos)
        << r.summary();
}

/**
 * End-to-end (the satellite fix): a deliberately tiny transfer queue
 * with the drain mechanism DISABLED (p = 0) used to overflow-drop
 * appended blocks; now every full-queue APPEND triggers the paper's
 * extra accessORAM instead.  No block is ever dropped, the M/M/1/K
 * audit stays clean, and the campaign's data still round-trips.
 */
TEST(TransferQueue, SecureBufferForcesDrainInsteadOfDropping)
{
    IndependentOram::Params ip;
    ip.perSdimm.levels = 5;
    ip.perSdimm.stashCapacity = 200;
    ip.numSdimms = 2;
    ip.transferCapacity = 1; // One slot: every collision is a drain.
    ip.drainProb = 0.0;      // Probabilistic drains off.
    IndependentOram o(ip, 77);

    Rng rng(5);
    for (int i = 0; i < 300; ++i) {
        const Addr a = rng.nextBelow(64);
        BlockData d{};
        d[0] = static_cast<std::uint8_t>(a);
        if (rng.nextBool(0.5)) {
            o.access(a, oram::OramOp::Write, &d);
        } else {
            o.access(a, oram::OramOp::Read, nullptr);
        }
    }

    std::uint64_t forced = 0;
    for (unsigned i = 0; i < o.numSdimms(); ++i) {
        const TransferQueueStats &s =
            o.buffer(i).transferQueue().stats();
        EXPECT_EQ(s.overflows, 0u) << "sdimm " << i << " dropped a block";
        forced += s.forcedDrains;
    }
    EXPECT_GT(forced, 0u) << "campaign never filled the 1-slot queue";
    const verify::AuditReport r = verify::auditIndependentOram(o);
    EXPECT_TRUE(r.ok()) << r.summary();
}

} // namespace
} // namespace secdimm::sdimm
