#include <gtest/gtest.h>

#include "analytic/mm1k.hh"
#include "sdimm/transfer_queue.hh"

namespace secdimm::sdimm
{
namespace
{

oram::StashEntry
entry(Addr a)
{
    return oram::StashEntry{a, a % 16, BlockData{}};
}

TEST(TransferQueue, FifoOrder)
{
    TransferQueue q(8, 0.5, 1);
    q.push(entry(1));
    q.push(entry(2));
    EXPECT_EQ(q.pop()->addr, 1u);
    EXPECT_EQ(q.pop()->addr, 2u);
    EXPECT_FALSE(q.pop().has_value());
}

TEST(TransferQueue, OverflowCounted)
{
    TransferQueue q(2, 0.5, 1);
    EXPECT_TRUE(q.push(entry(1)));
    EXPECT_TRUE(q.push(entry(2)));
    EXPECT_FALSE(q.push(entry(3)));
    EXPECT_EQ(q.stats().overflows, 1u);
    EXPECT_EQ(q.stats().arrivals, 3u);
}

TEST(TransferQueue, DrainFrequencyMatchesProbability)
{
    TransferQueue q(1024, 0.3, 7);
    int drains = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        q.push(entry(static_cast<Addr>(i)));
        drains += q.rollDrain();
        // Keep the queue non-empty but bounded.
        if (q.size() > 512)
            q.pop();
    }
    EXPECT_NEAR(static_cast<double>(drains) / n, 0.3, 0.02);
}

TEST(TransferQueue, NoDrainWhenEmpty)
{
    TransferQueue q(8, 1.0, 1);
    EXPECT_FALSE(q.rollDrain());
}

TEST(TransferQueue, MaxOccupancyTracked)
{
    TransferQueue q(8, 0.0, 1);
    q.push(entry(1));
    q.push(entry(2));
    q.push(entry(3));
    q.pop();
    q.pop();
    q.pop();
    EXPECT_EQ(q.stats().maxOccupancy, 3u);
    EXPECT_EQ(q.stats().services, 3u);
}

/**
 * Section IV-C end-to-end: simulate the arrival/service process the
 * paper models and compare the observed overflow behaviour against
 * the M/M/1/K prediction -- with drains (p=0.25) a small queue almost
 * never overflows; without them it saturates.
 */
TEST(TransferQueue, DrainingPreventsSaturation)
{
    Rng rng(33);
    auto run = [&](double p, std::size_t cap) {
        TransferQueue q(cap, p, 55);
        std::uint64_t overflowed = 0;
        for (int step = 0; step < 200000; ++step) {
            // Arrival with prob 1/4 (dual-SDIMM model).
            if (rng.nextBool(0.25)) {
                if (!q.push(entry(static_cast<Addr>(step))))
                    ++overflowed;
                else if (q.rollDrain())
                    q.pop(); // Extra accessORAM services one entry.
            }
            // Baseline service with prob 1/4.
            if (rng.nextBool(0.25))
                q.pop();
        }
        return overflowed;
    };
    EXPECT_EQ(run(0.25, 64), 0u);
    EXPECT_GT(run(0.0, 16), 0u);
}

TEST(TransferQueue, ObservedOccupancyMatchesMm1k)
{
    // The Section IV-C model: arrivals at rate 1/4, baseline service
    // at rate 1/4, plus an extra accessORAM drain at rate p per step;
    // with p = 0.25, rho = 0.25/(0.25+0.25) = 0.5 and the mean
    // occupancy of M/M/1/16 is ~1.
    Rng rng(44);
    TransferQueue q(16, 0.25, 66);
    double occupancy_sum = 0;
    const int steps = 100000;
    for (int step = 0; step < steps; ++step) {
        if (rng.nextBool(0.25))
            q.push(entry(static_cast<Addr>(step)));
        if (rng.nextBool(0.25))
            q.pop(); // Baseline service.
        if (q.rollDrain())
            q.pop(); // Extra drain accessORAM.
        occupancy_sum += static_cast<double>(q.size());
    }
    const double mean = occupancy_sum / steps;
    const double predicted = analytic::mm1kMeanOccupancy(
        analytic::mm1kUtilization(0.25), 16);
    EXPECT_NEAR(mean, predicted, 0.5);
}

} // namespace
} // namespace secdimm::sdimm
