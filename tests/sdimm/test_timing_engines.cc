/**
 * @file
 * Unit tests of the timing engines underneath the SDIMM backends:
 * the byte-granular LinkBus, the per-SDIMM PathExecutor, and the
 * SplitGroupEngine.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sdimm/link_bus.hh"
#include "sdimm/path_executor.hh"
#include "sdimm/split_engine.hh"

namespace secdimm::sdimm
{
namespace
{

dram::Geometry
smallGeom()
{
    dram::Geometry g;
    g.channels = 1;
    g.ranksPerChannel = 4;
    g.banksPerRank = 8;
    g.rowsPerBank = 4096;
    return g;
}

oram::OramParams
smallTree(unsigned levels = 10, unsigned cached = 3)
{
    oram::OramParams p;
    p.levels = levels;
    p.cachedLevels = cached;
    return p;
}

// ------------------------------- LinkBus ------------------------- //

TEST(LinkBus, SerializesTransfers)
{
    LinkBus bus(dram::ddr3_1600());
    const Tick t1 = bus.transferLines(0, 1);
    EXPECT_EQ(t1, 4u); // One 64B burst = tBURST.
    const Tick t2 = bus.transferLines(0, 1); // Arrives "late".
    EXPECT_EQ(t2, 8u);
    const Tick t3 = bus.transferLines(100, 2);
    EXPECT_EQ(t3, 108u);
}

TEST(LinkBus, ByteGranularityWithBurstChopFloor)
{
    LinkBus bus(dram::ddr3_1600());
    // 16 bytes/cycle, BC4 floor of 2 cycles.
    EXPECT_EQ(bus.transferBytes(0, 8), 2u);
    EXPECT_EQ(bus.transferBytes(0, 40), 2u + 3u);
    EXPECT_EQ(bus.transferBytes(0, 64), 5u + 4u);
}

TEST(LinkBus, ShortCommandsAndProbesCounted)
{
    LinkBus bus(dram::ddr3_1600());
    bus.shortCommand(0);
    bus.shortCommand(0, /*is_probe=*/true);
    bus.shortCommand(0, true);
    EXPECT_EQ(bus.stats().shortCmds, 3u);
    EXPECT_EQ(bus.stats().probes, 2u);
}

TEST(LinkBus, StatsTrackBytesAndLineEquivalents)
{
    LinkBus bus(dram::ddr3_1600());
    bus.transferBytes(0, 96);
    bus.transferBytes(0, 32);
    EXPECT_EQ(bus.stats().dataBytes, 128u);
    EXPECT_DOUBLE_EQ(bus.stats().lineEquivalents(), 2.0);
    EXPECT_EQ(bus.stats().transfers, 2u);
}

// ---------------------------- PathExecutor ----------------------- //

struct ExecHarness
{
    PathExecutor exec;
    std::vector<std::pair<std::uint64_t, Tick>> done;

    explicit ExecHarness(bool low_power,
                         oram::OramParams tree = smallTree())
        : exec("x", tree, dram::ddr3_1600(), smallGeom(), low_power, 7)
    {
        exec.setOpDoneCallback([this](std::uint64_t tag, Tick avail) {
            done.emplace_back(tag, avail);
        });
    }

    void
    drain()
    {
        while (!exec.idle()) {
            const Tick next = exec.nextEventAt();
            ASSERT_NE(next, tickNever);
            exec.advanceTo(next);
        }
    }
};

TEST(PathExecutor, OpsCompleteInSubmissionOrder)
{
    ExecHarness h(false);
    for (std::uint64_t tag = 1; tag <= 5; ++tag)
        h.exec.submitOp(tag, 0);
    h.drain();
    ASSERT_EQ(h.done.size(), 5u);
    for (std::uint64_t i = 0; i < 5; ++i) {
        EXPECT_EQ(h.done[i].first, i + 1);
        if (i > 0)
            EXPECT_GT(h.done[i].second, h.done[i - 1].second);
    }
    EXPECT_EQ(h.exec.opsExecuted(), 5u);
}

TEST(PathExecutor, OpMovesWholePathBothWays)
{
    ExecHarness h(false);
    h.exec.submitOp(1, 0);
    h.drain();
    const auto &s = h.exec.channel().stats();
    const oram::OramParams p = smallTree();
    const std::uint64_t lines_per_path =
        p.linesPerBucket() * p.dramLevels();
    EXPECT_EQ(s.reads, lines_per_path);
    EXPECT_EQ(s.writes, lines_per_path);
}

TEST(PathExecutor, RespectsReadyAt)
{
    ExecHarness h(false);
    h.exec.submitOp(1, 5000);
    h.drain();
    ASSERT_EQ(h.done.size(), 1u);
    EXPECT_GT(h.done[0].second, 5000u);
}

TEST(PathExecutor, LowPowerOpTouchesExactlyOneRank)
{
    // Section III-E: a single accessORAM engages one rank, so its
    // whole read+write stream pays zero rank-to-rank switches.
    oram::OramParams tree = smallTree(10, 2);
    ExecHarness h(true, tree);
    h.exec.submitOp(1, 0);
    h.drain();
    EXPECT_EQ(h.exec.channel().stats().rankSwitches, 0u);
    EXPECT_EQ(h.exec.channel().stats().reads,
              h.exec.channel().stats().writes);
}

TEST(PathExecutor, LowPowerEventuallyPowersDownIdleRanks)
{
    ExecHarness h(true);
    h.exec.submitOp(1, 0);
    h.drain();
    // Idle long past the power-down threshold.
    const Tick end = h.exec.channel().curTick() + 3000;
    h.exec.advanceTo(end);
    h.exec.channel().finalizeStats(end);
    std::uint64_t pd = 0;
    for (const auto &r : h.exec.channel().rankStates())
        pd += r.cyclesPowerDown;
    EXPECT_GT(pd, 0u);
}

// --------------------------- SplitGroupEngine -------------------- //

struct GroupHarness
{
    dram::TimingParams timing = dram::ddr3_1600();
    LinkBus bus0{timing}, bus1{timing};
    SplitGroupEngine eng;
    std::vector<std::pair<std::uint64_t, Tick>> done;

    explicit GroupHarness(unsigned slices,
                          oram::OramParams tree = smallTree())
        : eng("g", tree, slices, busesFor(slices), timing, smallGeom(),
              false, 5)
    {
        eng.setOpDoneCallback([this](std::uint64_t tag, Tick result) {
            done.emplace_back(tag, result);
        });
    }

    std::vector<LinkBus *>
    busesFor(unsigned slices)
    {
        std::vector<LinkBus *> buses;
        for (unsigned i = 0; i < slices; ++i)
            buses.push_back(i % 2 ? &bus1 : &bus0);
        return buses;
    }

    void
    drain()
    {
        while (!eng.idle()) {
            const Tick next = eng.nextEventAt();
            ASSERT_NE(next, tickNever);
            eng.advanceTo(next);
        }
    }
};

TEST(SplitGroupEngine, SliceLineCountsMatchSplitWidth)
{
    GroupHarness h2(2);
    EXPECT_EQ(h2.eng.dataLinesPerBucket(), 2u); // Z=4 over 2 slices.
    EXPECT_EQ(h2.eng.linesPerBucketSlice(), 3u);
    GroupHarness h4(4);
    EXPECT_EQ(h4.eng.dataLinesPerBucket(), 1u);
    EXPECT_EQ(h4.eng.linesPerBucketSlice(), 2u);
}

TEST(SplitGroupEngine, OpsComplete)
{
    GroupHarness h(2);
    for (std::uint64_t tag = 1; tag <= 4; ++tag)
        h.eng.submitOp(tag, 0);
    h.drain();
    ASSERT_EQ(h.done.size(), 4u);
    EXPECT_EQ(h.eng.opsExecuted(), 4u);
}

TEST(SplitGroupEngine, EverySliceMovesItsShare)
{
    GroupHarness h(2);
    h.eng.submitOp(1, 0);
    h.drain();
    const oram::OramParams p = smallTree();
    const std::uint64_t per_slice =
        static_cast<std::uint64_t>(h.eng.linesPerBucketSlice()) *
        p.dramLevels();
    for (unsigned s = 0; s < 2; ++s) {
        EXPECT_EQ(h.eng.sliceChannel(s).stats().reads, per_slice);
        EXPECT_EQ(h.eng.sliceChannel(s).stats().writes, per_slice);
    }
}

TEST(SplitGroupEngine, MetadataRelaysOnTheBus)
{
    GroupHarness h(2);
    h.eng.submitOp(1, 0);
    h.drain();
    // Per slice: FETCH_DATA short + 1 FETCH_STASH short; metadata
    // shares + block piece + list as data transfers.
    EXPECT_GE(h.bus0.stats().shortCmds, 2u);
    EXPECT_GT(h.bus0.stats().dataBytes, 0u);
    EXPECT_GT(h.bus1.stats().dataBytes, 0u);
}

TEST(SplitGroupEngine, ResultPrecedesFullPathRead)
{
    // The early response is the point of Split: the result must not
    // wait for the write-back (and typically not for the data pass).
    GroupHarness h(2);
    h.eng.submitOp(1, 0);
    h.drain();
    ASSERT_EQ(h.done.size(), 1u);
    Tick read_end = 0;
    for (unsigned s = 0; s < 2; ++s)
        read_end = std::max(read_end,
                            h.eng.sliceChannel(s).curTick());
    EXPECT_LT(h.done[0].second, read_end);
}

TEST(SplitGroupEngine, WiderSplitShortensTheDataPhase)
{
    // The response latency is metadata-bound (similar for both
    // widths); what widening buys is a shorter data/write phase per
    // slice -- i.e., group throughput.
    GroupHarness h2(2), h4(4);
    h2.eng.submitOp(1, 0);
    h4.eng.submitOp(1, 0);
    h2.drain();
    h4.drain();
    Tick end2 = 0, end4 = 0;
    for (unsigned s = 0; s < 2; ++s)
        end2 = std::max(end2, h2.eng.sliceChannel(s).curTick());
    for (unsigned s = 0; s < 4; ++s)
        end4 = std::max(end4, h4.eng.sliceChannel(s).curTick());
    EXPECT_LT(end4, end2);
}

} // namespace
} // namespace secdimm::sdimm
