#include <gtest/gtest.h>

#include <map>

#include "oram/freecursive_backend.hh"
#include "sdimm/independent_backend.hh"
#include "sdimm/split_backend.hh"

namespace secdimm::sdimm
{
namespace
{

SdimmTimingConfig
smallConfig(unsigned sdimms, unsigned channels, unsigned levels = 12)
{
    SdimmTimingConfig cfg;
    cfg.perSdimm.levels = levels;
    cfg.perSdimm.cachedLevels = 4;
    cfg.numSdimms = sdimms;
    cfg.cpuChannels = channels;
    cfg.sdimmGeom.rowsPerBank = 4096;
    return cfg;
}

std::map<std::uint64_t, Tick>
runAccesses(MemoryBackend &backend, unsigned n, std::uint64_t stride,
            Tick gap = 0)
{
    std::map<std::uint64_t, Tick> done;
    backend.setCompletionCallback(
        [&](std::uint64_t id, Tick t) { done[id] = t; });
    Tick now = 0;
    for (unsigned i = 0; i < n; ++i) {
        while (!backend.canAccept()) {
            const Tick next = backend.nextEventAt();
            backend.advanceTo(next);
            now = std::max(now, next);
        }
        backend.access(i + 1, (i * stride) % (1ULL << 24), i % 2 == 0,
                       now);
        now += gap;
    }
    while (!backend.idle()) {
        const Tick next = backend.nextEventAt();
        if (next == tickNever)
            break;
        backend.advanceTo(next);
    }
    return done;
}

TEST(PathExecutorTiming, IndependentCompletesAllAccesses)
{
    IndependentBackend backend(smallConfig(2, 1), 1);
    const auto done = runAccesses(backend, 20, 64 * 1024);
    EXPECT_EQ(done.size(), 20u);
    EXPECT_GT(backend.executor(0).opsExecuted() +
                  backend.executor(1).opsExecuted(),
              20u);
}

TEST(PathExecutorTiming, IndependentOffDimmTrafficIsTiny)
{
    // Section IV-B: INDEP-2 moves <10% of the baseline's channel
    // lines (the paper reports 4.2% with ORAM caching).
    SdimmTimingConfig cfg = smallConfig(2, 1);
    IndependentBackend ind(cfg, 1);
    runAccesses(ind, 20, 64 * 1024);

    oram::OramParams base_tree = cfg.perSdimm;
    base_tree.levels += 1; // Global tree = SDIMM tree + 1 level.
    dram::Geometry cpu_geom;
    cpu_geom.channels = 1;
    cpu_geom.rowsPerBank = 4096;
    oram::FreecursiveBackend fc(base_tree, oram::RecursionParams{},
                                dram::ddr3_1600(), cpu_geom, 1);
    runAccesses(fc, 20, 64 * 1024);

    EXPECT_LT(static_cast<double>(ind.offDimmLines()),
              0.15 * static_cast<double>(fc.traffic().channelLines));
}

TEST(PathExecutorTiming, IndependentParallelismHelpsUnderLoad)
{
    // Back-to-back independent requests: 4 SDIMMs should beat 2.
    IndependentBackend two(smallConfig(2, 1), 1);
    IndependentBackend four(smallConfig(4, 1), 1);
    const auto d2 = runAccesses(two, 30, 64 * 1024);
    const auto d4 = runAccesses(four, 30, 64 * 1024);
    EXPECT_LT(d4.rbegin()->second, d2.rbegin()->second);
}

TEST(PathExecutorTiming, ProbesAreCounted)
{
    IndependentBackend backend(smallConfig(2, 1), 1);
    runAccesses(backend, 10, 64 * 1024);
    std::uint64_t probes = 0;
    for (unsigned b = 0; b < backend.busCount(); ++b)
        probes += backend.bus(b).stats().probes;
    EXPECT_GT(probes, 10u);
}

TEST(PathExecutorTiming, DrainOpsHappenAtRoughlyP)
{
    SdimmTimingConfig cfg = smallConfig(2, 1);
    cfg.drainProb = 0.5;
    IndependentBackend backend(cfg, 1);
    runAccesses(backend, 100, 64 * 1024);
    const std::uint64_t total_ops = backend.recursion().stats().orams;
    const double rate = static_cast<double>(backend.drainOps()) /
                        static_cast<double>(total_ops);
    EXPECT_NEAR(rate, 0.5, 0.15);
}

TEST(SplitTiming, CompletesAllAccesses)
{
    SplitBackend backend(smallConfig(2, 1), 1, 1);
    const auto done = runAccesses(backend, 20, 64 * 1024);
    EXPECT_EQ(done.size(), 20u);
}

TEST(SplitTiming, LatencyBeatsIndependentWhenSerial)
{
    // One dependent access at a time (no parallelism): Split's
    // collective bandwidth should deliver lower per-access latency.
    SdimmTimingConfig cfg = smallConfig(2, 1, 14);
    IndependentBackend ind(cfg, 1);
    SplitBackend split(cfg, 1, 1);

    auto serial_latency = [](MemoryBackend &b) {
        Tick now = 0;
        double total = 0;
        std::map<std::uint64_t, Tick> done;
        b.setCompletionCallback(
            [&](std::uint64_t id, Tick t) { done[id] = t; });
        for (unsigned i = 0; i < 10; ++i) {
            done.clear();
            b.access(1, i * 1024 * 1024, false, now);
            while (done.empty())
                b.advanceTo(b.nextEventAt());
            total += static_cast<double>(done[1] - now);
            now = done[1];
        }
        while (!b.idle())
            b.advanceTo(b.nextEventAt());
        return total / 10;
    };
    const double lat_ind = serial_latency(ind);
    const double lat_split = serial_latency(split);
    EXPECT_LT(lat_split, lat_ind);
}

TEST(SplitTiming, IndepSplitCompletesAllAccesses)
{
    // 4 SDIMMs, 2 groups of 2-way split (Figure 7e).
    SdimmTimingConfig cfg = smallConfig(4, 2);
    SplitBackend backend(cfg, /*groups=*/2, 1);
    const auto done = runAccesses(backend, 20, 64 * 1024);
    EXPECT_EQ(done.size(), 20u);
    EXPECT_GT(backend.group(0).opsExecuted(), 0u);
    EXPECT_GT(backend.group(1).opsExecuted(), 0u);
}

TEST(SplitTiming, MetadataCrossesChannelDataStaysLocal)
{
    SplitBackend backend(smallConfig(2, 1), 1, 1);
    runAccesses(backend, 10, 64 * 1024);
    std::uint64_t internal = 0;
    for (unsigned s = 0; s < backend.group(0).sliceCount(); ++s) {
        const auto &st = backend.group(0).sliceChannel(s).stats();
        internal += st.reads + st.writes;
    }
    EXPECT_GT(internal, backend.offDimmLines());
}

TEST(SplitTiming, LowPowerModeAccumulatesPowerDownResidency)
{
    SdimmTimingConfig cfg = smallConfig(2, 1);
    cfg.lowPower = true;
    IndependentBackend backend(cfg, 1);
    // Spread accesses out so ranks idle between ops.
    runAccesses(backend, 10, 64 * 1024, /*gap=*/4000);
    std::uint64_t pd_cycles = 0;
    for (unsigned i = 0; i < 2; ++i) {
        auto &ch = backend.executor(i).channel();
        ch.finalizeStats(ch.curTick());
        for (const auto &r : ch.rankStates())
            pd_cycles += r.cyclesPowerDown;
    }
    EXPECT_GT(pd_cycles, 0u);
}

TEST(SplitTiming, LowPowerCostsLittlePerformance)
{
    // The paper reports <= 4% slowdown from the low-power layout; our
    // model should show the same order (allow 10%).
    SdimmTimingConfig on = smallConfig(2, 1);
    on.lowPower = true;
    SdimmTimingConfig off = smallConfig(2, 1);
    off.lowPower = false;
    IndependentBackend b_on(on, 1);
    IndependentBackend b_off(off, 1);
    const auto d_on = runAccesses(b_on, 40, 64 * 1024);
    const auto d_off = runAccesses(b_off, 40, 64 * 1024);
    const double t_on = static_cast<double>(d_on.rbegin()->second);
    const double t_off = static_cast<double>(d_off.rbegin()->second);
    EXPECT_LT(t_on, 1.10 * t_off);
}

} // namespace
} // namespace secdimm::sdimm
