/**
 * @file
 * Property sweeps over the distributed protocols: correctness,
 * integrity, and obliviousness invariants across SDIMM counts and
 * tree shapes for both Independent and Split.
 */

#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "sdimm/independent_oram.hh"
#include "sdimm/split_oram.hh"

namespace secdimm::sdimm
{
namespace
{

BlockData
blockOf(std::uint64_t v)
{
    BlockData d{};
    for (int i = 0; i < 8; ++i)
        d[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(v >> (8 * i));
    return d;
}

// ---------------------------------------------------------------- //

using IndepParam = std::tuple<unsigned /*sdimms*/, double /*drainP*/>;

class IndependentSweep : public ::testing::TestWithParam<IndepParam>
{
  protected:
    IndependentOram
    make(std::uint64_t seed) const
    {
        IndependentOram::Params p;
        p.perSdimm.levels = 6;
        p.numSdimms = std::get<0>(GetParam());
        p.drainProb = std::get<1>(GetParam());
        return IndependentOram(p, seed);
    }
};

INSTANTIATE_TEST_SUITE_P(
    Sweep, IndependentSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 8u),
                       ::testing::Values(0.1, 0.5)),
    [](const ::testing::TestParamInfo<IndepParam> &info) {
        return "S" + std::to_string(std::get<0>(info.param)) + "_p" +
               std::to_string(
                   static_cast<int>(std::get<1>(info.param) * 100));
    });

TEST_P(IndependentSweep, ChurnCorrectness)
{
    IndependentOram oram = make(61);
    const std::uint64_t capacity = oram.capacityBlocks();
    std::map<Addr, std::uint64_t> expected;
    Rng rng(3);
    for (int i = 0; i < 300; ++i) {
        const Addr a = rng.nextBelow(capacity);
        if (rng.nextBool(0.5)) {
            const std::uint64_t v = rng.next();
            const BlockData d = blockOf(v);
            oram.access(a, oram::OramOp::Write, &d);
            expected[a] = v;
        } else {
            const auto it = expected.find(a);
            const BlockData want =
                it == expected.end() ? BlockData{} : blockOf(it->second);
            ASSERT_EQ(oram.access(a, oram::OramOp::Read), want)
                << "addr " << a << " iter " << i;
        }
    }
    EXPECT_TRUE(oram.integrityOk());
}

TEST_P(IndependentSweep, AppendsAlwaysCoverEverySdimm)
{
    IndependentOram oram = make(67);
    const unsigned sdimms = std::get<0>(GetParam());
    const BlockData v = blockOf(1);
    oram.access(0, oram::OramOp::Write, &v);
    oram.clearBusTrace();
    const int n = 40;
    for (int i = 0; i < n; ++i)
        oram.access(static_cast<Addr>(i % 5), oram::OramOp::Read);
    std::vector<int> appends(sdimms, 0);
    for (const BusEvent &e : oram.busTrace()) {
        if (e.type == SdimmCommandType::Append)
            ++appends[e.sdimm];
    }
    for (unsigned s = 0; s < sdimms; ++s)
        EXPECT_EQ(appends[s], n) << "sdimm " << s;
}

TEST_P(IndependentSweep, NoTransferQueueOverflow)
{
    IndependentOram oram = make(71);
    const BlockData v = blockOf(2);
    for (int i = 0; i < 400; ++i)
        oram.access(static_cast<Addr>(i % 30), oram::OramOp::Write, &v);
    for (unsigned s = 0; s < std::get<0>(GetParam()); ++s) {
        EXPECT_EQ(oram.buffer(s).transferQueue().stats().overflows, 0u)
            << "sdimm " << s;
    }
}

// ---------------------------------------------------------------- //

using SplitParam = std::tuple<unsigned /*slices*/, unsigned /*levels*/>;

class SplitSweep : public ::testing::TestWithParam<SplitParam>
{
  protected:
    SplitOram
    make(std::uint64_t seed) const
    {
        SplitOram::Params p;
        p.slices = std::get<0>(GetParam());
        p.tree.levels = std::get<1>(GetParam());
        return SplitOram(p, seed);
    }
};

INSTANTIATE_TEST_SUITE_P(
    Sweep, SplitSweep,
    ::testing::Combine(::testing::Values(2u, 4u, 8u),
                       ::testing::Values(5u, 7u)),
    [](const ::testing::TestParamInfo<SplitParam> &info) {
        return "S" + std::to_string(std::get<0>(info.param)) + "_L" +
               std::to_string(std::get<1>(info.param));
    });

TEST_P(SplitSweep, ChurnCorrectness)
{
    SplitOram oram = make(73);
    const std::uint64_t capacity = oram.capacityBlocks();
    std::map<Addr, std::uint64_t> expected;
    Rng rng(9);
    for (int i = 0; i < 250; ++i) {
        const Addr a = rng.nextBelow(capacity);
        if (rng.nextBool(0.5)) {
            const std::uint64_t v = rng.next();
            const BlockData d = blockOf(v);
            oram.access(a, oram::OramOp::Write, &d);
            expected[a] = v;
        } else {
            const auto it = expected.find(a);
            const BlockData want =
                it == expected.end() ? BlockData{} : blockOf(it->second);
            ASSERT_EQ(oram.access(a, oram::OramOp::Read), want)
                << "addr " << a << " iter " << i;
        }
    }
    EXPECT_TRUE(oram.integrityOk());
}

TEST_P(SplitSweep, TamperInAnySliceDetected)
{
    SplitOram oram = make(79);
    const unsigned slices = std::get<0>(GetParam());
    const BlockData v = blockOf(5);
    oram.access(0, oram::OramOp::Write, &v);
    // Tamper with the LAST slice's root-bucket share: any slice's MAC
    // must protect its share.
    oram.tamperSlice(slices - 1, 0, 0, 0);
    oram.access(0, oram::OramOp::Read);
    EXPECT_FALSE(oram.integrityOk());
}

TEST_P(SplitSweep, ShareSizesPartitionBlock)
{
    const unsigned slices = std::get<0>(GetParam());
    std::vector<std::uint8_t> full(blockBytes);
    for (std::size_t i = 0; i < full.size(); ++i)
        full[i] = static_cast<std::uint8_t>(i);
    std::size_t total = 0;
    std::vector<std::uint8_t> rebuilt(blockBytes, 0);
    for (unsigned j = 0; j < slices; ++j) {
        const auto share = extractShare(full, j, slices);
        total += share.size();
        mergeShare(rebuilt, share, j, slices);
    }
    EXPECT_EQ(total, blockBytes);
    EXPECT_EQ(rebuilt, full);
}

TEST_P(SplitSweep, LocalTrafficDominatesChannel)
{
    SplitOram oram = make(83);
    const BlockData v = blockOf(7);
    for (int i = 0; i < 40; ++i)
        oram.access(static_cast<Addr>(i), oram::OramOp::Write, &v);
    EXPECT_GT(oram.stats().localBytes, oram.stats().channelBytes / 2);
}

} // namespace
} // namespace secdimm::sdimm
