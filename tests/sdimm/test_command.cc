#include <gtest/gtest.h>

#include <set>

#include "sdimm/sdimm_command.hh"

namespace secdimm::sdimm
{
namespace
{

TEST(SdimmCommand, TableIHasNineCommands)
{
    EXPECT_EQ(allCommands().size(), 9u);
}

TEST(SdimmCommand, ShortCommandsAreReads)
{
    // Table I: every short command uses the RD flavor.
    for (auto type : allCommands()) {
        const DdrEncoding enc = encodeCommand(type);
        if (!enc.needsDataBus)
            EXPECT_FALSE(enc.write) << commandName(type);
        else
            EXPECT_TRUE(enc.write) << commandName(type);
    }
}

TEST(SdimmCommand, ReservedRowZero)
{
    for (auto type : allCommands())
        EXPECT_EQ(encodeCommand(type).rasRow, 0u) << commandName(type);
}

TEST(SdimmCommand, ShortCasOffsetsMatchTableI)
{
    EXPECT_EQ(encodeCommand(SdimmCommandType::SendPkey).casCol, 0x00u);
    EXPECT_EQ(encodeCommand(SdimmCommandType::Probe).casCol, 0x08u);
    EXPECT_EQ(encodeCommand(SdimmCommandType::FetchResult).casCol,
              0x10u);
    EXPECT_EQ(encodeCommand(SdimmCommandType::FetchData).casCol, 0x18u);
    EXPECT_EQ(encodeCommand(SdimmCommandType::FetchStash).casCol,
              0x18u);
}

TEST(SdimmCommand, EncodeDecodeRoundTrip)
{
    for (auto type : allCommands()) {
        const DdrEncoding enc = encodeCommand(type);
        const auto decoded = decodeCommand(enc.write, enc.rasRow,
                                           enc.casCol, enc.opcode);
        ASSERT_TRUE(decoded.has_value()) << commandName(type);
        EXPECT_EQ(*decoded, type) << commandName(type);
    }
}

TEST(SdimmCommand, NormalAccessesAreNotCommands)
{
    // RAS to any non-reserved row is a plain memory access.
    EXPECT_FALSE(decodeCommand(false, 0x100, 0x0, 0).has_value());
    EXPECT_FALSE(decodeCommand(true, 0x7fff, 0x8, 2).has_value());
}

TEST(SdimmCommand, LongCommandsDistinguishedByOpcode)
{
    // RECEIVE_SECRET / ACCESS / APPEND / RECEIVE_LIST all share
    // WR RAS(0) CAS(0); the payload opcode disambiguates.
    std::set<std::uint8_t> opcodes;
    for (auto type :
         {SdimmCommandType::ReceiveSecret, SdimmCommandType::Access,
          SdimmCommandType::Append, SdimmCommandType::ReceiveList}) {
        const DdrEncoding enc = encodeCommand(type);
        EXPECT_TRUE(enc.write);
        EXPECT_EQ(enc.casCol, 0x0u);
        EXPECT_TRUE(opcodes.insert(enc.opcode).second)
            << "duplicate opcode for " << commandName(type);
    }
}

TEST(SdimmCommand, NamesAreUnique)
{
    std::set<std::string> names;
    for (auto type : allCommands())
        EXPECT_TRUE(names.insert(commandName(type)).second);
}

TEST(SdimmCommand, LongFlagConsistentWithHelper)
{
    for (auto type : allCommands()) {
        EXPECT_EQ(isLongCommand(type),
                  encodeCommand(type).needsDataBus);
    }
}

} // namespace
} // namespace secdimm::sdimm
