#include <gtest/gtest.h>

#include <map>

#include "fault/fault_injector.hh"
#include "sdimm/indep_split_oram.hh"

namespace secdimm::sdimm
{
namespace
{

IndepSplitOram::Params
smallParams(unsigned groups = 2, unsigned slices = 2,
            unsigned levels = 6)
{
    IndepSplitOram::Params p;
    p.perGroupTree.levels = levels;
    p.perGroupTree.stashCapacity = 200;
    p.groups = groups;
    p.slicesPerGroup = slices;
    return p;
}

BlockData
blockOf(std::uint64_t v)
{
    BlockData d{};
    for (int i = 0; i < 8; ++i)
        d[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(v >> (8 * i));
    return d;
}

TEST(IndepSplitOram, ReadYourWrites)
{
    IndepSplitOram oram(smallParams(), 1);
    const BlockData v = blockOf(0xabcdef0123456789ULL);
    oram.access(9, oram::OramOp::Write, &v);
    EXPECT_EQ(oram.access(9, oram::OramOp::Read), v);
    EXPECT_TRUE(oram.integrityOk());
}

TEST(IndepSplitOram, BlocksMigrateBetweenGroupsAndSurvive)
{
    IndepSplitOram oram(smallParams(), 3);
    const std::uint64_t capacity = oram.capacityBlocks();
    std::map<Addr, std::uint64_t> expected;
    Rng rng(5);
    for (int i = 0; i < 250; ++i) {
        const Addr a = rng.nextBelow(capacity);
        if (rng.nextBool(0.5)) {
            const std::uint64_t v = rng.next();
            const BlockData d = blockOf(v);
            oram.access(a, oram::OramOp::Write, &d);
            expected[a] = v;
        } else {
            const auto it = expected.find(a);
            const BlockData want =
                it == expected.end() ? BlockData{} : blockOf(it->second);
            ASSERT_EQ(oram.access(a, oram::OramOp::Read), want)
                << "addr " << a << " iter " << i;
        }
    }
    EXPECT_TRUE(oram.integrityOk());
}

TEST(IndepSplitOram, FourGroupsBySlices)
{
    IndepSplitOram oram(smallParams(4, 4, 5), 7);
    const BlockData v = blockOf(42);
    for (Addr a = 0; a < 40; ++a)
        oram.access(a, oram::OramOp::Write, &v);
    for (Addr a = 0; a < 40; ++a)
        EXPECT_EQ(oram.access(a, oram::OramOp::Read), v);
}

TEST(IndepSplitOram, AppendsCoverEveryGroupEveryAccess)
{
    IndepSplitOram oram(smallParams(), 9);
    const BlockData v = blockOf(1);
    oram.access(0, oram::OramOp::Write, &v);
    oram.clearBusTrace();
    const int n = 60;
    for (int i = 0; i < n; ++i)
        oram.access(0, oram::OramOp::Read);
    std::vector<int> appends(2, 0), accesses(2, 0);
    for (const GroupBusEvent &e : oram.busTrace()) {
        if (e.type == SdimmCommandType::Append)
            ++appends[e.group];
        else if (e.type == SdimmCommandType::Access)
            ++accesses[e.group];
    }
    EXPECT_EQ(appends[0], n);
    EXPECT_EQ(appends[1], n);
    EXPECT_EQ(accesses[0] + accesses[1], n);
    // Hammering one address spreads ACCESSes over groups uniformly.
    EXPECT_GT(accesses[0], n / 4);
    EXPECT_GT(accesses[1], n / 4);
}

TEST(IndepSplitOram, GroupLeafTracesStayUniform)
{
    IndepSplitOram oram(smallParams(2, 2, 7), 11);
    const BlockData v = blockOf(1);
    oram.access(0, oram::OramOp::Write, &v);
    for (int i = 0; i < 300; ++i)
        oram.access(0, oram::OramOp::Read);
    for (unsigned g = 0; g < 2; ++g) {
        const auto &trace = oram.group(g).leafTrace();
        ASSERT_GT(trace.size(), 50u);
        std::vector<int> bins(8, 0);
        for (LeafId l : trace)
            ++bins[l % 8];
        const double expect =
            static_cast<double>(trace.size()) / bins.size();
        double chi2 = 0;
        for (int b : bins)
            chi2 += (b - expect) * (b - expect) / expect;
        EXPECT_LT(chi2, 30.0) << "group " << g;
    }
}

TEST(IndepSplitOram, GroupQuarantineEvacuatesAndServesFromSurvivor)
{
    // Kill group 0 at boot under Degraded: the whole 2-slice group is
    // lifted out of service as one unit, its live blocks land in
    // group 1, and reads keep coming back bit-exact.
    IndepSplitOram oram(smallParams(2, 2, 5), 17);
    fault::FaultInjector inj(fault::FaultPlan::stuckAt(0, 41));
    oram.setFaultInjector(&inj, fault::DegradationPolicy::Degraded);

    std::map<Addr, BlockData> mirror;
    for (std::uint64_t a = 0; a < 24; ++a) {
        const BlockData d = blockOf(a * 31 + 7);
        oram.access(a, oram::OramOp::Write, &d);
        mirror[a] = d;
    }
    EXPECT_TRUE(oram.isGroupQuarantined(0));
    EXPECT_FALSE(oram.isGroupQuarantined(1));
    EXPECT_EQ(oram.quarantinedGroupCount(), 1u);
    EXPECT_FALSE(oram.failedStop());
    for (const auto &kv : mirror)
        EXPECT_EQ(oram.access(kv.first, oram::OramOp::Read), kv.second);
    EXPECT_TRUE(oram.integrityOk());
    EXPECT_EQ(inj.detected(fault::FaultKind::WatchdogTimeout), 1u);
    EXPECT_EQ(inj.unrecoveredTotal(), 0u);
    // The quarantined group still sees its shaped APPEND slot in every
    // access (dummy traffic): its share of the trace must not vanish.
    std::uint64_t appends_to_dead = 0;
    for (const GroupBusEvent &e : oram.busTrace()) {
        if (e.type == SdimmCommandType::Append && e.group == 0)
            ++appends_to_dead;
    }
    EXPECT_GT(appends_to_dead, 0u);
}

TEST(IndepSplitOram, SliceTamperInEitherGroupDetected)
{
    IndepSplitOram oram(smallParams(), 13);
    const BlockData v = blockOf(1);
    oram.access(0, oram::OramOp::Write, &v);
    oram.group(1).tamperSlice(0, 0, 0, 0);
    for (int i = 0; i < 30; ++i)
        oram.access(static_cast<Addr>(i % 10), oram::OramOp::Read);
    EXPECT_FALSE(oram.integrityOk());
}

} // namespace
} // namespace secdimm::sdimm
