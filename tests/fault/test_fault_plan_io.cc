/**
 * @file
 * FaultPlan JSON round-trip tests (the chaos campaign schema of
 * docs/FAULTS.md) plus the watchdog backoff saturation guarantee:
 * the exponential probe schedule must clamp at the cap even when the
 * multiplication would wrap 64 bits.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>

#include "fault/fault_plan.hh"
#include "fault/fault_plan_io.hh"

namespace secdimm::fault
{
namespace
{

FaultPlan
richPlan()
{
    FaultPlan p = FaultPlan::uniform(0.015, 42);
    p.maxRetries = 7;
    p.stallCycles = 300;
    p.watchdogDeadlineCycles = 256;
    p.watchdogBackoffBase = 3;
    p.watchdogBackoffCapCycles = 1 << 20;
    p.watchdogMaxProbes = 5;
    p.retireEwmaAlpha = 0.5;
    p.retireTaxThresholdCycles = 900;
    p.retireHysteresisAccesses = 12;

    PermanentFault dead;
    dead.kind = PermanentFaultKind::HardDeath;
    dead.unit = 2;
    dead.atAccess = 100;
    p.permanentFaults.push_back(dead);

    PermanentFault limp;
    limp.kind = PermanentFaultKind::DegradedLatency;
    limp.unit = 1;
    limp.latencyCycles = 1500;
    p.permanentFaults.push_back(limp);

    CorrelatedFailure burst;
    burst.units = {1, 2, 3};
    burst.kind = PermanentFaultKind::HardDeath;
    burst.atAccess = 64;
    burst.cascadeGapAccesses = 4;
    p.correlatedFailures.push_back(burst);
    return p;
}

TEST(FaultPlanIo, RoundTripPreservesEveryField)
{
    const FaultPlan p = richPlan();
    const std::string json = faultPlanToJson(p);
    std::string err;
    const auto back = faultPlanFromJson(json, &err);
    ASSERT_TRUE(back.has_value()) << err;

    EXPECT_DOUBLE_EQ(back->dramBitFlipRate, p.dramBitFlipRate);
    EXPECT_DOUBLE_EQ(back->linkCorruptRate, p.linkCorruptRate);
    EXPECT_DOUBLE_EQ(back->linkDropRate, p.linkDropRate);
    EXPECT_DOUBLE_EQ(back->linkDelayRate, p.linkDelayRate);
    EXPECT_DOUBLE_EQ(back->executorStallRate, p.executorStallRate);
    EXPECT_DOUBLE_EQ(back->queuePerturbRate, p.queuePerturbRate);
    EXPECT_EQ(back->maxRetries, p.maxRetries);
    EXPECT_EQ(back->stallCycles, p.stallCycles);
    EXPECT_EQ(back->seed, p.seed);
    EXPECT_EQ(back->watchdogDeadlineCycles, p.watchdogDeadlineCycles);
    EXPECT_EQ(back->watchdogBackoffBase, p.watchdogBackoffBase);
    EXPECT_EQ(back->watchdogBackoffCapCycles,
              p.watchdogBackoffCapCycles);
    EXPECT_EQ(back->watchdogMaxProbes, p.watchdogMaxProbes);
    EXPECT_DOUBLE_EQ(back->retireEwmaAlpha, p.retireEwmaAlpha);
    EXPECT_EQ(back->retireTaxThresholdCycles,
              p.retireTaxThresholdCycles);
    EXPECT_EQ(back->retireHysteresisAccesses,
              p.retireHysteresisAccesses);

    ASSERT_EQ(back->permanentFaults.size(), 2u);
    EXPECT_EQ(back->permanentFaults[0].kind,
              PermanentFaultKind::HardDeath);
    EXPECT_EQ(back->permanentFaults[0].unit, 2u);
    EXPECT_EQ(back->permanentFaults[0].atAccess, 100u);
    EXPECT_EQ(back->permanentFaults[1].kind,
              PermanentFaultKind::DegradedLatency);
    EXPECT_EQ(back->permanentFaults[1].latencyCycles, 1500u);

    ASSERT_EQ(back->correlatedFailures.size(), 1u);
    EXPECT_EQ(back->correlatedFailures[0].units,
              (std::vector<unsigned>{1, 2, 3}));
    EXPECT_EQ(back->correlatedFailures[0].atAccess, 64u);
    EXPECT_EQ(back->correlatedFailures[0].cascadeGapAccesses, 4u);

    // Serializing the parsed plan again is a fixed point.
    EXPECT_EQ(faultPlanToJson(*back), json);
}

TEST(FaultPlanIo, EmptyPlanRoundTrips)
{
    std::string err;
    const auto back =
        faultPlanFromJson(faultPlanToJson(FaultPlan::none()), &err);
    ASSERT_TRUE(back.has_value()) << err;
    EXPECT_FALSE(back->enabled());
}

TEST(FaultPlanIo, RejectsUnknownKeys)
{
    std::string err;
    EXPECT_FALSE(
        faultPlanFromJson("{\"dram_bit_flip_rate\": 0.1, "
                          "\"not_a_knob\": 7}",
                          &err)
            .has_value());
    EXPECT_NE(err.find("not_a_knob"), std::string::npos);
}

TEST(FaultPlanIo, RejectsMalformedValues)
{
    // Negative counters, bad kinds, and empty correlated groups are
    // configuration errors, not campaigns.
    EXPECT_FALSE(faultPlanFromJson("{\"max_retries\": -1}").has_value());
    EXPECT_FALSE(faultPlanFromJson("{\"seed\": 1.5}").has_value());
    EXPECT_FALSE(
        faultPlanFromJson("{\"permanent_faults\": [{\"kind\": "
                          "\"eldritch\", \"unit\": 0}]}")
            .has_value());
    EXPECT_FALSE(
        faultPlanFromJson("{\"correlated_failures\": [{\"units\": [], "
                          "\"at_access\": 4}]}")
            .has_value());
    EXPECT_FALSE(faultPlanFromJson("not json at all").has_value());
}

TEST(FaultPlanIo, ParsedCorrelatedPlanIsEnabled)
{
    std::string err;
    const auto p = faultPlanFromJson(
        "{\"correlated_failures\": [{\"units\": [1, 2], "
        "\"at_access\": 10, \"cascade_gap_accesses\": 0}]}",
        &err);
    ASSERT_TRUE(p.has_value()) << err;
    EXPECT_TRUE(p->enabled());
    ASSERT_EQ(p->correlatedFailures.size(), 1u);
    EXPECT_EQ(p->correlatedFailures[0].kind,
              PermanentFaultKind::HardDeath);
}

/* ------------------------------------------------------------------ */
/* Byzantine schema                                                    */
/* ------------------------------------------------------------------ */

TEST(FaultPlanIo, ByzantinePlanRoundTripIsFixedPoint)
{
    FaultPlan p = FaultPlan::byzantineLiar(2, 0.25, 64, 11);
    p.byzantineFaults.push_back(
        {ByzantineFaultKind::LostWrite, 3, 0.5, 128});
    p.byzantineFaults.push_back(
        {ByzantineFaultKind::Equivocate, 1, 1.0, 0});
    p.mistrustEwmaAlpha = 0.5;
    p.mistrustHysteresisAccesses = 9;
    p.mistrustMinEvidence = 3;

    const std::string json = faultPlanToJson(p);
    std::string err;
    const auto back = faultPlanFromJson(json, &err);
    ASSERT_TRUE(back.has_value()) << err;

    ASSERT_EQ(back->byzantineFaults.size(), 3u);
    EXPECT_EQ(back->byzantineFaults[0].kind,
              ByzantineFaultKind::DutyCycleLiar);
    EXPECT_EQ(back->byzantineFaults[0].unit, 2u);
    EXPECT_DOUBLE_EQ(back->byzantineFaults[0].dutyCycle, 0.25);
    EXPECT_EQ(back->byzantineFaults[0].fromAccess, 64u);
    EXPECT_EQ(back->byzantineFaults[1].kind,
              ByzantineFaultKind::LostWrite);
    EXPECT_EQ(back->byzantineFaults[2].kind,
              ByzantineFaultKind::Equivocate);
    EXPECT_DOUBLE_EQ(back->mistrustEwmaAlpha, 0.5);
    EXPECT_DOUBLE_EQ(back->mistrustConvictThreshold, 0.12);
    EXPECT_EQ(back->mistrustHysteresisAccesses, 9u);
    EXPECT_EQ(back->mistrustMinEvidence, 3u);
    EXPECT_TRUE(back->enabled());

    // Serializing the parsed plan again is a fixed point.
    EXPECT_EQ(faultPlanToJson(*back), json);
}

TEST(FaultPlanIo, ByzantineSchemaRejectsBadEntries)
{
    // Unknown archetypes, unknown keys inside an entry, and
    // out-of-range duty cycles are configuration errors.
    EXPECT_FALSE(
        faultPlanFromJson("{\"byzantine_faults\": [{\"kind\": "
                          "\"gaslighter\", \"unit\": 0}]}")
            .has_value());
    EXPECT_FALSE(
        faultPlanFromJson("{\"byzantine_faults\": [{\"kind\": "
                          "\"duty_cycle_liar\", \"unit\": 0, "
                          "\"volume\": 11}]}")
            .has_value());
    EXPECT_FALSE(
        faultPlanFromJson("{\"byzantine_faults\": [{\"kind\": "
                          "\"duty_cycle_liar\", \"unit\": 0, "
                          "\"duty_cycle\": 1.5}]}")
            .has_value());
    EXPECT_FALSE(
        faultPlanFromJson("{\"byzantine_faults\": [{\"kind\": "
                          "\"duty_cycle_liar\", \"unit\": 0, "
                          "\"duty_cycle\": -0.1}]}")
            .has_value());
    EXPECT_FALSE(
        faultPlanFromJson("{\"mistrust_convict_threshold\": \"high\"}")
            .has_value());
}

TEST(FaultPlanIo, ArmedScorerAlonePlanIsEnabled)
{
    // A plan with no scripted faults but the mistrust scorer armed
    // must still count as enabled: the byzantine-defense build runs
    // the detector even when nobody is lying (the false-conviction
    // soak depends on this).
    std::string err;
    const auto p =
        faultPlanFromJson("{\"mistrust_convict_threshold\": 0.12}", &err);
    ASSERT_TRUE(p.has_value()) << err;
    EXPECT_TRUE(p->enabled());
    EXPECT_TRUE(p->byzantineFaults.empty());
}

/* ------------------------------------------------------------------ */
/* Watchdog backoff saturation                                         */
/* ------------------------------------------------------------------ */

TEST(WatchdogBackoff, SaturatesAtCapInsteadOfWrapping)
{
    FaultPlan p;
    p.watchdogDeadlineCycles = std::uint64_t{1} << 62;
    p.watchdogBackoffBase = 4;
    p.watchdogBackoffCapCycles =
        std::numeric_limits<std::uint64_t>::max();

    // 2^62 * 4 wraps 64 bits; the schedule must clamp at the cap,
    // never cycle back to a small wait.
    std::uint64_t prev = 0;
    for (unsigned probe = 0; probe < 80; ++probe) {
        const std::uint64_t wait = p.watchdogBackoff(probe);
        EXPECT_GE(wait, prev) << "backoff regressed at probe " << probe;
        EXPECT_GE(wait, p.watchdogDeadlineCycles);
        EXPECT_LE(wait, p.watchdogBackoffCapCycles);
        prev = wait;
    }
    EXPECT_EQ(p.watchdogBackoff(79), p.watchdogBackoffCapCycles);
}

TEST(WatchdogBackoff, ExactGeometricScheduleBelowCap)
{
    FaultPlan p;
    p.watchdogDeadlineCycles = 100;
    p.watchdogBackoffBase = 2;
    p.watchdogBackoffCapCycles = 1000;
    EXPECT_EQ(p.watchdogBackoff(0), 100u);
    EXPECT_EQ(p.watchdogBackoff(1), 200u);
    EXPECT_EQ(p.watchdogBackoff(2), 400u);
    EXPECT_EQ(p.watchdogBackoff(3), 800u);
    EXPECT_EQ(p.watchdogBackoff(4), 1000u); // Clamped.
    EXPECT_EQ(p.watchdogBackoff(60), 1000u);
}

} // namespace
} // namespace secdimm::fault
