/**
 * @file
 * Unit tests for the fault subsystem proper: FaultPlan predicates,
 * deterministic replay of a roll stream from (plan, seed) alone, the
 * single-draw-per-message link band partition, corruptBuffer's
 * one-bit contract, the accounting ledger, and the fault.* metric
 * export names docs/METRICS.md documents.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "fault/fault_injector.hh"
#include "util/metrics.hh"

namespace secdimm::fault
{
namespace
{

TEST(FaultPlan, EnabledPredicates)
{
    EXPECT_FALSE(FaultPlan{}.enabled());
    EXPECT_FALSE(FaultPlan::none().enabled());
    EXPECT_TRUE(FaultPlan::uniform(0.01, 1).enabled());

    FaultPlan p;
    p.linkDropRate = 0.001;
    EXPECT_TRUE(p.enabled());

    const FaultPlan u = FaultPlan::uniform(0.25, 42);
    EXPECT_EQ(u.seed, 42u);
    EXPECT_DOUBLE_EQ(u.dramBitFlipRate, 0.25);
    EXPECT_DOUBLE_EQ(u.linkCorruptRate, 0.25);
    EXPECT_DOUBLE_EQ(u.linkDropRate, 0.25);
    EXPECT_DOUBLE_EQ(u.linkDelayRate, 0.25);
    EXPECT_DOUBLE_EQ(u.executorStallRate, 0.25);
    EXPECT_DOUBLE_EQ(u.queuePerturbRate, 0.25);
}

TEST(FaultTypes, StableNames)
{
    EXPECT_STREQ(kindName(FaultKind::DramBitFlip), "dram_bit_flip");
    EXPECT_STREQ(kindName(FaultKind::LinkCorrupt), "link_corrupt");
    EXPECT_STREQ(kindName(FaultKind::LinkDrop), "link_drop");
    EXPECT_STREQ(kindName(FaultKind::LinkDelay), "link_delay");
    EXPECT_STREQ(kindName(FaultKind::ExecutorStall), "executor_stall");
    EXPECT_STREQ(kindName(FaultKind::QueuePerturb), "queue_perturb");
    EXPECT_STREQ(policyName(DegradationPolicy::FailStop), "fail_stop");
    EXPECT_STREQ(policyName(DegradationPolicy::RetryThenStop),
                 "retry_then_stop");
    EXPECT_STREQ(policyName(DegradationPolicy::Degraded), "degraded");
}

TEST(FaultInjector, RollStreamReproducesFromPlanAlone)
{
    const FaultPlan plan = FaultPlan::uniform(0.2, 77);
    FaultInjector a(plan);
    FaultInjector b(plan);
    for (int i = 0; i < 2000; ++i) {
        switch (i % 4) {
        case 0:
            EXPECT_EQ(a.rollDramBitFlip(), b.rollDramBitFlip());
            break;
        case 1:
            EXPECT_EQ(a.rollLinkFault(), b.rollLinkFault());
            break;
        case 2:
            EXPECT_EQ(a.rollExecutorStall(), b.rollExecutorStall());
            break;
        case 3:
            EXPECT_EQ(a.rollQueuePerturb(), b.rollQueuePerturb());
            break;
        }
    }
    std::vector<std::uint8_t> buf_a(64, 0xcc), buf_b(64, 0xcc);
    a.corruptBuffer(buf_a);
    b.corruptBuffer(buf_b);
    EXPECT_EQ(buf_a, buf_b);
    EXPECT_EQ(a.injectedTotal(), b.injectedTotal());
}

TEST(FaultInjector, LinkBandsPartitionOneDraw)
{
    FaultPlan plan;
    plan.linkCorruptRate = 0.05;
    plan.linkDropRate = 0.03;
    plan.linkDelayRate = 0.02;
    plan.seed = 5;
    FaultInjector inj(plan);

    const int n = 200000;
    int corrupted = 0, dropped = 0, delayed = 0, delivered = 0;
    for (int i = 0; i < n; ++i) {
        switch (inj.rollLinkFault()) {
        case WireOutcome::Corrupted: ++corrupted; break;
        case WireOutcome::Dropped: ++dropped; break;
        case WireOutcome::Delayed: ++delayed; break;
        case WireOutcome::Delivered: ++delivered; break;
        }
    }
    // The three bands are disjoint slices of ONE uniform draw, so the
    // empirical rates must match the plan's individually.
    EXPECT_NEAR(corrupted / double(n), 0.05, 0.005);
    EXPECT_NEAR(dropped / double(n), 0.03, 0.005);
    EXPECT_NEAR(delayed / double(n), 0.02, 0.005);
    EXPECT_EQ(corrupted + dropped + delayed + delivered, n);
    // Every fired band was counted as injected, nothing else.
    EXPECT_EQ(inj.injected(FaultKind::LinkCorrupt),
              static_cast<std::uint64_t>(corrupted));
    EXPECT_EQ(inj.injected(FaultKind::LinkDrop),
              static_cast<std::uint64_t>(dropped));
    EXPECT_EQ(inj.injected(FaultKind::LinkDelay),
              static_cast<std::uint64_t>(delayed));
    EXPECT_EQ(inj.injectedTotal(), static_cast<std::uint64_t>(
                                       corrupted + dropped + delayed));
}

TEST(FaultInjector, ZeroRatesNeverFire)
{
    FaultInjector inj(FaultPlan::none());
    for (int i = 0; i < 1000; ++i) {
        EXPECT_FALSE(inj.rollDramBitFlip());
        EXPECT_EQ(inj.rollLinkFault(), WireOutcome::Delivered);
        EXPECT_EQ(inj.rollExecutorStall(), 0u);
        EXPECT_FALSE(inj.rollQueuePerturb());
    }
    EXPECT_EQ(inj.injectedTotal(), 0u);
}

TEST(FaultInjector, StallRollReturnsConfiguredCycles)
{
    FaultPlan plan;
    plan.executorStallRate = 1.0;
    plan.stallCycles = 321;
    FaultInjector inj(plan);
    EXPECT_EQ(inj.rollExecutorStall(), 321u);
    EXPECT_EQ(inj.injected(FaultKind::ExecutorStall), 1u);
}

TEST(FaultInjector, CorruptBufferFlipsExactlyOneBit)
{
    FaultInjector inj(FaultPlan::uniform(0.5, 9));
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<std::uint8_t> buf(48, 0);
        inj.corruptBuffer(buf);
        int flipped = 0;
        for (std::uint8_t b : buf) {
            while (b) {
                flipped += b & 1;
                b >>= 1;
            }
        }
        EXPECT_EQ(flipped, 1) << "trial " << trial;
    }
}

TEST(FaultInjector, CorruptBufferEmptyIsNoop)
{
    FaultInjector inj(FaultPlan::uniform(0.5, 9));
    std::vector<std::uint8_t> empty;
    inj.corruptBuffer(empty); // Must not crash or draw out of range.
    EXPECT_TRUE(empty.empty());
}

TEST(FaultInjector, LedgerTotalsAndEvents)
{
    FaultInjector inj(FaultPlan::uniform(0.01, 3));
    inj.recordDetected(FaultKind::LinkCorrupt);
    inj.recordRecovered(FaultKind::LinkCorrupt, "uplink.ACCESS", 1);
    inj.recordDetected(FaultKind::DramBitFlip);
    inj.recordRecovered(FaultKind::DramBitFlip, "store.bucket", 2);
    inj.recordDetected(FaultKind::LinkDrop);
    inj.recordUnrecovered(FaultKind::LinkDrop, "uplink.APPEND", 4);
    inj.recordDegraded();

    EXPECT_EQ(inj.detectedTotal(), 3u);
    EXPECT_EQ(inj.recoveredTotal(), 2u);
    EXPECT_EQ(inj.unrecoveredTotal(), 1u);
    EXPECT_EQ(inj.degradedAccesses(), 1u);
    EXPECT_EQ(inj.detected(FaultKind::LinkCorrupt), 1u);
    EXPECT_EQ(inj.recovered(FaultKind::DramBitFlip), 1u);

    ASSERT_EQ(inj.events().size(), 3u);
    EXPECT_EQ(inj.events()[0].site, "uplink.ACCESS");
    EXPECT_TRUE(inj.events()[0].recovered);
    EXPECT_EQ(inj.events()[1].attempts, 2u);
    EXPECT_EQ(inj.events()[2].kind, FaultKind::LinkDrop);
    EXPECT_FALSE(inj.events()[2].recovered);
}

TEST(FaultInjector, EventLogIsBounded)
{
    FaultInjector inj(FaultPlan::uniform(0.01, 3));
    for (int i = 0; i < 5000; ++i)
        inj.recordRecovered(FaultKind::QueuePerturb, "xfer.pop", 1);
    EXPECT_LE(inj.events().size(), 4096u);
    EXPECT_EQ(inj.recoveredTotal(), 5000u); // Counters never truncate.
}

TEST(FaultInjector, MetricExportNames)
{
    FaultInjector inj(FaultPlan::uniform(0.01, 3));
    inj.recordDetected(FaultKind::LinkCorrupt);
    inj.recordRecovered(FaultKind::LinkCorrupt, "uplink.ACCESS", 1);
    // One synthetic injection so the per-kind counter appears.
    FaultPlan all;
    all.linkCorruptRate = 1.0;
    FaultInjector always(all);
    (void)always.rollLinkFault();
    always.recordDetected(FaultKind::LinkCorrupt);
    always.recordRecovered(FaultKind::LinkCorrupt, "uplink.ACCESS", 1);

    util::MetricsRegistry m;
    always.exportMetrics(m, "fault");
    EXPECT_EQ(m.counter("fault.injected.total"), 1u);
    EXPECT_EQ(m.counter("fault.detected.total"), 1u);
    EXPECT_EQ(m.counter("fault.recovered.total"), 1u);
    EXPECT_EQ(m.counter("fault.unrecovered.total"), 0u);
    EXPECT_EQ(m.counter("fault.link_corrupt.injected"), 1u);
    EXPECT_EQ(m.counter("fault.link_corrupt.detected"), 1u);
    EXPECT_EQ(m.counter("fault.link_corrupt.recovered"), 1u);
    const auto *h = m.findHistogram("fault.retry_count");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count(), 1u);

    // Quiet kinds stay out of the export (bus-metric convention).
    util::MetricsRegistry quiet;
    FaultInjector idle(FaultPlan::none());
    idle.exportMetrics(quiet, "fault");
    EXPECT_EQ(quiet.findHistogram("fault.retry_count"), nullptr);
    for (const auto &n : quiet.names())
        EXPECT_EQ(n.find("dram_bit_flip"), std::string::npos) << n;
}

TEST(FaultPlan, WatchdogBackoffIsCappedExponential)
{
    FaultPlan p;
    p.watchdogDeadlineCycles = 512;
    p.watchdogBackoffBase = 2;
    p.watchdogBackoffCapCycles = 8192;
    EXPECT_EQ(p.watchdogBackoff(0), 512u);
    EXPECT_EQ(p.watchdogBackoff(1), 1024u);
    EXPECT_EQ(p.watchdogBackoff(2), 2048u);
    EXPECT_EQ(p.watchdogBackoff(3), 4096u);
    EXPECT_EQ(p.watchdogBackoff(4), 8192u);
    EXPECT_EQ(p.watchdogBackoff(5), 8192u);   // Cap holds.
    EXPECT_EQ(p.watchdogBackoff(100), 8192u); // No overflow.
}

TEST(FaultPlan, PermanentFactoriesEnableThePlan)
{
    const FaultPlan s = FaultPlan::stuckAt(1, 9);
    ASSERT_EQ(s.permanentFaults.size(), 1u);
    EXPECT_EQ(s.permanentFaults[0].kind, PermanentFaultKind::StuckAt);
    EXPECT_EQ(s.permanentFaults[0].unit, 1u);
    EXPECT_TRUE(s.enabled());

    const FaultPlan h = FaultPlan::hardDeath(0, 2500, 9);
    EXPECT_EQ(h.permanentFaults[0].kind, PermanentFaultKind::HardDeath);
    EXPECT_EQ(h.permanentFaults[0].atAccess, 2500u);
    EXPECT_TRUE(h.enabled());

    const FaultPlan d = FaultPlan::degradedLatency(2, 300, 9);
    EXPECT_EQ(d.permanentFaults[0].kind,
              PermanentFaultKind::DegradedLatency);
    EXPECT_EQ(d.permanentFaults[0].latencyCycles, 300u);
    EXPECT_TRUE(d.enabled());

    EXPECT_STREQ(permanentKindName(PermanentFaultKind::StuckAt),
                 "stuck_at");
    EXPECT_STREQ(permanentKindName(PermanentFaultKind::HardDeath),
                 "hard_death");
    EXPECT_STREQ(permanentKindName(PermanentFaultKind::DegradedLatency),
                 "degraded_latency");
    EXPECT_STREQ(kindName(FaultKind::WatchdogTimeout),
                 "watchdog_timeout");
}

TEST(FaultInjector, StuckAtIsDeadFromBootAndInjectedOnce)
{
    FaultInjector inj(FaultPlan::stuckAt(1, 4));
    EXPECT_TRUE(inj.unitDead(1));
    EXPECT_FALSE(inj.unitDead(0));
    // Boot activation counts as one injected WatchdogTimeout episode.
    EXPECT_EQ(inj.injected(FaultKind::WatchdogTimeout), 1u);
    inj.noteAccess();
    EXPECT_EQ(inj.injected(FaultKind::WatchdogTimeout), 1u);
    // Detection is idempotent.
    inj.markPermanentDetected(1);
    inj.markPermanentDetected(1);
    EXPECT_EQ(inj.detected(FaultKind::WatchdogTimeout), 1u);
}

TEST(FaultInjector, HardDeathActivatesAfterItsAccessIndex)
{
    FaultInjector inj(FaultPlan::hardDeath(0, 3, 4));
    EXPECT_FALSE(inj.unitDead(0));
    EXPECT_EQ(inj.injected(FaultKind::WatchdogTimeout), 0u);
    for (int i = 0; i < 3; ++i)
        inj.noteAccess();
    // Access indices 0..2 completed; the unit still answered at
    // atAccess == 3's boundary only after one more access.
    EXPECT_FALSE(inj.unitDead(0));
    inj.noteAccess();
    EXPECT_TRUE(inj.unitDead(0));
    EXPECT_EQ(inj.injected(FaultKind::WatchdogTimeout), 1u);
    EXPECT_EQ(inj.accessIndex(), 4u);
}

TEST(FaultInjector, DegradedLatencyTaxesWithoutTouchingTheLedger)
{
    FaultInjector inj(FaultPlan::degradedLatency(1, 250, 4));
    EXPECT_FALSE(inj.unitDead(1)); // Slow, not dead.
    EXPECT_EQ(inj.unitLatencyPenalty(1), 250u);
    EXPECT_EQ(inj.unitLatencyPenalty(0), 0u);
    EXPECT_EQ(inj.injectedTotal(), 0u);
    EXPECT_EQ(inj.detectedTotal(), 0u);
    inj.addDegradedLatencyCycles(250);
    EXPECT_EQ(inj.degradedLatencyCycles(), 250u);
}

TEST(FaultInjector, RecoveryAccountingAccumulates)
{
    FaultInjector inj(FaultPlan::stuckAt(0, 4));
    inj.recordWatchdogProbe(512);
    inj.recordWatchdogProbe(1024);
    EXPECT_EQ(inj.watchdogProbes(), 2u);
    EXPECT_EQ(inj.watchdogBackoffCycles(), 1536u);
    EXPECT_EQ(inj.recoveryCycles(), 1536u);
    inj.recordQuarantine();
    inj.recordEvacuation(7, 40);
    inj.addRecoveryCycles(100);
    EXPECT_EQ(inj.quarantinedUnits(), 1u);
    EXPECT_EQ(inj.evacuatedBlocks(), 7u);
    EXPECT_EQ(inj.evacuationAppends(), 40u);
    EXPECT_EQ(inj.recoveryCycles(), 1636u);

    util::MetricsRegistry m;
    inj.exportMetrics(m, "fault");
    EXPECT_EQ(m.counter("fault.watchdog_probes"), 2u);
    EXPECT_EQ(m.counter("fault.watchdog_backoff_cycles"), 1536u);
    EXPECT_EQ(m.counter("fault.quarantined_sdimms"), 1u);
    EXPECT_EQ(m.counter("fault.evacuated_blocks"), 7u);
    EXPECT_EQ(m.counter("fault.evacuation_appends"), 40u);
    EXPECT_EQ(m.counter("fault.degraded_latency_cycles"), 0u);
    EXPECT_EQ(m.counter("fault.recovery_cycles"), 1636u);
}

} // namespace
} // namespace secdimm::fault
