#include <gtest/gtest.h>

#include "crypto/aes128.hh"

namespace secdimm::crypto
{
namespace
{

Aes128Block
blockFromBytes(std::initializer_list<std::uint8_t> bytes)
{
    Aes128Block b{};
    std::size_t i = 0;
    for (auto v : bytes)
        b[i++] = v;
    return b;
}

/** FIPS-197 Appendix C.1 known-answer test. */
TEST(Aes128, Fips197KnownAnswer)
{
    const Aes128Key key = blockFromBytes(
        {0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
         0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f});
    const Aes128Block pt = blockFromBytes(
        {0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
         0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff});
    const Aes128Block expected = blockFromBytes(
        {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30,
         0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a});

    Aes128 aes(key);
    EXPECT_EQ(aes.encrypt(pt), expected);
    EXPECT_EQ(aes.decrypt(expected), pt);
}

/** NIST SP 800-38A F.1.1 ECB-AES128 vector. */
TEST(Aes128, Sp80038aVector)
{
    const Aes128Key key = blockFromBytes(
        {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
         0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c});
    const Aes128Block pt = blockFromBytes(
        {0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96,
         0xe9, 0x3d, 0x7e, 0x11, 0x73, 0x93, 0x17, 0x2a});
    const Aes128Block expected = blockFromBytes(
        {0x3a, 0xd7, 0x7b, 0xb4, 0x0d, 0x7a, 0x36, 0x60,
         0xa8, 0x9e, 0xca, 0xf3, 0x24, 0x66, 0xef, 0x97});

    Aes128 aes(key);
    EXPECT_EQ(aes.encrypt(pt), expected);
}

TEST(Aes128, DecryptInvertsEncrypt)
{
    Aes128 aes(makeKey(0x0123456789abcdefULL, 0xfedcba9876543210ULL));
    Aes128Block pt{};
    for (int trial = 0; trial < 64; ++trial) {
        for (auto &b : pt)
            b = static_cast<std::uint8_t>(b * 31 + trial + 7);
        EXPECT_EQ(aes.decrypt(aes.encrypt(pt)), pt);
    }
}

TEST(Aes128, DifferentKeysDifferentCiphertext)
{
    Aes128 a(makeKey(1, 2));
    Aes128 b(makeKey(1, 3));
    const Aes128Block pt{};
    EXPECT_NE(a.encrypt(pt), b.encrypt(pt));
}

TEST(Aes128, RekeyChangesOutput)
{
    Aes128 aes(makeKey(1, 2));
    const Aes128Block pt{};
    const auto c1 = aes.encrypt(pt);
    aes.rekey(makeKey(9, 9));
    EXPECT_NE(aes.encrypt(pt), c1);
    aes.rekey(makeKey(1, 2));
    EXPECT_EQ(aes.encrypt(pt), c1);
}

TEST(Aes128, AvalancheOnPlaintextBitFlip)
{
    Aes128 aes(makeKey(0xaaaa, 0x5555));
    Aes128Block pt{};
    const auto c1 = aes.encrypt(pt);
    pt[0] ^= 1;
    const auto c2 = aes.encrypt(pt);
    int differing_bits = 0;
    for (std::size_t i = 0; i < c1.size(); ++i) {
        std::uint8_t d = c1[i] ^ c2[i];
        while (d) {
            differing_bits += d & 1;
            d >>= 1;
        }
    }
    // Expect roughly half of the 128 bits to flip.
    EXPECT_GT(differing_bits, 40);
    EXPECT_LT(differing_bits, 90);
}

TEST(Aes128, BlockXor)
{
    Aes128Block a{}, b{};
    a[0] = 0xf0;
    b[0] = 0x0f;
    b[15] = 0xff;
    const auto x = blockXor(a, b);
    EXPECT_EQ(x[0], 0xff);
    EXPECT_EQ(x[15], 0xff);
    EXPECT_EQ(x[7], 0x00);
}

TEST(Aes128, MakeKeyByteOrder)
{
    const auto k = makeKey(0x0102030405060708ULL, 0x090a0b0c0d0e0f10ULL);
    EXPECT_EQ(k[0], 0x01);
    EXPECT_EQ(k[7], 0x08);
    EXPECT_EQ(k[8], 0x09);
    EXPECT_EQ(k[15], 0x10);
}

} // namespace
} // namespace secdimm::crypto
