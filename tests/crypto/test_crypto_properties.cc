/**
 * @file
 * Randomized property sweeps over the crypto substrate (seeded, so
 * deterministic): encrypt/decrypt inversion, pad uniqueness, MAC
 * sensitivity, and KDF separation across many keys and inputs.
 */

#include <gtest/gtest.h>

#include <set>

#include "crypto/cmac.hh"
#include "crypto/ctr_mode.hh"
#include "crypto/key_exchange.hh"
#include "crypto/pmmac.hh"
#include "util/rng.hh"

namespace secdimm::crypto
{
namespace
{

class CryptoSweep : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    Rng rng_{GetParam()};

    Aes128Key
    randomKey()
    {
        return makeKey(rng_.next(), rng_.next());
    }
};

INSTANTIATE_TEST_SUITE_P(Seeds, CryptoSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST_P(CryptoSweep, AesDecryptInvertsEncryptRandomized)
{
    Aes128 aes(randomKey());
    for (int i = 0; i < 200; ++i) {
        Aes128Block pt;
        for (auto &b : pt)
            b = static_cast<std::uint8_t>(rng_.next());
        ASSERT_EQ(aes.decrypt(aes.encrypt(pt)), pt);
    }
}

TEST_P(CryptoSweep, CtrPadsNeverRepeatAcrossNonceCounterLane)
{
    CtrCipher ctr(randomKey());
    std::set<Aes128Block> pads;
    for (int i = 0; i < 300; ++i) {
        const auto pad = ctr.pad(rng_.nextBelow(1000),
                                 rng_.nextBelow(1000),
                                 static_cast<std::uint32_t>(i % 4));
        pads.insert(pad);
    }
    // Collisions would mean pad reuse; random (nonce, ctr) pairs may
    // repeat themselves, so allow a small number of exact-input dups.
    EXPECT_GT(pads.size(), 290u);
}

TEST_P(CryptoSweep, CtrInvolutionOnRandomBuffers)
{
    CtrCipher ctr(randomKey());
    for (int i = 0; i < 50; ++i) {
        const std::size_t len = 1 + rng_.nextBelow(300);
        std::vector<std::uint8_t> buf(len);
        for (auto &b : buf)
            b = static_cast<std::uint8_t>(rng_.next());
        const auto orig = buf;
        const std::uint64_t nonce = rng_.next();
        const std::uint64_t counter = rng_.next();
        ctr.transformBuffer(buf.data(), len, nonce, counter);
        ctr.transformBuffer(buf.data(), len, nonce, counter);
        ASSERT_EQ(buf, orig) << "len=" << len;
    }
}

TEST_P(CryptoSweep, CmacSingleBitSensitivity)
{
    Cmac cmac(randomKey());
    std::vector<std::uint8_t> msg(77);
    for (auto &b : msg)
        b = static_cast<std::uint8_t>(rng_.next());
    const auto base = cmac.compute(msg.data(), msg.size());
    for (int trial = 0; trial < 40; ++trial) {
        auto tampered = msg;
        const std::size_t byte = rng_.nextBelow(tampered.size());
        tampered[byte] ^= static_cast<std::uint8_t>(
            1u << rng_.nextBelow(8));
        if (tampered == msg)
            continue;
        ASSERT_NE(cmac.compute(tampered.data(), tampered.size()), base);
    }
}

TEST_P(CryptoSweep, PmmacDistinctAcrossIdCounterData)
{
    Pmmac mac(randomKey());
    std::set<Tag64> tags;
    std::uint8_t payload[32];
    for (int i = 0; i < 200; ++i) {
        for (auto &b : payload)
            b = static_cast<std::uint8_t>(rng_.next());
        tags.insert(mac.tag(rng_.nextBelow(64), rng_.nextBelow(64),
                            payload, sizeof(payload)));
    }
    // 64-bit tags over random inputs: collisions essentially never.
    EXPECT_GT(tags.size(), 198u);
}

TEST_P(CryptoSweep, DhAgreementAcrossRandomPairs)
{
    for (int i = 0; i < 20; ++i) {
        const DhKeyPair a = dhGenerate(rng_);
        const DhKeyPair b = dhGenerate(rng_);
        ASSERT_EQ(dhShared(a.priv, b.pub), dhShared(b.priv, a.pub));
    }
}

TEST_P(CryptoSweep, SessionKeysDifferAcrossLabelsAndSecrets)
{
    std::set<Aes128Key> keys;
    for (int i = 0; i < 30; ++i) {
        const std::uint64_t shared = rng_.next() % dhModulus;
        keys.insert(deriveSessionKey(shared, 0));
        keys.insert(deriveSessionKey(shared, 1));
    }
    EXPECT_EQ(keys.size(), 60u);
}

} // namespace
} // namespace secdimm::crypto
