#include <gtest/gtest.h>

#include <array>

#include "crypto/pmmac.hh"

namespace secdimm::crypto
{
namespace
{

std::array<std::uint8_t, 64>
payload(std::uint8_t seed)
{
    std::array<std::uint8_t, 64> p;
    for (std::size_t i = 0; i < p.size(); ++i)
        p[i] = static_cast<std::uint8_t>(seed ^ (i * 7));
    return p;
}

TEST(Pmmac, TagVerifiesRoundTrip)
{
    Pmmac mac(makeKey(4, 2));
    const auto p = payload(1);
    const Tag64 t = mac.tag(100, 5, p.data(), p.size());
    EXPECT_TRUE(mac.verify(100, 5, p.data(), p.size(), t));
}

TEST(Pmmac, ReplayOldCounterFails)
{
    // The PMMAC freshness property: data MAC'd under counter 5 does
    // not verify under counter 6 (and vice versa), so an attacker
    // cannot roll a bucket back to an old version.
    Pmmac mac(makeKey(4, 2));
    const auto p = payload(2);
    const Tag64 t5 = mac.tag(7, 5, p.data(), p.size());
    EXPECT_FALSE(mac.verify(7, 6, p.data(), p.size(), t5));
    EXPECT_FALSE(mac.verify(7, 4, p.data(), p.size(), t5));
}

TEST(Pmmac, WrongIdentityFails)
{
    // Relocation attack: moving a valid bucket image to a different
    // bucket id must be detected.
    Pmmac mac(makeKey(4, 2));
    const auto p = payload(3);
    const Tag64 t = mac.tag(10, 1, p.data(), p.size());
    EXPECT_FALSE(mac.verify(11, 1, p.data(), p.size(), t));
}

TEST(Pmmac, DataTamperFails)
{
    Pmmac mac(makeKey(4, 2));
    auto p = payload(4);
    const Tag64 t = mac.tag(10, 1, p.data(), p.size());
    p[33] ^= 0x80;
    EXPECT_FALSE(mac.verify(10, 1, p.data(), p.size(), t));
}

TEST(Pmmac, KeySeparation)
{
    Pmmac a(makeKey(1, 1));
    Pmmac b(makeKey(1, 2));
    const auto p = payload(5);
    EXPECT_NE(a.tag(0, 0, p.data(), p.size()),
              b.tag(0, 0, p.data(), p.size()));
}

TEST(Pmmac, EmptyPayloadSupported)
{
    Pmmac mac(makeKey(6, 6));
    const Tag64 t = mac.tag(1, 2, nullptr, 0);
    EXPECT_TRUE(mac.verify(1, 2, nullptr, 0, t));
    EXPECT_FALSE(mac.verify(1, 3, nullptr, 0, t));
}

} // namespace
} // namespace secdimm::crypto
