#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "crypto/aes128.hh"
#include "crypto/pmmac.hh"

namespace secdimm::crypto
{
namespace
{

std::array<std::uint8_t, 64>
payload(std::uint8_t seed)
{
    std::array<std::uint8_t, 64> p;
    for (std::size_t i = 0; i < p.size(); ++i)
        p[i] = static_cast<std::uint8_t>(seed ^ (i * 7));
    return p;
}

TEST(Pmmac, TagVerifiesRoundTrip)
{
    Pmmac mac(makeKey(4, 2));
    const auto p = payload(1);
    const Tag64 t = mac.tag(100, 5, p.data(), p.size());
    EXPECT_TRUE(mac.verify(100, 5, p.data(), p.size(), t));
}

TEST(Pmmac, ReplayOldCounterFails)
{
    // The PMMAC freshness property: data MAC'd under counter 5 does
    // not verify under counter 6 (and vice versa), so an attacker
    // cannot roll a bucket back to an old version.
    Pmmac mac(makeKey(4, 2));
    const auto p = payload(2);
    const Tag64 t5 = mac.tag(7, 5, p.data(), p.size());
    EXPECT_FALSE(mac.verify(7, 6, p.data(), p.size(), t5));
    EXPECT_FALSE(mac.verify(7, 4, p.data(), p.size(), t5));
}

TEST(Pmmac, WrongIdentityFails)
{
    // Relocation attack: moving a valid bucket image to a different
    // bucket id must be detected.
    Pmmac mac(makeKey(4, 2));
    const auto p = payload(3);
    const Tag64 t = mac.tag(10, 1, p.data(), p.size());
    EXPECT_FALSE(mac.verify(11, 1, p.data(), p.size(), t));
}

TEST(Pmmac, DataTamperFails)
{
    Pmmac mac(makeKey(4, 2));
    auto p = payload(4);
    const Tag64 t = mac.tag(10, 1, p.data(), p.size());
    p[33] ^= 0x80;
    EXPECT_FALSE(mac.verify(10, 1, p.data(), p.size(), t));
}

TEST(Pmmac, KeySeparation)
{
    Pmmac a(makeKey(1, 1));
    Pmmac b(makeKey(1, 2));
    const auto p = payload(5);
    EXPECT_NE(a.tag(0, 0, p.data(), p.size()),
              b.tag(0, 0, p.data(), p.size()));
}

TEST(Pmmac, EmptyPayloadSupported)
{
    Pmmac mac(makeKey(6, 6));
    const Tag64 t = mac.tag(1, 2, nullptr, 0);
    EXPECT_TRUE(mac.verify(1, 2, nullptr, 0, t));
    EXPECT_FALSE(mac.verify(1, 3, nullptr, 0, t));
}

/** RAII backend override so a failing test cannot leak the force. */
class ForcedImpl
{
  public:
    explicit ForcedImpl(AesImpl impl) { forceAesImpl(impl); }
    ~ForcedImpl() { clearForcedAesImpl(); }
};

std::vector<AesImpl>
availableImpls()
{
    std::vector<AesImpl> impls{AesImpl::Table};
    if (aesNiSupported())
        impls.push_back(AesImpl::AesNi);
    if (armv8CryptoSupported())
        impls.push_back(AesImpl::Armv8);
    return impls;
}

TEST(Pmmac, SingleBitTagFlipRejectedOnEveryBackend)
{
    // The tag comparison is constant-time (an OR-fold over the XOR
    // difference, not an early-exit memcmp); this pins the functional
    // half of that contract: EVERY single-bit perturbation of a valid
    // tag must be rejected, on every AES backend this machine has.
    const auto p = payload(6);
    for (const AesImpl impl : availableImpls()) {
        ForcedImpl forced(impl);
        Pmmac mac(makeKey(9, 3));
        const Tag64 t = mac.tag(21, 4, p.data(), p.size());
        ASSERT_TRUE(mac.verify(21, 4, p.data(), p.size(), t));
        for (unsigned bit = 0; bit < 64; ++bit)
            EXPECT_FALSE(mac.verify(21, 4, p.data(), p.size(),
                                    t ^ (std::uint64_t{1} << bit)))
                << "bit " << bit << " impl " << static_cast<int>(impl);
    }
}

TEST(Pmmac, BatchVerifyRejectsSingleBitTagFlips)
{
    const auto p0 = payload(7);
    const auto p1 = payload(8);
    for (const AesImpl impl : availableImpls()) {
        ForcedImpl forced(impl);
        Pmmac mac(makeKey(9, 4));
        PmmacItem items[2] = {{40, 1, p0.data(), p0.size()},
                              {41, 2, p1.data(), p1.size()}};
        Tag64 tags[2];
        mac.tagBatch(items, 2, tags);
        bool ok[2];
        ASSERT_TRUE(mac.verifyBatch(items, 2, tags, ok));
        for (unsigned bit = 0; bit < 64; ++bit) {
            Tag64 flipped[2] = {tags[0] ^ (std::uint64_t{1} << bit),
                                tags[1]};
            EXPECT_FALSE(mac.verifyBatch(items, 2, flipped, ok));
            EXPECT_FALSE(ok[0]);
            EXPECT_TRUE(ok[1]);
        }
    }
}

} // namespace
} // namespace secdimm::crypto
