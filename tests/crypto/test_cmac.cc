#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "crypto/cmac.hh"

namespace secdimm::crypto
{
namespace
{

Aes128Key
rfc4493Key()
{
    return Aes128Key{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                     0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
}

const std::uint8_t rfc4493Msg[64] = {
    0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96,
    0xe9, 0x3d, 0x7e, 0x11, 0x73, 0x93, 0x17, 0x2a,
    0xae, 0x2d, 0x8a, 0x57, 0x1e, 0x03, 0xac, 0x9c,
    0x9e, 0xb7, 0x6f, 0xac, 0x45, 0xaf, 0x8e, 0x51,
    0x30, 0xc8, 0x1c, 0x46, 0xa3, 0x5c, 0xe4, 0x11,
    0xe5, 0xfb, 0xc1, 0x19, 0x1a, 0x0a, 0x52, 0xef,
    0xf6, 0x9f, 0x24, 0x45, 0xdf, 0x4f, 0x9b, 0x17,
    0xad, 0x2b, 0x41, 0x7b, 0xe6, 0x6c, 0x37, 0x10,
};

/** RFC 4493 test vector: empty message. */
TEST(Cmac, Rfc4493EmptyMessage)
{
    const Aes128Block expected{0xbb, 0x1d, 0x69, 0x29, 0xe9, 0x59,
                               0x37, 0x28, 0x7f, 0xa3, 0x7d, 0x12,
                               0x9b, 0x75, 0x67, 0x46};
    Cmac cmac(rfc4493Key());
    EXPECT_EQ(cmac.compute(nullptr, 0), expected);
}

/** RFC 4493 test vector: 16-byte message. */
TEST(Cmac, Rfc449316Bytes)
{
    const Aes128Block expected{0x07, 0x0a, 0x16, 0xb4, 0x6b, 0x4d,
                               0x41, 0x44, 0xf7, 0x9b, 0xdd, 0x9d,
                               0xd0, 0x4a, 0x28, 0x7c};
    Cmac cmac(rfc4493Key());
    EXPECT_EQ(cmac.compute(rfc4493Msg, 16), expected);
}

/** RFC 4493 test vector: 40-byte message (partial final block). */
TEST(Cmac, Rfc449340Bytes)
{
    const Aes128Block expected{0xdf, 0xa6, 0x67, 0x47, 0xde, 0x9a,
                               0xe6, 0x30, 0x30, 0xca, 0x32, 0x61,
                               0x14, 0x97, 0xc8, 0x27};
    Cmac cmac(rfc4493Key());
    EXPECT_EQ(cmac.compute(rfc4493Msg, 40), expected);
}

/** RFC 4493 test vector: 64-byte message. */
TEST(Cmac, Rfc449364Bytes)
{
    const Aes128Block expected{0x51, 0xf0, 0xbe, 0xbf, 0x7e, 0x3b,
                               0x9d, 0x92, 0xfc, 0x49, 0x74, 0x17,
                               0x79, 0x36, 0x3c, 0xfe};
    Cmac cmac(rfc4493Key());
    EXPECT_EQ(cmac.compute(rfc4493Msg, 64), expected);
}

TEST(Cmac, AnyBitFlipChangesTag)
{
    Cmac cmac(rfc4493Key());
    const auto base = cmac.compute(rfc4493Msg, 40);
    for (std::size_t byte = 0; byte < 40; byte += 5) {
        std::uint8_t msg[40];
        std::memcpy(msg, rfc4493Msg, 40);
        msg[byte] ^= 0x01;
        EXPECT_NE(cmac.compute(msg, 40), base) << "byte=" << byte;
    }
}

TEST(Cmac, LengthExtensionChangesTag)
{
    Cmac cmac(rfc4493Key());
    // A message and its zero-padded extension must have distinct tags.
    std::vector<std::uint8_t> m(24, 0xab);
    std::vector<std::uint8_t> m2(25, 0xab);
    m2[24] = 0x00;
    EXPECT_NE(cmac.compute(m.data(), m.size()),
              cmac.compute(m2.data(), m2.size()));
}

TEST(Cmac, TagsEqualHelper)
{
    Aes128Block a{}, b{};
    EXPECT_TRUE(Cmac::tagsEqual(a, b));
    b[9] = 1;
    EXPECT_FALSE(Cmac::tagsEqual(a, b));
}

} // namespace
} // namespace secdimm::crypto
