#include <gtest/gtest.h>

#include "crypto/ctr_mode.hh"

namespace secdimm::crypto
{
namespace
{

BlockData
patternBlock(std::uint8_t seed)
{
    BlockData b;
    for (std::size_t i = 0; i < b.size(); ++i)
        b[i] = static_cast<std::uint8_t>(seed + i * 3);
    return b;
}

TEST(CtrMode, TransformIsInvolution)
{
    CtrCipher c(makeKey(0x11, 0x22));
    BlockData data = patternBlock(5);
    const BlockData orig = data;
    c.transformBlock(data, /*nonce=*/77, /*counter=*/3);
    EXPECT_NE(data, orig);
    c.transformBlock(data, 77, 3);
    EXPECT_EQ(data, orig);
}

TEST(CtrMode, DifferentCounterDifferentCiphertext)
{
    CtrCipher c(makeKey(1, 2));
    BlockData a = patternBlock(9), b = patternBlock(9);
    c.transformBlock(a, 10, 0);
    c.transformBlock(b, 10, 1);
    EXPECT_NE(a, b);
}

TEST(CtrMode, DifferentNonceDifferentCiphertext)
{
    CtrCipher c(makeKey(1, 2));
    BlockData a = patternBlock(9), b = patternBlock(9);
    c.transformBlock(a, 10, 5);
    c.transformBlock(b, 11, 5);
    EXPECT_NE(a, b);
}

TEST(CtrMode, PadLanesAreDistinct)
{
    CtrCipher c(makeKey(3, 4));
    const auto p0 = c.pad(1, 1, 0);
    const auto p1 = c.pad(1, 1, 1);
    const auto p2 = c.pad(1, 1, 2);
    const auto p3 = c.pad(1, 1, 3);
    EXPECT_NE(p0, p1);
    EXPECT_NE(p1, p2);
    EXPECT_NE(p2, p3);
    EXPECT_NE(p0, p3);
}

TEST(CtrMode, ArbitraryLengthBufferRoundTrip)
{
    CtrCipher c(makeKey(5, 6));
    for (std::size_t len : {1u, 15u, 16u, 17u, 63u, 64u, 65u, 200u}) {
        std::vector<std::uint8_t> buf(len);
        for (std::size_t i = 0; i < len; ++i)
            buf[i] = static_cast<std::uint8_t>(i);
        auto orig = buf;
        c.transformBuffer(buf.data(), len, 42, 7);
        if (len > 4) {
            EXPECT_NE(buf, orig) << "len=" << len;
        }
        c.transformBuffer(buf.data(), len, 42, 7);
        EXPECT_EQ(buf, orig) << "len=" << len;
    }
}

TEST(CtrMode, CiphertextFreshness)
{
    // Re-encrypting the same plaintext with a bumped counter must not
    // repeat ciphertexts -- the property that hides write contents.
    CtrCipher c(makeKey(8, 8));
    const BlockData pt = patternBlock(1);
    BlockData prev = pt;
    c.transformBlock(prev, 99, 0);
    for (std::uint64_t ctr = 1; ctr < 50; ++ctr) {
        BlockData cur = pt;
        c.transformBlock(cur, 99, ctr);
        EXPECT_NE(cur, prev) << "ctr=" << ctr;
        prev = cur;
    }
}

TEST(CtrMode, KeySeparation)
{
    CtrCipher c1(makeKey(1, 1)), c2(makeKey(1, 2));
    BlockData a = patternBlock(0), b = patternBlock(0);
    c1.transformBlock(a, 0, 0);
    c2.transformBlock(b, 0, 0);
    EXPECT_NE(a, b);
}

} // namespace
} // namespace secdimm::crypto
