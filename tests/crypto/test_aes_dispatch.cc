/**
 * @file
 * Cross-implementation equivalence suite for the runtime-dispatched
 * AES backends (docs/PERFORMANCE.md): every implementation available
 * on this machine must agree bit-exactly with the FIPS-197 table path
 * on raw blocks, batch encryption, CTR keystreams, CMAC tags (single,
 * prefixed, and batched), and PMMAC tags -- and the whole
 * SecureMemorySystem must export identical metrics regardless of
 * which backend is forced.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/secure_memory_system.hh"
#include "crypto/aes128.hh"
#include "crypto/cmac.hh"
#include "crypto/cpu_features.hh"
#include "crypto/ctr_mode.hh"
#include "crypto/pmmac.hh"
#include "util/rng.hh"
#include "verify/channel_observer.hh"
#include "verify/trace_checker.hh"

namespace secdimm::crypto
{
namespace
{

/** RAII backend override so a failing test cannot leak the force. */
class ForcedImpl
{
  public:
    explicit ForcedImpl(AesImpl impl) { forceAesImpl(impl); }
    ~ForcedImpl() { clearForcedAesImpl(); }
};

/** Every implementation this machine can actually run. */
std::vector<AesImpl>
availableImpls()
{
    std::vector<AesImpl> impls{AesImpl::Table};
    if (aesNiSupported())
        impls.push_back(AesImpl::AesNi);
    if (armv8CryptoSupported())
        impls.push_back(AesImpl::Armv8);
    return impls;
}

Aes128Block
blockFromBytes(std::initializer_list<std::uint8_t> bytes)
{
    Aes128Block b{};
    std::size_t i = 0;
    for (auto v : bytes)
        b[i++] = v;
    return b;
}

Aes128Key
randomKey(Rng &rng)
{
    return makeKey(rng.next(), rng.next());
}

std::vector<std::uint8_t>
randomBytes(Rng &rng, std::size_t n)
{
    std::vector<std::uint8_t> v(n);
    for (auto &b : v)
        b = static_cast<std::uint8_t>(rng.next());
    return v;
}

/** FIPS-197 Appendix C.1 vector must hold on EVERY backend. */
TEST(AesDispatch, Fips197KnownAnswerOnEveryBackend)
{
    const Aes128Key key = blockFromBytes(
        {0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
         0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f});
    const Aes128Block pt = blockFromBytes(
        {0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
         0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff});
    const Aes128Block expected = blockFromBytes(
        {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30,
         0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a});

    for (AesImpl impl : availableImpls()) {
        ForcedImpl force(impl);
        Aes128 aes(key);
        ASSERT_EQ(aes.impl(), impl);
        EXPECT_EQ(aes.encrypt(pt), expected) << aesImplName(impl);
        EXPECT_EQ(aes.decrypt(expected), pt) << aesImplName(impl);
    }
}

/** Random blocks: every backend matches the table ciphertext. */
TEST(AesDispatch, RandomizedDifferentialEncryptDecrypt)
{
    Rng rng(0xd15c0);
    for (int trial = 0; trial < 50; ++trial) {
        const Aes128Key key = randomKey(rng);
        Aes128Block pt;
        for (auto &b : pt)
            b = static_cast<std::uint8_t>(rng.next());

        ForcedImpl table(AesImpl::Table);
        Aes128 ref(key);
        const Aes128Block ct = ref.encrypt(pt);
        clearForcedAesImpl();

        for (AesImpl impl : availableImpls()) {
            ForcedImpl force(impl);
            Aes128 aes(key);
            EXPECT_EQ(aes.encrypt(pt), ct) << aesImplName(impl);
            EXPECT_EQ(aes.decrypt(ct), pt) << aesImplName(impl);
        }
    }
}

/** encryptBlocks(n) must equal n independent encrypt() calls for
 *  every batch size around the 8-wide interleave boundary. */
TEST(AesDispatch, BatchMatchesSingleBlocks)
{
    Rng rng(0xba7c4);
    const Aes128Key key = randomKey(rng);
    for (AesImpl impl : availableImpls()) {
        ForcedImpl force(impl);
        Aes128 aes(key);
        for (std::size_t n = 1; n <= 17; ++n) {
            const std::vector<std::uint8_t> in = randomBytes(rng, 16 * n);
            std::vector<std::uint8_t> out(16 * n);
            aes.encryptBlocks(in.data(), out.data(), n);
            for (std::size_t i = 0; i < n; ++i) {
                Aes128Block one;
                std::copy(in.begin() + 16 * i, in.begin() + 16 * (i + 1),
                          one.begin());
                const Aes128Block expect = aes.encrypt(one);
                EXPECT_TRUE(std::equal(expect.begin(), expect.end(),
                                       out.begin() + 16 * i))
                    << aesImplName(impl) << " n=" << n << " i=" << i;
            }
        }
        // In-place batch must give the same answer.
        std::vector<std::uint8_t> buf = randomBytes(rng, 16 * 11);
        std::vector<std::uint8_t> copy = buf;
        std::vector<std::uint8_t> out(16 * 11);
        aes.encryptBlocks(copy.data(), out.data(), 11);
        aes.encryptBlocks(buf.data(), buf.data(), 11);
        EXPECT_EQ(buf, out) << aesImplName(impl);
    }
}

/** CTR keystreams are backend-independent at every length. */
TEST(AesDispatch, CtrKeystreamMatchesAcrossBackends)
{
    Rng rng(0xc7c7);
    const Aes128Key key = randomKey(rng);
    for (const std::size_t len : {0UL, 1UL, 15UL, 16UL, 17UL, 64UL,
                                  127UL, 128UL, 320UL, 1000UL}) {
        const std::vector<std::uint8_t> plain = randomBytes(rng, len);
        const std::uint64_t nonce = rng.next();
        const std::uint64_t counter = rng.next();

        ForcedImpl table(AesImpl::Table);
        CtrCipher ref(key);
        std::vector<std::uint8_t> expect = plain;
        ref.transformBuffer(expect.data(), expect.size(), nonce, counter);
        clearForcedAesImpl();

        for (AesImpl impl : availableImpls()) {
            ForcedImpl force(impl);
            CtrCipher c(key);
            std::vector<std::uint8_t> got = plain;
            c.transformBuffer(got.data(), got.size(), nonce, counter);
            EXPECT_EQ(got, expect)
                << aesImplName(impl) << " len=" << len;
            // Round-trip: CTR is an involution.
            c.transformBuffer(got.data(), got.size(), nonce, counter);
            EXPECT_EQ(got, plain)
                << aesImplName(impl) << " len=" << len;
        }
    }
}

/** CMAC: single, prefixed, and batched APIs agree across backends. */
TEST(AesDispatch, CmacAgreesAcrossBackendsAndApis)
{
    Rng rng(0xcac0);
    const Aes128Key key = randomKey(rng);
    const std::vector<std::size_t> lens{0,  1,  15, 16,  17,
                                        32, 33, 64, 320, 321};
    std::vector<std::vector<std::uint8_t>> msgs;
    for (std::size_t len : lens)
        msgs.push_back(randomBytes(rng, len));
    const std::vector<std::uint8_t> prefix = randomBytes(rng, 16);

    // Reference tags from the table path, batch of one per message.
    std::vector<Aes128Block> refPlain, refPrefixed;
    {
        ForcedImpl table(AesImpl::Table);
        Cmac ref(key);
        for (const auto &m : msgs) {
            refPlain.push_back(ref.compute(m.data(), m.size()));
            std::vector<std::uint8_t> cat = prefix;
            cat.insert(cat.end(), m.begin(), m.end());
            refPrefixed.push_back(ref.compute(cat.data(), cat.size()));
        }
    }

    for (AesImpl impl : availableImpls()) {
        ForcedImpl force(impl);
        Cmac mac(key);
        std::vector<CmacJob> plainJobs, prefixedJobs;
        for (std::size_t i = 0; i < msgs.size(); ++i) {
            EXPECT_TRUE(Cmac::tagsEqual(
                mac.compute(msgs[i].data(), msgs[i].size()),
                refPlain[i]))
                << aesImplName(impl) << " len=" << lens[i];
            EXPECT_TRUE(Cmac::tagsEqual(
                mac.computeWithPrefix(prefix.data(), msgs[i].data(),
                                      msgs[i].size()),
                refPrefixed[i]))
                << aesImplName(impl) << " len=" << lens[i];
            plainJobs.push_back(
                CmacJob{nullptr, msgs[i].data(), msgs[i].size()});
            prefixedJobs.push_back(
                CmacJob{prefix.data(), msgs[i].data(), msgs[i].size()});
        }
        std::vector<Aes128Block> got(msgs.size());
        mac.computeBatch(plainJobs.data(), plainJobs.size(), got.data());
        for (std::size_t i = 0; i < msgs.size(); ++i) {
            EXPECT_TRUE(Cmac::tagsEqual(got[i], refPlain[i]))
                << aesImplName(impl) << " batch len=" << lens[i];
        }
        mac.computeBatch(prefixedJobs.data(), prefixedJobs.size(),
                         got.data());
        for (std::size_t i = 0; i < msgs.size(); ++i) {
            EXPECT_TRUE(Cmac::tagsEqual(got[i], refPrefixed[i]))
                << aesImplName(impl) << " batch+prefix len=" << lens[i];
        }
    }
}

/** PMMAC tags (single and batched) are backend-independent. */
TEST(AesDispatch, PmmacAgreesAcrossBackends)
{
    Rng rng(0x9a9a);
    const Aes128Key key = randomKey(rng);
    std::vector<std::vector<std::uint8_t>> payloads;
    std::vector<PmmacItem> items;
    for (int i = 0; i < 12; ++i)
        payloads.push_back(randomBytes(rng, 320));
    for (int i = 0; i < 12; ++i) {
        items.push_back(PmmacItem{rng.next(), rng.next(),
                                  payloads[i].data(),
                                  payloads[i].size()});
    }

    std::vector<Tag64> ref(items.size());
    {
        ForcedImpl table(AesImpl::Table);
        Pmmac mac(key);
        for (std::size_t i = 0; i < items.size(); ++i) {
            ref[i] = mac.tag(items[i].id, items[i].counter,
                             items[i].data, items[i].len);
        }
    }

    for (AesImpl impl : availableImpls()) {
        ForcedImpl force(impl);
        Pmmac mac(key);
        std::vector<Tag64> got(items.size());
        mac.tagBatch(items.data(), items.size(), got.data());
        const std::unique_ptr<bool[]> ok(new bool[items.size()]);
        EXPECT_TRUE(mac.verifyBatch(items.data(), items.size(),
                                    ref.data(), ok.get()))
            << aesImplName(impl);
        for (std::size_t i = 0; i < items.size(); ++i) {
            EXPECT_EQ(got[i], ref[i]) << aesImplName(impl) << " " << i;
            EXPECT_TRUE(mac.verify(items[i].id, items[i].counter,
                                   items[i].data, items[i].len, ref[i]))
                << aesImplName(impl) << " " << i;
        }
        // A wrong tag must fail exactly the corrupted item.
        std::vector<Tag64> bad = ref;
        bad[3] ^= 1;
        EXPECT_FALSE(mac.verifyBatch(items.data(), items.size(),
                                     bad.data(), ok.get()));
        for (std::size_t i = 0; i < items.size(); ++i)
            EXPECT_EQ(ok[i], i != 3) << aesImplName(impl) << " " << i;
    }
}

/** The accelerated path must be active when hardware supports it --
 *  this is the guard behind the >=5x benchmark acceptance claim. */
TEST(AesDispatch, HardwarePathSelectedWhenAvailable)
{
    if (!aesNiSupported() && !armv8CryptoSupported())
        GTEST_SKIP() << "no accelerated AES implementation on this host";
    clearForcedAesImpl();
    Aes128 aes(makeKey(1, 2));
    // Env override may legitimately pin the table path; only assert
    // hardware selection when no override is in play.
    if (const char *env = std::getenv("SDIMM_AES_IMPL");
        env == nullptr || std::string(env) == "auto") {
        EXPECT_NE(aes.impl(), AesImpl::Table);
    }
}

/**
 * End-to-end implementation-independence: a full SecureMemorySystem
 * run must produce identical access results and identical metrics
 * (minus the impl id gauge) no matter which backend is forced --
 * obliviousness and functional behavior cannot depend on dispatch.
 */
TEST(AesDispatch, SystemBehaviorIdenticalAcrossBackends)
{
    const auto impls = availableImpls();
    if (impls.size() < 2)
        GTEST_SKIP() << "only one AES implementation on this host";

    auto runOnce = [](AesImpl impl) {
        ForcedImpl force(impl);
        core::SecureMemorySystem::Options opt;
        opt.protocol = core::SecureMemorySystem::Protocol::PathOram;
        opt.capacityBytes = 256 * blockBytes;
        opt.seed = 42;
        core::SecureMemorySystem sys(opt);
        const std::uint64_t blocks = sys.capacityBytes() / blockBytes;
        Rng rng(7);
        std::string log;
        for (int i = 0; i < 200; ++i) {
            const Addr a = rng.nextBelow(blocks);
            if (rng.nextBool(0.5)) {
                BlockData d{};
                d[0] = static_cast<std::uint8_t>(i);
                sys.writeBlock(a, d);
            } else {
                const BlockData d = sys.readBlock(a);
                log.append(reinterpret_cast<const char *>(d.data()),
                           d.size());
            }
        }
        util::MetricsRegistry m = sys.metrics();
        // The impl id gauge is the one legitimate difference.
        m.setGauge("crypto.impl_id", 0.0);
        return log + "\n" + m.toJson();
    };

    const std::string ref = runOnce(impls[0]);
    for (std::size_t i = 1; i < impls.size(); ++i)
        EXPECT_EQ(runOnce(impls[i]), ref) << aesImplName(impls[i]);
}

/**
 * The trace checker's obliviousness verdict must not depend on which
 * AES backend ran: the externally visible event stream is a function
 * of the access pattern alone, so forcing different backends over the
 * same seeded workload must yield the exact same trace (and hence an
 * indistinguishable compareTraces verdict).
 */
TEST(AesDispatch, TraceCheckerVerdictImplIndependent)
{
    const auto impls = availableImpls();
    if (impls.size() < 2)
        GTEST_SKIP() << "only one AES implementation on this host";

    auto observeRun = [](AesImpl impl) {
        ForcedImpl force(impl);
        core::SecureMemorySystem::Options opt;
        opt.protocol = core::SecureMemorySystem::Protocol::PathOram;
        opt.capacityBytes = 256 * blockBytes;
        opt.seed = 9;
        core::SecureMemorySystem sys(opt);
        auto obs = std::make_unique<verify::ChannelObserver>();
        sys.attachObserver(*obs);
        const std::uint64_t blocks = sys.capacityBytes() / blockBytes;
        Rng rng(11);
        for (int i = 0; i < 100; ++i) {
            const Addr a = rng.nextBelow(blocks);
            if (rng.nextBool(0.5)) {
                BlockData d{};
                d[0] = static_cast<std::uint8_t>(i);
                sys.writeBlock(a, d);
            } else {
                sys.readBlock(a);
            }
        }
        return obs->events();
    };

    const auto ref = observeRun(impls[0]);
    ASSERT_FALSE(ref.empty());
    for (std::size_t i = 1; i < impls.size(); ++i) {
        const auto other = observeRun(impls[i]);
        ASSERT_EQ(other.size(), ref.size()) << aesImplName(impls[i]);
        for (std::size_t e = 0; e < ref.size(); ++e) {
            ASSERT_EQ(other[e].kind, ref[e].kind)
                << aesImplName(impls[i]) << " event " << e;
            ASSERT_EQ(other[e].addr, ref[e].addr)
                << aesImplName(impls[i]) << " event " << e;
        }
        const auto cmp = verify::compareTraces(ref, other);
        EXPECT_TRUE(cmp.indistinguishable) << cmp.summary();
    }
}

/* ------------------------------------------------------------------ */
/* SDIMM_AES_IMPL grammar                                              */
/* ------------------------------------------------------------------ */

/** Every string the knob accepts, with its expected meaning. */
TEST(AesImplSetting, AcceptedStringsParseExactly)
{
    struct Case
    {
        const char *value;
        bool isAuto;
        AesImpl impl;
    };
    const Case cases[] = {
        {nullptr, true, AesImpl::Table},
        {"", true, AesImpl::Table},
        {"auto", true, AesImpl::Table},
        {"table", false, AesImpl::Table},
        {"aesni", false, AesImpl::AesNi},
        {"armv8", false, AesImpl::Armv8},
    };
    for (const Case &c : cases) {
        const auto parsed = parseAesImplSetting(c.value);
        ASSERT_TRUE(parsed.has_value())
            << "rejected \"" << (c.value ? c.value : "<unset>") << "\"";
        EXPECT_EQ(parsed->isAuto, c.isAuto)
            << (c.value ? c.value : "<unset>");
        if (!c.isAuto) {
            EXPECT_EQ(parsed->impl, c.impl) << c.value;
        }
    }
}

/** Everything else -- typos, case variants, whitespace, synonyms --
 *  must be rejected, never silently coerced to a backend. */
TEST(AesImplSetting, RejectedStringsReturnNullopt)
{
    const char *bad[] = {
        "Table",  "TABLE",  "AesNi",  "AESNI",  "aes-ni", "aes_ni",
        "ARMv8",  "armv-8", "neon",   "tables", "autoo",  "aut",
        " table", "table ", "table\n", "auto ",  " ",      "0",
        "1",      "none",   "best",   "hw",     "soft",   "default",
    };
    for (const char *value : bad) {
        EXPECT_FALSE(parseAesImplSetting(value).has_value())
            << "accepted \"" << value << "\"";
    }
}

/** An invalid env value is a fatal config error at first resolution --
 *  a typo must not silently run on a different AES path. */
TEST(AesImplSetting, UnknownEnvValueDiesLoudly)
{
    // threadsafe style re-executes the binary, so the child resolves
    // the env knob from scratch instead of reusing this process's
    // cached resolution.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_EXIT(
        {
            setenv("SDIMM_AES_IMPL", "quantum", 1);
            clearForcedAesImpl();
            activeAesImpl();
        },
        ::testing::ExitedWithCode(1), "invalid SDIMM_AES_IMPL");
}

} // namespace
} // namespace secdimm::crypto
