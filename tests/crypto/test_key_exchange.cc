#include <gtest/gtest.h>

#include "crypto/key_exchange.hh"

namespace secdimm::crypto
{
namespace
{

TEST(KeyExchange, ModPowBasics)
{
    EXPECT_EQ(dhModPow(2, 0), 1u);
    EXPECT_EQ(dhModPow(2, 1), 2u);
    EXPECT_EQ(dhModPow(2, 10), 1024u);
    // Fermat: g^(p-1) == 1 mod p for prime p.
    EXPECT_EQ(dhModPow(dhGenerator, dhModulus - 1), 1u);
}

TEST(KeyExchange, SharedSecretAgrees)
{
    Rng rng(2024);
    for (int trial = 0; trial < 10; ++trial) {
        const DhKeyPair cpu = dhGenerate(rng);
        const DhKeyPair dimm = dhGenerate(rng);
        const auto s1 = dhShared(cpu.priv, dimm.pub);
        const auto s2 = dhShared(dimm.priv, cpu.pub);
        EXPECT_EQ(s1, s2);
    }
}

TEST(KeyExchange, DistinctSessionsDistinctSecrets)
{
    Rng rng(7);
    const DhKeyPair a1 = dhGenerate(rng);
    const DhKeyPair b1 = dhGenerate(rng);
    const DhKeyPair a2 = dhGenerate(rng);
    const DhKeyPair b2 = dhGenerate(rng);
    EXPECT_NE(dhShared(a1.priv, b1.pub), dhShared(a2.priv, b2.pub));
}

TEST(KeyExchange, DerivedKeysDirectionSeparated)
{
    const std::uint64_t shared = 0x1234567890abcdefULL & (dhModulus - 1);
    const auto up = deriveSessionKey(shared, 0);
    const auto down = deriveSessionKey(shared, 1);
    EXPECT_NE(up, down);
    // Deterministic on both ends.
    EXPECT_EQ(deriveSessionKey(shared, 0), up);
}

TEST(KeyExchange, DifferentSecretsDifferentKeys)
{
    EXPECT_NE(deriveSessionKey(1, 0), deriveSessionKey(2, 0));
}

TEST(KeyExchange, PublicKeyInGroup)
{
    Rng rng(99);
    for (int i = 0; i < 20; ++i) {
        const DhKeyPair kp = dhGenerate(rng);
        EXPECT_GT(kp.pub, 0u);
        EXPECT_LT(kp.pub, dhModulus);
    }
}

} // namespace
} // namespace secdimm::crypto
