#include <gtest/gtest.h>

#include "analytic/area_model.hh"
#include "analytic/mm1k.hh"

namespace secdimm::analytic
{
namespace
{

TEST(Mm1k, UtilizationFormula)
{
    // rho = 0.25 / (0.25 + p), Section IV-C.
    EXPECT_DOUBLE_EQ(mm1kUtilization(0.0), 1.0);
    EXPECT_DOUBLE_EQ(mm1kUtilization(0.25), 0.5);
    EXPECT_DOUBLE_EQ(mm1kUtilization(0.75), 0.25);
}

TEST(Mm1k, SaturatedQueueBlocking)
{
    // rho == 1: uniform occupancy, blocking = 1/(K+1).
    EXPECT_NEAR(mm1kBlockingProbability(1.0, 16), 1.0 / 17, 1e-12);
}

TEST(Mm1k, BlockingDropsWithQueueSize)
{
    const double rho = 0.5;
    double prev = 1;
    for (unsigned k : {2u, 4u, 8u, 16u, 32u}) {
        const double p = mm1kBlockingProbability(rho, k);
        EXPECT_LT(p, prev);
        prev = p;
    }
    // 32 slots at rho=0.5: essentially never overflows.
    EXPECT_LT(prev, 1e-9);
}

TEST(Mm1k, BlockingDropsWithDrainProbability)
{
    double prev = 1;
    for (double p : {0.05, 0.1, 0.25, 0.5}) {
        const double blocking = transferQueueOverflow(p, 16);
        EXPECT_LT(blocking, prev);
        prev = blocking;
    }
}

TEST(Mm1k, Figure13bSmallQueueSmallPSuffices)
{
    // The paper's takeaway: "even a small queue has a very small
    // overflow rate if we occasionally service an incoming block".
    EXPECT_LT(transferQueueOverflow(0.25, 32), 1e-8);
    EXPECT_LT(transferQueueOverflow(0.1, 64), 1e-8);
    // Without drains a small queue saturates.
    EXPECT_GT(transferQueueOverflow(0.0, 32), 0.025);
}

TEST(Mm1k, OccupancySumsToOne)
{
    for (double rho : {0.3, 0.5, 1.0}) {
        const auto pi = mm1kOccupancy(rho, 16);
        double sum = 0;
        for (double p : pi)
            sum += p;
        EXPECT_NEAR(sum, 1.0, 1e-9) << "rho=" << rho;
    }
}

TEST(Mm1k, MeanOccupancyIncreasesWithRho)
{
    EXPECT_LT(mm1kMeanOccupancy(0.3, 16), mm1kMeanOccupancy(0.7, 16));
    EXPECT_LT(mm1kMeanOccupancy(0.7, 16), mm1kMeanOccupancy(1.0, 16));
}

TEST(AreaModel, PaperAnchor)
{
    // Section IV-B: controller 0.47 mm^2 + 8KB buffer < 0.42 mm^2,
    // total < 1 mm^2.
    const SecureBufferArea a = secureBufferArea(8192);
    EXPECT_DOUBLE_EQ(a.oramControllerMm2, 0.47);
    EXPECT_LE(a.bufferMm2, 0.42 + 1e-9);
    EXPECT_LT(a.totalMm2(), 1.0);
}

TEST(AreaModel, SramScalesWithCapacity)
{
    EXPECT_LT(sramAreaMm2(4096), sramAreaMm2(8192));
    EXPECT_LT(sramAreaMm2(8192), sramAreaMm2(16384));
    EXPECT_DOUBLE_EQ(sramAreaMm2(0), 0.0);
}

} // namespace
} // namespace secdimm::analytic
