#include <gtest/gtest.h>

#include "analytic/random_walk.hh"

namespace secdimm::analytic
{
namespace
{

TEST(RandomWalk, ZeroStepsNoOverflow)
{
    EXPECT_DOUBLE_EQ(overflowProbability(0, 16), 0.0);
}

TEST(RandomWalk, OverflowMonotonicInSteps)
{
    double prev = 0;
    for (std::uint64_t steps : {100u, 1000u, 10000u, 50000u}) {
        const double p = overflowProbability(steps, 16);
        EXPECT_GE(p, prev);
        prev = p;
    }
    EXPECT_GT(prev, 0.5);
}

TEST(RandomWalk, OverflowMonotonicInBufferSize)
{
    const std::uint64_t steps = 100000;
    const double p16 = overflowProbability(steps, 16);
    const double p64 = overflowProbability(steps, 64);
    const double p256 = overflowProbability(steps, 256);
    EXPECT_GT(p16, p64);
    EXPECT_GT(p64, p256);
}

TEST(RandomWalk, Figure13aAnchorPoints)
{
    // Paper: the 16-entry buffer reaches ~97% overflow probability by
    // 100K steps; at 800K steps the larger buffers reach ~91% (64),
    // ~70% (256), ~10% (1024).
    EXPECT_NEAR(overflowProbability(100000, 16), 0.97, 0.03);
    EXPECT_NEAR(overflowProbability(800000, 64), 0.91, 0.04);
    EXPECT_NEAR(overflowProbability(800000, 256), 0.70, 0.05);
    EXPECT_NEAR(overflowProbability(800000, 1024), 0.10, 0.05);
}

TEST(RandomWalk, SimulationMatchesRecursion)
{
    const std::uint64_t steps = 20000;
    const unsigned bound = 32;
    const double exact = overflowProbability(steps, bound);
    const double sim =
        simulateOverflowProbability(steps, bound, 2000, 77);
    EXPECT_NEAR(sim, exact, 0.05);
}

TEST(RandomWalk, ReflectingQueueOverflowsFaster)
{
    // The physical queue (reflecting at zero) cannot waste time on
    // negative excursions, so it overflows sooner than the paper's
    // free walk.
    WalkParams reflect;
    reflect.reflectAtZero = true;
    const double p_free = overflowProbability(50000, 64);
    const double p_reflect = overflowProbability(50000, 64, reflect);
    EXPECT_GT(p_reflect, p_free);
}

TEST(RandomWalk, ReflectingSimulationMatchesRecursion)
{
    WalkParams reflect;
    reflect.reflectAtZero = true;
    const double exact = overflowProbability(10000, 32, reflect);
    const double sim = simulateOverflowProbability(10000, 32, 2000, 99,
                                                   reflect);
    EXPECT_NEAR(sim, exact, 0.05);
}

TEST(RandomWalk, AsymmetricWalkDrainsFaster)
{
    WalkParams drained;
    drained.pUp = 0.25;
    drained.pDown = 0.5; // Extra drain ops.
    const double p_sym = overflowProbability(100000, 64);
    const double p_drained = overflowProbability(100000, 64, drained);
    EXPECT_LT(p_drained, p_sym);
    EXPECT_LT(p_drained, 1e-3);
}

} // namespace
} // namespace secdimm::analytic
