/**
 * @file
 * The sharded service's two correctness-of-schedule contracts:
 *
 *  1. Per-shard determinism: with fixed seeds, each shard's
 *     externally visible command schedule is bit-identical to a
 *     single-threaded SecureMemorySystem given the same per-shard
 *     request subsequence -- thread interleaving between shards
 *     cannot perturb any one shard's schedule.
 *
 *  2. Shard-local obliviousness: each shard's visible trace for two
 *     workloads with identical structure but disjoint addresses is
 *     statistically indistinguishable (the existing trace checker,
 *     applied per shard).
 */

#include <gtest/gtest.h>

#include <vector>

#include "serve/sharded_memory.hh"
#include "util/rng.hh"
#include "verify/channel_observer.hh"
#include "verify/trace_checker.hh"

namespace secdimm::serve
{
namespace
{

using verify::ChannelObserver;
using verify::TraceEvent;

constexpr unsigned kShards = 2;

ShardedSecureMemory::Options
pathOramOptions()
{
    ShardedSecureMemory::Options opt;
    opt.shard.protocol = core::SecureMemorySystem::Protocol::PathOram;
    opt.shard.capacityBytes = 1 << 16;
    opt.shard.seed = 33;
    opt.numShards = kShards;
    opt.queueCapacity = 8;
    opt.maxBatch = 4;
    return opt;
}

struct Op
{
    Addr block;
    bool write;
    BlockData data;
};

/** Reproducible op sequence over [base, base + region) blocks. */
std::vector<Op>
makeOps(std::uint64_t structure_seed, std::uint64_t base,
        std::uint64_t region, std::size_t count)
{
    Rng rng(structure_seed);
    std::vector<Op> ops;
    std::vector<std::uint64_t> pool;
    ops.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        std::uint64_t idx;
        if (!pool.empty() && rng.nextBool(0.3)) {
            idx = pool[rng.nextBelow(pool.size())];
        } else {
            idx = rng.nextBelow(region);
            pool.push_back(idx);
        }
        Op op;
        op.block = base + idx;
        op.write = rng.nextBool(0.5);
        op.data = BlockData{};
        op.data[0] = static_cast<std::uint8_t>(i);
        ops.push_back(op);
    }
    return ops;
}

bool
sameTrace(const std::vector<TraceEvent> &a,
          const std::vector<TraceEvent> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].kind != b[i].kind || a[i].addr != b[i].addr ||
            a[i].at != b[i].at)
            return false;
    }
    return true;
}

TEST(ShardedDeterminism, PerShardScheduleMatchesSingleThreadedBaseline)
{
    const ShardedSecureMemory::Options opt = pathOramOptions();
    const auto ops = makeOps(42, 0, 128, 200);

    // Sharded run, one observer per shard.
    std::vector<ChannelObserver> sharded_obs(kShards);
    {
        ShardedSecureMemory mem(opt);
        for (unsigned s = 0; s < kShards; ++s)
            ASSERT_GT(mem.attachObserver(s, sharded_obs[s]), 0u);
        for (const Op &op : ops) {
            if (op.write)
                mem.writeBlock(op.block, op.data);
            else
                mem.readBlock(op.block);
        }
        mem.shutdown();
    }

    // Single-threaded baseline: the identical per-shard options, fed
    // the identical per-shard request subsequence.
    for (unsigned s = 0; s < kShards; ++s) {
        core::SecureMemorySystem solo(
            ShardedSecureMemory::shardOptions(opt, s));
        ChannelObserver solo_obs;
        ASSERT_GT(solo.attachObserver(solo_obs), 0u);
        for (const Op &op : ops) {
            if (op.block % kShards != s)
                continue;
            if (op.write)
                solo.writeBlock(op.block / kShards, op.data);
            else
                solo.readBlock(op.block / kShards);
        }
        EXPECT_FALSE(sharded_obs[s].events().empty());
        EXPECT_TRUE(sameTrace(sharded_obs[s].events(),
                              solo_obs.events()))
            << "shard " << s
            << " schedule diverged from the single-threaded baseline "
            << "(" << sharded_obs[s].events().size() << " vs "
            << solo_obs.events().size() << " events)";
    }
}

TEST(ShardedDeterminism, RepeatedRunsAreByteIdentical)
{
    const auto run = [] {
        const ShardedSecureMemory::Options opt = pathOramOptions();
        ShardedSecureMemory mem(opt);
        const auto ops = makeOps(7, 0, 128, 150);
        std::string reads;
        for (const Op &op : ops) {
            if (op.write)
                mem.writeBlock(op.block, op.data);
            else
                reads.push_back(
                    static_cast<char>(mem.readBlock(op.block)[0]));
        }
        std::vector<std::string> shard_json;
        for (unsigned s = 0; s < kShards; ++s)
            shard_json.push_back(mem.shardMetrics(s).toJson());
        return std::make_pair(reads, shard_json);
    };
    const auto a = run();
    const auto b = run();
    EXPECT_EQ(a.first, b.first);
    // Per-shard protocol metrics (leaf draws, stash peaks, bucket
    // traffic) are reproducible run to run; the serve.* timing
    // counters are deliberately excluded -- wall clock is not part of
    // the determinism contract.
    EXPECT_EQ(a.second, b.second);
}

TEST(ShardedDeterminism, ObliviousnessIsShardLocal)
{
    const auto trace = [](std::uint64_t service_seed,
                          std::uint64_t base) {
        ShardedSecureMemory::Options opt = pathOramOptions();
        opt.shard.seed = service_seed;
        ShardedSecureMemory mem(opt);
        std::vector<ChannelObserver> obs(kShards);
        for (unsigned s = 0; s < kShards; ++s)
            EXPECT_GT(mem.attachObserver(s, obs[s]), 0u);
        // Same structure, disjoint halves of the block space.
        const auto ops = makeOps(42, base, 128, 512);
        for (const Op &op : ops) {
            if (op.write)
                mem.writeBlock(op.block, op.data);
            else
                mem.readBlock(op.block);
        }
        mem.shutdown();
        std::vector<std::vector<TraceEvent>> out;
        for (auto &o : obs)
            out.push_back(o.events());
        return out;
    };
    const auto lo = trace(11, 0);
    const auto hi = trace(77, 128 * kShards);
    for (unsigned s = 0; s < kShards; ++s) {
        ASSERT_FALSE(lo[s].empty());
        ASSERT_FALSE(hi[s].empty());
        const verify::TraceComparison c =
            verify::compareTraces(lo[s], hi[s]);
        EXPECT_TRUE(c.indistinguishable)
            << "shard " << s << ": " << c.summary();
    }
}

} // namespace
} // namespace secdimm::serve
