/**
 * @file
 * Multi-threaded stress over the sharded service: C concurrent
 * clients, each owning a disjoint slice of the block space that spans
 * every shard, mixing sync and async traffic.  Each client checks
 * read-your-writes against its own shadow copy -- per-client program
 * order must survive arbitrary cross-client interleaving.  This is
 * the suite the TSan CI job leans on.
 */

#include <gtest/gtest.h>

#include <future>
#include <thread>
#include <vector>

#include "serve/sharded_memory.hh"
#include "util/rng.hh"

namespace secdimm::serve
{
namespace
{

constexpr unsigned kClients = 4;
constexpr unsigned kOpsPerClient = 120;
constexpr unsigned kBlocksPerClient = 24;

ShardedSecureMemory::Options
stressOptions()
{
    ShardedSecureMemory::Options opt;
    opt.shard.protocol = core::SecureMemorySystem::Protocol::PathOram;
    opt.shard.capacityBytes = 1 << 16;
    opt.shard.seed = 5;
    opt.numShards = 4;
    opt.queueCapacity = 8;
    opt.maxBatch = 4;
    return opt;
}

/** Client c owns a contiguous block range crossing all shards. */
Addr
clientBlock(unsigned client, unsigned i)
{
    return static_cast<Addr>(client) * kBlocksPerClient +
           i % kBlocksPerClient;
}

void
clientMix(ShardedSecureMemory &mem, unsigned client)
{
    Rng rng(1000 + client);
    std::vector<BlockData> shadow(kBlocksPerClient, BlockData{});
    std::vector<bool> written(kBlocksPerClient, false);
    for (unsigned i = 0; i < kOpsPerClient; ++i) {
        const unsigned slot =
            static_cast<unsigned>(rng.nextBelow(kBlocksPerClient));
        const Addr block = clientBlock(client, slot);
        if (rng.nextBool(0.5) || !written[slot]) {
            BlockData d{};
            d[0] = static_cast<std::uint8_t>(client);
            d[1] = static_cast<std::uint8_t>(i);
            d[2] = static_cast<std::uint8_t>(slot);
            if (rng.nextBool(0.5)) {
                mem.writeBlock(block, d);
            } else {
                mem.submitWrite(block, d).get();
            }
            shadow[slot] = d;
            written[slot] = true;
        } else {
            const BlockData got = rng.nextBool(0.5)
                                      ? mem.readBlock(block)
                                      : mem.submitRead(block).get();
            EXPECT_EQ(got, shadow[slot])
                << "client " << client << " slot " << slot
                << " lost read-your-writes at op " << i;
        }
    }
}

TEST(ShardedStress, ConcurrentClientsKeepReadYourWrites)
{
    ShardedSecureMemory mem(stressOptions());
    ASSERT_GE(mem.capacityBlocks(),
              static_cast<std::uint64_t>(kClients) * kBlocksPerClient);
    std::vector<std::thread> clients;
    for (unsigned c = 0; c < kClients; ++c)
        clients.emplace_back([&mem, c] { clientMix(mem, c); });
    for (auto &t : clients)
        t.join();
    EXPECT_TRUE(mem.integrityOk());
    const util::MetricsRegistry m = mem.metrics();
    EXPECT_GT(m.counter("serve.requests"), 0u);
    EXPECT_EQ(m.counter("core.audit_violations"), 0u);
}

TEST(ShardedStress, PipelinedAsyncWindowsAcrossClients)
{
    ShardedSecureMemory mem(stressOptions());
    std::vector<std::thread> clients;
    for (unsigned c = 0; c < kClients; ++c) {
        clients.emplace_back([&mem, c] {
            // Keep a window of futures in flight, exercising the
            // backpressure path (windows exceed queueCapacity).
            std::vector<std::future<void>> window;
            for (unsigned i = 0; i < kOpsPerClient; ++i) {
                BlockData d{};
                d[0] = static_cast<std::uint8_t>(c);
                window.push_back(
                    mem.submitWrite(clientBlock(c, i), d));
                if (window.size() >= 16) {
                    for (auto &f : window)
                        f.get();
                    window.clear();
                }
            }
            for (auto &f : window)
                f.get();
            // Every block the client touched now reads back its tag.
            for (unsigned i = 0; i < kBlocksPerClient; ++i) {
                EXPECT_EQ(mem.readBlock(clientBlock(c, i))[0],
                          static_cast<std::uint8_t>(c));
            }
        });
    }
    for (auto &t : clients)
        t.join();
    mem.drain();
    EXPECT_TRUE(mem.integrityOk());
}

TEST(ShardedStress, ShutdownRacesWithActiveClients)
{
    // Clients keep submitting while another thread shuts the service
    // down; accepted requests complete, late ones throw cleanly, and
    // nothing leaks (the ASan job) or races (the TSan job).
    ShardedSecureMemory mem(stressOptions());
    std::vector<std::thread> clients;
    std::atomic<unsigned> rejected{0};
    for (unsigned c = 0; c < kClients; ++c) {
        clients.emplace_back([&mem, &rejected, c] {
            std::vector<std::future<void>> fs;
            for (unsigned i = 0; i < kOpsPerClient; ++i) {
                try {
                    fs.push_back(
                        mem.submitWrite(clientBlock(c, i), BlockData{}));
                } catch (const std::runtime_error &) {
                    ++rejected;
                    break;
                }
            }
            for (auto &f : fs)
                f.get(); // Accepted => completed, even past shutdown.
        });
    }
    std::this_thread::yield();
    mem.shutdown();
    for (auto &t : clients)
        t.join();
    SUCCEED(); // Contract: no hang, no broken promise, no crash.
}

} // namespace
} // namespace secdimm::serve
