/**
 * @file
 * BoundedMpscQueue unit tests: FIFO order, batch pop bounds, the
 * blocking backpressure path, close semantics (accepted items still
 * drain, later pushes are rejected), and the congestion counters.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "serve/request_queue.hh"

namespace secdimm::serve
{
namespace
{

TEST(BoundedMpscQueue, FifoOrderAndBatchBound)
{
    BoundedMpscQueue<int> q(16);
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(q.push(i));
    std::vector<int> out;
    EXPECT_EQ(q.popBatch(out, 4), 4u);
    EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(q.popBatch(out, 100), 6u); // Drains the rest, appended.
    EXPECT_EQ(out.size(), 10u);
    EXPECT_EQ(out.back(), 9);
    EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedMpscQueue, PushBlocksWhenFullUntilConsumerDrains)
{
    BoundedMpscQueue<int> q(2);
    EXPECT_TRUE(q.push(1));
    EXPECT_TRUE(q.push(2));
    std::thread producer([&] {
        EXPECT_TRUE(q.push(3)); // Blocks until the pop below.
    });
    // Give the producer a moment to hit the full queue.  (A sleep
    // cannot prove blocking, but the stall counter below can.)
    while (q.pushStalls() == 0)
        std::this_thread::yield();
    std::vector<int> out;
    EXPECT_GE(q.popBatch(out, 1), 1u);
    producer.join();
    EXPECT_EQ(q.pushStalls(), 1u);
    EXPECT_EQ(q.highWater(), 2u); // Never exceeded capacity.
    std::vector<int> rest;
    q.popBatch(rest, 10);
    EXPECT_EQ(rest, (std::vector<int>{2, 3}));
}

TEST(BoundedMpscQueue, CloseDrainsAcceptedThenRejects)
{
    BoundedMpscQueue<int> q(8);
    EXPECT_TRUE(q.push(1));
    EXPECT_TRUE(q.push(2));
    q.close();
    EXPECT_FALSE(q.push(3)); // Rejected after close.
    std::vector<int> out;
    EXPECT_EQ(q.popBatch(out, 10), 2u); // Accepted items still drain.
    EXPECT_EQ(q.popBatch(out, 10), 0u); // 0 = closed and empty.
    EXPECT_TRUE(q.closed());
}

TEST(BoundedMpscQueue, CloseWakesBlockedProducer)
{
    BoundedMpscQueue<int> q(1);
    EXPECT_TRUE(q.push(1));
    std::thread producer([&] {
        EXPECT_FALSE(q.push(2)); // Blocked on full, woken by close.
    });
    while (q.pushStalls() == 0)
        std::this_thread::yield();
    q.close();
    producer.join();
    EXPECT_GT(q.stallNs(), 0u);
}

TEST(BoundedMpscQueue, ManyProducersOneConsumer)
{
    constexpr unsigned kProducers = 4;
    constexpr int kPerProducer = 500;
    BoundedMpscQueue<int> q(8);
    std::vector<std::thread> producers;
    for (unsigned p = 0; p < kProducers; ++p) {
        producers.emplace_back([&q, p] {
            for (int i = 0; i < kPerProducer; ++i)
                ASSERT_TRUE(q.push(static_cast<int>(p) * kPerProducer + i));
        });
    }
    std::vector<int> all;
    while (all.size() < kProducers * kPerProducer)
        q.popBatch(all, 7);
    for (auto &p : producers)
        p.join();
    // Per-producer FIFO survives interleaving.
    std::vector<int> last(kProducers, -1);
    for (int v : all) {
        const int p = v / kPerProducer;
        EXPECT_LT(last[p], v % kPerProducer);
        last[p] = v % kPerProducer;
    }
    EXPECT_LE(q.highWater(), 8u);
}

TEST(BoundedMpscQueue, CloseWhileProducersBlockedOnFullQueue)
{
    // Producers parked in push() on a FULL queue must all unblock at
    // close() with a definite outcome: the item is rejected (false),
    // never silently enqueued past the close nor left hanging.
    constexpr unsigned kProducers = 3;
    BoundedMpscQueue<int> q(2);
    ASSERT_TRUE(q.push(100));
    ASSERT_TRUE(q.push(101));

    std::atomic<unsigned> rejected{0};
    std::vector<std::thread> producers;
    for (unsigned p = 0; p < kProducers; ++p) {
        producers.emplace_back([&q, &rejected, p] {
            if (!q.push(static_cast<int>(200 + p)))
                ++rejected;
        });
    }
    // Wait until every producer is provably parked on the full queue.
    while (q.pushStalls() < kProducers)
        std::this_thread::yield();

    q.close();
    for (auto &p : producers)
        p.join();
    EXPECT_EQ(rejected.load(), kProducers);

    // Items accepted before the close still drain, then the consumer
    // sees the closed-and-empty signal.
    std::vector<int> out;
    EXPECT_EQ(q.popBatch(out, 10), 2u);
    EXPECT_EQ(out, (std::vector<int>{100, 101}));
    EXPECT_EQ(q.popBatch(out, 10), 0u);
    EXPECT_FALSE(q.push(7));
}

} // namespace
} // namespace secdimm::serve
