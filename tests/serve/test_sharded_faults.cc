/**
 * @file
 * Async batching under transient fault injection: the sharded service
 * keeps its futures contract while every shard's FaultInjector is
 * detecting and retrying DRAM/link faults underneath.  Checks per
 * shard that detected == recovered and unrecovered == 0 (transient
 * plans always heal), that the campaign actually fired
 * (injected > 0), and that data plus per-block FIFO future order
 * survive the retries.
 */

#include <gtest/gtest.h>

#include <future>
#include <unordered_map>
#include <vector>

#include "serve/sharded_memory.hh"
#include "util/rng.hh"

namespace secdimm::serve
{
namespace
{

ShardedSecureMemory::Options
faultyOptions(unsigned shards, std::uint64_t seed)
{
    ShardedSecureMemory::Options opt;
    opt.shard.protocol = core::SecureMemorySystem::Protocol::PathOram;
    opt.shard.capacityBytes = 1 << 16;
    opt.shard.seed = seed;
    opt.shard.faultPlan.dramBitFlipRate = 0.01;
    opt.shard.faultPlan.linkCorruptRate = 0.005;
    opt.shard.faultPlan.maxRetries = 6;
    opt.shard.faultPlan.seed = seed * 13 + 1;
    opt.shard.degradationPolicy = fault::DegradationPolicy::RetryThenStop;
    opt.numShards = shards;
    opt.queueCapacity = 32;
    opt.maxBatch = 4;
    return opt;
}

BlockData
stamp(std::uint64_t tag)
{
    BlockData d{};
    for (std::size_t i = 0; i < 8; ++i)
        d[i] = static_cast<std::uint8_t>(tag >> (8 * i));
    d[63] = 0xee;
    return d;
}

void
expectShardwiseRecovery(ShardedSecureMemory &mem)
{
    std::uint64_t injected = 0;
    for (unsigned s = 0; s < mem.numShards(); ++s) {
        util::MetricsRegistry m = mem.shardMetrics(s);
        const std::uint64_t det = m.counter("fault.detected.total");
        const std::uint64_t rec = m.counter("fault.recovered.total");
        EXPECT_EQ(det, rec) << "shard " << s
                            << ": a detected fault was not recovered";
        EXPECT_EQ(m.counter("fault.unrecovered.total"), 0u)
            << "shard " << s;
        injected += m.counter("fault.injected.total");
    }
    EXPECT_GT(injected, 0u) << "campaign too quiet to mean anything";
}

TEST(ShardedFaults, AsyncBatchesRecoverTransientFaults)
{
    ShardedSecureMemory mem(faultyOptions(4, 31));
    const std::uint64_t cap = mem.capacityBlocks();
    Rng rng(77);
    std::unordered_map<Addr, std::uint64_t> mirror;

    // Interleave async writes and reads without waiting, so worker
    // batches fill up and retries happen INSIDE multi-request
    // batches.  Each read's expected tag is captured at SUBMIT time:
    // per-shard FIFO means the read observes exactly the writes
    // enqueued before it, regardless of what lands on the block later.
    std::vector<std::pair<std::uint64_t, std::future<BlockData>>> reads;
    std::vector<std::future<void>> writes;
    for (std::size_t i = 0; i < 600; ++i) {
        const Addr a = rng.nextBelow(cap);
        if (rng.nextBool(0.5)) {
            mirror[a] = i;
            writes.push_back(mem.submitWrite(a, stamp(i)));
        } else if (mirror.count(a)) {
            reads.emplace_back(mirror[a], mem.submitRead(a));
        }
    }
    for (auto &f : writes)
        f.get();
    std::size_t checked = 0;
    for (auto &[tag, f] : reads) {
        EXPECT_EQ(f.get(), stamp(tag)) << "expected write tag " << tag;
        ++checked;
    }
    EXPECT_GT(checked, 40u);
    EXPECT_TRUE(mem.integrityOk());
    expectShardwiseRecovery(mem);
}

TEST(ShardedFaults, FutureResolutionOrderIsPerShardFifo)
{
    ShardedSecureMemory mem(faultyOptions(2, 32));
    // Hammer ONE block with an async write/read ladder; per-shard
    // FIFO means read k must observe exactly write k even while the
    // injector forces mid-batch retries.
    const Addr block = 5;
    std::vector<std::future<BlockData>> reads;
    for (std::uint64_t k = 0; k < 200; ++k) {
        mem.submitWrite(block, stamp(k));
        reads.push_back(mem.submitRead(block));
    }
    for (std::uint64_t k = 0; k < reads.size(); ++k)
        EXPECT_EQ(reads[k].get(), stamp(k)) << "ladder step " << k;
    expectShardwiseRecovery(mem);
}

TEST(ShardedFaults, MergedMetricsAggregateFaultCounters)
{
    ShardedSecureMemory mem(faultyOptions(2, 33));
    BlockData d = stamp(9);
    for (Addr a = 0; a < 128; ++a)
        mem.writeBlock(a % mem.capacityBlocks(), d);

    std::uint64_t per_shard_injected = 0;
    for (unsigned s = 0; s < mem.numShards(); ++s)
        per_shard_injected =
            per_shard_injected +
            mem.shardMetrics(s).counter("fault.injected.total");
    util::MetricsRegistry merged = mem.metrics();
    EXPECT_EQ(merged.counter("fault.injected.total"),
              per_shard_injected);
    EXPECT_EQ(merged.counter("fault.unrecovered.total"), 0u);
}

TEST(ShardedFaults, ShutdownCompletesFaultyInflightWork)
{
    std::vector<std::future<void>> writes;
    std::vector<std::future<BlockData>> reads;
    {
        ShardedSecureMemory mem(faultyOptions(4, 34));
        for (std::uint64_t k = 0; k < 64; ++k) {
            writes.push_back(mem.submitWrite(k, stamp(k)));
            reads.push_back(mem.submitRead(k));
        }
        mem.shutdown();
    }
    // Accepted work is never dropped, even with retries in flight.
    for (auto &f : writes)
        f.get();
    for (std::uint64_t k = 0; k < reads.size(); ++k)
        EXPECT_EQ(reads[k].get(), stamp(k));
}

} // namespace
} // namespace secdimm::serve
