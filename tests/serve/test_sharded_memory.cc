/**
 * @file
 * ShardedSecureMemory semantics: topology/capacity, read-your-writes
 * through the sync facade and the future API, cross-shard
 * byte-granular ops that straddle shard boundaries, backpressure
 * bounds, shutdown with in-flight requests, and the aggregated
 * serve.* metrics snapshot.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <future>
#include <string>
#include <vector>

#include "serve/sharded_memory.hh"
#include "util/rng.hh"

namespace secdimm::serve
{
namespace
{

ShardedSecureMemory::Options
smallOptions(unsigned shards,
             core::SecureMemorySystem::Protocol proto =
                 core::SecureMemorySystem::Protocol::PathOram)
{
    ShardedSecureMemory::Options opt;
    opt.shard.protocol = proto;
    opt.shard.capacityBytes = 1 << 16;
    opt.shard.seed = 7;
    opt.numShards = shards;
    opt.queueCapacity = 16;
    opt.maxBatch = 4;
    return opt;
}

TEST(ShardedMemory, TopologyAndCapacity)
{
    ShardedSecureMemory mem(smallOptions(4));
    EXPECT_EQ(mem.numShards(), 4u);
    // Interleaved mapping: adjacent blocks on adjacent shards.
    EXPECT_EQ(mem.shardOf(0), 0u);
    EXPECT_EQ(mem.shardOf(1), 1u);
    EXPECT_EQ(mem.shardOf(5), 1u);
    EXPECT_EQ(mem.localBlock(5), 1u);
    // Every shard holds the same local range.
    EXPECT_EQ(mem.capacityBlocks() % 4, 0u);
    EXPECT_GE(mem.capacityBytes(), std::uint64_t{1} << 16);
}

TEST(ShardedMemory, ReadYourWritesSyncFacade)
{
    for (auto proto : {core::SecureMemorySystem::Protocol::PathOram,
                       core::SecureMemorySystem::Protocol::Split}) {
        ShardedSecureMemory mem(smallOptions(4, proto));
        const std::uint64_t cap = mem.capacityBlocks();
        for (Addr a = 0; a < 32; ++a) {
            BlockData d{};
            d[0] = static_cast<std::uint8_t>(a + 1);
            d[63] = static_cast<std::uint8_t>(~a);
            mem.writeBlock(a % cap, d);
        }
        for (Addr a = 0; a < 32; ++a) {
            const BlockData d = mem.readBlock(a % cap);
            EXPECT_EQ(d[0], static_cast<std::uint8_t>(a + 1));
            EXPECT_EQ(d[63], static_cast<std::uint8_t>(~a));
        }
        EXPECT_TRUE(mem.integrityOk());
    }
}

TEST(ShardedMemory, FutureApiResolvesInOrderPerShard)
{
    ShardedSecureMemory mem(smallOptions(2));
    std::vector<std::future<void>> writes;
    for (Addr a = 0; a < 16; ++a) {
        BlockData d{};
        d[1] = static_cast<std::uint8_t>(a * 3);
        writes.push_back(mem.submitWrite(a, d));
    }
    std::vector<std::future<BlockData>> reads;
    for (Addr a = 0; a < 16; ++a)
        reads.push_back(mem.submitRead(a));
    for (auto &w : writes)
        w.get();
    for (Addr a = 0; a < 16; ++a)
        EXPECT_EQ(reads[a].get()[1], static_cast<std::uint8_t>(a * 3));
}

TEST(ShardedMemory, CrossShardByteOpsStraddleBoundaries)
{
    ShardedSecureMemory mem(smallOptions(4));
    // An unaligned span covering 6 blocks => at least 4 shards and
    // partial blocks at both ends.
    const Addr base = 3 * blockBytes + 17;
    std::vector<std::uint8_t> wr(5 * blockBytes + 11);
    Rng rng(99);
    for (auto &b : wr)
        b = static_cast<std::uint8_t>(rng.next());
    mem.write(base, wr.data(), wr.size());

    std::vector<std::uint8_t> rd(wr.size(), 0);
    mem.read(base, rd.data(), rd.size());
    EXPECT_EQ(wr, rd);

    // The neighbouring bytes of the straddled edge blocks survive.
    std::uint8_t before = 0xAB;
    mem.write(base - 1, &before, 1);
    mem.read(base, rd.data(), rd.size());
    EXPECT_EQ(wr, rd) << "partial-block RMW clobbered the span";
}

TEST(ShardedMemory, WideSpansAtOddOffsetsAcrossManyShards)
{
    // Spans covering 3+ shards at deliberately awkward offsets: every
    // combination of a prime-ish start offset and a length that ends
    // mid-block, over both a shard count that divides the span nicely
    // and one (3) that does not.
    for (unsigned shards : {3u, 4u, 5u}) {
        ShardedSecureMemory mem(smallOptions(shards));
        Rng rng(1000 + shards);
        const std::size_t lens[] = {
            3 * blockBytes + 1,  // Just past 3 blocks.
            4 * blockBytes - 1,  // Just short of 4.
            7 * blockBytes + 29, // Wraps every shard at least once.
        };
        const std::size_t offs[] = {1, 31, blockBytes - 1,
                                    blockBytes + 37};
        for (std::size_t len : lens) {
            for (std::size_t off : offs) {
                const Addr base = 5 * blockBytes + off;
                std::vector<std::uint8_t> wr(len);
                for (auto &b : wr)
                    b = static_cast<std::uint8_t>(rng.next());
                mem.write(base, wr.data(), wr.size());
                std::vector<std::uint8_t> rd(len, 0);
                mem.read(base, rd.data(), rd.size());
                EXPECT_EQ(wr, rd) << "shards=" << shards
                                  << " len=" << len << " off=" << off;
            }
        }
        EXPECT_TRUE(mem.integrityOk());
    }
}

TEST(ShardedMemory, AdjacentOddSpansDoNotClobberEachOther)
{
    // Two abutting odd-offset spans written back-to-back: the second
    // write's RMW on the shared edge block must preserve the first.
    ShardedSecureMemory mem(smallOptions(3));
    const Addr base = 2 * blockBytes + 13;
    std::vector<std::uint8_t> left(3 * blockBytes + 7, 0x11);
    std::vector<std::uint8_t> right(3 * blockBytes + 19, 0x22);
    mem.write(base, left.data(), left.size());
    mem.write(base + left.size(), right.data(), right.size());

    std::vector<std::uint8_t> all(left.size() + right.size(), 0);
    mem.read(base, all.data(), all.size());
    for (std::size_t i = 0; i < left.size(); ++i)
        ASSERT_EQ(all[i], 0x11) << "byte " << i;
    for (std::size_t i = 0; i < right.size(); ++i)
        ASSERT_EQ(all[left.size() + i], 0x22) << "byte " << i;
}

TEST(ShardedMemory, BackpressureBoundsQueueDepth)
{
    ShardedSecureMemory::Options opt = smallOptions(2);
    opt.queueCapacity = 4;
    opt.maxBatch = 2;
    ShardedSecureMemory mem(opt);
    std::vector<std::future<void>> fs;
    for (Addr a = 0; a < 64; ++a)
        fs.push_back(mem.submitWrite(a % mem.capacityBlocks(), BlockData{}));
    for (auto &f : fs)
        f.get();
    const util::MetricsRegistry m = mem.metrics();
    for (unsigned s = 0; s < 2; ++s) {
        const std::string p = "serve.s" + std::to_string(s);
        EXPECT_LE(m.gauge(p + ".queue_high_water"), 4.0);
        const auto *h = m.findHistogram(p + ".batch_size");
        ASSERT_NE(h, nullptr);
        EXPECT_GT(h->count(), 0u);
        EXPECT_LE(h->max(), 2u); // maxBatch bound.
    }
}

TEST(ShardedMemory, ShutdownWithInflightCompletesEverything)
{
    std::vector<std::future<void>> writes;
    std::vector<std::future<BlockData>> reads;
    {
        ShardedSecureMemory mem(smallOptions(4));
        for (Addr a = 0; a < 40; ++a) {
            BlockData d{};
            d[2] = static_cast<std::uint8_t>(a);
            writes.push_back(mem.submitWrite(a, d));
        }
        for (Addr a = 0; a < 40; ++a)
            reads.push_back(mem.submitRead(a));
        mem.shutdown(); // Queued work must still complete.
        EXPECT_THROW(mem.submitRead(0), std::runtime_error);
        EXPECT_THROW(mem.submitWrite(0, BlockData{}),
                     std::runtime_error);
        // Destructor runs with the futures still alive.
    }
    for (auto &w : writes)
        w.get(); // Would throw broken_promise had shutdown dropped it.
    for (Addr a = 0; a < 40; ++a)
        EXPECT_EQ(reads[a].get()[2], static_cast<std::uint8_t>(a));
}

TEST(ShardedMemory, MetricsAggregateAcrossShards)
{
    ShardedSecureMemory mem(smallOptions(4));
    constexpr unsigned kOps = 48;
    for (Addr a = 0; a < kOps; ++a)
        mem.writeBlock(a % mem.capacityBlocks(), BlockData{});
    const util::MetricsRegistry m = mem.metrics();
    EXPECT_EQ(m.counter("serve.shards"), 4u);
    EXPECT_EQ(m.counter("serve.requests"), kOps);
    std::uint64_t per_shard_sum = 0;
    for (unsigned s = 0; s < 4; ++s) {
        const std::string p = "serve.s" + std::to_string(s);
        per_shard_sum += m.counter(p + ".accesses");
        EXPECT_GT(m.counter(p + ".accesses"), 0u)
            << "interleaving left shard " << s << " idle";
    }
    EXPECT_EQ(per_shard_sum, kOps);
    // Merged shard registries: core.accesses sums every shard's
    // accessORAM count, capacity sums the slices.
    EXPECT_GE(m.counter("core.accesses"), kOps);
    EXPECT_EQ(m.counter("core.capacity_blocks") % 4, 0u);
    EXPECT_EQ(mem.accessCount(), m.counter("core.accesses"));
}

TEST(ShardedMemory, DeadlineExpiryThrowsTypedTimeout)
{
    // Bury the timed request behind a backlog on its shard, bound the
    // wait at zero: the typed timeout must fire, name the shard, and
    // leave the request running -- accepted work is never dropped, so
    // the same block reads back fine after a drain.
    ShardedSecureMemory::Options opt = smallOptions(2);
    opt.queueCapacity = 256;
    opt.maxBatch = 1;
    ShardedSecureMemory mem(opt);
    BlockData d{};
    d[3] = 99;
    mem.writeBlock(0, d);
    mem.drain();

    std::vector<std::future<BlockData>> backlog;
    for (unsigned i = 0; i < 200; ++i)
        backlog.push_back(mem.submitRead(0));
    bool timed_out = false;
    try {
        mem.readBlockFor(0, std::chrono::milliseconds(0));
    } catch (const RequestTimeoutError &e) {
        timed_out = true;
        EXPECT_EQ(e.shard(), 0u);
        EXPECT_NE(std::string(e.what()).find("0 ms"),
                  std::string::npos);
    }
    EXPECT_TRUE(timed_out);
    for (auto &f : backlog)
        EXPECT_EQ(f.get()[3], 99);
    // The timed-out request still completed; the shard is healthy.
    mem.drain();
    EXPECT_EQ(mem.shardHealth(0), ShardHealth::Healthy);
    EXPECT_EQ(mem.readBlockFor(0, std::chrono::seconds(10))[3], 99);
}

TEST(ShardedMemory, GenerousDeadlineBehavesLikeSyncFacade)
{
    ShardedSecureMemory mem(smallOptions(2));
    BlockData d{};
    d[1] = 7;
    mem.writeBlockFor(3, d, std::chrono::seconds(10));
    EXPECT_EQ(mem.readBlockFor(3, std::chrono::seconds(10))[1], 7);
}

TEST(ShardedMemory, SingleShardDegeneratesToPlainSystem)
{
    ShardedSecureMemory mem(smallOptions(1));
    EXPECT_EQ(mem.numShards(), 1u);
    BlockData d{};
    d[7] = 42;
    mem.writeBlock(9, d);
    EXPECT_EQ(mem.readBlock(9)[7], 42);
    EXPECT_EQ(mem.metrics().counter("serve.s0.accesses"), 2u);
}

} // namespace
} // namespace secdimm::serve
