/**
 * @file
 * Shard-level graceful degradation: a shard whose SecureMemorySystem
 * reaches FailStop must keep draining its queue while every affected
 * request resolves with the typed serve::ShardFailedError -- no hang,
 * no fabricated zeros, no collateral damage to the other shards --
 * and the serve.shard_health gauges must say what happened.
 */

#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "serve/sharded_memory.hh"

namespace secdimm::serve
{
namespace
{

BlockData
stamp(std::uint64_t tag)
{
    BlockData d{};
    for (std::size_t i = 0; i < 8; ++i)
        d[i] = static_cast<std::uint8_t>(tag >> (8 * i));
    d[63] = 0xee;
    return d;
}

/** Saturating unrecoverable transients: the first fault kills the
 *  shard (no retry budget). */
fault::FaultPlan
lethalPlan(std::uint64_t seed)
{
    fault::FaultPlan p = fault::FaultPlan::uniform(0.5, seed);
    p.maxRetries = 0;
    return p;
}

/** Two shards; shard 1 runs the lethal plan, shard 0 runs clean. */
ShardedSecureMemory::Options
halfDeadOptions(std::uint64_t seed)
{
    ShardedSecureMemory::Options opt;
    opt.shard.protocol = core::SecureMemorySystem::Protocol::PathOram;
    opt.shard.capacityBytes = 1 << 16;
    opt.shard.seed = seed;
    opt.numShards = 2;
    opt.queueCapacity = 16;
    opt.maxBatch = 4;
    opt.shardFaultPlans = {fault::FaultPlan::none(), lethalPlan(seed)};
    return opt;
}

TEST(ShardFailure, DeadShardResolvesTypedErrorsAndDrains)
{
    ShardedSecureMemory mem(halfDeadOptions(5));

    // Interleave both shards; every shard-1 future must resolve (not
    // hang) and, once the shard is dead, resolve ShardFailedError.
    std::vector<std::future<void>> live, dead;
    for (std::uint64_t i = 0; i < 64; ++i) {
        live.push_back(mem.submitWrite(2 * i, stamp(i)));     // shard 0
        dead.push_back(mem.submitWrite(2 * i + 1, stamp(i))); // shard 1
    }
    for (auto &f : live)
        EXPECT_NO_THROW(f.get());
    unsigned typed = 0;
    for (auto &f : dead) {
        try {
            f.get();
        } catch (const ShardFailedError &e) {
            EXPECT_EQ(e.shard(), 1u);
            ++typed;
        }
    }
    EXPECT_GT(typed, 0u) << "the lethal plan never fired";

    // The queue drained and the service is still live for shard 0.
    mem.drain();
    EXPECT_EQ(mem.shardHealth(0), ShardHealth::Healthy);
    EXPECT_EQ(mem.shardHealth(1), ShardHealth::Failed);
    EXPECT_EQ(mem.readBlock(0), stamp(0));
}

TEST(ShardFailure, SyncFacadeRethrowsShardFailed)
{
    ShardedSecureMemory mem(halfDeadOptions(9));
    // Kill shard 1 with traffic, then hit it synchronously.
    for (std::uint64_t i = 0; i < 32; ++i) {
        try {
            mem.writeBlock(2 * i + 1, stamp(i));
        } catch (const ShardFailedError &) {
        }
    }
    ASSERT_EQ(mem.shardHealth(1), ShardHealth::Failed);
    EXPECT_THROW(mem.readBlock(1), ShardFailedError);
    EXPECT_THROW(mem.writeBlock(3, stamp(3)), ShardFailedError);
    // Shard 0 is untouched.
    EXPECT_NO_THROW(mem.writeBlock(0, stamp(0)));
    EXPECT_EQ(mem.readBlock(0), stamp(0));
}

TEST(ShardFailure, HealthGaugesCountTheDead)
{
    ShardedSecureMemory mem(halfDeadOptions(13));
    for (std::uint64_t i = 0; i < 32; ++i) {
        try {
            mem.writeBlock(i, stamp(i));
        } catch (const ShardFailedError &) {
        }
    }
    util::MetricsRegistry m = mem.metrics();
    EXPECT_EQ(m.gauge("serve.s0.health"),
              static_cast<double>(ShardHealth::Healthy));
    EXPECT_EQ(m.gauge("serve.s1.health"),
              static_cast<double>(ShardHealth::Failed));
    EXPECT_EQ(m.gauge("serve.shard_health.healthy"), 1.0);
    EXPECT_EQ(m.gauge("serve.shard_health.degraded"), 0.0);
    EXPECT_EQ(m.gauge("serve.shard_health.failed"), 1.0);
}

TEST(ShardFailure, ZeroSurvivorBurstFailsOneShardGracefully)
{
    // A unit-design shard whose every SDIMM dies in one correlated
    // burst: the zero-survivor fail-stop must surface as the same
    // typed per-request error, with the distinct ledger entry visible
    // in the shard's metrics.
    ShardedSecureMemory::Options opt;
    opt.shard.protocol =
        core::SecureMemorySystem::Protocol::Independent;
    opt.shard.capacityBytes = 1 << 16;
    opt.shard.numSdimms = 4;
    opt.shard.seed = 21;
    opt.shard.degradationPolicy = fault::DegradationPolicy::Degraded;
    opt.numShards = 2;
    opt.shardFaultPlans = {
        fault::FaultPlan::none(),
        fault::FaultPlan::correlatedDeath({0, 1, 2, 3}, 8, 0, 21)};
    ShardedSecureMemory mem(opt);

    unsigned typed = 0;
    for (std::uint64_t i = 0; i < 48; ++i) {
        try {
            mem.writeBlock(2 * i + 1, stamp(i)); // shard 1
        } catch (const ShardFailedError &e) {
            EXPECT_EQ(e.shard(), 1u);
            ++typed;
        }
    }
    EXPECT_GT(typed, 0u);
    EXPECT_EQ(mem.shardHealth(1), ShardHealth::Failed);
    EXPECT_EQ(mem.shardHealth(0), ShardHealth::Healthy);

    util::MetricsRegistry m = mem.shardMetrics(1);
    EXPECT_EQ(m.counter("fault.zero_survivor_failstops"), 1u);
    EXPECT_EQ(m.counter("fault.detected.total"),
              m.counter("fault.recovered.total") +
                  m.counter("fault.unrecovered.total"));

    // Shard 0 still serves reads and writes.
    EXPECT_NO_THROW(mem.writeBlock(0, stamp(0)));
    EXPECT_EQ(mem.readBlock(0), stamp(0));
}

TEST(ShardFailure, DegradedShardReportsDegradedHealth)
{
    // A survivable correlated burst (2 of 4 units) leaves the shard
    // serving but Degraded.
    ShardedSecureMemory::Options opt;
    opt.shard.protocol =
        core::SecureMemorySystem::Protocol::Independent;
    opt.shard.capacityBytes = 1 << 16;
    opt.shard.numSdimms = 4;
    opt.shard.seed = 33;
    opt.shard.degradationPolicy = fault::DegradationPolicy::Degraded;
    opt.numShards = 2;
    opt.shardFaultPlans = {
        fault::FaultPlan::none(),
        fault::FaultPlan::correlatedDeath({1, 2}, 8, 0, 33)};
    ShardedSecureMemory mem(opt);

    for (std::uint64_t i = 0; i < 48; ++i)
        mem.writeBlock(2 * i + 1, stamp(i)); // shard 1, survives.
    mem.drain();
    EXPECT_EQ(mem.shardHealth(1), ShardHealth::Degraded);
    for (std::uint64_t i = 0; i < 48; ++i)
        EXPECT_EQ(mem.readBlock(2 * i + 1), stamp(i));

    util::MetricsRegistry m = mem.metrics();
    EXPECT_EQ(m.gauge("serve.shard_health.degraded"), 1.0);
    EXPECT_EQ(m.gauge("serve.shard_health.failed"), 0.0);
}

TEST(ShardFailure, ShardHealthNamesAreStable)
{
    EXPECT_STREQ(shardHealthName(ShardHealth::Healthy), "healthy");
    EXPECT_STREQ(shardHealthName(ShardHealth::Degraded), "degraded");
    EXPECT_STREQ(shardHealthName(ShardHealth::Failed), "failed");
}

} // namespace
} // namespace secdimm::serve
