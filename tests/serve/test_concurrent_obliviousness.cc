/**
 * @file
 * Concurrency-sound obliviousness of the sharded serve frontend:
 * under randomized submission schedules, (a) every shard's externally
 * visible trace stays indistinguishable between two workloads that
 * differ only in WHICH blocks they touch, and (b) the interleaved
 * completion schedule (verify::ScheduleRecorder via
 * ShardedSecureMemory::setScheduleRecorder) is itself
 * indistinguishable -- checked with the v2 statistics, which also
 * catch a deliberately shard-sorted (secret-revealing) schedule that
 * the marginal view cannot.
 *
 * Workload construction: A and B draw the SAME per-request (shard,
 * kind) sequence from a shared seed but place their blocks in
 * disjoint halves of the address space, so the secret is the region
 * while every per-shard request count matches by construction.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <memory>
#include <vector>

#include "serve/sharded_memory.hh"
#include "util/rng.hh"
#include "verify/channel_observer.hh"
#include "verify/leak_meter.hh"
#include "verify/trace_checker.hh"

namespace secdimm::serve
{
namespace
{

using Protocol = core::SecureMemorySystem::Protocol;

ShardedSecureMemory::Options
serveOptions(Protocol proto, unsigned shards)
{
    ShardedSecureMemory::Options opt;
    opt.shard.protocol = proto;
    opt.shard.capacityBytes = 1 << 16;
    opt.shard.seed = 7;
    opt.numShards = shards;
    opt.queueCapacity = 64;
    opt.maxBatch = 4;
    return opt;
}

/** One request of the shared (public) workload skeleton. */
struct Op
{
    Addr base = 0; ///< Block index inside the half-region.
    bool write = false;
};

std::vector<Op>
workloadSkeleton(std::uint64_t seed, std::size_t n, Addr region_blocks,
                 double write_prob = 0.25)
{
    Rng rng(seed);
    std::vector<Op> ops;
    ops.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        ops.push_back(
            Op{rng.nextBelow(region_blocks), rng.nextBool(write_prob)});
    return ops;
}

struct RunResult
{
    std::vector<std::vector<verify::TraceEvent>> shardTraces;
    std::vector<verify::ScheduleEvent> schedule;
};

/**
 * Drive one service instance: submit the skeleton (offset into one
 * half-region) in the order given by @p submit_order, fully async, and
 * collect per-shard traces plus the interleaved completion schedule.
 */
RunResult
runWorkload(const ShardedSecureMemory::Options &opt,
            const std::vector<Op> &ops, Addr region_offset,
            const std::vector<std::size_t> &submit_order)
{
    ShardedSecureMemory mem(opt);
    // SDIMM protocols expose no bucket-store attach points (their
    // visible channel is the link bus); for those the per-shard trace
    // vector stays empty and callers rely on the schedule comparison.
    std::vector<std::unique_ptr<verify::ChannelObserver>> observers;
    bool observed = true;
    for (unsigned s = 0; s < mem.numShards(); ++s) {
        observers.push_back(std::make_unique<verify::ChannelObserver>());
        if (mem.attachObserver(s, *observers.back()) == 0)
            observed = false;
    }
    verify::ScheduleRecorder recorder;
    mem.setScheduleRecorder(&recorder);

    BlockData d{};
    d[0] = 0x5a;
    std::vector<std::future<BlockData>> reads;
    std::vector<std::future<void>> writes;
    for (std::size_t idx : submit_order) {
        const Addr block = region_offset + ops[idx].base;
        if (ops[idx].write)
            writes.push_back(mem.submitWrite(block, d));
        else
            reads.push_back(mem.submitRead(block));
    }
    for (auto &f : writes)
        f.get();
    for (auto &f : reads)
        f.get();
    mem.drain();
    mem.setScheduleRecorder(nullptr);
    mem.shutdown();

    RunResult r;
    if (observed) {
        for (auto &obs : observers)
            r.shardTraces.push_back(obs->events());
    }
    r.schedule = recorder.events();
    return r;
}

std::vector<std::size_t>
shuffledOrder(std::size_t n, std::uint64_t seed)
{
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i)
        order[i] = i;
    Rng rng(seed);
    for (std::size_t i = n; i > 1; --i)
        std::swap(order[i - 1], order[rng.nextBelow(i)]);
    return order;
}

/** Offset of the B half-region, aligned so shardOf() is preserved. */
Addr
alignedHalf(const ShardedSecureMemory::Options &opt)
{
    ShardedSecureMemory probe(opt);
    const Addr half = probe.capacityBlocks() / 2;
    return half - half % probe.numShards();
}

TEST(ConcurrentObliviousness, AllSecureDesignsUnderRandomSchedules)
{
    // >= 8 randomized submission schedules per design; every shard's
    // trace and the interleaved completion schedule must stay
    // indistinguishable between the two half-region workloads.
    for (Protocol proto :
         {Protocol::PathOram, Protocol::Freecursive,
          Protocol::Independent, Protocol::Split,
          Protocol::IndepSplit}) {
        const ShardedSecureMemory::Options opt = serveOptions(proto, 2);
        const Addr offset = alignedHalf(opt);
        ASSERT_GT(offset, 0u);
        // Enough requests that each shard's bucket-address histogram
        // is dense relative to the checker's 64 bins; sparser traces
        // sit right at the TV threshold on sampling noise alone.
        const std::vector<Op> ops = workloadSkeleton(101, 600, offset);

        for (std::uint64_t sched = 0; sched < 8; ++sched) {
            SCOPED_TRACE("proto=" + std::to_string(static_cast<int>(
                             proto)) +
                         " sched=" + std::to_string(sched));
            const RunResult a = runWorkload(
                opt, ops, 0, shuffledOrder(ops.size(), 900 + sched));
            const RunResult b = runWorkload(
                opt, ops, offset,
                shuffledOrder(ops.size(), 500 + sched));

            ASSERT_EQ(a.shardTraces.size(), b.shardTraces.size());
            if (proto == Protocol::PathOram ||
                proto == Protocol::Freecursive) {
                ASSERT_EQ(a.shardTraces.size(), opt.numShards)
                    << "tree protocols must expose bucket traces";
            }
            for (std::size_t s = 0; s < a.shardTraces.size(); ++s) {
                const verify::TraceComparison c = verify::compareTraces(
                    a.shardTraces[s], b.shardTraces[s]);
                EXPECT_TRUE(c.indistinguishable)
                    << "shard " << s << ": " << c.summary();
            }
            EXPECT_EQ(a.schedule.size(), b.schedule.size());
            // The global-interleave ACF statistic rides real scheduler
            // noise (the submission threads race), so a marginal band
            // miss can happen with no leak present.  A true ordering
            // leak fails every re-randomized run; give scheduler noise
            // two fresh draws before declaring one.
            verify::ScheduleComparison sc =
                verify::compareSchedules(a.schedule, b.schedule);
            for (int retry = 1; retry < 3 && !sc.pass; ++retry) {
                const RunResult ra = runWorkload(
                    opt, ops, 0,
                    shuffledOrder(ops.size(),
                                  900 + sched + 100 * retry));
                const RunResult rb = runWorkload(
                    opt, ops, offset,
                    shuffledOrder(ops.size(),
                                  500 + sched + 100 * retry));
                sc = verify::compareSchedules(ra.schedule,
                                              rb.schedule);
            }
            EXPECT_TRUE(sc.pass) << sc.summary();
        }
    }
}

TEST(ConcurrentObliviousness, PerShardTracesSurviveDeepChecks)
{
    // The v2 statistics themselves (ordering ACF; gap stats are
    // vacuous on untimed store traces) must also pass shard-by-shard.
    const ShardedSecureMemory::Options opt =
        serveOptions(Protocol::PathOram, 4);
    const Addr offset = alignedHalf(opt);
    const std::vector<Op> ops = workloadSkeleton(202, 1200, offset);
    const RunResult a =
        runWorkload(opt, ops, 0, shuffledOrder(ops.size(), 11));
    const RunResult b =
        runWorkload(opt, ops, offset, shuffledOrder(ops.size(), 12));
    for (std::size_t s = 0; s < a.shardTraces.size(); ++s) {
        const verify::DeepComparison d = verify::deepCompareTraces(
            a.shardTraces[s], b.shardTraces[s]);
        EXPECT_TRUE(d.pass) << "shard " << s << ": " << d.summary();
    }
}

TEST(ConcurrentObliviousness, WithinShardKindSortingIsCaught)
{
    // Positive control: a frontend that reorders each shard's queue
    // by a secret-correlated criterion -- here, all writes before all
    // reads.  The global position of every request (and thus the
    // scheduler-noise interleaving, shard occupancy, and kind mix) is
    // untouched, so the marginal view is IDENTICAL; only the
    // shard-local FIFO-order statistic can flag it.  Built on the
    // per-shard subsequence precisely so the check stays sound on a
    // single-core host, where worker preemption makes the GLOBAL
    // completion order blocky for honest and leaky runs alike.
    const ShardedSecureMemory::Options opt =
        serveOptions(Protocol::PathOram, 4);
    const Addr offset = alignedHalf(opt);
    const std::vector<Op> ops =
        workloadSkeleton(303, 600, offset, 0.5);

    const std::vector<std::size_t> honest_order =
        shuffledOrder(ops.size(), 21);
    // Leaky order: same position->shard assignment, but each shard's
    // subsequence re-emitted writes-first.
    std::vector<std::size_t> leaky_order;
    {
        ShardedSecureMemory probe(opt);
        std::vector<std::vector<std::size_t>> per_shard(
            probe.numShards());
        for (std::size_t idx : honest_order)
            per_shard[probe.shardOf(ops[idx].base)].push_back(idx);
        for (auto &list : per_shard)
            std::stable_partition(
                list.begin(), list.end(),
                [&](std::size_t i) { return ops[i].write; });
        std::vector<std::size_t> next(probe.numShards(), 0);
        for (std::size_t idx : honest_order) {
            const unsigned s = probe.shardOf(ops[idx].base);
            leaky_order.push_back(per_shard[s][next[s]++]);
        }
    }
    const RunResult leaky = runWorkload(opt, ops, 0, leaky_order);
    const RunResult honest = runWorkload(opt, ops, offset, honest_order);

    const verify::ScheduleComparison sc =
        verify::compareSchedules(leaky.schedule, honest.schedule);
    EXPECT_TRUE(sc.marginal.indistinguishable)
        << "control must preserve the marginal view: "
        << sc.marginal.summary();
    EXPECT_FALSE(sc.pass) << sc.summary();
    EXPECT_FALSE(sc.perShardPass) << sc.summary();
}

TEST(ConcurrentObliviousness, RecorderDetachStopsRecording)
{
    ShardedSecureMemory mem(serveOptions(Protocol::PathOram, 2));
    verify::ScheduleRecorder rec;
    mem.setScheduleRecorder(&rec);
    mem.readBlock(0);
    mem.drain();
    const std::size_t seen = rec.size();
    EXPECT_GT(seen, 0u);
    mem.setScheduleRecorder(nullptr);
    mem.readBlock(1);
    mem.drain();
    EXPECT_EQ(rec.size(), seen);
    const auto ev = rec.events();
    EXPECT_EQ(ev.front().shard, 0u);
    EXPECT_FALSE(ev.front().write);
}

} // namespace
} // namespace secdimm::serve
