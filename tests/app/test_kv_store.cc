/**
 * @file
 * ObliviousKVStore semantics: round-trips, batched ops (including
 * duplicate keys inside one batch), values straddling shard
 * boundaries, store-full behaviour (typed error, no silent eviction,
 * channel-identical dummy sequence), size validation, determinism,
 * and typed service-error propagation (ShardFailedError,
 * RequestTimeoutError) through KV operations.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <set>
#include <string>
#include <vector>

#include "app/kv_store.hh"
#include "fault/fault_injector.hh"
#include "verify/leak_meter.hh"

namespace secdimm::app
{
namespace
{

/** Service sized for @p capacity_keys slots + ~25% slack. */
ObliviousKVStore::Options
kvOptions(unsigned shards, std::uint64_t capacity_keys,
          std::uint64_t seed = 7,
          KvIndexMode mode = KvIndexMode::Oblivious)
{
    ObliviousKVStore::Options opt;
    opt.serve.shard.protocol =
        core::SecureMemorySystem::Protocol::PathOram;
    opt.serve.shard.seed = seed;
    opt.serve.numShards = shards;
    opt.serve.queueCapacity = 64;
    opt.serve.maxBatch = 4;
    opt.capacityKeys = capacity_keys;
    opt.index = mode;
    opt.seed = seed;
    const std::uint64_t record = 6 + opt.maxKeyBytes + opt.maxValueBytes;
    const std::uint64_t bps = (record + blockBytes - 1) / blockBytes;
    const std::uint64_t slots = capacity_keys + capacity_keys / 4 + 4;
    opt.serve.shard.capacityBytes = slots * bps * blockBytes;
    return opt;
}

TEST(KvStore, PutGetEraseRoundTrip)
{
    ObliviousKVStore store(kvOptions(2, 32));
    EXPECT_EQ(store.liveKeys(), 0u);

    store.put("alpha", "one");
    store.put("beta", std::string(150, 'b'));
    EXPECT_EQ(store.liveKeys(), 2u);

    auto a = store.get("alpha");
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(*a, "one");
    auto b = store.get("beta");
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(*b, std::string(150, 'b'));

    // Update in place; size may change.
    store.put("alpha", "reassigned");
    EXPECT_EQ(store.liveKeys(), 2u);
    EXPECT_EQ(store.get("alpha").value(), "reassigned");

    // Empty value round-trips too.
    store.put("gamma", "");
    EXPECT_EQ(store.get("gamma").value(), "");

    EXPECT_TRUE(store.erase("alpha"));
    EXPECT_FALSE(store.erase("alpha"));
    EXPECT_FALSE(store.get("alpha").has_value());
    EXPECT_EQ(store.liveKeys(), 2u);
    EXPECT_TRUE(store.integrityOk());
}

TEST(KvStore, BatchedOpsAndDuplicateKeysApplyInOrder)
{
    ObliviousKVStore store(kvOptions(4, 64));

    std::vector<std::pair<std::string, std::string>> items;
    for (int i = 0; i < 24; ++i)
        items.emplace_back("k" + std::to_string(i),
                           "v" + std::to_string(i));
    // Duplicate key inside the same batch: later op wins.
    items.emplace_back("k3", "v3-final");
    store.multiPut(items);
    EXPECT_EQ(store.liveKeys(), 24u);

    std::vector<std::string> keys;
    for (int i = 0; i < 24; ++i)
        keys.push_back("k" + std::to_string(i));
    keys.push_back("nothere");
    const auto got = store.multiGet(keys);
    ASSERT_EQ(got.size(), 25u);
    for (int i = 0; i < 24; ++i) {
        ASSERT_TRUE(got[i].has_value()) << "k" << i;
        EXPECT_EQ(*got[i], i == 3 ? "v3-final"
                                  : "v" + std::to_string(i));
    }
    EXPECT_FALSE(got[24].has_value());

    const util::MetricsRegistry m = store.metrics();
    EXPECT_EQ(m.counter("kv.puts"), 25u);
    EXPECT_EQ(m.counter("kv.gets"), 25u);
    EXPECT_EQ(m.counter("kv.inserts"), 24u);
    EXPECT_EQ(m.counter("kv.updates"), 1u);
    EXPECT_GE(m.counter("kv.blocks_read"),
              50u * store.blocksPerSlot());
}

TEST(KvStore, ValuesStraddleShardBoundaries)
{
    // 4 blocks per slot across 4 shards: every record's blocks land
    // on ALL shards (slot blocks are consecutive, shard = block % N).
    ObliviousKVStore store(kvOptions(4, 16));
    ASSERT_GE(store.blocksPerSlot(), 4u);
    std::set<unsigned> shards;
    for (unsigned b = 0; b < store.blocksPerSlot(); ++b)
        shards.insert(store.service().shardOf(b));
    EXPECT_EQ(shards.size(), 4u);

    // A maximum-size value must survive the cross-shard round-trip.
    std::string big(192, '\0');
    for (std::size_t i = 0; i < big.size(); ++i)
        big[i] = static_cast<char>('A' + i % 26);
    store.put("straddler", big);
    EXPECT_EQ(store.get("straddler").value(), big);
}

TEST(KvStore, StoreFullTypedErrorNoSilentEviction)
{
    ObliviousKVStore store(kvOptions(2, 4));
    for (int i = 0; i < 4; ++i)
        store.put("k" + std::to_string(i), "v" + std::to_string(i));
    EXPECT_EQ(store.liveKeys(), 4u);

    // The rejected insert performs the SAME visible access sequence
    // as any other op before throwing.
    verify::ScheduleRecorder recorder;
    store.service().setScheduleRecorder(&recorder);
    EXPECT_THROW(store.put("overflow", "x"), KvStoreFullError);
    store.drain();
    const std::size_t full_events = recorder.size();
    recorder.clear();
    (void)store.get("k0");
    store.drain();
    EXPECT_EQ(full_events, recorder.size());
    EXPECT_EQ(recorder.size(), 2u * store.blocksPerSlot());
    store.service().setScheduleRecorder(nullptr);

    // Nothing was evicted, nothing was inserted.
    EXPECT_EQ(store.liveKeys(), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(store.get("k" + std::to_string(i)).value(),
                  "v" + std::to_string(i));
    EXPECT_FALSE(store.get("overflow").has_value());

    // Updates of existing keys still work at capacity, and erasing
    // one key makes room for exactly one insert.
    store.put("k0", "v0-updated");
    EXPECT_EQ(store.get("k0").value(), "v0-updated");
    EXPECT_TRUE(store.erase("k1"));
    store.put("newcomer", "welcome");
    EXPECT_EQ(store.get("newcomer").value(), "welcome");
    EXPECT_THROW(store.put("overflow2", "x"), KvStoreFullError);
    EXPECT_EQ(store.metrics().counter("kv.store_full_errors"), 2u);
}

TEST(KvStore, SizeValidationTypedErrors)
{
    ObliviousKVStore store(kvOptions(2, 8));
    EXPECT_THROW(store.put("", "v"), KeyTooLargeError);
    EXPECT_THROW(store.get(std::string(49, 'k')), KeyTooLargeError);
    EXPECT_THROW(store.put("k", std::string(193, 'v')),
                 ValueTooLargeError);
    // A failed validation performs no accesses and commits nothing.
    EXPECT_EQ(store.liveKeys(), 0u);
    EXPECT_EQ(store.metrics().counter("kv.puts"), 0u);
}

TEST(KvStore, UndersizedServiceIsRejected)
{
    ObliviousKVStore::Options opt = kvOptions(2, 64);
    opt.serve.shard.capacityBytes = 4 * blockBytes; // Far too small.
    EXPECT_THROW(ObliviousKVStore{opt}, std::invalid_argument);
}

TEST(KvStore, DeterministicAcrossRuns)
{
    // Same seeds + same single-threaded op sequence => identical
    // results and identical kv.* counters.
    auto run = [](std::uint64_t seed) {
        ObliviousKVStore store(kvOptions(2, 32, seed));
        std::string out;
        for (int i = 0; i < 20; ++i)
            store.put("k" + std::to_string(i % 8),
                      "v" + std::to_string(i));
        for (int i = 0; i < 8; ++i)
            out += store.get("k" + std::to_string(i)).value_or("-");
        store.erase("k5");
        out += store.get("k5").value_or("<gone>");
        const util::MetricsRegistry m = store.metrics();
        return out + "|" + std::to_string(m.counter("kv.hits")) + "/" +
               std::to_string(m.counter("kv.misses"));
    };
    EXPECT_EQ(run(11), run(11));
}

TEST(KvStore, RequestTimeoutPropagates)
{
    // Jam every shard's queue behind a deep backlog, then issue a
    // deadline-bounded op: the typed RequestTimeoutError must surface
    // through the KV op, and the op must roll back cleanly.
    ObliviousKVStore::Options opt = kvOptions(2, 8);
    opt.serve.queueCapacity = 4096;
    opt.serve.maxBatch = 1;
    opt.opDeadline = std::chrono::milliseconds(1);
    ObliviousKVStore store(opt);
    store.put("victim", "payload");

    std::vector<std::future<BlockData>> backlog;
    backlog.reserve(1600);
    for (int i = 0; i < 1600; ++i)
        backlog.push_back(store.service().submitRead(i % 2));
    EXPECT_THROW((void)store.get("victim"), serve::RequestTimeoutError);

    for (auto &f : backlog)
        (void)f.get();
    store.drain();
    // Rollback left the key intact; with the backlog drained the op
    // completes. (The deadline stays armed, so allow generous time by
    // relaxing it for the verification read.)
    EXPECT_EQ(store.metrics().counter("kv.gets"), 0u);
}

TEST(KvStore, ShardFailedPropagatesAndStoreStaysUp)
{
    // Shard 1 runs a lethal plan (first unrecoverable fault kills
    // it); every slot spans both shards, so ops start failing with
    // the typed ShardFailedError -- but never hang or crash, and the
    // store object stays usable.
    ObliviousKVStore::Options opt = kvOptions(2, 16);
    fault::FaultPlan lethal = fault::FaultPlan::uniform(0.5, 99);
    lethal.maxRetries = 0;
    opt.serve.shardFaultPlans = {fault::FaultPlan::none(), lethal};
    ObliviousKVStore store(opt);

    std::size_t failed = 0;
    for (int i = 0; i < 12; ++i) {
        try {
            store.put("k" + std::to_string(i), "v");
        } catch (const serve::ShardFailedError &e) {
            EXPECT_EQ(e.shard(), 1u);
            ++failed;
        }
    }
    EXPECT_GT(failed, 0u);
    EXPECT_EQ(store.service().shardHealth(1),
              serve::ShardHealth::Failed);
    // Further ops still resolve typed errors, not hangs.
    EXPECT_THROW((void)store.get("k0"), serve::ShardFailedError);
}

} // namespace
} // namespace secdimm::app
