/**
 * @file
 * The obliviousness deliverable of the KV layer: the externally
 * visible channel (per-shard bucket-store traces) and the interleaved
 * completion schedule must be indistinguishable across differing key
 * sets, value contents, hit/miss ratios, and even op types -- every
 * operation is blocksPerSlot reads of one uniform slot followed by
 * blocksPerSlot writes of another.  The deliberately leaky baseline
 * index (static slots, hit-length reads, no dummy work) is the
 * positive control: the same checkers must FAIL it.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "app/kv_store.hh"
#include "verify/channel_observer.hh"
#include "verify/leak_meter.hh"
#include "verify/trace_checker.hh"

namespace secdimm::app
{
namespace
{

ObliviousKVStore::Options
kvOptions(unsigned shards, std::uint64_t capacity_keys,
          std::uint64_t seed, KvIndexMode mode)
{
    ObliviousKVStore::Options opt;
    opt.serve.shard.protocol =
        core::SecureMemorySystem::Protocol::PathOram;
    opt.serve.shard.seed = seed;
    opt.serve.numShards = shards;
    opt.serve.queueCapacity = 64;
    opt.serve.maxBatch = 4;
    opt.capacityKeys = capacity_keys;
    opt.maxValueBytes = 96; // 3 blocks per slot with 48-byte keys.
    opt.index = mode;
    opt.seed = seed;
    const std::uint64_t record = 6 + opt.maxKeyBytes + opt.maxValueBytes;
    const std::uint64_t bps = (record + blockBytes - 1) / blockBytes;
    const std::uint64_t slots = capacity_keys + capacity_keys / 4 + 4;
    opt.serve.shard.capacityBytes = slots * bps * blockBytes;
    return opt;
}

/** One scripted op of a secret workload. */
struct ScriptOp
{
    enum class What { Get, Put, Erase } what = What::Get;
    std::string key;
    std::string value;
};

struct RunResult
{
    std::vector<std::vector<verify::TraceEvent>> shardTraces;
    std::vector<verify::ScheduleEvent> schedule;
};

/**
 * Build a store, preload @p resident keys, then run @p script while
 * observing every shard's bucket-store channel and the interleaved
 * schedule.  Only the measured (post-preload) traffic is recorded.
 */
RunResult
runScript(const ObliviousKVStore::Options &opt,
          const std::vector<std::string> &resident,
          const std::string &resident_value,
          const std::vector<ScriptOp> &script)
{
    ObliviousKVStore store(opt);
    std::vector<std::unique_ptr<verify::ChannelObserver>> observers;
    for (unsigned s = 0; s < store.service().numShards(); ++s) {
        observers.push_back(
            std::make_unique<verify::ChannelObserver>());
        EXPECT_GT(store.service().attachObserver(s, *observers.back()),
                  0u);
    }
    verify::ScheduleRecorder recorder;

    for (const std::string &key : resident)
        store.put(key, resident_value);
    store.drain();
    for (auto &obs : observers)
        obs->clear();
    store.service().setScheduleRecorder(&recorder);

    for (const ScriptOp &op : script) {
        switch (op.what) {
          case ScriptOp::What::Get:
            (void)store.get(op.key);
            break;
          case ScriptOp::What::Put:
            try {
                store.put(op.key, op.value);
            } catch (const KvStoreFullError &) {
                // Full inserts still perform the dummy sequence.
            }
            break;
          case ScriptOp::What::Erase:
            (void)store.erase(op.key);
            break;
        }
    }
    store.drain();
    store.service().setScheduleRecorder(nullptr);

    RunResult r;
    for (auto &obs : observers)
        r.shardTraces.push_back(obs->events());
    r.schedule = recorder.events();
    return r;
}

/** PASS gate with schedule-noise retries (seeded re-runs). */
void
expectIndistinguishable(const ObliviousKVStore::Options &opt_a,
                        const std::vector<std::string> &resident_a,
                        const std::string &value_a,
                        const std::vector<ScriptOp> &script_a,
                        const ObliviousKVStore::Options &opt_b,
                        const std::vector<std::string> &resident_b,
                        const std::string &value_b,
                        const std::vector<ScriptOp> &script_b)
{
    RunResult a = runScript(opt_a, resident_a, value_a, script_a);
    RunResult b = runScript(opt_b, resident_b, value_b, script_b);

    ASSERT_EQ(a.schedule.size(), b.schedule.size());
    for (std::size_t s = 0; s < a.shardTraces.size(); ++s) {
        const verify::DeepComparison d = verify::deepCompareTraces(
            a.shardTraces[s], b.shardTraces[s]);
        EXPECT_TRUE(d.pass) << "shard " << s << ": " << d.summary();
    }
    // The global-interleave ACF rides scheduler noise; a real leak
    // fails every re-randomized run, so retry with fresh seeds.
    verify::ScheduleComparison sc =
        verify::compareSchedules(a.schedule, b.schedule);
    for (int retry = 1; retry < 3 && !sc.pass; ++retry) {
        ObliviousKVStore::Options ra = opt_a, rb = opt_b;
        ra.serve.shard.seed += 1000 * retry;
        ra.seed += 1000 * retry;
        rb.serve.shard.seed += 2000 * retry;
        rb.seed += 2000 * retry;
        a = runScript(ra, resident_a, value_a, script_a);
        b = runScript(rb, resident_b, value_b, script_b);
        sc = verify::compareSchedules(a.schedule, b.schedule);
    }
    EXPECT_TRUE(sc.pass) << sc.summary();
}

std::vector<std::string>
keyRange(const std::string &prefix, std::size_t n)
{
    std::vector<std::string> out;
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(prefix + std::to_string(i));
    return out;
}

TEST(KvOblivious, EveryOpHasTheSameVisibleShape)
{
    // Hit get, miss get, insert, update, erase-hit, erase-miss, and a
    // capacity-rejected insert: all exactly B reads then B writes.
    ObliviousKVStore::Options opt =
        kvOptions(2, 4, /*seed=*/21, KvIndexMode::Oblivious);
    ObliviousKVStore store(opt);
    const unsigned B = store.blocksPerSlot();
    for (int i = 0; i < 4; ++i)
        store.put("k" + std::to_string(i), "v");

    verify::ScheduleRecorder recorder;
    store.drain();
    store.service().setScheduleRecorder(&recorder);

    (void)store.get("k0");                       // Hit.
    (void)store.get("ghost");                    // Miss.
    store.put("k1", "updated");                  // Update.
    EXPECT_THROW(store.put("full", "x"), KvStoreFullError);
    (void)store.erase("k2");                     // Erase hit.
    (void)store.erase("ghost2");                 // Erase miss.
    store.put("fresh", "v");                     // Insert (k2 freed).
    store.drain();
    store.service().setScheduleRecorder(nullptr);

    const auto events = recorder.events();
    ASSERT_EQ(events.size(), 7u * 2 * B);
    for (std::size_t op = 0; op < 7; ++op) {
        for (unsigned j = 0; j < 2 * B; ++j) {
            const bool expect_write = j >= B;
            EXPECT_EQ(events[op * 2 * B + j].write, expect_write)
                << "op " << op << " position " << j;
        }
    }
}

TEST(KvOblivious, HitMissRatioIsInvisible)
{
    // A: every get hits; B: every get misses.  Same op count -- the
    // channel and schedule must not tell them apart.
    const auto opt_a = kvOptions(2, 48, 31, KvIndexMode::Oblivious);
    const auto opt_b = kvOptions(2, 48, 32, KvIndexMode::Oblivious);
    const auto resident = keyRange("res", 32);

    std::vector<ScriptOp> hits, misses;
    for (int i = 0; i < 220; ++i) {
        hits.push_back({ScriptOp::What::Get,
                        "res" + std::to_string(i % 32), ""});
        misses.push_back(
            {ScriptOp::What::Get, "absent" + std::to_string(i), ""});
    }
    expectIndistinguishable(opt_a, resident, "value", hits, opt_b,
                            resident, "value", misses);
}

TEST(KvOblivious, KeySetAndValueContentAreInvisible)
{
    // Disjoint key namespaces AND different value payloads; also a
    // different hit pattern (clustered vs spread).
    const auto opt_a = kvOptions(2, 48, 41, KvIndexMode::Oblivious);
    const auto opt_b = kvOptions(2, 48, 42, KvIndexMode::Oblivious);

    std::vector<ScriptOp> a_script, b_script;
    for (int i = 0; i < 200; ++i) {
        // A hammers two hot keys with constant values.
        a_script.push_back({ScriptOp::What::Put,
                            "hot" + std::to_string(i % 2),
                            std::string(90, 'a')});
        // B spreads updates over its whole (different) key set with
        // varying values.
        b_script.push_back({ScriptOp::What::Put,
                            "spread" + std::to_string(i % 24),
                            std::string(1 + i % 90, 'z')});
    }
    expectIndistinguishable(opt_a, keyRange("hot", 2), "init",
                            a_script, opt_b, keyRange("spread", 24),
                            "other-init", b_script);
}

TEST(KvOblivious, OpTypeMixIsInvisible)
{
    // All-gets vs a get/put/erase blend: every op has the same
    // visible shape, so even the op-type mix is hidden.
    const auto opt_a = kvOptions(2, 48, 51, KvIndexMode::Oblivious);
    const auto opt_b = kvOptions(2, 48, 52, KvIndexMode::Oblivious);
    const auto resident = keyRange("res", 24);

    std::vector<ScriptOp> gets, blend;
    for (int i = 0; i < 200; ++i) {
        gets.push_back({ScriptOp::What::Get,
                        "res" + std::to_string(i % 24), ""});
        switch (i % 4) {
          case 0:
            blend.push_back({ScriptOp::What::Get,
                             "res" + std::to_string(i % 24), ""});
            break;
          case 1:
            blend.push_back({ScriptOp::What::Put,
                             "res" + std::to_string(i % 24), "new"});
            break;
          case 2:
            blend.push_back({ScriptOp::What::Erase,
                             "res" + std::to_string((i + 1) % 24), ""});
            break;
          default:
            blend.push_back({ScriptOp::What::Put,
                             "res" + std::to_string((i + 1) % 24),
                             "back"});
            break;
        }
    }
    expectIndistinguishable(opt_a, resident, "value", gets, opt_b,
                            resident, "value", blend);
}

TEST(KvOblivious, LeakyBaselineFailsTheSameChecks)
{
    // Positive control: the leaky index must be caught by BOTH the
    // per-shard trace comparison and the schedule comparison on the
    // exact workload pair the oblivious index passes.
    const auto opt_a = kvOptions(2, 48, 61, KvIndexMode::LeakyBaseline);
    const auto opt_b = kvOptions(2, 48, 62, KvIndexMode::LeakyBaseline);
    const auto resident = keyRange("res", 32);

    std::vector<ScriptOp> hits, mostly_misses;
    for (int i = 0; i < 220; ++i) {
        hits.push_back({ScriptOp::What::Get,
                        "res" + std::to_string(i % 32), ""});
        // 1 in 5 hits so the miss-heavy run still emits SOME events.
        mostly_misses.push_back(
            {ScriptOp::What::Get,
             i % 5 == 0 ? "res" + std::to_string(i % 32)
                        : "absent" + std::to_string(i),
             ""});
    }
    const RunResult a = runScript(opt_a, resident, "value", hits);
    const RunResult b =
        runScript(opt_b, resident, "value", mostly_misses);

    // Hit-length reads vs nothing: wildly different event counts.
    EXPECT_GT(a.schedule.size(), 2 * b.schedule.size());
    const verify::ScheduleComparison sc =
        verify::compareSchedules(a.schedule, b.schedule);
    EXPECT_FALSE(sc.pass) << sc.summary();

    bool any_shard_fails = false;
    for (std::size_t s = 0; s < a.shardTraces.size(); ++s) {
        const verify::DeepComparison d = verify::deepCompareTraces(
            a.shardTraces[s], b.shardTraces[s]);
        any_shard_fails = any_shard_fails || !d.pass;
    }
    EXPECT_TRUE(any_shard_fails)
        << "leaky baseline must fail at least one per-shard check";
}

} // namespace
} // namespace secdimm::app
