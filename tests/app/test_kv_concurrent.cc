/**
 * @file
 * Concurrency contract of ObliviousKVStore: many clients hammering
 * the store (singles + batches, overlapping and disjoint key sets)
 * must observe read-your-writes per key, keep the free-slot
 * accounting exact, and leave the underlying ORAM shards consistent.
 * Built into the thread-sanitizer CI job -- TSan-clean is part of the
 * contract.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "app/kv_store.hh"
#include "app/kv_workload.hh"

namespace secdimm::app
{
namespace
{

ObliviousKVStore::Options
kvOptions(unsigned shards, std::uint64_t capacity_keys,
          std::uint64_t seed)
{
    ObliviousKVStore::Options opt;
    opt.serve.shard.protocol =
        core::SecureMemorySystem::Protocol::PathOram;
    opt.serve.shard.seed = seed;
    opt.serve.numShards = shards;
    opt.serve.queueCapacity = 128;
    opt.serve.maxBatch = 8;
    opt.capacityKeys = capacity_keys;
    opt.seed = seed;
    const std::uint64_t record = 6 + opt.maxKeyBytes + opt.maxValueBytes;
    const std::uint64_t bps = (record + blockBytes - 1) / blockBytes;
    const std::uint64_t slots = capacity_keys + capacity_keys / 4 + 4;
    opt.serve.shard.capacityBytes = slots * bps * blockBytes;
    return opt;
}

TEST(KvConcurrent, ReadYourWritesPerClientKeyspace)
{
    // Each client owns a disjoint key range and must always read back
    // its own latest write; clients overlap only in time.
    const unsigned clients = 4;
    const int keys_per_client = 6;
    const int rounds = 10;
    ObliviousKVStore store(
        kvOptions(4, clients * keys_per_client, /*seed=*/23));

    std::atomic<bool> failed{false};
    std::vector<std::thread> workers;
    for (unsigned c = 0; c < clients; ++c) {
        workers.emplace_back([&, c] {
            for (int r = 0; r < rounds && !failed.load(); ++r) {
                for (int k = 0; k < keys_per_client; ++k) {
                    const std::string key = "c" + std::to_string(c) +
                                            ":" + std::to_string(k);
                    const std::string val =
                        KvWorkloadGenerator::valueFor(key, r, 64);
                    store.put(key, val);
                    const auto got = store.get(key);
                    if (!got.has_value() || *got != val) {
                        failed.store(true);
                        ADD_FAILURE()
                            << key << " round " << r << ": "
                            << (got ? *got : "<miss>");
                    }
                }
                // Batched round over the same keyspace.
                std::vector<std::string> keys;
                for (int k = 0; k < keys_per_client; ++k)
                    keys.push_back("c" + std::to_string(c) + ":" +
                                   std::to_string(k));
                const auto batch = store.multiGet(keys);
                for (int k = 0; k < keys_per_client; ++k) {
                    const std::string want =
                        KvWorkloadGenerator::valueFor(keys[k], r, 64);
                    if (!batch[k].has_value() || *batch[k] != want) {
                        failed.store(true);
                        ADD_FAILURE() << keys[k] << " batch round "
                                      << r;
                    }
                }
            }
        });
    }
    for (auto &t : workers)
        t.join();
    EXPECT_FALSE(failed.load());
    EXPECT_EQ(store.liveKeys(), clients * keys_per_client);
    EXPECT_TRUE(store.integrityOk());

    const util::MetricsRegistry m = store.metrics();
    EXPECT_EQ(m.counter("kv.puts"),
              std::uint64_t(clients) * rounds * keys_per_client);
    // Only the round-0 inserts miss their index lookup; every get
    // (single or batched) lands after the put it reads.
    EXPECT_EQ(m.counter("kv.misses"),
              std::uint64_t(clients) * keys_per_client);
}

TEST(KvConcurrent, ContendedKeysSerializeWithoutCorruption)
{
    // All clients fight over the SAME small key set with writer wins
    // unknowable -- but every read must return SOME value a client
    // wrote for that key (no torn records, no dummy leakage), and the
    // slot accounting must balance at the end.
    const unsigned clients = 4;
    const int rounds = 30;
    const int hot_keys = 3;
    ObliviousKVStore store(kvOptions(2, 16, /*seed=*/29));

    std::atomic<bool> failed{false};
    std::vector<std::thread> workers;
    for (unsigned c = 0; c < clients; ++c) {
        workers.emplace_back([&, c] {
            for (int r = 0; r < rounds && !failed.load(); ++r) {
                const std::string key =
                    "hot" + std::to_string((c + r) % hot_keys);
                if (r % 3 == 2) {
                    (void)store.erase(key);
                    continue;
                }
                store.put(key, key + "=" + std::to_string(c) + "." +
                                   std::to_string(r));
                const auto got = store.get(key);
                // A concurrent erase may remove it; a hit must carry
                // a well-formed value for THIS key.
                if (got.has_value() &&
                    got->rfind(key + "=", 0) != 0) {
                    failed.store(true);
                    ADD_FAILURE() << "torn read: " << *got;
                }
            }
        });
    }
    for (auto &t : workers)
        t.join();
    EXPECT_FALSE(failed.load());
    EXPECT_LE(store.liveKeys(), hot_keys);
    EXPECT_TRUE(store.integrityOk());

    // Every op committed or rolled back: gets+puts+erases add up and
    // the store still accepts new work.
    store.put("post", "mortem");
    EXPECT_EQ(store.get("post").value(), "mortem");
}

TEST(KvConcurrent, WorkloadDrivenSoak)
{
    // Zipfian generator per client (distinct tenants), full op mix
    // incl. misses; correctness oracle is a per-thread shadow map.
    const unsigned clients = 3;
    ObliviousKVStore store(kvOptions(4, 96, /*seed=*/31));

    std::atomic<bool> failed{false};
    std::vector<std::thread> workers;
    for (unsigned c = 0; c < clients; ++c) {
        workers.emplace_back([&, c] {
            KvWorkloadSpec spec;
            spec.kind = KvWorkloadKind::Zipfian;
            spec.tenant = "soak" + std::to_string(c);
            spec.keys = 24;
            spec.getFraction = 0.6;
            spec.missFraction = 0.1;
            spec.valueBytes = 48;
            KvWorkloadGenerator gen(spec, 1000 + c);
            std::unordered_map<std::string, std::string> shadow;
            for (int i = 0; i < 120 && !failed.load(); ++i) {
                const KvOp op = gen.next();
                try {
                    if (op.put) {
                        store.put(op.key, op.value);
                        shadow[op.key] = op.value;
                    } else {
                        const auto got = store.get(op.key);
                        const auto want = shadow.find(op.key);
                        const bool have =
                            want != shadow.end();
                        if (got.has_value() != have ||
                            (have && *got != want->second)) {
                            failed.store(true);
                            ADD_FAILURE()
                                << op.key << " op " << i;
                        }
                    }
                } catch (const KvStoreFullError &) {
                    // Capacity contention across tenants is fine.
                }
            }
        });
    }
    for (auto &t : workers)
        t.join();
    EXPECT_FALSE(failed.load());
    EXPECT_TRUE(store.integrityOk());
    EXPECT_LE(store.liveKeys(), store.capacityKeys());
}

} // namespace
} // namespace secdimm::app
