/**
 * @file
 * Workload engine: seed-pinned determinism (the contract behind
 * trace_replay --workload-seed=), statistical shape of each generator
 * (zipfian skew, hot-set concentration, scan sequentiality, mix
 * tenant ratios), WorkloadSpec JSON round-trips, CLI flag parsing,
 * and the KvBlockStream trace adapter.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "app/kv_workload.hh"

namespace secdimm::app
{
namespace
{

std::vector<KvOp>
take(KvWorkloadGenerator &gen, std::size_t n)
{
    std::vector<KvOp> ops;
    ops.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        ops.push_back(gen.next());
    return ops;
}

/** Numeric id of a "tenant:k<id>" key (miss keys are "tenant:m..."). */
long
keyId(const std::string &key)
{
    const std::size_t at = key.rfind(":k");
    if (at == std::string::npos)
        return -1;
    return std::stol(key.substr(at + 2));
}

TEST(KvWorkload, SameSeedSameStreamDifferentSeedDiffers)
{
    KvWorkloadSpec spec;
    spec.kind = KvWorkloadKind::Zipfian;
    spec.keys = 128;
    spec.missFraction = 0.2;

    KvWorkloadGenerator a(spec, 42), b(spec, 42), c(spec, 43);
    const auto ops_a = take(a, 400);
    const auto ops_b = take(b, 400);
    const auto ops_c = take(c, 400);

    bool diverged = false;
    for (std::size_t i = 0; i < ops_a.size(); ++i) {
        EXPECT_EQ(ops_a[i].key, ops_b[i].key) << i;
        EXPECT_EQ(ops_a[i].value, ops_b[i].value) << i;
        EXPECT_EQ(ops_a[i].put, ops_b[i].put) << i;
        EXPECT_EQ(ops_a[i].expectAbsent, ops_b[i].expectAbsent) << i;
        diverged = diverged || ops_a[i].key != ops_c[i].key;
    }
    EXPECT_TRUE(diverged);

    // Preload is deterministic too and covers the whole population.
    const auto pre = a.preload();
    ASSERT_EQ(pre.size(), spec.keys);
    for (const KvOp &op : pre)
        EXPECT_TRUE(op.put);
}

TEST(KvWorkload, ZipfianIsSkewedAndScattered)
{
    KvWorkloadSpec spec;
    spec.kind = KvWorkloadKind::Zipfian;
    spec.keys = 256;
    spec.zipfTheta = 0.99;
    spec.getFraction = 1.0;
    KvWorkloadGenerator gen(spec, 7);

    std::map<std::string, std::size_t> freq;
    for (const KvOp &op : take(gen, 4000))
        ++freq[op.key];

    std::size_t top = 0;
    long top_id = -1;
    for (const auto &[key, count] : freq) {
        if (count > top) {
            top = count;
            top_id = keyId(key);
        }
    }
    // Uniform would give ~16 hits/key; zipf(0.99) concentrates far
    // more on the head...
    EXPECT_GT(top, 200u);
    // ...and rank scrambling means the hottest key is (overwhelmingly
    // likely) not literally id 0.
    EXPECT_GE(top_id, 0);
    EXPECT_LT(freq.size(), spec.keys + 1);
}

TEST(KvWorkload, HotSetConcentratesOps)
{
    KvWorkloadSpec spec;
    spec.kind = KvWorkloadKind::HotSet;
    spec.keys = 200;
    spec.hotOpFraction = 0.9;
    spec.hotKeyFraction = 0.1;
    spec.getFraction = 1.0;
    KvWorkloadGenerator gen(spec, 11);

    std::map<std::string, std::size_t> freq;
    const std::size_t total = 5000;
    for (const KvOp &op : take(gen, total))
        ++freq[op.key];

    // The 20 hottest keys should absorb ~90% of the traffic.
    std::vector<std::size_t> counts;
    for (const auto &[key, count] : freq)
        counts.push_back(count);
    std::sort(counts.rbegin(), counts.rend());
    std::size_t hot_ops = 0;
    for (std::size_t i = 0; i < counts.size() && i < 20; ++i)
        hot_ops += counts[i];
    EXPECT_GT(hot_ops, total * 80 / 100);
    EXPECT_LT(hot_ops, total * 97 / 100);
}

TEST(KvWorkload, ScanIsSequentialInRuns)
{
    KvWorkloadSpec spec;
    spec.kind = KvWorkloadKind::Scan;
    spec.keys = 500;
    spec.scanLen = 32;
    spec.getFraction = 1.0;
    KvWorkloadGenerator gen(spec, 13);

    const auto ops = take(gen, 1000);
    std::size_t sequential = 0;
    for (std::size_t i = 1; i < ops.size(); ++i) {
        const long prev = keyId(ops[i - 1].key);
        const long cur = keyId(ops[i].key);
        if (cur == (prev + 1) % static_cast<long>(spec.keys))
            ++sequential;
    }
    // Within every 32-op sweep all steps are +1; only the jumps break
    // the chain.
    EXPECT_GT(sequential, ops.size() * 9 / 10);
}

TEST(KvWorkload, MixBlendsTenantsByWeight)
{
    KvWorkloadSpec zipf;
    zipf.kind = KvWorkloadKind::Zipfian;
    zipf.tenant = "analytics";
    zipf.keys = 64;
    KvWorkloadSpec scan;
    scan.kind = KvWorkloadKind::Scan;
    scan.tenant = "batch";
    scan.keys = 64;

    KvWorkloadSpec mix;
    mix.kind = KvWorkloadKind::Mix;
    mix.tenants = {zipf, scan};
    mix.weights = {3.0, 1.0};
    KvWorkloadGenerator gen(mix, 17);

    std::size_t analytics = 0, batch = 0;
    for (const KvOp &op : take(gen, 4000)) {
        if (op.key.rfind("analytics:", 0) == 0)
            ++analytics;
        else if (op.key.rfind("batch:", 0) == 0)
            ++batch;
        else
            FAIL() << "unexpected tenant in key " << op.key;
    }
    // 3:1 split within generous sampling noise.
    EXPECT_GT(analytics, 2600u);
    EXPECT_LT(analytics, 3400u);
    EXPECT_EQ(analytics + batch, 4000u);

    // Mix preload covers every tenant's population.
    EXPECT_EQ(gen.preload().size(), zipf.keys + scan.keys);
}

TEST(KvWorkload, SpecJsonRoundTrips)
{
    KvWorkloadSpec inner;
    inner.kind = KvWorkloadKind::HotSet;
    inner.tenant = "web";
    inner.keys = 77;
    inner.hotOpFraction = 0.8;
    inner.hotKeyFraction = 0.05;
    inner.getFraction = 0.6;
    inner.missFraction = 0.25;
    inner.valueBytes = 40;

    KvWorkloadSpec spec;
    spec.kind = KvWorkloadKind::Mix;
    spec.tenants = {inner};
    spec.weights = {2.5};

    const std::string json = kvWorkloadSpecToJson(spec, 2);
    std::string err;
    const auto parsed = kvWorkloadSpecFromJson(json, &err);
    ASSERT_TRUE(parsed.has_value()) << err;
    EXPECT_EQ(parsed->kind, KvWorkloadKind::Mix);
    ASSERT_EQ(parsed->tenants.size(), 1u);
    const KvWorkloadSpec &t = parsed->tenants[0];
    EXPECT_EQ(t.kind, KvWorkloadKind::HotSet);
    EXPECT_EQ(t.tenant, "web");
    EXPECT_EQ(t.keys, 77u);
    EXPECT_DOUBLE_EQ(t.hotOpFraction, 0.8);
    EXPECT_DOUBLE_EQ(t.hotKeyFraction, 0.05);
    EXPECT_DOUBLE_EQ(t.getFraction, 0.6);
    EXPECT_DOUBLE_EQ(t.missFraction, 0.25);
    EXPECT_EQ(t.valueBytes, 40u);
    EXPECT_DOUBLE_EQ(parsed->weights.at(0), 2.5);

    // Same stream either side of the round-trip.
    KvWorkloadGenerator a(spec, 3), b(*parsed, 3);
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(a.next().key, b.next().key);
}

TEST(KvWorkload, MalformedSpecsAreRejected)
{
    std::string err;
    EXPECT_FALSE(kvWorkloadSpecFromJson("{", &err).has_value());
    EXPECT_FALSE(err.empty());
    EXPECT_FALSE(
        kvWorkloadSpecFromJson("{\"kind\": \"nope\"}").has_value());
    EXPECT_FALSE(
        kvWorkloadSpecFromJson("{\"kind\": \"zipfian\", \"bogus\": 1}")
            .has_value());
    // Out-of-range parameters.
    EXPECT_FALSE(kvWorkloadSpecFromJson(
                     "{\"kind\": \"zipfian\", \"zipf_theta\": 1.5}")
                     .has_value());
    EXPECT_FALSE(kvWorkloadSpecFromJson(
                     "{\"kind\": \"zipfian\", \"keys\": 0}")
                     .has_value());
    // Mix needs tenants, with weights parallel.
    EXPECT_FALSE(kvWorkloadSpecFromJson("{\"kind\": \"mix\"}")
                     .has_value());
    EXPECT_FALSE(
        kvWorkloadSpecFromJson(
            "{\"kind\": \"mix\", \"tenants\": [{\"kind\": \"scan\"}], "
            "\"weights\": [1.0, 2.0]}")
            .has_value());
}

TEST(KvWorkload, FlagShorthandsParse)
{
    std::string err;
    auto zipf = parseKvWorkloadFlag("zipfian:0.75", &err);
    ASSERT_TRUE(zipf.has_value()) << err;
    EXPECT_EQ(zipf->kind, KvWorkloadKind::Zipfian);
    EXPECT_DOUBLE_EQ(zipf->zipfTheta, 0.75);

    auto hot = parseKvWorkloadFlag("hotset:0.25");
    ASSERT_TRUE(hot.has_value());
    EXPECT_EQ(hot->kind, KvWorkloadKind::HotSet);
    EXPECT_DOUBLE_EQ(hot->hotOpFraction, 0.25);

    auto scan = parseKvWorkloadFlag("scan");
    ASSERT_TRUE(scan.has_value());
    EXPECT_EQ(scan->kind, KvWorkloadKind::Scan);
    auto scan16 = parseKvWorkloadFlag("scan:16");
    ASSERT_TRUE(scan16.has_value());
    EXPECT_EQ(scan16->scanLen, 16u);

    // mix:<file> loads a full JSON spec from disk.
    KvWorkloadSpec sub;
    sub.kind = KvWorkloadKind::Scan;
    sub.tenant = "filed";
    KvWorkloadSpec mix;
    mix.kind = KvWorkloadKind::Mix;
    mix.tenants = {sub};
    mix.weights = {1.0};
    const std::string path = "kv_workload_flag_test.json";
    {
        std::ofstream out(path);
        out << kvWorkloadSpecToJson(mix, 2);
    }
    auto filed = parseKvWorkloadFlag("mix:" + path, &err);
    std::remove(path.c_str());
    ASSERT_TRUE(filed.has_value()) << err;
    EXPECT_EQ(filed->kind, KvWorkloadKind::Mix);
    ASSERT_EQ(filed->tenants.size(), 1u);
    EXPECT_EQ(filed->tenants[0].tenant, "filed");

    EXPECT_FALSE(parseKvWorkloadFlag("zipfian:2.0", &err).has_value());
    EXPECT_FALSE(parseKvWorkloadFlag("unknown", &err).has_value());
    EXPECT_FALSE(
        parseKvWorkloadFlag("mix:/does/not/exist.json", &err)
            .has_value());
}

TEST(KvWorkload, ValueForIsPureAndSized)
{
    const std::string v1 = KvWorkloadGenerator::valueFor("k", 5, 32);
    EXPECT_EQ(v1, KvWorkloadGenerator::valueFor("k", 5, 32));
    EXPECT_EQ(v1.size(), 32u);
    EXPECT_NE(v1, KvWorkloadGenerator::valueFor("k", 6, 32));
    EXPECT_NE(v1, KvWorkloadGenerator::valueFor("j", 5, 32));
}

TEST(KvWorkload, BlockStreamIsDeterministicAndSlotShaped)
{
    KvWorkloadSpec spec;
    spec.kind = KvWorkloadKind::Zipfian;
    spec.keys = 64;

    const std::uint64_t footprint = 1 << 16;
    KvBlockStream a(spec, 9, footprint, 4);
    KvBlockStream b(spec, 9, footprint, 4);
    KvBlockStream c(spec, 10, footprint, 4);

    bool diverged = false;
    for (int i = 0; i < 600; ++i) {
        const trace::TraceRecord ra = a.next();
        const trace::TraceRecord rb = b.next();
        const trace::TraceRecord rc = c.next();
        EXPECT_EQ(ra.addr, rb.addr) << i;
        EXPECT_EQ(ra.write, rb.write) << i;
        EXPECT_EQ(ra.instGap, rb.instGap) << i;
        EXPECT_LT(ra.addr, footprint);
        diverged = diverged || ra.addr != rc.addr;
    }
    EXPECT_TRUE(diverged);

    // Each op expands to blocksPerSlot() consecutive block touches of
    // one slot with the same read/write kind.
    KvBlockStream fresh(spec, 9, footprint, 4);
    for (int op = 0; op < 50; ++op) {
        const trace::TraceRecord first = fresh.next();
        EXPECT_EQ(first.addr % blockBytes, 0u);
        for (unsigned blk = 1; blk < fresh.blocksPerSlot(); ++blk) {
            const trace::TraceRecord rec = fresh.next();
            EXPECT_EQ(rec.addr, first.addr + blk * blockBytes);
            EXPECT_EQ(rec.write, first.write);
            EXPECT_EQ(rec.instGap, 1u);
        }
    }
}

} // namespace
} // namespace secdimm::app
