#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "core/secure_memory_system.hh"

namespace secdimm::core
{
namespace
{

using Protocol = SecureMemorySystem::Protocol;

SecureMemorySystem::Options
opts(Protocol p, std::uint64_t capacity = 64 << 10)
{
    SecureMemorySystem::Options o;
    o.protocol = p;
    o.capacityBytes = capacity;
    o.numSdimms = 2;
    o.seed = 5;
    return o;
}

class AllProtocols : public ::testing::TestWithParam<Protocol>
{
};

INSTANTIATE_TEST_SUITE_P(
    Protocols, AllProtocols,
    ::testing::Values(Protocol::PathOram, Protocol::Freecursive,
                      Protocol::Independent, Protocol::Split,
                      Protocol::IndepSplit),
    [](const ::testing::TestParamInfo<Protocol> &info) {
        switch (info.param) {
          case Protocol::PathOram: return "PathOram";
          case Protocol::Freecursive: return "Freecursive";
          case Protocol::Independent: return "Independent";
          case Protocol::Split: return "Split";
          case Protocol::IndepSplit: return "IndepSplit";
        }
        return "unknown";
    });

TEST_P(AllProtocols, CapacityAtLeastRequested)
{
    SecureMemorySystem mem(opts(GetParam(), 100000));
    EXPECT_GE(mem.capacityBytes(), 100000u);
}

TEST_P(AllProtocols, BlockRoundTrip)
{
    SecureMemorySystem mem(opts(GetParam()));
    BlockData d{};
    for (std::size_t i = 0; i < d.size(); ++i)
        d[i] = static_cast<std::uint8_t>(i * 3);
    mem.writeBlock(17, d);
    EXPECT_EQ(mem.readBlock(17), d);
    EXPECT_TRUE(mem.integrityOk());
}

TEST_P(AllProtocols, ByteGranularReadWrite)
{
    SecureMemorySystem mem(opts(GetParam()));
    const std::string msg = "the secret crosses a block boundary!";
    // Unaligned, spans two blocks.
    mem.write(60, msg.data(), msg.size());
    std::string got(msg.size(), '\0');
    mem.read(60, got.data(), got.size());
    EXPECT_EQ(got, msg);
}

TEST_P(AllProtocols, PartialWritePreservesNeighbors)
{
    SecureMemorySystem mem(opts(GetParam()));
    BlockData base;
    base.fill(0xaa);
    mem.writeBlock(2, base);
    const std::uint8_t patch[4] = {1, 2, 3, 4};
    mem.write(2 * blockBytes + 10, patch, sizeof(patch));
    const BlockData after = mem.readBlock(2);
    EXPECT_EQ(after[9], 0xaa);
    EXPECT_EQ(after[10], 1);
    EXPECT_EQ(after[13], 4);
    EXPECT_EQ(after[14], 0xaa);
}

TEST_P(AllProtocols, UninitializedReadsZero)
{
    SecureMemorySystem mem(opts(GetParam()));
    std::uint64_t v = 123;
    mem.read(4096, &v, sizeof(v));
    EXPECT_EQ(v, 0u);
}

TEST_P(AllProtocols, AccessCountGrows)
{
    SecureMemorySystem mem(opts(GetParam()));
    const auto before = mem.accessCount();
    BlockData d{};
    mem.writeBlock(0, d);
    mem.readBlock(0);
    EXPECT_GE(mem.accessCount(), before + 2);
}

TEST_P(AllProtocols, ManyMixedOperations)
{
    SecureMemorySystem mem(opts(GetParam(), 32 << 10));
    const Addr blocks = mem.capacityBytes() / blockBytes;
    for (Addr a = 0; a < std::min<Addr>(blocks, 100); ++a) {
        BlockData d{};
        d[0] = static_cast<std::uint8_t>(a);
        d[63] = static_cast<std::uint8_t>(a ^ 0xff);
        mem.writeBlock(a, d);
    }
    for (Addr a = 0; a < std::min<Addr>(blocks, 100); ++a) {
        const BlockData d = mem.readBlock(a);
        EXPECT_EQ(d[0], static_cast<std::uint8_t>(a));
        EXPECT_EQ(d[63], static_cast<std::uint8_t>(a ^ 0xff));
    }
    EXPECT_TRUE(mem.integrityOk());
}

TEST(SecureMemorySystem, IndepSplitWithFourGroups)
{
    auto o = opts(Protocol::IndepSplit);
    o.numSdimms = 4; // Four Independent groups of two slices each.
    o.slicesPerGroup = 2;
    SecureMemorySystem mem(o);
    const char msg[] = "four groups, two slices each";
    mem.write(0, msg, sizeof(msg));
    char got[sizeof(msg)];
    mem.read(0, got, sizeof(got));
    EXPECT_EQ(std::memcmp(got, msg, sizeof(msg)), 0);
    EXPECT_TRUE(mem.integrityOk());
    EXPECT_TRUE(mem.auditNow().ok());
}

TEST(SecureMemorySystem, IndepSplitExportsGroupMetrics)
{
    SecureMemorySystem mem(opts(Protocol::IndepSplit));
    BlockData d{};
    mem.writeBlock(3, d);
    mem.readBlock(3);
    const auto m = mem.metrics();
    EXPECT_GT(m.counter("sdimm.indep_split.g0.accesses") +
                  m.counter("sdimm.indep_split.g0.dummy_accesses"),
              0u);
    EXPECT_GT(m.counter("sdimm.indep_split.appends_real") +
                  m.counter("sdimm.indep_split.appends_dummy"),
              0u);
}

TEST(SecureMemorySystem, SplitWithFourSlices)
{
    auto o = opts(Protocol::Split);
    o.numSdimms = 4;
    SecureMemorySystem mem(o);
    const char msg[] = "four-way slicing";
    mem.write(0, msg, sizeof(msg));
    char got[sizeof(msg)];
    mem.read(0, got, sizeof(got));
    EXPECT_EQ(std::memcmp(got, msg, sizeof(msg)), 0);
}

} // namespace
} // namespace secdimm::core
