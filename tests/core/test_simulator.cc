#include <gtest/gtest.h>

#include "core/simulator.hh"

namespace secdimm::core
{
namespace
{

SimLengths
tinyLengths()
{
    SimLengths l;
    l.warmupRecords = 2000;
    l.measureRecords = 300;
    return l;
}

SystemConfig
tinyConfig(DesignPoint d)
{
    SystemConfig cfg = makeConfig(d, /*tree_levels=*/14,
                                  /*cached_levels=*/4);
    cfg.cpuGeom.rowsPerBank = 4096;
    cfg.sdimmGeom.rowsPerBank = 4096;
    return cfg;
}

SimResult
quickRun(DesignPoint d, const char *workload = "mcf",
         std::uint64_t seed = 1)
{
    return runWorkload(tinyConfig(d), *trace::findProfile(workload),
                       tinyLengths(), seed);
}

TEST(Simulator, EveryDesignRunsToCompletion)
{
    for (DesignPoint d :
         {DesignPoint::NonSecure, DesignPoint::PathOram,
          DesignPoint::Freecursive, DesignPoint::Indep2,
          DesignPoint::Split2, DesignPoint::IndepSplit}) {
        const SimResult r = quickRun(d);
        EXPECT_EQ(r.core.l1Misses, 300u) << designName(d);
        EXPECT_GT(r.core.cycles, 0u) << designName(d);
        EXPECT_GT(r.energy.totalNj(), 0.0) << designName(d);
    }
}

TEST(Simulator, DeterministicForSeed)
{
    const SimResult a = quickRun(DesignPoint::Indep2, "milc", 9);
    const SimResult b = quickRun(DesignPoint::Indep2, "milc", 9);
    EXPECT_EQ(a.core.cycles, b.core.cycles);
    EXPECT_EQ(a.offDimmLines, b.offDimmLines);
    EXPECT_DOUBLE_EQ(a.energy.totalNj(), b.energy.totalNj());
}

TEST(Simulator, OramMuchSlowerThanNonSecure)
{
    // Figure 6 essence: Freecursive is several-fold slower.
    const SimResult plain = quickRun(DesignPoint::NonSecure);
    const SimResult oram = quickRun(DesignPoint::Freecursive);
    EXPECT_GT(oram.core.cycles, 3 * plain.core.cycles);
}

TEST(Simulator, PathOramBaselineOrdersCorrectly)
{
    // Figure 8 baseline set: plain Path ORAM pays the whole-path cost
    // on EVERY miss (no PLB shortcuts), so it is clearly slower than
    // nothing at all (the tiny 14-level tree softens the ratio, hence
    // 1.5x rather than the paper's larger gap); Freecursive never does
    // better than one accessORAM per miss, so Path ORAM -- at exactly
    // one -- bounds it from below on the per-miss recursion average.
    const SimResult plain = quickRun(DesignPoint::NonSecure);
    const SimResult path = quickRun(DesignPoint::PathOram);
    const SimResult fc = quickRun(DesignPoint::Freecursive);
    EXPECT_GT(2 * path.core.cycles, 3 * plain.core.cycles);
    EXPECT_DOUBLE_EQ(path.avgOramsPerMiss, 1.0);
    EXPECT_GE(fc.avgOramsPerMiss, path.avgOramsPerMiss);
}

TEST(Simulator, TimingLayerAccountsPermanentFaultRecovery)
{
    // An SDIMM dying mid-run costs real simulated time: watchdog
    // backoff waits plus the bulk evacuation transfer, all surfaced
    // through SimResult.recoveryCycles and the fault.* metrics.
    SystemConfig faulty = tinyConfig(DesignPoint::Indep2);
    faulty.faultPlan = fault::FaultPlan::hardDeath(1, 50, 7);
    const SimResult hurt = runWorkload(
        faulty, *trace::findProfile("mcf"), tinyLengths(), 1);
    const SimResult clean = quickRun(DesignPoint::Indep2);

    EXPECT_GT(hurt.recoveryCycles, 0u);
    EXPECT_EQ(hurt.metrics.counter("core.recovery_cycles"),
              hurt.recoveryCycles);
    EXPECT_EQ(hurt.metrics.counter("fault.quarantined_sdimms"), 1u);
    EXPECT_GT(hurt.metrics.counter("fault.watchdog_probes"), 0u);
    EXPECT_GT(hurt.metrics.counter("fault.evacuation_appends"), 0u);
    EXPECT_GT(hurt.core.cycles, clean.core.cycles);
    EXPECT_EQ(clean.recoveryCycles, 0u);
    for (const auto &n : clean.metrics.names())
        EXPECT_NE(n, "fault.watchdog_probes");
}

TEST(Simulator, DegradedLatencyUnitSlowsTheRunDown)
{
    SystemConfig slow = tinyConfig(DesignPoint::Indep2);
    slow.faultPlan = fault::FaultPlan::degradedLatency(0, 2000, 7);
    const SimResult hurt = runWorkload(
        slow, *trace::findProfile("mcf"), tinyLengths(), 1);
    const SimResult clean = quickRun(DesignPoint::Indep2);
    EXPECT_GT(hurt.metrics.counter("fault.degraded_latency_cycles"), 0u);
    EXPECT_GT(hurt.core.cycles, clean.core.cycles);
    // Slow is not dead: nothing is detected, quarantined, or lost.
    EXPECT_EQ(hurt.metrics.counter("fault.detected.total"), 0u);
    EXPECT_EQ(hurt.metrics.counter("fault.quarantined_sdimms"), 0u);
}

TEST(Simulator, SdimmDesignsBeatFreecursive)
{
    // Figures 8/9 essence: both SDIMM protocols outperform the
    // baseline on a memory-intensive workload.
    const SimResult fc = quickRun(DesignPoint::Freecursive);
    const SimResult ind = quickRun(DesignPoint::Indep2);
    const SimResult split = quickRun(DesignPoint::Split2);
    EXPECT_LT(ind.core.cycles, fc.core.cycles);
    EXPECT_LT(split.core.cycles, fc.core.cycles);
}

TEST(Simulator, SdimmSlashesOffDimmTraffic)
{
    const SimResult fc = quickRun(DesignPoint::Freecursive);
    const SimResult ind = quickRun(DesignPoint::Indep2);
    EXPECT_LT(ind.offDimmLines, fc.offDimmLines / 5);
}

TEST(Simulator, RecursionAverageInPaperRange)
{
    // Paper reports ~1.4 accessORAMs per miss on its (fairly local)
    // workloads; our streaming profile should land near that, and
    // even the pointer-chasing profile must stay well below the
    // no-PLB cost of n+1 = 6.
    const SimResult seq = quickRun(DesignPoint::Freecursive,
                                   "libquantum");
    EXPECT_GE(seq.avgOramsPerMiss, 1.0);
    EXPECT_LE(seq.avgOramsPerMiss, 2.5);
    const SimResult rnd = quickRun(DesignPoint::Freecursive, "mcf");
    EXPECT_LT(rnd.avgOramsPerMiss, 6.0);
    EXPECT_GT(rnd.avgOramsPerMiss, seq.avgOramsPerMiss);
}

TEST(Simulator, EnergyBreakdownPopulated)
{
    const SimResult r = quickRun(DesignPoint::Indep2);
    EXPECT_GT(r.energy.actPreNj, 0.0);
    EXPECT_GT(r.energy.rdWrNj, 0.0);
    EXPECT_GT(r.energy.ioNj, 0.0);
    EXPECT_GT(r.energy.backgroundNj, 0.0);
}

TEST(Simulator, ProbesOnlyInSdimmDesigns)
{
    EXPECT_EQ(quickRun(DesignPoint::Freecursive).probes, 0u);
    EXPECT_GT(quickRun(DesignPoint::Indep2).probes, 0u);
}

TEST(Simulator, BenchLengthsEnvOverride)
{
    ::setenv("SDIMM_BENCH_ACCESSES", "123", 1);
    ::setenv("SDIMM_BENCH_WARMUP", "456", 1);
    const SimLengths l = benchLengths();
    EXPECT_EQ(l.measureRecords, 123u);
    EXPECT_EQ(l.warmupRecords, 456u);
    ::unsetenv("SDIMM_BENCH_ACCESSES");
    ::unsetenv("SDIMM_BENCH_WARMUP");
    const SimLengths d = benchLengths(11, 22);
    EXPECT_EQ(d.measureRecords, 11u);
    EXPECT_EQ(d.warmupRecords, 22u);
}

} // namespace
} // namespace secdimm::core
