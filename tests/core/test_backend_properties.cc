/**
 * @file
 * The MemoryBackend contract, checked uniformly across every design
 * point: all admitted accesses complete exactly once, time never runs
 * backwards, the backend drains to idle, and runs are deterministic
 * per seed.
 */

#include <gtest/gtest.h>

#include <map>

#include "core/system_config.hh"

namespace secdimm::core
{
namespace
{

class BackendContract : public ::testing::TestWithParam<DesignPoint>
{
  protected:
    SystemConfig
    config() const
    {
        SystemConfig cfg = makeConfig(GetParam(), 12, 4);
        cfg.cpuGeom.rowsPerBank = 4096;
        cfg.sdimmGeom.rowsPerBank = 4096;
        return cfg;
    }
};

INSTANTIATE_TEST_SUITE_P(
    Designs, BackendContract,
    ::testing::Values(DesignPoint::NonSecure, DesignPoint::Freecursive,
                      DesignPoint::Indep2, DesignPoint::Split2,
                      DesignPoint::Indep4, DesignPoint::Split4,
                      DesignPoint::IndepSplit),
    [](const ::testing::TestParamInfo<DesignPoint> &info) {
        std::string n = designName(info.param);
        for (char &c : n) {
            if (c == '-')
                c = '_';
        }
        return n;
    });

TEST_P(BackendContract, AllAccessesCompleteOnce)
{
    auto backend = buildBackend(config(), 1);
    std::map<std::uint64_t, unsigned> completions;
    backend->setCompletionCallback(
        [&](std::uint64_t id, Tick) { ++completions[id]; });
    Tick now = 0;
    for (unsigned i = 1; i <= 40; ++i) {
        while (!backend->canAccept()) {
            const Tick next = backend->nextEventAt();
            ASSERT_NE(next, tickNever);
            backend->advanceTo(next);
            now = std::max(now, next);
        }
        backend->access(i, i * 8191 * 64, i % 2 == 0, now);
    }
    while (!backend->idle()) {
        const Tick next = backend->nextEventAt();
        ASSERT_NE(next, tickNever) << "deadlock while draining";
        backend->advanceTo(next);
    }
    ASSERT_EQ(completions.size(), 40u);
    for (const auto &kv : completions)
        EXPECT_EQ(kv.second, 1u) << "id " << kv.first;
}

TEST_P(BackendContract, CompletionsAfterSubmission)
{
    auto backend = buildBackend(config(), 2);
    std::map<std::uint64_t, Tick> submitted;
    bool ok = true;
    backend->setCompletionCallback([&](std::uint64_t id, Tick done) {
        if (done < submitted[id])
            ok = false;
    });
    Tick now = 100;
    for (unsigned i = 1; i <= 20; ++i) {
        while (!backend->canAccept())
            backend->advanceTo(backend->nextEventAt());
        submitted[i] = now;
        backend->access(i, i * 64 * 997, false, now);
        now += 50;
    }
    while (!backend->idle()) {
        const Tick next = backend->nextEventAt();
        if (next == tickNever)
            break;
        backend->advanceTo(next);
    }
    EXPECT_TRUE(ok);
}

TEST_P(BackendContract, DeterministicPerSeed)
{
    auto run = [&](std::uint64_t seed) {
        auto backend = buildBackend(config(), seed);
        std::vector<Tick> done;
        backend->setCompletionCallback(
            [&](std::uint64_t, Tick t) { done.push_back(t); });
        Tick now = 0;
        for (unsigned i = 1; i <= 25; ++i) {
            while (!backend->canAccept()) {
                const Tick next = backend->nextEventAt();
                backend->advanceTo(next);
                now = std::max(now, next);
            }
            backend->access(i, i * 64 * 4099, i % 3 == 0, now);
        }
        while (!backend->idle()) {
            const Tick next = backend->nextEventAt();
            if (next == tickNever)
                break;
            backend->advanceTo(next);
        }
        return done;
    };
    EXPECT_EQ(run(7), run(7));
    // Different seeds shuffle leaves, so ORAM designs diverge.
    if (GetParam() != DesignPoint::NonSecure)
        EXPECT_NE(run(7), run(8));
}

TEST_P(BackendContract, IdleBackendHasNoEvents)
{
    auto backend = buildBackend(config(), 3);
    EXPECT_TRUE(backend->idle());
    EXPECT_EQ(backend->nextEventAt(), tickNever);
    EXPECT_TRUE(backend->canAccept());
}

TEST_P(BackendContract, BackpressureEventuallyClears)
{
    auto backend = buildBackend(config(), 4);
    backend->setCompletionCallback([](std::uint64_t, Tick) {});
    unsigned admitted = 0;
    while (backend->canAccept() && admitted < 200)
        backend->access(++admitted, admitted * 64 * 31, false, 0);
    while (!backend->idle()) {
        const Tick next = backend->nextEventAt();
        ASSERT_NE(next, tickNever);
        backend->advanceTo(next);
    }
    EXPECT_TRUE(backend->canAccept());
}

} // namespace
} // namespace secdimm::core
