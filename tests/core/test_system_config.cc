#include <gtest/gtest.h>

#include "core/system_config.hh"

namespace secdimm::core
{
namespace
{

TEST(SystemConfig, Figure7DesignShapes)
{
    EXPECT_EQ(makeConfig(DesignPoint::Indep2).numSdimms(), 2u);
    EXPECT_EQ(makeConfig(DesignPoint::Indep2).cpuChannels, 1u);
    EXPECT_EQ(makeConfig(DesignPoint::Split2).numSdimms(), 2u);
    EXPECT_EQ(makeConfig(DesignPoint::Split2).groups(), 1u);
    EXPECT_EQ(makeConfig(DesignPoint::Indep4).numSdimms(), 4u);
    EXPECT_EQ(makeConfig(DesignPoint::Indep4).cpuChannels, 2u);
    EXPECT_EQ(makeConfig(DesignPoint::Split4).groups(), 1u);
    EXPECT_EQ(makeConfig(DesignPoint::IndepSplit).numSdimms(), 4u);
    EXPECT_EQ(makeConfig(DesignPoint::IndepSplit).groups(), 2u);
}

TEST(SystemConfig, TreeParametersPropagate)
{
    const SystemConfig cfg = makeConfig(DesignPoint::Freecursive, 26, 5);
    EXPECT_EQ(cfg.globalTree().levels, 26u);
    EXPECT_EQ(cfg.globalTree().cachedLevels, 5u);
    EXPECT_EQ(cfg.globalTree().bucketBlocks, 4u); // Table II Z=4.
    EXPECT_EQ(cfg.globalTree().encLatency, 21u);  // Table II.
}

TEST(SystemConfig, TableIIGeometry)
{
    const SystemConfig cfg = makeConfig(DesignPoint::Freecursive);
    EXPECT_EQ(cfg.cpuGeom.ranksPerChannel, 8u);
    EXPECT_EQ(cfg.cpuGeom.banksPerRank, 8u);
    EXPECT_EQ(cfg.cpuGeom.rowBufferBytes, 8192u);
    EXPECT_EQ(cfg.sdimmGeom.ranksPerChannel, 4u);
}

TEST(SystemConfig, BackendsConstructForEveryDesign)
{
    for (DesignPoint d :
         {DesignPoint::NonSecure, DesignPoint::PathOram,
          DesignPoint::Freecursive, DesignPoint::Indep2,
          DesignPoint::Split2, DesignPoint::Indep4,
          DesignPoint::Split4, DesignPoint::IndepSplit}) {
        SystemConfig cfg = makeConfig(d, 14, 4);
        cfg.cpuGeom.rowsPerBank = 4096;
        cfg.sdimmGeom.rowsPerBank = 4096;
        auto backend = buildBackend(cfg, 1);
        ASSERT_NE(backend, nullptr) << designName(d);
        EXPECT_TRUE(backend->idle()) << designName(d);
        EXPECT_TRUE(backend->canAccept()) << designName(d);
    }
}

TEST(SystemConfig, DesignNamesMatchPaper)
{
    EXPECT_STREQ(designName(DesignPoint::Indep2), "INDEP-2");
    EXPECT_STREQ(designName(DesignPoint::Split4), "SPLIT-4");
    EXPECT_STREQ(designName(DesignPoint::IndepSplit), "INDEP-SPLIT");
    EXPECT_STREQ(designName(DesignPoint::Freecursive), "Freecursive");
    EXPECT_STREQ(designName(DesignPoint::PathOram), "PathORAM");
}

TEST(SystemConfig, PathOramIsCpuSideWithFlatPosMap)
{
    // The Figure 8 baseline: no SDIMMs, and exactly one accessORAM
    // per miss because the whole PosMap lives on-chip.
    const SystemConfig cfg = makeConfig(DesignPoint::PathOram);
    EXPECT_EQ(cfg.numSdimms(), 0u);
    EXPECT_EQ(cfg.groups(), 0u);
    EXPECT_EQ(cfg.cpuChannels, 1u);
}

TEST(SystemConfig, RecursionDefaultsMatchTableII)
{
    const SystemConfig cfg = makeConfig(DesignPoint::Freecursive);
    EXPECT_EQ(cfg.recursion.posmapLevels, 5u); // 5 recursive PosMaps.
    EXPECT_EQ(cfg.recursion.plbEntries, 1024u); // 64KB PLB.
}

} // namespace
} // namespace secdimm::core
