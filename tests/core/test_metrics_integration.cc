/**
 * @file
 * End-to-end metrics tests: runWorkload must populate non-zero
 * dram.* / oram.* / sdimm.* metrics for each design point, and every
 * metric name any design emits (with digit runs normalized to "N")
 * must be documented in docs/METRICS.md.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <fstream>
#include <set>
#include <sstream>

#include "app/kv_store.hh"
#include "core/secure_memory_system.hh"
#include "core/simulator.hh"
#include "serve/sharded_memory.hh"

namespace secdimm::core
{
namespace
{

SimLengths
tinyLengths()
{
    SimLengths l;
    l.warmupRecords = 2000;
    l.measureRecords = 300;
    return l;
}

SystemConfig
tinyConfig(DesignPoint d)
{
    SystemConfig cfg = makeConfig(d, /*tree_levels=*/14,
                                  /*cached_levels=*/4);
    cfg.cpuGeom.rowsPerBank = 4096;
    cfg.sdimmGeom.rowsPerBank = 4096;
    return cfg;
}

SimResult
quickRun(DesignPoint d)
{
    return runWorkload(tinyConfig(d), *trace::findProfile("mcf"),
                       tinyLengths(), 1);
}

/** "dram.group0.slice1.reads" -> "dram.groupN.sliceN.reads". */
std::string
normalizeName(const std::string &name)
{
    std::string out;
    bool in_digits = false;
    for (char c : name) {
        if (std::isdigit(static_cast<unsigned char>(c))) {
            if (!in_digits)
                out += 'N';
            in_digits = true;
        } else {
            out += c;
            in_digits = false;
        }
    }
    return out;
}

TEST(MetricsIntegration, NormalizeName)
{
    EXPECT_EQ(normalizeName("dram.group0.slice12.reads"),
              "dram.groupN.sliceN.reads");
    EXPECT_EQ(normalizeName("core.cycles"), "core.cycles");
    EXPECT_EQ(normalizeName("sdimm.s1.queue_depth"),
              "sdimm.sN.queue_depth");
}

TEST(MetricsIntegration, NonSecurePopulatesCoreAndDram)
{
    const SimResult r = quickRun(DesignPoint::NonSecure);
    const auto &m = r.metrics;
    EXPECT_GT(m.counter("core.cycles"), 0u);
    EXPECT_GT(m.counter("core.llc_misses"), 0u);
    EXPECT_GT(m.gauge("core.energy.total_nj"), 0.0);
    EXPECT_GT(m.counter("dram.nonsecure.ch0.reads"), 0u);
    EXPECT_GT(m.counter("dram.nonsecure.ch0.activates"), 0u);
    EXPECT_EQ(m.counter("core.cycles"), r.core.cycles);
}

TEST(MetricsIntegration, FreecursivePopulatesOram)
{
    const SimResult r = quickRun(DesignPoint::Freecursive);
    const auto &m = r.metrics;
    EXPECT_GT(m.counter("dram.freecursive.ch0.reads"), 0u);
    EXPECT_GT(m.counter("oram.access_orams"), 0u);
    EXPECT_GT(m.counter("oram.requests"), 0u);
    EXPECT_GT(m.counter("oram.recursion.requests"), 0u);
    EXPECT_GT(m.counter("oram.recursion.plb.hits") +
                  m.counter("oram.recursion.plb.misses"),
              0u);
    EXPECT_EQ(m.counter("oram.access_orams"), r.accessOrams);
}

TEST(MetricsIntegration, IndependentPopulatesSdimm)
{
    const SimResult r = quickRun(DesignPoint::Indep2);
    const auto &m = r.metrics;
    EXPECT_GT(m.counter("dram.sdimm0.reads"), 0u);
    EXPECT_GT(m.counter("dram.sdimm1.reads"), 0u);
    EXPECT_GT(m.counter("sdimm.s0.ops_executed"), 0u);
    EXPECT_GT(m.counter("sdimm.bus0.transfers"), 0u);
    EXPECT_GT(m.counter("sdimm.bus0.data_bytes"), 0u);
    const auto *depth = m.findHistogram("sdimm.s0.queue_depth");
    ASSERT_NE(depth, nullptr);
    EXPECT_GT(depth->count(), 0u);
    EXPECT_GT(m.counter("oram.recursion.requests"), 0u);
}

TEST(MetricsIntegration, SplitPopulatesSdimm)
{
    const SimResult r = quickRun(DesignPoint::Split2);
    const auto &m = r.metrics;
    EXPECT_GT(m.counter("dram.group0.slice0.reads"), 0u);
    EXPECT_GT(m.counter("dram.group0.slice1.reads"), 0u);
    EXPECT_GT(m.counter("sdimm.g0.ops_executed"), 0u);
    EXPECT_GT(m.counter("sdimm.bus0.transfers"), 0u);
}

TEST(MetricsIntegration, MetricsSurviveJsonRoundTrip)
{
    const SimResult r = quickRun(DesignPoint::Indep2);
    const auto parsed =
        util::MetricsRegistry::fromJson(r.metrics.toJson(2));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->names(), r.metrics.names());
    EXPECT_EQ(parsed->counter("core.cycles"),
              r.metrics.counter("core.cycles"));
}

/**
 * Every metric name any design point emits -- from the timing-layer
 * simulator and from the functional SecureMemorySystem -- must appear
 * in docs/METRICS.md with digit runs spelled "N"
 * (e.g. dram.groupN.sliceN.reads).
 */
TEST(MetricsIntegration, EveryMetricNameIsDocumented)
{
    const std::string doc_path =
        std::string(SECUREDIMM_SOURCE_DIR) + "/docs/METRICS.md";
    std::ifstream in(doc_path);
    ASSERT_TRUE(in.good()) << "cannot open " << doc_path;
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string doc = ss.str();

    std::set<std::string> names;
    for (DesignPoint d :
         {DesignPoint::NonSecure, DesignPoint::PathOram,
          DesignPoint::Freecursive, DesignPoint::Indep2,
          DesignPoint::Split2, DesignPoint::Indep4,
          DesignPoint::Split4, DesignPoint::IndepSplit}) {
        for (const auto &n : quickRun(d).metrics.names())
            names.insert(normalizeName(n));
    }

    // The functional-layer snapshot (SecureMemorySystem::metrics),
    // fault-free and under an armed fault plan (the fault.* family
    // plus the degradation counters only appear in faulty runs).
    for (auto proto : {SecureMemorySystem::Protocol::PathOram,
                       SecureMemorySystem::Protocol::Freecursive,
                       SecureMemorySystem::Protocol::Independent,
                       SecureMemorySystem::Protocol::Split,
                       SecureMemorySystem::Protocol::IndepSplit}) {
        for (const bool with_faults : {false, true}) {
            SecureMemorySystem::Options opt;
            opt.protocol = proto;
            opt.capacityBytes = 1 << 16;
            if (with_faults)
                opt.faultPlan = fault::FaultPlan::uniform(0.05, 7);
            SecureMemorySystem mem(opt);
            BlockData d{};
            for (Addr a = 0; a < 20; ++a) {
                mem.writeBlock(a, d);
                mem.readBlock(a);
            }
            for (const auto &n : mem.metrics().names())
                names.insert(normalizeName(n));
        }
    }

    // Degradation-policy metrics (quarantine counters).
    {
        SecureMemorySystem::Options opt;
        opt.protocol = SecureMemorySystem::Protocol::Independent;
        opt.capacityBytes = 1 << 16;
        opt.faultPlan = fault::FaultPlan::uniform(0.05, 7);
        opt.degradationPolicy = fault::DegradationPolicy::Degraded;
        SecureMemorySystem mem(opt);
        BlockData d{};
        mem.writeBlock(1, d);
        mem.readBlock(1);
        for (const auto &n : mem.metrics().names())
            names.insert(normalizeName(n));
    }

    // The sharded service frontend (serve.* namespace).
    {
        serve::ShardedSecureMemory::Options opt;
        opt.shard.protocol = SecureMemorySystem::Protocol::PathOram;
        opt.shard.capacityBytes = 1 << 16;
        opt.numShards = 2;
        serve::ShardedSecureMemory mem(opt);
        BlockData d{};
        for (Addr a = 0; a < 16; ++a) {
            mem.writeBlock(a, d);
            mem.readBlock(a);
        }
        for (const auto &n : mem.metrics().names())
            names.insert(normalizeName(n));
    }

    // The oblivious KV application layer (kv.* namespace), exercising
    // hits, misses, updates, erases, and a capacity rejection.
    {
        app::ObliviousKVStore::Options opt;
        opt.serve.shard.protocol =
            SecureMemorySystem::Protocol::PathOram;
        opt.serve.shard.capacityBytes = 1 << 16;
        opt.serve.numShards = 2;
        opt.capacityKeys = 8;
        app::ObliviousKVStore store(opt);
        for (int i = 0; i < 8; ++i)
            store.put("m" + std::to_string(i), "v");
        store.put("m0", "v2");
        (void)store.get("m1");
        (void)store.get("ghost");
        (void)store.erase("m2");
        try {
            store.put("overflow", "x");
            store.put("overflow2", "x");
        } catch (const app::KvStoreFullError &) {
        }
        for (const auto &n : store.metrics().names())
            names.insert(normalizeName(n));
    }

    std::vector<std::string> missing;
    for (const auto &n : names) {
        if (doc.find(n) == std::string::npos)
            missing.push_back(n);
    }
    EXPECT_TRUE(missing.empty())
        << "metric names not documented in docs/METRICS.md:\n  "
        << [&] {
               std::string out;
               for (const auto &n : missing)
                   out += n + "\n  ";
               return out;
           }();
}

} // namespace
} // namespace secdimm::core
