#include <gtest/gtest.h>

#include "trace/cache.hh"

namespace secdimm::trace
{
namespace
{

TEST(Cache, ColdMissThenHit)
{
    CacheModel c(4096, 4);
    EXPECT_FALSE(c.access(0x100, false).hit);
    EXPECT_TRUE(c.access(0x100, false).hit);
    // Same line, different byte: still a hit.
    EXPECT_TRUE(c.access(0x13f, false).hit);
    // Next line: miss.
    EXPECT_FALSE(c.access(0x140, false).hit);
}

TEST(Cache, LruEviction)
{
    // 2 sets x 2 ways x 64B = 256B cache; lines mapping to set 0:
    // addresses 0, 128, 256, ...
    CacheModel c(256, 2);
    ASSERT_EQ(c.sets(), 2u);
    c.access(0, false);
    c.access(128, false);
    c.access(0, false);   // Touch 0: now 128 is LRU.
    c.access(256, false); // Evicts 128.
    EXPECT_TRUE(c.access(0, false).hit);
    EXPECT_FALSE(c.access(128, false).hit);
}

TEST(Cache, DirtyEvictionReportsWriteback)
{
    CacheModel c(256, 2);
    c.access(0, true); // Dirty.
    c.access(128, false);
    const auto r = c.access(256, false); // Evicts 0 (LRU, dirty).
    EXPECT_TRUE(r.writeback);
    EXPECT_EQ(r.victimAddr, 0u);
    EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, CleanEvictionNoWriteback)
{
    CacheModel c(256, 2);
    c.access(0, false);
    c.access(128, false);
    const auto r = c.access(256, false);
    EXPECT_FALSE(r.writeback);
}

TEST(Cache, WriteHitMarksDirty)
{
    CacheModel c(256, 2);
    c.access(0, false);
    c.access(0, true); // Hit, marks dirty.
    c.access(128, false);
    const auto r = c.access(256, false); // Evict 0.
    EXPECT_TRUE(r.writeback);
}

TEST(Cache, FlushDropsContents)
{
    CacheModel c(4096, 4);
    c.access(0x100, false);
    c.flush();
    EXPECT_FALSE(c.access(0x100, false).hit);
}

TEST(Cache, StatsAndMissRate)
{
    CacheModel c(4096, 4);
    c.access(0, false);
    c.access(0, false);
    c.access(64, false);
    EXPECT_EQ(c.stats().hits, 1u);
    EXPECT_EQ(c.stats().misses, 2u);
    EXPECT_NEAR(c.stats().missRate(), 2.0 / 3.0, 1e-9);
    c.resetStats();
    EXPECT_EQ(c.stats().hits, 0u);
}

TEST(Cache, WorkingSetLargerThanCacheThrashes)
{
    CacheModel c(2ULL << 20, 8); // The Table II LLC.
    // Stream 4 MB twice: second pass still mostly misses.
    const Addr lines = (4ULL << 20) / blockBytes;
    for (Addr i = 0; i < lines; ++i)
        c.access(i * blockBytes, false);
    c.resetStats();
    for (Addr i = 0; i < lines; ++i)
        c.access(i * blockBytes, false);
    EXPECT_GT(c.stats().missRate(), 0.9);
}

TEST(Cache, WorkingSetSmallerThanCacheHits)
{
    CacheModel c(2ULL << 20, 8);
    const Addr lines = (1ULL << 20) / blockBytes; // 1 MB set.
    for (Addr i = 0; i < lines; ++i)
        c.access(i * blockBytes, false);
    c.resetStats();
    for (Addr i = 0; i < lines; ++i)
        c.access(i * blockBytes, false);
    EXPECT_LT(c.stats().missRate(), 0.01);
}

} // namespace
} // namespace secdimm::trace
