#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "trace/trace_io.hh"
#include "trace/workload.hh"

namespace secdimm::trace
{
namespace
{

class TraceIoTest : public ::testing::Test
{
  protected:
    std::string
    tempPath(const char *suffix)
    {
        return ::testing::TempDir() + "sdimm_trace_test_" + suffix;
    }

    std::vector<TraceRecord>
    sampleTrace(std::size_t n)
    {
        TraceGenerator gen(*findProfile("milc"), 77);
        std::vector<TraceRecord> records;
        for (std::size_t i = 0; i < n; ++i)
            records.push_back(gen.next());
        return records;
    }
};

TEST_F(TraceIoTest, TextRoundTrip)
{
    const auto records = sampleTrace(200);
    const std::string path = tempPath("text.trc");
    ASSERT_TRUE(writeTraceText(path, records));
    std::vector<TraceRecord> loaded;
    ASSERT_TRUE(readTraceText(path, loaded));
    ASSERT_EQ(loaded.size(), records.size());
    for (std::size_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(loaded[i].addr, records[i].addr);
        EXPECT_EQ(loaded[i].instGap, records[i].instGap);
        EXPECT_EQ(loaded[i].write, records[i].write);
    }
    std::remove(path.c_str());
}

TEST_F(TraceIoTest, BinaryRoundTrip)
{
    const auto records = sampleTrace(500);
    const std::string path = tempPath("bin.trc");
    ASSERT_TRUE(writeTraceBinary(path, records));
    std::vector<TraceRecord> loaded;
    ASSERT_TRUE(readTraceBinary(path, loaded));
    ASSERT_EQ(loaded.size(), records.size());
    for (std::size_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(loaded[i].addr, records[i].addr);
        EXPECT_EQ(loaded[i].instGap, records[i].instGap);
        EXPECT_EQ(loaded[i].write, records[i].write);
    }
    std::remove(path.c_str());
}

TEST_F(TraceIoTest, MissingFileFails)
{
    std::vector<TraceRecord> loaded;
    EXPECT_FALSE(readTraceText("/nonexistent/path.trc", loaded));
    EXPECT_FALSE(readTraceBinary("/nonexistent/path.trc", loaded));
}

TEST_F(TraceIoTest, BinaryRejectsBadMagic)
{
    const std::string path = tempPath("bad.trc");
    {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fputs("NOTATRACE", f);
        std::fclose(f);
    }
    std::vector<TraceRecord> loaded;
    EXPECT_FALSE(readTraceBinary(path, loaded));
    std::remove(path.c_str());
}

TEST_F(TraceIoTest, TextSkipsCommentsAndRejectsGarbage)
{
    const std::string path = tempPath("mixed.trc");
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fputs("# header comment\n12 0x40 R\n\n", f);
        std::fclose(f);
    }
    std::vector<TraceRecord> loaded;
    ASSERT_TRUE(readTraceText(path, loaded));
    ASSERT_EQ(loaded.size(), 1u);
    EXPECT_EQ(loaded[0].instGap, 12u);
    EXPECT_EQ(loaded[0].addr, 0x40u);
    EXPECT_FALSE(loaded[0].write);

    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fputs("12 0x40 X\n", f); // Bad op letter.
        std::fclose(f);
    }
    EXPECT_FALSE(readTraceText(path, loaded));
    std::remove(path.c_str());
}

TEST_F(TraceIoTest, EmptyTraceRoundTrips)
{
    const std::string path = tempPath("empty.trc");
    ASSERT_TRUE(writeTraceBinary(path, {}));
    std::vector<TraceRecord> loaded{{1, 2, true}};
    ASSERT_TRUE(readTraceBinary(path, loaded));
    EXPECT_TRUE(loaded.empty());
    std::remove(path.c_str());
}

} // namespace
} // namespace secdimm::trace
