#include <gtest/gtest.h>

#include <deque>

#include "trace/core_model.hh"

namespace secdimm::trace
{
namespace
{

/** Test double: completes every access a fixed latency later. */
class FixedLatencyBackend : public MemoryBackend
{
  public:
    explicit FixedLatencyBackend(Cycles latency) : latency_(latency) {}

    void setCompletionCallback(CompletionFn fn) override
    {
        onComplete_ = std::move(fn);
    }

    bool canAccept() const override { return pending_.size() < 64; }

    void
    access(std::uint64_t id, Addr, bool, Tick now) override
    {
        pending_.push_back({id, now + latency_});
        ++accesses_;
    }

    Tick
    nextEventAt() const override
    {
        return pending_.empty() ? tickNever : pending_.front().doneAt;
    }

    void
    advanceTo(Tick now) override
    {
        while (!pending_.empty() && pending_.front().doneAt <= now) {
            const auto p = pending_.front();
            pending_.pop_front();
            onComplete_(p.id, p.doneAt);
        }
    }

    bool idle() const override { return pending_.empty(); }

    std::uint64_t accesses() const { return accesses_; }

  private:
    struct Pending
    {
        std::uint64_t id;
        Tick doneAt;
    };
    Cycles latency_;
    std::deque<Pending> pending_;
    CompletionFn onComplete_;
    std::uint64_t accesses_ = 0;
};

WorkloadProfile
tinyProfile()
{
    WorkloadProfile p;
    p.name = "tiny";
    p.meanInstGap = 10;
    p.burstMean = 2;
    p.writeFraction = 0.3;
    p.seqProb = 0.2;
    p.footprintBytes = 64ULL << 20; // Far exceeds the test LLC.
    return p;
}

TEST(CoreModel, RunsToCompletionAndCountsRecords)
{
    CacheModel llc(64 << 10, 8);
    FixedLatencyBackend mem(100);
    CoreModel core(CoreParams{}, llc, mem);
    TraceGenerator gen(tinyProfile(), 1);
    const CoreRunResult r = core.run(gen, 100, 500);
    EXPECT_EQ(r.l1Misses, 500u);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.llcMisses, 0u);
    EXPECT_TRUE(mem.idle());
}

TEST(CoreModel, HigherMemoryLatencyMoreCycles)
{
    auto cycles_with_latency = [](Cycles lat) {
        CacheModel llc(64 << 10, 8);
        FixedLatencyBackend mem(lat);
        CoreModel core(CoreParams{}, llc, mem);
        TraceGenerator gen(tinyProfile(), 1);
        return core.run(gen, 100, 1000).cycles;
    };
    const Tick fast = cycles_with_latency(50);
    const Tick slow = cycles_with_latency(2000);
    EXPECT_GT(slow, fast * 3);
}

TEST(CoreModel, RobLimitsOverlap)
{
    // With a 1-entry ROB every miss serializes: runtime approaches
    // misses * latency.  With 128 entries bursts overlap.
    auto cycles_with_rob = [](unsigned rob) {
        CacheModel llc(1 << 10, 2); // Tiny LLC: ~everything misses.
        FixedLatencyBackend mem(500);
        CoreParams params;
        params.robEntries = rob;
        CoreModel core(params, llc, mem);
        WorkloadProfile p = tinyProfile();
        p.burstMean = 8; // Plenty of parallelism available.
        TraceGenerator gen(p, 1);
        return core.run(gen, 50, 400).cycles;
    };
    const Tick serial = cycles_with_rob(1);
    const Tick parallel = cycles_with_rob(128);
    EXPECT_GT(serial, parallel * 2);
}

TEST(CoreModel, LlcHitsAvoidMemory)
{
    CacheModel llc(8 << 20, 8); // Big LLC.
    FixedLatencyBackend mem(100);
    CoreModel core(CoreParams{}, llc, mem);
    WorkloadProfile p = tinyProfile();
    p.footprintBytes = 1 << 20; // Fits in the LLC.
    TraceGenerator gen(p, 1);
    // Warm-up long enough for coupon-collector coverage of the 16K
    // distinct blocks under mostly-random addressing.
    const CoreRunResult r = core.run(gen, 200000, 2000);
    // After warming, nearly everything hits.
    EXPECT_LT(static_cast<double>(r.llcMisses) / r.l1Misses, 0.05);
}

TEST(CoreModel, WritebacksIssuedToMemory)
{
    CacheModel llc(4 << 10, 2); // Tiny: high churn.
    FixedLatencyBackend mem(10);
    CoreModel core(CoreParams{}, llc, mem);
    WorkloadProfile p = tinyProfile();
    p.writeFraction = 1.0; // Everything dirty.
    TraceGenerator gen(p, 1);
    const CoreRunResult r = core.run(gen, 500, 1000);
    EXPECT_GT(r.llcWritebacks, 0u);
    // Memory saw misses plus writebacks.
    EXPECT_EQ(mem.accesses(), r.llcMisses + r.llcWritebacks);
}

TEST(CoreModel, InstructionsAccumulateFromGaps)
{
    CacheModel llc(64 << 10, 8);
    FixedLatencyBackend mem(10);
    CoreModel core(CoreParams{}, llc, mem);
    TraceGenerator gen(tinyProfile(), 1);
    const CoreRunResult r = core.run(gen, 0, 1000);
    EXPECT_GT(r.instructions, 1000u); // At least 1 per record here.
    EXPECT_GT(r.ipc(), 0.0);
}

} // namespace
} // namespace secdimm::trace
