#include <gtest/gtest.h>

#include <set>

#include "trace/workload.hh"

namespace secdimm::trace
{
namespace
{

TEST(Workload, TenPaperBenchmarksPresent)
{
    const auto &profiles = spec2006Profiles();
    EXPECT_EQ(profiles.size(), 10u);
    for (const char *name :
         {"mcf", "omnetpp", "gromacs", "GemsFDTD", "libquantum", "lbm",
          "milc", "soplex", "leslie3d", "bwaves"}) {
        EXPECT_NE(findProfile(name), nullptr) << name;
    }
    EXPECT_EQ(findProfile("not-a-benchmark"), nullptr);
}

TEST(Workload, DeterministicForSeed)
{
    const WorkloadProfile &p = *findProfile("mcf");
    TraceGenerator a(p, 42), b(p, 42);
    for (int i = 0; i < 1000; ++i) {
        const TraceRecord ra = a.next(), rb = b.next();
        EXPECT_EQ(ra.addr, rb.addr);
        EXPECT_EQ(ra.instGap, rb.instGap);
        EXPECT_EQ(ra.write, rb.write);
    }
}

TEST(Workload, AddressesWithinFootprintAndAligned)
{
    for (const auto &p : spec2006Profiles()) {
        TraceGenerator gen(p, 7);
        for (int i = 0; i < 500; ++i) {
            const TraceRecord r = gen.next();
            EXPECT_LT(r.addr, p.footprintBytes) << p.name;
            EXPECT_EQ(r.addr % blockBytes, 0u) << p.name;
        }
    }
}

TEST(Workload, WriteFractionApproximatesProfile)
{
    const WorkloadProfile &p = *findProfile("lbm"); // 0.45 writes.
    TraceGenerator gen(p, 11);
    int writes = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        writes += gen.next().write;
    EXPECT_NEAR(static_cast<double>(writes) / n, p.writeFraction, 0.02);
}

TEST(Workload, SequentialityTracksSeqProb)
{
    // libquantum (0.9) must be far more sequential than mcf (0.1).
    // The hot/cold split means consecutive records may come from
    // different regions, so raw adjacency understates seqProb; the
    // ordering must still hold by a wide margin.
    auto sequentiality = [](const char *name) {
        TraceGenerator gen(*findProfile(name), 3);
        Addr prev = gen.next().addr;
        int seq = 0;
        const int n = 20000;
        for (int i = 0; i < n; ++i) {
            const Addr cur = gen.next().addr;
            seq += cur == prev + blockBytes;
            prev = cur;
        }
        return static_cast<double>(seq) / n;
    };
    const double lq = sequentiality("libquantum");
    const double mc = sequentiality("mcf");
    EXPECT_GT(lq, 0.3);
    EXPECT_LT(mc, 0.1);
    EXPECT_GT(lq, 3 * mc);
}

TEST(Workload, BurstinessTracksBurstMean)
{
    // gromacs (burstMean 9) should show many short intra-burst gaps;
    // GemsFDTD (burstMean 1.1) should be dominated by long gaps.
    auto small_gap_fraction = [](const char *name) {
        TraceGenerator gen(*findProfile(name), 5);
        int small = 0;
        const int n = 20000;
        for (int i = 0; i < n; ++i)
            small += gen.next().instGap <= 4;
        return static_cast<double>(small) / n;
    };
    EXPECT_GT(small_gap_fraction("gromacs"),
              small_gap_fraction("GemsFDTD") + 0.3);
}

TEST(Workload, MeanGapRoughlyMatchesIntensity)
{
    // Mean inst gap of the whole stream is (meanInstGap +
    // (burstMean-1)*burstGap) / burstMean; GemsFDTD (25, 1.1) must be
    // far sparser than mcf (12, 1.5).
    auto mean_gap = [](const char *name) {
        TraceGenerator gen(*findProfile(name), 9);
        double sum = 0;
        const int n = 20000;
        for (int i = 0; i < n; ++i)
            sum += gen.next().instGap;
        return sum / n;
    };
    EXPECT_GT(mean_gap("GemsFDTD"), 1.5 * mean_gap("mcf"));
}

} // namespace
} // namespace secdimm::trace
