#include <gtest/gtest.h>

#include "dram/power_model.hh"

namespace secdimm::dram
{
namespace
{

Geometry
geom()
{
    Geometry g;
    g.ranksPerChannel = 2;
    return g;
}

TEST(PowerModel, ZeroActivityZeroEnergy)
{
    PowerModel pm(ddr3_1600(), geom(), false);
    ChannelStats s;
    std::vector<RankState> ranks(2);
    const EnergyBreakdown e = pm.compute(s, ranks);
    EXPECT_DOUBLE_EQ(e.totalNj(), 0.0);
}

TEST(PowerModel, ActivateEnergyScalesLinearly)
{
    PowerModel pm(ddr3_1600(), geom(), false);
    std::vector<RankState> ranks(2);
    ChannelStats s1, s2;
    s1.activates = 10;
    s2.activates = 20;
    EXPECT_NEAR(pm.compute(s2, ranks).actPreNj,
                2 * pm.compute(s1, ranks).actPreNj, 1e-9);
}

TEST(PowerModel, OnDimmIoCheaperThanOffDimm)
{
    PowerModel off(ddr3_1600(), geom(), false);
    PowerModel on(ddr3_1600(), geom(), true);
    EXPECT_LT(on.ioEnergyPerBurstNj(), off.ioEnergyPerBurstNj());
    // Default parameters: on-DIMM I/O is 4.5x cheaper (18 vs 4
    // pJ/bit).
    EXPECT_NEAR(off.ioEnergyPerBurstNj() / on.ioEnergyPerBurstNj(),
                4.5, 1e-6);
}

TEST(PowerModel, PowerDownResidencyCheaperThanStandby)
{
    PowerModel pm(ddr3_1600(), geom(), false);
    ChannelStats s;
    std::vector<RankState> standby(1), down(1);
    standby[0].cyclesPrechargeStandby = 1'000'000;
    down[0].cyclesPowerDown = 1'000'000;
    const double e_standby = pm.compute(s, standby).backgroundNj;
    const double e_down = pm.compute(s, down).backgroundNj;
    EXPECT_GT(e_standby, e_down);
    // IDD2N / IDD2P = 42 / 12 = 3.5x.
    EXPECT_NEAR(e_standby / e_down, 3.5, 0.01);
}

TEST(PowerModel, ActiveStandbyMostExpensiveBackground)
{
    PowerModel pm(ddr3_1600(), geom(), false);
    ChannelStats s;
    std::vector<RankState> act(1), pre(1);
    act[0].cyclesActiveStandby = 1000;
    pre[0].cyclesPrechargeStandby = 1000;
    EXPECT_GT(pm.compute(s, act).backgroundNj,
              pm.compute(s, pre).backgroundNj);
}

TEST(PowerModel, ReadWriteEnergyPositiveAndComparable)
{
    PowerModel pm(ddr3_1600(), geom(), false);
    std::vector<RankState> ranks(1);
    ChannelStats r, w;
    r.reads = 100;
    w.writes = 100;
    const double er = pm.compute(r, ranks).rdWrNj;
    const double ew = pm.compute(w, ranks).rdWrNj;
    EXPECT_GT(er, 0.0);
    // IDD4W slightly above IDD4R.
    EXPECT_GT(ew, er);
    EXPECT_LT(ew / er, 1.2);
}

TEST(PowerModel, RefreshEnergyCounted)
{
    PowerModel pm(ddr3_1600(), geom(), false);
    std::vector<RankState> ranks(1);
    ChannelStats s;
    s.refreshes = 5;
    EXPECT_GT(pm.compute(s, ranks).refreshNj, 0.0);
}

TEST(PowerModel, BreakdownSumsToTotal)
{
    PowerModel pm(ddr3_1600(), geom(), false);
    std::vector<RankState> ranks(2);
    ranks[0].cyclesActiveStandby = 500;
    ranks[1].cyclesPowerDown = 500;
    ChannelStats s;
    s.activates = 3;
    s.reads = 10;
    s.writes = 4;
    s.refreshes = 1;
    const EnergyBreakdown e = pm.compute(s, ranks);
    EXPECT_NEAR(e.totalNj(), e.actPreNj + e.rdWrNj + e.ioNj +
                                 e.backgroundNj + e.refreshNj,
                1e-12);
    EXPECT_GT(e.totalNj(), 0.0);
}

TEST(PowerModel, AccumulateOperator)
{
    EnergyBreakdown a, b;
    a.actPreNj = 1;
    a.ioNj = 2;
    b.actPreNj = 3;
    b.backgroundNj = 4;
    a += b;
    EXPECT_DOUBLE_EQ(a.actPreNj, 4.0);
    EXPECT_DOUBLE_EQ(a.ioNj, 2.0);
    EXPECT_DOUBLE_EQ(a.backgroundNj, 4.0);
}

} // namespace
} // namespace secdimm::dram
