#include <gtest/gtest.h>

#include "dram/address_map.hh"

namespace secdimm::dram
{
namespace
{

Geometry
smallGeom()
{
    Geometry g;
    g.channels = 1;
    g.ranksPerChannel = 4;
    g.banksPerRank = 8;
    g.rowsPerBank = 64;
    g.rowBufferBytes = 8192;
    return g;
}

TEST(AddressMap, BlockCountMatchesGeometry)
{
    const Geometry g = smallGeom();
    AddressMap m(g, MapPolicy::RowRankBankCol);
    const Addr expected = static_cast<Addr>(g.ranksPerChannel) *
                          g.banksPerRank * g.rowsPerBank *
                          g.blocksPerRow();
    EXPECT_EQ(m.blockCount(), expected);
}

TEST(AddressMap, DecodeEncodeRoundTrip)
{
    AddressMap m(smallGeom(), MapPolicy::RowRankBankCol);
    for (Addr a = 0; a < m.blockCount(); a += 977) {
        const DramCoord c = m.decode(a);
        EXPECT_EQ(m.encode(c), a);
    }
}

TEST(AddressMap, RankMajorRoundTrip)
{
    AddressMap m(smallGeom(), MapPolicy::RankRowBankCol);
    for (Addr a = 0; a < m.blockCount(); a += 1013) {
        const DramCoord c = m.decode(a);
        EXPECT_EQ(m.encode(c), a);
    }
}

TEST(AddressMap, ConsecutiveBlocksShareRow)
{
    // Both policies must keep consecutive blocks in the same open row
    // until a row boundary -- the property subtree packing relies on.
    for (auto policy :
         {MapPolicy::RowRankBankCol, MapPolicy::RankRowBankCol}) {
        AddressMap m(smallGeom(), policy);
        const unsigned bpr = smallGeom().blocksPerRow();
        const DramCoord c0 = m.decode(0);
        for (Addr a = 1; a < bpr; ++a) {
            const DramCoord c = m.decode(a);
            EXPECT_EQ(c.row, c0.row);
            EXPECT_EQ(c.bank, c0.bank);
            EXPECT_EQ(c.rank, c0.rank);
            EXPECT_EQ(c.col, a);
        }
        EXPECT_NE(m.decode(bpr).bank, c0.bank);
    }
}

TEST(AddressMap, RankMajorKeepsRegionsInOneRank)
{
    // Top address bits select the rank: one quarter of the space maps
    // entirely to rank 0 (the Section III-E low-power layout).
    const Geometry g = smallGeom();
    AddressMap m(g, MapPolicy::RankRowBankCol);
    const Addr region = m.blockCount() / g.ranksPerChannel;
    for (Addr a = 0; a < region; a += 97)
        EXPECT_EQ(m.decode(a).rank, 0u);
    for (Addr a = region; a < 2 * region; a += 97)
        EXPECT_EQ(m.decode(a).rank, 1u);
}

TEST(AddressMap, RowInterleavedPolicySpreadsAcrossRanks)
{
    // In the baseline policy the rank bits sit below the row bits, so
    // walking addresses at bank*row stride rotates through ranks.
    const Geometry g = smallGeom();
    AddressMap m(g, MapPolicy::RowRankBankCol);
    const Addr stride =
        static_cast<Addr>(g.blocksPerRow()) * g.banksPerRank;
    EXPECT_EQ(m.decode(0).rank, 0u);
    EXPECT_EQ(m.decode(stride).rank, 1u);
    EXPECT_EQ(m.decode(2 * stride).rank, 2u);
}

TEST(AddressMap, DistinctAddressesDistinctCoords)
{
    AddressMap m(smallGeom(), MapPolicy::RowRankBankCol);
    const DramCoord a = m.decode(12345);
    const DramCoord b = m.decode(12346);
    EXPECT_FALSE(a.rank == b.rank && a.bank == b.bank &&
                 a.row == b.row && a.col == b.col);
}

} // namespace
} // namespace secdimm::dram
