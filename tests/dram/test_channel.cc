#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "dram/channel.hh"

namespace secdimm::dram
{
namespace
{

Geometry
smallGeom()
{
    Geometry g;
    g.channels = 1;
    g.ranksPerChannel = 2;
    g.banksPerRank = 4;
    g.rowsPerBank = 128;
    g.rowBufferBytes = 8192;
    return g;
}

struct Harness
{
    TimingParams t = ddr3_1600();
    DramChannel ch;
    std::vector<DramCompletion> done;

    Harness()
        : ch("test", ddr3_1600(), smallGeom(), MapPolicy::RowRankBankCol)
    {
        ch.setCompletionCallback(
            [this](const DramCompletion &c) { done.push_back(c); });
    }

    Tick
    finish()
    {
        return ch.drain();
    }

    /** Block address for explicit coordinates. */
    Addr
    blockAt(unsigned rank, unsigned bank, unsigned row, unsigned col)
    {
        DramCoord c{rank, bank, row, col};
        return ch.addressMap().encode(c);
    }
};

TEST(DramChannel, SingleReadLatencyFromIdle)
{
    Harness h;
    h.ch.enqueue(1, h.blockAt(0, 0, 5, 0), false, 0);
    h.finish();
    ASSERT_EQ(h.done.size(), 1u);
    // ACT at 0, CAS at tRCD, data complete CL + tBURST later.
    EXPECT_EQ(h.done[0].doneAt, h.t.tRCD + h.t.cl + h.t.tBURST);
}

TEST(DramChannel, RowHitBackToBackReads)
{
    Harness h;
    h.ch.enqueue(1, h.blockAt(0, 0, 5, 0), false, 0);
    h.ch.enqueue(2, h.blockAt(0, 0, 5, 1), false, 0);
    h.finish();
    ASSERT_EQ(h.done.size(), 2u);
    // Second burst streams right behind the first (tCCD == tBURST).
    EXPECT_EQ(h.done[1].doneAt - h.done[0].doneAt, h.t.tBURST);
    EXPECT_EQ(h.ch.stats().rowHits, 1u);
    EXPECT_EQ(h.ch.stats().rowMisses, 1u);
}

TEST(DramChannel, RowConflictPaysPrechargeAndActivate)
{
    Harness h;
    h.ch.enqueue(1, h.blockAt(0, 0, 5, 0), false, 0);
    h.ch.enqueue(2, h.blockAt(0, 0, 9, 0), false, 0);
    h.finish();
    ASSERT_EQ(h.done.size(), 2u);
    // Second access: PRE cannot issue before tRAS, then tRP + tRCD +
    // CL + tBURST.
    const Tick expected_second =
        h.t.tRAS + h.t.tRP + h.t.tRCD + h.t.cl + h.t.tBURST;
    EXPECT_GE(h.done[1].doneAt, expected_second);
    EXPECT_EQ(h.ch.stats().precharges, 1u);
    EXPECT_EQ(h.ch.stats().activates, 2u);
}

TEST(DramChannel, BankParallelismOverlapsActivates)
{
    Harness h;
    h.ch.enqueue(1, h.blockAt(0, 0, 5, 0), false, 0);
    h.ch.enqueue(2, h.blockAt(0, 1, 5, 0), false, 0);
    h.finish();
    ASSERT_EQ(h.done.size(), 2u);
    // Different banks: the second ACT only waits tRRD, so the bursts
    // are separated by max(tBURST, tRRD) rather than a full tRC.
    EXPECT_EQ(h.done[1].doneAt - h.done[0].doneAt,
              std::max(h.t.tBURST, h.t.tRRD));
}

TEST(DramChannel, WriteThenReadSameRankPaysTurnaround)
{
    Harness h;
    h.ch.enqueue(1, h.blockAt(0, 0, 5, 0), true, 0);
    h.finish();
    const Tick write_data_end = h.t.tRCD + h.t.cwl + h.t.tBURST;
    ASSERT_EQ(h.done.size(), 1u);
    EXPECT_EQ(h.done[0].doneAt, write_data_end);

    // Now a read to the same open row must honor tWTR after the write
    // burst before its CAS.
    h.ch.enqueue(2, h.blockAt(0, 0, 5, 1), false, write_data_end);
    h.finish();
    ASSERT_EQ(h.done.size(), 2u);
    EXPECT_GE(h.done[1].doneAt,
              write_data_end + h.t.tWTR + h.t.cl + h.t.tBURST);
}

TEST(DramChannel, RankSwitchPaysTrtrs)
{
    Harness h;
    h.ch.enqueue(1, h.blockAt(0, 0, 5, 0), false, 0);
    h.ch.enqueue(2, h.blockAt(1, 0, 5, 0), false, 0);
    h.finish();
    ASSERT_EQ(h.done.size(), 2u);
    // Bursts on different ranks are separated by at least
    // tBURST + tRTRS on the shared data bus.
    EXPECT_GE(h.done[1].doneAt - h.done[0].doneAt,
              h.t.tBURST + h.t.tRTRS);
    EXPECT_EQ(h.ch.stats().rankSwitches, 1u);
}

TEST(DramChannel, FrFcfsPrefersRowHitOverOlderConflict)
{
    Harness h;
    // Open row 5 in bank 0.
    h.ch.enqueue(1, h.blockAt(0, 0, 5, 0), false, 0);
    // Request A (older): conflict in bank 0 (row 9).
    h.ch.enqueue(2, h.blockAt(0, 0, 9, 0), false, 1);
    // Request B (younger): hit in bank 0 row 5.
    h.ch.enqueue(3, h.blockAt(0, 0, 5, 3), false, 2);
    h.finish();
    ASSERT_EQ(h.done.size(), 3u);
    // FR-FCFS services the row hit (id 3) before the conflict (id 2).
    EXPECT_EQ(h.done[1].id, 3u);
    EXPECT_EQ(h.done[2].id, 2u);
}

TEST(DramChannel, FcfsServicesInOrder)
{
    DramChannel ch("fcfs", ddr3_1600(), smallGeom(),
                   MapPolicy::RowRankBankCol, SchedPolicy::Fcfs);
    std::vector<DramCompletion> done;
    ch.setCompletionCallback(
        [&](const DramCompletion &c) { done.push_back(c); });
    AddressMap map(smallGeom(), MapPolicy::RowRankBankCol);
    ch.enqueue(1, map.encode({0, 0, 5, 0}), false, 0);
    ch.enqueue(2, map.encode({0, 0, 9, 0}), false, 1);
    ch.enqueue(3, map.encode({0, 0, 5, 3}), false, 2);
    ch.drain();
    ASSERT_EQ(done.size(), 3u);
    EXPECT_EQ(done[0].id, 1u);
    EXPECT_EQ(done[1].id, 2u);
    EXPECT_EQ(done[2].id, 3u);
}

TEST(DramChannel, ReadsPrioritizedOverWrites)
{
    Harness h;
    h.ch.enqueue(1, h.blockAt(0, 0, 1, 0), true, 0);
    h.ch.enqueue(2, h.blockAt(0, 1, 2, 0), false, 0);
    h.finish();
    ASSERT_EQ(h.done.size(), 2u);
    EXPECT_EQ(h.done[0].id, 2u) << "read should finish first";
}

TEST(DramChannel, WriteDrainEngagesAboveWatermark)
{
    Harness h;
    // Fill write queue past the high watermark (40) plus a read.
    for (unsigned i = 0; i < 45; ++i)
        h.ch.enqueue(100 + i, h.blockAt(0, 0, 1, i % 64), true, 0);
    h.ch.enqueue(1, h.blockAt(0, 1, 2, 0), false, 0);
    h.finish();
    ASSERT_EQ(h.done.size(), 46u);
    // Drain mode: many writes complete before the read gets service.
    std::size_t read_pos = 0;
    for (std::size_t i = 0; i < h.done.size(); ++i) {
        if (h.done[i].id == 1)
            read_pos = i;
    }
    EXPECT_GT(read_pos, 10u);
}

TEST(DramChannel, FutureEnqueueNotServedEarly)
{
    Harness h;
    h.ch.enqueue(1, h.blockAt(0, 0, 5, 0), false, 1000);
    h.finish();
    ASSERT_EQ(h.done.size(), 1u);
    EXPECT_GE(h.done[0].doneAt,
              1000 + h.t.tRCD + h.t.cl + h.t.tBURST);
}

TEST(DramChannel, RefreshHappensPeriodically)
{
    Harness h;
    // Spread light traffic across several tREFI windows.
    const Tick horizon = 4 * h.t.tREFI;
    for (Tick at = 0; at < horizon; at += h.t.tREFI / 4) {
        h.ch.enqueue(at, h.blockAt(0, 0, 5, 0), false, at);
        h.ch.advanceTo(at);
    }
    h.ch.advanceTo(horizon);
    h.finish();
    // 2 ranks x ~4 windows of refreshes expected (+/- staggering).
    EXPECT_GE(h.ch.stats().refreshes, 6u);
    EXPECT_LE(h.ch.stats().refreshes, 10u);
}

TEST(DramChannel, ExplicitPowerDownAccumulatesResidency)
{
    Harness h;
    h.ch.enqueue(1, h.blockAt(0, 0, 5, 0), false, 0);
    const Tick end = h.finish();
    // Close the bank via drain; then force rank 1 (idle) down.  Stay
    // under a refresh interval: the periodic REF wakes the rank (a
    // power-down rank cannot refresh), ending the residency.
    h.ch.powerDownRank(1, end);
    h.ch.advanceTo(end + 5000);
    h.ch.finalizeStats(end + 5000);
    EXPECT_GE(h.ch.rankStates()[1].cyclesPowerDown, 4500u);
    EXPECT_EQ(h.ch.stats().powerDownEntries, 1u);
}

TEST(DramChannel, WakeFromPowerDownDelaysAccess)
{
    Harness h;
    h.ch.powerDownRank(0, 0);
    h.ch.advanceTo(1000);
    // Enqueue triggers wake; access completes no earlier than
    // wake (tXPDLL) + tRCD + CL + tBURST after enqueue.
    h.ch.enqueue(1, h.blockAt(0, 0, 5, 0), false, 1000);
    h.finish();
    ASSERT_EQ(h.done.size(), 1u);
    EXPECT_GE(h.done[0].doneAt, 1000 + h.t.tXPDLL + h.t.tRCD +
                                    h.t.cl + h.t.tBURST);
    EXPECT_EQ(h.ch.stats().powerUps, 1u);
}

TEST(DramChannel, IdlePowerDownKicksIn)
{
    Harness h;
    h.ch.setIdlePowerDown(100);
    h.ch.enqueue(1, h.blockAt(0, 0, 5, 0), false, 0);
    h.finish();
    // Need the bank precharged before power-down is permitted; force a
    // conflicting access and drain so the bank closes.
    h.ch.enqueue(2, h.blockAt(0, 0, 9, 0), false, 200);
    const Tick end = h.finish();
    h.ch.advanceTo(end + 10000);
    h.ch.finalizeStats(end + 10000);
    // Rank 1 never used: it must have entered power-down.
    EXPECT_GT(h.ch.rankStates()[1].cyclesPowerDown, 0u);
}

TEST(DramChannel, CompletionCarriesEnqueueTick)
{
    Harness h;
    h.ch.enqueue(1, h.blockAt(0, 0, 5, 0), false, 123);
    h.finish();
    ASSERT_EQ(h.done.size(), 1u);
    EXPECT_EQ(h.done[0].enqueuedAt, 123u);
    EXPECT_FALSE(h.done[0].write);
}

TEST(DramChannel, ManyRandomRequestsAllComplete)
{
    Harness h;
    const unsigned n = 500;
    std::uint64_t seed = 88172645463325252ULL;
    unsigned enqueued = 0;
    Tick at = 0;
    for (unsigned i = 0; i < n; ++i) {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        const bool write = (seed & 1) != 0;
        if (!h.ch.canEnqueue(write)) {
            h.ch.advanceTo(h.ch.nextEventAt());
            at = h.ch.curTick();
        }
        if (!h.ch.canEnqueue(write)) {
            h.finish();
            at = h.ch.curTick();
        }
        const Addr block =
            seed % h.ch.addressMap().blockCount();
        h.ch.enqueue(i, block, write, at);
        ++enqueued;
    }
    h.finish();
    EXPECT_EQ(h.done.size(), enqueued);
}

TEST(DramChannel, TfawLimitsActivateBursts)
{
    Harness h;
    // Five activates to distinct banks... only 4 banks, so use rank 0
    // banks 0-3 plus a second row in bank 0 later. Instead check four
    // ACTs then a fifth to a different row: the fifth ACT must be at
    // least tFAW after the first.
    Geometry g = smallGeom();
    g.banksPerRank = 8;
    DramChannel ch("faw", ddr3_1600(), g, MapPolicy::RowRankBankCol);
    std::vector<DramCompletion> done;
    ch.setCompletionCallback(
        [&](const DramCompletion &c) { done.push_back(c); });
    AddressMap map(g, MapPolicy::RowRankBankCol);
    for (unsigned b = 0; b < 5; ++b)
        ch.enqueue(b, map.encode({0, b, 3, 0}), false, 0);
    ch.drain();
    ASSERT_EQ(done.size(), 5u);
    const TimingParams t = ddr3_1600();
    // First ACT at 0; fifth ACT >= tFAW; its data at
    // >= tFAW + tRCD + CL + tBURST.
    EXPECT_GE(done[4].doneAt, t.tFAW + t.tRCD + t.cl + t.tBURST);
}

} // namespace
} // namespace secdimm::dram
