/**
 * @file
 * Property sweeps over the DRAM channel: conservation and ordering
 * invariants that must hold for every timing preset, geometry, and
 * scheduler policy.
 */

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "dram/channel.hh"

namespace secdimm::dram
{
namespace
{

using ChanParam =
    std::tuple<int /*timing preset*/, unsigned /*ranks*/,
               SchedPolicy>;

class ChannelSweep : public ::testing::TestWithParam<ChanParam>
{
  protected:
    TimingParams
    timing() const
    {
        return std::get<0>(GetParam()) == 0 ? ddr3_1600() : ddr3_1066();
    }

    Geometry
    geom() const
    {
        Geometry g;
        g.ranksPerChannel = std::get<1>(GetParam());
        g.banksPerRank = 8;
        g.rowsPerBank = 1024;
        return g;
    }

    std::unique_ptr<DramChannel>
    make()
    {
        return std::make_unique<DramChannel>(
            "prop", timing(), geom(), MapPolicy::RowRankBankCol,
            std::get<2>(GetParam()));
    }
};

INSTANTIATE_TEST_SUITE_P(
    Sweep, ChannelSweep,
    ::testing::Combine(::testing::Values(0, 1),
                       ::testing::Values(1u, 2u, 8u),
                       ::testing::Values(SchedPolicy::FrFcfs,
                                         SchedPolicy::Fcfs)),
    [](const ::testing::TestParamInfo<ChanParam> &info) {
        return std::string(std::get<0>(info.param) == 0 ? "ddr1600"
                                                        : "ddr1066") +
               "_r" + std::to_string(std::get<1>(info.param)) +
               (std::get<2>(info.param) == SchedPolicy::FrFcfs
                    ? "_frfcfs"
                    : "_fcfs");
    });

TEST_P(ChannelSweep, EveryRequestCompletesExactlyOnce)
{
    auto ch = make();
    std::vector<int> seen(400, 0);
    ch->setCompletionCallback([&](const DramCompletion &c) {
        ++seen[static_cast<std::size_t>(c.id)];
    });
    std::uint64_t x = 12345;
    Tick at = 0;
    for (unsigned i = 0; i < 400; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        while (!ch->canEnqueue(i % 3 == 0)) {
            ch->advanceTo(ch->nextEventAt());
            at = ch->curTick();
        }
        ch->enqueue(i, x % ch->addressMap().blockCount(), i % 3 == 0,
                    at);
    }
    ch->drain();
    for (unsigned i = 0; i < 400; ++i)
        ASSERT_EQ(seen[i], 1) << "request " << i;
}

TEST_P(ChannelSweep, StatsAreConserved)
{
    auto ch = make();
    ch->setCompletionCallback([](const DramCompletion &) {});
    std::uint64_t x = 777;
    for (unsigned i = 0; i < 300; ++i) {
        x = x * 6364136223846793005ULL + 1;
        while (!ch->canEnqueue(i % 2 == 0))
            ch->advanceTo(ch->nextEventAt());
        ch->enqueue(i, x % ch->addressMap().blockCount(), i % 2 == 0,
                    ch->curTick());
    }
    ch->drain();
    const ChannelStats &s = ch->stats();
    // Every CAS is classified exactly once.
    EXPECT_EQ(s.rowHits + s.rowMisses, s.reads + s.writes);
    EXPECT_EQ(s.reads + s.writes, 300u);
    // Precharges never exceed activates (+ refresh-forced closes).
    EXPECT_LE(s.precharges, s.activates + 8 * s.refreshes +
                                geom().ranksPerChannel * 8);
    // Every row miss required an activate.  An activate can be
    // orphaned (row closed before its CAS by a refresh, or by the
    // other queue's oldest request precharging the bank), forcing a
    // re-activate; every orphaning implies an intervening precharge.
    EXPECT_GE(s.activates, s.rowMisses);
    EXPECT_LE(s.activates - s.rowMisses,
              s.precharges + s.refreshes * geom().banksPerRank);
}

TEST_P(ChannelSweep, CompletionsNeverPredateEnqueue)
{
    auto ch = make();
    const Cycles min_latency =
        timing().cl + timing().tBURST; // Lower bound for any read.
    bool ok = true;
    ch->setCompletionCallback([&](const DramCompletion &c) {
        if (c.doneAt < c.enqueuedAt + (c.write ? 1 : min_latency))
            ok = false;
    });
    std::uint64_t x = 424242;
    for (unsigned i = 0; i < 200; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        while (!ch->canEnqueue(false))
            ch->advanceTo(ch->nextEventAt());
        ch->enqueue(i, x % ch->addressMap().blockCount(), false,
                    ch->curTick() + (i % 5) * 100);
    }
    ch->drain();
    EXPECT_TRUE(ok);
}

TEST_P(ChannelSweep, DataBusNeverDoubleBooked)
{
    // Completions are burst-ends on a shared bus: two read completions
    // must be at least tBURST apart.
    auto ch = make();
    std::vector<Tick> read_ends;
    ch->setCompletionCallback([&](const DramCompletion &c) {
        if (!c.write)
            read_ends.push_back(c.doneAt);
    });
    std::uint64_t x = 31337;
    for (unsigned i = 0; i < 150; ++i) {
        x = x * 2862933555777941757ULL + 3037000493ULL;
        while (!ch->canEnqueue(false))
            ch->advanceTo(ch->nextEventAt());
        ch->enqueue(i, x % ch->addressMap().blockCount(), false,
                    ch->curTick());
    }
    ch->drain();
    std::sort(read_ends.begin(), read_ends.end());
    for (std::size_t i = 1; i < read_ends.size(); ++i) {
        ASSERT_GE(read_ends[i] - read_ends[i - 1], timing().tBURST)
            << "bursts overlap at " << read_ends[i];
    }
}

TEST_P(ChannelSweep, DrainLeavesChannelIdle)
{
    auto ch = make();
    ch->setCompletionCallback([](const DramCompletion &) {});
    for (unsigned i = 0; i < 50; ++i)
        ch->enqueue(i, i * 17 % ch->addressMap().blockCount(),
                    i % 2 == 0, 0);
    ch->drain();
    EXPECT_TRUE(ch->idle());
    EXPECT_EQ(ch->nextEventAt(), tickNever);
}

} // namespace
} // namespace secdimm::dram
