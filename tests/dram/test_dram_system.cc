#include <gtest/gtest.h>

#include <vector>

#include "dram/dram_system.hh"

namespace secdimm::dram
{
namespace
{

Geometry
geom2ch()
{
    Geometry g;
    g.channels = 2;
    g.ranksPerChannel = 2;
    g.banksPerRank = 4;
    g.rowsPerBank = 128;
    return g;
}

TEST(DramSystem, ChannelInterleaveByBlock)
{
    DramSystem sys("sys", ddr3_1600(), geom2ch(),
                   MapPolicy::RowRankBankCol);
    EXPECT_EQ(sys.channelOf(0), 0u);
    EXPECT_EQ(sys.channelOf(1), 1u);
    EXPECT_EQ(sys.channelOf(2), 0u);
    EXPECT_EQ(sys.localBlockOf(5), 2u);
}

TEST(DramSystem, BlockCountSumsChannels)
{
    DramSystem sys("sys", ddr3_1600(), geom2ch(),
                   MapPolicy::RowRankBankCol);
    const Geometry g = geom2ch();
    const Addr per_ch = static_cast<Addr>(g.ranksPerChannel) *
                        g.banksPerRank * g.rowsPerBank *
                        g.blocksPerRow();
    EXPECT_EQ(sys.blockCount(), 2 * per_ch);
}

TEST(DramSystem, ParallelChannelsOverlap)
{
    DramSystem sys("sys", ddr3_1600(), geom2ch(),
                   MapPolicy::RowRankBankCol);
    std::vector<DramCompletion> done;
    sys.setCompletionCallback(
        [&](const DramCompletion &c) { done.push_back(c); });
    // One read per channel: both should finish at the idle-latency
    // time, proving the channels are independent.
    sys.enqueue(1, 0, false, 0);
    sys.enqueue(2, 1, false, 0);
    sys.drainAll();
    ASSERT_EQ(done.size(), 2u);
    const TimingParams t = ddr3_1600();
    EXPECT_EQ(done[0].doneAt, t.tRCD + t.cl + t.tBURST);
    EXPECT_EQ(done[1].doneAt, t.tRCD + t.cl + t.tBURST);
}

TEST(DramSystem, AggregateStatsSumAcrossChannels)
{
    DramSystem sys("sys", ddr3_1600(), geom2ch(),
                   MapPolicy::RowRankBankCol);
    sys.setCompletionCallback([](const DramCompletion &) {});
    for (Addr a = 0; a < 8; ++a)
        sys.enqueue(a, a, false, 0);
    sys.drainAll();
    const ChannelStats agg = sys.aggregateStats();
    EXPECT_EQ(agg.reads, 8u);
    EXPECT_EQ(agg.reads, sys.channel(0).stats().reads +
                             sys.channel(1).stats().reads);
}

TEST(DramSystem, DrainAllReturnsFinalTick)
{
    DramSystem sys("sys", ddr3_1600(), geom2ch(),
                   MapPolicy::RowRankBankCol);
    sys.setCompletionCallback([](const DramCompletion &) {});
    sys.enqueue(1, 0, false, 500);
    const Tick end = sys.drainAll();
    EXPECT_GE(end, 500u);
    EXPECT_TRUE(sys.idle());
}

TEST(DramSystem, IdleWithNoWork)
{
    DramSystem sys("sys", ddr3_1600(), geom2ch(),
                   MapPolicy::RowRankBankCol);
    EXPECT_TRUE(sys.idle());
    EXPECT_EQ(sys.nextEventAt(), tickNever);
}

} // namespace
} // namespace secdimm::dram
