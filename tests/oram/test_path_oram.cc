#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "oram/path_oram.hh"

namespace secdimm::oram
{
namespace
{

OramParams
smallParams(unsigned levels = 8)
{
    OramParams p;
    p.levels = levels;
    p.stashCapacity = 200;
    return p;
}

std::unique_ptr<PathOram>
makeOram(unsigned levels = 8, std::uint64_t seed = 1)
{
    return std::make_unique<PathOram>(
        smallParams(levels), crypto::makeKey(0xa, 0xb),
        crypto::makeKey(0xc, 0xd), seed);
}

BlockData
blockOf(std::uint64_t v)
{
    BlockData d{};
    for (int i = 0; i < 8; ++i)
        d[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(v >> (8 * i));
    return d;
}

TEST(PathOram, UninitializedReadsZero)
{
    auto oram = makeOram();
    EXPECT_EQ(oram->access(0, OramOp::Read), BlockData{});
    EXPECT_EQ(oram->access(123, OramOp::Read), BlockData{});
}

TEST(PathOram, ReadYourWrites)
{
    auto oram = makeOram();
    const BlockData v = blockOf(0xdeadbeef);
    oram->access(7, OramOp::Write, &v);
    EXPECT_EQ(oram->access(7, OramOp::Read), v);
}

TEST(PathOram, WriteReturnsOldValue)
{
    auto oram = makeOram();
    const BlockData v1 = blockOf(1), v2 = blockOf(2);
    oram->access(7, OramOp::Write, &v1);
    EXPECT_EQ(oram->access(7, OramOp::Write, &v2), v1);
    EXPECT_EQ(oram->access(7, OramOp::Read), v2);
}

TEST(PathOram, ManyBlocksSurviveShuffling)
{
    auto oram = makeOram(8, 3);
    const std::uint64_t capacity = smallParams().capacityBlocks();
    std::map<Addr, std::uint64_t> expected;
    Rng rng(99);
    // Fill.
    for (int i = 0; i < 300; ++i) {
        const Addr a = rng.nextBelow(capacity);
        const std::uint64_t v = rng.next();
        const BlockData d = blockOf(v);
        oram->access(a, OramOp::Write, &d);
        expected[a] = v;
    }
    // Random reads and overwrites.
    for (int i = 0; i < 500; ++i) {
        const Addr a = rng.nextBelow(capacity);
        if (rng.nextBool(0.5)) {
            const auto it = expected.find(a);
            const BlockData got = oram->access(a, OramOp::Read);
            const BlockData want =
                it == expected.end() ? BlockData{} : blockOf(it->second);
            ASSERT_EQ(got, want) << "addr " << a << " iter " << i;
        } else {
            const std::uint64_t v = rng.next();
            const BlockData d = blockOf(v);
            oram->access(a, OramOp::Write, &d);
            expected[a] = v;
        }
    }
    EXPECT_TRUE(oram->integrityOk());
}

TEST(PathOram, LeafRemappedEveryAccess)
{
    auto oram = makeOram();
    const BlockData v = blockOf(1);
    oram->access(5, OramOp::Write, &v);
    int changes = 0;
    LeafId prev = oram->leafOf(5);
    for (int i = 0; i < 50; ++i) {
        oram->access(5, OramOp::Read);
        const LeafId cur = oram->leafOf(5);
        changes += cur != prev;
        prev = cur;
    }
    // 2^8 leaves: collisions are rare; nearly every access remaps.
    EXPECT_GT(changes, 45);
}

TEST(PathOram, PathInvariantHolds)
{
    // After any access, the accessed leaf recorded in the trace is
    // the PRE-remap leaf: the block must have been on that path or
    // in the stash.  We validate indirectly: repeated read-your-
    // writes across thousands of accesses (above) plus stash bounds.
    auto oram = makeOram(6, 5);
    const std::uint64_t capacity =
        smallParams(6).capacityBlocks();
    const BlockData v = blockOf(7);
    for (Addr a = 0; a < capacity; ++a)
        oram->access(a % capacity, OramOp::Write, &v);
    EXPECT_LE(oram->stats().maxStashSize,
              oram->params().stashCapacity);
    EXPECT_TRUE(oram->integrityOk());
}

TEST(PathOram, LeafTraceLooksUniform)
{
    // Obliviousness: the observed leaf sequence should be
    // indistinguishable for two very different access patterns.
    // Check uniformity of touched leaves via a chi-square-ish bound.
    auto uniformity = [](bool sequential) {
        auto oram = makeOram(8, 7);
        const std::uint64_t capacity = smallParams().capacityBlocks();
        const BlockData v = blockOf(1);
        Rng rng(13);
        for (int i = 0; i < 2000; ++i) {
            const Addr a = sequential
                               ? static_cast<Addr>(i) % capacity
                               : rng.nextBelow(capacity);
            oram->access(a, OramOp::Write, &v);
        }
        // Bin the leaf trace into 16 bins.
        std::vector<int> bins(16, 0);
        const auto &trace = oram->leafTrace();
        for (LeafId l : trace)
            ++bins[l % 16];
        const double expect =
            static_cast<double>(trace.size()) / bins.size();
        double chi2 = 0;
        for (int b : bins)
            chi2 += (b - expect) * (b - expect) / expect;
        return chi2;
    };
    // Chi-square with 15 dof: values below ~37 pass at p=0.001.
    EXPECT_LT(uniformity(true), 45.0);
    EXPECT_LT(uniformity(false), 45.0);
}

TEST(PathOram, SameAddressRepeatedTouchesDifferentLeaves)
{
    // The core ORAM property: hammering one address must not hammer
    // one leaf.
    auto oram = makeOram(8, 11);
    const BlockData v = blockOf(1);
    oram->access(3, OramOp::Write, &v);
    oram->clearLeafTrace();
    for (int i = 0; i < 200; ++i)
        oram->access(3, OramOp::Read);
    std::vector<bool> seen(1u << 8, false);
    unsigned distinct = 0;
    for (LeafId l : oram->leafTrace()) {
        if (!seen[l]) {
            seen[l] = true;
            ++distinct;
        }
    }
    // 200 draws over 256 leaves: expect ~140 distinct.
    EXPECT_GT(distinct, 100u);
}

TEST(PathOram, TamperIsDetected)
{
    auto oram = makeOram(6, 15);
    const BlockData v = blockOf(42);
    oram->access(0, OramOp::Write, &v);
    // Corrupt every bucket: the next access must flag integrity.
    for (std::uint64_t seq = 0; seq < oram->store().numBuckets(); ++seq)
        oram->store().tamperData(seq, 3);
    oram->access(0, OramOp::Read);
    EXPECT_FALSE(oram->integrityOk());
    EXPECT_GT(oram->stats().integrityFailures, 0u);
}

TEST(PathOram, ReplayIsDetected)
{
    auto oram = makeOram(6, 17);
    const BlockData v1 = blockOf(1);
    oram->access(0, OramOp::Write, &v1);

    // Capture the root bucket (on every path), then let the ORAM
    // advance, then roll the root back.
    const auto old_image = oram->store().rawImage(0);
    const auto old_counter = oram->store().counter(0);
    const auto old_mac = oram->store().rawMac(0);
    const BlockData v2 = blockOf(2);
    oram->access(0, OramOp::Write, &v2);
    oram->store().replayFrom(0, old_image, old_counter, old_mac);
    oram->access(0, OramOp::Read);
    EXPECT_FALSE(oram->integrityOk());
}

TEST(PathOram, BackgroundEvictionKeepsStashBounded)
{
    auto oram = makeOram(6, 19);
    const std::uint64_t capacity = smallParams(6).capacityBlocks();
    const BlockData v = blockOf(9);
    for (int i = 0; i < 2000; ++i)
        oram->access(static_cast<Addr>(i) % capacity, OramOp::Write,
                     &v);
    EXPECT_LE(oram->stashSize(), oram->params().stashCapacity / 2 +
                                     oram->params().bucketBlocks *
                                         (oram->params().levels + 1));
}

TEST(PathOram, DistinctSeedsDistinctLeafSequences)
{
    auto a = makeOram(8, 100);
    auto b = makeOram(8, 200);
    const BlockData v = blockOf(1);
    for (int i = 0; i < 50; ++i) {
        a->access(0, OramOp::Write, &v);
        b->access(0, OramOp::Write, &v);
    }
    EXPECT_NE(a->leafTrace(), b->leafTrace());
}

} // namespace
} // namespace secdimm::oram
