#include <gtest/gtest.h>

#include "oram/recursion.hh"
#include "util/rng.hh"

namespace secdimm::oram
{
namespace
{

RecursionParams
paperParams()
{
    return RecursionParams{}; // 5 PosMap levels, 16 leaves/block, 64KB.
}

TEST(Recursion, ColdAccessPaysFullRecursion)
{
    RecursionEngine eng(paperParams());
    // Nothing cached: n+1 = 6 accessORAMs.
    EXPECT_EQ(eng.opsForAccess(0x123456), 6u);
}

TEST(Recursion, ImmediateRepeatCostsOne)
{
    RecursionEngine eng(paperParams());
    eng.opsForAccess(0x123456);
    // All PosMap blocks now in the PLB: hit at level 1 => 1 op.
    EXPECT_EQ(eng.opsForAccess(0x123456), 1u);
}

TEST(Recursion, NeighborSharesPosmapBlock)
{
    RecursionEngine eng(paperParams());
    eng.opsForAccess(0x1000);
    // Block 0x1001 shares the level-1 PosMap block (16 leaves/block).
    EXPECT_EQ(eng.opsForAccess(0x1001), 1u);
}

TEST(Recursion, PartialHitCostsIntermediate)
{
    RecursionEngine eng(paperParams());
    eng.opsForAccess(0x1000);
    // 0x1000 >> 4 != 0x1010 >> 4 but 0x1000 >> 8 == 0x1010 >> 8:
    // miss at level 1, hit at level 2 => 2 ops.
    EXPECT_EQ(eng.opsForAccess(0x1010), 2u);
}

TEST(Recursion, StatsTrackAverage)
{
    RecursionEngine eng(paperParams());
    eng.opsForAccess(0x1000); // 6
    eng.opsForAccess(0x1000); // 1
    EXPECT_EQ(eng.stats().requests, 2u);
    EXPECT_EQ(eng.stats().orams, 7u);
    EXPECT_NEAR(eng.stats().avgOramsPerRequest(), 3.5, 1e-9);
}

TEST(Recursion, SequentialStreamApproachesPaperAverage)
{
    // The paper observes ~1.4 accessORAMs per LLC miss on its
    // workloads.  A moderately local stream should land in that
    // ballpark (between 1 and 2).
    RecursionEngine eng(paperParams());
    Rng rng(42);
    std::uint64_t cursor = 0;
    for (int i = 0; i < 20000; ++i) {
        if (rng.nextBool(0.6))
            ++cursor; // Sequential.
        else
            cursor = rng.nextBelow(1ULL << 22);
        eng.opsForAccess(cursor);
    }
    const double avg = eng.stats().avgOramsPerRequest();
    EXPECT_GT(avg, 1.0);
    EXPECT_LT(avg, 2.5);
}

TEST(Recursion, RandomStreamCostsMore)
{
    RecursionParams params = paperParams();
    RecursionEngine seq_eng(params), rnd_eng(params);
    Rng rng(7);
    std::uint64_t cursor = 0;
    for (int i = 0; i < 5000; ++i) {
        seq_eng.opsForAccess(cursor++);
        rnd_eng.opsForAccess(rng.next() & ((1ULL << 40) - 1));
    }
    EXPECT_LT(seq_eng.stats().avgOramsPerRequest(),
              rnd_eng.stats().avgOramsPerRequest());
}

} // namespace
} // namespace secdimm::oram
