/**
 * @file
 * Tests of the co-resident plain-access path through the Freecursive
 * backend (non-secure VM traffic sharing the ORAM's channels).
 */

#include <gtest/gtest.h>

#include <map>

#include "oram/freecursive_backend.hh"

namespace secdimm::oram
{
namespace
{

struct Harness
{
    FreecursiveBackend backend;
    std::map<std::uint64_t, Tick> oramDone;
    std::map<std::uint64_t, Tick> plainDone;

    Harness()
        : backend(tree(), RecursionParams{}, dram::ddr3_1600(), geom(),
                  1)
    {
        backend.setCompletionCallback(
            [this](std::uint64_t id, Tick t) { oramDone[id] = t; });
        backend.setPlainCompletionCallback(
            [this](std::uint64_t id, Tick t) { plainDone[id] = t; });
    }

    static OramParams
    tree()
    {
        OramParams p;
        p.levels = 12;
        p.cachedLevels = 4;
        return p;
    }

    static dram::Geometry
    geom()
    {
        dram::Geometry g;
        g.ranksPerChannel = 4;
        g.rowsPerBank = 4096;
        return g;
    }

    void
    drain()
    {
        while (!backend.idle()) {
            const Tick next = backend.nextEventAt();
            ASSERT_NE(next, tickNever);
            backend.advanceTo(next);
        }
    }
};

TEST(CoResident, PlainAccessesCompleteOnSeparateCallback)
{
    Harness h;
    for (std::uint64_t i = 1; i <= 10; ++i)
        h.backend.accessPlain(i, i * 64 * 131, i % 2 == 0, 0);
    h.drain();
    EXPECT_EQ(h.plainDone.size(), 10u);
    EXPECT_TRUE(h.oramDone.empty());
}

TEST(CoResident, MixedTrafficBothComplete)
{
    Harness h;
    for (std::uint64_t i = 1; i <= 5; ++i) {
        h.backend.access(i, i * 1024 * 1024, false, 0);
        h.backend.accessPlain(100 + i, i * 64 * 577, false, 0);
    }
    h.drain();
    EXPECT_EQ(h.oramDone.size(), 5u);
    EXPECT_EQ(h.plainDone.size(), 5u);
}

TEST(CoResident, PlainLatencySuffersUnderOramLoad)
{
    // The Figure-2 story: ORAM path traffic congests the shared
    // channel, inflating a bystander's access latency.
    auto plain_latency = [](bool with_oram) {
        Harness h;
        if (with_oram) {
            for (std::uint64_t i = 1; i <= 6; ++i)
                h.backend.access(i, i * 1024 * 1024, false, 0);
        }
        h.backend.accessPlain(1, 64 * 12345, false, 10);
        while (h.plainDone.empty())
            h.backend.advanceTo(h.backend.nextEventAt());
        const Tick done = h.plainDone[1];
        while (!h.backend.idle()) {
            const Tick next = h.backend.nextEventAt();
            if (next == tickNever)
                break;
            h.backend.advanceTo(next);
        }
        return done - 10;
    };
    EXPECT_GT(plain_latency(true), 2 * plain_latency(false));
}

TEST(CoResident, PlainWritesAreFireAndForget)
{
    Harness h;
    h.backend.accessPlain(1, 4096, true, 0);
    h.drain();
    ASSERT_EQ(h.plainDone.size(), 1u);
    EXPECT_GT(h.plainDone[1], 0u);
}

} // namespace
} // namespace secdimm::oram
