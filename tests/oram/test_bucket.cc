#include <gtest/gtest.h>

#include "oram/bucket_store.hh"

namespace secdimm::oram
{
namespace
{

BlockData
patternBlock(std::uint8_t seed)
{
    BlockData d;
    for (std::size_t i = 0; i < d.size(); ++i)
        d[i] = static_cast<std::uint8_t>(seed + i);
    return d;
}

TEST(Bucket, SlotsStartInvalid)
{
    Bucket b(4);
    EXPECT_EQ(b.occupancy(), 0u);
    EXPECT_EQ(b.firstFreeSlot(), 0);
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_FALSE(b.slot(i).valid());
}

TEST(Bucket, ImageRoundTrip)
{
    Bucket b(4);
    b.slot(0) = BlockSlot{0x1234, 7, patternBlock(1)};
    b.slot(2) = BlockSlot{0x9999, 3, patternBlock(9)};
    const auto image = b.toImage();
    EXPECT_EQ(image.size(), Bucket::imageBytes(4));
    const Bucket c = Bucket::fromImage(image, 4);
    EXPECT_EQ(c.slot(0).addr, 0x1234u);
    EXPECT_EQ(c.slot(0).leaf, 7u);
    EXPECT_EQ(c.slot(0).data, patternBlock(1));
    EXPECT_FALSE(c.slot(1).valid());
    EXPECT_EQ(c.slot(2).addr, 0x9999u);
    EXPECT_EQ(c.occupancy(), 2u);
}

TEST(Bucket, ClearResets)
{
    Bucket b(4);
    b.slot(1) = BlockSlot{5, 5, patternBlock(5)};
    b.clear();
    EXPECT_EQ(b.occupancy(), 0u);
}

class BucketStoreTest : public ::testing::Test
{
  protected:
    BucketStoreTest()
        : store_(16, 4, crypto::makeKey(1, 2), crypto::makeKey(3, 4))
    {
    }
    BucketStore store_;
};

TEST_F(BucketStoreTest, FreshStoreReadsEmptyAuthentic)
{
    for (std::uint64_t seq = 0; seq < store_.numBuckets(); ++seq) {
        const auto r = store_.readBucket(seq);
        EXPECT_TRUE(r.authentic);
        EXPECT_EQ(r.bucket.occupancy(), 0u);
    }
}

TEST_F(BucketStoreTest, WriteReadRoundTrip)
{
    Bucket b(4);
    b.slot(0) = BlockSlot{42, 9, patternBlock(3)};
    store_.writeBucket(5, b);
    const auto r = store_.readBucket(5);
    EXPECT_TRUE(r.authentic);
    EXPECT_EQ(r.bucket.slot(0).addr, 42u);
    EXPECT_EQ(r.bucket.slot(0).data, patternBlock(3));
}

TEST_F(BucketStoreTest, CounterAdvancesPerWrite)
{
    const auto c0 = store_.counter(3);
    store_.writeBucket(3, Bucket(4));
    EXPECT_EQ(store_.counter(3), c0 + 1);
}

TEST_F(BucketStoreTest, CiphertextChangesEvenForSameContent)
{
    Bucket b(4);
    b.slot(0) = BlockSlot{42, 9, patternBlock(3)};
    store_.writeBucket(5, b);
    const auto img1 = store_.rawImage(5);
    store_.writeBucket(5, b);
    const auto img2 = store_.rawImage(5);
    EXPECT_NE(img1, img2) << "counter-mode freshness violated";
}

TEST_F(BucketStoreTest, TamperDetected)
{
    Bucket b(4);
    b.slot(0) = BlockSlot{42, 9, patternBlock(3)};
    store_.writeBucket(5, b);
    store_.tamperData(5, 17);
    EXPECT_FALSE(store_.readBucket(5).authentic);
}

TEST_F(BucketStoreTest, ReplayOfConsistentTripleVerifiesButCounterTells)
{
    // A replayed (image, counter, mac) triple is self-consistent, so
    // the MAC alone passes; rollback detection is the controller's
    // counter mirror (tested in PathOram).  Here we check the replay
    // plumbing itself.
    Bucket b(4);
    b.slot(0) = BlockSlot{42, 9, patternBlock(3)};
    store_.writeBucket(5, b);
    const auto old_image = store_.rawImage(5);
    const auto old_counter = store_.counter(5);
    const auto old_mac = store_.rawMac(5);

    Bucket b2(4);
    b2.slot(0) = BlockSlot{42, 9, patternBlock(99)};
    store_.writeBucket(5, b2);

    store_.replayFrom(5, old_image, old_counter, old_mac);
    const auto r = store_.readBucket(5);
    EXPECT_TRUE(r.authentic); // MAC alone cannot catch rollback...
    EXPECT_EQ(store_.counter(5), old_counter); // ...the counter can.
    EXPECT_EQ(r.bucket.slot(0).data, patternBlock(3));
}

TEST_F(BucketStoreTest, SaltSeparatesTrees)
{
    BucketStore a(4, 4, crypto::makeKey(1, 2), crypto::makeKey(3, 4),
                  /*salt=*/0);
    BucketStore b(4, 4, crypto::makeKey(1, 2), crypto::makeKey(3, 4),
                  /*salt=*/1);
    Bucket bucket(4);
    bucket.slot(0) = BlockSlot{1, 1, patternBlock(1)};
    a.writeBucket(0, bucket);
    b.writeBucket(0, bucket);
    EXPECT_NE(a.rawImage(0), b.rawImage(0));
}

} // namespace
} // namespace secdimm::oram
