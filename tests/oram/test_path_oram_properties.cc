/**
 * @file
 * Property sweeps over Path ORAM shapes: the core invariants must
 * hold for every (levels, Z, stash) combination, not just the Table
 * II point.
 */

#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "oram/path_oram.hh"

namespace secdimm::oram
{
namespace
{

using ShapeParam = std::tuple<unsigned /*levels*/, unsigned /*Z*/>;

class PathOramShapes : public ::testing::TestWithParam<ShapeParam>
{
  protected:
    OramParams
    params() const
    {
        OramParams p;
        p.levels = std::get<0>(GetParam());
        p.bucketBlocks = std::get<1>(GetParam());
        p.stashCapacity = 250;
        return p;
    }

    std::unique_ptr<PathOram>
    make(std::uint64_t seed) const
    {
        return std::make_unique<PathOram>(
            params(), crypto::makeKey(0x10, seed),
            crypto::makeKey(0x20, seed), seed);
    }

    static BlockData
    blockOf(std::uint64_t v)
    {
        BlockData d{};
        for (int i = 0; i < 8; ++i)
            d[static_cast<std::size_t>(i)] =
                static_cast<std::uint8_t>(v >> (8 * i));
        return d;
    }
};

INSTANTIATE_TEST_SUITE_P(
    Shapes, PathOramShapes,
    ::testing::Combine(::testing::Values(5u, 7u, 9u),
                       ::testing::Values(2u, 4u, 6u)),
    [](const ::testing::TestParamInfo<ShapeParam> &info) {
        return "L" + std::to_string(std::get<0>(info.param)) + "_Z" +
               std::to_string(std::get<1>(info.param));
    });

TEST_P(PathOramShapes, ReadYourWritesUnderChurn)
{
    auto oram = make(41);
    const std::uint64_t capacity = params().capacityBlocks();
    std::map<Addr, std::uint64_t> expected;
    Rng rng(5);
    for (int i = 0; i < 400; ++i) {
        const Addr a = rng.nextBelow(capacity);
        if (rng.nextBool(0.5)) {
            const std::uint64_t v = rng.next();
            const BlockData d = blockOf(v);
            oram->access(a, OramOp::Write, &d);
            expected[a] = v;
        } else {
            const auto it = expected.find(a);
            const BlockData want =
                it == expected.end() ? BlockData{} : blockOf(it->second);
            ASSERT_EQ(oram->access(a, OramOp::Read), want)
                << "addr " << a << " iter " << i;
        }
    }
    EXPECT_TRUE(oram->integrityOk());
}

TEST_P(PathOramShapes, StashNeverExceedsCapacity)
{
    auto oram = make(43);
    const std::uint64_t capacity = params().capacityBlocks();
    const BlockData v = blockOf(1);
    for (std::uint64_t i = 0; i < 2 * capacity; ++i)
        oram->access(i % capacity, OramOp::Write, &v);
    EXPECT_LE(oram->stats().maxStashSize, params().stashCapacity);
}

TEST_P(PathOramShapes, LeafDistributionUniform)
{
    auto oram = make(47);
    const BlockData v = blockOf(1);
    oram->access(0, OramOp::Write, &v);
    oram->clearLeafTrace();
    for (int i = 0; i < 1200; ++i)
        oram->access(0, OramOp::Read);
    const unsigned bins = 8;
    std::vector<double> counts(bins, 0);
    for (LeafId l : oram->leafTrace())
        counts[l % bins] += 1;
    const double expect =
        static_cast<double>(oram->leafTrace().size()) / bins;
    double chi2 = 0;
    for (double c : counts)
        chi2 += (c - expect) * (c - expect) / expect;
    // 7 dof; 24.3 is the p=0.001 cutoff.
    EXPECT_LT(chi2, 30.0);
}

TEST_P(PathOramShapes, TamperAnywhereDetected)
{
    auto oram = make(53);
    const BlockData v = blockOf(9);
    oram->access(1, OramOp::Write, &v);
    Rng rng(11);
    // Corrupt five random buckets; enough accesses must trip at
    // least one MAC check (the root is on every path).
    oram->store().tamperData(0, 1); // Root: always read.
    for (int i = 0; i < 4; ++i) {
        oram->store().tamperData(
            rng.nextBelow(oram->store().numBuckets()), 2);
    }
    oram->access(1, OramOp::Read);
    EXPECT_FALSE(oram->integrityOk());
}

TEST_P(PathOramShapes, DeterministicPerSeed)
{
    auto a = make(99);
    auto b = make(99);
    const BlockData v = blockOf(3);
    for (int i = 0; i < 60; ++i) {
        a->access(static_cast<Addr>(i % 7), OramOp::Write, &v);
        b->access(static_cast<Addr>(i % 7), OramOp::Write, &v);
    }
    EXPECT_EQ(a->leafTrace(), b->leafTrace());
    EXPECT_EQ(a->stashSize(), b->stashSize());
}

} // namespace
} // namespace secdimm::oram
