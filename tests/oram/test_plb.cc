#include <gtest/gtest.h>

#include "oram/plb.hh"

namespace secdimm::oram
{
namespace
{

TEST(Plb, MissThenHit)
{
    Plb plb(64, 4);
    const auto key = Plb::makeKey(1, 42);
    EXPECT_FALSE(plb.lookup(key));
    plb.insert(key);
    EXPECT_TRUE(plb.lookup(key));
    EXPECT_EQ(plb.hits(), 1u);
    EXPECT_EQ(plb.misses(), 1u);
}

TEST(Plb, KeysAreLevelQualified)
{
    Plb plb(64, 4);
    plb.insert(Plb::makeKey(1, 42));
    EXPECT_FALSE(plb.contains(Plb::makeKey(2, 42)));
    EXPECT_TRUE(plb.contains(Plb::makeKey(1, 42)));
}

TEST(Plb, LruEvictionWithinSet)
{
    // Direct-mapped-ish: 4 entries, 4 ways => one set.
    Plb plb(4, 4);
    for (std::uint64_t i = 0; i < 4; ++i)
        plb.insert(Plb::makeKey(0, i));
    plb.lookup(Plb::makeKey(0, 0)); // Refresh key 0.
    plb.insert(Plb::makeKey(0, 99)); // Evicts LRU (key 1).
    EXPECT_TRUE(plb.contains(Plb::makeKey(0, 0)));
    EXPECT_FALSE(plb.contains(Plb::makeKey(0, 1)));
    EXPECT_TRUE(plb.contains(Plb::makeKey(0, 99)));
}

TEST(Plb, InsertExistingRefreshes)
{
    Plb plb(4, 4);
    for (std::uint64_t i = 0; i < 4; ++i)
        plb.insert(Plb::makeKey(0, i));
    plb.insert(Plb::makeKey(0, 0)); // Refresh, not duplicate.
    plb.insert(Plb::makeKey(0, 50));
    EXPECT_TRUE(plb.contains(Plb::makeKey(0, 0)));
}

TEST(Plb, HitRate)
{
    Plb plb(64, 4);
    plb.insert(Plb::makeKey(1, 1));
    plb.lookup(Plb::makeKey(1, 1));
    plb.lookup(Plb::makeKey(1, 2));
    EXPECT_NEAR(plb.hitRate(), 0.5, 1e-9);
}

TEST(Plb, ContainsDoesNotDisturbState)
{
    Plb plb(64, 4);
    plb.contains(Plb::makeKey(0, 5));
    EXPECT_EQ(plb.hits() + plb.misses(), 0u);
}

} // namespace
} // namespace secdimm::oram
