#include <gtest/gtest.h>

#include <map>

#include "oram/recursive_oram.hh"

namespace secdimm::oram
{
namespace
{

RecursiveOram::Params
smallParams(unsigned data_levels = 9,
            std::uint64_t on_chip_entries = 64,
            std::size_t plb_entries = 16)
{
    RecursiveOram::Params p;
    p.data.levels = data_levels;
    p.data.stashCapacity = 250;
    p.onChipMaxEntries = on_chip_entries;
    p.plbEntries = plb_entries;
    return p;
}

BlockData
blockOf(std::uint64_t v)
{
    BlockData d{};
    for (int i = 0; i < 8; ++i)
        d[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(v >> (8 * i));
    return d;
}

TEST(RecursiveOram, BuildsTheExpectedChain)
{
    // 9 levels => 1024 data blocks; posmaps shrink 8x per level:
    // 1024 -> 128 -> 16 (<= 64 on-chip) => 2 PosMap ORAMs.
    RecursiveOram oram(smallParams(), 1);
    EXPECT_EQ(oram.posmapLevels(), 2u);
    EXPECT_EQ(oram.capacityBlocks(), 1024u);
}

TEST(RecursiveOram, SingleTreeWhenPosmapFitsOnChip)
{
    RecursiveOram oram(smallParams(6, 4096), 1);
    EXPECT_EQ(oram.posmapLevels(), 0u);
}

TEST(RecursiveOram, ReadYourWrites)
{
    RecursiveOram oram(smallParams(), 3);
    const BlockData v = blockOf(0x123456789abcdefULL);
    oram.access(77, OramOp::Write, &v);
    EXPECT_EQ(oram.access(77, OramOp::Read), v);
    EXPECT_TRUE(oram.integrityOk());
}

TEST(RecursiveOram, UninitializedReadsZero)
{
    RecursiveOram oram(smallParams(), 5);
    EXPECT_EQ(oram.access(0, OramOp::Read), BlockData{});
    EXPECT_EQ(oram.access(1023, OramOp::Read), BlockData{});
}

TEST(RecursiveOram, ChurnAcrossWholeAddressSpace)
{
    RecursiveOram oram(smallParams(), 7);
    const std::uint64_t capacity = oram.capacityBlocks();
    std::map<Addr, std::uint64_t> expected;
    Rng rng(13);
    for (int i = 0; i < 600; ++i) {
        const Addr a = rng.nextBelow(capacity);
        if (rng.nextBool(0.5)) {
            const std::uint64_t v = rng.next();
            const BlockData d = blockOf(v);
            oram.access(a, OramOp::Write, &d);
            expected[a] = v;
        } else {
            const auto it = expected.find(a);
            const BlockData want =
                it == expected.end() ? BlockData{} : blockOf(it->second);
            ASSERT_EQ(oram.access(a, OramOp::Read), want)
                << "addr " << a << " iter " << i;
        }
    }
    EXPECT_TRUE(oram.integrityOk());
}

TEST(RecursiveOram, PlbShortCircuitsRecursion)
{
    RecursiveOram oram(smallParams(), 9);
    const BlockData v = blockOf(1);
    // Sequential addresses share PosMap blocks: after the first touch
    // the PLB should serve the walk.
    for (Addr a = 0; a < 64; ++a)
        oram.access(a, OramOp::Write, &v);
    const auto &s = oram.stats();
    EXPECT_GT(s.plbHits, s.plbMisses);
    // With a cold hierarchy each request would cost posmapLevels()+1
    // accesses; the PLB must beat that on this local stream.
    EXPECT_LT(s.avgAccessesPerRequest(),
              static_cast<double>(oram.posmapLevels()) + 1.0);
    EXPECT_GE(s.avgAccessesPerRequest(), 1.0);
}

TEST(RecursiveOram, DirtyPlbEntriesSurviveEviction)
{
    // A tiny PLB forces constant eviction of dirty PosMap blocks;
    // leaf bookkeeping must survive the write-backs.
    RecursiveOram oram(smallParams(9, 64, 2), 11);
    const std::uint64_t capacity = oram.capacityBlocks();
    std::map<Addr, std::uint64_t> expected;
    Rng rng(17);
    for (int i = 0; i < 300; ++i) {
        // Scattered addresses maximize PLB pressure.
        const Addr a = rng.nextBelow(capacity);
        const std::uint64_t v = rng.next();
        const BlockData d = blockOf(v);
        oram.access(a, OramOp::Write, &d);
        expected[a] = v;
    }
    for (const auto &kv : expected) {
        ASSERT_EQ(oram.access(kv.first, OramOp::Read),
                  blockOf(kv.second))
            << "addr " << kv.first;
    }
    EXPECT_GT(oram.stats().plbWritebacks, 0u);
    EXPECT_TRUE(oram.integrityOk());
}

TEST(RecursiveOram, RandomStreamCostsMoreThanSequential)
{
    auto avg_cost = [](bool sequential) {
        RecursiveOram oram(smallParams(), 21);
        const BlockData v = blockOf(1);
        Rng rng(23);
        for (int i = 0; i < 200; ++i) {
            const Addr a = sequential
                               ? static_cast<Addr>(i) % 1024
                               : rng.nextBelow(1024);
            oram.access(a, OramOp::Write, &v);
        }
        return oram.stats().avgAccessesPerRequest();
    };
    EXPECT_LT(avg_cost(true), avg_cost(false));
}

TEST(RecursiveOram, EveryTreeSeesTraffic)
{
    RecursiveOram oram(smallParams(), 25);
    const BlockData v = blockOf(1);
    Rng rng(29);
    for (int i = 0; i < 100; ++i)
        oram.access(rng.nextBelow(1024), OramOp::Write, &v);
    for (unsigned level = 0; level <= oram.posmapLevels(); ++level) {
        EXPECT_GT(oram.tree(level).stats().accesses, 0u)
            << "tree " << level;
    }
}

TEST(RecursiveOram, TamperInPosmapTreeDetected)
{
    RecursiveOram oram(smallParams(), 31);
    const BlockData v = blockOf(1);
    oram.access(0, OramOp::Write, &v);
    ASSERT_GE(oram.posmapLevels(), 1u);
    auto &posmap_tree = oram.tree(1);
    for (std::uint64_t seq = 0; seq < posmap_tree.store().numBuckets();
         ++seq) {
        posmap_tree.store().tamperData(seq, 3);
    }
    // Force posmap traffic (cold addresses with a tiny PLB).
    Rng rng(37);
    for (int i = 0; i < 50; ++i)
        oram.access(rng.nextBelow(1024), OramOp::Read);
    EXPECT_FALSE(oram.integrityOk());
}

} // namespace
} // namespace secdimm::oram
