#include <gtest/gtest.h>

#include "oram/stash.hh"

namespace secdimm::oram
{
namespace
{

BlockData
blockOf(std::uint8_t v)
{
    BlockData d{};
    d[0] = v;
    return d;
}

TEST(Stash, PutFindErase)
{
    Stash s(10);
    EXPECT_TRUE(s.put(1, 5, blockOf(1)));
    ASSERT_NE(s.find(1), nullptr);
    EXPECT_EQ(s.find(1)->leaf, 5u);
    EXPECT_TRUE(s.erase(1));
    EXPECT_EQ(s.find(1), nullptr);
    EXPECT_FALSE(s.erase(1));
}

TEST(Stash, PutOverwritesExisting)
{
    Stash s(10);
    s.put(1, 5, blockOf(1));
    s.put(1, 9, blockOf(2));
    EXPECT_EQ(s.size(), 1u);
    EXPECT_EQ(s.find(1)->leaf, 9u);
    EXPECT_EQ(s.find(1)->data, blockOf(2));
}

TEST(Stash, CapacityEnforced)
{
    Stash s(2);
    EXPECT_TRUE(s.put(1, 0, blockOf(1)));
    EXPECT_TRUE(s.put(2, 0, blockOf(2)));
    EXPECT_FALSE(s.put(3, 0, blockOf(3)));
    EXPECT_TRUE(s.full());
    // Overwrite of an existing key is still allowed when full.
    EXPECT_TRUE(s.put(2, 1, blockOf(9)));
}

TEST(Stash, MaxSizeSeenTracksHighWater)
{
    Stash s(10);
    s.put(1, 0, blockOf(1));
    s.put(2, 0, blockOf(2));
    s.erase(1);
    s.erase(2);
    EXPECT_EQ(s.size(), 0u);
    EXPECT_EQ(s.maxSizeSeen(), 2u);
}

TEST(Stash, EvictForBucketPicksOnlyCompatible)
{
    // Tree with 3 levels; bucket at level 1 on path to leaf 5 (0b101)
    // has index 0b1: blocks with leaf in {4,5,6,7} qualify.
    Stash s(10);
    s.put(10, 5, blockOf(1)); // Compatible.
    s.put(11, 4, blockOf(2)); // Compatible.
    s.put(12, 3, blockOf(3)); // Not compatible (leaf>>2 == 0).
    auto picked = s.evictForBucket(5, 1, 3, 4);
    EXPECT_EQ(picked.size(), 2u);
    EXPECT_EQ(s.size(), 1u);
    EXPECT_NE(s.find(12), nullptr);
}

TEST(Stash, EvictForBucketRespectsZ)
{
    Stash s(10);
    for (Addr a = 0; a < 6; ++a)
        s.put(a, 5, blockOf(static_cast<std::uint8_t>(a)));
    auto picked = s.evictForBucket(5, 3, 3, 4); // Leaf bucket, Z=4.
    EXPECT_EQ(picked.size(), 4u);
    EXPECT_EQ(s.size(), 2u);
}

TEST(Stash, EvictAtRootTakesAnything)
{
    Stash s(10);
    s.put(1, 0, blockOf(1));
    s.put(2, 7, blockOf(2));
    auto picked = s.evictForBucket(/*path_leaf=*/3, /*level=*/0,
                                   /*tree_levels=*/3, 4);
    EXPECT_EQ(picked.size(), 2u); // Root is on every path.
}

TEST(Stash, EvictedEntriesCarryData)
{
    Stash s(10);
    s.put(42, 6, blockOf(0xab));
    auto picked = s.evictForBucket(6, 3, 3, 4);
    ASSERT_EQ(picked.size(), 1u);
    EXPECT_EQ(picked[0].addr, 42u);
    EXPECT_EQ(picked[0].leaf, 6u);
    EXPECT_EQ(picked[0].data, blockOf(0xab));
}

} // namespace
} // namespace secdimm::oram
