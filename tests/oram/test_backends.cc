#include <gtest/gtest.h>

#include <map>

#include "oram/freecursive_backend.hh"
#include "oram/nonsecure_backend.hh"

namespace secdimm::oram
{
namespace
{

dram::Geometry
smallGeom(unsigned channels)
{
    dram::Geometry g;
    g.channels = channels;
    g.ranksPerChannel = 4;
    g.banksPerRank = 8;
    g.rowsPerBank = 4096;
    return g;
}

OramParams
smallTree()
{
    OramParams p;
    p.levels = 12;
    p.cachedLevels = 4;
    return p;
}

/** Drive a backend until the given number of completions arrive. */
std::map<std::uint64_t, Tick>
runAccesses(MemoryBackend &backend, unsigned n, std::uint64_t stride)
{
    std::map<std::uint64_t, Tick> done;
    backend.setCompletionCallback(
        [&](std::uint64_t id, Tick t) { done[id] = t; });
    Tick now = 0;
    for (unsigned i = 0; i < n; ++i) {
        while (!backend.canAccept()) {
            const Tick next = backend.nextEventAt();
            backend.advanceTo(next);
            now = std::max(now, next);
        }
        backend.access(i + 1, (i * stride) % (1ULL << 24), i % 3 == 0,
                       now);
    }
    while (!backend.idle()) {
        const Tick next = backend.nextEventAt();
        if (next == tickNever)
            break;
        backend.advanceTo(next);
    }
    return done;
}

TEST(NonSecureBackend, CompletesAllAccesses)
{
    NonSecureBackend backend(dram::ddr3_1600(), smallGeom(1));
    const auto done = runAccesses(backend, 50, 4096);
    EXPECT_EQ(done.size(), 50u);
    for (const auto &kv : done)
        EXPECT_GT(kv.second, 0u);
}

TEST(NonSecureBackend, OneBurstPerAccess)
{
    NonSecureBackend backend(dram::ddr3_1600(), smallGeom(1));
    runAccesses(backend, 30, 4096);
    const auto agg = backend.dramSystem().aggregateStats();
    EXPECT_EQ(agg.reads + agg.writes, 30u);
}

TEST(FreecursiveBackend, CompletesAllAccesses)
{
    FreecursiveBackend backend(smallTree(), RecursionParams{},
                               dram::ddr3_1600(), smallGeom(1));
    const auto done = runAccesses(backend, 20, 64 * 1024);
    EXPECT_EQ(done.size(), 20u);
}

TEST(FreecursiveBackend, PathTrafficMatchesFormula)
{
    FreecursiveBackend backend(smallTree(), RecursionParams{},
                               dram::ddr3_1600(), smallGeom(1));
    runAccesses(backend, 10, 64 * 1024);
    // Each accessORAM moves 2*(Z+1)*dramLevels lines.
    const OramParams p = smallTree();
    const std::uint64_t expected =
        backend.traffic().accessOrams * p.linesPerAccess();
    EXPECT_EQ(backend.traffic().channelLines, expected);
    const auto agg = backend.dramSystem().aggregateStats();
    EXPECT_EQ(agg.reads + agg.writes, expected);
}

TEST(FreecursiveBackend, RecursionMultipliesOps)
{
    FreecursiveBackend backend(smallTree(), RecursionParams{},
                               dram::ddr3_1600(), smallGeom(1));
    runAccesses(backend, 20, 64 * 1024);
    EXPECT_GE(backend.traffic().accessOrams, 20u);
    EXPECT_EQ(backend.traffic().requests, 20u);
    EXPECT_GE(backend.recursion().stats().avgOramsPerRequest(), 1.0);
}

TEST(FreecursiveBackend, MuchSlowerThanNonSecure)
{
    // The essence of Figure 6: ORAM latency dwarfs a plain access.
    NonSecureBackend plain(dram::ddr3_1600(), smallGeom(1));
    FreecursiveBackend oram(smallTree(), RecursionParams{},
                            dram::ddr3_1600(), smallGeom(1));
    const auto d1 = runAccesses(plain, 10, 64 * 1024);
    const auto d2 = runAccesses(oram, 10, 64 * 1024);
    EXPECT_GT(d2.rbegin()->second, 4 * d1.rbegin()->second);
}

TEST(FreecursiveBackend, TwoChannelsFasterThanOne)
{
    FreecursiveBackend one(smallTree(), RecursionParams{},
                           dram::ddr3_1600(), smallGeom(1));
    FreecursiveBackend two(smallTree(), RecursionParams{},
                           dram::ddr3_1600(), smallGeom(2));
    const auto d1 = runAccesses(one, 15, 64 * 1024);
    const auto d2 = runAccesses(two, 15, 64 * 1024);
    EXPECT_LT(d2.rbegin()->second, d1.rbegin()->second);
}

TEST(FreecursiveBackend, OramCacheReducesTraffic)
{
    OramParams no_cache = smallTree();
    no_cache.cachedLevels = 0;
    FreecursiveBackend cached(smallTree(), RecursionParams{},
                              dram::ddr3_1600(), smallGeom(1));
    FreecursiveBackend uncached(no_cache, RecursionParams{},
                                dram::ddr3_1600(), smallGeom(1));
    runAccesses(cached, 10, 64 * 1024);
    runAccesses(uncached, 10, 64 * 1024);
    EXPECT_LT(cached.traffic().channelLines,
              uncached.traffic().channelLines);
}

TEST(FreecursiveBackend, BackpressureRespectsJobCapacity)
{
    FreecursiveBackend backend(smallTree(), RecursionParams{},
                               dram::ddr3_1600(), smallGeom(1));
    backend.setCompletionCallback([](std::uint64_t, Tick) {});
    unsigned accepted = 0;
    while (backend.canAccept()) {
        backend.access(accepted + 1, accepted * 64, false, 0);
        ++accepted;
    }
    EXPECT_GT(accepted, 0u);
    EXPECT_LE(accepted, 8u);
    while (!backend.idle())
        backend.advanceTo(backend.nextEventAt());
    EXPECT_TRUE(backend.canAccept());
}

} // namespace
} // namespace secdimm::oram
