#include <gtest/gtest.h>

#include <set>

#include "oram/tree_layout.hh"

namespace secdimm::oram
{
namespace
{

TEST(TreeLayout, PathBucketIndices)
{
    // Tree with leaves at level 3; path to leaf 5 (0b101).
    EXPECT_EQ(pathBucket(5, 0, 3).index, 0u);
    EXPECT_EQ(pathBucket(5, 1, 3).index, 1u);  // 0b1
    EXPECT_EQ(pathBucket(5, 2, 3).index, 2u);  // 0b10
    EXPECT_EQ(pathBucket(5, 3, 3).index, 5u);  // 0b101
}

TEST(TreeLayout, BucketSeqBfs)
{
    EXPECT_EQ(bucketSeqBfs({0, 0}), 0u);
    EXPECT_EQ(bucketSeqBfs({1, 0}), 1u);
    EXPECT_EQ(bucketSeqBfs({1, 1}), 2u);
    EXPECT_EQ(bucketSeqBfs({2, 3}), 6u);
    EXPECT_EQ(bucketSeqBfs({3, 0}), 7u);
}

TEST(TreeLayout, SeqIsAPermutation)
{
    // Every bucket maps to a unique sequence number in range.
    for (unsigned subtree : {1u, 2u, 3u, 4u}) {
        TreeLayout layout(6, 5, subtree);
        std::set<std::uint64_t> seen;
        for (unsigned level = 0; level <= 6; ++level) {
            for (std::uint64_t idx = 0; idx < (1ULL << level); ++idx) {
                const std::uint64_t seq =
                    layout.bucketSeq({level, idx});
                EXPECT_LT(seq, layout.numBuckets());
                EXPECT_TRUE(seen.insert(seq).second)
                    << "dup at level " << level << " idx " << idx
                    << " subtree " << subtree;
            }
        }
        EXPECT_EQ(seen.size(), layout.numBuckets());
    }
}

TEST(TreeLayout, SubtreePackingKeepsSubtreeContiguous)
{
    // Subtree height 3: root + 2 children + 4 grandchildren = 7
    // buckets, consecutive sequence numbers.
    TreeLayout layout(8, 5, 3);
    const std::uint64_t root_seq = layout.bucketSeq({0, 0});
    std::set<std::uint64_t> seqs{root_seq};
    for (unsigned level = 1; level < 3; ++level) {
        for (std::uint64_t idx = 0; idx < (1ULL << level); ++idx)
            seqs.insert(layout.bucketSeq({level, idx}));
    }
    EXPECT_EQ(*seqs.rbegin() - *seqs.begin(), 6u);
    EXPECT_EQ(seqs.size(), 7u);
}

TEST(TreeLayout, PathLinesCountMatchesLevels)
{
    TreeLayout layout(10, 5, 4);
    std::vector<Addr> lines;
    layout.pathLines(123, 0, lines);
    EXPECT_EQ(lines.size(), 11u * 5u);
    lines.clear();
    layout.pathLines(123, 7, lines);
    EXPECT_EQ(lines.size(), 4u * 5u);
}

TEST(TreeLayout, PathLinesWithinTree)
{
    TreeLayout layout(12, 5, 4);
    std::vector<Addr> lines;
    layout.pathLines(1000, 0, lines);
    for (Addr line : lines)
        EXPECT_LT(line, layout.totalLines());
}

TEST(TreeLayout, SameSubtreePathLinesAreClose)
{
    // Consecutive levels inside one packed subtree sit within the
    // subtree's line span -- the row-buffer-hit property.
    const unsigned h = 4;
    TreeLayout layout(12, 5, h);
    const std::uint64_t subtree_span = ((1ULL << h) - 1) * 5;
    std::vector<Addr> lines;
    layout.pathLines(77, 0, lines);
    // Levels 0..3 share a subtree: their lines span < subtree_span.
    Addr lo = ~Addr{0}, hi = 0;
    for (unsigned level = 0; level < h; ++level) {
        const Addr first = lines[level * 5];
        lo = std::min(lo, first);
        hi = std::max(hi, first + 4);
    }
    EXPECT_LT(hi - lo, subtree_span);
}

TEST(TreeLayout, PartialBottomSuperLevel)
{
    // 5 levels (0..5 => 6 total) with height-4 subtrees: the second
    // super-level has height 2; layout must still be a permutation.
    TreeLayout layout(5, 2, 4);
    std::set<std::uint64_t> seen;
    for (unsigned level = 0; level <= 5; ++level) {
        for (std::uint64_t idx = 0; idx < (1ULL << level); ++idx)
            EXPECT_TRUE(seen.insert(layout.bucketSeq({level, idx})).second);
    }
    EXPECT_EQ(seen.size(), layout.numBuckets());
}

TEST(TreeLayout, TotalLines)
{
    TreeLayout layout(4, 5, 2);
    EXPECT_EQ(layout.numBuckets(), 31u);
    EXPECT_EQ(layout.totalLines(), 155u);
}

} // namespace
} // namespace secdimm::oram
