/**
 * @file
 * Evaluates the Section III-E low-power technique: the
 * subtree-per-rank layout with idle-rank power-down.  Paper: no more
 * than 4% performance drop, with most ranks in low-power mode (and
 * the rank-to-rank switching penalty eliminated by localizing each
 * access to one rank).
 */

#include <cstdio>

#include "bench/common.hh"
#include "dram/power_model.hh"
#include "sdimm/independent_backend.hh"

using namespace secdimm;
using namespace secdimm::core;

int
main()
{
    bench::header("Low-power ORAM placement (Section III-E)",
                  "Section IV-B text (paper: <=4% performance drop, "
                  "background energy saved)");

    const auto lens = bench::lengths(800);
    bench::JsonReport report("lowpower");

    std::printf("%-12s %12s %12s %8s %12s %12s\n", "workload",
                "lp-on cyc", "lp-off cyc", "perf", "bkgd-on nJ",
                "bkgd-off nJ");

    std::vector<double> perf_drop, bkgd_save;
    for (const char *n : {"mcf", "omnetpp", "GemsFDTD", "lbm"}) {
        const auto &wl = *trace::findProfile(n);
        SystemConfig on = makeConfig(DesignPoint::Indep2, 24, 7);
        on.lowPower = true;
        SystemConfig off = on;
        off.lowPower = false;

        const SimResult r_on = runWorkload(on, wl, lens, 1);
        const SimResult r_off = runWorkload(off, wl, lens, 1);

        const double drop = static_cast<double>(r_on.core.cycles) /
                                r_off.core.cycles -
                            1.0;
        perf_drop.push_back(drop);
        bkgd_save.push_back(r_off.energy.backgroundNj /
                            r_on.energy.backgroundNj);

        report.add("indep2.lp_on", r_on.metrics);
        report.add("indep2.lp_off", r_off.metrics);
        report.set("indep2.lp_on", std::string("perf_drop.") + n, drop);

        std::printf("%-12s %12llu %12llu %+7.1f%% %12.0f %12.0f\n", n,
                    static_cast<unsigned long long>(r_on.core.cycles),
                    static_cast<unsigned long long>(r_off.core.cycles),
                    100.0 * drop, r_on.energy.backgroundNj,
                    r_off.energy.backgroundNj);
    }

    std::printf("\naverage performance cost: %+.1f%%   (paper: <= 4%%)\n",
                100.0 * bench::mean(perf_drop));
    std::printf("background energy saved:  %.2fx\n",
                bench::mean(bkgd_save));
    report.set("indep2.lp_on", "perf_drop.mean",
               bench::mean(perf_drop));
    report.set("indep2.lp_on", "background_energy_saved",
               bench::mean(bkgd_save));
    return 0;
}
