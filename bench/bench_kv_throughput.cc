/**
 * @file
 * End-to-end throughput of the oblivious KV store (src/app) over the
 * sharded service: ops/sec, bytes moved on the block channel, and
 * p50/p99 op latency for each workload shape x shard count.  Every
 * KV op costs exactly 2 * blocksPerSlot() block transfers regardless
 * of hit/miss/kind (the obliviousness invariant), so the bytes column
 * is flat per op and the interesting axes are shard parallelism and
 * key-popularity shape (contention on hot keys serializes same-key
 * ops).
 *
 * Workloads come from the engine in src/app/kv_workload.hh -- the
 * same specs trace_replay --workload= and the chaos campaigns replay.
 * Scale with SDIMM_KV_BENCH_OPS (ops per client, default 400) and
 * SDIMM_KV_BENCH_CLIENTS (default 4).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "app/kv_store.hh"
#include "app/kv_workload.hh"
#include "bench/common.hh"
#include "crypto/cpu_features.hh"

using namespace secdimm;

namespace
{

std::uint64_t
envOr(const char *name, std::uint64_t fallback)
{
    if (const char *v = std::getenv(name))
        return std::strtoull(v, nullptr, 0);
    return fallback;
}

/** A workload shape: spec template, cloned per client tenant. */
struct Shape
{
    const char *name;
    app::KvWorkloadSpec spec;
};

std::vector<Shape>
shapes()
{
    std::vector<Shape> out;

    app::KvWorkloadSpec zipf;
    zipf.kind = app::KvWorkloadKind::Zipfian;
    zipf.zipfTheta = 0.99;
    zipf.missFraction = 0.05;
    out.push_back({"zipfian", zipf});

    app::KvWorkloadSpec hot;
    hot.kind = app::KvWorkloadKind::HotSet;
    hot.hotOpFraction = 0.9;
    hot.hotKeyFraction = 0.1;
    out.push_back({"hotset", hot});

    app::KvWorkloadSpec scan;
    scan.kind = app::KvWorkloadKind::Scan;
    scan.scanLen = 32;
    scan.getFraction = 0.95;
    out.push_back({"scan", scan});

    // Two-tenant blend: a zipfian point-lookup tenant over a scan
    // tenant, 3:1.
    app::KvWorkloadSpec mix;
    mix.kind = app::KvWorkloadKind::Mix;
    app::KvWorkloadSpec t0 = zipf, t1 = scan;
    t0.tenant = "a";
    t1.tenant = "b";
    mix.tenants = {t0, t1};
    mix.weights = {3.0, 1.0};
    out.push_back({"mix", mix});

    return out;
}

/** Give every tenant in @p spec a client-unique namespace. */
void
retenant(app::KvWorkloadSpec &spec, unsigned client)
{
    spec.tenant = "c" + std::to_string(client) + spec.tenant;
    for (auto &t : spec.tenants)
        retenant(t, client);
}

std::uint64_t
population(const app::KvWorkloadSpec &spec)
{
    if (spec.kind != app::KvWorkloadKind::Mix)
        return spec.keys;
    std::uint64_t total = 0;
    for (const auto &t : spec.tenants)
        total += population(t);
    return total;
}

double
percentile(std::vector<double> &xs, double q)
{
    if (xs.empty())
        return 0.0;
    std::sort(xs.begin(), xs.end());
    const std::size_t idx = static_cast<std::size_t>(
        q * static_cast<double>(xs.size() - 1));
    return xs[idx];
}

struct Point
{
    double opsPerSec = 0.0;
    double wallMs = 0.0;
    double p50Us = 0.0;
    double p99Us = 0.0;
    std::uint64_t channelBytes = 0;
    std::uint64_t ops = 0;
};

Point
runPoint(const Shape &shape, unsigned shards, unsigned clients,
         std::uint64_t ops_per_client, bench::JsonReport &report)
{
    // Per-client tenants keep populations disjoint; size capacity for
    // all of them plus the engine's miss keys never inserting.
    std::vector<app::KvWorkloadSpec> specs;
    std::uint64_t capacity = 0;
    for (unsigned c = 0; c < clients; ++c) {
        app::KvWorkloadSpec s = shape.spec;
        s.keys = 24;
        for (auto &t : s.tenants)
            t.keys = 12;
        retenant(s, c);
        capacity += population(s);
        specs.push_back(std::move(s));
    }

    app::ObliviousKVStore::Options opt;
    opt.serve.shard.protocol =
        core::SecureMemorySystem::Protocol::PathOram;
    opt.serve.shard.seed = 1;
    opt.serve.numShards = shards;
    opt.serve.queueCapacity = 128;
    opt.serve.maxBatch = 8;
    opt.capacityKeys = capacity;
    opt.seed = 1;
    const std::uint64_t record = 6 + opt.maxKeyBytes + opt.maxValueBytes;
    const std::uint64_t bps = (record + blockBytes - 1) / blockBytes;
    const std::uint64_t slots = capacity + capacity / 4 + 4;
    opt.serve.shard.capacityBytes = slots * bps * blockBytes;
    app::ObliviousKVStore store(opt);

    for (unsigned c = 0; c < clients; ++c) {
        app::KvWorkloadGenerator gen(specs[c], 100 + c);
        for (const app::KvOp &op : gen.preload())
            store.put(op.key, op.value);
    }
    store.drain();

    std::vector<std::vector<double>> latencies(clients);
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> ts;
    for (unsigned c = 0; c < clients; ++c) {
        ts.emplace_back([&, c] {
            app::KvWorkloadGenerator gen(specs[c], 200 + c);
            auto &lat = latencies[c];
            lat.reserve(ops_per_client);
            for (std::uint64_t i = 0; i < ops_per_client; ++i) {
                const app::KvOp op = gen.next();
                const auto s = std::chrono::steady_clock::now();
                if (op.put)
                    store.put(op.key, op.value);
                else
                    (void)store.get(op.key);
                const auto e = std::chrono::steady_clock::now();
                lat.push_back(
                    std::chrono::duration<double, std::micro>(e - s)
                        .count());
            }
        });
    }
    for (auto &t : ts)
        t.join();
    store.drain();
    const auto t1 = std::chrono::steady_clock::now();

    std::vector<double> all;
    for (auto &l : latencies)
        all.insert(all.end(), l.begin(), l.end());

    const util::MetricsRegistry m = store.metrics();
    Point p;
    p.ops = ops_per_client * clients;
    p.wallMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    p.opsPerSec =
        p.wallMs > 0 ? static_cast<double>(p.ops) / (p.wallMs / 1e3)
                     : 0.0;
    p.p50Us = percentile(all, 0.50);
    p.p99Us = percentile(all, 0.99);
    // Blocks the measured ops moved on the store<->service channel
    // (preload excluded: counters snapshot minus preload cost would
    // need a second snapshot, so count from op arithmetic -- every op
    // is exactly 2 * blocksPerSlot() blocks).
    p.channelBytes = p.ops * 2 * store.blocksPerSlot() * blockBytes;

    const std::string name =
        std::string(shape.name) + "_shards" + std::to_string(shards);
    report.add(name, m);
    report.set(name, "ops_per_sec", p.opsPerSec);
    report.set(name, "wall_ms", p.wallMs);
    report.set(name, "latency_p50_us", p.p50Us);
    report.set(name, "latency_p99_us", p.p99Us);
    report.setCount(name, "channel_bytes", p.channelBytes);
    report.setCount(name, "ops", p.ops);
    report.setCount(name, "clients", clients);
    report.setCount(name, "shards", shards);
    report.setCount(name, "aes_impl_id",
                    static_cast<std::uint64_t>(
                        static_cast<int>(crypto::activeAesImpl())));
    return p;
}

} // namespace

int
main()
{
    bench::header("oblivious KV store throughput",
                  "application layer over the sharded service "
                  "(Pyramid-style KV-over-ORAM); ROADMAP app lever");
    const std::uint64_t ops = envOr("SDIMM_KV_BENCH_OPS", 400);
    const unsigned clients =
        static_cast<unsigned>(envOr("SDIMM_KV_BENCH_CLIENTS", 4));
    std::printf("hardware concurrency: %u threads; %llu ops per "
                "client, %u clients\n\n",
                std::thread::hardware_concurrency(),
                static_cast<unsigned long long>(ops), clients);

    bench::JsonReport report("kv_throughput");
    std::printf("%-10s %-7s %12s %10s %10s %10s %14s\n", "workload",
                "shards", "ops/sec", "p50 us", "p99 us", "wall ms",
                "channel bytes");
    for (const Shape &shape : shapes()) {
        for (unsigned shards : {2u, 4u}) {
            const Point p =
                runPoint(shape, shards, clients, ops, report);
            std::printf("%-10s %-7u %12.0f %10.0f %10.0f %10.1f %14llu\n",
                        shape.name, shards, p.opsPerSec, p.p50Us,
                        p.p99Us, p.wallMs,
                        static_cast<unsigned long long>(
                            p.channelBytes));
        }
    }
    std::printf("\n(every op moves the same 2*blocksPerSlot blocks -- "
                "hit or miss, get or put;\n that flatness IS the "
                "obliviousness invariant, tested in tests/app)\n");
    return 0;
}
