/**
 * @file
 * The Section III-E motivation, quantified: raising the channel
 * frequency buys ORAM bandwidth but raises background power, which is
 * exactly the trade-off the low-power rank layout then attacks.
 * Sweeps DDR3-1066 / DDR3-1600 / DDR4-2400 for the Freecursive
 * baseline and INDEP-2, with and without the low-power layout.
 */

#include <cstdio>

#include "bench/common.hh"

using namespace secdimm;
using namespace secdimm::core;

namespace
{

struct Preset
{
    const char *name;
    dram::TimingParams timing;
};

} // namespace

int
main()
{
    bench::header("Channel frequency vs power (Section III-E)",
                  "Section III-E motivation paragraph");

    const Preset presets[] = {
        {"DDR3-1066", dram::ddr3_1066()},
        {"DDR3-1600", dram::ddr3_1600()},
        {"DDR4-2400", dram::ddr4_2400()},
    };
    const auto lens = bench::lengths(500);
    const auto &wl = *trace::findProfile("milc");
    bench::JsonReport report("frequency");

    std::printf("%-10s %-14s %12s %12s %12s\n", "device", "design",
                "time (ns)", "energy (uJ)", "bkgd (uJ)");
    for (const Preset &p : presets) {
        for (bool sdimm : {false, true}) {
            for (bool low_power : {false, true}) {
                if (!sdimm && low_power)
                    continue; // Baseline has no low-power variant.
                SystemConfig cfg = makeConfig(
                    sdimm ? DesignPoint::Indep2
                          : DesignPoint::Freecursive,
                    24, 7);
                cfg.timing = p.timing;
                cfg.lowPower = low_power;
                const SimResult r = runWorkload(cfg, wl, lens, 1);
                const double ns =
                    p.timing.ns(r.core.cycles);
                char design[32];
                std::snprintf(design, sizeof(design), "%s%s",
                              sdimm ? "INDEP-2" : "Freecursive",
                              sdimm ? (low_power ? " +LP" : " -LP")
                                    : "");
                std::printf("%-10s %-14s %12.0f %12.1f %12.1f\n",
                            p.name, design, ns,
                            r.energy.totalNj() / 1000.0,
                            r.energy.backgroundNj / 1000.0);

                std::string point(p.name);
                point += sdimm ? ".indep2" : ".freecursive";
                if (low_power)
                    point += ".lp";
                report.add(point, r.metrics);
                report.set(point, "time_ns", ns);
            }
        }
    }
    std::printf("\nfaster channels shorten runs but raise background "
                "power per cycle;\nthe low-power layout recovers the "
                "background term (Section III-E).\n");
    return 0;
}
