/**
 * @file
 * Regenerates Figure 8: normalized execution time of the
 * single-channel SDIMM designs (INDEP-2, SPLIT-2) relative to
 * Freecursive ORAM, with the 64 KB ORAM cache (7 levels).  Set
 * SDIMM_BENCH_NOCACHE=1 to also run the no-ORAM-cache variant the
 * paper reports (~35.7% improvement).
 */

#include <cstdio>
#include <cstdlib>

#include "bench/common.hh"

using namespace secdimm;
using namespace secdimm::core;

namespace
{

void
runVariant(unsigned cached, bench::JsonReport &report)
{
    const std::string tag =
        cached ? ".cached" + std::to_string(cached) : ".nocache";
    const auto lens = bench::lengths();
    std::printf("\n--- %s (cached levels = %u) ---\n",
                cached ? "with ORAM cache" : "no ORAM cache", cached);
    std::printf("%-12s %12s %12s %12s\n", "workload", "Freecursive",
                "INDEP-2", "SPLIT-2");

    std::vector<double> n_ind, n_split;
    for (const auto &wl : bench::workloads()) {
        const SimResult fc = runWorkload(
            makeConfig(DesignPoint::Freecursive, 24, cached), wl, lens,
            1);
        const SimResult ind = runWorkload(
            makeConfig(DesignPoint::Indep2, 24, cached), wl, lens, 1);
        const SimResult sp = runWorkload(
            makeConfig(DesignPoint::Split2, 24, cached), wl, lens, 1);

        const double ni = static_cast<double>(ind.core.cycles) /
                          static_cast<double>(fc.core.cycles);
        const double ns = static_cast<double>(sp.core.cycles) /
                          static_cast<double>(fc.core.cycles);
        n_ind.push_back(ni);
        n_split.push_back(ns);
        std::printf("%-12s %12.3f %12.3f %12.3f\n", wl.name.c_str(),
                    1.0, ni, ns);

        report.add("freecursive" + tag, fc.metrics);
        report.add("indep2" + tag, ind.metrics);
        report.add("split2" + tag, sp.metrics);
        report.set("indep2" + tag, "normalized_time." + wl.name, ni);
        report.set("split2" + tag, "normalized_time." + wl.name, ns);
    }
    std::printf("%-12s %12.3f %12.3f %12.3f\n", "geomean", 1.0,
                bench::geomean(n_ind), bench::geomean(n_split));
    report.set("indep2" + tag, "normalized_time.geomean",
               bench::geomean(n_ind));
    report.set("split2" + tag, "normalized_time.geomean",
               bench::geomean(n_split));
    if (cached) {
        std::printf("%-12s %12s %12s %12s  (reductions 32%% / 33.5%%)\n",
                    "paper", "1.000", "0.680", "0.665");
    } else {
        std::printf("%-12s %12s %12s %12s  (reduction ~35.7%%)\n",
                    "paper", "1.000", "~0.643", "~0.643");
    }
}

} // namespace

int
main()
{
    bench::header(
        "Figure 8 -- single-channel SDIMM designs, normalized time",
        "Fig 8 (paper: INDEP-2 -32%, SPLIT-2 -33.5% vs Freecursive)");

    bench::JsonReport report("fig8_single_channel");
    runVariant(7, report);
    if (std::getenv("SDIMM_BENCH_NOCACHE"))
        runVariant(0, report);
    return 0;
}
