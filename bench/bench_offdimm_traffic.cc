/**
 * @file
 * Regenerates the Section IV-B off-DIMM traffic comparison: the
 * number of CPU-channel bursts each SDIMM design needs, as a fraction
 * of the Freecursive baseline's.  Paper: INDEP-2 4.2%, INDEP-4 7.8%
 * (with ORAM caching; <3.2% without), Split ~12%.
 */

#include <cstdio>

#include "bench/common.hh"

using namespace secdimm;
using namespace secdimm::core;

namespace
{

double
trafficRatio(DesignPoint design, DesignPoint baseline, unsigned cached,
             const trace::WorkloadProfile &wl,
             const core::SimLengths &lens, bench::JsonReport &report,
             const std::string &point)
{
    SystemConfig base_cfg = makeConfig(baseline, 24, cached);
    SystemConfig cfg = makeConfig(design, 24, cached);
    base_cfg.cpuChannels = cfg.cpuChannels;
    base_cfg.cpuGeom.channels = cfg.cpuChannels;
    const SimResult base = runWorkload(base_cfg, wl, lens, 1);
    const SimResult r = runWorkload(cfg, wl, lens, 1);
    report.add(point, r.metrics);
    return static_cast<double>(r.offDimmLines) /
           static_cast<double>(base.offDimmLines);
}

} // namespace

int
main()
{
    bench::header(
        "Off-DIMM traffic -- CPU-channel bursts vs Freecursive",
        "Section IV-B text (paper: INDEP-2 4.2%, INDEP-4 7.8%, "
        "Split ~12%; <3.2% without ORAM cache)");

    const auto lens = bench::lengths(500);
    bench::JsonReport report("offdimm_traffic");

    struct Row
    {
        DesignPoint design;
        const char *paper;
    };
    const Row rows[] = {
        {DesignPoint::Indep2, "4.2%"},
        {DesignPoint::Indep4, "7.8%"},
        {DesignPoint::Split2, "~12%"},
        {DesignPoint::Split4, "~12%"},
        {DesignPoint::IndepSplit, "(n/a)"},
    };

    std::printf("%-12s %14s %14s %10s\n", "design", "cached(7)",
                "no-cache", "paper");
    for (const Row &row : rows) {
        const std::string point = designName(row.design);
        std::vector<double> cached_r, nocache_r;
        for (const char *n : {"mcf", "libquantum", "milc"}) {
            const auto &wl = *trace::findProfile(n);
            cached_r.push_back(
                trafficRatio(row.design, DesignPoint::Freecursive, 7,
                             wl, lens, report, point + ".cached7"));
            nocache_r.push_back(
                trafficRatio(row.design, DesignPoint::Freecursive, 0,
                             wl, lens, report, point + ".nocache"));
        }
        report.set(point + ".cached7", "traffic_ratio.mean",
                   bench::mean(cached_r));
        report.set(point + ".nocache", "traffic_ratio.mean",
                   bench::mean(nocache_r));
        std::printf("%-12s %13.1f%% %13.1f%% %10s\n",
                    designName(row.design),
                    100.0 * bench::mean(cached_r),
                    100.0 * bench::mean(nocache_r), row.paper);
    }
    return 0;
}
