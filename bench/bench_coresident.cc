/**
 * @file
 * Extension study the paper motivates but does not evaluate
 * (Section III-A advantage 3 and Section IV-B: "the low ORAM-specific
 * traffic on the main DDR bus can lead to lower latency for memory
 * accesses by other non-secure threads (not evaluated in this
 * study)"): the latency a co-resident non-secure VM sees when it
 * shares the memory system with an ORAM-protected workload.
 *
 * Scenario A: the VM shares the CPU channel with Freecursive ORAM --
 * its accesses compete with the 2(Z+1)L path lines per accessORAM.
 * Scenario B: the VM shares the channel with SDIMM protocol traffic
 * only (INDEP-2) -- path shuffles stay on the DIMMs; the VM's own
 * LRDIMM handles its accesses, delayed only when the bus is busy with
 * sealed SDIMM messages.
 */

#include <cstdio>

#include "bench/common.hh"
#include "dram/channel.hh"
#include "oram/freecursive_backend.hh"
#include "sdimm/independent_backend.hh"
#include "util/rng.hh"

using namespace secdimm;
using namespace secdimm::core;

namespace
{

/** Mean inter-arrival (cycles) of the co-resident VM's accesses. */
constexpr double vmMeanGap = 200.0;

/** Drive an ORAM-load generator: returns per-VM-access latencies. */
struct VmStats
{
    double meanLatency = 0;
    std::uint64_t accesses = 0;
};

VmStats
scenarioFreecursive(unsigned oram_misses)
{
    SystemConfig cfg = makeConfig(DesignPoint::Freecursive, 24, 7);
    oram::FreecursiveBackend backend(cfg.globalTree(), cfg.recursion,
                                     cfg.timing, cfg.cpuGeom, 1);

    std::uint64_t pending_oram = 0;
    backend.setCompletionCallback(
        [&](std::uint64_t, Tick) { --pending_oram; });

    double vm_lat_sum = 0;
    std::uint64_t vm_done = 0;
    backend.setPlainCompletionCallback(
        [&](std::uint64_t issued_at, Tick done) {
            vm_lat_sum += static_cast<double>(done - issued_at);
            ++vm_done;
        });

    Rng rng(7);
    Tick now = 0;
    Tick next_vm = 100;
    for (unsigned i = 0; i < oram_misses; ++i) {
        while (!backend.canAccept()) {
            const Tick next = backend.nextEventAt();
            backend.advanceTo(next);
            now = std::max(now, next);
            // Inject VM traffic as time passes.
            while (next_vm <= now) {
                if (backend.canAcceptPlain(next_vm * 64, false)) {
                    backend.accessPlain(next_vm, next_vm * 4096, false,
                                        next_vm);
                }
                next_vm += rng.nextGeometric(vmMeanGap);
            }
        }
        ++pending_oram;
        backend.access(i + 1, rng.next() % (1ULL << 30), false, now);
    }
    while (!backend.idle()) {
        const Tick next = backend.nextEventAt();
        if (next == tickNever)
            break;
        backend.advanceTo(next);
        now = std::max(now, next);
        while (next_vm <= now) {
            if (backend.canAcceptPlain(next_vm * 64, false))
                backend.accessPlain(next_vm, next_vm * 4096, false,
                                    next_vm);
            next_vm += rng.nextGeometric(vmMeanGap);
        }
    }
    return VmStats{vm_done ? vm_lat_sum / vm_done : 0, vm_done};
}

VmStats
scenarioSdimm(unsigned oram_misses)
{
    SystemConfig cfg = makeConfig(DesignPoint::Indep2, 24, 7);
    sdimm::SdimmTimingConfig scfg;
    scfg.perSdimm = cfg.globalTree();
    scfg.perSdimm.levels -= 1;
    scfg.perSdimm.cachedLevels -= 1;
    scfg.recursion = cfg.recursion;
    scfg.numSdimms = 2;
    scfg.cpuChannels = 1;
    scfg.timing = cfg.timing;
    scfg.sdimmGeom = cfg.sdimmGeom;
    sdimm::IndependentBackend backend(scfg, 1);

    std::uint64_t pending_oram = 0;
    backend.setCompletionCallback(
        [&](std::uint64_t, Tick) { --pending_oram; });

    // The VM's own (co-resident) LRDIMM on the same channel.
    dram::DramChannel vm_dimm("vm", cfg.timing, cfg.sdimmGeom,
                              dram::MapPolicy::RowRankBankCol);
    double vm_lat_sum = 0;
    std::uint64_t vm_done = 0;
    vm_dimm.setCompletionCallback(
        [&](const dram::DramCompletion &c) {
            vm_lat_sum += static_cast<double>(c.doneAt - c.enqueuedAt);
            ++vm_done;
        });

    Rng rng(7);
    Tick now = 0;
    Tick next_vm = 100;
    auto inject_vm = [&](Tick upto) {
        while (next_vm <= upto) {
            // The access waits for the shared bus if SDIMM protocol
            // traffic occupies it.
            const Tick start =
                std::max<Tick>(next_vm, backend.bus(0).busFreeAt());
            if (vm_dimm.canEnqueue(false)) {
                vm_dimm.enqueue(next_vm, (next_vm * 64) %
                                             vm_dimm.addressMap()
                                                 .blockCount(),
                                false, start);
            }
            next_vm += rng.nextGeometric(vmMeanGap);
        }
    };

    for (unsigned i = 0; i < oram_misses; ++i) {
        while (!backend.canAccept()) {
            const Tick next =
                std::min(backend.nextEventAt(), vm_dimm.nextEventAt());
            backend.advanceTo(next);
            vm_dimm.advanceTo(next);
            now = std::max(now, next);
            inject_vm(now);
        }
        ++pending_oram;
        backend.access(i + 1, rng.next() % (1ULL << 30), false, now);
    }
    while (!backend.idle() || !vm_dimm.idle()) {
        Tick next = std::min(backend.nextEventAt(),
                             vm_dimm.nextEventAt());
        if (next == tickNever)
            break;
        backend.advanceTo(next);
        vm_dimm.advanceTo(next);
        now = std::max(now, next);
        inject_vm(now);
    }
    return VmStats{vm_done ? vm_lat_sum / vm_done : 0, vm_done};
}

} // namespace

int
main()
{
    bench::header(
        "Co-resident non-secure VM latency (extension study)",
        "Section III-A adv. 3 / IV-B text ('not evaluated in this "
        "study')");

    const unsigned misses = 400;
    const VmStats fc = scenarioFreecursive(misses);
    const VmStats sd = scenarioSdimm(misses);

    std::printf("VM accesses injected every ~%.0f cycles while %u ORAM "
                "misses are serviced:\n\n",
                vmMeanGap, misses);
    std::printf("%-34s %12s %10s\n", "scenario", "VM accesses",
                "mean lat");
    std::printf("%-34s %12llu %9.0f\n",
                "shared channel with Freecursive",
                static_cast<unsigned long long>(fc.accesses),
                fc.meanLatency);
    std::printf("%-34s %12llu %9.0f\n",
                "shared channel with SDIMM (INDEP-2)",
                static_cast<unsigned long long>(sd.accesses),
                sd.meanLatency);
    std::printf("\nnon-secure latency improvement: %.1fx\n",
                fc.meanLatency / sd.meanLatency);

    bench::JsonReport report("coresident");
    report.setCount("freecursive.shared", "vm_accesses", fc.accesses);
    report.set("freecursive.shared", "vm_mean_latency",
               fc.meanLatency);
    report.setCount("indep2.shared", "vm_accesses", sd.accesses);
    report.set("indep2.shared", "vm_mean_latency", sd.meanLatency);
    report.set("indep2.shared", "vm_latency_improvement",
               fc.meanLatency / sd.meanLatency);
    return 0;
}
