/**
 * @file
 * Scaling of the sharded oblivious memory service (src/serve): total
 * accesses/sec at fixed TOTAL capacity for 1/2/4/8 shards, with and
 * without per-shard request batching, under a multi-client mixed
 * read/write stress workload.  This is the scaling-trajectory number
 * the ROADMAP's "sharding/batching" lever is judged by.
 *
 * Two effects compose:
 *  - parallelism: N worker threads run N independent ORAMs (needs
 *    cores to show up -- the printed table records the machine's
 *    hardware concurrency for context);
 *  - tree depth: at fixed total capacity each shard's tree is
 *    log2(N) levels shallower, so even single-core machines see some
 *    speedup per access.
 *
 * Scale with SDIMM_SHARD_BENCH_OPS (default 2000 accesses per point)
 * and SDIMM_SHARD_BENCH_CLIENTS (default 8).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <thread>
#include <vector>

#include "bench/common.hh"
#include "crypto/cpu_features.hh"
#include "serve/sharded_memory.hh"
#include "util/rng.hh"

using namespace secdimm;
using serve::ShardedSecureMemory;

namespace
{

std::uint64_t
envOr(const char *name, std::uint64_t fallback)
{
    if (const char *v = std::getenv(name))
        return std::strtoull(v, nullptr, 0);
    return fallback;
}

struct Point
{
    unsigned shards;
    unsigned batch;
    double accessesPerSec = 0.0;
    double wallMs = 0.0;
};

/** One client: a window of async requests over its own block stripe. */
void
clientLoop(ShardedSecureMemory &mem, unsigned client,
           std::uint64_t ops)
{
    Rng rng(0xbe9c4 + client);
    const std::uint64_t cap = mem.capacityBlocks();
    const std::uint64_t stripe = cap / 8 ? cap / 8 : 1;
    const Addr base = (client % 8) * stripe;
    std::vector<std::future<void>> writes;
    std::vector<std::future<BlockData>> reads;
    for (std::uint64_t i = 0; i < ops; ++i) {
        const Addr block = base + rng.nextBelow(stripe);
        if (rng.nextBool(0.5)) {
            BlockData d{};
            d[0] = static_cast<std::uint8_t>(i);
            writes.push_back(mem.submitWrite(block, d));
        } else {
            reads.push_back(mem.submitRead(block));
        }
        // Cap the in-flight window so futures don't pile up unboundedly.
        if (writes.size() + reads.size() >= 32) {
            for (auto &f : writes)
                f.get();
            for (auto &f : reads)
                f.get();
            writes.clear();
            reads.clear();
        }
    }
    for (auto &f : writes)
        f.get();
    for (auto &f : reads)
        f.get();
}

Point
runPoint(unsigned shards, unsigned batch, std::uint64_t total_ops,
         unsigned clients, bench::JsonReport &report)
{
    ShardedSecureMemory::Options opt;
    opt.shard.protocol = core::SecureMemorySystem::Protocol::PathOram;
    opt.shard.capacityBytes = 1 << 20; // Fixed TOTAL capacity.
    opt.shard.seed = 1;
    opt.numShards = shards;
    opt.queueCapacity = 64;
    opt.maxBatch = batch;
    ShardedSecureMemory mem(opt);

    const std::uint64_t per_client = total_ops / clients;
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> ts;
    ts.reserve(clients);
    for (unsigned c = 0; c < clients; ++c)
        ts.emplace_back(
            [&mem, c, per_client] { clientLoop(mem, c, per_client); });
    for (auto &t : ts)
        t.join();
    mem.drain();
    const auto t1 = std::chrono::steady_clock::now();

    Point p;
    p.shards = shards;
    p.batch = batch;
    p.wallMs = std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double secs = p.wallMs / 1000.0;
    const double done = static_cast<double>(per_client * clients);
    p.accessesPerSec = secs > 0 ? done / secs : 0.0;

    const std::string name = "shards" + std::to_string(shards) +
                             "_batch" + std::to_string(batch);
    report.add(name, mem.metrics());
    report.set(name, "accesses_per_sec", p.accessesPerSec);
    report.set(name, "wall_ms", p.wallMs);
    report.setCount(name, "clients", clients);
    report.setCount(name, "ops", per_client * clients);
    report.setCount(name, "aes_impl_id",
                    static_cast<std::uint64_t>(
                        static_cast<int>(crypto::activeAesImpl())));
    return p;
}

} // namespace

int
main()
{
    bench::header("sharded service throughput scaling",
                  "ROADMAP scale lever (sharding/batching the "
                  "functional facade); Palermo-style ORAM parallelism");
    const std::uint64_t ops = envOr("SDIMM_SHARD_BENCH_OPS", 2000);
    const unsigned clients = static_cast<unsigned>(
        envOr("SDIMM_SHARD_BENCH_CLIENTS", 8));
    std::printf("hardware concurrency: %u threads; %llu accesses per "
                "point, %u clients\n\n",
                std::thread::hardware_concurrency(),
                static_cast<unsigned long long>(ops), clients);

    bench::JsonReport report("sharded_throughput");
    std::printf("%-8s %-7s %14s %10s %12s\n", "shards", "batch",
                "accesses/sec", "wall ms", "vs 1 shard");
    double base_nobatch = 0.0;
    for (unsigned batch : {1u, 8u}) {
        double base = 0.0;
        for (unsigned shards : {1u, 2u, 4u, 8u}) {
            const Point p = runPoint(shards, batch, ops, clients, report);
            if (shards == 1)
                base = p.accessesPerSec;
            if (shards == 1 && batch == 1)
                base_nobatch = p.accessesPerSec;
            const std::string name = "shards" + std::to_string(shards) +
                                     "_batch" + std::to_string(batch);
            report.set(name, "scaling_vs_1shard",
                       base > 0 ? p.accessesPerSec / base : 0.0);
            std::printf("%-8u %-7u %14.0f %10.1f %11.2fx\n", shards,
                        batch, p.accessesPerSec, p.wallMs,
                        base > 0 ? p.accessesPerSec / base : 0.0);
        }
        std::printf("\n");
    }
    if (base_nobatch > 0) {
        std::printf("(batching column compares against the same shard "
                    "count without batching;\n aggregate scaling needs "
                    "cores -- see hardware concurrency above)\n");
    }
    return 0;
}
