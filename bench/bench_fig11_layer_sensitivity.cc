/**
 * @file
 * Regenerates Figure 11: average normalized execution time of the
 * best SDIMM designs (SPLIT-2 for single channel, INDEP-SPLIT for
 * double channel) as the ORAM tree depth sweeps L20..L28.  Paper:
 * improvements grow with layer count, ranging 33-35% (1ch) and
 * 47-49% (2ch).
 *
 * Uses a 4-workload subset by default to keep the sweep quick; set
 * SDIMM_BENCH_ALL_WORKLOADS=1 for the full ten.
 */

#include <cstdio>
#include <cstdlib>

#include "bench/common.hh"

using namespace secdimm;
using namespace secdimm::core;

int
main()
{
    bench::header(
        "Figure 11 -- sensitivity to ORAM layer count",
        "Fig 11 (paper: improvement grows with layers; 33-35% at 1ch, "
        "47-49% at 2ch)");

    const auto lens = bench::lengths(600);
    std::vector<trace::WorkloadProfile> wls;
    if (std::getenv("SDIMM_BENCH_ALL_WORKLOADS")) {
        wls = bench::workloads();
    } else {
        for (const char *n : {"mcf", "omnetpp", "GemsFDTD", "lbm"})
            wls.push_back(*trace::findProfile(n));
    }

    bench::JsonReport report("fig11_layer_sensitivity");
    std::printf("%-6s %18s %18s\n", "layers", "SPLIT-2 / FC (1ch)",
                "INDEP-SPLIT / FC (2ch)");
    for (unsigned levels : {20u, 22u, 24u, 26u, 28u}) {
        const std::string tag = ".L" + std::to_string(levels);
        std::vector<double> n1, n2;
        for (const auto &wl : wls) {
            const SimResult fc1 = runWorkload(
                makeConfig(DesignPoint::Freecursive, levels, 7), wl,
                lens, 1);
            const SimResult sp = runWorkload(
                makeConfig(DesignPoint::Split2, levels, 7), wl, lens,
                1);
            n1.push_back(static_cast<double>(sp.core.cycles) /
                         fc1.core.cycles);

            SystemConfig fc2_cfg =
                makeConfig(DesignPoint::Freecursive, levels, 7);
            fc2_cfg.cpuChannels = 2;
            fc2_cfg.cpuGeom.channels = 2;
            const SimResult fc2 = runWorkload(fc2_cfg, wl, lens, 1);
            const SimResult is = runWorkload(
                makeConfig(DesignPoint::IndepSplit, levels, 7), wl,
                lens, 1);
            n2.push_back(static_cast<double>(is.core.cycles) /
                         fc2.core.cycles);

            report.add("freecursive.1ch" + tag, fc1.metrics);
            report.add("split2" + tag, sp.metrics);
            report.add("freecursive.2ch" + tag, fc2.metrics);
            report.add("indepsplit" + tag, is.metrics);
        }
        report.set("split2" + tag, "normalized_time.geomean",
                   bench::geomean(n1));
        report.set("indepsplit" + tag, "normalized_time.geomean",
                   bench::geomean(n2));
        std::printf("L%-5u %18.3f %18.3f\n", levels,
                    bench::geomean(n1), bench::geomean(n2));
    }
    std::printf("%-6s %18s %18s\n", "paper", "0.65..0.67",
                "0.51..0.53");
    return 0;
}
