/**
 * @file
 * Shared scaffolding for the figure/table benches: workload list,
 * simulation-length env knobs, and table formatting.  Every bench
 * prints the paper's expected values next to the measured ones so
 * EXPERIMENTS.md can be regenerated from bench output.
 */

#ifndef SECUREDIMM_BENCH_COMMON_HH
#define SECUREDIMM_BENCH_COMMON_HH

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/simulator.hh"
#include "trace/workload.hh"
#include "util/logging.hh"

namespace secdimm::bench
{

/** Simulation lengths honoring SDIMM_BENCH_* env overrides. */
inline core::SimLengths
lengths(std::uint64_t measure = 1000, std::uint64_t warmup = 20000)
{
    return core::benchLengths(measure, warmup);
}

/** The paper's ten workloads. */
inline const std::vector<trace::WorkloadProfile> &
workloads()
{
    return trace::spec2006Profiles();
}

/** Geometric mean (the paper reports averages over benchmarks). */
inline double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs)
        log_sum += std::log(x);
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

/** Arithmetic mean. */
inline double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

/** Print the standard bench header. */
inline void
header(const char *title, const char *paper_ref)
{
    std::printf("==================================================="
                "=========================\n");
    std::printf("%s\n", title);
    std::printf("reproduces: %s\n", paper_ref);
    const auto l = lengths();
    std::printf("simulation: %llu warm-up + %llu measured LLC-miss "
                "records per workload\n",
                static_cast<unsigned long long>(l.warmupRecords),
                static_cast<unsigned long long>(l.measureRecords));
    std::printf("(scale with SDIMM_BENCH_ACCESSES / "
                "SDIMM_BENCH_WARMUP)\n");
    std::printf("==================================================="
                "=========================\n");
}

} // namespace secdimm::bench

#endif // SECUREDIMM_BENCH_COMMON_HH
