/**
 * @file
 * Shared scaffolding for the figure/table benches: workload list,
 * simulation-length env knobs, and table formatting.  Every bench
 * prints the paper's expected values next to the measured ones so
 * EXPERIMENTS.md can be regenerated from bench output.
 */

#ifndef SECUREDIMM_BENCH_COMMON_HH
#define SECUREDIMM_BENCH_COMMON_HH

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "core/simulator.hh"
#include "trace/workload.hh"
#include "util/logging.hh"
#include "util/metrics.hh"

namespace secdimm::bench
{

/** Simulation lengths honoring SDIMM_BENCH_* env overrides. */
inline core::SimLengths
lengths(std::uint64_t measure = 1000, std::uint64_t warmup = 20000)
{
    return core::benchLengths(measure, warmup);
}

/** The paper's ten workloads. */
inline const std::vector<trace::WorkloadProfile> &
workloads()
{
    return trace::spec2006Profiles();
}

/** Geometric mean (the paper reports averages over benchmarks). */
inline double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs)
        log_sum += std::log(x);
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

/** Arithmetic mean. */
inline double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

/** Print the standard bench header. */
inline void
header(const char *title, const char *paper_ref)
{
    std::printf("==================================================="
                "=========================\n");
    std::printf("%s\n", title);
    std::printf("reproduces: %s\n", paper_ref);
    const auto l = lengths();
    std::printf("simulation: %llu warm-up + %llu measured LLC-miss "
                "records per workload\n",
                static_cast<unsigned long long>(l.warmupRecords),
                static_cast<unsigned long long>(l.measureRecords));
    std::printf("(scale with SDIMM_BENCH_ACCESSES / "
                "SDIMM_BENCH_WARMUP)\n");
    std::printf("==================================================="
                "=========================\n");
}

/**
 * Machine-readable bench output: accumulates one MetricsRegistry per
 * design point and writes them as BENCH_<name>.json next to the
 * printed table (docs/METRICS.md documents the schema).  The file
 * lands in the current directory, or in $SDIMM_BENCH_JSON_DIR when
 * set.  Writing happens in the destructor, so a bench only has to
 * construct one of these and feed it.
 */
class JsonReport
{
  public:
    explicit JsonReport(std::string name) : name_(std::move(name)) {}

    ~JsonReport()
    {
        if (!written_)
            write();
    }

    JsonReport(const JsonReport &) = delete;
    JsonReport &operator=(const JsonReport &) = delete;

    /** Merge a run's metrics snapshot into design point @p point. */
    void
    add(const std::string &point, const util::MetricsRegistry &m)
    {
        points_[point].merge(m);
    }

    /** Record a bench-level scalar under "bench.<metric>". */
    void
    set(const std::string &point, const std::string &metric, double v)
    {
        points_[point].setGauge("bench." + metric, v);
    }

    /** Counter variant of set() for integer-valued results. */
    void
    setCount(const std::string &point, const std::string &metric,
             std::uint64_t v)
    {
        points_[point].setCounter("bench." + metric, v);
    }

    /** Direct access to a point's registry (get-or-create). */
    util::MetricsRegistry &
    point(const std::string &point)
    {
        return points_[point];
    }

    /** Write the snapshot now; returns the path (empty on failure). */
    std::string
    write()
    {
        written_ = true;
        std::string dir = ".";
        if (const char *d = std::getenv("SDIMM_BENCH_JSON_DIR"))
            dir = d;
        const std::string path = dir + "/BENCH_" + name_ + ".json";

        const auto l = lengths();
        std::string out = "{\n";
        out += "  \"bench\": " + util::jsonQuote(name_) + ",\n";
        out += "  \"schema\": \"secdimm-bench-v1\",\n";
        out += "  \"lengths\": {\"warmup_records\": " +
               std::to_string(l.warmupRecords) +
               ", \"measure_records\": " +
               std::to_string(l.measureRecords) + "},\n";
        out += "  \"points\": {";
        bool first = true;
        for (const auto &[name, reg] : points_) {
            if (!first)
                out += ',';
            first = false;
            out += "\n    " + util::jsonQuote(name) + ": ";
            out += reg.toJson(4);
        }
        if (!first)
            out += "\n  ";
        out += "}\n}\n";

        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "JsonReport: cannot write %s\n",
                         path.c_str());
            return {};
        }
        std::fwrite(out.data(), 1, out.size(), f);
        std::fclose(f);
        std::printf("\nmetrics snapshot: %s\n", path.c_str());
        return path;
    }

  private:
    std::string name_;
    bool written_ = false;
    std::map<std::string, util::MetricsRegistry> points_;
};

} // namespace secdimm::bench

#endif // SECUREDIMM_BENCH_COMMON_HH
