/**
 * @file
 * Regenerates Figure 13: (a) the probability the transfer queue's
 * random walk exceeds a buffer bound within s steps, for buffers of
 * 16/64/256/1024 entries; (b) the M/M/1/K overflow probability as a
 * function of the drain probability p and queue size.
 */

#include <cstdio>

#include "analytic/mm1k.hh"
#include "analytic/random_walk.hh"
#include "bench/common.hh"

using namespace secdimm;
using namespace secdimm::analytic;

int
main()
{
    bench::header("Figure 13 -- transfer queue overflow models",
                  "Fig 13a/13b (Section IV-C)");

    bench::JsonReport report("fig13_overflow");

    std::printf("--- Figure 13a: P(walk exceeds bound within s steps) "
                "---\n");
    std::printf("%-9s %8s %8s %8s %8s\n", "steps", "16", "64", "256",
                "1024");
    for (std::uint64_t steps :
         {25000ULL, 50000ULL, 100000ULL, 200000ULL, 400000ULL,
          800000ULL}) {
        std::printf("%-9llu", static_cast<unsigned long long>(steps));
        for (unsigned bound : {16u, 64u, 256u, 1024u}) {
            const double p = overflowProbability(steps, bound);
            std::printf(" %8.4f", p);
            report.set("walk",
                       "p_overflow.s" + std::to_string(steps) + ".b" +
                           std::to_string(bound),
                       p);
        }
        std::printf("\n");
    }
    std::printf("paper anchors: 16@100K ~0.97; at 800K: 64 ~0.91, "
                "256 ~0.70, 1024 ~0.10\n");

    std::printf("\n--- Figure 13b: M/M/1/K overflow probability "
                "(rho = 0.25/(0.25+p)) ---\n");
    std::printf("%-7s", "p");
    for (unsigned k : {4u, 8u, 16u, 32u, 64u, 128u})
        std::printf(" %9u", k);
    std::printf("\n");
    for (double p : {0.01, 0.05, 0.1, 0.25, 0.5, 1.0}) {
        std::printf("%-7.2f", p);
        for (unsigned k : {4u, 8u, 16u, 32u, 64u, 128u}) {
            const double ov = transferQueueOverflow(p, k);
            std::printf(" %9.2e", ov);
            char name[64];
            std::snprintf(name, sizeof(name),
                          "p_overflow.p%03d.k%u",
                          static_cast<int>(100 * p + 0.5), k);
            report.set("mm1k", name, ov);
        }
        std::printf("\n");
    }
    std::printf("\nconclusion (paper): even a small queue has a very "
                "small overflow rate\nwith occasional drain "
                "accessORAMs; the default p=0.1 with 128 slots gives "
                "%.1e.\n",
                transferQueueOverflow(0.1, 128));

    // Cross-check the closed form against Monte Carlo.
    const double sim = simulateOverflowProbability(50000, 64, 2000, 7);
    const double exact = overflowProbability(50000, 64);
    std::printf("\nself-check: walk model %.4f vs simulation %.4f\n",
                exact, sim);
    report.set("walk", "selfcheck.model", exact);
    report.set("walk", "selfcheck.montecarlo", sim);
    return 0;
}
