/**
 * @file
 * Regenerates Figure 9: normalized execution time of the
 * double-channel SDIMM designs (INDEP-4, SPLIT-4, INDEP-SPLIT)
 * relative to a 2-channel Freecursive baseline, plus the per-access
 * memory latency reductions the paper quotes for Split (-41%) and
 * Indep-Split (-63%).
 */

#include <cstdio>

#include "bench/common.hh"

using namespace secdimm;
using namespace secdimm::core;

int
main()
{
    bench::header(
        "Figure 9 -- double-channel SDIMM designs, normalized time",
        "Fig 9 (paper: INDEP-4 -20.3%, SPLIT-4 -20.4%, "
        "INDEP-SPLIT -47.4%)");

    const auto lens = bench::lengths();
    bench::JsonReport report("fig9_double_channel");

    std::printf("%-12s %12s %12s %12s %12s\n", "workload",
                "Freecursive", "INDEP-4", "SPLIT-4", "INDEP-SPLIT");

    std::vector<double> n4, nsp, nis;
    std::vector<double> lat_fc, lat_sp, lat_is;
    for (const auto &wl : bench::workloads()) {
        SystemConfig fc_cfg = makeConfig(DesignPoint::Freecursive, 24, 7);
        fc_cfg.cpuChannels = 2;
        fc_cfg.cpuGeom.channels = 2;
        const SimResult fc = runWorkload(fc_cfg, wl, lens, 1);
        const SimResult i4 = runWorkload(
            makeConfig(DesignPoint::Indep4, 24, 7), wl, lens, 1);
        const SimResult s4 = runWorkload(
            makeConfig(DesignPoint::Split4, 24, 7), wl, lens, 1);
        const SimResult is = runWorkload(
            makeConfig(DesignPoint::IndepSplit, 24, 7), wl, lens, 1);

        const double fc_c = static_cast<double>(fc.core.cycles);
        n4.push_back(i4.core.cycles / fc_c);
        nsp.push_back(s4.core.cycles / fc_c);
        nis.push_back(is.core.cycles / fc_c);
        lat_fc.push_back(fc.cyclesPerMiss());
        lat_sp.push_back(s4.cyclesPerMiss());
        lat_is.push_back(is.cyclesPerMiss());

        report.add("freecursive.2ch", fc.metrics);
        report.add("indep4", i4.metrics);
        report.add("split4", s4.metrics);
        report.add("indepsplit", is.metrics);
        report.set("indep4", "normalized_time." + wl.name, n4.back());
        report.set("split4", "normalized_time." + wl.name, nsp.back());
        report.set("indepsplit", "normalized_time." + wl.name,
                   nis.back());

        std::printf("%-12s %12.3f %12.3f %12.3f %12.3f\n",
                    wl.name.c_str(), 1.0, n4.back(), nsp.back(),
                    nis.back());
    }
    std::printf("%-12s %12.3f %12.3f %12.3f %12.3f\n", "geomean", 1.0,
                bench::geomean(n4), bench::geomean(nsp),
                bench::geomean(nis));
    std::printf("%-12s %12s %12s %12s %12s\n", "paper", "1.000",
                "0.797", "0.796", "0.526");

    // Per-miss memory time reductions (Section IV-B text).
    const double red_sp =
        1.0 - bench::mean(lat_sp) / bench::mean(lat_fc);
    const double red_is =
        1.0 - bench::mean(lat_is) / bench::mean(lat_fc);
    std::printf("\nper-miss memory time reduction vs Freecursive:\n");
    std::printf("  SPLIT-4:     %5.1f%%   (paper: 41%%)\n",
                100.0 * red_sp);
    std::printf("  INDEP-SPLIT: %5.1f%%   (paper: 63%%)\n",
                100.0 * red_is);

    report.set("indep4", "normalized_time.geomean", bench::geomean(n4));
    report.set("split4", "normalized_time.geomean",
               bench::geomean(nsp));
    report.set("indepsplit", "normalized_time.geomean",
               bench::geomean(nis));
    report.set("split4", "per_miss_time_reduction", red_sp);
    report.set("indepsplit", "per_miss_time_reduction", red_is);
    return 0;
}
