/**
 * @file
 * Regenerates Figure 10: memory energy overhead normalized to a
 * non-secure baseline, for Freecursive vs the best SDIMM designs
 * (SPLIT-2 on one channel, INDEP-SPLIT on two), with the energy
 * breakdown the Micron-power-calculator methodology produces.
 * Paper: SPLIT-2 improves memory energy ~2.4x and INDEP-SPLIT ~2.5x
 * over Freecursive.
 */

#include <cstdio>

#include "bench/common.hh"

using namespace secdimm;
using namespace secdimm::core;

namespace
{

struct EnergyRow
{
    double overheadSum = 0.0; ///< Sum over workloads of E/E_nonsecure.
    dram::EnergyBreakdown total;
    unsigned n = 0;
};

void
accumulate(EnergyRow &row, const core::SimResult &r, double base_nj,
           bench::JsonReport &report, const std::string &point)
{
    row.overheadSum += r.energy.totalNj() / base_nj;
    row.total += r.energy;
    ++row.n;
    report.add(point, r.metrics);
}

void
printRow(const char *name, const EnergyRow &row)
{
    const double t = row.total.totalNj();
    std::printf("%-12s %10.2fx   %5.1f%% %5.1f%% %5.1f%% %5.1f%% "
                "%5.1f%%\n",
                name, row.overheadSum / row.n,
                100.0 * row.total.actPreNj / t,
                100.0 * row.total.rdWrNj / t,
                100.0 * row.total.ioNj / t,
                100.0 * row.total.backgroundNj / t,
                100.0 * row.total.refreshNj / t);
}

} // namespace

int
main()
{
    bench::header("Figure 10 -- memory energy overhead vs non-secure",
                  "Fig 10 (paper: SPLIT-2 2.4x and INDEP-SPLIT 2.5x "
                  "better than Freecursive)");

    const auto lens = bench::lengths();
    bench::JsonReport report("fig10_energy");

    EnergyRow fc1, sp2, fc2, is4;
    for (const auto &wl : bench::workloads()) {
        // Single channel.
        const SimResult ns1 = runWorkload(
            makeConfig(DesignPoint::NonSecure, 24, 7), wl, lens, 1);
        report.add("nonsecure.1ch", ns1.metrics);
        accumulate(fc1,
                   runWorkload(makeConfig(DesignPoint::Freecursive, 24,
                                          7),
                               wl, lens, 1),
                   ns1.energy.totalNj(), report, "freecursive.1ch");
        accumulate(sp2,
                   runWorkload(makeConfig(DesignPoint::Split2, 24, 7),
                               wl, lens, 1),
                   ns1.energy.totalNj(), report, "split2");

        // Double channel.
        SystemConfig ns2_cfg = makeConfig(DesignPoint::NonSecure, 24, 7);
        ns2_cfg.cpuChannels = 2;
        ns2_cfg.cpuGeom.channels = 2;
        SystemConfig fc2_cfg = makeConfig(DesignPoint::Freecursive, 24, 7);
        fc2_cfg.cpuChannels = 2;
        fc2_cfg.cpuGeom.channels = 2;
        const SimResult ns2 = runWorkload(ns2_cfg, wl, lens, 1);
        report.add("nonsecure.2ch", ns2.metrics);
        accumulate(fc2, runWorkload(fc2_cfg, wl, lens, 1),
                   ns2.energy.totalNj(), report, "freecursive.2ch");
        accumulate(is4,
                   runWorkload(makeConfig(DesignPoint::IndepSplit, 24,
                                          7),
                               wl, lens, 1),
                   ns2.energy.totalNj(), report, "indepsplit");
    }

    std::printf("%-12s %11s   %-40s\n", "design", "overhead",
                "breakdown: act/pre  rd/wr  I/O  bkgd  refresh");
    std::printf("-- single channel --\n");
    printRow("Freecursive", fc1);
    printRow("SPLIT-2", sp2);
    std::printf("-- double channel --\n");
    printRow("Freecursive", fc2);
    printRow("INDEP-SPLIT", is4);

    const double gain1 =
        (fc1.overheadSum / fc1.n) / (sp2.overheadSum / sp2.n);
    const double gain2 =
        (fc2.overheadSum / fc2.n) / (is4.overheadSum / is4.n);
    std::printf("\nenergy improvement over Freecursive:\n");
    std::printf("  SPLIT-2 (1ch):     %.2fx   (paper: 2.4x)\n", gain1);
    std::printf("  INDEP-SPLIT (2ch): %.2fx   (paper: 2.5x)\n", gain2);

    report.set("freecursive.1ch", "energy_overhead",
               fc1.overheadSum / fc1.n);
    report.set("split2", "energy_overhead", sp2.overheadSum / sp2.n);
    report.set("freecursive.2ch", "energy_overhead",
               fc2.overheadSum / fc2.n);
    report.set("indepsplit", "energy_overhead",
               is4.overheadSum / is4.n);
    report.set("split2", "energy_gain_vs_freecursive", gain1);
    report.set("indepsplit", "energy_gain_vs_freecursive", gain2);
    return 0;
}
