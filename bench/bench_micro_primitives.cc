/**
 * @file
 * google-benchmark microbenchmarks of the substrate primitives: AES,
 * CMAC, CTR transforms, bucket store round trips, stash eviction,
 * tree-layout math, PLB lookups, and raw DRAM-channel throughput.
 * These quantify simulator (host) cost, not simulated time.
 */

#include <benchmark/benchmark.h>

#include "bench/common.hh"
#include "crypto/aes128.hh"
#include "crypto/cmac.hh"
#include "crypto/ctr_mode.hh"
#include "dram/channel.hh"
#include "oram/bucket_store.hh"
#include "oram/plb.hh"
#include "oram/stash.hh"
#include "oram/tree_layout.hh"

using namespace secdimm;

namespace
{

void
BM_Aes128Encrypt(benchmark::State &state)
{
    crypto::Aes128 aes(crypto::makeKey(1, 2));
    crypto::Aes128Block block{};
    for (auto _ : state) {
        block = aes.encrypt(block);
        benchmark::DoNotOptimize(block);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_Aes128Encrypt);

void
BM_CtrTransformBlock(benchmark::State &state)
{
    crypto::CtrCipher ctr(crypto::makeKey(3, 4));
    BlockData data{};
    std::uint64_t counter = 0;
    for (auto _ : state) {
        ctr.transformBlock(data, 7, ++counter);
        benchmark::DoNotOptimize(data);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * blockBytes);
}
BENCHMARK(BM_CtrTransformBlock);

void
BM_CmacBucketImage(benchmark::State &state)
{
    crypto::Cmac cmac(crypto::makeKey(5, 6));
    std::vector<std::uint8_t> image(320, 0xab);
    for (auto _ : state) {
        auto tag = cmac.compute(image.data(), image.size());
        benchmark::DoNotOptimize(tag);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(image.size()));
}
BENCHMARK(BM_CmacBucketImage);

void
BM_BucketStoreRoundTrip(benchmark::State &state)
{
    oram::BucketStore store(64, 4, crypto::makeKey(1, 1),
                            crypto::makeKey(2, 2));
    oram::Bucket b(4);
    b.slot(0) = oram::BlockSlot{1, 2, BlockData{}};
    std::uint64_t seq = 0;
    for (auto _ : state) {
        store.writeBucket(seq % 64, b);
        auto r = store.readBucket(seq % 64);
        benchmark::DoNotOptimize(r);
        ++seq;
    }
}
BENCHMARK(BM_BucketStoreRoundTrip);

void
BM_StashEvict(benchmark::State &state)
{
    for (auto _ : state) {
        state.PauseTiming();
        oram::Stash stash(256);
        for (Addr a = 0; a < 100; ++a)
            stash.put(a, a % 64, BlockData{});
        state.ResumeTiming();
        for (int level = 6; level >= 0; --level) {
            auto picked = stash.evictForBucket(13, level, 6, 4);
            benchmark::DoNotOptimize(picked);
        }
    }
}
BENCHMARK(BM_StashEvict);

void
BM_TreeLayoutPath(benchmark::State &state)
{
    oram::TreeLayout layout(24, 5);
    std::vector<Addr> lines;
    LeafId leaf = 0;
    for (auto _ : state) {
        lines.clear();
        layout.pathLines(leaf++ % layout.numBuckets(), 7, lines);
        benchmark::DoNotOptimize(lines);
    }
}
BENCHMARK(BM_TreeLayoutPath);

void
BM_PlbLookup(benchmark::State &state)
{
    oram::Plb plb(1024, 8);
    for (std::uint64_t i = 0; i < 1024; ++i)
        plb.insert(oram::Plb::makeKey(1, i));
    std::uint64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            plb.lookup(oram::Plb::makeKey(1, i++ % 2048)));
    }
}
BENCHMARK(BM_PlbLookup);

void
BM_DramChannelRandomReads(benchmark::State &state)
{
    dram::Geometry geom;
    geom.ranksPerChannel = 4;
    geom.rowsPerBank = 4096;
    std::uint64_t completed = 0;
    for (auto _ : state) {
        state.PauseTiming();
        dram::DramChannel ch("bench", dram::ddr3_1600(), geom,
                             dram::MapPolicy::RowRankBankCol);
        ch.setCompletionCallback(
            [&](const dram::DramCompletion &) { ++completed; });
        state.ResumeTiming();
        std::uint64_t x = 0x9e3779b97f4a7c15ULL;
        for (unsigned i = 0; i < 256; ++i) {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if (!ch.canEnqueue(false))
                ch.advanceTo(ch.nextEventAt());
            ch.enqueue(i, x % ch.addressMap().blockCount(), false, 0);
        }
        ch.drain();
    }
    benchmark::DoNotOptimize(completed);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_DramChannelRandomReads);

/**
 * Console output plus a BENCH_micro_primitives.json snapshot: one
 * design point per microbenchmark, with time-per-iteration and
 * throughput gauges (host cost, not simulated time).
 */
class SnapshotReporter : public benchmark::ConsoleReporter
{
  public:
    explicit SnapshotReporter(secdimm::bench::JsonReport &report)
        : report_(report)
    {
    }

    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        ConsoleReporter::ReportRuns(runs);
        for (const Run &run : runs) {
            if (run.error_occurred)
                continue;
            const std::string point = run.benchmark_name();
            report_.set(point, "real_time_ns",
                        run.GetAdjustedRealTime());
            report_.set(point, "cpu_time_ns",
                        run.GetAdjustedCPUTime());
            report_.setCount(point, "iterations",
                             static_cast<std::uint64_t>(
                                 run.iterations));
        }
    }

  private:
    secdimm::bench::JsonReport &report_;
};

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    secdimm::bench::JsonReport report("micro_primitives");
    SnapshotReporter reporter(report);
    benchmark::RunSpecifiedBenchmarks(&reporter);
    report.write();
    benchmark::Shutdown();
    return 0;
}
