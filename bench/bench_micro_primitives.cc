/**
 * @file
 * google-benchmark microbenchmarks of the substrate primitives: AES,
 * CMAC, CTR transforms, bucket store round trips, stash eviction,
 * tree-layout math, PLB lookups, and raw DRAM-channel throughput.
 * These quantify simulator (host) cost, not simulated time.
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "bench/common.hh"
#include "crypto/aes128.hh"
#include "crypto/cmac.hh"
#include "crypto/cpu_features.hh"
#include "crypto/ctr_mode.hh"
#include "crypto/pmmac.hh"
#include "dram/channel.hh"
#include "oram/bucket_store.hh"
#include "oram/plb.hh"
#include "oram/stash.hh"
#include "oram/tree_layout.hh"

using namespace secdimm;

namespace
{

void
BM_Aes128Encrypt(benchmark::State &state)
{
    crypto::Aes128 aes(crypto::makeKey(1, 2));
    crypto::Aes128Block block{};
    for (auto _ : state) {
        block = aes.encrypt(block);
        benchmark::DoNotOptimize(block);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_Aes128Encrypt);

/** The pipelined path: 8 independent blocks per encryptBlocks call. */
void
BM_Aes128EncryptBlocks8(benchmark::State &state)
{
    crypto::Aes128 aes(crypto::makeKey(1, 2));
    std::uint8_t buf[16 * 8] = {};
    for (auto _ : state) {
        aes.encryptBlocks(buf, buf, 8);
        benchmark::DoNotOptimize(buf);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 16 * 8);
}
BENCHMARK(BM_Aes128EncryptBlocks8);

void
BM_CtrTransformBlock(benchmark::State &state)
{
    crypto::CtrCipher ctr(crypto::makeKey(3, 4));
    BlockData data{};
    std::uint64_t counter = 0;
    for (auto _ : state) {
        ctr.transformBlock(data, 7, ++counter);
        benchmark::DoNotOptimize(data);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * blockBytes);
}
BENCHMARK(BM_CtrTransformBlock);

void
BM_CmacBucketImage(benchmark::State &state)
{
    crypto::Cmac cmac(crypto::makeKey(5, 6));
    std::vector<std::uint8_t> image(320, 0xab);
    for (auto _ : state) {
        auto tag = cmac.compute(image.data(), image.size());
        benchmark::DoNotOptimize(tag);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(image.size()));
}
BENCHMARK(BM_CmacBucketImage);

/** A whole path of bucket MACs through the batched CMAC API; 13
 *  buckets is a ~256 KiB tree's path length. */
void
BM_CmacPathBatch(benchmark::State &state)
{
    constexpr std::size_t kPath = 13;
    crypto::Cmac cmac(crypto::makeKey(5, 6));
    std::vector<std::uint8_t> images(kPath * 320, 0xab);
    std::vector<crypto::CmacJob> jobs(kPath);
    for (std::size_t i = 0; i < kPath; ++i)
        jobs[i] = crypto::CmacJob{nullptr, images.data() + 320 * i, 320};
    std::vector<crypto::Aes128Block> tags(kPath);
    for (auto _ : state) {
        cmac.computeBatch(jobs.data(), kPath, tags.data());
        benchmark::DoNotOptimize(tags);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(kPath * 320));
}
BENCHMARK(BM_CmacPathBatch);

/** Batched PMMAC verification of one path (verify side of a read). */
void
BM_PmmacPathVerifyBatch(benchmark::State &state)
{
    constexpr std::size_t kPath = 13;
    crypto::Pmmac mac(crypto::makeKey(7, 8));
    std::vector<std::uint8_t> images(kPath * 320, 0x5c);
    std::vector<crypto::PmmacItem> items(kPath);
    for (std::size_t i = 0; i < kPath; ++i) {
        items[i] = crypto::PmmacItem{i, 1, images.data() + 320 * i,
                                     320};
    }
    std::vector<crypto::Tag64> expected(kPath);
    mac.tagBatch(items.data(), kPath, expected.data());
    const std::unique_ptr<bool[]> ok(new bool[kPath]);
    for (auto _ : state) {
        const bool all = mac.verifyBatch(items.data(), kPath,
                                         expected.data(), ok.get());
        benchmark::DoNotOptimize(all);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(kPath * 320));
}
BENCHMARK(BM_PmmacPathVerifyBatch);

void
BM_BucketStoreRoundTrip(benchmark::State &state)
{
    oram::BucketStore store(64, 4, crypto::makeKey(1, 1),
                            crypto::makeKey(2, 2));
    oram::Bucket b(4);
    b.slot(0) = oram::BlockSlot{1, 2, BlockData{}};
    std::uint64_t seq = 0;
    for (auto _ : state) {
        store.writeBucket(seq % 64, b);
        auto r = store.readBucket(seq % 64);
        benchmark::DoNotOptimize(r);
        ++seq;
    }
}
BENCHMARK(BM_BucketStoreRoundTrip);

/** One batched path write+read through the store (13 buckets). */
void
BM_BucketStorePathBatch(benchmark::State &state)
{
    constexpr std::size_t kPath = 13;
    oram::BucketStore store(64, 4, crypto::makeKey(1, 1),
                            crypto::makeKey(2, 2));
    std::vector<oram::Bucket> buckets;
    std::vector<std::uint64_t> seqs;
    for (std::size_t i = 0; i < kPath; ++i) {
        oram::Bucket b(4);
        b.slot(0) = oram::BlockSlot{static_cast<Addr>(i), 2,
                                    BlockData{}};
        buckets.push_back(std::move(b));
        seqs.push_back(i);
    }
    std::vector<oram::BucketReadResult> results;
    for (auto _ : state) {
        store.writeBuckets(seqs.data(), buckets.data(), kPath);
        store.readBuckets(seqs.data(), kPath, results);
        benchmark::DoNotOptimize(results);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * kPath);
}
BENCHMARK(BM_BucketStorePathBatch);

void
BM_StashEvict(benchmark::State &state)
{
    for (auto _ : state) {
        state.PauseTiming();
        oram::Stash stash(256);
        for (Addr a = 0; a < 100; ++a)
            stash.put(a, a % 64, BlockData{});
        state.ResumeTiming();
        for (int level = 6; level >= 0; --level) {
            auto picked = stash.evictForBucket(13, level, 6, 4);
            benchmark::DoNotOptimize(picked);
        }
    }
}
BENCHMARK(BM_StashEvict);

void
BM_TreeLayoutPath(benchmark::State &state)
{
    oram::TreeLayout layout(24, 5);
    std::vector<Addr> lines;
    LeafId leaf = 0;
    for (auto _ : state) {
        lines.clear();
        layout.pathLines(leaf++ % layout.numBuckets(), 7, lines);
        benchmark::DoNotOptimize(lines);
    }
}
BENCHMARK(BM_TreeLayoutPath);

void
BM_PlbLookup(benchmark::State &state)
{
    oram::Plb plb(1024, 8);
    for (std::uint64_t i = 0; i < 1024; ++i)
        plb.insert(oram::Plb::makeKey(1, i));
    std::uint64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            plb.lookup(oram::Plb::makeKey(1, i++ % 2048)));
    }
}
BENCHMARK(BM_PlbLookup);

void
BM_DramChannelRandomReads(benchmark::State &state)
{
    dram::Geometry geom;
    geom.ranksPerChannel = 4;
    geom.rowsPerBank = 4096;
    std::uint64_t completed = 0;
    for (auto _ : state) {
        state.PauseTiming();
        dram::DramChannel ch("bench", dram::ddr3_1600(), geom,
                             dram::MapPolicy::RowRankBankCol);
        ch.setCompletionCallback(
            [&](const dram::DramCompletion &) { ++completed; });
        state.ResumeTiming();
        std::uint64_t x = 0x9e3779b97f4a7c15ULL;
        for (unsigned i = 0; i < 256; ++i) {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if (!ch.canEnqueue(false))
                ch.advanceTo(ch.nextEventAt());
            ch.enqueue(i, x % ch.addressMap().blockCount(), false, 0);
        }
        ch.drain();
    }
    benchmark::DoNotOptimize(completed);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_DramChannelRandomReads);

/**
 * Console output plus a BENCH_micro_primitives.json snapshot: one
 * design point per microbenchmark, with time-per-iteration and
 * throughput gauges (host cost, not simulated time).
 */
class SnapshotReporter : public benchmark::ConsoleReporter
{
  public:
    explicit SnapshotReporter(secdimm::bench::JsonReport &report)
        : report_(report)
    {
    }

    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        ConsoleReporter::ReportRuns(runs);
        for (const Run &run : runs) {
            if (run.error_occurred)
                continue;
            const std::string point = run.benchmark_name();
            report_.set(point, "real_time_ns",
                        run.GetAdjustedRealTime());
            report_.set(point, "cpu_time_ns",
                        run.GetAdjustedCPUTime());
            report_.setCount(point, "iterations",
                             static_cast<std::uint64_t>(
                                 run.iterations));
            // Normalized per-primitive cost/throughput so the JSON
            // trail is directly comparable across runs and AES
            // backends (docs/PERFORMANCE.md).
            report_.set(point, "ns_per_op", run.GetAdjustedRealTime());
            const auto bps = run.counters.find("bytes_per_second");
            if (bps != run.counters.end()) {
                report_.set(point, "gb_per_s",
                            static_cast<double>(bps->second) / 1e9);
            }
            report_.setCount(
                point, "aes_impl_id",
                static_cast<std::uint64_t>(
                    static_cast<int>(crypto::activeAesImpl())));
        }
    }

  private:
    secdimm::bench::JsonReport &report_;
};

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    secdimm::bench::JsonReport report("micro_primitives");
    std::printf("aes implementation: %s\n",
                secdimm::crypto::aesImplName(
                    secdimm::crypto::activeAesImpl()));
    SnapshotReporter reporter(report);
    benchmark::RunSpecifiedBenchmarks(&reporter);
    report.write();
    benchmark::Shutdown();
    return 0;
}
