/**
 * @file
 * Regenerates Table I: the SDIMM command set and its DDR-compatible
 * encodings, plus a decode round-trip self-check.
 */

#include <cstdio>

#include "bench/common.hh"
#include "sdimm/sdimm_command.hh"

using namespace secdimm;
using namespace secdimm::sdimm;

int
main()
{
    bench::header("Table I -- SDIMM command encodings",
                  "Table I (Section III-F)");

    bench::JsonReport report("table1_commands");
    std::printf("%-16s %-6s %-8s %-12s %-8s\n", "Command", "Type",
                "RD/WR", "cmd/addr", "opcode");
    for (auto type : allCommands()) {
        const DdrEncoding enc = encodeCommand(type);
        char bus[32];
        std::snprintf(bus, sizeof(bus), "RAS(0x%x) CAS(0x%x)",
                      enc.rasRow, enc.casCol);
        std::printf("%-16s %-6s %-8s %-12s", commandName(type),
                    enc.needsDataBus ? "long" : "short",
                    enc.write ? "WR" : "RD", bus);
        if (enc.needsDataBus)
            std::printf(" 0x%02x", enc.opcode);
        std::printf("\n");

        const auto decoded = decodeCommand(enc.write, enc.rasRow,
                                           enc.casCol, enc.opcode);
        if (!decoded || *decoded != type) {
            std::printf("DECODE ROUND-TRIP FAILED for %s\n",
                        commandName(type));
            return 1;
        }
    }

    std::printf("\nround-trip: all %zu commands decode correctly\n",
                allCommands().size());
    report.setCount("commands", "command_count", allCommands().size());
    report.setCount("commands", "decode_roundtrip_ok", 1);
    std::printf("normal accesses (RAS != 0) decode as memory: %s\n",
                decodeCommand(false, 0x40, 0x0, 0).has_value()
                    ? "FAIL"
                    : "ok");
    return 0;
}
