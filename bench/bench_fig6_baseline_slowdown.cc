/**
 * @file
 * Regenerates Figure 6: slowdown of Freecursive ORAM relative to a
 * non-secure memory system, for single- and double-channel memory,
 * plus the observed accessORAM-per-LLC-miss average the paper quotes
 * (~1.4).
 */

#include <cstdio>

#include "bench/common.hh"

using namespace secdimm;
using namespace secdimm::core;

int
main()
{
    bench::header("Figure 6 -- Freecursive slowdown vs non-secure",
                  "Fig 6 (paper: ~8.8x on 1 channel, ~5.2x on 2; "
                  "~1.4 accessORAMs per miss)");

    const auto lens = bench::lengths();
    bench::JsonReport report("fig6_baseline_slowdown");

    std::printf("%-12s %12s %12s %12s %12s %12s %8s\n", "workload",
                "nonsec-1ch", "oram-1ch", "slow-1ch", "slow-2ch",
                "path-1ch", "ops/miss");

    std::vector<double> slow1, slow2, slowPath, opsPerMiss;
    for (const auto &wl : bench::workloads()) {
        SystemConfig ns1 = makeConfig(DesignPoint::NonSecure, 24, 7);
        SystemConfig fc1 = makeConfig(DesignPoint::Freecursive, 24, 7);
        SystemConfig po1 = makeConfig(DesignPoint::PathOram, 24, 7);
        SystemConfig ns2 = ns1, fc2 = fc1;
        ns2.cpuChannels = 2;
        ns2.cpuGeom.channels = 2;
        fc2.cpuChannels = 2;
        fc2.cpuGeom.channels = 2;

        const SimResult rn1 = runWorkload(ns1, wl, lens, 1);
        const SimResult rf1 = runWorkload(fc1, wl, lens, 1);
        const SimResult rp1 = runWorkload(po1, wl, lens, 1);
        const SimResult rn2 = runWorkload(ns2, wl, lens, 1);
        const SimResult rf2 = runWorkload(fc2, wl, lens, 1);

        const double s1 = static_cast<double>(rf1.core.cycles) /
                          static_cast<double>(rn1.core.cycles);
        const double s2 = static_cast<double>(rf2.core.cycles) /
                          static_cast<double>(rn2.core.cycles);
        const double sp = static_cast<double>(rp1.core.cycles) /
                          static_cast<double>(rn1.core.cycles);
        slow1.push_back(s1);
        slow2.push_back(s2);
        slowPath.push_back(sp);
        opsPerMiss.push_back(rf1.avgOramsPerMiss);

        report.add("nonsecure.1ch", rn1.metrics);
        report.add("freecursive.1ch", rf1.metrics);
        report.add("pathoram.1ch", rp1.metrics);
        report.add("nonsecure.2ch", rn2.metrics);
        report.add("freecursive.2ch", rf2.metrics);
        report.set("freecursive.1ch", "slowdown." + wl.name, s1);
        report.set("freecursive.2ch", "slowdown." + wl.name, s2);
        report.set("pathoram.1ch", "slowdown." + wl.name, sp);

        std::printf("%-12s %12llu %12llu %11.2fx %11.2fx %11.2fx %8.2f\n",
                    wl.name.c_str(),
                    static_cast<unsigned long long>(rn1.core.cycles),
                    static_cast<unsigned long long>(rf1.core.cycles),
                    s1, s2, sp, rf1.avgOramsPerMiss);
    }

    std::printf("\n%-12s %12s %12s %11.2fx %11.2fx %11.2fx %8.2f\n",
                "geomean", "", "", bench::geomean(slow1),
                bench::geomean(slow2), bench::geomean(slowPath),
                bench::mean(opsPerMiss));
    std::printf("%-12s %12s %12s %12s %12s %12s %8s\n", "paper", "",
                "", "8.80x", "5.20x", "", "1.40");

    report.set("pathoram.1ch", "slowdown.geomean",
               bench::geomean(slowPath));

    report.set("freecursive.1ch", "slowdown.geomean",
               bench::geomean(slow1));
    report.set("freecursive.2ch", "slowdown.geomean",
               bench::geomean(slow2));
    report.set("freecursive.1ch", "orams_per_miss.mean",
               bench::mean(opsPerMiss));
    return 0;
}
