/**
 * @file
 * Regenerates the Section IV-B area estimate: the SDIMM secure
 * buffer's ORAM controller plus transfer buffer.  Paper: controller
 * 0.47 mm^2 (Fletcher et al.), 8 KB buffer < 0.42 mm^2 via CACTI,
 * total < 1 mm^2 at 32 nm.
 */

#include <cstdio>

#include "analytic/area_model.hh"
#include "bench/common.hh"

using namespace secdimm;
using namespace secdimm::analytic;

int
main()
{
    bench::header("Secure buffer area estimate",
                  "Section IV-B text (paper: < 1 mm^2 at 32 nm)");

    bench::JsonReport report("area");
    std::printf("%-14s %12s %12s %12s\n", "buffer size", "ctrl mm^2",
                "sram mm^2", "total mm^2");
    for (std::uint64_t bytes : {4096ULL, 8192ULL, 16384ULL, 32768ULL}) {
        const SecureBufferArea a = secureBufferArea(bytes);
        std::printf("%10llu B  %12.2f %12.2f %12.2f\n",
                    static_cast<unsigned long long>(bytes),
                    a.oramControllerMm2, a.bufferMm2, a.totalMm2());
        const std::string point = "buf" + std::to_string(bytes);
        report.set(point, "controller_mm2", a.oramControllerMm2);
        report.set(point, "sram_mm2", a.bufferMm2);
        report.set(point, "total_mm2", a.totalMm2());
    }

    const SecureBufferArea paper = secureBufferArea(8192);
    std::printf("\n8 KB design point: %.2f mm^2 total -- %s 1 mm^2 "
                "(paper: < 1 mm^2)\n",
                paper.totalMm2(),
                paper.totalMm2() < 1.0 ? "under" : "OVER");
    return 0;
}
