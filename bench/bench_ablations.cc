/**
 * @file
 * Ablation studies for the design choices DESIGN.md calls out:
 *
 *  1. memory scheduler: FR-FCFS vs FCFS under ORAM path traffic;
 *  2. subtree-packed layout (Ren et al. [10]): row-hit rate and read
 *     time vs the naive BFS layout, across subtree heights;
 *  3. PROBE polling cadence of the Independent protocol;
 *  4. transfer-queue drain probability p: performance cost vs the
 *     analytic overflow probability it buys.
 */

#include <cstdio>

#include "analytic/mm1k.hh"
#include "bench/common.hh"
#include "dram/channel.hh"
#include "oram/tree_layout.hh"
#include "sdimm/independent_backend.hh"
#include "util/rng.hh"

using namespace secdimm;
using namespace secdimm::core;

namespace
{

/** Time to read N full paths through one channel under a layout. */
struct PathReadResult
{
    Tick cycles;
    double rowHitRate;
};

PathReadResult
readPaths(dram::SchedPolicy policy, unsigned subtree_levels,
          unsigned paths)
{
    dram::Geometry geom;
    geom.ranksPerChannel = 4;
    geom.rowsPerBank = 1u << 15;
    dram::DramChannel ch("abl", dram::ddr3_1600(), geom,
                         dram::MapPolicy::RowRankBankCol, policy);
    ch.setCompletionCallback([](const dram::DramCompletion &) {});

    oram::TreeLayout layout(20, 5, subtree_levels);
    Rng rng(3);
    std::vector<Addr> lines;
    for (unsigned p = 0; p < paths; ++p) {
        lines.clear();
        layout.pathLines(rng.nextBelow(1u << 20), 7, lines);
        for (Addr line : lines) {
            while (!ch.canEnqueue(false))
                ch.advanceTo(ch.nextEventAt());
            ch.enqueue(line, line % ch.addressMap().blockCount(), false,
                       ch.curTick());
        }
    }
    const Tick end = ch.drain();
    const auto &s = ch.stats();
    const double hits =
        static_cast<double>(s.rowHits) / (s.rowHits + s.rowMisses);
    return PathReadResult{end, hits};
}

} // namespace

int
main()
{
    bench::header("Ablations -- scheduler, layout, probe cadence, "
                  "drain probability",
                  "design choices of Sections II-C/III-C/IV-C");

    bench::JsonReport report("ablations");

    // 1. Scheduler policy.
    std::printf("--- 1. memory scheduler under ORAM path reads ---\n");
    const PathReadResult frfcfs =
        readPaths(dram::SchedPolicy::FrFcfs, 4, 200);
    const PathReadResult fcfs =
        readPaths(dram::SchedPolicy::Fcfs, 4, 200);
    report.setCount("scheduler.frfcfs", "cycles", frfcfs.cycles);
    report.set("scheduler.frfcfs", "row_hit_rate", frfcfs.rowHitRate);
    report.setCount("scheduler.fcfs", "cycles", fcfs.cycles);
    report.set("scheduler.fcfs", "row_hit_rate", fcfs.rowHitRate);
    std::printf("%-10s %12s %10s\n", "policy", "cycles", "row hits");
    std::printf("%-10s %12llu %9.1f%%\n", "FR-FCFS",
                static_cast<unsigned long long>(frfcfs.cycles),
                100 * frfcfs.rowHitRate);
    std::printf("%-10s %12llu %9.1f%%\n", "FCFS",
                static_cast<unsigned long long>(fcfs.cycles),
                100 * fcfs.rowHitRate);

    // 2. Subtree packing height.
    std::printf("\n--- 2. subtree-packed layout (Ren et al. [10]) "
                "---\n");
    std::printf("%-10s %12s %10s\n", "height", "cycles", "row hits");
    for (unsigned h : {1u, 2u, 4u, 6u}) {
        const PathReadResult r =
            readPaths(dram::SchedPolicy::FrFcfs, h, 200);
        std::printf("h=%-8u %12llu %9.1f%%\n", h,
                    static_cast<unsigned long long>(r.cycles),
                    100 * r.rowHitRate);
        const std::string point = "layout.h" + std::to_string(h);
        report.setCount(point, "cycles", r.cycles);
        report.set(point, "row_hit_rate", r.rowHitRate);
    }
    std::printf("(h=1 is the naive BFS layout; larger subtrees pack a "
                "path's buckets\ninto fewer rows)\n");

    // 3. PROBE polling cadence.
    std::printf("\n--- 3. Independent-protocol PROBE interval ---\n");
    const auto lens = bench::lengths(400);
    const auto &wl = *trace::findProfile("milc");
    std::printf("%-10s %12s %12s\n", "interval", "cycles", "probes");
    for (Cycles interval : {8u, 32u, 128u, 512u}) {
        SystemConfig cfg = makeConfig(DesignPoint::Indep2, 24, 7);
        // Rebuild with a custom probe cadence via the backend config.
        sdimm::SdimmTimingConfig scfg;
        scfg.perSdimm = cfg.globalTree();
        scfg.perSdimm.levels -= 1;
        scfg.perSdimm.cachedLevels -= 1;
        scfg.recursion = cfg.recursion;
        scfg.numSdimms = 2;
        scfg.timing = cfg.timing;
        scfg.sdimmGeom = cfg.sdimmGeom;
        scfg.probeInterval = interval;

        sdimm::IndependentBackend backend(scfg, 1);
        trace::CacheModel llc(2ULL << 20, 8);
        trace::CoreModel core(trace::CoreParams{}, llc, backend);
        trace::TraceGenerator gen(wl, 1 ^ 0xabcdef);
        const auto r = core.run(gen, lens.warmupRecords,
                                lens.measureRecords);
        std::uint64_t probes = 0;
        for (unsigned b = 0; b < backend.busCount(); ++b)
            probes += backend.bus(b).stats().probes;
        std::printf("%-10llu %12llu %12llu\n",
                    static_cast<unsigned long long>(interval),
                    static_cast<unsigned long long>(r.cycles),
                    static_cast<unsigned long long>(probes));
        const std::string point =
            "probe.interval" + std::to_string(interval);
        report.setCount(point, "cycles", r.cycles);
        report.setCount(point, "probes", probes);
    }

    // 4. Drain probability.
    std::printf("\n--- 4. transfer-queue drain probability p ---\n");
    std::printf("%-8s %12s %16s\n", "p", "cycles",
                "overflow (K=128)");
    for (double p : {0.0, 0.05, 0.1, 0.25, 0.5}) {
        SystemConfig cfg = makeConfig(DesignPoint::Indep2, 24, 7);
        cfg.drainProb = p;
        const SimResult r = runWorkload(cfg, wl, lens, 1);
        const double overflow =
            p == 0.0 ? 1.0 : analytic::transferQueueOverflow(p, 128);
        std::printf("%-8.2f %12llu %16.2e\n", p,
                    static_cast<unsigned long long>(r.core.cycles),
                    overflow);
        char name[32];
        std::snprintf(name, sizeof(name), "drain.p%03d",
                      static_cast<int>(100 * p + 0.5));
        report.add(name, r.metrics);
        report.set(name, "overflow_probability", overflow);
    }
    std::printf("(p=0 saturates the queue -- overflow certain in "
                "steady state)\n");
    return 0;
}
