/**
 * @file
 * Toy Diffie-Hellman session establishment modeling the paper's
 * SEND_PKEY / RECEIVE_SECRET boot-time flow between the CPU and each
 * SDIMM secure buffer (Section III-B).
 *
 * DESIGN.md substitution note: the paper delegates authentication to
 * "industry best practices" (Verisign-style third party); we stand in a
 * DH exchange over the Mersenne-prime group p = 2^61 - 1 so the whole
 * command flow is executable end to end.  It exercises the same code
 * path; it is NOT cryptographically strong and must not be reused
 * outside the simulator.
 */

#ifndef SECUREDIMM_CRYPTO_KEY_EXCHANGE_HH
#define SECUREDIMM_CRYPTO_KEY_EXCHANGE_HH

#include <cstdint>

#include "crypto/aes128.hh"
#include "util/rng.hh"

namespace secdimm::crypto
{

/** Group modulus: the Mersenne prime 2^61 - 1. */
inline constexpr std::uint64_t dhModulus = (std::uint64_t{1} << 61) - 1;

/** Generator of a large subgroup mod dhModulus. */
inline constexpr std::uint64_t dhGenerator = 3;

/** Private/public half of a DH exchange. */
struct DhKeyPair
{
    std::uint64_t priv;
    std::uint64_t pub;
};

/** Modular exponentiation base^exp mod dhModulus. */
std::uint64_t dhModPow(std::uint64_t base, std::uint64_t exp);

/** Generate a key pair from simulator randomness. */
DhKeyPair dhGenerate(Rng &rng);

/** Shared secret = other_pub ^ my_priv. */
std::uint64_t dhShared(std::uint64_t my_priv, std::uint64_t other_pub);

/**
 * Derive a direction-specific AES session key from the shared secret.
 * @param label 0 = upstream (CPU->SDIMM), 1 = downstream, etc.
 */
Aes128Key deriveSessionKey(std::uint64_t shared, std::uint64_t label);

} // namespace secdimm::crypto

#endif // SECUREDIMM_CRYPTO_KEY_EXCHANGE_HH
