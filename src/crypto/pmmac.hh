/**
 * @file
 * PMMAC-style counter-based message authentication (Fletcher et al.,
 * Freecursive ORAM).  Every bucket (or bucket slice, in Split ORAM)
 * carries a monotonically increasing counter; the MAC binds
 * (identity, counter, payload) so replaying an old ciphertext fails
 * verification without any Merkle tree over the data.
 */

#ifndef SECUREDIMM_CRYPTO_PMMAC_HH
#define SECUREDIMM_CRYPTO_PMMAC_HH

#include <cstdint>
#include <vector>

#include "crypto/cmac.hh"

namespace secdimm::crypto
{

/** Truncated 64-bit MAC tag as stored in bucket metadata. */
using Tag64 = std::uint64_t;

/** PMMAC tagger/verifier bound to one key. */
class Pmmac
{
  public:
    explicit Pmmac(const Aes128Key &key) : cmac_(key) {}

    /**
     * Compute the 64-bit tag for payload @p data under identity
     * @p id and freshness counter @p counter.
     */
    Tag64 tag(std::uint64_t id, std::uint64_t counter,
              const std::uint8_t *data, std::size_t len) const;

    /** Verify; true iff the tag matches. */
    bool verify(std::uint64_t id, std::uint64_t counter,
                const std::uint8_t *data, std::size_t len,
                Tag64 expected) const;

  private:
    Cmac cmac_;
};

} // namespace secdimm::crypto

#endif // SECUREDIMM_CRYPTO_PMMAC_HH
