/**
 * @file
 * PMMAC-style counter-based message authentication (Fletcher et al.,
 * Freecursive ORAM).  Every bucket (or bucket slice, in Split ORAM)
 * carries a monotonically increasing counter; the MAC binds
 * (identity, counter, payload) so replaying an old ciphertext fails
 * verification without any Merkle tree over the data.
 *
 * The (id || counter) header is exactly one AES block, fed to CMAC
 * via Cmac::computeWithPrefix so no tag ever allocates or copies the
 * payload.  tagBatch()/verifyBatch() authenticate a whole ORAM path
 * in one batched CMAC pass (see cmac.hh).
 */

#ifndef SECUREDIMM_CRYPTO_PMMAC_HH
#define SECUREDIMM_CRYPTO_PMMAC_HH

#include <cstdint>
#include <vector>

#include "crypto/cmac.hh"

namespace secdimm::crypto
{

/** Truncated 64-bit MAC tag as stored in bucket metadata. */
using Tag64 = std::uint64_t;

/** One (identity, counter, payload) item in a PMMAC batch. */
struct PmmacItem
{
    std::uint64_t id = 0;
    std::uint64_t counter = 0;
    const std::uint8_t *data = nullptr;
    std::size_t len = 0;
};

/** PMMAC tagger/verifier bound to one key. */
class Pmmac
{
  public:
    explicit Pmmac(const Aes128Key &key) : cmac_(key) {}

    /**
     * Compute the 64-bit tag for payload @p data under identity
     * @p id and freshness counter @p counter.
     */
    Tag64 tag(std::uint64_t id, std::uint64_t counter,
              const std::uint8_t *data, std::size_t len) const;

    /** Verify; true iff the tag matches. */
    bool verify(std::uint64_t id, std::uint64_t counter,
                const std::uint8_t *data, std::size_t len,
                Tag64 expected) const;

    /** Compute @p n tags in one batched CMAC pass. */
    void tagBatch(const PmmacItem *items, std::size_t n,
                  Tag64 *tags) const;

    /**
     * Verify @p n items against @p expected in one batched pass;
     * @p ok[i] is set per item.  Returns true iff every item passed.
     */
    bool verifyBatch(const PmmacItem *items, std::size_t n,
                     const Tag64 *expected, bool *ok) const;

    /** Backend the underlying AES instance dispatches to. */
    AesImpl impl() const { return cmac_.impl(); }

    /** Fold this instance's work into @p t (crypto.* metrics). */
    void collectTotals(CryptoTotals &t) const { cmac_.collectTotals(t); }

  private:
    Cmac cmac_;
};

} // namespace secdimm::crypto

#endif // SECUREDIMM_CRYPTO_PMMAC_HH
