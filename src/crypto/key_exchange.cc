#include "crypto/key_exchange.hh"

#include "crypto/cmac.hh"

namespace secdimm::crypto
{

namespace
{

std::uint64_t
modMul(std::uint64_t a, std::uint64_t b)
{
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(a) * b) % dhModulus);
}

} // namespace

std::uint64_t
dhModPow(std::uint64_t base, std::uint64_t exp)
{
    std::uint64_t result = 1;
    std::uint64_t cur = base % dhModulus;
    while (exp != 0) {
        if (exp & 1)
            result = modMul(result, cur);
        cur = modMul(cur, cur);
        exp >>= 1;
    }
    return result;
}

DhKeyPair
dhGenerate(Rng &rng)
{
    DhKeyPair kp;
    // Private exponent in [2, p-2].
    kp.priv = 2 + rng.nextBelow(dhModulus - 3);
    kp.pub = dhModPow(dhGenerator, kp.priv);
    return kp;
}

std::uint64_t
dhShared(std::uint64_t my_priv, std::uint64_t other_pub)
{
    return dhModPow(other_pub, my_priv);
}

Aes128Key
deriveSessionKey(std::uint64_t shared, std::uint64_t label)
{
    // KDF: AES-CMAC of the label under a key built from the shared
    // secret -- deterministic on both ends, direction-separated.
    const Aes128Key kdf_key = makeKey(shared, ~shared);
    Cmac prf(kdf_key);
    std::uint8_t msg[16]{};
    for (int i = 0; i < 8; ++i)
        msg[i] = static_cast<std::uint8_t>(label >> (8 * i));
    const Aes128Block out = prf.compute(msg, sizeof(msg));
    Aes128Key key;
    for (std::size_t i = 0; i < key.size(); ++i)
        key[i] = out[i];
    return key;
}

} // namespace secdimm::crypto
