#include "crypto/cmac.hh"

#include <cstring>

namespace secdimm::crypto
{

namespace
{

/** Left-shift a 16-byte value by one bit, GF(2^128) doubling step. */
Aes128Block
leftShiftOne(const Aes128Block &in, bool &carry_out)
{
    Aes128Block out{};
    std::uint8_t carry = 0;
    for (int i = 15; i >= 0; --i) {
        out[i] = static_cast<std::uint8_t>((in[i] << 1) | carry);
        carry = in[i] >> 7;
    }
    carry_out = carry != 0;
    return out;
}

Aes128Block
generateSubkey(const Aes128Block &l)
{
    bool carry = false;
    Aes128Block k = leftShiftOne(l, carry);
    if (carry)
        k[15] ^= 0x87; // Rb constant for 128-bit blocks.
    return k;
}

} // namespace

Cmac::Cmac(const Aes128Key &key) : aes_(key)
{
    const Aes128Block l = aes_.encrypt(Aes128Block{});
    k1_ = generateSubkey(l);
    k2_ = generateSubkey(k1_);
}

Aes128Block
Cmac::compute(const std::uint8_t *msg, std::size_t len) const
{
    const std::size_t n_blocks = len == 0 ? 1 : (len + 15) / 16;
    const bool last_complete = len != 0 && len % 16 == 0;

    Aes128Block x{};
    for (std::size_t i = 0; i + 1 < n_blocks; ++i) {
        Aes128Block m;
        std::memcpy(m.data(), msg + 16 * i, 16);
        x = aes_.encrypt(blockXor(x, m));
    }

    Aes128Block last{};
    if (last_complete) {
        std::memcpy(last.data(), msg + 16 * (n_blocks - 1), 16);
        last = blockXor(last, k1_);
    } else {
        const std::size_t rem = len - 16 * (n_blocks - 1);
        if (len != 0)
            std::memcpy(last.data(), msg + 16 * (n_blocks - 1), rem);
        last[rem] = 0x80;
        last = blockXor(last, k2_);
    }
    return aes_.encrypt(blockXor(x, last));
}

bool
Cmac::tagsEqual(const Aes128Block &a, const Aes128Block &b)
{
    std::uint8_t diff = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        diff |= static_cast<std::uint8_t>(a[i] ^ b[i]);
    return diff == 0;
}

} // namespace secdimm::crypto
