#include "crypto/cmac.hh"

#include <cstring>
#include <vector>

namespace secdimm::crypto
{

namespace
{

/** Left-shift a 16-byte value by one bit, GF(2^128) doubling step. */
Aes128Block
leftShiftOne(const Aes128Block &in, bool &carry_out)
{
    Aes128Block out{};
    std::uint8_t carry = 0;
    for (int i = 15; i >= 0; --i) {
        out[i] = static_cast<std::uint8_t>((in[i] << 1) | carry);
        carry = in[i] >> 7;
    }
    carry_out = carry != 0;
    return out;
}

Aes128Block
generateSubkey(const Aes128Block &l)
{
    bool carry = false;
    Aes128Block k = leftShiftOne(l, carry);
    if (carry)
        k[15] ^= 0x87; // Rb constant for 128-bit blocks.
    return k;
}

/** Full (non-final) block @p i of prefix||msg; always 16 bytes. */
void
middleBlock(const CmacJob &job, std::size_t i, std::uint8_t *out)
{
    const std::size_t pre = job.prefix != nullptr ? 16 : 0;
    if (pre != 0 && i == 0)
        std::memcpy(out, job.prefix, 16);
    else
        std::memcpy(out, job.msg + 16 * i - pre, 16);
}

/** Final block of prefix||msg, padded and subkey-mixed per RFC 4493. */
Aes128Block
finalBlock(const CmacJob &job, const Aes128Block &k1,
           const Aes128Block &k2)
{
    const std::size_t pre = job.prefix != nullptr ? 16 : 0;
    const std::size_t total = pre + job.len;
    const std::size_t n_blocks = total == 0 ? 1 : (total + 15) / 16;
    const std::size_t start = 16 * (n_blocks - 1);

    Aes128Block last{};
    if (total != 0 && total % 16 == 0) {
        if (pre != 0 && start == 0)
            std::memcpy(last.data(), job.prefix, 16);
        else
            std::memcpy(last.data(), job.msg + start - pre, 16);
        return blockXor(last, k1);
    }
    // Incomplete final block never overlaps the 16-byte prefix: a
    // non-empty prefix forces total >= 16, pushing start past it.
    const std::size_t rem = total - start;
    if (rem != 0)
        std::memcpy(last.data(), job.msg + start - pre, rem);
    last[rem] = 0x80;
    return blockXor(last, k2);
}

} // namespace

Cmac::Cmac(const Aes128Key &key) : aes_(key)
{
    const Aes128Block l = aes_.encrypt(Aes128Block{});
    k1_ = generateSubkey(l);
    k2_ = generateSubkey(k1_);
}

Aes128Block
Cmac::computeOne(const std::uint8_t *prefix, const std::uint8_t *msg,
                 std::size_t len) const
{
    const CmacJob job{prefix, msg, len};
    const std::size_t pre = prefix != nullptr ? 16 : 0;
    const std::size_t total = pre + len;
    const std::size_t n_blocks = total == 0 ? 1 : (total + 15) / 16;

    Aes128Block x{};
    std::uint8_t m[16];
    for (std::size_t i = 0; i + 1 < n_blocks; ++i) {
        middleBlock(job, i, m);
        for (std::size_t b = 0; b < 16; ++b)
            x[b] ^= m[b];
        x = aes_.encrypt(x);
    }
    return aes_.encrypt(blockXor(x, finalBlock(job, k1_, k2_)));
}

Aes128Block
Cmac::compute(const std::uint8_t *msg, std::size_t len) const
{
    ++tags_;
    return computeOne(nullptr, msg, len);
}

Aes128Block
Cmac::computeWithPrefix(const std::uint8_t *prefix,
                        const std::uint8_t *msg, std::size_t len) const
{
    ++tags_;
    return computeOne(prefix, msg, len);
}

void
Cmac::computeBatch(const CmacJob *jobs, std::size_t n,
                   Aes128Block *tags) const
{
    if (n == 0)
        return;
    ++batchCalls_;
    batchTags_ += n;
    tags_ += n;

    std::vector<Aes128Block> x(n, Aes128Block{});
    std::vector<std::size_t> blocks(n);
    for (std::size_t j = 0; j < n; ++j) {
        const std::size_t pre = jobs[j].prefix != nullptr ? 16 : 0;
        const std::size_t total = pre + jobs[j].len;
        blocks[j] = total == 0 ? 1 : (total + 15) / 16;
    }

    // Advance every chain in lockstep: each round gathers one full
    // block per still-active chain, XORs in the running state, runs a
    // single batched AES call, and scatters the results back.
    std::vector<std::uint8_t> buf(16 * n);
    std::vector<std::size_t> active(n);
    for (std::size_t round = 0;; ++round) {
        std::size_t na = 0;
        for (std::size_t j = 0; j < n; ++j)
            if (round + 1 < blocks[j])
                active[na++] = j;
        if (na == 0)
            break;
        for (std::size_t i = 0; i < na; ++i) {
            std::uint8_t *slot = buf.data() + 16 * i;
            middleBlock(jobs[active[i]], round, slot);
            const Aes128Block &xi = x[active[i]];
            for (std::size_t b = 0; b < 16; ++b)
                slot[b] ^= xi[b];
        }
        aes_.encryptBlocks(buf.data(), buf.data(), na);
        for (std::size_t i = 0; i < na; ++i)
            std::memcpy(x[active[i]].data(), buf.data() + 16 * i, 16);
    }

    for (std::size_t j = 0; j < n; ++j) {
        const Aes128Block last = finalBlock(jobs[j], k1_, k2_);
        std::uint8_t *slot = buf.data() + 16 * j;
        for (std::size_t b = 0; b < 16; ++b)
            slot[b] = static_cast<std::uint8_t>(x[j][b] ^ last[b]);
    }
    aes_.encryptBlocks(buf.data(), buf.data(), n);
    for (std::size_t j = 0; j < n; ++j)
        std::memcpy(tags[j].data(), buf.data() + 16 * j, 16);
}

bool
Cmac::tagsEqual(const Aes128Block &a, const Aes128Block &b)
{
    std::uint8_t diff = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        diff |= static_cast<std::uint8_t>(a[i] ^ b[i]);
    return diff == 0;
}

} // namespace secdimm::crypto
