/**
 * @file
 * From-scratch AES-128 block cipher (FIPS-197).  This is the primitive
 * behind the CPU<->SDIMM link encryption, ORAM bucket encryption
 * (counter mode), and PMMAC (CMAC) in the reproduction.
 *
 * The implementation is a straightforward byte-oriented version (S-box
 * + xtime MixColumns); it favors clarity and testability over speed,
 * which is appropriate for a simulator where crypto latency is modeled
 * separately (21 controller cycles per the paper's Table II).
 */

#ifndef SECUREDIMM_CRYPTO_AES128_HH
#define SECUREDIMM_CRYPTO_AES128_HH

#include <array>
#include <cstdint>

namespace secdimm::crypto
{

/** 128-bit key/block as a byte array. */
using Aes128Block = std::array<std::uint8_t, 16>;
using Aes128Key = std::array<std::uint8_t, 16>;

/**
 * AES-128 with a pre-expanded key schedule.  Thread-compatible: const
 * methods are safe to call concurrently.
 */
class Aes128
{
  public:
    explicit Aes128(const Aes128Key &key) { rekey(key); }

    /** Re-run key expansion with a new key. */
    void rekey(const Aes128Key &key);

    /** Encrypt one 16-byte block. */
    Aes128Block encrypt(const Aes128Block &plaintext) const;

    /** Decrypt one 16-byte block. */
    Aes128Block decrypt(const Aes128Block &ciphertext) const;

  private:
    /** 11 round keys of 16 bytes each. */
    std::array<std::uint8_t, 176> roundKeys_;
};

/** Build an Aes128Key from two 64-bit words (tests, key derivation). */
Aes128Key makeKey(std::uint64_t hi, std::uint64_t lo);

/** XOR two 16-byte blocks. */
Aes128Block blockXor(const Aes128Block &a, const Aes128Block &b);

} // namespace secdimm::crypto

#endif // SECUREDIMM_CRYPTO_AES128_HH
