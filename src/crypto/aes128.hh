/**
 * @file
 * AES-128 block cipher behind a runtime-dispatched backend.  This is
 * the primitive under the CPU<->SDIMM link encryption, ORAM bucket
 * encryption (counter mode), and CMAC/PMMAC in the reproduction.
 *
 * Three bit-exact implementations sit behind the one Aes128 class:
 * the portable byte-oriented FIPS-197 table path (always available),
 * x86 AES-NI, and the ARMv8 Crypto Extension.  Each instance picks
 * its backend at construction via cpu_features.hh (CPUID/HWCAP
 * detection, `SDIMM_AES_IMPL` env override, forceAesImpl() test
 * hook).  The hardware paths run the batch API (encryptBlocks) with
 * rounds interleaved eight blocks wide, which is what makes pipelined
 * CTR keystreams and batched path MACs fast; see docs/PERFORMANCE.md
 * for the measured before/after and the dispatch design.
 */

#ifndef SECUREDIMM_CRYPTO_AES128_HH
#define SECUREDIMM_CRYPTO_AES128_HH

#include <array>
#include <cstddef>
#include <cstdint>

#include "crypto/cpu_features.hh"

namespace secdimm::crypto
{

/** 128-bit key/block as a byte array. */
using Aes128Block = std::array<std::uint8_t, 16>;
using Aes128Key = std::array<std::uint8_t, 16>;

/**
 * Work counters every crypto object accumulates and the facade
 * aggregates into the `crypto.*` metric family (docs/METRICS.md).
 * Kept per instance -- not process-global -- so identically seeded
 * runs export byte-identical metrics (tests/verify/test_determinism).
 */
struct CryptoTotals
{
    std::uint64_t aesBlocks = 0;     ///< AES block ops, any backend.
    std::uint64_t ctrBytes = 0;      ///< Bytes CTR-transformed.
    std::uint64_t macTags = 0;       ///< CMAC tags computed (all APIs).
    std::uint64_t macBatchCalls = 0; ///< Batched-MAC invocations.
    std::uint64_t macBatchTags = 0;  ///< Tags produced by batch calls.

    void
    add(const CryptoTotals &o)
    {
        aesBlocks += o.aesBlocks;
        ctrBytes += o.ctrBytes;
        macTags += o.macTags;
        macBatchCalls += o.macBatchCalls;
        macBatchTags += o.macBatchTags;
    }
};

/**
 * AES-128 with a pre-expanded key schedule and a backend chosen at
 * construction/rekey time.  Thread-compatible: const methods are safe
 * to call concurrently from threads that each own distinct instances;
 * the mutable work counter makes sharing one instance across threads
 * a (benign-value) data race, and no caller does.
 */
class Aes128
{
  public:
    explicit Aes128(const Aes128Key &key) { rekey(key); }

    /** Re-run key expansion (and backend selection) with a new key. */
    void rekey(const Aes128Key &key);

    /** Encrypt one 16-byte block. */
    Aes128Block encrypt(const Aes128Block &plaintext) const;

    /** Decrypt one 16-byte block. */
    Aes128Block decrypt(const Aes128Block &ciphertext) const;

    /**
     * ECB-encrypt @p n independent 16-byte blocks from @p in to
     * @p out (in == out allowed; partial overlap is not).  On the
     * hardware backends the rounds are interleaved up to eight blocks
     * wide, hiding the AES round latency -- this is the fast path
     * under CTR keystream generation and batched CMAC chains.
     */
    void encryptBlocks(const std::uint8_t *in, std::uint8_t *out,
                       std::size_t n) const;

    /** Backend this instance dispatches to. */
    AesImpl impl() const { return impl_; }

    /** AES block operations this instance has executed. */
    std::uint64_t blockOps() const { return blockOps_; }

    /** Fold this instance's work into @p t (crypto.* metrics). */
    void collectTotals(CryptoTotals &t) const { t.aesBlocks += blockOps_; }

  private:
    /** 11 round keys of 16 bytes each (FIPS-197 schedule). */
    alignas(16) std::array<std::uint8_t, 176> roundKeys_;
    /** Equivalent-inverse schedule for hardware decrypt paths. */
    alignas(16) std::array<std::uint8_t, 176> invRoundKeys_;
    AesImpl impl_ = AesImpl::Table;
    mutable std::uint64_t blockOps_ = 0;
};

/** Build an Aes128Key from two 64-bit words (tests, key derivation). */
Aes128Key makeKey(std::uint64_t hi, std::uint64_t lo);

/** XOR two 16-byte blocks. */
Aes128Block blockXor(const Aes128Block &a, const Aes128Block &b);

} // namespace secdimm::crypto

#endif // SECUREDIMM_CRYPTO_AES128_HH
