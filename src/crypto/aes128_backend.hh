/**
 * @file
 * Internal contract between the Aes128 dispatch facade and the
 * hardware backends (aes128_ni.cc, aes128_armv8.cc).  Each backend
 * consumes the same 176-byte FIPS-197 key schedule the table path
 * expands, so every implementation is bit-exact interchangeable; the
 * hardware paths additionally pre-compute an InvMixColumns'd schedule
 * for the equivalent-inverse-cipher decrypt instructions.
 *
 * Not installed as public API -- include crypto/aes128.hh instead.
 */

#ifndef SECUREDIMM_CRYPTO_AES128_BACKEND_HH
#define SECUREDIMM_CRYPTO_AES128_BACKEND_HH

#include <cstddef>
#include <cstdint>

namespace secdimm::crypto::detail
{

/** Compile-time + runtime availability of x86 AES-NI. */
bool aesniAvailable();

/**
 * inv_rk[0..175] := decrypt schedule for AESDEC: round keys reversed,
 * AESIMC applied to the nine middle keys.  Requires aesniAvailable().
 */
void aesniExpandInv(const std::uint8_t *rk, std::uint8_t *inv_rk);

/**
 * ECB-encrypt @p n independent 16-byte blocks, rounds interleaved
 * eight blocks wide so the aesenc pipeline stays full.  in == out is
 * allowed; distinct overlap is not.
 */
void aesniEncryptBlocks(const std::uint8_t *rk, const std::uint8_t *in,
                        std::uint8_t *out, std::size_t n);

/** Decrypt one block with the aesniExpandInv() schedule. */
void aesniDecryptBlock(const std::uint8_t *inv_rk,
                       const std::uint8_t *in, std::uint8_t *out);

/** Compile-time + runtime availability of the ARMv8 AES extension. */
bool armv8Available();

/** ARMv8 analogues of the three entry points above. */
void armv8ExpandInv(const std::uint8_t *rk, std::uint8_t *inv_rk);
void armv8EncryptBlocks(const std::uint8_t *rk, const std::uint8_t *in,
                        std::uint8_t *out, std::size_t n);
void armv8DecryptBlock(const std::uint8_t *inv_rk,
                       const std::uint8_t *in, std::uint8_t *out);

} // namespace secdimm::crypto::detail

#endif // SECUREDIMM_CRYPTO_AES128_BACKEND_HH
