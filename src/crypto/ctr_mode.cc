#include "crypto/ctr_mode.hh"

#include <algorithm>
#include <cstring>

namespace secdimm::crypto
{

namespace
{

/** Keystream lanes generated per encryptBlocks call. */
constexpr std::size_t kCtrLanes = 8;

/** Layout: nonce[0:8) | counter[8:12) folded | lane[12:16). */
void
buildCtrBlock(std::uint8_t *out, std::uint64_t nonce,
              std::uint64_t counter, std::uint32_t lane)
{
    std::memcpy(out, &nonce, 8);
    const std::uint32_t ctr_lo = static_cast<std::uint32_t>(counter);
    const std::uint32_t ctr_hi =
        static_cast<std::uint32_t>(counter >> 32) ^ lane;
    std::memcpy(out + 8, &ctr_lo, 4);
    std::memcpy(out + 12, &ctr_hi, 4);
}

} // namespace

Aes128Block
CtrCipher::pad(std::uint64_t nonce, std::uint64_t counter,
               std::uint32_t lane) const
{
    Aes128Block ctr_block{};
    buildCtrBlock(ctr_block.data(), nonce, counter, lane);
    return aes_.encrypt(ctr_block);
}

void
CtrCipher::transformBlock(BlockData &data, std::uint64_t nonce,
                          std::uint64_t counter) const
{
    transformBuffer(data.data(), data.size(), nonce, counter);
}

void
CtrCipher::transformBuffer(std::uint8_t *data, std::size_t len,
                           std::uint64_t nonce,
                           std::uint64_t counter) const
{
    bytes_ += len;
    std::uint8_t ctrs[16 * kCtrLanes];
    std::uint8_t pads[16 * kCtrLanes];
    std::uint32_t lane = 0;
    std::size_t off = 0;
    while (off < len) {
        const std::size_t lanes = std::min<std::size_t>(
            kCtrLanes, (len - off + 15) / 16);
        for (std::size_t i = 0; i < lanes; ++i)
            buildCtrBlock(ctrs + 16 * i, nonce, counter,
                          lane + static_cast<std::uint32_t>(i));
        aes_.encryptBlocks(ctrs, pads, lanes);
        for (std::size_t i = 0; i < lanes; ++i) {
            const std::size_t n = std::min<std::size_t>(16, len - off);
            const std::uint8_t *p = pads + 16 * i;
            for (std::size_t j = 0; j < n; ++j)
                data[off + j] ^= p[j];
            off += n;
        }
        lane += static_cast<std::uint32_t>(lanes);
    }
}

} // namespace secdimm::crypto
