#include "crypto/ctr_mode.hh"

#include <cstring>

namespace secdimm::crypto
{

Aes128Block
CtrCipher::pad(std::uint64_t nonce, std::uint64_t counter,
               std::uint32_t lane) const
{
    Aes128Block ctr_block{};
    // Layout: nonce[0:8) | counter[8:12) folded | lane[12:16).
    std::memcpy(ctr_block.data(), &nonce, 8);
    const std::uint32_t ctr_lo = static_cast<std::uint32_t>(counter);
    const std::uint32_t ctr_hi =
        static_cast<std::uint32_t>(counter >> 32) ^ lane;
    std::memcpy(ctr_block.data() + 8, &ctr_lo, 4);
    std::memcpy(ctr_block.data() + 12, &ctr_hi, 4);
    return aes_.encrypt(ctr_block);
}

void
CtrCipher::transformBlock(BlockData &data, std::uint64_t nonce,
                          std::uint64_t counter) const
{
    transformBuffer(data.data(), data.size(), nonce, counter);
}

void
CtrCipher::transformBuffer(std::uint8_t *data, std::size_t len,
                           std::uint64_t nonce,
                           std::uint64_t counter) const
{
    std::uint32_t lane = 0;
    std::size_t off = 0;
    while (off < len) {
        const Aes128Block p = pad(nonce, counter, lane++);
        const std::size_t n = std::min<std::size_t>(16, len - off);
        for (std::size_t i = 0; i < n; ++i)
            data[off + i] ^= p[i];
        off += n;
    }
}

} // namespace secdimm::crypto
