#include "crypto/cpu_features.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>

#include "crypto/aes128_backend.hh"

namespace secdimm::crypto
{

namespace
{

/** Test-hook override; std::nullopt means "resolve normally". */
std::optional<AesImpl> g_forced;

AesImpl
bestSupported()
{
    if (detail::aesniAvailable())
        return AesImpl::AesNi;
    if (detail::armv8Available())
        return AesImpl::Armv8;
    return AesImpl::Table;
}

bool
implSupported(AesImpl impl)
{
    switch (impl) {
      case AesImpl::Table:
        return true;
      case AesImpl::AesNi:
        return detail::aesniAvailable();
      case AesImpl::Armv8:
        return detail::armv8Available();
    }
    return false;
}

/** Resolve SDIMM_AES_IMPL once; warn (once) on unsupported requests. */
AesImpl
resolveFromEnv()
{
    const char *req = std::getenv("SDIMM_AES_IMPL");
    if (req == nullptr || std::strcmp(req, "auto") == 0 ||
        req[0] == '\0') {
        return bestSupported();
    }
    AesImpl want = AesImpl::Table;
    if (std::strcmp(req, "table") == 0) {
        want = AesImpl::Table;
    } else if (std::strcmp(req, "aesni") == 0) {
        want = AesImpl::AesNi;
    } else if (std::strcmp(req, "armv8") == 0) {
        want = AesImpl::Armv8;
    } else {
        std::fprintf(stderr,
                     "securedimm: unknown SDIMM_AES_IMPL=%s "
                     "(want table|aesni|armv8|auto); using auto\n",
                     req);
        return bestSupported();
    }
    if (!implSupported(want)) {
        std::fprintf(stderr,
                     "securedimm: SDIMM_AES_IMPL=%s not supported on "
                     "this CPU; using %s\n",
                     req, aesImplName(bestSupported()));
        return bestSupported();
    }
    return want;
}

} // namespace

const char *
aesImplName(AesImpl impl)
{
    switch (impl) {
      case AesImpl::Table:
        return "table";
      case AesImpl::AesNi:
        return "aesni";
      case AesImpl::Armv8:
        return "armv8";
    }
    return "?";
}

bool
aesNiSupported()
{
    return detail::aesniAvailable();
}

bool
armv8CryptoSupported()
{
    return detail::armv8Available();
}

AesImpl
activeAesImpl()
{
    if (g_forced.has_value())
        return *g_forced;
    // Env + CPUID resolution is stable for the process lifetime.
    static const AesImpl resolved = resolveFromEnv();
    return resolved;
}

void
forceAesImpl(AesImpl impl)
{
    g_forced = implSupported(impl) ? impl : AesImpl::Table;
}

void
clearForcedAesImpl()
{
    g_forced.reset();
}

} // namespace secdimm::crypto
