#include "crypto/cpu_features.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>

#include "crypto/aes128_backend.hh"
#include "util/logging.hh"

namespace secdimm::crypto
{

namespace
{

/** Test-hook override; std::nullopt means "resolve normally". */
std::optional<AesImpl> g_forced;

AesImpl
bestSupported()
{
    if (detail::aesniAvailable())
        return AesImpl::AesNi;
    if (detail::armv8Available())
        return AesImpl::Armv8;
    return AesImpl::Table;
}

bool
implSupported(AesImpl impl)
{
    switch (impl) {
      case AesImpl::Table:
        return true;
      case AesImpl::AesNi:
        return detail::aesniAvailable();
      case AesImpl::Armv8:
        return detail::armv8Available();
    }
    return false;
}

/**
 * Resolve SDIMM_AES_IMPL once.  An unknown value is fatal (a typo
 * must not silently select a different AES path); a known-but-
 * unsupported backend warns once and falls back to auto.
 */
AesImpl
resolveFromEnv()
{
    const char *req = std::getenv("SDIMM_AES_IMPL");
    const std::optional<AesImplRequest> parsed = parseAesImplSetting(req);
    if (!parsed.has_value()) {
        fatal("invalid SDIMM_AES_IMPL=\"%s\" "
              "(want table|aesni|armv8|auto)",
              req);
    }
    if (parsed->isAuto)
        return bestSupported();
    if (!implSupported(parsed->impl)) {
        std::fprintf(stderr,
                     "securedimm: SDIMM_AES_IMPL=%s not supported on "
                     "this CPU; using %s\n",
                     req, aesImplName(bestSupported()));
        return bestSupported();
    }
    return parsed->impl;
}

} // namespace

std::optional<AesImplRequest>
parseAesImplSetting(const char *value)
{
    if (value == nullptr || value[0] == '\0' ||
        std::strcmp(value, "auto") == 0) {
        return AesImplRequest{true, AesImpl::Table};
    }
    if (std::strcmp(value, "table") == 0)
        return AesImplRequest{false, AesImpl::Table};
    if (std::strcmp(value, "aesni") == 0)
        return AesImplRequest{false, AesImpl::AesNi};
    if (std::strcmp(value, "armv8") == 0)
        return AesImplRequest{false, AesImpl::Armv8};
    return std::nullopt;
}

const char *
aesImplName(AesImpl impl)
{
    switch (impl) {
      case AesImpl::Table:
        return "table";
      case AesImpl::AesNi:
        return "aesni";
      case AesImpl::Armv8:
        return "armv8";
    }
    return "?";
}

bool
aesNiSupported()
{
    return detail::aesniAvailable();
}

bool
armv8CryptoSupported()
{
    return detail::armv8Available();
}

AesImpl
activeAesImpl()
{
    if (g_forced.has_value())
        return *g_forced;
    // Env + CPUID resolution is stable for the process lifetime.
    static const AesImpl resolved = resolveFromEnv();
    return resolved;
}

void
forceAesImpl(AesImpl impl)
{
    g_forced = implSupported(impl) ? impl : AesImpl::Table;
}

void
clearForcedAesImpl()
{
    g_forced.reset();
}

} // namespace secdimm::crypto
