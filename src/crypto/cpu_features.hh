/**
 * @file
 * Runtime CPU-feature detection and AES implementation dispatch.  The
 * crypto layer ships three bit-exact AES-128 backends -- the portable
 * FIPS-197 table path, x86 AES-NI, and the ARMv8 Crypto Extension --
 * and every Aes128 instance picks one at construction:
 *
 *   1. `SDIMM_AES_IMPL` env knob (`table`, `aesni`, `armv8`, `auto`)
 *      if set.  Any other value is a fatal configuration error -- a
 *      typo must not silently run a different (slower or less tested)
 *      AES path.  A recognised backend the CPU cannot execute falls
 *      back to auto with one stderr warning: that is an environment
 *      property, not a config typo.
 *   2. Otherwise the best implementation the CPU supports (CPUID on
 *      x86, HWCAP on aarch64), with the table path as the
 *      always-available fallback.
 *
 * Tests force a specific backend with forceAesImpl(); the choice
 * applies to Aes128 objects constructed (or rekeyed) afterwards.
 */

#ifndef SECUREDIMM_CRYPTO_CPU_FEATURES_HH
#define SECUREDIMM_CRYPTO_CPU_FEATURES_HH

#include <optional>

namespace secdimm::crypto
{

/** Which AES-128 round-function implementation executes. */
enum class AesImpl
{
    Table = 0, ///< Portable byte-oriented FIPS-197 (always available).
    AesNi = 1, ///< x86 AESENC/AESDEC via SSE intrinsics.
    Armv8 = 2, ///< ARMv8-A Crypto Extension (AESE/AESD + NEON).
};

/** Human-readable name ("table", "aesni", "armv8"). */
const char *aesImplName(AesImpl impl);

/** A parsed SDIMM_AES_IMPL value. */
struct AesImplRequest
{
    /** "auto" (or unset/empty): pick the best supported backend. */
    bool isAuto = false;
    /** The requested backend; meaningless when isAuto. */
    AesImpl impl = AesImpl::Table;
};

/**
 * Parse one SDIMM_AES_IMPL setting.  nullptr, "" and "auto" yield
 * auto; "table"/"aesni"/"armv8" yield that backend (matching is exact
 * and case-sensitive -- "AESNI", "aes-ni" and trailing whitespace are
 * all rejected); anything else returns nullopt.  Pure and exposed so
 * the accepted grammar is unit-testable without death tests.
 */
std::optional<AesImplRequest> parseAesImplSetting(const char *value);

/** True iff this CPU executes AES-NI instructions. */
bool aesNiSupported();

/** True iff this CPU executes the ARMv8 AES instructions. */
bool armv8CryptoSupported();

/**
 * The implementation new Aes128 instances will use: the forced value
 * if a test installed one, else the SDIMM_AES_IMPL resolution, else
 * the best supported backend.
 */
AesImpl activeAesImpl();

/**
 * Test hook: pin the implementation for subsequently constructed
 * Aes128 objects; clearForcedAesImpl() returns to auto resolution.
 * Forcing an unsupported backend falls back to Table.
 */
void forceAesImpl(AesImpl impl);
void clearForcedAesImpl();

} // namespace secdimm::crypto

#endif // SECUREDIMM_CRYPTO_CPU_FEATURES_HH
