#include "crypto/pmmac.hh"

#include <cstring>

namespace secdimm::crypto
{

Tag64
Pmmac::tag(std::uint64_t id, std::uint64_t counter,
           const std::uint8_t *data, std::size_t len) const
{
    std::vector<std::uint8_t> msg(16 + len);
    std::memcpy(msg.data(), &id, 8);
    std::memcpy(msg.data() + 8, &counter, 8);
    if (len != 0)
        std::memcpy(msg.data() + 16, data, len);
    const Aes128Block full = cmac_.compute(msg.data(), msg.size());
    Tag64 t;
    std::memcpy(&t, full.data(), 8);
    return t;
}

bool
Pmmac::verify(std::uint64_t id, std::uint64_t counter,
              const std::uint8_t *data, std::size_t len,
              Tag64 expected) const
{
    return tag(id, counter, data, len) == expected;
}

} // namespace secdimm::crypto
