#include "crypto/pmmac.hh"

#include <cstring>

namespace secdimm::crypto
{

namespace
{

/** The 16-byte (id || counter) header is exactly one CMAC block. */
void
buildHeader(std::uint8_t *out, std::uint64_t id, std::uint64_t counter)
{
    std::memcpy(out, &id, 8);
    std::memcpy(out + 8, &counter, 8);
}

Tag64
truncateTag(const Aes128Block &full)
{
    Tag64 t;
    std::memcpy(&t, full.data(), 8);
    return t;
}

/**
 * Branchless tag comparison: a data-dependent early exit (or a
 * compiler-synthesized branch on the XOR) would let an attacker with
 * a timing oracle distinguish near-miss forgeries from far ones.
 * Folding the 64-bit difference down to one bit keeps the instruction
 * stream identical for every (actual, expected) pair.
 */
bool
constantTimeTagEq(Tag64 a, Tag64 b)
{
    std::uint64_t diff = a ^ b;
    diff |= diff >> 32;
    diff |= diff >> 16;
    diff |= diff >> 8;
    diff |= diff >> 4;
    diff |= diff >> 2;
    diff |= diff >> 1;
    return (diff & 1u) == 0;
}

} // namespace

Tag64
Pmmac::tag(std::uint64_t id, std::uint64_t counter,
           const std::uint8_t *data, std::size_t len) const
{
    std::uint8_t header[16];
    buildHeader(header, id, counter);
    return truncateTag(cmac_.computeWithPrefix(header, data, len));
}

bool
Pmmac::verify(std::uint64_t id, std::uint64_t counter,
              const std::uint8_t *data, std::size_t len,
              Tag64 expected) const
{
    return constantTimeTagEq(tag(id, counter, data, len), expected);
}

void
Pmmac::tagBatch(const PmmacItem *items, std::size_t n,
                Tag64 *tags) const
{
    if (n == 0)
        return;
    std::vector<std::uint8_t> headers(16 * n);
    std::vector<CmacJob> jobs(n);
    for (std::size_t i = 0; i < n; ++i) {
        buildHeader(headers.data() + 16 * i, items[i].id,
                    items[i].counter);
        jobs[i] = CmacJob{headers.data() + 16 * i, items[i].data,
                          items[i].len};
    }
    std::vector<Aes128Block> full(n);
    cmac_.computeBatch(jobs.data(), n, full.data());
    for (std::size_t i = 0; i < n; ++i)
        tags[i] = truncateTag(full[i]);
}

bool
Pmmac::verifyBatch(const PmmacItem *items, std::size_t n,
                   const Tag64 *expected, bool *ok) const
{
    std::vector<Tag64> actual(n);
    tagBatch(items, n, actual.data());
    bool all = true;
    for (std::size_t i = 0; i < n; ++i) {
        ok[i] = constantTimeTagEq(actual[i], expected[i]);
        all = all && ok[i];
    }
    return all;
}

} // namespace secdimm::crypto
