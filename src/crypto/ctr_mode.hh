/**
 * @file
 * AES counter mode as used twice in the paper: (1) bucket encryption in
 * the ORAM tree keyed by (bucket id, bucket counter), and (2) the
 * CPU<->SDIMM link encryption keyed by per-direction session counters.
 *
 * The pad for 16-byte lane i of a message is
 *   AES_k(nonce || counter || i)
 * so a pad is never reused as long as the counter advances.  The lanes
 * of one buffer are independent, so the keystream is generated through
 * Aes128::encryptBlocks up to eight blocks at a time -- on the
 * hardware backends the AES rounds interleave across lanes and the
 * whole keystream costs little more than one block's latency.
 */

#ifndef SECUREDIMM_CRYPTO_CTR_MODE_HH
#define SECUREDIMM_CRYPTO_CTR_MODE_HH

#include <cstdint>
#include <vector>

#include "crypto/aes128.hh"
#include "util/types.hh"

namespace secdimm::crypto
{

/** Counter-mode cipher over 64-byte blocks and arbitrary buffers. */
class CtrCipher
{
  public:
    explicit CtrCipher(const Aes128Key &key) : aes_(key) {}

    /**
     * Encrypt (or decrypt -- the operation is an involution) a 64-byte
     * block in place using pad AES_k(nonce, counter, lane).
     *
     * @param data   the block to transform
     * @param nonce  spatial component (e.g. bucket id, slot index)
     * @param counter temporal component (bucket/session counter)
     */
    void transformBlock(BlockData &data, std::uint64_t nonce,
                        std::uint64_t counter) const;

    /** Same as transformBlock but over an arbitrary byte buffer. */
    void transformBuffer(std::uint8_t *data, std::size_t len,
                         std::uint64_t nonce,
                         std::uint64_t counter) const;

    /** Raw 16-byte pad for tests / MAC derivations. */
    Aes128Block pad(std::uint64_t nonce, std::uint64_t counter,
                    std::uint32_t lane) const;

    /** Backend the underlying AES instance dispatches to. */
    AesImpl impl() const { return aes_.impl(); }

    /** Fold this cipher's work into @p t (crypto.* metrics). */
    void
    collectTotals(CryptoTotals &t) const
    {
        aes_.collectTotals(t);
        t.ctrBytes += bytes_;
    }

  private:
    Aes128 aes_;
    mutable std::uint64_t bytes_ = 0;
};

} // namespace secdimm::crypto

#endif // SECUREDIMM_CRYPTO_CTR_MODE_HH
