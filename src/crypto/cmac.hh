/**
 * @file
 * AES-CMAC (RFC 4493), the MAC primitive underneath PMMAC bucket
 * authentication in the reproduction.
 *
 * Two additions beyond the textbook single-message API make the ORAM
 * hot path cheap:
 *
 *  - computeWithPrefix() logically prepends one 16-byte block to the
 *    message without concatenating buffers, so PMMAC's (id || counter)
 *    header never forces a per-tag allocation+copy.
 *  - computeBatch() runs many independent CMAC chains side by side,
 *    feeding each round of every chain through Aes128::encryptBlocks.
 *    One chain is inherently serial (CBC-style dependency), but a
 *    whole ORAM path's buckets are independent, which is exactly the
 *    parallelism the hardware AES backends need.
 */

#ifndef SECUREDIMM_CRYPTO_CMAC_HH
#define SECUREDIMM_CRYPTO_CMAC_HH

#include <cstddef>
#include <cstdint>

#include "crypto/aes128.hh"

namespace secdimm::crypto
{

/**
 * One message in a CMAC batch.  @p prefix is either null or exactly
 * 16 bytes that are MACed as if prepended to the @p len bytes at
 * @p msg -- the tag equals compute() over the concatenation.
 */
struct CmacJob
{
    const std::uint8_t *prefix = nullptr;
    const std::uint8_t *msg = nullptr;
    std::size_t len = 0;
};

/** AES-CMAC with cached subkeys K1/K2. */
class Cmac
{
  public:
    explicit Cmac(const Aes128Key &key);

    /** Compute the 16-byte MAC tag of @p len bytes at @p msg. */
    Aes128Block compute(const std::uint8_t *msg, std::size_t len) const;

    /**
     * MAC of the 16-byte block at @p prefix followed by @p len bytes
     * at @p msg, computed without materialising the concatenation.
     */
    Aes128Block computeWithPrefix(const std::uint8_t *prefix,
                                  const std::uint8_t *msg,
                                  std::size_t len) const;

    /**
     * Compute @p n independent tags at once.  Chains advance in
     * lockstep: round r of every still-active chain is one
     * encryptBlocks call, so the AES backend sees up to @p n
     * independent blocks per round.
     */
    void computeBatch(const CmacJob *jobs, std::size_t n,
                      Aes128Block *tags) const;

    /** Constant-time-ish tag comparison. */
    static bool tagsEqual(const Aes128Block &a, const Aes128Block &b);

    /** Backend the underlying AES instance dispatches to. */
    AesImpl impl() const { return aes_.impl(); }

    /** Fold this instance's work into @p t (crypto.* metrics). */
    void
    collectTotals(CryptoTotals &t) const
    {
        aes_.collectTotals(t);
        t.macTags += tags_;
        t.macBatchCalls += batchCalls_;
        t.macBatchTags += batchTags_;
    }

  private:
    /** Shared worker: @p prefix may be null, else 16 bytes. */
    Aes128Block computeOne(const std::uint8_t *prefix,
                           const std::uint8_t *msg,
                           std::size_t len) const;

    Aes128 aes_;
    Aes128Block k1_;
    Aes128Block k2_;
    mutable std::uint64_t tags_ = 0;
    mutable std::uint64_t batchCalls_ = 0;
    mutable std::uint64_t batchTags_ = 0;
};

} // namespace secdimm::crypto

#endif // SECUREDIMM_CRYPTO_CMAC_HH
