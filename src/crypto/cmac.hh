/**
 * @file
 * AES-CMAC (RFC 4493), the MAC primitive underneath PMMAC bucket
 * authentication in the reproduction.
 */

#ifndef SECUREDIMM_CRYPTO_CMAC_HH
#define SECUREDIMM_CRYPTO_CMAC_HH

#include <cstddef>
#include <cstdint>

#include "crypto/aes128.hh"

namespace secdimm::crypto
{

/** AES-CMAC with cached subkeys K1/K2. */
class Cmac
{
  public:
    explicit Cmac(const Aes128Key &key);

    /** Compute the 16-byte MAC tag of @p len bytes at @p msg. */
    Aes128Block compute(const std::uint8_t *msg, std::size_t len) const;

    /** Constant-time-ish tag comparison. */
    static bool tagsEqual(const Aes128Block &a, const Aes128Block &b);

  private:
    Aes128 aes_;
    Aes128Block k1_;
    Aes128Block k2_;
};

} // namespace secdimm::crypto

#endif // SECUREDIMM_CRYPTO_CMAC_HH
