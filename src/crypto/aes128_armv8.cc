/**
 * @file
 * ARMv8-A Crypto Extension backend (AESE/AESMC, AESD/AESIMC).  Same
 * structure as aes128_ni.cc: always compiled, intrinsics confined to
 * target-attributed functions, runtime HWCAP gating.  AESE fuses
 * AddRoundKey+SubBytes+ShiftRows, so the round sequencing differs
 * from x86 but consumes the identical 176-byte FIPS-197 schedule and
 * produces bit-exact output.
 */

#include "crypto/aes128_backend.hh"

#if defined(__aarch64__)
#define SECUREDIMM_HAVE_ARMV8_AES_BUILD 1
#include <arm_neon.h>
#if defined(__linux__)
#include <sys/auxv.h>
#ifndef HWCAP_AES
#define HWCAP_AES (1 << 3)
#endif
#endif
#endif

#include "util/logging.hh"

namespace secdimm::crypto::detail
{

#if SECUREDIMM_HAVE_ARMV8_AES_BUILD

bool
armv8Available()
{
#if defined(__linux__)
    return (getauxval(AT_HWCAP) & HWCAP_AES) != 0;
#elif defined(__APPLE__)
    return true; // All Apple aarch64 cores ship the AES extension.
#else
    return false;
#endif
}

__attribute__((target("+crypto"))) void
armv8ExpandInv(const std::uint8_t *rk, std::uint8_t *inv_rk)
{
    // Decrypt schedule: keys reversed, AESIMC on the middle nine.
    vst1q_u8(inv_rk, vld1q_u8(rk + 160));
    for (int i = 1; i <= 9; ++i) {
        vst1q_u8(inv_rk + 16 * i,
                 vaesimcq_u8(vld1q_u8(rk + 16 * (10 - i))));
    }
    vst1q_u8(inv_rk + 160, vld1q_u8(rk));
}

__attribute__((target("+crypto"))) void
armv8EncryptBlocks(const std::uint8_t *rk, const std::uint8_t *in,
                   std::uint8_t *out, std::size_t n)
{
    uint8x16_t k[11];
    for (int i = 0; i < 11; ++i)
        k[i] = vld1q_u8(rk + 16 * i);

    constexpr std::size_t kLanes = 8;
    while (n >= kLanes) {
        uint8x16_t s[kLanes];
        for (std::size_t j = 0; j < kLanes; ++j)
            s[j] = vld1q_u8(in + 16 * j);
        for (int r = 0; r <= 8; ++r) {
            for (std::size_t j = 0; j < kLanes; ++j)
                s[j] = vaesmcq_u8(vaeseq_u8(s[j], k[r]));
        }
        for (std::size_t j = 0; j < kLanes; ++j)
            vst1q_u8(out + 16 * j,
                     veorq_u8(vaeseq_u8(s[j], k[9]), k[10]));
        in += 16 * kLanes;
        out += 16 * kLanes;
        n -= kLanes;
    }
    for (std::size_t j = 0; j < n; ++j) {
        uint8x16_t s = vld1q_u8(in + 16 * j);
        for (int r = 0; r <= 8; ++r)
            s = vaesmcq_u8(vaeseq_u8(s, k[r]));
        vst1q_u8(out + 16 * j, veorq_u8(vaeseq_u8(s, k[9]), k[10]));
    }
}

__attribute__((target("+crypto"))) void
armv8DecryptBlock(const std::uint8_t *inv_rk, const std::uint8_t *in,
                  std::uint8_t *out)
{
    uint8x16_t s = vld1q_u8(in);
    for (int r = 0; r <= 8; ++r)
        s = vaesimcq_u8(vaesdq_u8(s, vld1q_u8(inv_rk + 16 * r)));
    s = veorq_u8(vaesdq_u8(s, vld1q_u8(inv_rk + 144)),
                 vld1q_u8(inv_rk + 160));
    vst1q_u8(out, s);
}

#else // !SECUREDIMM_HAVE_ARMV8_AES_BUILD

bool
armv8Available()
{
    return false;
}

void
armv8ExpandInv(const std::uint8_t *, std::uint8_t *)
{
    panic("armv8 backend called on a non-aarch64 build");
}

void
armv8EncryptBlocks(const std::uint8_t *, const std::uint8_t *,
                   std::uint8_t *, std::size_t)
{
    panic("armv8 backend called on a non-aarch64 build");
}

void
armv8DecryptBlock(const std::uint8_t *, const std::uint8_t *,
                  std::uint8_t *)
{
    panic("armv8 backend called on a non-aarch64 build");
}

#endif // SECUREDIMM_HAVE_ARMV8_AES_BUILD

} // namespace secdimm::crypto::detail
