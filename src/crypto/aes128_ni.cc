/**
 * @file
 * x86 AES-NI backend.  The whole file is compiled on every platform;
 * the intrinsics are confined to __attribute__((target("aes,sse2")))
 * functions so no special compile flags leak into the rest of the
 * build, and runtime CPUID gating (cpu_features.cc) guarantees they
 * are only ever called on capable silicon.
 *
 * Throughput comes from interleaving: one aesenc has multi-cycle
 * latency but single-cycle throughput, so encrypting eight
 * independent blocks round-by-round hides nearly all of it.  CTR
 * keystreams and batched path MACs feed exactly such independent
 * blocks.
 */

#include "crypto/aes128_backend.hh"

#if defined(__x86_64__) || defined(__i386__)
#define SECUREDIMM_HAVE_AESNI_BUILD 1
#include <immintrin.h>
#endif

#include "util/logging.hh"

namespace secdimm::crypto::detail
{

#if SECUREDIMM_HAVE_AESNI_BUILD

namespace
{

constexpr std::size_t kLanes = 8;

} // namespace

bool
aesniAvailable()
{
    return __builtin_cpu_supports("aes") != 0 &&
           __builtin_cpu_supports("sse2") != 0;
}

__attribute__((target("aes,sse2"))) void
aesniExpandInv(const std::uint8_t *rk, std::uint8_t *inv_rk)
{
    const auto *in = reinterpret_cast<const __m128i *>(rk);
    auto *out = reinterpret_cast<__m128i *>(inv_rk);
    _mm_storeu_si128(out, _mm_loadu_si128(in + 10));
    for (int i = 1; i <= 9; ++i) {
        _mm_storeu_si128(out + i,
                         _mm_aesimc_si128(_mm_loadu_si128(in + 10 - i)));
    }
    _mm_storeu_si128(out + 10, _mm_loadu_si128(in));
}

__attribute__((target("aes,sse2"))) void
aesniEncryptBlocks(const std::uint8_t *rk, const std::uint8_t *in,
                   std::uint8_t *out, std::size_t n)
{
    const auto *rkp = reinterpret_cast<const __m128i *>(rk);
    __m128i k[11];
    for (int i = 0; i < 11; ++i)
        k[i] = _mm_loadu_si128(rkp + i);

    const auto *src = reinterpret_cast<const __m128i *>(in);
    auto *dst = reinterpret_cast<__m128i *>(out);

    while (n >= kLanes) {
        __m128i s[kLanes];
        for (std::size_t j = 0; j < kLanes; ++j)
            s[j] = _mm_xor_si128(_mm_loadu_si128(src + j), k[0]);
        for (int r = 1; r <= 9; ++r) {
            for (std::size_t j = 0; j < kLanes; ++j)
                s[j] = _mm_aesenc_si128(s[j], k[r]);
        }
        for (std::size_t j = 0; j < kLanes; ++j)
            _mm_storeu_si128(dst + j, _mm_aesenclast_si128(s[j], k[10]));
        src += kLanes;
        dst += kLanes;
        n -= kLanes;
    }
    for (std::size_t j = 0; j < n; ++j) {
        __m128i s = _mm_xor_si128(_mm_loadu_si128(src + j), k[0]);
        for (int r = 1; r <= 9; ++r)
            s = _mm_aesenc_si128(s, k[r]);
        _mm_storeu_si128(dst + j, _mm_aesenclast_si128(s, k[10]));
    }
}

__attribute__((target("aes,sse2"))) void
aesniDecryptBlock(const std::uint8_t *inv_rk, const std::uint8_t *in,
                  std::uint8_t *out)
{
    const auto *rkp = reinterpret_cast<const __m128i *>(inv_rk);
    __m128i s = _mm_xor_si128(
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(in)),
        _mm_loadu_si128(rkp));
    for (int r = 1; r <= 9; ++r)
        s = _mm_aesdec_si128(s, _mm_loadu_si128(rkp + r));
    s = _mm_aesdeclast_si128(s, _mm_loadu_si128(rkp + 10));
    _mm_storeu_si128(reinterpret_cast<__m128i *>(out), s);
}

#else // !SECUREDIMM_HAVE_AESNI_BUILD

bool
aesniAvailable()
{
    return false;
}

void
aesniExpandInv(const std::uint8_t *, std::uint8_t *)
{
    panic("aesni backend called on a non-x86 build");
}

void
aesniEncryptBlocks(const std::uint8_t *, const std::uint8_t *,
                   std::uint8_t *, std::size_t)
{
    panic("aesni backend called on a non-x86 build");
}

void
aesniDecryptBlock(const std::uint8_t *, const std::uint8_t *,
                  std::uint8_t *)
{
    panic("aesni backend called on a non-x86 build");
}

#endif // SECUREDIMM_HAVE_AESNI_BUILD

} // namespace secdimm::crypto::detail
