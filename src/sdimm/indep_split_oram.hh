/**
 * @file
 * Functional INDEP-SPLIT (Figure 7e): the address space is
 * partitioned by the top leaf bits across Independent groups, and
 * each group is itself a Split ORAM over several SDIMM slices.  The
 * CPU keeps the global PosMap; moving a block between groups is
 * obfuscated by one APPEND per group, exactly as in the pure
 * Independent protocol.
 */

#ifndef SECUREDIMM_SDIMM_INDEP_SPLIT_ORAM_HH
#define SECUREDIMM_SDIMM_INDEP_SPLIT_ORAM_HH

#include <memory>
#include <string>
#include <vector>

#include "fault/fault_types.hh"
#include "sdimm/sdimm_command.hh"
#include "sdimm/split_oram.hh"

namespace secdimm::sdimm
{

/** One observable inter-group transaction (obliviousness tests). */
struct GroupBusEvent
{
    SdimmCommandType type;
    unsigned group;
};

/** Functional combined Independent-of-Splits ORAM. */
class IndepSplitOram
{
  public:
    struct Params
    {
        oram::OramParams perGroupTree; ///< Each group's (full) tree.
        unsigned groups = 2;           ///< Independent partitions.
        unsigned slicesPerGroup = 2;   ///< Split width inside a group.
    };

    IndepSplitOram(const Params &params, std::uint64_t seed);

    std::uint64_t capacityBlocks() const;

    BlockData access(Addr addr, oram::OramOp op,
                     const BlockData *new_data = nullptr);

    unsigned groups() const { return params_.groups; }
    const Params &params() const { return params_; }
    SplitOram &group(unsigned g) { return *groups_[g]; }
    const SplitOram &group(unsigned g) const { return *groups_[g]; }

    const std::vector<GroupBusEvent> &busTrace() const
    {
        return busTrace_;
    }
    void clearBusTrace() { busTrace_.clear(); }

    bool integrityOk() const;

    LeafId leafOf(Addr addr) const { return posMap_.at(addr); }

    /**
     * Arm fault injection across every group plus the inter-group
     * command wire (nullptr disarms).  Under Degraded, quarantine is
     * lifted to the *group* level (group fail-over): an exhausted
     * budget or a watchdog-detected dead group quarantines the whole
     * group and obliviously evacuates its live blocks to the
     * survivors; other policies fail-stop the protocol.
     */
    void setFaultInjector(fault::FaultInjector *inj,
                          fault::DegradationPolicy policy =
                              fault::DegradationPolicy::RetryThenStop);

    /** Remove @p g from service (Degraded policy; group fail-over). */
    void quarantineGroup(unsigned g);
    bool isGroupQuarantined(unsigned g) const
    {
        return g < quarantinedGroups_.size() && quarantinedGroups_[g];
    }
    unsigned quarantinedGroupCount() const;

    /** Live blocks drained off quarantined groups so far. */
    std::uint64_t evacuatedBlocks() const { return evacuatedBlocks_; }

    /** Group deaths detected and handled INSIDE a running evacuation
     *  (re-entrant recovery; correlated cascades land here). */
    std::uint64_t nestedEvacuations() const { return nestedEvacuations_; }

    /** Groups proactively evacuated on latency-tax EWMA (not dead). */
    std::uint64_t retiredUnits() const { return retiredUnits_; }

    /** Byzantine groups convicted (mistrust score or in-access
     *  preemption) and obliviously evicted so far. */
    std::uint64_t convictedUnits() const { return convictedUnits_; }

    /** True once an unrecoverable fault stopped the protocol. */
    bool failedStop() const { return failedStop_; }

    /**
     * Export per-group Split counters (under ".gN") plus the
     * inter-group APPEND split and fail-stop state under @p prefix.
     */
    void exportMetrics(util::MetricsRegistry &m,
                       const std::string &prefix) const;

    /** Fold every group's crypto work into @p t (crypto.*). */
    void
    collectCrypto(crypto::CryptoTotals &t) const
    {
        for (const auto &g : groups_)
            g->collectCrypto(t);
    }

  private:
    unsigned groupOf(LeafId global_leaf) const;
    LeafId localLeaf(LeafId global_leaf) const;

    /**
     * Put one inter-group command on the bus, retrying through
     * injected wire faults (each retransmission is a fresh bus
     * event).  False once the budget is exhausted (fail-stop).
     */
    bool transmitGroupCommand(SdimmCommandType type, unsigned g,
                              const char *site);

    /** Draw a global leaf whose group is not quarantined (one draw
     *  when nothing is quarantined; redraws consult only the public
     *  quarantine set). */
    LeafId drawGlobalLeaf();

    /** Watchdog-detect permanently dead groups at the access top. */
    void sweepPermanentFaults();
    void runWatchdog(unsigned g);

    /** Degraded disposition of a detected-dead group: quarantine +
     *  evacuate, or -- when it is the last group in service --
     *  zero-survivor FailStop with a distinct ledger entry.
     *  Re-entrant (callable from inside evacuateGroup()). */
    void handleDeadGroup(unsigned g, const std::string &site,
                         unsigned attempts);

    /** Proactive retirement sweep (see IndependentOram). */
    void sweepRetirement();

    /** Per-access mistrust feed + conviction check for @p g (see
     *  IndependentOram::noteUnitSuspicion; the unit here is a whole
     *  Independent group). */
    void noteGroupSuspicion(unsigned g, double blame);

    /** Convict @p g as byzantine: ByzantineConvict ledger episode
     *  paired with recovered (site "mistrust.groupN") + oblivious
     *  group evacuation, or unrecovered (".zero_survivors") +
     *  fail-stop when @p g is the last group in service. */
    void convictGroup(unsigned g);

    /** Oblivious group evacuation: same geometry-padded APPEND-stream
     *  argument as IndependentOram::evacuateSdimm, per group. */
    void evacuateGroup(unsigned g);

    Params params_;
    unsigned localLevels_;
    Rng rng_;
    std::vector<std::unique_ptr<SplitOram>> groups_;
    std::vector<LeafId> posMap_;
    std::vector<GroupBusEvent> busTrace_;
    std::uint64_t appendsReal_ = 0;
    std::uint64_t appendsDummy_ = 0;
    std::uint64_t degradedAccesses_ = 0;
    fault::FaultInjector *injector_ = nullptr;
    fault::DegradationPolicy policy_ =
        fault::DegradationPolicy::RetryThenStop;
    std::vector<bool> quarantinedGroups_;
    bool failedStop_ = false;
    std::uint64_t evacuatedBlocks_ = 0;
    std::uint64_t nestedEvacuations_ = 0;
    std::uint64_t retiredUnits_ = 0;
    std::uint64_t convictedUnits_ = 0;
    unsigned evacuationDepth_ = 0;
};

} // namespace secdimm::sdimm

#endif // SECUREDIMM_SDIMM_INDEP_SPLIT_ORAM_HH
