/**
 * @file
 * Timing model of the Split protocol (Section III-D) and of the
 * combined INDEP-SPLIT organization (Figure 7e): `groups` Independent
 * partitions, each of which is a Split group over
 * numSdimms/groups slices.  groups == 1 is pure Split; groups ==
 * numSdimms would degenerate to Independent (use IndependentBackend
 * for that).
 */

#ifndef SECUREDIMM_SDIMM_SPLIT_BACKEND_HH
#define SECUREDIMM_SDIMM_SPLIT_BACKEND_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "oram/recursion.hh"
#include "sdimm/independent_backend.hh"
#include "sdimm/split_engine.hh"
#include "trace/memory_backend.hh"

namespace secdimm::sdimm
{

/** Split / Indep-Split MemoryBackend. */
class SplitBackend : public MemoryBackend
{
  public:
    /**
     * @param config  perSdimm = the PER-GROUP tree (for pure Split
     *                this is the full ORAM tree); numSdimms = total
     *                slice count across all groups.
     * @param groups  Independent partitions (1 = pure Split).
     */
    SplitBackend(const SdimmTimingConfig &config, unsigned groups,
                 std::uint64_t seed = 1);

    void setCompletionCallback(CompletionFn fn) override;
    bool canAccept() const override;
    void access(std::uint64_t id, Addr byte_addr, bool write,
                Tick now) override;
    Tick nextEventAt() const override;
    void advanceTo(Tick now) override;
    bool idle() const override;

    unsigned groupCount() const
    {
        return static_cast<unsigned>(groups_.size());
    }
    SplitGroupEngine &group(unsigned g) { return *groups_[g]; }
    const SplitGroupEngine &group(unsigned g) const
    {
        return *groups_[g];
    }
    LinkBus &bus(unsigned c) { return *buses_[c]; }
    const LinkBus &bus(unsigned c) const { return *buses_[c]; }
    unsigned busCount() const
    {
        return static_cast<unsigned>(buses_.size());
    }
    const oram::RecursionEngine &recursion() const { return recursion_; }

    std::uint64_t offDimmLines() const;

  private:
    struct Job
    {
        std::uint64_t id;
        unsigned opsLeft;
    };

    void startOp(std::uint64_t job_id, Tick ready_at);
    void onOpDone(std::uint64_t tag, Tick result);

    SdimmTimingConfig config_;
    unsigned slicesPerGroup_;
    oram::RecursionEngine recursion_;
    Rng rng_;
    CompletionFn onComplete_;

    std::vector<std::unique_ptr<LinkBus>> buses_;
    std::vector<std::unique_ptr<SplitGroupEngine>> groups_;

    std::unordered_map<std::uint64_t, Job> jobs_;
    struct OpRef
    {
        std::uint64_t jobId;
        unsigned group;
        bool drain;
    };
    std::unordered_map<std::uint64_t, OpRef> ops_;
    std::uint64_t nextTag_ = 1;

    static constexpr std::size_t jobCapacity_ = 16;
};

} // namespace secdimm::sdimm

#endif // SECUREDIMM_SDIMM_SPLIT_BACKEND_HH
