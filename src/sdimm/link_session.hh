/**
 * @file
 * The encrypted CPU<->secure-buffer link of Section III-B: session
 * keys established at boot (SEND_PKEY / RECEIVE_SECRET over a DH
 * exchange), then counter-mode AES with per-direction counters and a
 * CMAC over every message.  Replay of an old message or any bit flip
 * fails unseal().
 */

#ifndef SECUREDIMM_SDIMM_LINK_SESSION_HH
#define SECUREDIMM_SDIMM_LINK_SESSION_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/cmac.hh"
#include "crypto/ctr_mode.hh"
#include "crypto/key_exchange.hh"
#include "crypto/pmmac.hh"
#include "util/metrics.hh"
#include "util/rng.hh"

namespace secdimm::sdimm
{

/** Wire form of one sealed link message. */
struct SealedMessage
{
    std::uint8_t opcode = 0;          ///< Long-command opcode byte.
    std::uint64_t seq = 0;            ///< Direction-local counter.
    std::vector<std::uint8_t> body;   ///< Ciphertext payload.
    crypto::Tag64 mac = 0;            ///< CMAC over header + body.
};

/** One end of the encrypted link. */
class LinkEndpoint
{
  public:
    /**
     * @param up_key   CPU -> SDIMM direction key
     * @param down_key SDIMM -> CPU direction key
     * @param is_cpu   which end this is
     */
    LinkEndpoint(const crypto::Aes128Key &up_key,
                 const crypto::Aes128Key &down_key, bool is_cpu);

    /** Encrypt + MAC a payload for the peer. */
    SealedMessage seal(std::uint8_t opcode,
                       const std::vector<std::uint8_t> &plaintext);

    /**
     * Verify + decrypt a message from the peer.  Returns nullopt on
     * MAC failure or replay (non-monotonic sequence number).
     */
    std::optional<std::vector<std::uint8_t>>
    unseal(const SealedMessage &msg);

    std::uint64_t sendCount() const { return sendSeq_; }
    std::uint64_t authFailures() const { return authFailures_; }
    std::uint64_t sealedBytes() const { return sealedBytes_; }
    std::uint64_t openedCount() const { return openedCount_; }

    /** Export sealed/opened/auth-failure counters under @p prefix. */
    void
    exportMetrics(util::MetricsRegistry &m,
                  const std::string &prefix) const
    {
        m.setCounter(prefix + ".sealed", sendSeq_);
        m.setCounter(prefix + ".sealed_bytes", sealedBytes_);
        m.setCounter(prefix + ".opened", openedCount_);
        m.setCounter(prefix + ".auth_failures", authFailures_);
    }

    /** Fold this endpoint's crypto work into @p t (crypto.*). */
    void
    collectCrypto(crypto::CryptoTotals &t) const
    {
        upCipher_.collectTotals(t);
        downCipher_.collectTotals(t);
        upMac_.collectTotals(t);
        downMac_.collectTotals(t);
    }

  private:
    const crypto::CtrCipher &txCipher() const;
    const crypto::CtrCipher &rxCipher() const;
    const crypto::Cmac &txMac() const;
    const crypto::Cmac &rxMac() const;

    crypto::Tag64 messageTag(const crypto::Cmac &mac,
                             const SealedMessage &msg) const;

    crypto::CtrCipher upCipher_;
    crypto::CtrCipher downCipher_;
    crypto::Cmac upMac_;
    crypto::Cmac downMac_;
    bool isCpu_;
    std::uint64_t sendSeq_ = 0;
    std::uint64_t nextRecvSeq_ = 0;
    std::uint64_t authFailures_ = 0;
    std::uint64_t sealedBytes_ = 0;
    std::uint64_t openedCount_ = 0;
    /** Reused header||body buffer for messageTag (no per-message
     *  allocation once its capacity covers the largest message). */
    mutable std::vector<std::uint8_t> macScratch_;
};

/**
 * Simulate the boot-time handshake (authentication + key agreement)
 * for one SDIMM; returns the CPU-side and buffer-side endpoints, which
 * share derived session keys.
 */
std::pair<LinkEndpoint, LinkEndpoint> establishLink(Rng &rng);

} // namespace secdimm::sdimm

#endif // SECUREDIMM_SDIMM_LINK_SESSION_HH
