/**
 * @file
 * Timing model of the Independent SDIMM protocol (Section III-C).
 * The CPU-side frontend (PLB + PosMap) turns each LLC miss into 1..n+1
 * accessORAM ops; each op is shipped to a (random-leaf-determined)
 * SDIMM with an ACCESS long command, executed entirely inside that
 * SDIMM by its PathExecutor, polled with PROBEs, fetched with
 * FETCH_RESULT, and finished with one APPEND to every SDIMM.  Only
 * those few bursts touch the CPU channel; the 2(Z+1)L path lines stay
 * on the DIMM.
 */

#ifndef SECUREDIMM_SDIMM_INDEPENDENT_BACKEND_HH
#define SECUREDIMM_SDIMM_INDEPENDENT_BACKEND_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "fault/fault_injector.hh"
#include "oram/recursion.hh"
#include "sdimm/link_bus.hh"
#include "sdimm/path_executor.hh"
#include "trace/memory_backend.hh"

namespace secdimm::sdimm
{

/** Shared configuration of the SDIMM timing backends. */
struct SdimmTimingConfig
{
    oram::OramParams perSdimm;   ///< Local tree of each SDIMM.
    oram::RecursionParams recursion;
    unsigned numSdimms = 2;
    unsigned cpuChannels = 1;    ///< LinkBus count (SDIMMs round-robin).
    dram::TimingParams timing;   ///< Shared DDR timing.
    dram::Geometry sdimmGeom;    ///< Internal geometry of one SDIMM.
    bool lowPower = true;        ///< Section III-E layout/power-down.
    Cycles probeInterval = 32;   ///< PROBE polling cadence.

    /**
     * Transfer-queue drain probability p (Section IV-C).  With the
     * 8 KB buffer (128 entries), p = 0.1 gives rho = 0.71 and an
     * overflow probability ~1e-19 (see analytic::mm1k) at a 10%
     * accessORAM overhead.
     */
    double drainProb = 0.1;

    /**
     * Fault campaign for the timing layer.  Permanent faults are the
     * interesting part here: a dead SDIMM costs watchdog backoff
     * waits plus a bulk evacuation transfer on every surviving bus,
     * and a DegradedLatency unit taxes each of its ops -- all of
     * which lands in SimResult.recoveryCycles.  An empty plan leaves
     * the backend bit-identical to the pre-fault model.
     */
    fault::FaultPlan faultPlan;
    fault::DegradationPolicy policy = fault::DegradationPolicy::Degraded;

    SdimmTimingConfig()
    {
        sdimmGeom.channels = 1;
        sdimmGeom.ranksPerChannel = 4; // Quad-rank SDIMM (Sec III-E).
    }
};

/** Independent-protocol MemoryBackend. */
class IndependentBackend : public MemoryBackend
{
  public:
    IndependentBackend(const SdimmTimingConfig &config,
                       std::uint64_t seed = 1);

    void setCompletionCallback(CompletionFn fn) override;
    bool canAccept() const override;
    void access(std::uint64_t id, Addr byte_addr, bool write,
                Tick now) override;
    Tick nextEventAt() const override;
    void advanceTo(Tick now) override;
    bool idle() const override;

    const SdimmTimingConfig &config() const { return config_; }
    PathExecutor &executor(unsigned i) { return *executors_[i]; }
    const PathExecutor &executor(unsigned i) const
    {
        return *executors_[i];
    }
    LinkBus &bus(unsigned channel) { return *buses_[channel]; }
    const LinkBus &bus(unsigned channel) const { return *buses_[channel]; }
    unsigned busCount() const
    {
        return static_cast<unsigned>(buses_.size());
    }

    const oram::RecursionEngine &recursion() const { return recursion_; }
    std::uint64_t drainOps() const { return drainOps_; }

    /** Armed injector, or nullptr when the plan is empty. */
    const fault::FaultInjector *faultInjector() const
    {
        return injector_.get();
    }
    bool isQuarantined(unsigned sdimm) const
    {
        return sdimm < quarantined_.size() && quarantined_[sdimm];
    }

    /** Sum of off-DIMM (CPU channel) data lines. */
    std::uint64_t offDimmLines() const;

  private:
    struct Job
    {
        std::uint64_t id;
        unsigned opsLeft;
    };

    void startOp(std::uint64_t job_id, Tick ready_at);
    void onOpDone(std::uint64_t tag, Tick avail);
    unsigned busOf(unsigned sdimm) const;

    /**
     * Watchdog + quarantine + evacuation charge for SDIMMs that died
     * since the last op; returns the tick the channel is free again.
     */
    Tick sweepPermanentFaults(Tick now);

    /** Uniform SDIMM draw avoiding quarantined units (public info). */
    unsigned drawSdimm();

    unsigned quarantinedCount() const;

    SdimmTimingConfig config_;
    oram::RecursionEngine recursion_;
    Rng rng_;
    CompletionFn onComplete_;
    std::unique_ptr<fault::FaultInjector> injector_;
    std::vector<bool> deadHandled_; ///< Watchdog already ran here.
    std::vector<bool> quarantined_;

    std::vector<std::unique_ptr<PathExecutor>> executors_;
    std::vector<std::unique_ptr<LinkBus>> buses_;

    std::unordered_map<std::uint64_t, Job> jobs_;
    /** Executor op tag -> (job id, source sdimm). */
    struct OpRef
    {
        std::uint64_t jobId;
        unsigned sdimm;
        Tick issuedAt;
        bool drain;
    };
    std::unordered_map<std::uint64_t, OpRef> ops_;
    std::uint64_t nextTag_ = 1;
    std::uint64_t drainOps_ = 0;

    static constexpr std::size_t jobCapacity_ = 16;
};

} // namespace secdimm::sdimm

#endif // SECUREDIMM_SDIMM_INDEPENDENT_BACKEND_HH
