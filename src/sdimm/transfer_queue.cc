#include "sdimm/transfer_queue.hh"

#include <algorithm>

#include "fault/fault_injector.hh"

namespace secdimm::sdimm
{

TransferQueue::TransferQueue(std::size_t capacity, double drain_prob,
                             std::uint64_t seed)
    : capacity_(capacity), drainProb_(drain_prob), rng_(seed)
{
}

bool
TransferQueue::push(const oram::StashEntry &entry)
{
    ++stats_.arrivals;
    if (q_.size() >= capacity_) {
        ++stats_.overflows;
        return false;
    }
    q_.push_back(entry);
    stats_.maxOccupancy = std::max(stats_.maxOccupancy, q_.size());
    depth_.sample(q_.size());
    return true;
}

bool
TransferQueue::rollDrain()
{
    if (q_.empty())
        return false;
    const bool drain = rng_.nextBool(drainProb_);
    if (drain)
        ++stats_.drains;
    return drain;
}

std::optional<oram::StashEntry>
TransferQueue::pop()
{
    if (q_.empty())
        return std::nullopt;
    if (injector_ && injector_->rollQueuePerturb()) {
        // Parity-protected slot: the flip is caught on read and a
        // same-slot re-read returns the intact entry.
        injector_->recordDetected(fault::FaultKind::QueuePerturb);
        injector_->recordRecovered(fault::FaultKind::QueuePerturb,
                                   "transfer_queue.pop", 1);
    }
    const oram::StashEntry e = q_.front();
    q_.pop_front();
    ++stats_.services;
    return e;
}

void
TransferQueue::exportMetrics(util::MetricsRegistry &m,
                             const std::string &prefix) const
{
    m.setCounter(prefix + ".arrivals", stats_.arrivals);
    m.setCounter(prefix + ".services", stats_.services);
    m.setCounter(prefix + ".drains", stats_.drains);
    m.setCounter(prefix + ".overflows", stats_.overflows);
    m.setCounter(prefix + ".forced_drains", stats_.forcedDrains);
    m.setCounter(prefix + ".max_occupancy", stats_.maxOccupancy);
    // Gauge mirror of the high-water mark: dashboards diff counters
    // across snapshots, which would erase a watermark's meaning.
    m.setGauge(prefix + ".occupancy_max",
               static_cast<double>(stats_.maxOccupancy));
    m.histogram(prefix + ".depth").merge(depth_);
}

} // namespace secdimm::sdimm
