#include "sdimm/secure_buffer.hh"

#include <cstring>

#include "fault/fault_injector.hh"
#include "util/logging.hh"

namespace secdimm::sdimm
{

namespace
{

void
put64(std::vector<std::uint8_t> &b, std::size_t off, std::uint64_t v)
{
    std::memcpy(b.data() + off, &v, 8);
}

std::uint64_t
get64(const std::vector<std::uint8_t> &b, std::size_t off)
{
    std::uint64_t v;
    std::memcpy(&v, b.data() + off, 8);
    return v;
}

} // namespace

std::vector<std::uint8_t>
packAccess(const AccessRequest &r)
{
    std::vector<std::uint8_t> b(accessBodyBytes);
    put64(b, 0, r.addr);
    put64(b, 8, r.localLeaf);
    put64(b, 16, r.newLocalLeaf);
    b[24] = r.write ? 1 : 0;
    std::memcpy(b.data() + 25, r.data.data(), blockBytes);
    return b;
}

std::optional<AccessRequest>
unpackAccess(const std::vector<std::uint8_t> &b)
{
    if (b.size() != accessBodyBytes)
        return std::nullopt;
    AccessRequest r;
    r.addr = get64(b, 0);
    r.localLeaf = get64(b, 8);
    r.newLocalLeaf = get64(b, 16);
    r.write = b[24] != 0;
    std::memcpy(r.data.data(), b.data() + 25, blockBytes);
    return r;
}

std::vector<std::uint8_t>
packResponse(const AccessResponse &r)
{
    std::vector<std::uint8_t> b(responseBodyBytes);
    std::memcpy(b.data(), r.data.data(), blockBytes);
    b[blockBytes] = r.dummy ? 1 : 0;
    return b;
}

std::optional<AccessResponse>
unpackResponse(const std::vector<std::uint8_t> &b)
{
    if (b.size() != responseBodyBytes)
        return std::nullopt;
    AccessResponse r;
    std::memcpy(r.data.data(), b.data(), blockBytes);
    r.dummy = b[blockBytes] != 0;
    return r;
}

std::vector<std::uint8_t>
packAppend(const AppendRequest &r)
{
    std::vector<std::uint8_t> b(appendBodyBytes);
    b[0] = r.real ? 1 : 0;
    put64(b, 1, r.addr);
    put64(b, 9, r.localLeaf);
    std::memcpy(b.data() + 17, r.data.data(), blockBytes);
    return b;
}

std::optional<AppendRequest>
unpackAppend(const std::vector<std::uint8_t> &b)
{
    if (b.size() != appendBodyBytes)
        return std::nullopt;
    AppendRequest r;
    r.real = b[0] != 0;
    r.addr = get64(b, 1);
    r.localLeaf = get64(b, 9);
    std::memcpy(r.data.data(), b.data() + 17, blockBytes);
    return r;
}

SecureBuffer::SecureBuffer(const oram::OramParams &params, unsigned index,
                           std::uint64_t seed,
                           std::size_t transfer_capacity,
                           double drain_prob, Rng &boot_rng)
    : SecureBuffer(params, index, seed, transfer_capacity, drain_prob,
                   establishLink(boot_rng))
{
}

SecureBuffer::SecureBuffer(const oram::OramParams &params, unsigned index,
                           std::uint64_t seed,
                           std::size_t transfer_capacity,
                           double drain_prob,
                           std::pair<LinkEndpoint, LinkEndpoint> link)
    : index_(index),
      cpuEnd_(std::move(link.first)),
      dimmEnd_(std::move(link.second)),
      oram_(std::make_unique<oram::PathOram>(
          params,
          crypto::makeKey(0xe0c0 + index, seed ^ 0x11),
          crypto::makeKey(0x3a4c + index, seed ^ 0x22), seed + index,
          /*store_salt=*/index)),
      xfer_(transfer_capacity, drain_prob, seed ^ (0x7153 + index))
{
}

void
SecureBuffer::serviceTransferQueue()
{
    auto entry = xfer_.pop();
    if (!entry)
        return;
    if (!oram_->adoptBlock(entry->addr, entry->leaf, entry->data))
        panic("SDIMM %u: normal stash full while servicing transfer "
              "queue", index_);
}

void
SecureBuffer::setFaultInjector(fault::FaultInjector *inj)
{
    injector_ = inj;
    oram_->setFaultInjector(inj);
    xfer_.setFaultInjector(inj);
}

std::optional<SealedMessage>
SecureBuffer::handleAccess(const SealedMessage &msg)
{
    auto plain = dimmEnd_.unseal(msg);
    if (!plain) {
        if (!injector_)
            panic("SDIMM %u: ACCESS failed authentication", index_);
        ++absorbedDimmAuthFailures_;
        return std::nullopt;
    }
    const auto parsed = unpackAccess(*plain);
    if (!parsed) {
        if (!injector_)
            panic("SDIMM %u: ACCESS body malformed (%zu bytes)", index_,
                  plain->size());
        return std::nullopt;
    }
    const AccessRequest req = *parsed;

    ++stats_.accessOps;

    AccessResponse resp;

    // The requested block may still sit in the transfer queue (it was
    // APPENDed but not yet adopted).  Adopt the whole queue into the
    // normal stash before the accessORAM -- this both realizes the
    // "one service per access" rule of Section IV-C with margin and
    // guarantees the lookup sees every resident block.
    while (!xfer_.empty())
        serviceTransferQueue();

    const bool keep = req.newLocalLeaf != invalidLeaf;
    const BlockData old = oram_->accessExplicit(
        req.addr, req.localLeaf, req.newLocalLeaf,
        req.write ? oram::OramOp::Write : oram::OramOp::Read,
        req.write ? &req.data : nullptr);

    if (keep && req.write) {
        // Block stays local after a write: nothing useful to return.
        resp.dummy = true;
    } else {
        resp.data = req.write ? req.data : old;
        resp.dummy = false;
    }

    lastResponsePlain_ = packResponse(resp);
    haveLastResponse_ = true;
    return dimmEnd_.seal(/*opcode=*/0x10, lastResponsePlain_);
}

std::optional<SealedMessage>
SecureBuffer::refetchResult()
{
    if (!haveLastResponse_)
        return std::nullopt;
    return dimmEnd_.seal(/*opcode=*/0x10, lastResponsePlain_);
}

bool
SecureBuffer::handleAppend(const SealedMessage &msg)
{
    auto plain = dimmEnd_.unseal(msg);
    if (!plain) {
        if (!injector_)
            panic("SDIMM %u: APPEND failed authentication", index_);
        ++absorbedDimmAuthFailures_;
        return false;
    }
    const auto parsed = unpackAppend(*plain);
    if (!parsed) {
        if (!injector_)
            panic("SDIMM %u: APPEND body malformed (%zu bytes)", index_,
                  plain->size());
        return false;
    }
    const AppendRequest req = *parsed;
    if (!req.real) {
        ++stats_.appendsDummy;
        return true;
    }
    ++stats_.appendsReal;
    if (injector_ && injector_->rollByzantineLostWrite(index_)) {
        /*
         * Byzantine lost write: ACK the APPEND but drop the real
         * payload on the floor.  The wire conversation is
         * indistinguishable from an honest one; only the CPU-side
         * read-back audit (modeling PMMAC freshness counters) can
         * discover the stale chain later.
         */
        injector_->noteLostWrite(req.addr, index_);
        return true;
    }
    if (injector_)
        injector_->clearLostWrite(req.addr);
    if (xfer_.full()) {
        // Section IV-C's drain, applied deterministically at the
        // M/M/1/K boundary: run one extra accessORAM to service an
        // entry so the arrival never drops.
        xfer_.recordForcedDrain();
        ++stats_.drainOps;
        ++stats_.accessOps;
        serviceTransferQueue();
        oram_->backgroundEvict();
    }
    if (!xfer_.push(oram::StashEntry{req.addr, req.localLeaf, req.data}))
        panic("SDIMM %u: transfer queue overflow after forced drain",
              index_);
    if (xfer_.rollDrain()) {
        ++stats_.drainOps;
        ++stats_.accessOps;
        serviceTransferQueue();
        oram_->backgroundEvict();
    }
    return true;
}

bool
SecureBuffer::integrityOk() const
{
    return oram_->integrityOk() &&
           cpuEnd_.authFailures() == absorbedCpuAuthFailures_ &&
           dimmEnd_.authFailures() == absorbedDimmAuthFailures_;
}

std::vector<oram::StashEntry>
SecureBuffer::residentBlocks() const
{
    std::vector<oram::StashEntry> out;
    const oram::OramParams &p = oram_->params();
    for (unsigned level = 0; level <= p.levels; ++level) {
        const std::uint64_t width = std::uint64_t{1} << level;
        for (std::uint64_t index = 0; index < width; ++index) {
            const std::uint64_t seq =
                oram_->layout().bucketSeq({level, index});
            oram::BucketReadResult r = oram_->store().readBucket(seq);
            unsigned attempts = 0;
            while (!r.authentic && injector_ &&
                   attempts < injector_->maxRetries()) {
                injector_->recordDetected(fault::FaultKind::DramBitFlip);
                injector_->recordRecovered(fault::FaultKind::DramBitFlip,
                                           "evacuate.read_bucket", 1);
                ++attempts;
                r = oram_->store().readBucket(seq);
            }
            if (!r.authentic) {
                if (injector_) {
                    injector_->recordDetected(fault::FaultKind::DramBitFlip);
                    injector_->recordUnrecovered(
                        fault::FaultKind::DramBitFlip, "evacuate.read_bucket",
                        attempts);
                    continue;
                }
                panic("evacuation read failed authentication");
            }
            for (unsigned i = 0; i < r.bucket.z(); ++i) {
                const oram::BlockSlot &s = r.bucket.slot(i);
                if (s.valid())
                    out.push_back({s.addr, s.leaf, s.data});
            }
        }
    }
    for (const auto &kv : oram_->stash().entries())
        out.push_back(kv.second);
    for (const oram::StashEntry &e : xfer_.entries())
        out.push_back(e);
    return out;
}

} // namespace secdimm::sdimm
