#include "sdimm/indep_split_oram.hh"

#include <algorithm>

#include "fault/fault_injector.hh"
#include "util/bit_utils.hh"
#include "util/logging.hh"

namespace secdimm::sdimm
{

IndepSplitOram::IndepSplitOram(const Params &params, std::uint64_t seed)
    : params_(params),
      localLevels_(params.perGroupTree.levels),
      rng_(seed)
{
    SD_ASSERT(isPowerOfTwo(params_.groups));
    for (unsigned g = 0; g < params_.groups; ++g) {
        SplitOram::Params sp;
        sp.tree = params_.perGroupTree;
        sp.slices = params_.slicesPerGroup;
        groups_.push_back(
            std::make_unique<SplitOram>(sp, seed * 2654435761u + g));
    }
    const std::uint64_t global_leaves =
        static_cast<std::uint64_t>(params_.groups) *
        params_.perGroupTree.numLeaves();
    posMap_.resize(capacityBlocks());
    for (auto &leaf : posMap_)
        leaf = rng_.nextBelow(global_leaves);
}

std::uint64_t
IndepSplitOram::capacityBlocks() const
{
    return static_cast<std::uint64_t>(params_.groups) *
           params_.perGroupTree.capacityBlocks();
}

unsigned
IndepSplitOram::groupOf(LeafId global_leaf) const
{
    return static_cast<unsigned>(global_leaf >> localLevels_);
}

LeafId
IndepSplitOram::localLeaf(LeafId global_leaf) const
{
    return global_leaf & ((LeafId{1} << localLevels_) - 1);
}

void
IndepSplitOram::setFaultInjector(fault::FaultInjector *inj,
                                 fault::DegradationPolicy policy)
{
    injector_ = inj;
    policy_ = policy;
    quarantinedGroups_.assign(params_.groups, false);
    for (auto &g : groups_)
        g->setFaultInjector(inj);
}

void
IndepSplitOram::quarantineGroup(unsigned g)
{
    if (quarantinedGroups_.empty())
        quarantinedGroups_.assign(params_.groups, false);
    SD_ASSERT(g < quarantinedGroups_.size());
    if (!quarantinedGroups_[g] && injector_)
        injector_->recordQuarantine();
    quarantinedGroups_[g] = true;
}

unsigned
IndepSplitOram::quarantinedGroupCount() const
{
    unsigned n = 0;
    for (const bool q : quarantinedGroups_)
        n += q ? 1 : 0;
    return n;
}

LeafId
IndepSplitOram::drawGlobalLeaf()
{
    const std::uint64_t global_leaves =
        static_cast<std::uint64_t>(params_.groups) *
        params_.perGroupTree.numLeaves();
    // One draw in the common case; redraws only consult the (public)
    // quarantine set, never data, so the draw count stays
    // data-independent.
    LeafId leaf;
    do {
        leaf = rng_.nextBelow(global_leaves);
    } while (isGroupQuarantined(groupOf(leaf)) &&
             quarantinedGroupCount() < params_.groups);
    return leaf;
}

bool
IndepSplitOram::transmitGroupCommand(SdimmCommandType type, unsigned g,
                                     const char *site)
{
    busTrace_.push_back({type, g});
    if (!injector_)
        return true;
    unsigned attempts = 0;
    for (;;) {
        const fault::WireOutcome w = injector_->rollLinkFault();
        if (w == fault::WireOutcome::Delivered)
            return true;
        if (w == fault::WireOutcome::Delayed) {
            // Absorbed by the CPU frontend's polling loop.
            injector_->recordDetected(fault::FaultKind::LinkDelay);
            injector_->recordRecovered(fault::FaultKind::LinkDelay,
                                       site, 1);
            return true;
        }
        const fault::FaultKind kind = w == fault::WireOutcome::Corrupted
                                          ? fault::FaultKind::LinkCorrupt
                                          : fault::FaultKind::LinkDrop;
        injector_->recordDetected(kind);
        if (attempts >= injector_->maxRetries()) {
            if (policy_ != fault::DegradationPolicy::Degraded) {
                injector_->recordUnrecovered(kind, site, attempts);
                failedStop_ = true;
                return false;
            }
            // Group fail-over: quarantine the whole group and drain
            // its blocks to the survivors -- unless this group IS the
            // last survivor, in which case there is nowhere to
            // evacuate to and the system fail-stops with a distinct
            // zero-survivor ledger entry.
            const bool was = isGroupQuarantined(g);
            if (!was && quarantinedGroupCount() + 1 >= params_.groups) {
                injector_->recordUnrecovered(
                    kind, std::string(site) + ".zero_survivors",
                    attempts);
                injector_->recordZeroSurvivorFailStop();
                quarantineGroup(g);
                failedStop_ = true;
                return false;
            }
            injector_->recordUnrecovered(kind, site, attempts);
            quarantineGroup(g);
            if (!was)
                evacuateGroup(g);
            return false;
        }
        ++attempts;
        injector_->recordRecovered(kind, site, 1);
        busTrace_.push_back({type, g}); // The retransmission.
    }
}

void
IndepSplitOram::runWatchdog(unsigned g)
{
    const fault::FaultPlan &plan = injector_->plan();
    for (unsigned p = 0; p < plan.watchdogMaxProbes; ++p) {
        busTrace_.push_back({SdimmCommandType::Probe, g});
        injector_->recordWatchdogProbe(plan.watchdogBackoff(p));
    }
    injector_->markPermanentDetected(g);
}

void
IndepSplitOram::handleDeadGroup(unsigned g, const std::string &site,
                                unsigned attempts)
{
    if (policy_ != fault::DegradationPolicy::Degraded) {
        injector_->recordUnrecovered(fault::FaultKind::WatchdogTimeout,
                                     site, attempts);
        failedStop_ = true;
        return;
    }
    if (quarantinedGroupCount() + 1 >= params_.groups) {
        // Zero survivors after this quarantine: distinct ledger entry
        // + FailStop (detected == recovered + unrecovered still holds
        // exactly; the watchdog already closed the detection).
        injector_->recordUnrecovered(fault::FaultKind::WatchdogTimeout,
                                     site + ".zero_survivors", attempts);
        injector_->recordZeroSurvivorFailStop();
        quarantineGroup(g);
        failedStop_ = true;
        return;
    }
    injector_->recordRecovered(fault::FaultKind::WatchdogTimeout, site,
                               attempts);
    quarantineGroup(g);
    evacuateGroup(g);
}

void
IndepSplitOram::sweepPermanentFaults()
{
    for (unsigned g = 0; g < params_.groups; ++g) {
        if (failedStop_)
            return;
        if (isGroupQuarantined(g) || !injector_->unitDead(g))
            continue;
        runWatchdog(g);
        handleDeadGroup(g, "watchdog.group" + std::to_string(g),
                        injector_->plan().watchdogMaxProbes);
    }
    sweepRetirement();
}

void
IndepSplitOram::sweepRetirement()
{
    if (failedStop_ || injector_->plan().retireTaxThresholdCycles == 0)
        return;
    for (unsigned g = 0; g < params_.groups; ++g) {
        if (!isGroupQuarantined(g))
            injector_->noteUnitTax(g, injector_->unitLatencyPenalty(g));
    }
    if (policy_ != fault::DegradationPolicy::Degraded)
        return;
    for (unsigned g = 0; g < params_.groups; ++g) {
        if (isGroupQuarantined(g) || !injector_->retirementDue(g))
            continue;
        if (quarantinedGroupCount() + 1 >= params_.groups)
            continue; // never retire the last group in service
        injector_->markRetired(g);
        ++retiredUnits_;
        quarantineGroup(g);
        evacuateGroup(g);
    }
}

void
IndepSplitOram::noteGroupSuspicion(unsigned g, double blame)
{
    if (!injector_)
        return;
    injector_->noteMistrust(g, blame);
    if (!injector_->mistrustArmed() ||
        policy_ != fault::DegradationPolicy::Degraded)
        return;
    if (failedStop_ || isGroupQuarantined(g))
        return;
    if (injector_->convictionDue(g))
        convictGroup(g);
}

void
IndepSplitOram::convictGroup(unsigned g)
{
    const std::string site = "mistrust.group" + std::to_string(g);
    injector_->markConvicted(g);
    ++convictedUnits_;
    if (quarantinedGroupCount() + 1 >= params_.groups) {
        // Convicting the last group in service leaves nowhere to
        // evacuate to: distinct zero-survivor ledger entry + FailStop,
        // same shape as handleDeadGroup.
        injector_->recordUnrecovered(fault::FaultKind::ByzantineConvict,
                                     site + ".zero_survivors", 0);
        injector_->recordZeroSurvivorFailStop();
        quarantineGroup(g);
        failedStop_ = true;
        return;
    }
    injector_->recordRecovered(fault::FaultKind::ByzantineConvict, site,
                               0);
    quarantineGroup(g);
    evacuateGroup(g);
}

void
IndepSplitOram::evacuateGroup(unsigned dead)
{
    // Maintenance-path read of the dead group's raw slice shares
    // (docs/FAULTS.md states the assumption), then CPU-private remaps
    // off the dead group before any wire traffic.
    const std::vector<std::pair<Addr, BlockData>> live =
        groups_[dead]->residentBlocks();
    for (Addr a = 0; a < posMap_.size(); ++a) {
        if (groupOf(posMap_[a]) == dead)
            posMap_[a] = drawGlobalLeaf();
    }

    // Dummy-padded APPEND streams sized by the public tree geometry
    // (padded up only when more than one tree's capacity is live).
    const std::uint64_t slots = std::max<std::uint64_t>(
        params_.perGroupTree.capacityBlocks(), live.size());
    ++evacuationDepth_;
    SD_ASSERT(evacuationDepth_ <= params_.groups);
    for (std::uint64_t s = 0; s < slots; ++s) {
        const bool have = s < live.size();
        bool placed = false;
        bool redo = true;
        while (redo) {
            redo = false;
            const unsigned quarantinedBefore = quarantinedGroupCount();
            for (unsigned g = 0; g < params_.groups; ++g) {
                // Re-entrant recovery: a correlated cascade can kill
                // a second group while this evacuation is mid-stream;
                // the nested evacuation drains everything this loop
                // already re-appended onto it, and the fresh posMap_
                // reads below route the rest around it (see
                // IndependentOram).
                if (!failedStop_ && !isGroupQuarantined(g) &&
                    injector_->unitDead(g)) {
                    ++nestedEvacuations_;
                    runWatchdog(g);
                    handleDeadGroup(g,
                                    "watchdog.group" + std::to_string(g) +
                                        ".mid_evac",
                                    injector_->plan().watchdogMaxProbes);
                }
                if (failedStop_ || isGroupQuarantined(g)) {
                    busTrace_.push_back({SdimmCommandType::Append, g});
                    ++appendsDummy_;
                    continue;
                }
                const bool delivered = transmitGroupCommand(
                    SdimmCommandType::Append, g, "indep_split.evacuate");
                const bool real =
                    have && !placed && !isGroupQuarantined(g) &&
                    groupOf(posMap_[live[s].first]) == g;
                if (real)
                    ++appendsReal_;
                else
                    ++appendsDummy_;
                if (delivered && real) {
                    groups_[g]->adoptBlock(
                        live[s].first,
                        localLeaf(posMap_[live[s].first]),
                        live[s].second);
                    placed = true;
                }
            }
            // A nested evacuation (or a budget-exhaustion quarantine
            // inside transmitGroupCommand) can redraw this slot's
            // destination onto a group the sweep above had ALREADY
            // passed, silently dropping the block.  Whenever the
            // quarantine set changed mid-sweep -- a public,
            // fault-triggered event -- re-run the slot: an unplaced
            // block lands on its redrawn survivor, and a placed one
            // rides the re-run as all-dummy padding.
            if (!failedStop_ &&
                quarantinedGroupCount() != quarantinedBefore)
                redo = true;
        }
    }
    --evacuationDepth_;
    evacuatedBlocks_ += live.size();
    injector_->recordEvacuation(live.size(), slots * params_.groups);
}

BlockData
IndepSplitOram::access(Addr addr, oram::OramOp op,
                       const BlockData *new_data)
{
    SD_ASSERT(addr < posMap_.size());
    const bool write = op == oram::OramOp::Write;
    SD_ASSERT(!write || new_data != nullptr);

    // Permanent faults surface before the PosMap lookup, so a
    // quarantine's remaps are already visible to the leaf read below.
    if (injector_) {
        injector_->noteAccess();
        sweepPermanentFaults();
    }

    const LeafId old_leaf = posMap_[addr];
    const LeafId new_leaf = drawGlobalLeaf();
    posMap_[addr] = new_leaf;

    const unsigned src = groupOf(old_leaf);
    const unsigned dst = groupOf(new_leaf);
    const bool stays = src == dst;

    if (failedStop_ || isGroupQuarantined(src)) {
        // Fail-stop or a quarantined source group: preserve the bus
        // shape, serve zeros (post-evacuation remaps make the
        // quarantined-src case unreachable unless every group died).
        busTrace_.push_back({SdimmCommandType::Access, src});
        for (unsigned g = 0; g < params_.groups; ++g)
            busTrace_.push_back({SdimmCommandType::Append, g});
        ++degradedAccesses_;
        if (injector_)
            injector_->recordDegraded();
        return BlockData{};
    }

    // The Split access inside the source group (the ACCESS command).
    if (!transmitGroupCommand(SdimmCommandType::Access, src,
                              "indep_split.access")) {
        for (unsigned g = 0; g < params_.groups; ++g)
            busTrace_.push_back({SdimmCommandType::Append, g});
        ++degradedAccesses_;
        return BlockData{};
    }
    const BlockData old = groups_[src]->accessExplicit(
        addr, localLeaf(old_leaf),
        stays ? localLeaf(new_leaf) : invalidLeaf, op, new_data);

    /*
     * Byzantine groups: a group-level corruptor/liar garbles its
     * response; an equivocator hands back stale-but-internally-
     * consistent slice shares that disagree with its peers.  Either
     * way the Split frontend's cross-slice reconciliation catches the
     * lie (the garbling is modeled wire-side -- `old` above is the
     * honest reconstruction) and the CPU re-issues the ACCESS, up to
     * the shared retry budget.  Every failure blames src in the
     * mistrust tracker, exactly like the Independent downlink.
     */
    if (injector_) {
        double srcBlame = 0.0;
        unsigned attempts = 0;
        const unsigned budget = injector_->maxRetries();
        for (;;) {
            const bool equiv = injector_->rollByzantineEquivocate(src);
            const bool garble = injector_->rollByzantineCorrupt(src);
            if (!equiv && !garble)
                break;
            const fault::FaultKind kind =
                equiv ? fault::FaultKind::ByzantineEquivocate
                      : fault::FaultKind::ByzantineCorrupt;
            injector_->recordDetected(kind);
            srcBlame += 1.0;
            if (attempts >= budget) {
                if (injector_->mistrustArmed() &&
                    policy_ == fault::DegradationPolicy::Degraded &&
                    !isGroupQuarantined(src) &&
                    quarantinedGroupCount() + 1 < params_.groups) {
                    // Preemption-conviction (see IndependentOram):
                    // the final detection is closed as recovered --
                    // the conviction IS the recovery -- the group is
                    // evicted, and `old` already holds the honest
                    // reconstruction.
                    injector_->recordRecovered(
                        kind, "indep_split.access.convict", attempts);
                    convictGroup(src);
                    break;
                }
                const bool was = isGroupQuarantined(src);
                if (policy_ != fault::DegradationPolicy::Degraded) {
                    injector_->recordUnrecovered(
                        kind, "indep_split.access", attempts);
                    failedStop_ = true;
                } else if (!was && quarantinedGroupCount() + 1 >=
                                       params_.groups) {
                    injector_->recordUnrecovered(
                        kind, "indep_split.access.zero_survivors",
                        attempts);
                    injector_->recordZeroSurvivorFailStop();
                    quarantineGroup(src);
                    failedStop_ = true;
                } else {
                    injector_->recordUnrecovered(
                        kind, "indep_split.access", attempts);
                    quarantineGroup(src);
                    if (!was)
                        evacuateGroup(src);
                }
                noteGroupSuspicion(src, srcBlame);
                for (unsigned g = 0; g < params_.groups; ++g)
                    busTrace_.push_back({SdimmCommandType::Append, g});
                ++degradedAccesses_;
                return BlockData{};
            }
            ++attempts;
            injector_->recordRecovered(kind, "indep_split.access", 1);
            busTrace_.push_back(
                {SdimmCommandType::Access, src}); // The re-issue.
        }
        noteGroupSuspicion(src, srcBlame);
        if (failedStop_) {
            // A mid-access zero-survivor conviction: keep the bus
            // shape, the data is gone.
            for (unsigned g = 0; g < params_.groups; ++g)
                busTrace_.push_back({SdimmCommandType::Append, g});
            ++degradedAccesses_;
            return BlockData{};
        }
    }

    // Independent dimension: one APPEND per group (real only at the
    // destination, and only when the block actually moved).
    for (unsigned g = 0; g < params_.groups; ++g) {
        if (isGroupQuarantined(g)) {
            // Dead group: keep the channel shape, nothing to deliver
            // (drawGlobalLeaf() never routes a real block here).
            busTrace_.push_back({SdimmCommandType::Append, g});
            ++appendsDummy_;
            continue;
        }
        const bool delivered = transmitGroupCommand(
            SdimmCommandType::Append, g, "indep_split.append");
        const bool real = !stays && g == dst;
        if (real)
            ++appendsReal_;
        else
            ++appendsDummy_;
        if (delivered && real) {
            groups_[g]->adoptBlock(addr, localLeaf(new_leaf),
                                   write ? *new_data : old);
        }
    }
    return old;
}

bool
IndepSplitOram::integrityOk() const
{
    if (failedStop_)
        return false;
    for (const auto &g : groups_) {
        if (!g->integrityOk())
            return false;
    }
    return true;
}

void
IndepSplitOram::exportMetrics(util::MetricsRegistry &m,
                              const std::string &prefix) const
{
    m.setCounter(prefix + ".appends_real", appendsReal_);
    m.setCounter(prefix + ".appends_dummy", appendsDummy_);
    m.setCounter(prefix + ".degraded_accesses", degradedAccesses_);
    m.setCounter(prefix + ".quarantined_groups", quarantinedGroupCount());
    m.setCounter(prefix + ".evacuated_blocks", evacuatedBlocks_);
    if (nestedEvacuations_)
        m.setCounter(prefix + ".nested_evacuations", nestedEvacuations_);
    if (retiredUnits_)
        m.setCounter(prefix + ".retired_units", retiredUnits_);
    if (convictedUnits_)
        m.setCounter(prefix + ".convicted_units", convictedUnits_);
    for (unsigned g = 0; g < params_.groups; ++g) {
        groups_[g]->exportMetrics(m,
                                  prefix + ".g" + std::to_string(g));
    }
}

} // namespace secdimm::sdimm
