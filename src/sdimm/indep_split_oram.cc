#include "sdimm/indep_split_oram.hh"

#include "fault/fault_injector.hh"
#include "util/bit_utils.hh"
#include "util/logging.hh"

namespace secdimm::sdimm
{

IndepSplitOram::IndepSplitOram(const Params &params, std::uint64_t seed)
    : params_(params),
      localLevels_(params.perGroupTree.levels),
      rng_(seed)
{
    SD_ASSERT(isPowerOfTwo(params_.groups));
    for (unsigned g = 0; g < params_.groups; ++g) {
        SplitOram::Params sp;
        sp.tree = params_.perGroupTree;
        sp.slices = params_.slicesPerGroup;
        groups_.push_back(
            std::make_unique<SplitOram>(sp, seed * 2654435761u + g));
    }
    const std::uint64_t global_leaves =
        static_cast<std::uint64_t>(params_.groups) *
        params_.perGroupTree.numLeaves();
    posMap_.resize(capacityBlocks());
    for (auto &leaf : posMap_)
        leaf = rng_.nextBelow(global_leaves);
}

std::uint64_t
IndepSplitOram::capacityBlocks() const
{
    return static_cast<std::uint64_t>(params_.groups) *
           params_.perGroupTree.capacityBlocks();
}

unsigned
IndepSplitOram::groupOf(LeafId global_leaf) const
{
    return static_cast<unsigned>(global_leaf >> localLevels_);
}

LeafId
IndepSplitOram::localLeaf(LeafId global_leaf) const
{
    return global_leaf & ((LeafId{1} << localLevels_) - 1);
}

void
IndepSplitOram::setFaultInjector(fault::FaultInjector *inj,
                                 fault::DegradationPolicy policy)
{
    injector_ = inj;
    policy_ = policy;
    for (auto &g : groups_)
        g->setFaultInjector(inj);
}

bool
IndepSplitOram::transmitGroupCommand(SdimmCommandType type, unsigned g,
                                     const char *site)
{
    busTrace_.push_back({type, g});
    if (!injector_)
        return true;
    unsigned attempts = 0;
    for (;;) {
        const fault::WireOutcome w = injector_->rollLinkFault();
        if (w == fault::WireOutcome::Delivered)
            return true;
        if (w == fault::WireOutcome::Delayed) {
            // Absorbed by the CPU frontend's polling loop.
            injector_->recordDetected(fault::FaultKind::LinkDelay);
            injector_->recordRecovered(fault::FaultKind::LinkDelay,
                                       site, 1);
            return true;
        }
        const fault::FaultKind kind = w == fault::WireOutcome::Corrupted
                                          ? fault::FaultKind::LinkCorrupt
                                          : fault::FaultKind::LinkDrop;
        injector_->recordDetected(kind);
        if (attempts >= injector_->maxRetries()) {
            injector_->recordUnrecovered(kind, site, attempts);
            failedStop_ = true;
            return false;
        }
        ++attempts;
        injector_->recordRecovered(kind, site, 1);
        busTrace_.push_back({type, g}); // The retransmission.
    }
}

BlockData
IndepSplitOram::access(Addr addr, oram::OramOp op,
                       const BlockData *new_data)
{
    SD_ASSERT(addr < posMap_.size());
    const bool write = op == oram::OramOp::Write;
    SD_ASSERT(!write || new_data != nullptr);

    const LeafId old_leaf = posMap_[addr];
    const std::uint64_t global_leaves =
        static_cast<std::uint64_t>(params_.groups) *
        params_.perGroupTree.numLeaves();
    const LeafId new_leaf = rng_.nextBelow(global_leaves);
    posMap_[addr] = new_leaf;

    const unsigned src = groupOf(old_leaf);
    const unsigned dst = groupOf(new_leaf);
    const bool stays = src == dst;

    if (failedStop_) {
        // Fail-stop: preserve the bus shape, serve zeros.
        busTrace_.push_back({SdimmCommandType::Access, src});
        for (unsigned g = 0; g < params_.groups; ++g)
            busTrace_.push_back({SdimmCommandType::Append, g});
        ++degradedAccesses_;
        if (injector_)
            injector_->recordDegraded();
        return BlockData{};
    }

    // The Split access inside the source group (the ACCESS command).
    if (!transmitGroupCommand(SdimmCommandType::Access, src,
                              "indep_split.access")) {
        for (unsigned g = 0; g < params_.groups; ++g)
            busTrace_.push_back({SdimmCommandType::Append, g});
        ++degradedAccesses_;
        return BlockData{};
    }
    const BlockData old = groups_[src]->accessExplicit(
        addr, localLeaf(old_leaf),
        stays ? localLeaf(new_leaf) : invalidLeaf, op, new_data);

    // Independent dimension: one APPEND per group (real only at the
    // destination, and only when the block actually moved).
    for (unsigned g = 0; g < params_.groups; ++g) {
        const bool delivered = transmitGroupCommand(
            SdimmCommandType::Append, g, "indep_split.append");
        const bool real = !stays && g == dst;
        if (real)
            ++appendsReal_;
        else
            ++appendsDummy_;
        if (delivered && real) {
            groups_[g]->adoptBlock(addr, localLeaf(new_leaf),
                                   write ? *new_data : old);
        }
    }
    return old;
}

bool
IndepSplitOram::integrityOk() const
{
    if (failedStop_)
        return false;
    for (const auto &g : groups_) {
        if (!g->integrityOk())
            return false;
    }
    return true;
}

void
IndepSplitOram::exportMetrics(util::MetricsRegistry &m,
                              const std::string &prefix) const
{
    m.setCounter(prefix + ".appends_real", appendsReal_);
    m.setCounter(prefix + ".appends_dummy", appendsDummy_);
    m.setCounter(prefix + ".degraded_accesses", degradedAccesses_);
    for (unsigned g = 0; g < params_.groups; ++g) {
        groups_[g]->exportMetrics(m,
                                  prefix + ".g" + std::to_string(g));
    }
}

} // namespace secdimm::sdimm
