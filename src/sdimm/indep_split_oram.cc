#include "sdimm/indep_split_oram.hh"

#include "util/bit_utils.hh"
#include "util/logging.hh"

namespace secdimm::sdimm
{

IndepSplitOram::IndepSplitOram(const Params &params, std::uint64_t seed)
    : params_(params),
      localLevels_(params.perGroupTree.levels),
      rng_(seed)
{
    SD_ASSERT(isPowerOfTwo(params_.groups));
    for (unsigned g = 0; g < params_.groups; ++g) {
        SplitOram::Params sp;
        sp.tree = params_.perGroupTree;
        sp.slices = params_.slicesPerGroup;
        groups_.push_back(
            std::make_unique<SplitOram>(sp, seed * 2654435761u + g));
    }
    const std::uint64_t global_leaves =
        static_cast<std::uint64_t>(params_.groups) *
        params_.perGroupTree.numLeaves();
    posMap_.resize(capacityBlocks());
    for (auto &leaf : posMap_)
        leaf = rng_.nextBelow(global_leaves);
}

std::uint64_t
IndepSplitOram::capacityBlocks() const
{
    return static_cast<std::uint64_t>(params_.groups) *
           params_.perGroupTree.capacityBlocks();
}

unsigned
IndepSplitOram::groupOf(LeafId global_leaf) const
{
    return static_cast<unsigned>(global_leaf >> localLevels_);
}

LeafId
IndepSplitOram::localLeaf(LeafId global_leaf) const
{
    return global_leaf & ((LeafId{1} << localLevels_) - 1);
}

BlockData
IndepSplitOram::access(Addr addr, oram::OramOp op,
                       const BlockData *new_data)
{
    SD_ASSERT(addr < posMap_.size());
    const bool write = op == oram::OramOp::Write;
    SD_ASSERT(!write || new_data != nullptr);

    const LeafId old_leaf = posMap_[addr];
    const std::uint64_t global_leaves =
        static_cast<std::uint64_t>(params_.groups) *
        params_.perGroupTree.numLeaves();
    const LeafId new_leaf = rng_.nextBelow(global_leaves);
    posMap_[addr] = new_leaf;

    const unsigned src = groupOf(old_leaf);
    const unsigned dst = groupOf(new_leaf);
    const bool stays = src == dst;

    // The Split access inside the source group (the ACCESS command).
    busTrace_.push_back({SdimmCommandType::Access, src});
    const BlockData old = groups_[src]->accessExplicit(
        addr, localLeaf(old_leaf),
        stays ? localLeaf(new_leaf) : invalidLeaf, op, new_data);

    // Independent dimension: one APPEND per group (real only at the
    // destination, and only when the block actually moved).
    for (unsigned g = 0; g < params_.groups; ++g) {
        busTrace_.push_back({SdimmCommandType::Append, g});
        if (!stays && g == dst) {
            groups_[g]->adoptBlock(addr, localLeaf(new_leaf),
                                   write ? *new_data : old);
        }
    }
    return old;
}

bool
IndepSplitOram::integrityOk() const
{
    for (const auto &g : groups_) {
        if (!g->integrityOk())
            return false;
    }
    return true;
}

} // namespace secdimm::sdimm
