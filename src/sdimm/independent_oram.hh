/**
 * @file
 * Functional Independent ORAM (Section III-C): the address space is
 * partitioned across SDIMMs by the top bits of the (global) leaf ID;
 * each SDIMM runs a complete local Path ORAM.  The CPU keeps the
 * PosMap/frontend; per access it sends one ACCESS to the
 * leaf-determined SDIMM, polls with PROBE, FETCHes the result, and
 * obfuscates the block's relocation with one APPEND to *every* SDIMM
 * (exactly one carries the real block).
 */

#ifndef SECUREDIMM_SDIMM_INDEPENDENT_ORAM_HH
#define SECUREDIMM_SDIMM_INDEPENDENT_ORAM_HH

#include <array>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault_types.hh"
#include "oram/path_oram.hh"
#include "sdimm/sdimm_command.hh"
#include "sdimm/secure_buffer.hh"

namespace secdimm::sdimm
{

/** One observable transaction on the (untrusted) memory channel. */
struct BusEvent
{
    SdimmCommandType type;
    unsigned sdimm;
    std::size_t bytes; ///< Sealed payload size (0 for short commands).
};

/** Functional distributed Independent ORAM. */
class IndependentOram
{
  public:
    struct Params
    {
        oram::OramParams perSdimm; ///< Local tree of EACH SDIMM.
        unsigned numSdimms = 2;    ///< Power of two.
        std::size_t transferCapacity = 64;
        double drainProb = 0.25;
    };

    IndependentOram(const Params &params, std::uint64_t seed);

    /** Total data capacity in blocks. */
    std::uint64_t capacityBlocks() const;

    /** accessORAM against the distributed tree. */
    BlockData access(Addr addr, oram::OramOp op,
                     const BlockData *new_data = nullptr);

    /** Bus transactions observed so far (obliviousness tests). */
    const std::vector<BusEvent> &busTrace() const { return busTrace_; }
    void clearBusTrace() { busTrace_.clear(); }

    unsigned numSdimms() const { return params_.numSdimms; }
    const Params &params() const { return params_; }
    SecureBuffer &buffer(unsigned i) { return *buffers_[i]; }
    const SecureBuffer &buffer(unsigned i) const { return *buffers_[i]; }

    /** Every tree, link, and queue check passed so far. */
    bool integrityOk() const;

    /** Current global leaf of a block (tests only). */
    LeafId leafOf(Addr addr) const { return posMap_.at(addr); }

    /**
     * Arm link/DRAM fault injection and bounded detect-and-retry
     * (nullptr disarms).  @p policy decides what an exhausted retry
     * budget does: RetryThenStop marks the protocol failed
     * (integrityOk() goes false, further data is zeros), Degraded
     * quarantines the offending SDIMM and routes new leaf draws
     * around it, FailStop behaves like a zero-retry budget.
     */
    void setFaultInjector(fault::FaultInjector *inj,
                          fault::DegradationPolicy policy =
                              fault::DegradationPolicy::RetryThenStop);

    /** Remove @p sdimm from service (Degraded policy). */
    void quarantine(unsigned sdimm);
    bool isQuarantined(unsigned sdimm) const
    {
        return sdimm < quarantined_.size() && quarantined_[sdimm];
    }
    unsigned quarantinedCount() const;

    /** True once an unrecoverable fault stopped the protocol. */
    bool failedStop() const { return failedStop_; }

    /** Live blocks drained off quarantined SDIMMs so far. */
    std::uint64_t evacuatedBlocks() const { return evacuatedBlocks_; }

    /** Deaths detected and handled INSIDE a running evacuation
     *  (re-entrant recovery; correlated cascades land here). */
    std::uint64_t nestedEvacuations() const { return nestedEvacuations_; }

    /** Units proactively evacuated on latency-tax EWMA (not dead). */
    std::uint64_t retiredUnits() const { return retiredUnits_; }

    /** Byzantine units convicted (mistrust score or in-access
     *  preemption) and obliviously evicted so far. */
    std::uint64_t convictedUnits() const { return convictedUnits_; }

    /**
     * Export per-buffer and per-command-type channel-traffic metrics
     * under @p prefix ("sdimm" in the facade; docs/METRICS.md).
     * Command totals survive clearBusTrace().
     */
    void exportMetrics(util::MetricsRegistry &m,
                       const std::string &prefix) const;

    /** Fold every buffer's crypto work into @p t (crypto.*). */
    void
    collectCrypto(crypto::CryptoTotals &t) const
    {
        for (const auto &b : buffers_)
            b->collectCrypto(t);
    }

  private:
    unsigned sdimmOf(LeafId global_leaf) const;
    LeafId localLeaf(LeafId global_leaf) const;

    /** Append to the bus trace and the per-command totals. */
    void recordBus(SdimmCommandType type, unsigned sdimm,
                   std::size_t bytes);

    /** Draw a global leaf whose SDIMM is not quarantined. */
    LeafId drawGlobalLeaf();

    /**
     * Ship a sealed uplink message across the (possibly faulty) wire
     * and hand it to @p deliver; retries with a freshly sealed copy
     * from @p reseal until it is accepted or the budget runs out.
     * Returns true on acceptance.
     */
    bool transmitUplink(unsigned sdimm, SdimmCommandType type,
                        const std::function<SealedMessage()> &reseal,
                        const std::function<bool(const SealedMessage &)>
                            &deliver);

    /** Exhausted-budget handling per the degradation policy. */
    void onUnrecoverable(fault::FaultKind kind, unsigned sdimm,
                         const std::string &site, unsigned attempts);

    /**
     * Detect permanent faults that activated since the last access:
     * runs the watchdog against every newly dead SDIMM, then
     * quarantines + evacuates (Degraded) or fail-stops.  Called at
     * the top of access(), before the PosMap lookup, because the
     * APPEND broadcast touches every SDIMM each access anyway.
     */
    void sweepPermanentFaults();

    /** PROBE @p sdimm watchdogMaxProbes times with capped exponential
     *  backoff; closes the WatchdogTimeout detection for the unit. */
    void runWatchdog(unsigned sdimm);

    /**
     * Degraded-policy disposition of a detected-dead unit: quarantine
     * and evacuate onto survivors, UNLESS this unit is the last one
     * in service -- then there is nowhere to evacuate to and the
     * system records a distinct zero-survivor ledger entry
     * (unrecovered at site "<site>.zero_survivors") and fail-stops
     * instead of dummy-padding an APPEND stream into nothing.
     * Re-entrant: safe to call from inside evacuateSdimm().
     */
    void handleDeadUnit(unsigned sdimm, const std::string &site,
                        unsigned attempts);

    /**
     * Proactive retirement: feed each live unit's latency tax into
     * the injector's EWMA and obliviously evacuate a unit whose tax
     * stayed above plan.retireTaxThresholdCycles long enough
     * (hysteresis), before it hard-dies.  The last unit in service is
     * never retired.  No ledger event: a timing tax is not a fault.
     */
    void sweepRetirement();

    /**
     * Feed one access's attributed integrity-failure count for
     * @p sdimm into the injector's mistrust EWMA and convict the unit
     * if its score has now sat above the threshold long enough
     * (hysteresis).  Called once per access for the unit the downlink
     * exercised -- the CPU cannot tell a lying unit from a noisy link,
     * so EVERY downlink failure blames the unit and the EWMA threshold
     * is what separates transient noise (decays) from adversarial
     * behavior (accrues).
     */
    void noteUnitSuspicion(unsigned sdimm, double blame);

    /**
     * Convict @p sdimm as byzantine: one ByzantineConvict ledger
     * episode, paired with a recovered record (site
     * "mistrust.sdimmN") when survivors remain -- the unit is then
     * quarantined and obliviously evacuated exactly like a dead one --
     * or with an unrecovered record (".zero_survivors") plus a
     * fail-stop when it is the last unit in service.
     */
    void convictUnit(unsigned sdimm);

    /**
     * Oblivious subtree evacuation: drain the quarantined SDIMM's
     * live blocks (maintenance-path read), silently remap them off
     * the dead unit in the CPU-private PosMap, and re-append them to
     * survivors under max(tree capacity, live count) dummy-padded
     * APPEND slots -- a count that depends only on tree geometry and
     * the public leaf randomness, never on block contents.
     */
    void evacuateSdimm(unsigned sdimm);

    Params params_;
    unsigned localLevels_;
    Rng rng_;
    std::vector<std::unique_ptr<SecureBuffer>> buffers_;
    std::vector<LeafId> posMap_;
    std::vector<BusEvent> busTrace_;
    /** Indexed by SdimmCommandType; survives clearBusTrace(). */
    std::array<std::uint64_t, 9> cmdCounts_{};
    std::array<std::uint64_t, 9> cmdBytes_{};
    fault::FaultInjector *injector_ = nullptr;
    fault::DegradationPolicy policy_ =
        fault::DegradationPolicy::RetryThenStop;
    std::vector<bool> quarantined_;
    bool failedStop_ = false;
    std::uint64_t degradedAccesses_ = 0;
    std::uint64_t evacuatedBlocks_ = 0;
    std::uint64_t nestedEvacuations_ = 0;
    std::uint64_t retiredUnits_ = 0;
    std::uint64_t convictedUnits_ = 0;
    unsigned evacuationDepth_ = 0;
};

} // namespace secdimm::sdimm

#endif // SECUREDIMM_SDIMM_INDEPENDENT_ORAM_HH
