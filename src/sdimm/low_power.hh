/**
 * @file
 * The low-power ORAM placement of Section III-E: the tree is arranged
 * so each rank holds whole subtrees and one accessORAM touches exactly
 * one rank; the top `rankLevels` levels (shared by all subtrees) live
 * in the secure buffer's SRAM.  Idle ranks sit in precharge power-down
 * and are woken ahead of use (24 ns tXPDLL, hidden under queueing).
 */

#ifndef SECUREDIMM_SDIMM_LOW_POWER_HH
#define SECUREDIMM_SDIMM_LOW_POWER_HH

#include <vector>

#include "oram/oram_params.hh"
#include "oram/tree_layout.hh"
#include "util/bit_utils.hh"
#include "util/logging.hh"

namespace secdimm::sdimm
{

/** Maps path lines so every path stays within one rank region. */
class LowPowerLayout
{
  public:
    /**
     * @param params      local tree parameters
     * @param num_ranks   ranks on the SDIMM (power of two)
     * @param rank_region_lines 64-byte lines per rank
     */
    LowPowerLayout(const oram::OramParams &params, unsigned num_ranks,
                   Addr rank_region_lines)
        : rankLevels_(floorLog2(num_ranks)),
          regionLines_(rank_region_lines),
          inner_(params.levels - rankLevels_, params.linesPerBucket())
    {
        SD_ASSERT(isPowerOfTwo(num_ranks));
        SD_ASSERT(params.levels >= rankLevels_);
        SD_ASSERT(rank_region_lines > 0);
        // Trees larger than a rank wrap within their region (the
        // usual timing-only aliasing; see DESIGN.md).
    }

    /** Levels resident in the secure buffer (no DRAM traffic). */
    unsigned bufferLevels() const { return rankLevels_; }

    /** Which rank region a leaf's path lives in. */
    unsigned
    rankOf(LeafId leaf) const
    {
        return static_cast<unsigned>(leaf >> inner_.treeLevels());
    }

    /**
     * Line addresses of the path to @p leaf, skipping the first
     * @p cached_levels levels of the *global* tree (the buffer-cached
     * levels subsume the shared top).
     */
    void
    pathLines(LeafId leaf, unsigned cached_levels,
              std::vector<Addr> &out) const
    {
        const unsigned skip_local =
            cached_levels > rankLevels_ ? cached_levels - rankLevels_
                                        : 0;
        const LeafId local =
            leaf & ((LeafId{1} << inner_.treeLevels()) - 1);
        const Addr base = static_cast<Addr>(rankOf(leaf)) * regionLines_;
        const std::size_t start = out.size();
        inner_.pathLines(local, skip_local, out);
        for (std::size_t i = start; i < out.size(); ++i)
            out[i] = base + (out[i] % regionLines_);
    }

    /** Phased variant of pathLines (see TreeLayout::pathLinesPhased). */
    void
    pathLinesPhased(LeafId leaf, unsigned cached_levels,
                    unsigned meta_lines, std::vector<Addr> &meta,
                    std::vector<Addr> &data) const
    {
        const unsigned skip_local =
            cached_levels > rankLevels_ ? cached_levels - rankLevels_
                                        : 0;
        const LeafId local =
            leaf & ((LeafId{1} << inner_.treeLevels()) - 1);
        const Addr base = static_cast<Addr>(rankOf(leaf)) * regionLines_;
        const std::size_t meta_start = meta.size();
        const std::size_t data_start = data.size();
        inner_.pathLinesPhased(local, skip_local, meta_lines, meta,
                               data);
        for (std::size_t i = meta_start; i < meta.size(); ++i)
            meta[i] = base + (meta[i] % regionLines_);
        for (std::size_t i = data_start; i < data.size(); ++i)
            data[i] = base + (data[i] % regionLines_);
    }

    const oram::TreeLayout &inner() const { return inner_; }

  private:
    unsigned rankLevels_;
    Addr regionLines_;
    oram::TreeLayout inner_;
};

} // namespace secdimm::sdimm

#endif // SECUREDIMM_SDIMM_LOW_POWER_HH
