/**
 * @file
 * The SDIMM command extension of Table I: new commands shoehorned into
 * the stock DDR interface by reserving the SDIMM's first memory blocks
 * (Section III-F).  RAS/CAS to reserved addresses are interpreted by
 * the secure buffer as commands; "short" commands need only the
 * command/address bus, "long" commands carry a payload on the data
 * bus (whose first byte disambiguates long commands sharing an
 * encoding).
 */

#ifndef SECUREDIMM_SDIMM_SDIMM_COMMAND_HH
#define SECUREDIMM_SDIMM_SDIMM_COMMAND_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace secdimm::sdimm
{

/** The nine SDIMM commands of Table I. */
enum class SdimmCommandType : std::uint8_t
{
    SendPkey,      ///< short RD  -- boot: request buffer public key.
    ReceiveSecret, ///< long  WR  -- boot: deliver session secret.
    Access,        ///< long  WR  -- start an accessORAM (Independent).
    Probe,         ///< short RD  -- poll for a ready response.
    FetchResult,   ///< short RD  -- read the completed block.
    Append,        ///< long  WR  -- push a (possibly dummy) block.
    FetchData,     ///< short RD  -- Split: pull path data to stash.
    FetchStash,    ///< long  WR  -- Split: request stash entry pieces.
    ReceiveList,   ///< long  WR  -- Split: eviction list + counters.
};

/** How a command appears on the DDR buses. */
struct DdrEncoding
{
    bool write = false;       ///< WR (long) vs RD (short) flavor.
    std::uint32_t rasRow = 0; ///< Row of the reserved region (0x0).
    std::uint32_t casCol = 0; ///< Column select within block 0.
    bool needsDataBus = false;///< Long command (payload follows).
    std::uint8_t opcode = 0;  ///< First payload byte for long cmds.
};

/** Encode a command per Table I. */
DdrEncoding encodeCommand(SdimmCommandType type);

/** Outcome classes of a strict bus decode. */
enum class BusDecodeStatus : std::uint8_t
{
    Command,      ///< A valid Table I command.
    NormalAccess, ///< RAS outside the reserved region: plain memory.
    Malformed,    ///< Reserved-region activity matching no command.
};

/** Strict decode result: @p command is set iff status == Command. */
struct BusDecodeResult
{
    BusDecodeStatus status = BusDecodeStatus::NormalAccess;
    std::optional<SdimmCommandType> command;
};

/**
 * Strictly decode bus activity: distinguishes a normal memory access
 * (RAS row != 0) from reserved-region activity that matches no Table I
 * row (a protocol violation the secure buffer must reject, not guess
 * at).  @p payload_opcode is the first data-bus byte, consulted for
 * long (WR) encodings only.
 */
BusDecodeResult decodeBusCommand(bool write, std::uint32_t ras_row,
                                 std::uint32_t cas_col,
                                 std::uint8_t payload_opcode);

/**
 * Lenient decode: the command, or nullopt for BOTH a normal memory
 * access and malformed reserved-region activity.  Callers that must
 * tell those cases apart (the secure buffer's front door) use
 * decodeBusCommand().
 */
std::optional<SdimmCommandType> decodeCommand(
    bool write, std::uint32_t ras_row, std::uint32_t cas_col,
    std::uint8_t payload_opcode);

/**
 * Self-describing byte frame for a command in flight on the link:
 * [magic 0x5D][type][payload len lo][payload len hi][payload...].
 * Long commands carry their Table I opcode as payload[0]; short
 * commands have an empty payload.  parseFrame() treats its input as
 * hostile (the fuzzer's primary target) and reports WHY a frame is
 * rejected instead of asserting.
 */
struct CommandFrame
{
    SdimmCommandType type = SdimmCommandType::SendPkey;
    std::vector<std::uint8_t> payload;
};

/** Why parseFrame() rejected its input. */
enum class FrameError : std::uint8_t
{
    None,
    Truncated,         ///< Fewer bytes than header + declared payload.
    BadMagic,          ///< First byte is not frameMagic.
    UnknownType,       ///< Type byte names no Table I command.
    LengthMismatch,    ///< Trailing bytes beyond the declared payload.
    UnexpectedPayload, ///< Short command declaring a payload.
    MissingPayload,    ///< Long command without its opcode byte.
    OpcodeMismatch,    ///< payload[0] disagrees with the Table I opcode.
    Oversize,          ///< Declared payload exceeds maxFramePayload.
};

inline constexpr std::uint8_t frameMagic = 0x5D;
inline constexpr std::size_t frameHeaderBytes = 4;
inline constexpr std::size_t maxFramePayload = 4096;

/** Either a parsed frame or the reason there is none. */
struct FrameParseResult
{
    std::optional<CommandFrame> frame;
    FrameError error = FrameError::None;
};

/** Serialize a frame (asserts the payload respects the type). */
std::vector<std::uint8_t> serializeFrame(const CommandFrame &frame);

/**
 * Parse an untrusted byte buffer.  Never crashes: every malformed
 * input maps to a FrameError.  Round-trip law:
 * parseFrame(serializeFrame(f)) reproduces f exactly.
 */
FrameParseResult parseFrame(const std::uint8_t *data, std::size_t len);

/** Human-readable FrameError name. */
const char *frameErrorName(FrameError error);

/** True for commands that occupy the data bus. */
bool isLongCommand(SdimmCommandType type);

/** Human-readable name. */
const char *commandName(SdimmCommandType type);

/** All commands, for table-driven tests and the Table I bench. */
const std::vector<SdimmCommandType> &allCommands();

} // namespace secdimm::sdimm

#endif // SECUREDIMM_SDIMM_SDIMM_COMMAND_HH
