/**
 * @file
 * The SDIMM command extension of Table I: new commands shoehorned into
 * the stock DDR interface by reserving the SDIMM's first memory blocks
 * (Section III-F).  RAS/CAS to reserved addresses are interpreted by
 * the secure buffer as commands; "short" commands need only the
 * command/address bus, "long" commands carry a payload on the data
 * bus (whose first byte disambiguates long commands sharing an
 * encoding).
 */

#ifndef SECUREDIMM_SDIMM_SDIMM_COMMAND_HH
#define SECUREDIMM_SDIMM_SDIMM_COMMAND_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace secdimm::sdimm
{

/** The nine SDIMM commands of Table I. */
enum class SdimmCommandType : std::uint8_t
{
    SendPkey,      ///< short RD  -- boot: request buffer public key.
    ReceiveSecret, ///< long  WR  -- boot: deliver session secret.
    Access,        ///< long  WR  -- start an accessORAM (Independent).
    Probe,         ///< short RD  -- poll for a ready response.
    FetchResult,   ///< short RD  -- read the completed block.
    Append,        ///< long  WR  -- push a (possibly dummy) block.
    FetchData,     ///< short RD  -- Split: pull path data to stash.
    FetchStash,    ///< long  WR  -- Split: request stash entry pieces.
    ReceiveList,   ///< long  WR  -- Split: eviction list + counters.
};

/** How a command appears on the DDR buses. */
struct DdrEncoding
{
    bool write = false;       ///< WR (long) vs RD (short) flavor.
    std::uint32_t rasRow = 0; ///< Row of the reserved region (0x0).
    std::uint32_t casCol = 0; ///< Column select within block 0.
    bool needsDataBus = false;///< Long command (payload follows).
    std::uint8_t opcode = 0;  ///< First payload byte for long cmds.
};

/** Encode a command per Table I. */
DdrEncoding encodeCommand(SdimmCommandType type);

/**
 * Decode bus activity back into a command.
 * @param write  RD vs WR
 * @param ras_row / cas_col as observed
 * @param payload_opcode first data byte (long commands only)
 * @return the command, or nullopt if this is a normal memory access.
 */
std::optional<SdimmCommandType> decodeCommand(
    bool write, std::uint32_t ras_row, std::uint32_t cas_col,
    std::uint8_t payload_opcode);

/** True for commands that occupy the data bus. */
bool isLongCommand(SdimmCommandType type);

/** Human-readable name. */
const char *commandName(SdimmCommandType type);

/** All commands, for table-driven tests and the Table I bench. */
const std::vector<SdimmCommandType> &allCommands();

} // namespace secdimm::sdimm

#endif // SECUREDIMM_SDIMM_SDIMM_COMMAND_HH
