/**
 * @file
 * Timing model of a CPU memory channel carrying SDIMM protocol
 * traffic.  SDIMM commands target the buffer chip, not DRAM banks, so
 * the only resource is the shared command/data bus; this model
 * serializes transfers and accounts the off-DIMM byte count used by
 * the Section IV-B traffic comparison and the I/O energy model.
 *
 * Transfers are byte-granular: a DDR3 bus moves 16 bytes per
 * controller cycle (64 bits x 2 transfers), and burst-chop (BC4)
 * allows 32-byte transactions, so small metadata slices cost less
 * than a full 64-byte burst.
 */

#ifndef SECUREDIMM_SDIMM_LINK_BUS_HH
#define SECUREDIMM_SDIMM_LINK_BUS_HH

#include <cstdint>
#include <functional>

#include "dram/timing.hh"
#include "util/bit_utils.hh"
#include "util/metrics.hh"
#include "util/types.hh"

namespace secdimm::sdimm
{

/** Aggregated link traffic, for traffic and energy reporting. */
struct LinkStats
{
    std::uint64_t dataBytes = 0;  ///< Payload bytes moved.
    std::uint64_t transfers = 0;  ///< Data transactions.
    std::uint64_t shortCmds = 0;  ///< Command-bus-only transactions.
    std::uint64_t probes = 0;     ///< PROBE polls (subset of shortCmds).

    /** Equivalent 64-byte lines (Section IV-B comparisons). */
    double
    lineEquivalents() const
    {
        return static_cast<double>(dataBytes) / blockBytes;
    }
};

/**
 * One transaction as seen from the bus pins: everything an adversary
 * snooping the CPU channel learns about SDIMM protocol traffic.
 */
struct LinkBusEvent
{
    bool isTransfer = false; ///< Data-bus payload vs short command.
    bool isProbe = false;    ///< PROBE poll (subset of short commands).
    std::uint64_t bytes = 0; ///< Payload size (0 for short commands).
    Tick at = 0;             ///< Transaction completion tick.
};

/** One channel's bus, shared by the SDIMMs behind it. */
class LinkBus
{
  public:
    /** Bus-trace observer (verify::ChannelObserver); single consumer. */
    using ObserverFn = std::function<void(const LinkBusEvent &)>;
    /**
     * @param timing DDR timing (tBURST defines line occupancy).
     * @param short_cmd_cycles bus occupancy of a short command.
     */
    explicit LinkBus(const dram::TimingParams &timing,
                     Cycles short_cmd_cycles = 1)
        : timing_(timing), shortCmdCycles_(short_cmd_cycles)
    {
        // 64-byte burst in tBURST cycles.
        bytesPerCycle_ = blockBytes / timing_.tBURST;
    }

    /**
     * Reserve the bus for a @p bytes transfer starting no earlier
     * than @p earliest; returns the completion tick.  Minimum
     * occupancy is a burst-chop (half burst).
     */
    Tick
    transferBytes(Tick earliest, std::uint64_t bytes)
    {
        const Cycles occupancy = std::max<Cycles>(
            timing_.tBURST / 2, divCeil(bytes, bytesPerCycle_));
        const Tick start = std::max(earliest, busFreeAt_);
        busFreeAt_ = start + occupancy;
        stats_.dataBytes += bytes;
        ++stats_.transfers;
        if (observer_)
            observer_(LinkBusEvent{true, false, bytes, busFreeAt_});
        return busFreeAt_;
    }

    /** Reserve the bus for @p lines full 64-byte bursts. */
    Tick
    transferLines(Tick earliest, std::uint64_t lines)
    {
        return transferBytes(earliest, lines * blockBytes);
    }

    /** Reserve a short (command-only) slot; returns completion tick. */
    Tick
    shortCommand(Tick earliest, bool is_probe = false)
    {
        const Tick start = std::max(earliest, busFreeAt_);
        busFreeAt_ = start + shortCmdCycles_;
        ++stats_.shortCmds;
        if (is_probe)
            ++stats_.probes;
        if (observer_)
            observer_(LinkBusEvent{false, is_probe, 0, busFreeAt_});
        return busFreeAt_;
    }

    Tick busFreeAt() const { return busFreeAt_; }
    const LinkStats &stats() const { return stats_; }

    /** Register the bus-trace observer; empty fn detaches. */
    void setObserver(ObserverFn fn) { observer_ = std::move(fn); }

    /** Export traffic counters under @p prefix (docs/METRICS.md). */
    void
    exportMetrics(util::MetricsRegistry &m,
                  const std::string &prefix) const
    {
        m.setCounter(prefix + ".data_bytes", stats_.dataBytes);
        m.setCounter(prefix + ".transfers", stats_.transfers);
        m.setCounter(prefix + ".short_cmds", stats_.shortCmds);
        m.setCounter(prefix + ".probes", stats_.probes);
        m.setGauge(prefix + ".line_equivalents",
                   stats_.lineEquivalents());
    }

  private:
    dram::TimingParams timing_;
    Cycles shortCmdCycles_;
    std::uint64_t bytesPerCycle_;
    Tick busFreeAt_ = 0;
    LinkStats stats_;
    ObserverFn observer_;
};

} // namespace secdimm::sdimm

#endif // SECUREDIMM_SDIMM_LINK_BUS_HH
