#include "sdimm/link_session.hh"

#include <cstring>

namespace secdimm::sdimm
{

namespace
{

/** Nonce domain separating link traffic from bucket encryption. */
constexpr std::uint64_t linkNonce = 0x4c494e4bULL << 32; // "LINK"

} // namespace

LinkEndpoint::LinkEndpoint(const crypto::Aes128Key &up_key,
                           const crypto::Aes128Key &down_key, bool is_cpu)
    : upCipher_(up_key),
      downCipher_(down_key),
      upMac_(crypto::makeKey(0x6d61632d7570ULL, 0)), // placeholder, reset
      downMac_(crypto::makeKey(0x6d61632d646eULL, 0)),
      isCpu_(is_cpu)
{
    // Derive MAC keys from the direction keys so both ends agree.
    crypto::Aes128Key up_mac = up_key;
    crypto::Aes128Key down_mac = down_key;
    for (auto &b : up_mac)
        b ^= 0xa5;
    for (auto &b : down_mac)
        b ^= 0x5a;
    upMac_ = crypto::Cmac(up_mac);
    downMac_ = crypto::Cmac(down_mac);
}

const crypto::CtrCipher &
LinkEndpoint::txCipher() const
{
    return isCpu_ ? upCipher_ : downCipher_;
}

const crypto::CtrCipher &
LinkEndpoint::rxCipher() const
{
    return isCpu_ ? downCipher_ : upCipher_;
}

const crypto::Cmac &
LinkEndpoint::txMac() const
{
    return isCpu_ ? upMac_ : downMac_;
}

const crypto::Cmac &
LinkEndpoint::rxMac() const
{
    return isCpu_ ? downMac_ : upMac_;
}

crypto::Tag64
LinkEndpoint::messageTag(const crypto::Cmac &mac,
                         const SealedMessage &msg) const
{
    macScratch_.resize(9 + msg.body.size());
    macScratch_[0] = msg.opcode;
    std::memcpy(macScratch_.data() + 1, &msg.seq, 8);
    if (!msg.body.empty())
        std::memcpy(macScratch_.data() + 9, msg.body.data(),
                    msg.body.size());
    const crypto::Aes128Block full =
        mac.compute(macScratch_.data(), macScratch_.size());
    crypto::Tag64 t;
    std::memcpy(&t, full.data(), 8);
    return t;
}

SealedMessage
LinkEndpoint::seal(std::uint8_t opcode,
                   const std::vector<std::uint8_t> &plaintext)
{
    SealedMessage msg;
    msg.opcode = opcode;
    msg.seq = sendSeq_++;
    msg.body = plaintext;
    txCipher().transformBuffer(msg.body.data(), msg.body.size(),
                               linkNonce | opcode, msg.seq);
    msg.mac = messageTag(txMac(), msg);
    sealedBytes_ += msg.body.size();
    return msg;
}

std::optional<std::vector<std::uint8_t>>
LinkEndpoint::unseal(const SealedMessage &msg)
{
    if (msg.seq < nextRecvSeq_) {
        ++authFailures_; // Replay.
        return std::nullopt;
    }
    if (messageTag(rxMac(), msg) != msg.mac) {
        ++authFailures_;
        return std::nullopt;
    }
    nextRecvSeq_ = msg.seq + 1;
    ++openedCount_;
    std::vector<std::uint8_t> plain = msg.body;
    rxCipher().transformBuffer(plain.data(), plain.size(),
                               linkNonce | msg.opcode, msg.seq);
    return plain;
}

std::pair<LinkEndpoint, LinkEndpoint>
establishLink(Rng &rng)
{
    // SEND_PKEY / RECEIVE_SECRET: each end contributes a DH half.
    const crypto::DhKeyPair cpu = crypto::dhGenerate(rng);
    const crypto::DhKeyPair dimm = crypto::dhGenerate(rng);
    const std::uint64_t shared_cpu = crypto::dhShared(cpu.priv, dimm.pub);
    const std::uint64_t shared_dimm =
        crypto::dhShared(dimm.priv, cpu.pub);
    // Both ends derive identical direction keys.
    const auto up_c = crypto::deriveSessionKey(shared_cpu, 0);
    const auto down_c = crypto::deriveSessionKey(shared_cpu, 1);
    const auto up_d = crypto::deriveSessionKey(shared_dimm, 0);
    const auto down_d = crypto::deriveSessionKey(shared_dimm, 1);
    return {LinkEndpoint(up_c, down_c, true),
            LinkEndpoint(up_d, down_d, false)};
}

} // namespace secdimm::sdimm
