/**
 * @file
 * Timing engine of one Split-ORAM group (Section III-D): the S slices
 * of one tree, each on its own internal channel, executing one
 * accessORAM at a time.  Data pieces move buffer-locally
 * (FETCH_DATA); metadata slices stream to the CPU over the channel;
 * the CPU reassembles, picks the block (FETCH_STASH) and ships the
 * eviction schedule (RECEIVE_LIST); write-backs drain locally while
 * the next operation starts.
 */

#ifndef SECUREDIMM_SDIMM_SPLIT_ENGINE_HH
#define SECUREDIMM_SDIMM_SPLIT_ENGINE_HH

#include <array>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dram/channel.hh"
#include "oram/oram_params.hh"
#include "oram/tree_layout.hh"
#include "sdimm/link_bus.hh"
#include "sdimm/low_power.hh"
#include "util/bit_utils.hh"
#include "util/rng.hh"

namespace secdimm::sdimm
{

/** One Split group (all S slices of one tree). */
class SplitGroupEngine
{
  public:
    /** Fired when the requested block reaches the CPU. */
    using OpDoneFn = std::function<void(std::uint64_t tag, Tick result)>;

    /**
     * @param tree   the group's (full) tree parameters
     * @param buses  one LinkBus per slice (slices may share buses)
     */
    SplitGroupEngine(const std::string &name,
                     const oram::OramParams &tree, unsigned slices,
                     std::vector<LinkBus *> buses,
                     const dram::TimingParams &timing,
                     const dram::Geometry &geom, bool low_power,
                     std::uint64_t seed);

    void setOpDoneCallback(OpDoneFn fn) { onOpDone_ = std::move(fn); }

    void submitOp(std::uint64_t tag, Tick ready_at);

    Tick nextEventAt() const;
    void advanceTo(Tick now);
    bool idle() const;

    unsigned sliceCount() const
    {
        return static_cast<unsigned>(slices_.size());
    }
    dram::DramChannel &sliceChannel(unsigned i)
    {
        return *slices_[i].channel;
    }
    const dram::DramChannel &sliceChannel(unsigned i) const
    {
        return *slices_[i].channel;
    }
    std::uint64_t opsExecuted() const { return opsExecuted_; }

    /** 64-byte lines each slice's bucket share occupies. */
    unsigned dataLinesPerBucket() const { return dataLines_; }
    unsigned linesPerBucketSlice() const { return dataLines_ + 1; }

    /** RECEIVE_LIST size per slice, in bytes. */
    std::uint64_t listBytesPerSlice() const;

    /** Export ops-executed + queue-depth under @p prefix; slice
     *  DRAM channels are exported separately ("dram.*"). */
    void
    exportMetrics(util::MetricsRegistry &m,
                  const std::string &prefix) const
    {
        m.setCounter(prefix + ".ops_executed", opsExecuted_);
        m.histogram(prefix + ".queue_depth").merge(queueDepth_);
    }

  private:
    struct StagedLine
    {
        Addr line;
        Tick at;
        bool write;
        bool meta;
    };

    struct Slice
    {
        std::unique_ptr<dram::DramChannel> channel;
        LinkBus *bus = nullptr;
        /** Staged lines per kind (0 = read, 1 = write). */
        std::array<std::deque<StagedLine>, 2> staged;
        std::size_t stagedTotal = 0;
        std::size_t stagedMetaReads = 0;
        std::size_t stagedDataReads = 0;
        std::uint64_t outstandingReads = 0;
        std::uint64_t outstandingMetaReads = 0;
        std::uint64_t outstandingWrites = 0;
        Tick lastReadDone = 0;
        Tick metaAtCpu = 0;
    };

    struct PendingOp
    {
        std::uint64_t tag;
        Tick readyAt;
    };

    void onDramDone(unsigned slice, const dram::DramCompletion &c);
    void tryStart();
    void maybeRespond();
    void maybeFinishReads();
    void pump(Slice &sl);
    void buildSlicePath(std::vector<Addr> &meta,
                        std::vector<Addr> &data) const;

    oram::OramParams tree_;
    unsigned dataLines_;
    std::optional<oram::TreeLayout> layout_;
    std::optional<LowPowerLayout> lowPowerLayout_;
    bool lowPower_;
    Rng rng_;
    OpDoneFn onOpDone_;

    std::vector<Slice> slices_;
    std::deque<PendingOp> ops_;
    bool opInFlight_ = false;
    bool responseSent_ = false;
    Tick groupFreeAt_ = 0;
    Tick listDoneAt_ = 0;
    Cycles blockFetchCycles_ = 17;
    LeafId opLeaf_ = 0;
    std::uint64_t opsExecuted_ = 0;
    util::LogHistogram queueDepth_;
};

} // namespace secdimm::sdimm

#endif // SECUREDIMM_SDIMM_SPLIT_ENGINE_HH
