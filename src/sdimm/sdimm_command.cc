#include "sdimm/sdimm_command.hh"

#include "util/logging.hh"

namespace secdimm::sdimm
{

namespace
{

/**
 * Table I.  Short (RD) commands are distinguished by the CAS column
 * within reserved block 0 (8-byte word granularity: 0x0, 0x8, 0x10,
 * 0x18).  Long (WR) commands mostly share RAS(0x0) CAS(0x0) and carry
 * an opcode in the first payload byte; FETCH_STASH uses CAS 0x18 with
 * the stash index in a subsequent CAS.
 */
struct Row
{
    SdimmCommandType type;
    DdrEncoding enc;
};

const Row table[] = {
    {SdimmCommandType::SendPkey, {false, 0x0, 0x00, false, 0}},
    {SdimmCommandType::ReceiveSecret, {true, 0x0, 0x00, true, 1}},
    {SdimmCommandType::Access, {true, 0x0, 0x00, true, 2}},
    {SdimmCommandType::Probe, {false, 0x0, 0x08, false, 0}},
    {SdimmCommandType::FetchResult, {false, 0x0, 0x10, false, 0}},
    {SdimmCommandType::Append, {true, 0x0, 0x00, true, 3}},
    {SdimmCommandType::FetchData, {false, 0x0, 0x18, false, 0}},
    {SdimmCommandType::FetchStash, {true, 0x0, 0x18, true, 4}},
    {SdimmCommandType::ReceiveList, {true, 0x0, 0x00, true, 5}},
};

} // namespace

DdrEncoding
encodeCommand(SdimmCommandType type)
{
    for (const Row &row : table) {
        if (row.type == type)
            return row.enc;
    }
    return DdrEncoding{};
}

BusDecodeResult
decodeBusCommand(bool write, std::uint32_t ras_row,
                 std::uint32_t cas_col, std::uint8_t payload_opcode)
{
    if (ras_row != 0)
        return {BusDecodeStatus::NormalAccess, std::nullopt};
    for (const Row &row : table) {
        if (row.enc.write != write || row.enc.casCol != cas_col)
            continue;
        if (row.enc.needsDataBus && row.enc.opcode != payload_opcode)
            continue;
        return {BusDecodeStatus::Command, row.type};
    }
    // Reserved-region activity with no matching row: the host is
    // speaking a protocol the buffer does not understand.
    return {BusDecodeStatus::Malformed, std::nullopt};
}

std::optional<SdimmCommandType>
decodeCommand(bool write, std::uint32_t ras_row, std::uint32_t cas_col,
              std::uint8_t payload_opcode)
{
    return decodeBusCommand(write, ras_row, cas_col, payload_opcode)
        .command;
}

std::vector<std::uint8_t>
serializeFrame(const CommandFrame &frame)
{
    const DdrEncoding enc = encodeCommand(frame.type);
    SD_ASSERT(frame.payload.size() <= maxFramePayload);
    if (enc.needsDataBus) {
        SD_ASSERT(!frame.payload.empty());
        SD_ASSERT(frame.payload[0] == enc.opcode);
    } else {
        SD_ASSERT(frame.payload.empty());
    }
    std::vector<std::uint8_t> out;
    out.reserve(frameHeaderBytes + frame.payload.size());
    out.push_back(frameMagic);
    out.push_back(static_cast<std::uint8_t>(frame.type));
    out.push_back(
        static_cast<std::uint8_t>(frame.payload.size() & 0xff));
    out.push_back(
        static_cast<std::uint8_t>((frame.payload.size() >> 8) & 0xff));
    out.insert(out.end(), frame.payload.begin(), frame.payload.end());
    return out;
}

FrameParseResult
parseFrame(const std::uint8_t *data, std::size_t len)
{
    const auto reject = [](FrameError e) {
        return FrameParseResult{std::nullopt, e};
    };
    if (len < frameHeaderBytes)
        return reject(FrameError::Truncated);
    if (data[0] != frameMagic)
        return reject(FrameError::BadMagic);
    const std::uint8_t type_byte = data[1];
    if (type_byte >= allCommands().size())
        return reject(FrameError::UnknownType);
    const auto type = static_cast<SdimmCommandType>(type_byte);
    const std::size_t declared =
        static_cast<std::size_t>(data[2]) |
        (static_cast<std::size_t>(data[3]) << 8);
    if (declared > maxFramePayload)
        return reject(FrameError::Oversize);
    if (len < frameHeaderBytes + declared)
        return reject(FrameError::Truncated);
    if (len > frameHeaderBytes + declared)
        return reject(FrameError::LengthMismatch);
    const DdrEncoding enc = encodeCommand(type);
    if (!enc.needsDataBus && declared != 0)
        return reject(FrameError::UnexpectedPayload);
    if (enc.needsDataBus && declared == 0)
        return reject(FrameError::MissingPayload);
    if (enc.needsDataBus && data[frameHeaderBytes] != enc.opcode)
        return reject(FrameError::OpcodeMismatch);
    CommandFrame frame;
    frame.type = type;
    frame.payload.assign(data + frameHeaderBytes,
                         data + frameHeaderBytes + declared);
    return {std::move(frame), FrameError::None};
}

const char *
frameErrorName(FrameError error)
{
    switch (error) {
      case FrameError::None: return "NONE";
      case FrameError::Truncated: return "TRUNCATED";
      case FrameError::BadMagic: return "BAD_MAGIC";
      case FrameError::UnknownType: return "UNKNOWN_TYPE";
      case FrameError::LengthMismatch: return "LENGTH_MISMATCH";
      case FrameError::UnexpectedPayload: return "UNEXPECTED_PAYLOAD";
      case FrameError::MissingPayload: return "MISSING_PAYLOAD";
      case FrameError::OpcodeMismatch: return "OPCODE_MISMATCH";
      case FrameError::Oversize: return "OVERSIZE";
    }
    return "UNKNOWN";
}

bool
isLongCommand(SdimmCommandType type)
{
    return encodeCommand(type).needsDataBus;
}

const char *
commandName(SdimmCommandType type)
{
    switch (type) {
      case SdimmCommandType::SendPkey: return "SEND_PKEY";
      case SdimmCommandType::ReceiveSecret: return "RECEIVE_SECRET";
      case SdimmCommandType::Access: return "ACCESS";
      case SdimmCommandType::Probe: return "PROBE";
      case SdimmCommandType::FetchResult: return "FETCH_RESULT";
      case SdimmCommandType::Append: return "APPEND";
      case SdimmCommandType::FetchData: return "FETCH_DATA";
      case SdimmCommandType::FetchStash: return "FETCH_STASH";
      case SdimmCommandType::ReceiveList: return "RECEIVE_LIST";
    }
    return "UNKNOWN";
}

const std::vector<SdimmCommandType> &
allCommands()
{
    static const std::vector<SdimmCommandType> all = {
        SdimmCommandType::SendPkey,    SdimmCommandType::ReceiveSecret,
        SdimmCommandType::Access,      SdimmCommandType::Probe,
        SdimmCommandType::FetchResult, SdimmCommandType::Append,
        SdimmCommandType::FetchData,   SdimmCommandType::FetchStash,
        SdimmCommandType::ReceiveList,
    };
    return all;
}

} // namespace secdimm::sdimm
