#include "sdimm/sdimm_command.hh"

namespace secdimm::sdimm
{

namespace
{

/**
 * Table I.  Short (RD) commands are distinguished by the CAS column
 * within reserved block 0 (8-byte word granularity: 0x0, 0x8, 0x10,
 * 0x18).  Long (WR) commands mostly share RAS(0x0) CAS(0x0) and carry
 * an opcode in the first payload byte; FETCH_STASH uses CAS 0x18 with
 * the stash index in a subsequent CAS.
 */
struct Row
{
    SdimmCommandType type;
    DdrEncoding enc;
};

const Row table[] = {
    {SdimmCommandType::SendPkey, {false, 0x0, 0x00, false, 0}},
    {SdimmCommandType::ReceiveSecret, {true, 0x0, 0x00, true, 1}},
    {SdimmCommandType::Access, {true, 0x0, 0x00, true, 2}},
    {SdimmCommandType::Probe, {false, 0x0, 0x08, false, 0}},
    {SdimmCommandType::FetchResult, {false, 0x0, 0x10, false, 0}},
    {SdimmCommandType::Append, {true, 0x0, 0x00, true, 3}},
    {SdimmCommandType::FetchData, {false, 0x0, 0x18, false, 0}},
    {SdimmCommandType::FetchStash, {true, 0x0, 0x18, true, 4}},
    {SdimmCommandType::ReceiveList, {true, 0x0, 0x00, true, 5}},
};

} // namespace

DdrEncoding
encodeCommand(SdimmCommandType type)
{
    for (const Row &row : table) {
        if (row.type == type)
            return row.enc;
    }
    return DdrEncoding{};
}

std::optional<SdimmCommandType>
decodeCommand(bool write, std::uint32_t ras_row, std::uint32_t cas_col,
              std::uint8_t payload_opcode)
{
    if (ras_row != 0)
        return std::nullopt; // Normal memory access.
    for (const Row &row : table) {
        if (row.enc.write != write || row.enc.casCol != cas_col)
            continue;
        if (row.enc.needsDataBus && row.enc.opcode != payload_opcode)
            continue;
        return row.type;
    }
    return std::nullopt;
}

bool
isLongCommand(SdimmCommandType type)
{
    return encodeCommand(type).needsDataBus;
}

const char *
commandName(SdimmCommandType type)
{
    switch (type) {
      case SdimmCommandType::SendPkey: return "SEND_PKEY";
      case SdimmCommandType::ReceiveSecret: return "RECEIVE_SECRET";
      case SdimmCommandType::Access: return "ACCESS";
      case SdimmCommandType::Probe: return "PROBE";
      case SdimmCommandType::FetchResult: return "FETCH_RESULT";
      case SdimmCommandType::Append: return "APPEND";
      case SdimmCommandType::FetchData: return "FETCH_DATA";
      case SdimmCommandType::FetchStash: return "FETCH_STASH";
      case SdimmCommandType::ReceiveList: return "RECEIVE_LIST";
    }
    return "UNKNOWN";
}

const std::vector<SdimmCommandType> &
allCommands()
{
    static const std::vector<SdimmCommandType> all = {
        SdimmCommandType::SendPkey,    SdimmCommandType::ReceiveSecret,
        SdimmCommandType::Access,      SdimmCommandType::Probe,
        SdimmCommandType::FetchResult, SdimmCommandType::Append,
        SdimmCommandType::FetchData,   SdimmCommandType::FetchStash,
        SdimmCommandType::ReceiveList,
    };
    return all;
}

} // namespace secdimm::sdimm
