#include "sdimm/independent_oram.hh"

#include <cctype>

#include "util/bit_utils.hh"
#include "util/logging.hh"

namespace secdimm::sdimm
{

IndependentOram::IndependentOram(const Params &params, std::uint64_t seed)
    : params_(params),
      localLevels_(params.perSdimm.levels),
      rng_(seed)
{
    SD_ASSERT(isPowerOfTwo(params_.numSdimms));
    for (unsigned i = 0; i < params_.numSdimms; ++i) {
        buffers_.push_back(std::make_unique<SecureBuffer>(
            params_.perSdimm, i, seed * 1000003 + i,
            params_.transferCapacity, params_.drainProb, rng_));
    }
    const std::uint64_t global_leaves =
        static_cast<std::uint64_t>(params_.numSdimms) *
        params_.perSdimm.numLeaves();
    posMap_.resize(capacityBlocks());
    for (auto &leaf : posMap_)
        leaf = rng_.nextBelow(global_leaves);
}

std::uint64_t
IndependentOram::capacityBlocks() const
{
    return static_cast<std::uint64_t>(params_.numSdimms) *
           params_.perSdimm.capacityBlocks();
}

unsigned
IndependentOram::sdimmOf(LeafId global_leaf) const
{
    return static_cast<unsigned>(global_leaf >> localLevels_);
}

LeafId
IndependentOram::localLeaf(LeafId global_leaf) const
{
    return global_leaf & ((LeafId{1} << localLevels_) - 1);
}

BlockData
IndependentOram::access(Addr addr, oram::OramOp op,
                        const BlockData *new_data)
{
    SD_ASSERT(addr < posMap_.size());
    const bool write = op == oram::OramOp::Write;
    SD_ASSERT(!write || new_data != nullptr);

    // Frontend: look up and remap the global leaf.
    const LeafId old_leaf = posMap_[addr];
    const std::uint64_t global_leaves =
        static_cast<std::uint64_t>(params_.numSdimms) *
        params_.perSdimm.numLeaves();
    const LeafId new_leaf = rng_.nextBelow(global_leaves);
    posMap_[addr] = new_leaf;

    const unsigned src = sdimmOf(old_leaf);
    const unsigned dst = sdimmOf(new_leaf);
    const bool stays = src == dst;

    // Step 1-2: sealed ACCESS to the source SDIMM (a read still
    // carries one -- dummy -- data block so the operation type is
    // hidden; the fixed message size realizes that).
    AccessRequest req;
    req.addr = addr;
    req.localLeaf = localLeaf(old_leaf);
    req.newLocalLeaf = stays ? localLeaf(new_leaf) : invalidLeaf;
    req.write = write;
    if (write)
        req.data = *new_data;
    SealedMessage access_msg =
        buffers_[src]->cpuLink().seal(0x02, packAccess(req));
    recordBus(SdimmCommandType::Access, src, access_msg.body.size());

    // Steps 3-5 happen inside the SDIMM; the CPU polls (PROBE) and
    // fetches the response.
    const SealedMessage resp_msg = buffers_[src]->handleAccess(access_msg);
    recordBus(SdimmCommandType::Probe, src, 0);
    recordBus(SdimmCommandType::FetchResult, src, resp_msg.body.size());

    auto resp_plain = buffers_[src]->cpuLink().unseal(resp_msg);
    if (!resp_plain)
        panic("CPU: SDIMM %u response failed authentication", src);
    const auto resp_parsed = unpackResponse(*resp_plain);
    if (!resp_parsed)
        panic("CPU: SDIMM %u response malformed (%zu bytes)", src,
              resp_plain->size());
    const AccessResponse resp = *resp_parsed;

    // The value returned to the LLC (pre-write content).
    BlockData result{};
    if (!resp.dummy)
        result = resp.data;
    if (write && resp.dummy) {
        // Local write: the SDIMM kept the (updated) block; the old
        // value is not needed by the caller in this protocol.
        result = BlockData{};
    }

    // Step 6: one APPEND to every SDIMM; only the destination's is
    // real (and only if the block actually moved).
    for (unsigned i = 0; i < params_.numSdimms; ++i) {
        AppendRequest app;
        app.real = !stays && i == dst;
        if (app.real) {
            app.addr = addr;
            app.localLeaf = localLeaf(new_leaf);
            app.data = write ? *new_data : resp.data;
        }
        SealedMessage app_msg =
            buffers_[i]->cpuLink().seal(0x03, packAppend(app));
        recordBus(SdimmCommandType::Append, i, app_msg.body.size());
        buffers_[i]->handleAppend(app_msg);
    }

    return result;
}

bool
IndependentOram::integrityOk() const
{
    for (const auto &b : buffers_) {
        if (!b->integrityOk())
            return false;
    }
    return true;
}

void
IndependentOram::recordBus(SdimmCommandType type, unsigned sdimm,
                           std::size_t bytes)
{
    busTrace_.push_back({type, sdimm, bytes});
    const auto idx = static_cast<std::size_t>(type);
    ++cmdCounts_[idx];
    cmdBytes_[idx] += bytes;
}

void
IndependentOram::exportMetrics(util::MetricsRegistry &m,
                               const std::string &prefix) const
{
    for (const SdimmCommandType t : allCommands()) {
        const auto idx = static_cast<std::size_t>(t);
        if (cmdCounts_[idx] == 0)
            continue;
        std::string name = commandName(t);
        for (char &c : name)
            c = static_cast<char>(std::tolower(c));
        m.setCounter(prefix + ".cmd." + name + ".count",
                     cmdCounts_[idx]);
        m.setCounter(prefix + ".cmd." + name + ".bytes",
                     cmdBytes_[idx]);
    }
    for (unsigned i = 0; i < params_.numSdimms; ++i) {
        buffers_[i]->exportMetrics(
            m, prefix + ".buf" + std::to_string(i));
    }
}

} // namespace secdimm::sdimm
