#include "sdimm/independent_oram.hh"

#include <algorithm>
#include <cctype>

#include "fault/fault_injector.hh"
#include "util/bit_utils.hh"
#include "util/logging.hh"

namespace secdimm::sdimm
{

IndependentOram::IndependentOram(const Params &params, std::uint64_t seed)
    : params_(params),
      localLevels_(params.perSdimm.levels),
      rng_(seed)
{
    SD_ASSERT(isPowerOfTwo(params_.numSdimms));
    for (unsigned i = 0; i < params_.numSdimms; ++i) {
        buffers_.push_back(std::make_unique<SecureBuffer>(
            params_.perSdimm, i, seed * 1000003 + i,
            params_.transferCapacity, params_.drainProb, rng_));
    }
    const std::uint64_t global_leaves =
        static_cast<std::uint64_t>(params_.numSdimms) *
        params_.perSdimm.numLeaves();
    posMap_.resize(capacityBlocks());
    for (auto &leaf : posMap_)
        leaf = rng_.nextBelow(global_leaves);
}

std::uint64_t
IndependentOram::capacityBlocks() const
{
    return static_cast<std::uint64_t>(params_.numSdimms) *
           params_.perSdimm.capacityBlocks();
}

unsigned
IndependentOram::sdimmOf(LeafId global_leaf) const
{
    return static_cast<unsigned>(global_leaf >> localLevels_);
}

LeafId
IndependentOram::localLeaf(LeafId global_leaf) const
{
    return global_leaf & ((LeafId{1} << localLevels_) - 1);
}

void
IndependentOram::setFaultInjector(fault::FaultInjector *inj,
                                  fault::DegradationPolicy policy)
{
    injector_ = inj;
    policy_ = policy;
    quarantined_.assign(params_.numSdimms, false);
    for (auto &b : buffers_)
        b->setFaultInjector(inj);
}

void
IndependentOram::quarantine(unsigned sdimm)
{
    if (quarantined_.empty())
        quarantined_.assign(params_.numSdimms, false);
    SD_ASSERT(sdimm < quarantined_.size());
    if (!quarantined_[sdimm] && injector_)
        injector_->recordQuarantine();
    quarantined_[sdimm] = true;
}

unsigned
IndependentOram::quarantinedCount() const
{
    unsigned n = 0;
    for (const bool q : quarantined_)
        n += q ? 1 : 0;
    return n;
}

LeafId
IndependentOram::drawGlobalLeaf()
{
    const std::uint64_t global_leaves =
        static_cast<std::uint64_t>(params_.numSdimms) *
        params_.perSdimm.numLeaves();
    // One draw in the common case; redraws only consult the (public)
    // quarantine set, never data, so the draw count stays
    // data-independent.  At least one SDIMM is always in service.
    LeafId leaf;
    do {
        leaf = rng_.nextBelow(global_leaves);
    } while (isQuarantined(sdimmOf(leaf)) &&
             quarantinedCount() < params_.numSdimms);
    return leaf;
}

void
IndependentOram::onUnrecoverable(fault::FaultKind kind, unsigned sdimm,
                                 const std::string &site,
                                 unsigned attempts)
{
    if (policy_ != fault::DegradationPolicy::Degraded) {
        injector_->recordUnrecovered(kind, site, attempts);
        failedStop_ = true;
        return;
    }
    const bool was = isQuarantined(sdimm);
    if (!was && quarantinedCount() + 1 >= params_.numSdimms) {
        // Quarantining the last unit in service leaves nowhere to
        // evacuate to: fall back to FailStop with a distinct ledger
        // entry instead of dummy-padding an APPEND stream into
        // nothing.
        injector_->recordUnrecovered(kind, site + ".zero_survivors",
                                     attempts);
        injector_->recordZeroSurvivorFailStop();
        quarantine(sdimm);
        failedStop_ = true;
        return;
    }
    injector_->recordUnrecovered(kind, site, attempts);
    quarantine(sdimm);
    if (!was)
        evacuateSdimm(sdimm);
}

void
IndependentOram::runWatchdog(unsigned sdimm)
{
    const fault::FaultPlan &plan = injector_->plan();
    for (unsigned p = 0; p < plan.watchdogMaxProbes; ++p) {
        recordBus(SdimmCommandType::Probe, sdimm, 0);
        injector_->recordWatchdogProbe(plan.watchdogBackoff(p));
    }
    injector_->markPermanentDetected(sdimm);
}

void
IndependentOram::handleDeadUnit(unsigned sdimm, const std::string &site,
                                unsigned attempts)
{
    if (policy_ != fault::DegradationPolicy::Degraded) {
        injector_->recordUnrecovered(fault::FaultKind::WatchdogTimeout,
                                     site, attempts);
        failedStop_ = true;
        return;
    }
    if (quarantinedCount() + 1 >= params_.numSdimms) {
        // Zero survivors after this quarantine: distinct ledger entry
        // + FailStop (see onUnrecoverable).  Detection already closed
        // by the watchdog, so the identity detected == recovered +
        // unrecovered still holds exactly.
        injector_->recordUnrecovered(fault::FaultKind::WatchdogTimeout,
                                     site + ".zero_survivors", attempts);
        injector_->recordZeroSurvivorFailStop();
        quarantine(sdimm);
        failedStop_ = true;
        return;
    }
    injector_->recordRecovered(fault::FaultKind::WatchdogTimeout, site,
                               attempts);
    quarantine(sdimm);
    evacuateSdimm(sdimm);
}

void
IndependentOram::sweepPermanentFaults()
{
    for (unsigned i = 0; i < params_.numSdimms; ++i) {
        if (failedStop_)
            return;
        if (isQuarantined(i) || !injector_->unitDead(i))
            continue;
        runWatchdog(i);
        handleDeadUnit(i, "watchdog.sdimm" + std::to_string(i),
                       injector_->plan().watchdogMaxProbes);
    }
    sweepRetirement();
}

void
IndependentOram::sweepRetirement()
{
    if (failedStop_ || injector_->plan().retireTaxThresholdCycles == 0)
        return;
    for (unsigned i = 0; i < params_.numSdimms; ++i) {
        if (!isQuarantined(i))
            injector_->noteUnitTax(i, injector_->unitLatencyPenalty(i));
    }
    if (policy_ != fault::DegradationPolicy::Degraded)
        return;
    for (unsigned i = 0; i < params_.numSdimms; ++i) {
        if (isQuarantined(i) || !injector_->retirementDue(i))
            continue;
        if (quarantinedCount() + 1 >= params_.numSdimms)
            continue; // never retire the last unit in service
        injector_->markRetired(i);
        ++retiredUnits_;
        quarantine(i);
        evacuateSdimm(i);
    }
}

void
IndependentOram::noteUnitSuspicion(unsigned sdimm, double blame)
{
    if (!injector_)
        return;
    injector_->noteMistrust(sdimm, blame);
    if (!injector_->mistrustArmed() ||
        policy_ != fault::DegradationPolicy::Degraded)
        return;
    if (failedStop_ || isQuarantined(sdimm))
        return;
    if (injector_->convictionDue(sdimm))
        convictUnit(sdimm);
}

void
IndependentOram::convictUnit(unsigned sdimm)
{
    const std::string site = "mistrust.sdimm" + std::to_string(sdimm);
    injector_->markConvicted(sdimm);
    ++convictedUnits_;
    if (quarantinedCount() + 1 >= params_.numSdimms) {
        // Convicting the last unit in service leaves nowhere to
        // evacuate to: distinct zero-survivor ledger entry + FailStop,
        // same shape as handleDeadUnit.
        injector_->recordUnrecovered(fault::FaultKind::ByzantineConvict,
                                     site + ".zero_survivors", 0);
        injector_->recordZeroSurvivorFailStop();
        quarantine(sdimm);
        failedStop_ = true;
        return;
    }
    injector_->recordRecovered(fault::FaultKind::ByzantineConvict, site,
                               0);
    quarantine(sdimm);
    evacuateSdimm(sdimm);
}

void
IndependentOram::evacuateSdimm(unsigned sdimm)
{
    /*
     * Maintenance-path read: the buffer chip's protocol engine is
     * dead but the raw DRAM behind it is still readable (docs/FAULTS.md
     * states the assumption); this also covers the chip-internal stash
     * and transfer-queue state the model keeps alongside the tree.
     */
    const std::vector<oram::StashEntry> live =
        buffers_[sdimm]->residentBlocks();

    // PosMap remaps are CPU-private: every address routed at the dead
    // SDIMM is silently redrawn among the survivors before any wire
    // traffic, so the APPEND destinations below look like any other
    // relocation.
    for (Addr a = 0; a < posMap_.size(); ++a) {
        if (sdimmOf(posMap_[a]) == sdimm)
            posMap_[a] = drawGlobalLeaf();
    }

    /*
     * Dummy-padded APPEND streams: the slot count is the per-SDIMM
     * tree capacity (public geometry), padded up only when more than
     * that is live -- and the live count is a function of the public
     * leaf randomness, never of block contents.
     */
    const std::uint64_t slots = std::max<std::uint64_t>(
        params_.perSdimm.capacityBlocks(), live.size());
    ++evacuationDepth_;
    SD_ASSERT(evacuationDepth_ <= params_.numSdimms);
    for (std::uint64_t s = 0; s < slots; ++s) {
        const bool have = s < live.size();
        bool placed = false;
        bool redo = true;
        while (redo) {
            redo = false;
            const unsigned quarantinedBefore = quarantinedCount();
            for (unsigned i = 0; i < params_.numSdimms; ++i) {
                /*
                 * Re-entrant recovery: a correlated cascade can
                 * surface a SECOND death while this evacuation is
                 * mid-stream.  The watchdog fires here, the new
                 * corpse is quarantined, and its evacuation nests
                 * inside this one (the unit is quarantined before the
                 * recursion, so the depth is bounded by numSdimms).
                 * Blocks this loop already re-appended onto the newly
                 * dead unit are in its buffer and get drained by the
                 * nested pass; blocks still pending re-read posMap_
                 * fresh below, so they route around it.
                 */
                if (!failedStop_ && !isQuarantined(i) &&
                    injector_->unitDead(i)) {
                    ++nestedEvacuations_;
                    runWatchdog(i);
                    handleDeadUnit(i,
                                   "watchdog.sdimm" + std::to_string(i) +
                                       ".mid_evac",
                                   injector_->plan().watchdogMaxProbes);
                }
                AppendRequest app;
                if (have && !failedStop_ && !placed) {
                    const LeafId leaf = posMap_[live[s].addr];
                    app.real = !isQuarantined(i) && sdimmOf(leaf) == i;
                    if (app.real) {
                        app.addr = live[s].addr;
                        app.localLeaf = localLeaf(leaf);
                        app.data = live[s].data;
                    }
                }
                if (failedStop_ || isQuarantined(i)) {
                    recordBus(SdimmCommandType::Append, i,
                              appendBodyBytes);
                    continue;
                }
                const bool ok = transmitUplink(
                    i, SdimmCommandType::Append,
                    [&] {
                        return buffers_[i]->cpuLink().seal(
                            0x03, packAppend(app));
                    },
                    [&](const SealedMessage &m) {
                        return buffers_[i]->handleAppend(m);
                    });
                if (app.real && ok)
                    placed = true;
            }
            /*
             * A nested evacuation (or a budget-exhaustion quarantine
             * inside transmitUplink) can redraw this slot's
             * destination onto a unit the sweep above had ALREADY
             * passed, silently dropping the block.  Whenever the
             * quarantine set changed mid-sweep -- a public,
             * fault-triggered event -- re-run the slot: the block (if
             * still unplaced) lands on its redrawn survivor, and an
             * already-placed block rides the re-run as all-dummy
             * padding, indistinguishable on the wire.
             */
            if (!failedStop_ && quarantinedCount() != quarantinedBefore)
                redo = true;
        }
    }
    --evacuationDepth_;
    evacuatedBlocks_ += live.size();
    injector_->recordEvacuation(live.size(), slots * params_.numSdimms);
}

bool
IndependentOram::transmitUplink(
    unsigned sdimm, SdimmCommandType type,
    const std::function<SealedMessage()> &reseal,
    const std::function<bool(const SealedMessage &)> &deliver)
{
    unsigned attempts = 0;
    const unsigned budget = injector_ ? injector_->maxRetries() : 0;
    const std::string site =
        std::string("uplink.") + commandName(type);
    while (true) {
        SealedMessage msg = reseal();
        recordBus(type, sdimm, msg.body.size());
        fault::WireOutcome out = injector_
                                     ? injector_->rollLinkFault()
                                     : fault::WireOutcome::Delivered;
        if (out == fault::WireOutcome::Delayed) {
            // The frame arrives one timeout window late; the PROBE
            // that notices the silence is the deterministic backoff.
            injector_->recordDetected(fault::FaultKind::LinkDelay);
            injector_->recordRecovered(fault::FaultKind::LinkDelay,
                                       site, 1);
            recordBus(SdimmCommandType::Probe, sdimm, 0);
            out = fault::WireOutcome::Delivered;
        }
        if (out == fault::WireOutcome::Corrupted)
            injector_->corruptBuffer(msg.body);
        const bool accepted =
            out != fault::WireOutcome::Dropped && deliver(msg);
        if (accepted)
            return true;
        // Corruption is caught by the buffer's CMAC; a drop by the
        // PROBE timeout.  Either way the CPU re-seals and re-sends.
        const fault::FaultKind kind =
            out == fault::WireOutcome::Dropped
                ? fault::FaultKind::LinkDrop
                : fault::FaultKind::LinkCorrupt;
        injector_->recordDetected(kind);
        recordBus(SdimmCommandType::Probe, sdimm, 0);
        if (attempts >= budget) {
            onUnrecoverable(kind, sdimm, site, attempts);
            return false;
        }
        ++attempts;
        injector_->recordRecovered(kind, site, 1);
    }
}

BlockData
IndependentOram::access(Addr addr, oram::OramOp op,
                        const BlockData *new_data)
{
    SD_ASSERT(addr < posMap_.size());
    const bool write = op == oram::OramOp::Write;
    SD_ASSERT(!write || new_data != nullptr);

    // Permanent faults surface here: the watchdog notices a silent
    // SDIMM before the PosMap lookup, so a quarantine's remaps are
    // already in place when the leaf below is read.
    if (injector_) {
        injector_->noteAccess();
        sweepPermanentFaults();
    }

    // Frontend: look up and remap the global leaf.
    const LeafId old_leaf = posMap_[addr];
    const LeafId new_leaf = drawGlobalLeaf();
    posMap_[addr] = new_leaf;

    const unsigned src = sdimmOf(old_leaf);
    const unsigned dst = sdimmOf(new_leaf);
    const bool stays = src == dst;

    // A stopped protocol or a quarantined source SDIMM still walks
    // the full message schedule (the adversary must not learn which
    // blocks were lost), but the data itself is gone: serve zeros.
    if (failedStop_ || isQuarantined(src)) {
        ++degradedAccesses_;
        if (injector_)
            injector_->recordDegraded();
        recordBus(SdimmCommandType::Access, src, accessBodyBytes);
        recordBus(SdimmCommandType::Probe, src, 0);
        recordBus(SdimmCommandType::FetchResult, src,
                  responseBodyBytes);
        for (unsigned i = 0; i < params_.numSdimms; ++i) {
            AppendRequest app; // all-dummy: nothing real survives
            if (failedStop_ || isQuarantined(i)) {
                recordBus(SdimmCommandType::Append, i, appendBodyBytes);
                continue;
            }
            transmitUplink(
                i, SdimmCommandType::Append,
                [&] {
                    return buffers_[i]->cpuLink().seal(0x03,
                                                       packAppend(app));
                },
                [&](const SealedMessage &m) {
                    return buffers_[i]->handleAppend(m);
                });
        }
        return BlockData{};
    }

    // Step 1-2: sealed ACCESS to the source SDIMM (a read still
    // carries one -- dummy -- data block so the operation type is
    // hidden; the fixed message size realizes that).
    AccessRequest req;
    req.addr = addr;
    req.localLeaf = localLeaf(old_leaf);
    req.newLocalLeaf = stays ? localLeaf(new_leaf) : invalidLeaf;
    req.write = write;
    if (write)
        req.data = *new_data;

    // Steps 3-5 happen inside the SDIMM; the CPU polls (PROBE) and
    // fetches the response.  Corrupted/dropped ACCESS frames are
    // re-sealed and re-sent (the receive window only advances on
    // successful unseal, so the fresh sequence number is accepted).
    std::optional<SealedMessage> resp_msg;
    const bool sent = transmitUplink(
        src, SdimmCommandType::Access,
        [&] { return buffers_[src]->cpuLink().seal(0x02, packAccess(req)); },
        [&](const SealedMessage &m) {
            resp_msg = buffers_[src]->handleAccess(m);
            return resp_msg.has_value();
        });
    if (!sent)
        return BlockData{};
    recordBus(SdimmCommandType::Probe, src, 0);

    // Downlink: FETCH_RESULT with bounded re-FETCH on MAC mismatch
    // or a dropped frame (the buffer re-seals its cached response).
    // Every failure here blames src in the mistrust tracker -- the
    // CPU cannot tell a lying unit from a noisy link, only the EWMA
    // threshold separates them.
    std::optional<AccessResponse> resp;
    double srcBlame = 0.0;
    {
        unsigned attempts = 0;
        const unsigned budget = injector_ ? injector_->maxRetries() : 0;
        SealedMessage cur = *resp_msg;
        while (true) {
            recordBus(SdimmCommandType::FetchResult, src,
                      cur.body.size());
            fault::WireOutcome out =
                injector_ ? injector_->rollLinkFault()
                          : fault::WireOutcome::Delivered;
            if (out == fault::WireOutcome::Delayed) {
                injector_->recordDetected(fault::FaultKind::LinkDelay);
                injector_->recordRecovered(fault::FaultKind::LinkDelay,
                                           "downlink.FETCH_RESULT", 1);
                recordBus(SdimmCommandType::Probe, src, 0);
                out = fault::WireOutcome::Delivered;
            }
            // Byzantine garbling happens wire-side on the sealed frame
            // (the chip's honest latch stays intact); a dropped frame
            // gives the liar nothing to garble.  Whether the roll
            // happens depends only on the plan and the (fault-driven,
            // public) delivery outcome.
            const bool byzLie = out != fault::WireOutcome::Dropped &&
                                injector_ &&
                                injector_->rollByzantineCorrupt(src);
            if (out == fault::WireOutcome::Corrupted || byzLie)
                injector_->corruptBuffer(cur.body);
            std::optional<std::vector<std::uint8_t>> plain;
            if (out != fault::WireOutcome::Dropped) {
                plain = buffers_[src]->cpuLink().unseal(cur);
                if (!plain)
                    buffers_[src]->noteAbsorbedCpuAuthFailure();
            }
            if (plain) {
                const auto parsed = unpackResponse(*plain);
                if (!parsed)
                    panic("CPU: SDIMM %u response malformed (%zu "
                          "bytes)",
                          src, plain->size());
                resp = *parsed;
                break;
            }
            if (!injector_)
                panic("CPU: SDIMM %u response failed authentication",
                      src);
            // The ledger kind is the ground-truth cause (modeled
            // detection, same convention as the transient sites); the
            // blame feed below is what the CPU actually observes.
            const fault::FaultKind kind =
                out == fault::WireOutcome::Dropped
                    ? fault::FaultKind::LinkDrop
                    : (byzLie ? fault::FaultKind::ByzantineCorrupt
                              : fault::FaultKind::LinkCorrupt);
            injector_->recordDetected(kind);
            srcBlame += 1.0;
            recordBus(SdimmCommandType::Probe, src, 0);
            if (attempts >= budget) {
                if (injector_->mistrustArmed() &&
                    policy_ == fault::DegradationPolicy::Degraded &&
                    !isQuarantined(src) &&
                    quarantinedCount() + 1 < params_.numSdimms) {
                    /*
                     * Preemption-conviction: a persistent corruptor
                     * exhausts the re-FETCH budget on its very first
                     * access, long before the EWMA hysteresis can run
                     * out.  Convicting here instead of falling into
                     * the lossy transient-exhaustion path keeps the
                     * in-flight block: the final detection is closed
                     * as recovered (the conviction IS the recovery),
                     * the unit is evicted, and the true response is
                     * read over the maintenance path -- the byzantine
                     * lie garbled the sealed frame, not the chip's
                     * honest response latch.
                     */
                    injector_->recordRecovered(
                        kind, "downlink.FETCH_RESULT.convict",
                        attempts);
                    convictUnit(src);
                    const auto truth =
                        buffers_[src]->maintenanceResult();
                    SD_ASSERT(truth.has_value());
                    const auto parsed = unpackResponse(*truth);
                    SD_ASSERT(parsed.has_value());
                    resp = *parsed;
                    break;
                }
                onUnrecoverable(kind, src, "downlink.FETCH_RESULT",
                                attempts);
                return BlockData{};
            }
            ++attempts;
            injector_->recordRecovered(kind, "downlink.FETCH_RESULT",
                                       1);
            auto re = buffers_[src]->refetchResult();
            SD_ASSERT(re.has_value());
            cur = *re;
        }
    }

    // Read-back audit: a LostWrite unit ACKed an earlier APPEND for
    // this address and dropped the payload.  The pending record models
    // the PMMAC freshness counters that deterministically expose the
    // stale chain on the next touch; the data itself is gone, so each
    // dropped payload is one detected + unrecovered episode, blamed on
    // the recorded culprit (which may already have been evicted --
    // attribution must not convict the innocent unit now holding the
    // address).
    if (injector_) {
        if (const auto lw = injector_->takeLostWrite(addr)) {
            const auto [culprit, drops] = *lw;
            for (unsigned d = 0; d < drops; ++d) {
                injector_->recordDetected(
                    fault::FaultKind::ByzantineLostWrite);
                injector_->recordUnrecovered(
                    fault::FaultKind::ByzantineLostWrite,
                    "readback.sdimm" + std::to_string(culprit), 0);
            }
            if (culprit == src)
                srcBlame += static_cast<double>(drops);
            else
                noteUnitSuspicion(culprit, drops);
        }
        // One mistrust feed per access for the unit this access
        // exercised: honest units decay, liars accrue.
        noteUnitSuspicion(src, srcBlame);
    }

    // The value returned to the LLC (pre-write content).
    BlockData result{};
    if (!resp->dummy)
        result = resp->data;
    if (write && resp->dummy) {
        // Local write: the SDIMM kept the (updated) block; the old
        // value is not needed by the caller in this protocol.
        result = BlockData{};
    }

    // Step 6: one APPEND to every SDIMM; only the destination's is
    // real (and only if the block actually moved).  The destination is
    // re-read from the posMap rather than the pre-downlink draw: a
    // mid-access conviction (e.g. the read-back audit convicting a
    // third unit that happened to be this block's planned
    // destination) evacuates that unit and remaps the posMap, and the
    // real APPEND must follow the block.
    const LeafId out_leaf = posMap_[addr];
    const unsigned out_dst = sdimmOf(out_leaf);
    for (unsigned i = 0; i < params_.numSdimms; ++i) {
        AppendRequest app;
        app.real = !stays && i == out_dst;
        if (app.real) {
            app.addr = addr;
            app.localLeaf = localLeaf(out_leaf);
            app.data = write ? *new_data : resp->data;
        }
        if (isQuarantined(i)) {
            // Dead SDIMM: keep the channel shape, nothing to deliver
            // (drawGlobalLeaf() never routes a real block here).
            recordBus(SdimmCommandType::Append, i, appendBodyBytes);
            continue;
        }
        transmitUplink(
            i, SdimmCommandType::Append,
            [&] {
                return buffers_[i]->cpuLink().seal(0x03, packAppend(app));
            },
            [&](const SealedMessage &m) {
                return buffers_[i]->handleAppend(m);
            });
    }

    return result;
}

bool
IndependentOram::integrityOk() const
{
    if (failedStop_)
        return false;
    for (const auto &b : buffers_) {
        if (!b->integrityOk())
            return false;
    }
    return true;
}

void
IndependentOram::recordBus(SdimmCommandType type, unsigned sdimm,
                           std::size_t bytes)
{
    busTrace_.push_back({type, sdimm, bytes});
    const auto idx = static_cast<std::size_t>(type);
    ++cmdCounts_[idx];
    cmdBytes_[idx] += bytes;
}

void
IndependentOram::exportMetrics(util::MetricsRegistry &m,
                               const std::string &prefix) const
{
    for (const SdimmCommandType t : allCommands()) {
        const auto idx = static_cast<std::size_t>(t);
        if (cmdCounts_[idx] == 0)
            continue;
        std::string name = commandName(t);
        for (char &c : name)
            c = static_cast<char>(std::tolower(c));
        m.setCounter(prefix + ".cmd." + name + ".count",
                     cmdCounts_[idx]);
        m.setCounter(prefix + ".cmd." + name + ".bytes",
                     cmdBytes_[idx]);
    }
    for (unsigned i = 0; i < params_.numSdimms; ++i) {
        buffers_[i]->exportMetrics(
            m, prefix + ".buf" + std::to_string(i));
    }
    m.setCounter(prefix + ".degraded_accesses", degradedAccesses_);
    m.setCounter(prefix + ".quarantined", quarantinedCount());
    m.setCounter(prefix + ".evacuated_blocks", evacuatedBlocks_);
    if (nestedEvacuations_)
        m.setCounter(prefix + ".nested_evacuations", nestedEvacuations_);
    if (retiredUnits_)
        m.setCounter(prefix + ".retired_units", retiredUnits_);
    if (convictedUnits_)
        m.setCounter(prefix + ".convicted_units", convictedUnits_);
}

} // namespace secdimm::sdimm
