#include "sdimm/split_oram.hh"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <unordered_set>

#include "fault/fault_injector.hh"
#include "util/bit_utils.hh"
#include "util/logging.hh"

namespace secdimm::sdimm
{

namespace
{

/** Metadata plaintext for up to Z (addr, leaf) pairs. */
std::vector<std::uint8_t>
buildMeta(unsigned z,
          const std::vector<std::pair<Addr, LeafId>> &blocks)
{
    std::vector<std::uint8_t> meta(static_cast<std::size_t>(z) * 16);
    for (unsigned i = 0; i < z; ++i) {
        Addr a = invalidAddr;
        LeafId l = invalidLeaf;
        if (i < blocks.size()) {
            a = blocks[i].first;
            l = blocks[i].second;
        }
        std::memcpy(meta.data() + 16 * i, &a, 8);
        std::memcpy(meta.data() + 16 * i + 8, &l, 8);
    }
    return meta;
}

} // namespace

std::vector<std::uint8_t>
extractShare(const std::vector<std::uint8_t> &full, unsigned slice,
             unsigned s)
{
    std::vector<std::uint8_t> share;
    share.reserve(full.size() / s + 1);
    for (std::size_t i = slice; i < full.size(); i += s)
        share.push_back(full[i]);
    return share;
}

void
mergeShare(std::vector<std::uint8_t> &full,
           const std::vector<std::uint8_t> &share, unsigned slice,
           unsigned s)
{
    std::size_t k = 0;
    for (std::size_t i = slice; i < full.size() && k < share.size();
         i += s, ++k) {
        full[i] = share[k];
    }
}

SplitOram::SplitOram(const Params &params, std::uint64_t seed)
    : params_(params),
      layout_(params.tree.levels, params.tree.linesPerBucket()),
      cipher_(crypto::makeKey(0x5b117 ^ seed, 0xe17c ^ (seed << 1))),
      mac_(crypto::makeKey(0x3ac5 ^ seed, 0x91b2 ^ (seed << 2))),
      rng_(seed),
      slices_(params.slices),
      posMap_(params.tree.capacityBlocks())
{
    SD_ASSERT(params_.slices >= 1);
    SD_ASSERT(blockBytes % params_.slices == 0);
    const std::uint64_t buckets = params_.tree.numBuckets();
    const unsigned z = params_.tree.bucketBlocks;

    for (auto &leaf : posMap_)
        leaf = rng_.nextBelow(params_.tree.numLeaves());

    for (auto &sl : slices_) {
        sl.metaShare.resize(buckets);
        sl.dataShare.resize(buckets);
        sl.counter.assign(buckets, 0);
        sl.mac.assign(buckets, 0);
        for (auto &d : sl.dataShare)
            d.resize(z);
    }

    // Initialize every bucket empty.
    const std::vector<std::uint8_t> meta_plain = buildMeta(z, {});
    const std::vector<std::uint8_t> zero_block(blockBytes, 0);
    for (std::uint64_t seq = 0; seq < buckets; ++seq) {
        const std::uint64_t ctr = 1;
        std::vector<std::uint8_t> meta_cipher = meta_plain;
        cipher_.transformBuffer(meta_cipher.data(), meta_cipher.size(),
                                metaNonce(seq), ctr);
        std::vector<std::vector<std::uint8_t>> slot_cipher(z);
        for (unsigned s = 0; s < z; ++s) {
            slot_cipher[s] = zero_block;
            cipher_.transformBuffer(slot_cipher[s].data(), blockBytes,
                                    dataNonce(seq, s), ctr);
        }
        for (unsigned j = 0; j < params_.slices; ++j) {
            Slice &sl = slices_[j];
            sl.metaShare[seq] =
                extractShare(meta_cipher, j, params_.slices);
            for (unsigned s = 0; s < z; ++s) {
                sl.dataShare[seq][s] =
                    extractShare(slot_cipher[s], j, params_.slices);
            }
            sl.counter[seq] = ctr;
            sl.mac[seq] = sliceMac(j, seq, sl);
        }
    }
}

std::uint64_t
SplitOram::metaNonce(std::uint64_t seq) const
{
    return (seq << 6) | (std::uint64_t{1} << 62);
}

std::uint64_t
SplitOram::dataNonce(std::uint64_t seq, unsigned slot) const
{
    return (seq << 6) | slot | (std::uint64_t{1} << 61);
}

std::vector<std::uint8_t>
SplitOram::ctrPad(std::uint64_t nonce, std::uint64_t counter,
                  std::size_t len) const
{
    std::vector<std::uint8_t> pad(len, 0);
    cipher_.transformBuffer(pad.data(), len, nonce, counter);
    return pad;
}

std::size_t
SplitOram::gatherSlice(const Slice &sl, std::uint64_t seq) const
{
    std::size_t total = sl.metaShare[seq].size();
    for (const auto &share : sl.dataShare[seq])
        total += share.size();
    macScratch_.resize(total);
    std::uint8_t *dst = macScratch_.data();
    std::memcpy(dst, sl.metaShare[seq].data(), sl.metaShare[seq].size());
    dst += sl.metaShare[seq].size();
    for (const auto &share : sl.dataShare[seq]) {
        std::memcpy(dst, share.data(), share.size());
        dst += share.size();
    }
    return total;
}

crypto::Tag64
SplitOram::sliceMac(unsigned slice, std::uint64_t seq,
                    const Slice &sl) const
{
    const std::size_t total = gatherSlice(sl, seq);
    const std::uint64_t id =
        seq | (static_cast<std::uint64_t>(slice) << 56);
    return mac_.tag(id, sl.counter[seq], macScratch_.data(), total);
}

bool
SplitOram::fetchAndVerifySlice(unsigned j, std::uint64_t seq) const
{
    const Slice &sl = slices_[j];
    const std::size_t total = gatherSlice(sl, seq);
    if (injector_ && injector_->rollDramBitFlip())
        injector_->corruptBuffer(macScratch_.data(), total);
    const std::uint64_t id =
        seq | (static_cast<std::uint64_t>(j) << 56);
    return mac_.tag(id, sl.counter[seq], macScratch_.data(), total) ==
           sl.mac[seq];
}

void
SplitOram::transferChannel(std::size_t bytes, const char *site)
{
    stats_.channelBytes += bytes;
    if (!injector_)
        return;
    unsigned attempts = 0;
    for (;;) {
        const fault::WireOutcome w = injector_->rollLinkFault();
        if (w == fault::WireOutcome::Delivered)
            return;
        if (w == fault::WireOutcome::Delayed) {
            // Absorbed by the frontend's polling; no re-send needed.
            injector_->recordDetected(fault::FaultKind::LinkDelay);
            injector_->recordRecovered(fault::FaultKind::LinkDelay,
                                       site, 1);
            return;
        }
        const fault::FaultKind kind = w == fault::WireOutcome::Corrupted
                                          ? fault::FaultKind::LinkCorrupt
                                          : fault::FaultKind::LinkDrop;
        injector_->recordDetected(kind);
        if (attempts >= injector_->maxRetries()) {
            injector_->recordUnrecovered(kind, site, attempts);
            ++stats_.integrityFailures;
            return;
        }
        ++attempts;
        injector_->recordRecovered(kind, site, 1);
        stats_.channelBytes += bytes; // The re-sent copy.
    }
}

std::size_t
SplitOram::allocStashSlot()
{
    if (!freeSlots_.empty()) {
        const std::size_t idx = freeSlots_.back();
        freeSlots_.pop_back();
        return idx;
    }
    const std::size_t idx = stashSlots_++;
    for (auto &sl : slices_)
        sl.stash.resize(stashSlots_);
    return idx;
}

void
SplitOram::freeStashSlot(std::size_t idx)
{
    for (auto &sl : slices_)
        sl.stash[idx].reset();
    freeSlots_.push_back(idx);
}

void
SplitOram::readPath(LeafId leaf)
{
    const unsigned z = params_.tree.bucketBlocks;
    for (unsigned level = 0; level <= params_.tree.levels; ++level) {
        const std::uint64_t seq = layout_.bucketSeq(
            oram::pathBucket(leaf, level, params_.tree.levels));

        // Each SDIMM verifies its slice MAC (FETCH_DATA step).  With
        // an injector armed the fetched image may carry a transient
        // bit flip; the MAC catches it and the slice is re-fetched
        // from the (intact) stored share up to the retry budget.
        for (unsigned j = 0; j < params_.slices; ++j) {
            bool ok = fetchAndVerifySlice(j, seq);
            if (injector_ && !ok) {
                // Same ledger convention as transferChannel(): one
                // detection per failed verify, one recovery per
                // granted re-fetch (a re-fetch that flips again is a
                // NEW fault), so detected == recovered + unrecovered.
                unsigned attempts = 0;
                for (;;) {
                    injector_->recordDetected(
                        fault::FaultKind::DramBitFlip);
                    if (attempts >= injector_->maxRetries()) {
                        injector_->recordUnrecovered(
                            fault::FaultKind::DramBitFlip,
                            "split.fetch_data", attempts);
                        break;
                    }
                    ++attempts;
                    injector_->recordRecovered(
                        fault::FaultKind::DramBitFlip,
                        "split.fetch_data", 1);
                    ok = fetchAndVerifySlice(j, seq);
                    if (ok)
                        break;
                }
            }
            if (!ok)
                ++stats_.integrityFailures;
        }

        // Reassemble counter and metadata at the CPU.
        const std::uint64_t ctr = slices_[0].counter[seq];
        for (unsigned j = 1; j < params_.slices; ++j)
            SD_ASSERT(slices_[j].counter[seq] == ctr);

        std::vector<std::uint8_t> meta_cipher(
            static_cast<std::size_t>(z) * 16, 0);
        for (unsigned j = 0; j < params_.slices; ++j) {
            mergeShare(meta_cipher, slices_[j].metaShare[seq], j,
                       params_.slices);
        }
        transferChannel(meta_cipher.size() + 8,
                        "split.fetch_data.meta"); // meta + ctr.
        cipher_.transformBuffer(meta_cipher.data(), meta_cipher.size(),
                                metaNonce(seq), ctr);

        // Data pieces move into the slice stashes (local traffic).
        for (unsigned slot = 0; slot < z; ++slot) {
            Addr a;
            LeafId l;
            std::memcpy(&a, meta_cipher.data() + 16 * slot, 8);
            std::memcpy(&l, meta_cipher.data() + 16 * slot + 8, 8);
            if (a == invalidAddr)
                continue;
            SD_ASSERT(shadow_.find(a) == shadow_.end());
            const std::size_t idx = allocStashSlot();
            for (unsigned j = 0; j < params_.slices; ++j) {
                Slice &sl = slices_[j];
                sl.stash[idx] = SlicePiece{sl.dataShare[seq][slot], seq,
                                           slot, ctr};
            }
            stats_.localBytes += blockBytes;
            ShadowEntry e;
            e.leaf = l;
            e.cpuResident = false;
            e.stashIdx = idx;
            e.srcSeq = seq;
            e.srcSlot = slot;
            e.srcCounter = ctr;
            shadow_.emplace(a, e);
        }
    }
    stats_.maxShadowStash =
        std::max(stats_.maxShadowStash, shadow_.size());
}

BlockData
SplitOram::fetchStash(const ShadowEntry &e)
{
    SD_ASSERT(!e.cpuResident);
    std::vector<std::uint8_t> merged(blockBytes, 0);
    for (unsigned j = 0; j < params_.slices; ++j) {
        const auto &piece = slices_[j].stash[e.stashIdx];
        SD_ASSERT(piece.has_value());
        mergeShare(merged, piece->cipher, j, params_.slices);
    }
    transferChannel(blockBytes, "split.fetch_stash");
    cipher_.transformBuffer(merged.data(), merged.size(),
                            dataNonce(e.srcSeq, e.srcSlot),
                            e.srcCounter);
    BlockData out{};
    std::memcpy(out.data(), merged.data(), blockBytes);
    return out;
}

void
SplitOram::writePath(LeafId leaf)
{
    const unsigned z = params_.tree.bucketBlocks;
    const unsigned L = params_.tree.levels;

    for (int level = static_cast<int>(L); level >= 0; --level) {
        const unsigned shift = L - static_cast<unsigned>(level);
        const std::uint64_t bucket_index = leaf >> shift;
        const std::uint64_t seq = layout_.bucketSeq(oram::pathBucket(
            leaf, static_cast<unsigned>(level), L));

        // CPU: pick up to Z compatible shadow-stash blocks.
        std::vector<std::pair<Addr, ShadowEntry>> chosen;
        for (auto it = shadow_.begin();
             it != shadow_.end() && chosen.size() < z;) {
            if ((it->second.leaf >> shift) == bucket_index) {
                chosen.emplace_back(it->first, it->second);
                it = shadow_.erase(it);
            } else {
                ++it;
            }
        }

        const std::uint64_t new_ctr = slices_[0].counter[seq] + 1;

        // CPU composes the new metadata and sends it in RECEIVE_LIST.
        std::vector<std::pair<Addr, LeafId>> meta_blocks;
        for (const auto &kv : chosen)
            meta_blocks.emplace_back(kv.first, kv.second.leaf);
        std::vector<std::uint8_t> meta_cipher =
            buildMeta(z, meta_blocks);
        transferChannel(meta_cipher.size() + 8 + 4 * z,
                        "split.receive_list");
        cipher_.transformBuffer(meta_cipher.data(), meta_cipher.size(),
                                metaNonce(seq), new_ctr);

        // Fill the bucket's data slots slice by slice.
        for (unsigned slot = 0; slot < z; ++slot) {
            if (slot < chosen.size() && chosen[slot].second.cpuResident) {
                // CPU-resident block: the CPU encrypts for the
                // destination and ships each slice its share.
                const ShadowEntry &e = chosen[slot].second;
                std::vector<std::uint8_t> full(
                    e.data.begin(), e.data.end());
                cipher_.transformBuffer(full.data(), full.size(),
                                        dataNonce(seq, slot), new_ctr);
                transferChannel(blockBytes, "split.receive_list");
                for (unsigned j = 0; j < params_.slices; ++j) {
                    slices_[j].dataShare[seq][slot] =
                        extractShare(full, j, params_.slices);
                }
            } else if (slot < chosen.size()) {
                // Piece-resident block: each SDIMM re-encrypts its
                // share locally (old pad out, new pad in).
                const ShadowEntry &e = chosen[slot].second;
                const auto old_pad =
                    ctrPad(dataNonce(e.srcSeq, e.srcSlot), e.srcCounter,
                           blockBytes);
                const auto new_pad =
                    ctrPad(dataNonce(seq, slot), new_ctr, blockBytes);
                for (unsigned j = 0; j < params_.slices; ++j) {
                    Slice &sl = slices_[j];
                    const auto &piece = sl.stash[e.stashIdx];
                    SD_ASSERT(piece.has_value());
                    std::vector<std::uint8_t> share = piece->cipher;
                    for (std::size_t k = 0; k < share.size(); ++k) {
                        const std::size_t gi = j + params_.slices * k;
                        share[k] = static_cast<std::uint8_t>(
                            share[k] ^ old_pad[gi] ^ new_pad[gi]);
                    }
                    sl.dataShare[seq][slot] = std::move(share);
                }
                stats_.localBytes += blockBytes;
                freeStashSlot(e.stashIdx);
            } else {
                // Dummy slot: each SDIMM writes its share of an
                // encrypted zero block.
                std::vector<std::uint8_t> zero(blockBytes, 0);
                cipher_.transformBuffer(zero.data(), zero.size(),
                                        dataNonce(seq, slot), new_ctr);
                for (unsigned j = 0; j < params_.slices; ++j) {
                    slices_[j].dataShare[seq][slot] =
                        extractShare(zero, j, params_.slices);
                }
                stats_.localBytes += blockBytes;
            }
        }

        // Commit metadata, counter, and fresh slice MACs.
        for (unsigned j = 0; j < params_.slices; ++j) {
            Slice &sl = slices_[j];
            sl.metaShare[seq] =
                extractShare(meta_cipher, j, params_.slices);
            sl.counter[seq] = new_ctr;
            sl.mac[seq] = sliceMac(j, seq, sl);
        }
    }
}

BlockData
SplitOram::access(Addr addr, oram::OramOp op, const BlockData *new_data)
{
    SD_ASSERT(addr < posMap_.size());
    const LeafId leaf = posMap_[addr];
    const LeafId new_leaf = rng_.nextBelow(params_.tree.numLeaves());
    posMap_[addr] = new_leaf;
    return accessExplicit(addr, leaf, new_leaf, op, new_data);
}

BlockData
SplitOram::accessExplicit(Addr addr, LeafId old_leaf, LeafId new_leaf,
                          oram::OramOp op, const BlockData *new_data)
{
    SD_ASSERT(old_leaf < params_.tree.numLeaves());
    ++stats_.accesses;
    leafTrace_.push_back(old_leaf);

    readPath(old_leaf);

    const bool remove = new_leaf == invalidLeaf;
    auto it = shadow_.find(addr);
    BlockData old_value{};
    if (it == shadow_.end()) {
        if (!remove) {
            // Uninitialized block: materialize at the CPU.
            ShadowEntry e;
            e.leaf = new_leaf;
            e.cpuResident = true;
            it = shadow_.emplace(addr, e).first;
        }
    } else {
        ShadowEntry &e = it->second;
        if (!e.cpuResident) {
            old_value = fetchStash(e);
            freeStashSlot(e.stashIdx);
            e.cpuResident = true;
            e.data = old_value;
        } else {
            old_value = e.data;
        }
        e.leaf = new_leaf;
    }
    if (op == oram::OramOp::Write && it != shadow_.end() && !remove) {
        SD_ASSERT(new_data != nullptr);
        it->second.data = *new_data;
    }
    if (remove && it != shadow_.end())
        shadow_.erase(it);

    writePath(old_leaf);

    while (shadow_.size() > params_.tree.stashCapacity / 2)
        backgroundEvict();

    return old_value;
}

void
SplitOram::adoptBlock(Addr addr, LeafId leaf, const BlockData &data)
{
    SD_ASSERT(leaf < params_.tree.numLeaves());
    SD_ASSERT(shadow_.find(addr) == shadow_.end());
    ShadowEntry e;
    e.leaf = leaf;
    e.cpuResident = true;
    e.data = data;
    shadow_.emplace(addr, e);
    stats_.maxShadowStash =
        std::max(stats_.maxShadowStash, shadow_.size());
    while (shadow_.size() > params_.tree.stashCapacity / 2)
        backgroundEvict();
}

void
SplitOram::backgroundEvict()
{
    ++stats_.dummyAccesses;
    const LeafId leaf = rng_.nextBelow(params_.tree.numLeaves());
    leafTrace_.push_back(leaf);
    readPath(leaf);
    writePath(leaf);
}

std::vector<std::string>
SplitOram::auditInvariants(bool check_posmap,
                           std::uint64_t *checks_run) const
{
    std::vector<std::string> violations;
    std::uint64_t checks = 0;
    const auto fail = [&](const std::string &what) {
        violations.push_back(what);
    };
    const auto check = [&](bool ok, auto &&describe) {
        ++checks;
        if (!ok)
            fail(describe());
    };

    const unsigned z = params_.tree.bucketBlocks;
    const unsigned L = params_.tree.levels;
    const std::uint64_t buckets = params_.tree.numBuckets();

    // 1. Per-slice storage shape, replicated counters, slice MACs.
    for (unsigned j = 0; j < params_.slices; ++j) {
        const Slice &sl = slices_[j];
        check(sl.metaShare.size() == buckets && sl.dataShare.size() == buckets &&
                  sl.counter.size() == buckets && sl.mac.size() == buckets,
              [&] {
                  std::ostringstream os;
                  os << "slice " << j << ": storage vectors not sized to "
                     << buckets << " buckets";
                  return os.str();
              });
        check(sl.stash.size() == stashSlots_, [&] {
            std::ostringstream os;
            os << "slice " << j << ": stash has " << sl.stash.size()
               << " slots, allocator says " << stashSlots_;
            return os.str();
        });
        for (std::uint64_t seq = 0; seq < buckets; ++seq) {
            check(sl.counter[seq] == slices_[0].counter[seq], [&] {
                std::ostringstream os;
                os << "bucket " << seq << ": slice " << j
                   << " counter diverges from slice 0";
                return os.str();
            });
            check(sliceMac(j, seq, sl) == sl.mac[seq], [&] {
                std::ostringstream os;
                os << "bucket " << seq << ": slice " << j
                   << " MAC mismatch (tampered or stale)";
                return os.str();
            });
        }
    }

    // 2. Decrypt every bucket's metadata and check placement: a real
    //    block stored at (level, index) must have a leaf whose path
    //    passes through that bucket, and no address may appear twice
    //    (tree or shadow stash).
    std::unordered_set<Addr> seen;
    for (unsigned level = 0; level <= L; ++level) {
        const std::uint64_t level_width = std::uint64_t{1} << level;
        for (std::uint64_t index = 0; index < level_width; ++index) {
            const oram::BucketPos pos{level, index};
            const std::uint64_t seq = layout_.bucketSeq(pos);
            std::vector<std::uint8_t> meta(
                static_cast<std::size_t>(z) * 16, 0);
            for (unsigned j = 0; j < params_.slices; ++j)
                mergeShare(meta, slices_[j].metaShare[seq], j,
                           params_.slices);
            cipher_.transformBuffer(meta.data(), meta.size(),
                                    metaNonce(seq),
                                    slices_[0].counter[seq]);
            for (unsigned slot = 0; slot < z; ++slot) {
                Addr a;
                LeafId l;
                std::memcpy(&a, meta.data() + 16 * slot, 8);
                std::memcpy(&l, meta.data() + 16 * slot + 8, 8);
                if (a == invalidAddr)
                    continue;
                check(l < params_.tree.numLeaves(), [&] {
                    std::ostringstream os;
                    os << "bucket " << seq << " slot " << slot
                       << ": block " << a << " has leaf " << l
                       << " out of range";
                    return os.str();
                });
                check(l >= params_.tree.numLeaves() ||
                          oram::pathBucket(l, level, L).index == index,
                      [&] {
                          std::ostringstream os;
                          os << "bucket (" << level << "," << index
                             << "): block " << a << " leaf " << l
                             << " path does not pass through it";
                          return os.str();
                      });
                check(seen.insert(a).second, [&] {
                    std::ostringstream os;
                    os << "block " << a
                       << " stored twice in the tree";
                    return os.str();
                });
                if (check_posmap) {
                    check(a < posMap_.size() && posMap_[a] == l, [&] {
                        std::ostringstream os;
                        os << "block " << a << ": tree leaf " << l
                           << " disagrees with PosMap";
                        return os.str();
                    });
                }
            }
        }
    }

    // 3. Shadow stash: bounded, leaves in range, piece-resident
    //    entries backed by a piece in EVERY slice, no tree duplicate.
    check(shadow_.size() <= params_.tree.stashCapacity, [&] {
        std::ostringstream os;
        os << "shadow stash " << shadow_.size() << " exceeds capacity "
           << params_.tree.stashCapacity;
        return os.str();
    });
    std::unordered_set<std::size_t> referenced;
    for (const auto &kv : shadow_) {
        const Addr a = kv.first;
        const ShadowEntry &e = kv.second;
        check(e.leaf < params_.tree.numLeaves(), [&] {
            std::ostringstream os;
            os << "shadow block " << a << ": leaf " << e.leaf
               << " out of range";
            return os.str();
        });
        check(seen.insert(a).second, [&] {
            std::ostringstream os;
            os << "block " << a << " in both tree and shadow stash";
            return os.str();
        });
        if (check_posmap) {
            check(a < posMap_.size() && posMap_[a] == e.leaf, [&] {
                std::ostringstream os;
                os << "shadow block " << a << ": leaf " << e.leaf
                   << " disagrees with PosMap";
                return os.str();
            });
        }
        if (!e.cpuResident) {
            check(e.stashIdx < stashSlots_ &&
                      referenced.insert(e.stashIdx).second,
                  [&] {
                      std::ostringstream os;
                      os << "shadow block " << a
                         << ": bad or shared stash slot " << e.stashIdx;
                      return os.str();
                  });
            for (unsigned j = 0; j < params_.slices; ++j) {
                check(e.stashIdx < slices_[j].stash.size() &&
                          slices_[j].stash[e.stashIdx].has_value(),
                      [&] {
                          std::ostringstream os;
                          os << "shadow block " << a << ": slice " << j
                             << " missing its stash piece";
                          return os.str();
                      });
            }
        }
    }

    // 4. Stash-slot allocator: every slot is either free or referenced
    //    by exactly one piece-resident shadow entry.
    for (std::size_t idx : freeSlots_) {
        check(idx < stashSlots_ && referenced.find(idx) == referenced.end(),
              [&] {
                  std::ostringstream os;
                  os << "stash slot " << idx << " both free and in use";
                  return os.str();
              });
    }
    check(referenced.size() + freeSlots_.size() == stashSlots_, [&] {
        std::ostringstream os;
        os << "stash slots leaked: " << referenced.size() << " in use + "
           << freeSlots_.size() << " free != " << stashSlots_;
        return os.str();
    });

    if (checks_run != nullptr)
        *checks_run += checks;
    return violations;
}

void
SplitOram::tamperSlice(unsigned slice, std::uint64_t bucket_seq,
                       unsigned slot, std::size_t byte_index)
{
    slices_.at(slice).dataShare.at(bucket_seq).at(slot).at(byte_index) ^=
        0x01;
}

std::vector<std::pair<Addr, BlockData>>
SplitOram::residentBlocks() const
{
    std::vector<std::pair<Addr, BlockData>> out;
    const unsigned z = params_.tree.bucketBlocks;
    const unsigned L = params_.tree.levels;
    for (unsigned level = 0; level <= L; ++level) {
        const std::uint64_t level_width = std::uint64_t{1} << level;
        for (std::uint64_t index = 0; index < level_width; ++index) {
            const std::uint64_t seq =
                layout_.bucketSeq({level, index});
            const std::uint64_t ctr = slices_[0].counter[seq];
            std::vector<std::uint8_t> meta(
                static_cast<std::size_t>(z) * 16, 0);
            for (unsigned j = 0; j < params_.slices; ++j)
                mergeShare(meta, slices_[j].metaShare[seq], j,
                           params_.slices);
            cipher_.transformBuffer(meta.data(), meta.size(),
                                    metaNonce(seq), ctr);
            for (unsigned slot = 0; slot < z; ++slot) {
                Addr a;
                std::memcpy(&a, meta.data() + 16 * slot, 8);
                if (a == invalidAddr)
                    continue;
                std::vector<std::uint8_t> merged(blockBytes, 0);
                for (unsigned j = 0; j < params_.slices; ++j)
                    mergeShare(merged, slices_[j].dataShare[seq][slot],
                               j, params_.slices);
                cipher_.transformBuffer(merged.data(), merged.size(),
                                        dataNonce(seq, slot), ctr);
                BlockData d{};
                std::memcpy(d.data(), merged.data(), blockBytes);
                out.emplace_back(a, d);
            }
        }
    }
    for (const auto &kv : shadow_) {
        const ShadowEntry &e = kv.second;
        if (e.cpuResident) {
            out.emplace_back(kv.first, e.data);
            continue;
        }
        std::vector<std::uint8_t> merged(blockBytes, 0);
        for (unsigned j = 0; j < params_.slices; ++j) {
            const auto &piece = slices_[j].stash[e.stashIdx];
            SD_ASSERT(piece.has_value());
            mergeShare(merged, piece->cipher, j, params_.slices);
        }
        cipher_.transformBuffer(merged.data(), merged.size(),
                                dataNonce(e.srcSeq, e.srcSlot),
                                e.srcCounter);
        BlockData d{};
        std::memcpy(d.data(), merged.data(), blockBytes);
        out.emplace_back(kv.first, d);
    }
    return out;
}

} // namespace secdimm::sdimm
