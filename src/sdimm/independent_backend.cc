#include "sdimm/independent_backend.hh"

#include <algorithm>

#include "util/logging.hh"

namespace secdimm::sdimm
{

IndependentBackend::IndependentBackend(const SdimmTimingConfig &config,
                                       std::uint64_t seed)
    : config_(config), recursion_(config.recursion), rng_(seed)
{
    SD_ASSERT(config_.numSdimms >= 1);
    SD_ASSERT(config_.cpuChannels >= 1);
    for (unsigned i = 0; i < config_.numSdimms; ++i) {
        executors_.push_back(std::make_unique<PathExecutor>(
            "sdimm" + std::to_string(i), config_.perSdimm,
            config_.timing, config_.sdimmGeom, config_.lowPower,
            seed * 7919 + i));
        executors_.back()->setOpDoneCallback(
            [this](std::uint64_t tag, Tick avail) {
                onOpDone(tag, avail);
            });
    }
    for (unsigned c = 0; c < config_.cpuChannels; ++c)
        buses_.push_back(std::make_unique<LinkBus>(config_.timing));
    if (config_.faultPlan.enabled()) {
        injector_ =
            std::make_unique<fault::FaultInjector>(config_.faultPlan);
        for (auto &e : executors_)
            e->setFaultInjector(injector_.get());
        deadHandled_.assign(config_.numSdimms, false);
        quarantined_.assign(config_.numSdimms, false);
    }
}

unsigned
IndependentBackend::quarantinedCount() const
{
    unsigned n = 0;
    for (const bool q : quarantined_)
        n += q ? 1 : 0;
    return n;
}

unsigned
IndependentBackend::drawSdimm()
{
    // The op's leaf is uniformly random, so the target SDIMM is too;
    // redraws consult only the (public) quarantine set.
    unsigned sdimm =
        static_cast<unsigned>(rng_.nextBelow(config_.numSdimms));
    while (isQuarantined(sdimm) &&
           quarantinedCount() < config_.numSdimms) {
        sdimm = static_cast<unsigned>(rng_.nextBelow(config_.numSdimms));
    }
    return sdimm;
}

Tick
IndependentBackend::sweepPermanentFaults(Tick now)
{
    const fault::FaultPlan &plan = injector_->plan();
    for (unsigned i = 0; i < config_.numSdimms; ++i) {
        if (deadHandled_[i] || !injector_->unitDead(i))
            continue;
        deadHandled_[i] = true;
        // Watchdog: PROBE the silent SDIMM on its bus, waiting the
        // capped exponential backoff between polls.
        LinkBus &bus = *buses_[busOf(i)];
        Tick t = now;
        for (unsigned p = 0; p < plan.watchdogMaxProbes; ++p) {
            bus.shortCommand(t, true);
            const std::uint64_t wait = plan.watchdogBackoff(p);
            t += wait;
            injector_->recordWatchdogProbe(wait);
        }
        injector_->markPermanentDetected(i);
        const std::string site = "timing.watchdog.sdimm" + std::to_string(i);
        if (config_.policy != fault::DegradationPolicy::Degraded ||
            quarantinedCount() + 1 >= config_.numSdimms) {
            // No fail-over possible (or allowed): the cost is the
            // watchdog itself; ops keep targeting the unit (the model
            // has no data to lose, only cycles to account).
            injector_->recordUnrecovered(fault::FaultKind::WatchdogTimeout,
                                         site, plan.watchdogMaxProbes);
            continue;
        }
        injector_->recordRecovered(fault::FaultKind::WatchdogTimeout,
                                   site, plan.watchdogMaxProbes);
        quarantined_[i] = true;
        injector_->recordQuarantine();
        // Oblivious evacuation charge: one geometry-sized dummy-padded
        // APPEND stream (slots x full append burst) per surviving bus,
        // modeled as one bulk transfer each.
        const std::uint64_t slots = config_.perSdimm.capacityBlocks();
        Tick done = t;
        for (unsigned k = 0; k < config_.numSdimms; ++k) {
            if (quarantined_[k])
                continue;
            done = std::max(
                done, buses_[busOf(k)]->transferBytes(t, slots * (8 + 81)));
        }
        injector_->recordEvacuation(slots, slots * config_.numSdimms);
        t = done;
        injector_->addRecoveryCycles(t > now ? t - now : 0);
        now = t;
    }
    return now;
}

void
IndependentBackend::setCompletionCallback(CompletionFn fn)
{
    onComplete_ = std::move(fn);
}

bool
IndependentBackend::canAccept() const
{
    return jobs_.size() < jobCapacity_;
}

unsigned
IndependentBackend::busOf(unsigned sdimm) const
{
    return sdimm % config_.cpuChannels;
}

void
IndependentBackend::access(std::uint64_t id, Addr byte_addr, bool write,
                           Tick now)
{
    (void)write;
    SD_ASSERT(canAccept());
    const std::uint64_t block = byte_addr / blockBytes;
    const unsigned ops = recursion_.opsForAccess(block);
    jobs_.emplace(id, Job{id, ops});
    startOp(id, now);
}

void
IndependentBackend::startOp(std::uint64_t job_id, Tick ready_at)
{
    if (injector_) {
        injector_->noteAccess();
        ready_at = sweepPermanentFaults(ready_at);
    }
    const unsigned sdimm = drawSdimm();
    if (injector_) {
        const std::uint64_t pen = injector_->unitLatencyPenalty(sdimm);
        if (pen) {
            // Degraded-latency unit: the op is simply late.
            injector_->addDegradedLatencyCycles(pen);
            ready_at += pen;
        }
    }

    // ACCESS long command: header + one (possibly dummy) block.
    LinkBus &bus = *buses_[busOf(sdimm)];
    const Tick issued = bus.transferBytes(ready_at, 8 + 89);

    const std::uint64_t tag = nextTag_++;
    ops_.emplace(tag, OpRef{job_id, sdimm, issued, /*drain=*/false});
    executors_[sdimm]->submitOp(tag, issued + config_.perSdimm.encLatency);
}

void
IndependentBackend::onOpDone(std::uint64_t tag, Tick avail)
{
    auto it = ops_.find(tag);
    SD_ASSERT(it != ops_.end());
    const OpRef ref = it->second;
    ops_.erase(it);

    if (ref.drain) {
        return; // Drain ops have no CPU-visible result.
    }

    LinkBus &bus = *buses_[busOf(ref.sdimm)];

    // PROBE polling: the CPU polls every probeInterval cycles from op
    // issue; the positive probe lands at the first poll tick >= avail.
    const Cycles interval = config_.probeInterval;
    std::uint64_t polls = 1;
    if (avail > ref.issuedAt)
        polls = (avail - ref.issuedAt + interval - 1) / interval;
    const Tick observed = ref.issuedAt + polls * interval;
    for (std::uint64_t p = 0; p < polls; ++p)
        bus.shortCommand(ref.issuedAt + (p + 1) * interval, true);

    // FETCH_RESULT: one burst carrying the (sealed) block.
    const Tick fetched = bus.transferBytes(observed, 8 + 65);
    const Tick done = fetched + config_.perSdimm.encLatency;

    // APPEND to every SDIMM (one real, rest dummies).
    Tick appends_done = fetched;
    for (unsigned i = 0; i < config_.numSdimms; ++i) {
        appends_done =
            std::max(appends_done,
                     buses_[busOf(i)]->transferBytes(fetched, 8 + 81));
    }

    // Occasional extra drain accessORAM at the APPEND destination
    // (Section IV-C overflow avoidance).
    if (rng_.nextBool(config_.drainProb)) {
        const unsigned dst = drawSdimm();
        const std::uint64_t drain_tag = nextTag_++;
        ops_.emplace(drain_tag, OpRef{0, dst, appends_done, true});
        executors_[dst]->submitOp(drain_tag, appends_done);
        ++drainOps_;
    }

    auto jit = jobs_.find(ref.jobId);
    SD_ASSERT(jit != jobs_.end());
    Job &job = jit->second;
    SD_ASSERT(job.opsLeft > 0);
    --job.opsLeft;
    if (job.opsLeft == 0) {
        if (onComplete_)
            onComplete_(job.id, done);
        jobs_.erase(jit);
    } else {
        startOp(ref.jobId, done);
    }
}

Tick
IndependentBackend::nextEventAt() const
{
    Tick best = tickNever;
    for (const auto &e : executors_)
        best = std::min(best, e->nextEventAt());
    return best;
}

void
IndependentBackend::advanceTo(Tick now)
{
    for (auto &e : executors_)
        e->advanceTo(now);
}

bool
IndependentBackend::idle() const
{
    if (!jobs_.empty())
        return false;
    return std::all_of(executors_.begin(), executors_.end(),
                       [](const auto &e) { return e->idle(); });
}

std::uint64_t
IndependentBackend::offDimmLines() const
{
    double lines = 0;
    for (const auto &b : buses_)
        lines += b->stats().lineEquivalents();
    return static_cast<std::uint64_t>(lines + 0.5);
}

} // namespace secdimm::sdimm
