#include "sdimm/path_executor.hh"

#include <algorithm>

#include "fault/fault_injector.hh"
#include "util/logging.hh"

namespace secdimm::sdimm
{

namespace
{

/** Read-kind encodings in the low id bits. */
constexpr std::uint64_t idData = 0;
constexpr std::uint64_t idMeta = 1;

} // namespace

PathExecutor::PathExecutor(const std::string &name,
                           const oram::OramParams &params,
                           const dram::TimingParams &timing,
                           const dram::Geometry &geom, bool low_power,
                           std::uint64_t seed)
    : params_(params),
      layout_(params.levels, params.linesPerBucket()),
      lowPower_(low_power),
      rng_(seed)
{
    const dram::MapPolicy policy = low_power
                                       ? dram::MapPolicy::RankRowBankCol
                                       : dram::MapPolicy::RowRankBankCol;
    channel_ = std::make_unique<dram::DramChannel>(name, timing, geom,
                                                   policy);
    if (low_power) {
        const Addr region_lines =
            channel_->addressMap().blockCount() / geom.ranksPerChannel;
        lowPowerLayout_.emplace(params, geom.ranksPerChannel,
                                region_lines);
        // Idle ranks drop into precharge power-down quickly; the
        // enqueue-time wake hides the exit latency.
        channel_->setIdlePowerDown(2 * timing.tXPDLL);
    }
    channel_->setCompletionCallback(
        [this](const dram::DramCompletion &c) { onDramDone(c); });

    // On-demand fetch of the identified block's line: its bucket row
    // was just opened by the metadata read, so a row-hit CAS.
    blockFetchCycles_ = timing.cl + timing.tBURST + 2;
}

void
PathExecutor::setFaultInjector(fault::FaultInjector *inj)
{
    injector_ = inj;
    channel_->setFaultInjector(inj);
}

void
PathExecutor::submitOp(std::uint64_t tag, Tick ready_at)
{
    ops_.push_back(ExecOp{tag, ready_at});
    queueDepth_.sample(ops_.size());
    tryStart();
    pump();
}

void
PathExecutor::buildPath(std::vector<Addr> &meta,
                        std::vector<Addr> &data)
{
    opLeaf_ = rng_.nextBelow(params_.numLeaves());
    if (lowPower_) {
        lowPowerLayout_->pathLinesPhased(
            opLeaf_, params_.cachedLevels, params_.metadataLines, meta,
            data);
    } else {
        layout_.pathLinesPhased(opLeaf_, params_.cachedLevels,
                                params_.metadataLines, meta, data);
    }
}

void
PathExecutor::tryStart()
{
    if (opInFlight_ || ops_.empty())
        return;
    opInFlight_ = true;
    responseSent_ = false;
    ++opsExecuted_;
    Tick start = std::max(ops_.front().readyAt, nextOpEarliest_);
    if (injector_) {
        // A stalled start is absorbed by the CPU's PROBE polling loop:
        // the result is simply not ready for a few more polls.
        const Tick stall = injector_->rollExecutorStall();
        if (stall > 0) {
            start += stall;
            injector_->recordDetected(fault::FaultKind::ExecutorStall);
            injector_->recordRecovered(fault::FaultKind::ExecutorStall,
                                       "executor.start", 1);
        }
    }

    std::vector<Addr> meta, data;
    buildPath(meta, data);
    lastReadDone_ = start;
    lastMetaDone_ = start;

    // Metadata pass first: it identifies the requested block and
    // gates the early response; the data pass follows into the rows
    // the metadata pass opened.
    for (Addr line : meta)
        staged_[0].push_back(StagedLine{line, start, false});
    stagedMetaReads_ = meta.size();
    for (Addr line : data)
        staged_[0].push_back(StagedLine{line, start, false});
    stagedDataReads_ = data.size();
    stagedTotal_ += meta.size() + data.size();
}

void
PathExecutor::onDramDone(const dram::DramCompletion &c)
{
    if (!c.write) {
        SD_ASSERT(outstandingReads_ > 0);
        --outstandingReads_;
        lastReadDone_ = std::max(lastReadDone_, c.doneAt);
        if (c.id == idMeta) {
            SD_ASSERT(outstandingMetaReads_ > 0);
            --outstandingMetaReads_;
            lastMetaDone_ = std::max(lastMetaDone_, c.doneAt);
        }
        if (opInFlight_ && outstandingReads_ == 0 &&
            stagedMetaReads_ == 0 && stagedDataReads_ == 0) {
            // Whole path read: the block is only guaranteed found
            // once every bucket is in the local stash, so the
            // Independent protocol's response fires HERE -- this is
            // the protocol's inherent "high latency, high
            // parallelism" trade-off (Section III-D intro), in
            // contrast to Split's early metadata-driven response.
            const Tick avail = lastReadDone_ + params_.encLatency;
            if (!responseSent_) {
                responseSent_ = true;
                if (onOpDone_)
                    onOpDone_(ops_.front().tag, avail);
            }

            // Compose and stage the write-back, and free the engine
            // for the next operation.
            const Tick wb_at = avail;
            std::vector<Addr> meta, data;
            if (lowPower_) {
                lowPowerLayout_->pathLinesPhased(
                    opLeaf_, params_.cachedLevels,
                    params_.metadataLines, meta, data);
            } else {
                layout_.pathLinesPhased(opLeaf_, params_.cachedLevels,
                                        params_.metadataLines, meta,
                                        data);
            }
            for (Addr line : data)
                staged_[1].push_back(StagedLine{line, wb_at, true});
            for (Addr line : meta)
                staged_[1].push_back(StagedLine{line, wb_at, true});
            stagedTotal_ += meta.size() + data.size();

            SD_ASSERT(responseSent_);
            ops_.pop_front();
            opInFlight_ = false;
            nextOpEarliest_ = lastReadDone_;
            tryStart();
        }
    } else {
        SD_ASSERT(outstandingWrites_ > 0);
        --outstandingWrites_;
    }
    pump();
}

void
PathExecutor::pump()
{
    if (stagedTotal_ == 0)
        return;
    const Addr block_count = channel_->addressMap().blockCount();

    // Reads: metadata lines first; data lines wait until the whole
    // metadata pass has completed (two-pass read).
    auto &rq = staged_[0];
    while (!rq.empty() && channel_->canEnqueue(false)) {
        const bool is_meta = stagedMetaReads_ > 0;
        const StagedLine s = rq.front();
        rq.pop_front();
        --stagedTotal_;
        channel_->enqueue(is_meta ? idMeta : idData,
                          s.line % block_count, false, s.at);
        ++outstandingReads_;
        if (is_meta) {
            --stagedMetaReads_;
            ++outstandingMetaReads_;
        } else {
            SD_ASSERT(stagedDataReads_ > 0);
            --stagedDataReads_;
        }
    }

    auto &wq = staged_[1];
    while (!wq.empty() && channel_->canEnqueue(true)) {
        const StagedLine s = wq.front();
        wq.pop_front();
        --stagedTotal_;
        channel_->enqueue(2, s.line % block_count, true, s.at);
        ++outstandingWrites_;
    }
}

Tick
PathExecutor::nextEventAt() const
{
    return channel_->nextEventAt();
}

void
PathExecutor::advanceTo(Tick now)
{
    channel_->advanceTo(now);
    pump();
}

bool
PathExecutor::idle() const
{
    return ops_.empty() && !opInFlight_ && stagedTotal_ == 0 &&
           outstandingReads_ == 0 && outstandingWrites_ == 0 &&
           channel_->idle();
}

} // namespace secdimm::sdimm
