/**
 * @file
 * Functional model of the SDIMM secure buffer chip (Section III-A):
 * an on-DIMM ORAM controller (local Path ORAM over this SDIMM's
 * subtree), a transfer queue for blocks arriving from other SDIMMs,
 * and the encrypted-link endpoint the CPU talks to.
 *
 * Message payloads have fixed, operation-independent sizes -- the
 * property the privacy argument of Section III-G rests on.
 */

#ifndef SECUREDIMM_SDIMM_SECURE_BUFFER_HH
#define SECUREDIMM_SDIMM_SECURE_BUFFER_HH

#include <cstdint>
#include <memory>
#include <optional>

#include "oram/path_oram.hh"
#include "sdimm/link_session.hh"
#include "sdimm/transfer_queue.hh"

namespace secdimm::sdimm
{

/** Fixed wire sizes of the Independent-protocol messages. */
inline constexpr std::size_t accessBodyBytes = 8 + 8 + 8 + 1 + blockBytes;
inline constexpr std::size_t responseBodyBytes = blockBytes + 1;
inline constexpr std::size_t appendBodyBytes = 1 + 8 + 8 + blockBytes;

/** Plaintext content of an ACCESS message. */
struct AccessRequest
{
    Addr addr = 0;
    LeafId localLeaf = 0;
    /** New leaf within this SDIMM, or invalidLeaf if moving away. */
    LeafId newLocalLeaf = invalidLeaf;
    bool write = false;
    BlockData data{};
};

/** Plaintext content of the buffer's response. */
struct AccessResponse
{
    BlockData data{};
    bool dummy = false;
};

/** Plaintext content of an APPEND message. */
struct AppendRequest
{
    bool real = false;
    Addr addr = 0;
    LeafId localLeaf = 0;
    BlockData data{};
};

/**
 * Serialize/parse the fixed-size message bodies.  The unpack side
 * treats the body as untrusted wire input: a body of the wrong size
 * (truncated or padded) yields nullopt instead of misparsing -- the
 * secure buffer decides how to fail (fuzz-derived hardening; a
 * malformed-but-authenticated frame must never crash the chip model).
 */
std::vector<std::uint8_t> packAccess(const AccessRequest &r);
std::optional<AccessRequest>
unpackAccess(const std::vector<std::uint8_t> &b);
std::vector<std::uint8_t> packResponse(const AccessResponse &r);
std::optional<AccessResponse>
unpackResponse(const std::vector<std::uint8_t> &b);
std::vector<std::uint8_t> packAppend(const AppendRequest &r);
std::optional<AppendRequest>
unpackAppend(const std::vector<std::uint8_t> &b);

/** Per-buffer counters. */
struct SecureBufferStats
{
    std::uint64_t accessOps = 0;   ///< accessORAMs run (incl. drains).
    std::uint64_t drainOps = 0;    ///< Extra drain accessORAMs.
    std::uint64_t appendsReal = 0;
    std::uint64_t appendsDummy = 0;
};

/** One SDIMM's trusted buffer chip. */
class SecureBuffer
{
  public:
    /**
     * @param params local tree shape (levels = global L - log2 #SDIMMs)
     * @param index  SDIMM index (key/nonce separation)
     * @param transfer_capacity / drain_prob  Section IV-C parameters
     */
    SecureBuffer(const oram::OramParams &params, unsigned index,
                 std::uint64_t seed, std::size_t transfer_capacity,
                 double drain_prob, Rng &boot_rng);

    /** CPU-side endpoint of this SDIMM's link (frontend seals with it). */
    LinkEndpoint &cpuLink() { return cpuEnd_; }

    /**
     * Handle a sealed ACCESS; returns the sealed response, or nullopt
     * when the message fails authentication / decode.  Without a
     * fault injector a failure panics (pre-recovery fail-stop); with
     * one it is reported to the CPU as "no response" so the frontend
     * can re-send the (re-sealed) request.
     */
    std::optional<SealedMessage> handleAccess(const SealedMessage &msg);

    /**
     * Handle a sealed APPEND; false when the message fails
     * authentication / decode (same recovery contract as
     * handleAccess).  A full transfer queue is resolved with a forced
     * extra-accessORAM drain, never a drop.
     */
    bool handleAppend(const SealedMessage &msg);

    /**
     * Re-seal the response of the most recent successful ACCESS under
     * a fresh sequence number (re-FETCH after the CPU saw a corrupt or
     * missing FETCH_RESULT).  nullopt if no response is cached.
     */
    std::optional<SealedMessage> refetchResult();

    /**
     * Arm fault injection + recovery accounting (nullptr disarms);
     * forwarded to the local ORAM (and its store) and the transfer
     * queue.  Not owned.
     */
    void setFaultInjector(fault::FaultInjector *inj);

    /**
     * Count one CPU-side unseal failure caused by an injected
     * downlink fault, so integrityOk() can tell recovered injections
     * apart from genuine tampering.
     */
    void noteAbsorbedCpuAuthFailure() { ++absorbedCpuAuthFailures_; }

    oram::PathOram &oram() { return *oram_; }
    const oram::PathOram &oram() const { return *oram_; }
    const TransferQueue &transferQueue() const { return xfer_; }
    const SecureBufferStats &stats() const { return stats_; }
    unsigned index() const { return index_; }

    /** All MACs/counters verified so far (tree + link). */
    bool integrityOk() const;

    /**
     * Every live block resident on this SDIMM: the full local tree
     * walk plus the stash and the transfer queue.  This is the
     * maintenance-path read used by oblivious subtree evacuation once
     * the buffer chip's protocol engine is quarantined (docs/FAULTS.md
     * states the raw-DRAM-readable assumption); bucket reads that fail
     * their MAC are retried under the shared injector budget.
     */
    std::vector<oram::StashEntry> residentBlocks() const;

    /**
     * Plaintext of the most recent successful ACCESS response, read
     * over the maintenance path (same raw-DRAM-readable trust
     * assumption as residentBlocks()).  A byzantine unit garbles the
     * sealed frame on the wire, not this latch, so a conviction fired
     * by budget exhaustion can still recover the in-flight block
     * loss-free.  nullopt if no response is cached.
     */
    std::optional<std::vector<std::uint8_t>> maintenanceResult() const
    {
        if (!haveLastResponse_)
            return std::nullopt;
        return lastResponsePlain_;
    }

    /**
     * Export this buffer's counters (ops, appends, local ORAM, the
     * transfer queue, and both link endpoints) under @p prefix.
     */
    void
    exportMetrics(util::MetricsRegistry &m,
                  const std::string &prefix) const
    {
        m.setCounter(prefix + ".access_ops", stats_.accessOps);
        m.setCounter(prefix + ".drain_ops", stats_.drainOps);
        m.setCounter(prefix + ".appends_real", stats_.appendsReal);
        m.setCounter(prefix + ".appends_dummy", stats_.appendsDummy);
        oram_->exportMetrics(m, prefix + ".oram");
        xfer_.exportMetrics(m, prefix + ".xfer");
        dimmEnd_.exportMetrics(m, prefix + ".link");
    }

    /** Fold link + local ORAM crypto work into @p t (crypto.*). */
    void
    collectCrypto(crypto::CryptoTotals &t) const
    {
        cpuEnd_.collectCrypto(t);
        dimmEnd_.collectCrypto(t);
        oram_->collectCrypto(t);
    }

  private:
    SecureBuffer(const oram::OramParams &params, unsigned index,
                 std::uint64_t seed, std::size_t transfer_capacity,
                 double drain_prob,
                 std::pair<LinkEndpoint, LinkEndpoint> link);

    /** Pull one transfer-queue entry into the normal stash. */
    void serviceTransferQueue();

    unsigned index_;
    LinkEndpoint cpuEnd_;
    LinkEndpoint dimmEnd_;
    std::unique_ptr<oram::PathOram> oram_;
    TransferQueue xfer_;
    SecureBufferStats stats_;
    fault::FaultInjector *injector_ = nullptr;
    /** Plaintext of the last ACCESS response (re-FETCH support). */
    std::vector<std::uint8_t> lastResponsePlain_;
    bool haveLastResponse_ = false;
    /** Unseal failures known to stem from injected (recovered) faults. */
    std::uint64_t absorbedDimmAuthFailures_ = 0;
    std::uint64_t absorbedCpuAuthFailures_ = 0;
};

} // namespace secdimm::sdimm

#endif // SECUREDIMM_SDIMM_SECURE_BUFFER_HH
