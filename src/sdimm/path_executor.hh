/**
 * @file
 * Timing engine of one SDIMM secure buffer running full accessORAM
 * operations locally (the Independent protocol's backend): a serial
 * queue of path operations over the SDIMM's internal DRAM channel.
 * Optionally uses the low-power one-rank-per-path layout with idle
 * rank power-down.
 */

#ifndef SECUREDIMM_SDIMM_PATH_EXECUTOR_HH
#define SECUREDIMM_SDIMM_PATH_EXECUTOR_HH

#include <array>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dram/channel.hh"
#include "oram/oram_params.hh"
#include "oram/tree_layout.hh"
#include "sdimm/low_power.hh"
#include "trace/memory_backend.hh"
#include "util/rng.hh"

namespace secdimm::fault
{
class FaultInjector;
}

namespace secdimm::sdimm
{

/** Serial accessORAM executor over one internal DDR channel. */
class PathExecutor
{
  public:
    /** Fired when an op's result is available at the buffer. */
    using OpDoneFn = std::function<void(std::uint64_t tag, Tick avail)>;

    /**
     * @param low_power  use the Section III-E rank-major layout with
     *                   idle-rank power-down
     */
    PathExecutor(const std::string &name, const oram::OramParams &params,
                 const dram::TimingParams &timing,
                 const dram::Geometry &geom, bool low_power,
                 std::uint64_t seed);

    void setOpDoneCallback(OpDoneFn fn) { onOpDone_ = std::move(fn); }

    /** Queue one accessORAM; it may start at or after @p ready_at. */
    void submitOp(std::uint64_t tag, Tick ready_at);

    std::size_t queuedOps() const { return ops_.size(); }
    bool busy() const { return opInFlight_; }
    std::uint64_t opsExecuted() const { return opsExecuted_; }

    /** Op-queue depth observed at each submit. */
    const util::LogHistogram &queueDepthHistogram() const
    {
        return queueDepth_;
    }

    /** Export ops-executed + queue-depth under @p prefix; the
     *  internal DRAM channel is exported separately ("dram.*"). */
    void
    exportMetrics(util::MetricsRegistry &m,
                  const std::string &prefix) const
    {
        m.setCounter(prefix + ".ops_executed", opsExecuted_);
        m.histogram(prefix + ".queue_depth").merge(queueDepth_);
    }

    Tick nextEventAt() const;
    void advanceTo(Tick now);
    bool idle() const;

    dram::DramChannel &channel() { return *channel_; }
    const dram::DramChannel &channel() const { return *channel_; }
    bool lowPower() const { return lowPower_; }

    /**
     * Arm fault injection (nullptr disarms): op starts may be stalled
     * by the plan's stallCycles (absorbed by the PROBE polling loop),
     * and the internal DRAM channel gets read-burst retries.  Not
     * owned.
     */
    void setFaultInjector(fault::FaultInjector *inj);

  private:
    struct ExecOp
    {
        std::uint64_t tag;
        Tick readyAt;
    };

    struct StagedLine
    {
        Addr line;
        Tick at;
        bool write;
    };

    void onDramDone(const dram::DramCompletion &c);
    void tryStart();
    void pump();
    void buildPath(std::vector<Addr> &meta, std::vector<Addr> &data);

    oram::OramParams params_;
    oram::TreeLayout layout_;
    std::optional<LowPowerLayout> lowPowerLayout_;
    bool lowPower_;
    std::unique_ptr<dram::DramChannel> channel_;
    Rng rng_;
    OpDoneFn onOpDone_;

    std::deque<ExecOp> ops_;
    bool opInFlight_ = false;
    Tick nextOpEarliest_ = 0;
    /** Staged lines per kind (0 = read, 1 = write); front-blocking. */
    std::array<std::deque<StagedLine>, 2> staged_;
    std::size_t stagedTotal_ = 0;
    std::size_t stagedMetaReads_ = 0;
    std::size_t stagedDataReads_ = 0;
    std::uint64_t outstandingReads_ = 0;
    std::uint64_t outstandingMetaReads_ = 0;
    std::uint64_t outstandingWrites_ = 0;
    Tick lastReadDone_ = 0;
    Tick lastMetaDone_ = 0;
    bool responseSent_ = false;
    Cycles blockFetchCycles_ = 17;
    LeafId opLeaf_ = 0;
    std::uint64_t opsExecuted_ = 0;
    util::LogHistogram queueDepth_;
    fault::FaultInjector *injector_ = nullptr;
};

} // namespace secdimm::sdimm

#endif // SECUREDIMM_SDIMM_PATH_EXECUTOR_HH
