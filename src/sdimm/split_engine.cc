#include "sdimm/split_engine.hh"

#include <algorithm>

#include "util/logging.hh"

namespace secdimm::sdimm
{

namespace
{

constexpr std::uint64_t metaFlag = std::uint64_t{1} << 63;

} // namespace

SplitGroupEngine::SplitGroupEngine(const std::string &name,
                                   const oram::OramParams &tree,
                                   unsigned slices,
                                   std::vector<LinkBus *> buses,
                                   const dram::TimingParams &timing,
                                   const dram::Geometry &geom,
                                   bool low_power, std::uint64_t seed)
    : tree_(tree),
      dataLines_(std::max(1u, tree.bucketBlocks / slices)),
      lowPower_(low_power),
      rng_(seed)
{
    SD_ASSERT(slices >= 1);
    SD_ASSERT(buses.size() == slices);

    // Each slice stores (dataLines_ + 1 metadata) lines per bucket.
    oram::OramParams slice_params = tree;
    slice_params.bucketBlocks = dataLines_;
    slice_params.metadataLines = 1;
    if (!low_power)
        layout_.emplace(tree.levels, dataLines_ + 1);

    slices_.resize(slices);
    for (unsigned i = 0; i < slices; ++i) {
        Slice &sl = slices_[i];
        sl.channel = std::make_unique<dram::DramChannel>(
            name + ".slice" + std::to_string(i), timing, geom,
            low_power ? dram::MapPolicy::RankRowBankCol
                      : dram::MapPolicy::RowRankBankCol);
        sl.bus = buses[i];
        if (low_power)
            sl.channel->setIdlePowerDown(2 * timing.tXPDLL);
        sl.channel->setCompletionCallback(
            [this, i](const dram::DramCompletion &c) {
                onDramDone(i, c);
            });
    }

    if (low_power) {
        const Addr region_lines =
            slices_[0].channel->addressMap().blockCount() /
            geom.ranksPerChannel;
        lowPowerLayout_.emplace(slice_params, geom.ranksPerChannel,
                                region_lines);
    }

    blockFetchCycles_ = timing.cl + timing.tBURST + 2;
}

std::uint64_t
SplitGroupEngine::listBytesPerSlice() const
{
    // Per bucket: Z compact (tag, leaf) pairs (8Z B), the counter
    // (8 B), and the eviction schedule entries (~2Z B), split across
    // slices.
    const std::uint64_t per_bucket =
        8ULL * tree_.bucketBlocks + 8 + 2ULL * tree_.bucketBlocks;
    return divCeil(per_bucket * tree_.dramLevels(),
                   static_cast<std::uint64_t>(slices_.size()));
}

void
SplitGroupEngine::buildSlicePath(std::vector<Addr> &meta,
                                 std::vector<Addr> &data) const
{
    if (lowPower_) {
        lowPowerLayout_->pathLinesPhased(opLeaf_, tree_.cachedLevels, 1,
                                         meta, data);
    } else {
        layout_->pathLinesPhased(opLeaf_, tree_.cachedLevels, 1, meta,
                                 data);
    }
}

void
SplitGroupEngine::submitOp(std::uint64_t tag, Tick ready_at)
{
    ops_.push_back(PendingOp{tag, ready_at});
    queueDepth_.sample(ops_.size());
    tryStart();
}

void
SplitGroupEngine::tryStart()
{
    if (opInFlight_ || ops_.empty())
        return;
    opInFlight_ = true;
    responseSent_ = false;
    ++opsExecuted_;
    const Tick start = std::max(ops_.front().readyAt, groupFreeAt_);
    opLeaf_ = rng_.nextBelow(tree_.numLeaves());

    std::vector<Addr> meta, data;
    buildSlicePath(meta, data);

    for (auto &sl : slices_) {
        sl.bus->shortCommand(start); // FETCH_DATA.
        sl.metaAtCpu = start;
        sl.lastReadDone = start;
        for (Addr line : meta) {
            sl.staged[0].push_back(StagedLine{line, start, false, true});
            ++sl.stagedMetaReads;
        }
        for (Addr line : data) {
            sl.staged[0].push_back(
                StagedLine{line, start, false, false});
            ++sl.stagedDataReads;
        }
        sl.stagedTotal += meta.size() + data.size();
        pump(sl);
    }
}

void
SplitGroupEngine::onDramDone(unsigned slice, const dram::DramCompletion &c)
{
    Slice &sl = slices_[slice];
    if (c.write) {
        SD_ASSERT(sl.outstandingWrites > 0);
        --sl.outstandingWrites;
    } else {
        SD_ASSERT(sl.outstandingReads > 0);
        --sl.outstandingReads;
        sl.lastReadDone = std::max(sl.lastReadDone, c.doneAt);
        if (c.id & metaFlag) {
            SD_ASSERT(sl.outstandingMetaReads > 0);
            --sl.outstandingMetaReads;
            // Relay this metadata share to the CPU: each slice holds
            // 1/S of the bucket's (tags, leaves, counter) bytes --
            // compact 4-byte tags and leaves as in hardware ORAM
            // controllers -- so a burst-chopped transaction suffices.
            const std::uint64_t share_bytes = divCeil(
                8ULL * tree_.bucketBlocks + 8,
                static_cast<std::uint64_t>(slices_.size()));
            sl.metaAtCpu = std::max(
                sl.metaAtCpu,
                sl.bus->transferBytes(c.doneAt, share_bytes));
            maybeRespond();
        }
        maybeFinishReads();
    }
    pump(sl);
}

void
SplitGroupEngine::maybeRespond()
{
    if (!opInFlight_ || responseSent_)
        return;
    for (const auto &sl : slices_) {
        if (sl.stagedMetaReads != 0 || sl.outstandingMetaReads != 0)
            return;
    }
    responseSent_ = true;

    // CPU reassembles tags/leaves/counters, finds the block, and
    // issues FETCH_STASH; each slice fetches the block's line
    // on demand (row still open from the metadata pass) and returns
    // its 1/S piece over the bus.
    Tick meta_at = 0;
    for (const auto &sl : slices_)
        meta_at = std::max(meta_at, sl.metaAtCpu);
    const Tick t_meta = meta_at + tree_.encLatency;

    const std::uint64_t piece_bytes =
        divCeil(blockBytes, slices_.size());
    Tick fetched = t_meta;
    for (auto &sl : slices_) {
        sl.bus->shortCommand(t_meta);
        fetched = std::max(
            fetched, sl.bus->transferBytes(t_meta + blockFetchCycles_,
                                           piece_bytes));
    }
    const Tick result = fetched + tree_.encLatency;

    // RECEIVE_LIST: eviction schedule + counters + new metadata.
    const std::uint64_t list_bytes = listBytesPerSlice();
    listDoneAt_ = result;
    for (auto &sl : slices_) {
        listDoneAt_ = std::max(
            sl.bus->transferBytes(result, list_bytes), listDoneAt_);
    }

    if (onOpDone_)
        onOpDone_(ops_.front().tag, result);
}

void
SplitGroupEngine::maybeFinishReads()
{
    if (!opInFlight_)
        return;
    // Only READ state gates the op: write-backs of earlier ops may
    // still be staged behind a full write queue, and they drain on
    // their own (write completions never re-evaluate this check).
    for (const auto &sl : slices_) {
        if (sl.stagedMetaReads != 0 || sl.stagedDataReads != 0 ||
            sl.outstandingReads != 0) {
            return;
        }
    }
    SD_ASSERT(responseSent_);

    Tick reads_done = 0;
    for (const auto &sl : slices_)
        reads_done = std::max(reads_done, sl.lastReadDone);

    // Local write-back of the path (data + metadata shares) once the
    // eviction list has arrived and every piece is in the stash.
    std::vector<Addr> meta, data;
    buildSlicePath(meta, data);
    const Tick wb_at =
        std::max(listDoneAt_, reads_done) + tree_.encLatency;
    for (auto &sl : slices_) {
        for (Addr line : data)
            sl.staged[1].push_back(StagedLine{line, wb_at, true, false});
        for (Addr line : meta)
            sl.staged[1].push_back(StagedLine{line, wb_at, true, false});
        sl.stagedTotal += meta.size() + data.size();
        pump(sl);
    }

    ops_.pop_front();
    opInFlight_ = false;
    groupFreeAt_ = reads_done;
    tryStart();
}

void
SplitGroupEngine::pump(Slice &sl)
{
    if (sl.stagedTotal == 0)
        return;
    const Addr block_count = sl.channel->addressMap().blockCount();

    // Reads: metadata pass strictly precedes the data pass.
    auto &rq = sl.staged[0];
    while (!rq.empty() && sl.channel->canEnqueue(false)) {
        const StagedLine &front = rq.front();
        if (!front.meta && sl.outstandingMetaReads > 0)
            break;
        const StagedLine s = front;
        rq.pop_front();
        --sl.stagedTotal;
        sl.channel->enqueue(s.meta ? metaFlag : 0,
                            s.line % block_count, false, s.at);
        ++sl.outstandingReads;
        if (s.meta) {
            SD_ASSERT(sl.stagedMetaReads > 0);
            --sl.stagedMetaReads;
            ++sl.outstandingMetaReads;
        } else {
            SD_ASSERT(sl.stagedDataReads > 0);
            --sl.stagedDataReads;
        }
    }

    auto &wq = sl.staged[1];
    while (!wq.empty() && sl.channel->canEnqueue(true)) {
        const StagedLine s = wq.front();
        wq.pop_front();
        --sl.stagedTotal;
        sl.channel->enqueue(0, s.line % block_count, true, s.at);
        ++sl.outstandingWrites;
    }
}

Tick
SplitGroupEngine::nextEventAt() const
{
    Tick best = tickNever;
    for (const auto &sl : slices_)
        best = std::min(best, sl.channel->nextEventAt());
    return best;
}

void
SplitGroupEngine::advanceTo(Tick now)
{
    for (auto &sl : slices_) {
        sl.channel->advanceTo(now);
        pump(sl);
    }
}

bool
SplitGroupEngine::idle() const
{
    if (!ops_.empty() || opInFlight_)
        return false;
    for (const auto &sl : slices_) {
        if (sl.stagedTotal != 0 || sl.outstandingReads != 0 ||
            sl.outstandingWrites != 0 || !sl.channel->idle()) {
            return false;
        }
    }
    return true;
}

} // namespace secdimm::sdimm
