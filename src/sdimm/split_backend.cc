#include "sdimm/split_backend.hh"

#include <algorithm>

#include "util/logging.hh"

namespace secdimm::sdimm
{

SplitBackend::SplitBackend(const SdimmTimingConfig &config,
                           unsigned groups, std::uint64_t seed)
    : config_(config),
      slicesPerGroup_(config.numSdimms / groups),
      recursion_(config.recursion),
      rng_(seed)
{
    SD_ASSERT(groups >= 1);
    SD_ASSERT(config_.numSdimms % groups == 0);
    SD_ASSERT(slicesPerGroup_ >= 1);

    for (unsigned c = 0; c < config_.cpuChannels; ++c)
        buses_.push_back(std::make_unique<LinkBus>(config_.timing));

    for (unsigned g = 0; g < groups; ++g) {
        std::vector<LinkBus *> group_buses;
        for (unsigned j = 0; j < slicesPerGroup_; ++j) {
            const unsigned global_slice = g * slicesPerGroup_ + j;
            group_buses.push_back(
                buses_[global_slice % config_.cpuChannels].get());
        }
        groups_.push_back(std::make_unique<SplitGroupEngine>(
            "group" + std::to_string(g), config_.perSdimm,
            slicesPerGroup_, group_buses, config_.timing,
            config_.sdimmGeom, config_.lowPower, seed * 6151 + g));
        groups_.back()->setOpDoneCallback(
            [this](std::uint64_t tag, Tick result) {
                onOpDone(tag, result);
            });
    }
}

void
SplitBackend::setCompletionCallback(CompletionFn fn)
{
    onComplete_ = std::move(fn);
}

bool
SplitBackend::canAccept() const
{
    return jobs_.size() < jobCapacity_;
}

void
SplitBackend::access(std::uint64_t id, Addr byte_addr, bool write,
                     Tick now)
{
    (void)write;
    SD_ASSERT(canAccept());
    const std::uint64_t block = byte_addr / blockBytes;
    const unsigned ops = recursion_.opsForAccess(block);
    jobs_.emplace(id, Job{id, ops});
    startOp(id, now);
}

void
SplitBackend::startOp(std::uint64_t job_id, Tick ready_at)
{
    // Random leaf -> uniformly random group (Independent dimension).
    const unsigned group =
        static_cast<unsigned>(rng_.nextBelow(groups_.size()));
    const std::uint64_t tag = nextTag_++;
    ops_.emplace(tag, OpRef{job_id, group, /*drain=*/false});
    groups_[group]->submitOp(tag, ready_at);
}

void
SplitBackend::onOpDone(std::uint64_t tag, Tick result)
{
    auto it = ops_.find(tag);
    SD_ASSERT(it != ops_.end());
    const OpRef ref = it->second;
    ops_.erase(it);

    if (ref.drain)
        return;

    Tick done = result + config_.perSdimm.encLatency;

    if (groups_.size() > 1) {
        // Independent dimension: obfuscating APPEND (one block burst)
        // to every group, and the occasional extra drain op.
        Tick appends_done = result;
        for (unsigned g = 0; g < groups_.size(); ++g) {
            LinkBus &b =
                *buses_[(g * slicesPerGroup_) % config_.cpuChannels];
            appends_done =
                std::max(appends_done, b.transferLines(result, 1));
        }
        if (rng_.nextBool(config_.drainProb)) {
            const unsigned dst =
                static_cast<unsigned>(rng_.nextBelow(groups_.size()));
            const std::uint64_t drain_tag = nextTag_++;
            ops_.emplace(drain_tag, OpRef{0, dst, true});
            groups_[dst]->submitOp(drain_tag, appends_done);
        }
    }

    auto jit = jobs_.find(ref.jobId);
    SD_ASSERT(jit != jobs_.end());
    Job &job = jit->second;
    SD_ASSERT(job.opsLeft > 0);
    --job.opsLeft;
    if (job.opsLeft == 0) {
        if (onComplete_)
            onComplete_(job.id, done);
        jobs_.erase(jit);
    } else {
        startOp(ref.jobId, done);
    }
}

Tick
SplitBackend::nextEventAt() const
{
    Tick best = tickNever;
    for (const auto &g : groups_)
        best = std::min(best, g->nextEventAt());
    return best;
}

void
SplitBackend::advanceTo(Tick now)
{
    for (auto &g : groups_)
        g->advanceTo(now);
}

bool
SplitBackend::idle() const
{
    if (!jobs_.empty())
        return false;
    return std::all_of(groups_.begin(), groups_.end(),
                       [](const auto &g) { return g->idle(); });
}

std::uint64_t
SplitBackend::offDimmLines() const
{
    double lines = 0;
    for (const auto &b : buses_)
        lines += b->stats().lineEquivalents();
    return static_cast<std::uint64_t>(lines + 0.5);
}

} // namespace secdimm::sdimm
