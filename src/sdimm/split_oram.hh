/**
 * @file
 * Functional Split ORAM (Section III-D): ONE Path ORAM tree whose
 * every bucket is byte-sliced across all SDIMMs -- slice j of a
 * bucket holds bytes {i : i mod S == j} of each encrypted field, plus
 * its own MAC (the n-fold MAC overhead the paper notes).
 *
 * Per access: FETCH_DATA pulls the path's data pieces into each
 * SDIMM's local stash (still ciphertext); normal reads return the
 * metadata shares + counters to the CPU, which reassembles tags and
 * leaves; FETCH_STASH retrieves just the requested block's pieces;
 * RECEIVE_LIST ships the eviction schedule (stash index -> bucket
 * slot), fresh counters, and new metadata, and the SDIMMs re-encrypt
 * and write their shares back locally.  Only metadata and the one
 * requested block ever cross the CPU channel.
 *
 * DESIGN.md substitution note: bucket counters are replicated per
 * slice instead of bit-split, letting each SDIMM verify its slice MAC
 * at read time.  Wire sizes are modeled as if split (the timing layer
 * charges the paper's message sizes).
 */

#ifndef SECUREDIMM_SDIMM_SPLIT_ORAM_HH
#define SECUREDIMM_SDIMM_SPLIT_ORAM_HH

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "crypto/ctr_mode.hh"
#include "crypto/pmmac.hh"
#include "oram/oram_params.hh"
#include "oram/tree_layout.hh"
#include "util/metrics.hh"
#include "util/rng.hh"
#include "util/types.hh"

namespace secdimm::fault
{
class FaultInjector;
} // namespace secdimm::fault

namespace secdimm::sdimm
{

/** Byte-interleaving helpers (slice j gets bytes i with i%S == j). */
std::vector<std::uint8_t> extractShare(
    const std::vector<std::uint8_t> &full, unsigned slice, unsigned s);
void mergeShare(std::vector<std::uint8_t> &full,
                const std::vector<std::uint8_t> &share, unsigned slice,
                unsigned s);

/** Split ORAM statistics. */
struct SplitOramStats
{
    std::uint64_t accesses = 0;
    std::uint64_t dummyAccesses = 0;
    std::uint64_t integrityFailures = 0;
    std::size_t maxShadowStash = 0;
    /** CPU-channel payload bytes (metadata + fetched pieces + lists). */
    std::uint64_t channelBytes = 0;
    /** Bytes moved only inside SDIMMs (data shuffles). */
    std::uint64_t localBytes = 0;
};

/** Functional S-way Split ORAM. */
class SplitOram
{
  public:
    struct Params
    {
        oram::OramParams tree; ///< The (single) full tree.
        unsigned slices = 2;   ///< SDIMM count; divides blockBytes.
    };

    SplitOram(const Params &params, std::uint64_t seed);

    std::uint64_t capacityBlocks() const
    {
        return params_.tree.capacityBlocks();
    }

    /** accessORAM via the Split protocol. */
    BlockData access(Addr addr, oram::OramOp op,
                     const BlockData *new_data = nullptr);

    /**
     * accessORAM with an externally supplied leaf, for the combined
     * INDEP-SPLIT organization where the CPU frontend owns a global
     * PosMap spanning several Split groups.  new_leaf == invalidLeaf
     * removes the block from this group (it is moving to another);
     * the pre-write content is returned either way.
     */
    BlockData accessExplicit(Addr addr, LeafId old_leaf,
                             LeafId new_leaf, oram::OramOp op,
                             const BlockData *new_data = nullptr);

    /**
     * Adopt a block arriving from another group (the APPEND of the
     * Independent dimension): it enters the CPU-side shadow stash and
     * settles into this group's tree on later evictions.
     */
    void adoptBlock(Addr addr, LeafId leaf, const BlockData &data);

    /** Dummy access draining the shadow stash. */
    void backgroundEvict();

    const SplitOramStats &stats() const { return stats_; }
    const std::vector<LeafId> &leafTrace() const { return leafTrace_; }
    void clearLeafTrace() { leafTrace_.clear(); }
    std::size_t shadowStashSize() const { return shadow_.size(); }
    bool integrityOk() const { return stats_.integrityFailures == 0; }
    unsigned slices() const { return params_.slices; }

    /** Tamper with one slice's stored share (integrity tests). */
    void tamperSlice(unsigned slice, std::uint64_t bucket_seq,
                     unsigned slot, std::size_t byte_index);

    /**
     * Arm fault injection with bounded detect-and-retry (nullptr
     * disarms).  FETCH_DATA slice fetches may be bit-flipped in
     * flight -- the per-slice MAC catches it and the slice is
     * re-fetched (the stored share is intact, so a clean retry
     * succeeds).  RECEIVE_LIST / FETCH_STASH channel transfers may be
     * corrupted, dropped, or delayed on the wire -- re-sends are
     * charged to channelBytes again; leafTrace is never affected.  An
     * exhausted retry budget counts an integrity failure (fail-stop).
     */
    void setFaultInjector(fault::FaultInjector *inj)
    {
        injector_ = inj;
    }

    /**
     * Walk every internal invariant the verify subsystem cannot see
     * from outside (slice MACs, replicated counters, stash-slot
     * bookkeeping, shadow-stash bounds, decrypted bucket placement)
     * and return one description per violation.  @p check_posmap
     * additionally cross-checks block leaves against the internal
     * PosMap -- only meaningful when the tree is driven via access()
     * (accessExplicit frontends own the PosMap themselves).
     * @p checks_run, if given, is incremented per check performed.
     */
    std::vector<std::string>
    auditInvariants(bool check_posmap,
                    std::uint64_t *checks_run = nullptr) const;

    /**
     * Every live block in this group -- decrypted tree slots plus the
     * shadow stash (CPU- or piece-resident).  Maintenance-path read
     * used by INDEP-SPLIT group evacuation after a quarantine; the
     * raw slice shares are still readable even when the group's
     * protocol engines are dead (docs/FAULTS.md).
     */
    std::vector<std::pair<Addr, BlockData>> residentBlocks() const;

    /** Export access/traffic counters under @p prefix. */
    void
    exportMetrics(util::MetricsRegistry &m,
                  const std::string &prefix) const
    {
        m.setCounter(prefix + ".accesses", stats_.accesses);
        m.setCounter(prefix + ".dummy_accesses", stats_.dummyAccesses);
        m.setCounter(prefix + ".integrity_failures",
                     stats_.integrityFailures);
        m.setCounter(prefix + ".shadow_stash.max",
                     stats_.maxShadowStash);
        m.setGauge(prefix + ".shadow_stash.size",
                   static_cast<double>(shadow_.size()));
        m.setCounter(prefix + ".channel_bytes", stats_.channelBytes);
        m.setCounter(prefix + ".local_bytes", stats_.localBytes);
    }

    /** Fold this group's crypto work into @p t (crypto.* metrics). */
    void
    collectCrypto(crypto::CryptoTotals &t) const
    {
        cipher_.collectTotals(t);
        mac_.collectTotals(t);
    }

  private:
    /** Per-slice ciphertext share of one block, parked in a stash. */
    struct SlicePiece
    {
        std::vector<std::uint8_t> cipher; ///< blockBytes/S bytes.
        std::uint64_t srcSeq = 0;
        unsigned srcSlot = 0;
        std::uint64_t srcCounter = 0;
    };

    /** One SDIMM's slice of the tree + its local stash. */
    struct Slice
    {
        /** [bucket] metadata cipher share. */
        std::vector<std::vector<std::uint8_t>> metaShare;
        /** [bucket][slot] data cipher share. */
        std::vector<std::vector<std::vector<std::uint8_t>>> dataShare;
        std::vector<std::uint64_t> counter; ///< Replicated per slice.
        std::vector<crypto::Tag64> mac;
        std::vector<std::optional<SlicePiece>> stash;
    };

    /** CPU-side record of a block held in the SDIMM stashes. */
    struct ShadowEntry
    {
        LeafId leaf = invalidLeaf;
        bool cpuResident = false; ///< Data lives at the CPU (no pieces).
        BlockData data{};         ///< Valid when cpuResident.
        std::size_t stashIdx = 0; ///< Valid when !cpuResident.
        std::uint64_t srcSeq = 0;
        unsigned srcSlot = 0;
        std::uint64_t srcCounter = 0;
    };

    std::uint64_t metaNonce(std::uint64_t seq) const;
    std::uint64_t dataNonce(std::uint64_t seq, unsigned slot) const;

    /** Full CTR pad of @p len bytes. */
    std::vector<std::uint8_t> ctrPad(std::uint64_t nonce,
                                     std::uint64_t counter,
                                     std::size_t len) const;

    /** Gather a slice's meta+data shares into the reused scratch. */
    std::size_t gatherSlice(const Slice &sl, std::uint64_t seq) const;

    crypto::Tag64 sliceMac(unsigned slice, std::uint64_t seq,
                           const Slice &sl) const;

    /**
     * Model one FETCH_DATA of slice @p j of bucket @p seq: the SDIMM
     * reads its share image (possibly bit-flipped in flight when an
     * injector is armed) and checks it against the stored slice MAC.
     */
    bool fetchAndVerifySlice(unsigned j, std::uint64_t seq) const;

    /**
     * Charge @p bytes of CPU-channel traffic, retrying through
     * injected wire faults (re-sends recounted) up to the budget.
     */
    void transferChannel(std::size_t bytes, const char *site);

    /** Allocate the same stash slot in every slice. */
    std::size_t allocStashSlot();
    void freeStashSlot(std::size_t idx);

    /** Steps 1-3 for one path; fills shadow stash from metadata. */
    void readPath(LeafId leaf);

    /** Steps 4.5-6: evict shadow-stash blocks onto the path. */
    void writePath(LeafId leaf);

    /** Reassemble + decrypt a block from its stash pieces. */
    BlockData fetchStash(const ShadowEntry &e);

    Params params_;
    oram::TreeLayout layout_;
    crypto::CtrCipher cipher_;
    crypto::Pmmac mac_;
    Rng rng_;

    std::vector<Slice> slices_;
    std::vector<LeafId> posMap_;
    std::unordered_map<Addr, ShadowEntry> shadow_;
    std::size_t stashSlots_ = 0;
    std::vector<std::size_t> freeSlots_; ///< Shared slot allocator.

    std::vector<LeafId> leafTrace_;
    SplitOramStats stats_;
    /** Reused share-concatenation buffer for slice MACs (no
     *  per-verification allocation in steady state). */
    mutable std::vector<std::uint8_t> macScratch_;
    fault::FaultInjector *injector_ = nullptr;
};

} // namespace secdimm::sdimm

#endif // SECUREDIMM_SDIMM_SPLIT_ORAM_HH
