/**
 * @file
 * The SDIMM transfer queue of Section IV-C: blocks APPENDed from
 * other SDIMMs wait here before entering the normal stash.  Without
 * help the queue is a saturated random walk (arrival rate == service
 * rate); the paper's fix drains one entry with an extra accessORAM
 * with probability p, making utilization rho = 0.25 / (0.25 + p) < 1.
 */

#ifndef SECUREDIMM_SDIMM_TRANSFER_QUEUE_HH
#define SECUREDIMM_SDIMM_TRANSFER_QUEUE_HH

#include <cstdint>
#include <deque>
#include <optional>

#include "oram/stash.hh"
#include "util/metrics.hh"
#include "util/rng.hh"

namespace secdimm::fault
{
class FaultInjector;
}

namespace secdimm::sdimm
{

/** Transfer-queue occupancy and overflow statistics. */
struct TransferQueueStats
{
    std::uint64_t arrivals = 0;
    std::uint64_t services = 0;
    std::uint64_t drains = 0;    ///< Extra accessORAM drains triggered.
    std::uint64_t overflows = 0; ///< Arrivals dropped (should be ~0).
    /** Full-queue arrivals resolved by a forced extra-accessORAM
     *  drain instead of a drop (see SecureBuffer::handleAppend). */
    std::uint64_t forcedDrains = 0;
    std::size_t maxOccupancy = 0;
};

/** Bounded FIFO with probabilistic extra-drain decisions. */
class TransferQueue
{
  public:
    /**
     * @param capacity   queue slots (the paper sizes an 8 KB buffer)
     * @param drain_prob p: probability an arrival triggers an extra
     *                   accessORAM to service one entry
     */
    TransferQueue(std::size_t capacity, double drain_prob,
                  std::uint64_t seed);

    /**
     * Enqueue an arriving block.  Returns false (and counts an
     * overflow) when full.
     */
    bool push(const oram::StashEntry &entry);

    /**
     * Roll the drain decision for the latest arrival: true means the
     * owner should run one extra accessORAM and service an entry.
     */
    bool rollDrain();

    /** Remove and return the oldest entry (service). */
    std::optional<oram::StashEntry> pop();

    /**
     * Count one forced drain: the owner found the queue full on an
     * APPEND arrival and ran an extra accessORAM to make room (the
     * paper's drain mechanism applied deterministically at the M/M/1/K
     * boundary instead of silently saturating).
     */
    void recordForcedDrain() { ++stats_.forcedDrains; }

    bool full() const { return q_.size() >= capacity_; }

    /**
     * Arm entry-perturbation injection on pop() (nullptr disarms):
     * a rolled perturbation models a parity-detected SRAM flip that a
     * same-slot re-read recovers.  Not owned.
     */
    void setFaultInjector(fault::FaultInjector *inj) { injector_ = inj; }

    std::size_t size() const { return q_.size(); }
    std::size_t capacity() const { return capacity_; }
    bool empty() const { return q_.empty(); }
    double drainProb() const { return drainProb_; }
    const TransferQueueStats &stats() const { return stats_; }

    /** Occupancy after each arrival (Fig 13 overflow evidence). */
    const util::LogHistogram &depthHistogram() const { return depth_; }

    /** Queued entries, oldest first (verify audits walk these). */
    const std::deque<oram::StashEntry> &entries() const { return q_; }

    /** Export arrival/service/overflow counters + depth histogram. */
    void exportMetrics(util::MetricsRegistry &m,
                       const std::string &prefix) const;

  private:
    std::size_t capacity_;
    double drainProb_;
    Rng rng_;
    std::deque<oram::StashEntry> q_;
    TransferQueueStats stats_;
    util::LogHistogram depth_;
    fault::FaultInjector *injector_ = nullptr;
};

} // namespace secdimm::sdimm

#endif // SECUREDIMM_SDIMM_TRANSFER_QUEUE_HH
