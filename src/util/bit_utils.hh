/**
 * @file
 * Small bit-manipulation helpers used by address mapping and tree math.
 */

#ifndef SECUREDIMM_UTIL_BIT_UTILS_HH
#define SECUREDIMM_UTIL_BIT_UTILS_HH

#include <bit>
#include <cstdint>

#include "util/logging.hh"

namespace secdimm
{

/** True iff @p v is a power of two (0 is not). */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Floor of log2(v); panics on v == 0. */
inline unsigned
floorLog2(std::uint64_t v)
{
    SD_ASSERT(v != 0);
    return 63u - static_cast<unsigned>(std::countl_zero(v));
}

/** Ceil of log2(v); panics on v == 0. */
inline unsigned
ceilLog2(std::uint64_t v)
{
    SD_ASSERT(v != 0);
    return v == 1 ? 0u : floorLog2(v - 1) + 1;
}

/** Extract bits [lo, lo+width) from @p v. */
constexpr std::uint64_t
bits(std::uint64_t v, unsigned lo, unsigned width)
{
    if (width == 0)
        return 0;
    if (width >= 64)
        return v >> lo;
    return (v >> lo) & ((std::uint64_t{1} << width) - 1);
}

/** Insert @p field into bits [lo, lo+width) of @p v. */
constexpr std::uint64_t
insertBits(std::uint64_t v, unsigned lo, unsigned width,
           std::uint64_t field)
{
    const std::uint64_t mask =
        width >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
    return (v & ~(mask << lo)) | ((field & mask) << lo);
}

/** Round @p v up to the next multiple of @p align (align must be pow2). */
constexpr std::uint64_t
roundUpPow2(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/** Integer division rounding up. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace secdimm

#endif // SECUREDIMM_UTIL_BIT_UTILS_HH
