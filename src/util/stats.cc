#include "util/stats.hh"

#include <algorithm>
#include <iomanip>

namespace secdimm
{

void
Average::sample(double v)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;
}

void
Average::reset()
{
    count_ = 0;
    sum_ = min_ = max_ = 0.0;
}

Histogram::Histogram(std::size_t buckets, double bucket_width)
    : counts_(buckets == 0 ? 1 : buckets, 0),
      bucketWidth_(bucket_width <= 0.0 ? 1.0 : bucket_width)
{
}

void
Histogram::sample(double v)
{
    ++total_;
    sum_ += v;
    if (v < 0) {
        ++overflow_;
        return;
    }
    const auto idx = static_cast<std::size_t>(v / bucketWidth_);
    if (idx >= counts_.size())
        ++overflow_;
    else
        ++counts_[idx];
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    overflow_ = 0;
    total_ = 0;
    sum_ = 0.0;
}

Counter &
StatRegistry::counter(const std::string &name)
{
    return counters_[name];
}

Average &
StatRegistry::average(const std::string &name)
{
    return averages_[name];
}

Histogram &
StatRegistry::histogram(const std::string &name, std::size_t buckets,
                        double bucket_width)
{
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        it = histograms_.emplace(name, Histogram(buckets, bucket_width))
                 .first;
    }
    return it->second;
}

std::uint64_t
StatRegistry::counterValue(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
}

void
StatRegistry::reset()
{
    for (auto &kv : counters_)
        kv.second.reset();
    for (auto &kv : averages_)
        kv.second.reset();
    for (auto &kv : histograms_)
        kv.second.reset();
}

void
StatRegistry::dump(std::ostream &os) const
{
    for (const auto &kv : counters_)
        os << kv.first << " " << kv.second.value() << "\n";
    for (const auto &kv : averages_) {
        os << kv.first << ".mean " << std::setprecision(6)
           << kv.second.mean() << "\n";
        os << kv.first << ".count " << kv.second.count() << "\n";
    }
    for (const auto &kv : histograms_) {
        os << kv.first << ".samples " << kv.second.total() << "\n";
        os << kv.first << ".mean " << kv.second.mean() << "\n";
    }
}

} // namespace secdimm
