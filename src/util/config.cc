#include "util/config.hh"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace secdimm
{

namespace
{

std::string
trim(const std::string &s)
{
    auto b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    auto e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}

} // namespace

void
Config::set(const std::string &key, const std::string &value)
{
    values_[key] = value;
}

void
Config::setUInt(const std::string &key, std::uint64_t value)
{
    values_[key] = std::to_string(value);
}

void
Config::setDouble(const std::string &key, double value)
{
    std::ostringstream os;
    os << value;
    values_[key] = os.str();
}

void
Config::setBool(const std::string &key, bool value)
{
    values_[key] = value ? "true" : "false";
}

bool
Config::has(const std::string &key) const
{
    return values_.count(key) != 0;
}

std::string
Config::getString(const std::string &key, const std::string &def) const
{
    auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
}

std::uint64_t
Config::getUInt(const std::string &key, std::uint64_t def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    try {
        return std::stoull(it->second, nullptr, 0);
    } catch (...) {
        return def;
    }
}

double
Config::getDouble(const std::string &key, double def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    try {
        return std::stod(it->second);
    } catch (...) {
        return def;
    }
}

bool
Config::getBool(const std::string &key, bool def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    std::string v = it->second;
    std::transform(v.begin(), v.end(), v.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (v == "1" || v == "true" || v == "yes" || v == "on")
        return true;
    if (v == "0" || v == "false" || v == "no" || v == "off")
        return false;
    return def;
}

bool
Config::parseLine(const std::string &line)
{
    const std::string t = trim(line);
    if (t.empty() || t[0] == '#')
        return true;
    const auto eq = t.find('=');
    if (eq == std::string::npos)
        return false;
    const std::string key = trim(t.substr(0, eq));
    const std::string value = trim(t.substr(eq + 1));
    if (key.empty())
        return false;
    set(key, value);
    return true;
}

bool
Config::loadFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::string line;
    bool ok = true;
    while (std::getline(in, line))
        ok = parseLine(line) && ok;
    return ok;
}

void
Config::applyEnvOverrides(const std::string &prefix)
{
    for (auto &kv : values_) {
        std::string env_name = prefix;
        for (char c : kv.first) {
            if (c == '.' || c == '-')
                env_name += '_';
            else
                env_name += static_cast<char>(
                    std::toupper(static_cast<unsigned char>(c)));
        }
        if (const char *v = std::getenv(env_name.c_str()))
            kv.second = v;
    }
}

} // namespace secdimm
