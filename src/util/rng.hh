/**
 * @file
 * Deterministic pseudo-random number generator (xoshiro256**) used for
 * ORAM leaf remapping and workload synthesis.
 *
 * Seeding contract (what "deterministic" means in this codebase):
 *
 *  1. Every source of randomness is an Rng instance constructed from
 *     an explicit 64-bit seed.  There is no global RNG, no
 *     time/address seeding, and no hidden entropy: two runs given the
 *     same seeds perform bit-identical computations.
 *  2. Components that own several Rng instances derive their seeds
 *     from one caller-supplied seed by mixing in fixed per-component
 *     constants (e.g. `seed * 1000003 + i` per SDIMM), so one
 *     top-level seed pins the whole system while distinct components
 *     still draw from decorrelated streams.
 *  3. The public reproducibility guarantee, enforced by
 *     tests/verify/test_determinism.cc: two core::runWorkload() calls
 *     with identical (config, profile, lengths, seed) produce
 *     byte-identical metrics JSON, and the verify fuzzer reproduces
 *     any failure from (seed, iteration count) alone.
 *  4. Consuming randomness in a different ORDER changes results, so
 *     refactors that reorder draws are observable; update golden
 *     expectations deliberately, never silently.
 *
 * Note: simulation-side randomness only.  Cryptographic randomness in
 * the protocol model comes from AES-CTR pads in src/crypto.
 */

#ifndef SECUREDIMM_UTIL_RNG_HH
#define SECUREDIMM_UTIL_RNG_HH

#include <cstdint>

namespace secdimm
{

/**
 * xoshiro256** by Blackman & Vigna: fast, high-quality 64-bit PRNG with
 * a 256-bit state, seeded via splitmix64.
 */
class Rng
{
  public:
    /** Construct with a 64-bit seed (expanded through splitmix64). */
    explicit Rng(std::uint64_t seed = 0x5eed5d1335u) { reseed(seed); }

    /** Re-initialize the state from @p seed. */
    void reseed(std::uint64_t seed);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform value in [0, bound); bound == 0 returns 0. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial with probability @p p of returning true. */
    bool nextBool(double p);

    /**
     * Geometric-ish inter-arrival sample with mean @p mean (>=1),
     * used by the synthetic workload generators.
     */
    std::uint64_t nextGeometric(double mean);

  private:
    std::uint64_t s_[4];
};

} // namespace secdimm

#endif // SECUREDIMM_UTIL_RNG_HH
