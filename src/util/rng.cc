#include "util/rng.hh"

#include <cmath>

namespace secdimm
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

void
Rng::reseed(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    if (bound == 0)
        return 0;
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (~bound + 1) % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

std::uint64_t
Rng::nextGeometric(double mean)
{
    if (mean <= 1.0)
        return 1;
    // Inverse-CDF sampling of a geometric distribution with the given
    // mean; clamp u away from 0 so log() stays finite.
    const double p = 1.0 / mean;
    double u = nextDouble();
    if (u < 1e-12)
        u = 1e-12;
    const double v = std::log(u) / std::log(1.0 - p);
    return 1 + static_cast<std::uint64_t>(v);
}

} // namespace secdimm
