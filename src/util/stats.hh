/**
 * @file
 * Lightweight statistics package: named scalar counters, averages, and
 * fixed-bucket histograms, grouped in a registry that can be dumped in
 * a stable, diffable text format.
 */

#ifndef SECUREDIMM_UTIL_STATS_HH
#define SECUREDIMM_UTIL_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace secdimm
{

/** Monotonic scalar counter. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { value_ += n; }
    void reset() { value_ = 0; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/** Running mean/min/max over observed samples. */
class Average
{
  public:
    void sample(double v);
    void reset();

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Histogram over [0, buckets*bucketWidth) with an overflow bucket. */
class Histogram
{
  public:
    Histogram(std::size_t buckets = 16, double bucket_width = 1.0);

    void sample(double v);
    void reset();

    std::size_t bucketCount() const { return counts_.size(); }
    double bucketWidth() const { return bucketWidth_; }
    std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t total() const { return total_; }
    double mean() const { return total_ ? sum_ / total_ : 0.0; }

  private:
    std::vector<std::uint64_t> counts_;
    double bucketWidth_;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
    double sum_ = 0.0;
};

/**
 * Named collection of statistics.  Components register stats by name;
 * dump() prints "name value" lines sorted by name.
 */
class StatRegistry
{
  public:
    Counter &counter(const std::string &name);
    Average &average(const std::string &name);
    Histogram &histogram(const std::string &name,
                         std::size_t buckets = 16,
                         double bucket_width = 1.0);

    /** Fetch an existing counter's value; 0 if absent. */
    std::uint64_t counterValue(const std::string &name) const;

    void reset();
    void dump(std::ostream &os) const;

  private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, Average> averages_;
    std::map<std::string, Histogram> histograms_;
};

} // namespace secdimm

#endif // SECUREDIMM_UTIL_STATS_HH
