/**
 * @file
 * Unified observability layer: a registry of named counters, gauges,
 * and log-scale histograms that every simulated component exports
 * into, with JSON serialization so benches can emit machine-readable
 * BENCH_*.json snapshots (see docs/METRICS.md for the namespace and
 * schema).
 *
 * Names are dot-separated paths ("dram.cpu.ch0.row_hits"); each name
 * belongs to exactly one kind.  Re-registering a name under a
 * different kind throws, so a typo cannot silently shadow a metric.
 */

#ifndef SECUREDIMM_UTIL_METRICS_HH
#define SECUREDIMM_UTIL_METRICS_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace secdimm::util
{

/**
 * Power-of-two bucketed histogram for non-negative integer samples
 * (queue depths, stash occupancy, byte counts).  Bucket 0 counts the
 * value 0; bucket i >= 1 counts values in [2^(i-1), 2^i).  Log-scale
 * buckets keep the vector short for heavy-tailed distributions while
 * still resolving the small occupancies that matter.
 */
class LogHistogram
{
  public:
    void sample(std::uint64_t v);
    void reset();

    /** Merge another histogram's samples into this one. */
    void merge(const LogHistogram &other);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    std::uint64_t max() const { return max_; }

    /** Bucket counts; trailing zero buckets are never stored. */
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }

    /** Inclusive lower bound of bucket @p i (0, 1, 2, 4, 8, ...). */
    static std::uint64_t bucketLow(std::size_t i);
    /** Inclusive upper bound of bucket @p i (0, 1, 3, 7, 15, ...). */
    static std::uint64_t bucketHigh(std::size_t i);

    /** Deserialization support: install serialized state wholesale. */
    void restore(std::vector<std::uint64_t> buckets, std::uint64_t count,
                 double sum, std::uint64_t max);

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    std::uint64_t max_ = 0;
    double sum_ = 0.0;
};

/**
 * The registry every layer exports into.  Counters are uint64 event
 * counts; gauges are point-in-time doubles (rates, averages, energy);
 * histograms are LogHistograms of repeated samples.
 *
 * Thread safety: every named operation (incCounter, setGauge,
 * sampleHistogram, counter, merge, toJson, ...) is internally
 * mutex-guarded, so N worker threads may export into one shared
 * registry (the src/serve shards do).  The two escape hatches are
 * histogram(), whose returned reference may only be sampled while no
 * other thread touches the registry, and the raw counters() /
 * gauges() / histograms() map accessors, which likewise require the
 * registry to be quiescent.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &other);
    MetricsRegistry(MetricsRegistry &&other) noexcept;
    MetricsRegistry &operator=(const MetricsRegistry &other);
    MetricsRegistry &operator=(MetricsRegistry &&other) noexcept;

    /* --- counters ------------------------------------------------ */
    void incCounter(const std::string &name, std::uint64_t n = 1);
    void setCounter(const std::string &name, std::uint64_t v);
    std::uint64_t counter(const std::string &name) const;

    /* --- gauges -------------------------------------------------- */
    void setGauge(const std::string &name, double v);
    double gauge(const std::string &name) const;

    /* --- histograms ---------------------------------------------- */
    /**
     * Get-or-create; throws std::logic_error on kind collision.
     * The reference is stable, but sampling through it is NOT
     * synchronized -- concurrent writers use sampleHistogram().
     */
    LogHistogram &histogram(const std::string &name);
    const LogHistogram *findHistogram(const std::string &name) const;

    /** Record one sample under the registry lock (get-or-create). */
    void sampleHistogram(const std::string &name, std::uint64_t v);

    bool has(const std::string &name) const;

    /** All metric names, sorted (counters + gauges + histograms). */
    std::vector<std::string> names() const;

    /**
     * Fold @p other in: counters add, gauges overwrite, histograms
     * merge.  Used to aggregate per-instance registries.
     */
    void merge(const MetricsRegistry &other);

    void reset();
    bool empty() const;

    const std::map<std::string, std::uint64_t> &counters() const
    {
        return counters_;
    }
    const std::map<std::string, double> &gauges() const { return gauges_; }
    const std::map<std::string, LogHistogram> &histograms() const
    {
        return histograms_;
    }

    /**
     * Serialize as a JSON object:
     * {"counters":{...},"gauges":{...},"histograms":{name:
     *  {"count":..,"sum":..,"max":..,"buckets":[..]}}}
     * @param indent  base indentation (two extra spaces per level);
     *                negative emits compact single-line JSON.
     */
    std::string toJson(int indent = 0) const;

    /** Parse toJson() output back; nullopt on malformed input. */
    static std::optional<MetricsRegistry> fromJson(const std::string &text);

  private:
    /** Throws std::logic_error if @p name exists under another kind.
     *  Caller holds mu_. */
    void checkKind(const std::string &name, int kind) const;

    mutable std::mutex mu_;
    std::map<std::string, std::uint64_t> counters_;
    std::map<std::string, double> gauges_;
    std::map<std::string, LogHistogram> histograms_;
};

/** Format a double the way toJson() does (shortest round-trippable). */
std::string jsonNumber(double v);

/** Escape a string for embedding in JSON (quotes included). */
std::string jsonQuote(const std::string &s);

} // namespace secdimm::util

#endif // SECUREDIMM_UTIL_METRICS_HH
