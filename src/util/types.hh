/**
 * @file
 * Fundamental scalar types and block-sized value types shared by every
 * module in the Secure DIMM reproduction.
 */

#ifndef SECUREDIMM_UTIL_TYPES_HH
#define SECUREDIMM_UTIL_TYPES_HH

#include <array>
#include <cstddef>
#include <cstdint>

namespace secdimm
{

/** Physical or ORAM-logical byte/block address. */
using Addr = std::uint64_t;

/** Absolute simulation time, measured in memory-controller cycles. */
using Tick = std::uint64_t;

/** A duration in memory-controller cycles. */
using Cycles = std::uint64_t;

/** Leaf identifier in a Path ORAM tree (0 .. 2^L - 1). */
using LeafId = std::uint64_t;

/** Cache-line / ORAM-block size used throughout (bytes). */
inline constexpr std::size_t blockBytes = 64;

/** One 64-byte data block, the unit of all ORAM data movement. */
using BlockData = std::array<std::uint8_t, blockBytes>;

/** A tick value meaning "never" / "not scheduled". */
inline constexpr Tick tickNever = ~Tick{0};

/** Sentinel for an invalid / absent address. */
inline constexpr Addr invalidAddr = ~Addr{0};

/** Sentinel for an invalid leaf. */
inline constexpr LeafId invalidLeaf = ~LeafId{0};

/** Zero-filled block, handy for dummies. */
inline BlockData
zeroBlock()
{
    return BlockData{};
}

} // namespace secdimm

#endif // SECUREDIMM_UTIL_TYPES_HH
