/**
 * @file
 * gem5-style status and error reporting: panic() for simulator bugs,
 * fatal() for user errors, warn()/inform() for status messages.
 */

#ifndef SECUREDIMM_UTIL_LOGGING_HH
#define SECUREDIMM_UTIL_LOGGING_HH

#include <cstdarg>
#include <cstdint>
#include <string>

namespace secdimm
{

/**
 * Report an internal invariant violation (a simulator bug) and abort().
 * Use for conditions that must never happen regardless of user input.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user error (bad configuration, bad arguments)
 * and exit(1).
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Warn about suspicious but survivable conditions. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Informative status message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Enable/disable inform() output (benches silence it). */
void setInformEnabled(bool enabled);

/** Number of warn() calls so far (tests assert on this). */
std::uint64_t warnCount();

/**
 * Assert-like check active in all build types.  On failure, panics with
 * the stringified condition and location.
 */
#define SD_ASSERT(cond)                                                  \
    do {                                                                 \
        if (!(cond)) {                                                   \
            ::secdimm::panic("assertion '%s' failed at %s:%d", #cond,    \
                             __FILE__, __LINE__);                        \
        }                                                                \
    } while (0)

} // namespace secdimm

#endif // SECUREDIMM_UTIL_LOGGING_HH
