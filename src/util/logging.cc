#include "util/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace secdimm
{

namespace
{

std::atomic<bool> informEnabled{true};
std::atomic<std::uint64_t> warnCounter{0};

void
vreport(const char *prefix, const char *fmt, std::va_list args)
{
    std::fprintf(stderr, "%s: ", prefix);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
}

} // namespace

void
panic(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    vreport("panic", fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    vreport("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    warnCounter.fetch_add(1, std::memory_order_relaxed);
    std::va_list args;
    va_start(args, fmt);
    vreport("warn", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    if (!informEnabled.load(std::memory_order_relaxed))
        return;
    std::va_list args;
    va_start(args, fmt);
    vreport("info", fmt, args);
    va_end(args);
}

void
setInformEnabled(bool enabled)
{
    informEnabled.store(enabled, std::memory_order_relaxed);
}

std::uint64_t
warnCount()
{
    return warnCounter.load(std::memory_order_relaxed);
}

} // namespace secdimm
