#include "util/metrics.hh"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace secdimm::util
{

/* ----------------------------- LogHistogram ----------------------- */

namespace
{

std::size_t
bucketOf(std::uint64_t v)
{
    if (v == 0)
        return 0;
    std::size_t i = 1;
    while (v >>= 1)
        ++i;
    return i; // 1 -> bucket 1, 2..3 -> 2, 4..7 -> 3, ...
}

} // namespace

void
LogHistogram::sample(std::uint64_t v)
{
    const std::size_t idx = bucketOf(v);
    if (idx >= buckets_.size())
        buckets_.resize(idx + 1, 0);
    ++buckets_[idx];
    ++count_;
    sum_ += static_cast<double>(v);
    if (v > max_)
        max_ = v;
}

void
LogHistogram::reset()
{
    buckets_.clear();
    count_ = 0;
    max_ = 0;
    sum_ = 0.0;
}

void
LogHistogram::merge(const LogHistogram &other)
{
    if (other.buckets_.size() > buckets_.size())
        buckets_.resize(other.buckets_.size(), 0);
    for (std::size_t i = 0; i < other.buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.max_ > max_)
        max_ = other.max_;
}

std::uint64_t
LogHistogram::bucketLow(std::size_t i)
{
    return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
}

std::uint64_t
LogHistogram::bucketHigh(std::size_t i)
{
    return i == 0 ? 0 : (std::uint64_t{1} << i) - 1;
}

void
LogHistogram::restore(std::vector<std::uint64_t> buckets,
                      std::uint64_t count, double sum, std::uint64_t max)
{
    buckets_ = std::move(buckets);
    count_ = count;
    sum_ = sum;
    max_ = max;
}

/* ----------------------------- registry --------------------------- */

MetricsRegistry::MetricsRegistry(const MetricsRegistry &other)
{
    std::lock_guard<std::mutex> lk(other.mu_);
    counters_ = other.counters_;
    gauges_ = other.gauges_;
    histograms_ = other.histograms_;
}

MetricsRegistry::MetricsRegistry(MetricsRegistry &&other) noexcept
{
    std::lock_guard<std::mutex> lk(other.mu_);
    counters_ = std::move(other.counters_);
    gauges_ = std::move(other.gauges_);
    histograms_ = std::move(other.histograms_);
}

MetricsRegistry &
MetricsRegistry::operator=(const MetricsRegistry &other)
{
    if (this == &other)
        return *this;
    std::scoped_lock lk(mu_, other.mu_);
    counters_ = other.counters_;
    gauges_ = other.gauges_;
    histograms_ = other.histograms_;
    return *this;
}

MetricsRegistry &
MetricsRegistry::operator=(MetricsRegistry &&other) noexcept
{
    if (this == &other)
        return *this;
    std::scoped_lock lk(mu_, other.mu_);
    counters_ = std::move(other.counters_);
    gauges_ = std::move(other.gauges_);
    histograms_ = std::move(other.histograms_);
    return *this;
}

void
MetricsRegistry::checkKind(const std::string &name, int kind) const
{
    const bool c = counters_.count(name) != 0;
    const bool g = gauges_.count(name) != 0;
    const bool h = histograms_.count(name) != 0;
    if ((c && kind != 0) || (g && kind != 1) || (h && kind != 2))
        throw std::logic_error("metric '" + name +
                               "' already registered with another kind");
}

void
MetricsRegistry::incCounter(const std::string &name, std::uint64_t n)
{
    std::lock_guard<std::mutex> lk(mu_);
    checkKind(name, 0);
    counters_[name] += n;
}

void
MetricsRegistry::setCounter(const std::string &name, std::uint64_t v)
{
    std::lock_guard<std::mutex> lk(mu_);
    checkKind(name, 0);
    counters_[name] = v;
}

std::uint64_t
MetricsRegistry::counter(const std::string &name) const
{
    std::lock_guard<std::mutex> lk(mu_);
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

void
MetricsRegistry::setGauge(const std::string &name, double v)
{
    std::lock_guard<std::mutex> lk(mu_);
    checkKind(name, 1);
    gauges_[name] = v;
}

double
MetricsRegistry::gauge(const std::string &name) const
{
    std::lock_guard<std::mutex> lk(mu_);
    auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second;
}

LogHistogram &
MetricsRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lk(mu_);
    checkKind(name, 2);
    return histograms_[name];
}

void
MetricsRegistry::sampleHistogram(const std::string &name,
                                 std::uint64_t v)
{
    std::lock_guard<std::mutex> lk(mu_);
    checkKind(name, 2);
    histograms_[name].sample(v);
}

const LogHistogram *
MetricsRegistry::findHistogram(const std::string &name) const
{
    std::lock_guard<std::mutex> lk(mu_);
    auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
}

bool
MetricsRegistry::has(const std::string &name) const
{
    std::lock_guard<std::mutex> lk(mu_);
    return counters_.count(name) || gauges_.count(name) ||
           histograms_.count(name);
}

std::vector<std::string>
MetricsRegistry::names() const
{
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<std::string> out;
    out.reserve(counters_.size() + gauges_.size() + histograms_.size());
    for (const auto &kv : counters_)
        out.push_back(kv.first);
    for (const auto &kv : gauges_)
        out.push_back(kv.first);
    for (const auto &kv : histograms_)
        out.push_back(kv.first);
    std::sort(out.begin(), out.end());
    return out;
}

void
MetricsRegistry::merge(const MetricsRegistry &other)
{
    if (this == &other)
        return;
    std::scoped_lock lk(mu_, other.mu_);
    for (const auto &kv : other.counters_) {
        checkKind(kv.first, 0);
        counters_[kv.first] += kv.second;
    }
    for (const auto &kv : other.gauges_) {
        checkKind(kv.first, 1);
        gauges_[kv.first] = kv.second;
    }
    for (const auto &kv : other.histograms_) {
        checkKind(kv.first, 2);
        histograms_[kv.first].merge(kv.second);
    }
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lk(mu_);
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
}

bool
MetricsRegistry::empty() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return counters_.empty() && gauges_.empty() && histograms_.empty();
}

/* ----------------------------- JSON out --------------------------- */

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "0";
    // Integers (common for sums) print without an exponent.
    if (v == std::floor(v) && std::fabs(v) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.0f", v);
        return buf;
    }
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

std::string
jsonQuote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

namespace
{

struct JsonWriter
{
    std::string out;
    int indent;

    explicit JsonWriter(int base) : indent(base) {}

    bool pretty() const { return indent >= 0; }

    void
    newline(int level)
    {
        if (!pretty())
            return;
        out += '\n';
        out.append(static_cast<std::size_t>(indent + 2 * level), ' ');
    }
};

const char *
pretty_sep(const JsonWriter &w)
{
    return w.pretty() ? ": " : ":";
}

template <typename Map, typename Fn>
void
writeObject(JsonWriter &w, int level, const Map &map, Fn &&value_fn)
{
    w.out += '{';
    bool first = true;
    for (const auto &kv : map) {
        if (!first)
            w.out += ',';
        first = false;
        w.newline(level + 1);
        w.out += jsonQuote(kv.first);
        w.out += pretty_sep(w);
        value_fn(kv.second);
    }
    if (!first)
        w.newline(level);
    w.out += '}';
}

} // namespace

std::string
MetricsRegistry::toJson(int indent) const
{
    std::lock_guard<std::mutex> lk(mu_);
    JsonWriter w(indent);
    w.out += '{';
    w.newline(1);
    w.out += jsonQuote("counters");
    w.out += pretty_sep(w);
    writeObject(w, 1, counters_, [&](std::uint64_t v) {
        w.out += std::to_string(v);
    });
    w.out += ',';
    w.newline(1);
    w.out += jsonQuote("gauges");
    w.out += pretty_sep(w);
    writeObject(w, 1, gauges_, [&](double v) { w.out += jsonNumber(v); });
    w.out += ',';
    w.newline(1);
    w.out += jsonQuote("histograms");
    w.out += pretty_sep(w);
    writeObject(w, 1, histograms_, [&](const LogHistogram &h) {
        w.out += '{';
        w.newline(3);
        w.out += jsonQuote("count");
        w.out += pretty_sep(w);
        w.out += std::to_string(h.count());
        w.out += ',';
        w.newline(3);
        w.out += jsonQuote("sum");
        w.out += pretty_sep(w);
        w.out += jsonNumber(h.sum());
        w.out += ',';
        w.newline(3);
        w.out += jsonQuote("max");
        w.out += pretty_sep(w);
        w.out += std::to_string(h.max());
        w.out += ',';
        w.newline(3);
        w.out += jsonQuote("buckets");
        w.out += pretty_sep(w);
        w.out += '[';
        for (std::size_t i = 0; i < h.buckets().size(); ++i) {
            if (i)
                w.out += ',';
            w.out += std::to_string(h.buckets()[i]);
        }
        w.out += ']';
        w.newline(2);
        w.out += '}';
    });
    w.newline(0);
    w.out += '}';
    return w.out;
}

/* ----------------------------- JSON in ----------------------------
 * Minimal recursive-descent parser for the subset toJson() emits
 * (objects, arrays, strings, numbers).  Enough for round-tripping
 * snapshots and for tools that diff BENCH_*.json files.
 */

namespace
{

struct Parser
{
    const char *p;
    const char *end;
    bool ok = true;

    void
    ws()
    {
        while (p < end && std::isspace(static_cast<unsigned char>(*p)))
            ++p;
    }

    bool
    consume(char c)
    {
        ws();
        if (p < end && *p == c) {
            ++p;
            return true;
        }
        ok = false;
        return false;
    }

    bool
    peek(char c)
    {
        ws();
        return p < end && *p == c;
    }

    std::string
    string()
    {
        std::string out;
        if (!consume('"'))
            return out;
        while (p < end && *p != '"') {
            if (*p == '\\' && p + 1 < end) {
                ++p;
                switch (*p) {
                  case 'n':
                    out += '\n';
                    break;
                  case 't':
                    out += '\t';
                    break;
                  case 'u':
                    // toJson only emits \u00xx control escapes.
                    if (p + 4 < end) {
                        out += static_cast<char>(
                            std::strtol(std::string(p + 1, p + 5).c_str(),
                                        nullptr, 16));
                        p += 4;
                    }
                    break;
                  default:
                    out += *p;
                }
                ++p;
            } else {
                out += *p++;
            }
        }
        if (!consume('"'))
            ok = false;
        return out;
    }

    double
    number()
    {
        ws();
        char *after = nullptr;
        const double v = std::strtod(p, &after);
        if (after == p) {
            ok = false;
            return 0.0;
        }
        p = after;
        return v;
    }

    /** Exact uint64 parse (counters exceed double's 53-bit mantissa). */
    std::uint64_t
    uinteger()
    {
        ws();
        char *after = nullptr;
        const std::uint64_t v = std::strtoull(p, &after, 10);
        if (after == p) {
            ok = false;
            return 0;
        }
        p = after;
        return v;
    }

    /** Iterate an object's members, invoking fn(key). */
    template <typename Fn>
    void
    object(Fn &&fn)
    {
        if (!consume('{'))
            return;
        if (peek('}')) {
            consume('}');
            return;
        }
        do {
            const std::string key = string();
            if (!ok || !consume(':'))
                return;
            fn(key);
        } while (ok && consume_comma());
        consume('}');
    }

    bool
    consume_comma()
    {
        ws();
        if (p < end && *p == ',') {
            ++p;
            return true;
        }
        return false;
    }
};

} // namespace

std::optional<MetricsRegistry>
MetricsRegistry::fromJson(const std::string &text)
{
    MetricsRegistry reg;
    Parser ps{text.data(), text.data() + text.size()};

    ps.object([&](const std::string &section) {
        if (section == "counters") {
            ps.object([&](const std::string &name) {
                reg.setCounter(name, ps.uinteger());
            });
        } else if (section == "gauges") {
            ps.object([&](const std::string &name) {
                reg.setGauge(name, ps.number());
            });
        } else if (section == "histograms") {
            ps.object([&](const std::string &name) {
                LogHistogram &h = reg.histogram(name);
                std::uint64_t count = 0, max = 0;
                double sum = 0.0;
                std::vector<std::uint64_t> buckets;
                ps.object([&](const std::string &field) {
                    if (field == "count") {
                        count = ps.uinteger();
                    } else if (field == "sum") {
                        sum = ps.number();
                    } else if (field == "max") {
                        max = ps.uinteger();
                    } else if (field == "buckets") {
                        if (!ps.consume('['))
                            return;
                        if (!ps.peek(']')) {
                            do {
                                buckets.push_back(ps.uinteger());
                            } while (ps.consume_comma());
                        }
                        ps.consume(']');
                    } else {
                        ps.ok = false;
                    }
                });
                h.restore(std::move(buckets), count, sum, max);
            });
        } else {
            ps.ok = false;
        }
    });

    ps.ws();
    if (!ps.ok || ps.p != ps.end)
        return std::nullopt;
    return reg;
}

} // namespace secdimm::util
