/**
 * @file
 * Typed key/value configuration store with defaults, environment
 * overrides, and simple "key = value" file parsing.  Benches use it to
 * expose sweep parameters without recompiling.
 */

#ifndef SECUREDIMM_UTIL_CONFIG_HH
#define SECUREDIMM_UTIL_CONFIG_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace secdimm
{

/** String-backed configuration dictionary with typed accessors. */
class Config
{
  public:
    /** Set (or overwrite) a key. */
    void set(const std::string &key, const std::string &value);
    void setUInt(const std::string &key, std::uint64_t value);
    void setDouble(const std::string &key, double value);
    void setBool(const std::string &key, bool value);

    bool has(const std::string &key) const;

    /** Typed getters returning @p def when the key is absent. */
    std::string getString(const std::string &key,
                          const std::string &def = "") const;
    std::uint64_t getUInt(const std::string &key,
                          std::uint64_t def = 0) const;
    double getDouble(const std::string &key, double def = 0.0) const;
    bool getBool(const std::string &key, bool def = false) const;

    /**
     * Parse "key = value" lines ('#' comments, blank lines ignored).
     * @return false (with no mutation of previously-set keys rolled
     * back) if any line is malformed.
     */
    bool parseLine(const std::string &line);
    bool loadFile(const std::string &path);

    /**
     * Override keys from environment variables: key "dram.channels"
     * maps to env var prefix + "DRAM_CHANNELS".
     */
    void applyEnvOverrides(const std::string &prefix);

    std::size_t size() const { return values_.size(); }
    const std::map<std::string, std::string> &raw() const
    {
        return values_;
    }

  private:
    std::map<std::string, std::string> values_;
};

} // namespace secdimm

#endif // SECUREDIMM_UTIL_CONFIG_HH
