/**
 * @file
 * The library's main functional entry point: an encrypted,
 * access-pattern-oblivious memory.  Pick a protocol (plain Path ORAM,
 * SDIMM Independent, or SDIMM Split), a capacity, and read/write
 * bytes; underneath, real AES-CTR-encrypted, PMMAC-authenticated
 * blocks move through the chosen ORAM protocol.
 *
 * Example:
 * @code
 *   core::SecureMemorySystem::Options opt;
 *   opt.protocol = core::SecureMemorySystem::Protocol::Split;
 *   opt.capacityBytes = 1 << 20;
 *   core::SecureMemorySystem mem(opt);
 *   mem.write(0x1000, "secret", 6);
 * @endcode
 */

#ifndef SECUREDIMM_CORE_SECURE_MEMORY_SYSTEM_HH
#define SECUREDIMM_CORE_SECURE_MEMORY_SYSTEM_HH

#include <cstdint>
#include <memory>

#include "fault/fault_plan.hh"
#include "fault/fault_types.hh"
#include "oram/path_oram.hh"
#include "oram/recursive_oram.hh"
#include "sdimm/indep_split_oram.hh"
#include "sdimm/independent_oram.hh"
#include "sdimm/split_oram.hh"
#include "util/metrics.hh"
#include "verify/invariant_audit.hh"

namespace secdimm::verify
{
class ChannelObserver;
}

namespace secdimm::core
{

/** Byte-addressable oblivious memory over the functional protocols. */
class SecureMemorySystem
{
  public:
    enum class Protocol
    {
        PathOram,    ///< Single-tree Path ORAM (baseline).
        Freecursive, ///< Recursive PosMaps + PLB (Section II-D).
        Independent, ///< SDIMM Independent (Section III-C).
        Split,       ///< SDIMM Split (Section III-D).
        IndepSplit,  ///< Independent groups of Splits (Figure 7e).
    };

    struct Options
    {
        Protocol protocol = Protocol::PathOram;
        std::uint64_t capacityBytes = 1 << 20;
        /** SDIMM count (Independent / Split), group count (IndepSplit). */
        unsigned numSdimms = 2;
        /** IndepSplit only: Split width inside each group. */
        unsigned slicesPerGroup = 2;
        unsigned stashCapacity = 200;
        std::uint64_t seed = 1;

        /**
         * Fault-injection campaign (docs/FAULTS.md): when any rate is
         * non-zero a FaultInjector is armed across the chosen
         * protocol's DRAM, link, and queue seams, and MAC/decode
         * failures turn into bounded detect-and-retry episodes
         * governed by @p degradationPolicy instead of panics.
         */
        fault::FaultPlan faultPlan;
        fault::DegradationPolicy degradationPolicy =
            fault::DegradationPolicy::RetryThenStop;

        /**
         * Debug-build-yourself invariant audits: when enabled, every
         * `interval` accesses the active protocol's full invariant set
         * is walked (verify::invariant_audit.hh) and a violation is
         * fatal.  The SDIMM_AUDIT / SDIMM_AUDIT_INTERVAL environment
         * variables override these at construction.
         */
        verify::AuditSettings audits;
    };

    explicit SecureMemorySystem(const Options &options);
    ~SecureMemorySystem();

    SecureMemorySystem(const SecureMemorySystem &) = delete;
    SecureMemorySystem &operator=(const SecureMemorySystem &) = delete;

    /** Usable capacity (rounded up from the requested amount). */
    std::uint64_t capacityBytes() const;

    /** Read one 64-byte block. */
    BlockData readBlock(Addr block_index);

    /** Write one 64-byte block. */
    void writeBlock(Addr block_index, const BlockData &data);

    /** Byte-granular read (spans blocks as needed). */
    void read(Addr byte_addr, void *out, std::size_t len);

    /** Byte-granular write (read-modify-write at block granularity). */
    void write(Addr byte_addr, const void *data, std::size_t len);

    /** Total accessORAM operations performed (incl. dummies). */
    std::uint64_t accessCount() const;

    /** All integrity checks (MACs, counters, link auth) passed. */
    bool integrityOk() const;

    /**
     * Run the active protocol's invariant audit immediately,
     * regardless of the periodic settings, and return the report
     * (the periodic path calls this and fatals on violations).
     */
    verify::AuditReport auditNow() const;

    /**
     * Snapshot of the active protocol's counters, namespaced core.* /
     * oram.* / sdimm.* as in docs/METRICS.md.  Serialize with
     * MetricsRegistry::toJson().
     */
    util::MetricsRegistry metrics() const;

    Protocol protocol() const { return options_.protocol; }

    /**
     * Attach a passive verify::ChannelObserver to this instance's
     * externally visible channel: the BucketStore sequence for
     * PathOram, every tree's BucketStore for Freecursive.  The
     * Independent/Split families expose their visible trace through
     * busTrace() instead of a callback channel, so they return 0.
     * Returns the number of attach points.  The observer must outlive
     * all subsequent accesses.
     */
    unsigned attachObserver(verify::ChannelObserver &observer);

    /**
     * The armed fault injector (nullptr when the FaultPlan is empty):
     * injection/detection/recovery counters for acceptance tests.
     */
    const fault::FaultInjector *faultInjector() const
    {
        return injector_.get();
    }
    fault::FaultInjector *faultInjector() { return injector_.get(); }

  private:
    BlockData accessBlock(Addr block_index, oram::OramOp op,
                          const BlockData *data);

    Options options_;
    std::uint64_t capacityBlocks_;
    verify::AuditSettings audits_;
    std::uint64_t accessesSinceAudit_ = 0;
    std::uint64_t auditsRun_ = 0;
    std::uint64_t auditViolations_ = 0;
    std::unique_ptr<fault::FaultInjector> injector_;
    std::unique_ptr<oram::PathOram> pathOram_;
    std::unique_ptr<oram::RecursiveOram> recursive_;
    std::unique_ptr<sdimm::IndependentOram> independent_;
    std::unique_ptr<sdimm::SplitOram> split_;
    std::unique_ptr<sdimm::IndepSplitOram> indepSplit_;
};

} // namespace secdimm::core

#endif // SECUREDIMM_CORE_SECURE_MEMORY_SYSTEM_HH
