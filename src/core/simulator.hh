/**
 * @file
 * Top-level simulation driver: runs one synthetic workload through
 * the Table II core + LLC into a configured memory backend and
 * collects the metrics every figure of the paper reports (execution
 * cycles, memory energy by component, off-DIMM traffic, accessORAM
 * counts).
 */

#ifndef SECUREDIMM_CORE_SIMULATOR_HH
#define SECUREDIMM_CORE_SIMULATOR_HH

#include <string>

#include "core/system_config.hh"
#include "dram/power_model.hh"
#include "trace/core_model.hh"
#include "trace/workload.hh"
#include "util/metrics.hh"

namespace secdimm::verify
{
class ChannelObserver;
}

namespace secdimm::core
{

/** Everything one simulation run produces. */
struct SimResult
{
    trace::CoreRunResult core;
    dram::EnergyBreakdown energy;   ///< Whole memory system.
    std::uint64_t offDimmLines = 0; ///< Bursts on CPU channels.
    std::uint64_t accessOrams = 0;  ///< Path ops executed anywhere.
    double avgOramsPerMiss = 0.0;   ///< Recursion cost (PLB quality).
    std::uint64_t probes = 0;       ///< PROBE polls (SDIMM designs).

    /** Cycles lost to fault handling: retries, watchdog backoff
     *  waits, and evacuation traffic (0 when no fault plan armed). */
    std::uint64_t recoveryCycles = 0;

    /**
     * Every layer's counters for this run, namespaced core.* /
     * dram.* / oram.* / sdimm.* (docs/METRICS.md).  Benches serialize
     * this into their BENCH_*.json snapshots.
     */
    util::MetricsRegistry metrics;

    double
    cyclesPerMiss() const
    {
        return core.llcMisses
                   ? static_cast<double>(core.cycles) / core.llcMisses
                   : 0.0;
    }
};

/** Simulation lengths (paper: 1M warm-up + 1M measured). */
struct SimLengths
{
    std::uint64_t warmupRecords = 20000;
    std::uint64_t measureRecords = 4000;
};

/**
 * Run @p profile on @p config.  Deterministic for a given seed.
 *
 * If @p observer is non-null it is attached to the backend's
 * externally visible interfaces (verify::attachToBackend) before the
 * first access, so the recorded trace covers the whole run; the
 * observer must outlive the call.
 */
SimResult runWorkload(const SystemConfig &config,
                      const trace::WorkloadProfile &profile,
                      const SimLengths &lengths, std::uint64_t seed,
                      verify::ChannelObserver *observer = nullptr);

/**
 * Same as runWorkload(), but replaying records pulled from an
 * arbitrary @p source (application-level streams such as the KV
 * workload adapter) instead of the built-in synthetic generators.
 * @p seed still pins the backend's internal randomness.
 */
SimResult runWorkloadFromSource(const SystemConfig &config,
                                trace::RecordSource &source,
                                const SimLengths &lengths,
                                std::uint64_t seed,
                                verify::ChannelObserver *observer = nullptr);

/**
 * Bench-scaling knob: reads SDIMM_BENCH_ACCESSES (measured records)
 * and SDIMM_BENCH_WARMUP from the environment, falling back to the
 * given defaults (see DESIGN.md section 7).
 */
SimLengths benchLengths(std::uint64_t default_measure = 4000,
                        std::uint64_t default_warmup = 20000);

} // namespace secdimm::core

#endif // SECUREDIMM_CORE_SIMULATOR_HH
