#include "core/system_config.hh"

#include "oram/freecursive_backend.hh"
#include "oram/nonsecure_backend.hh"
#include "sdimm/independent_backend.hh"
#include "sdimm/split_backend.hh"
#include "util/bit_utils.hh"
#include "util/logging.hh"

namespace secdimm::core
{

unsigned
SystemConfig::numSdimms() const
{
    switch (design) {
      case DesignPoint::NonSecure:
      case DesignPoint::PathOram:
      case DesignPoint::Freecursive:
        return 0;
      case DesignPoint::Indep2:
      case DesignPoint::Split2:
        return 2;
      case DesignPoint::Indep4:
      case DesignPoint::Split4:
      case DesignPoint::IndepSplit:
        return 4;
    }
    return 0;
}

unsigned
SystemConfig::groups() const
{
    switch (design) {
      case DesignPoint::Split2:
      case DesignPoint::Split4:
        return 1;
      case DesignPoint::IndepSplit:
        return 2;
      default:
        return 0;
    }
}

oram::OramParams
SystemConfig::globalTree() const
{
    oram::OramParams p;
    p.levels = treeLevels;
    p.cachedLevels = cachedLevels;
    return p;
}

SystemConfig
makeConfig(DesignPoint design, unsigned tree_levels,
           unsigned cached_levels)
{
    SystemConfig cfg;
    cfg.design = design;
    cfg.treeLevels = tree_levels;
    cfg.cachedLevels = cached_levels;
    cfg.timing = dram::ddr3_1600();

    // Table II channel counts: single-channel designs are the
    // Freecursive-1ch baseline, INDEP-2 and SPLIT-2; 2-channel designs
    // are Freecursive-2ch, INDEP-4, SPLIT-4, INDEP-SPLIT.  NonSecure
    // and Freecursive channel counts are overridden by callers for
    // the 1ch/2ch variants (default 1).
    switch (design) {
      case DesignPoint::Indep4:
      case DesignPoint::Split4:
      case DesignPoint::IndepSplit:
        cfg.cpuChannels = 2;
        break;
      default:
        cfg.cpuChannels = 1;
        break;
    }

    // CPU-attached DRAM (Table II: 8 ranks/channel, 8 banks, 8KB
    // rows); rows sized so the address space covers the tree.
    cfg.cpuGeom.ranksPerChannel = 8;
    cfg.cpuGeom.banksPerRank = 8;
    cfg.cpuGeom.rowsPerBank = 1u << 17;
    cfg.cpuGeom.channels = cfg.cpuChannels;

    // One SDIMM: quad-rank, same devices.
    cfg.sdimmGeom.channels = 1;
    cfg.sdimmGeom.ranksPerChannel = 4;
    cfg.sdimmGeom.banksPerRank = 8;
    cfg.sdimmGeom.rowsPerBank = 1u << 17;

    return cfg;
}

namespace
{

/** Per-SDIMM (or per-group) tree for the distributed designs. */
oram::OramParams
partitionedTree(const SystemConfig &cfg, unsigned partitions)
{
    oram::OramParams p = cfg.globalTree();
    const unsigned shrink = floorLog2(partitions);
    SD_ASSERT(p.levels > shrink);
    p.levels -= shrink;
    // The global ORAM cache covers the top of the global tree; the
    // partition's share is what remains below the partition level.
    p.cachedLevels =
        p.cachedLevels > shrink ? p.cachedLevels - shrink : 0;
    return p;
}

sdimm::SdimmTimingConfig
sdimmConfig(const SystemConfig &cfg, unsigned partitions)
{
    sdimm::SdimmTimingConfig scfg;
    scfg.perSdimm = partitionedTree(cfg, partitions);
    scfg.recursion = cfg.recursion;
    scfg.numSdimms = cfg.numSdimms();
    scfg.cpuChannels = cfg.cpuChannels;
    scfg.timing = cfg.timing;
    scfg.sdimmGeom = cfg.sdimmGeom;
    scfg.lowPower = cfg.lowPower;
    scfg.drainProb = cfg.drainProb;
    scfg.faultPlan = cfg.faultPlan;
    scfg.policy = cfg.degradationPolicy;
    return scfg;
}

} // namespace

std::unique_ptr<MemoryBackend>
buildBackend(const SystemConfig &cfg, std::uint64_t seed)
{
    switch (cfg.design) {
      case DesignPoint::NonSecure:
        return std::make_unique<oram::NonSecureBackend>(cfg.timing,
                                                        cfg.cpuGeom);
      case DesignPoint::PathOram: {
        // Plain Path ORAM: the whole PosMap lives on-chip, so every
        // LLC miss is exactly one accessORAM (opsForAccess == 1).
        oram::RecursionParams flat = cfg.recursion;
        flat.posmapLevels = 0;
        return std::make_unique<oram::FreecursiveBackend>(
            cfg.globalTree(), flat, cfg.timing, cfg.cpuGeom, seed);
      }
      case DesignPoint::Freecursive:
        return std::make_unique<oram::FreecursiveBackend>(
            cfg.globalTree(), cfg.recursion, cfg.timing, cfg.cpuGeom,
            seed);
      case DesignPoint::Indep2:
      case DesignPoint::Indep4:
        return std::make_unique<sdimm::IndependentBackend>(
            sdimmConfig(cfg, cfg.numSdimms()), seed);
      case DesignPoint::Split2:
      case DesignPoint::Split4:
        return std::make_unique<sdimm::SplitBackend>(
            sdimmConfig(cfg, 1), /*groups=*/1, seed);
      case DesignPoint::IndepSplit:
        return std::make_unique<sdimm::SplitBackend>(
            sdimmConfig(cfg, cfg.groups()), cfg.groups(), seed);
    }
    panic("unknown design point");
}

const char *
designName(DesignPoint design)
{
    switch (design) {
      case DesignPoint::NonSecure: return "NonSecure";
      case DesignPoint::PathOram: return "PathORAM";
      case DesignPoint::Freecursive: return "Freecursive";
      case DesignPoint::Indep2: return "INDEP-2";
      case DesignPoint::Split2: return "SPLIT-2";
      case DesignPoint::Indep4: return "INDEP-4";
      case DesignPoint::Split4: return "SPLIT-4";
      case DesignPoint::IndepSplit: return "INDEP-SPLIT";
    }
    return "?";
}

} // namespace secdimm::core
