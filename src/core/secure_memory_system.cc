#include "core/secure_memory_system.hh"

#include <cstring>

#include "fault/fault_injector.hh"
#include "util/bit_utils.hh"
#include "util/logging.hh"
#include "verify/channel_observer.hh"

namespace secdimm::core
{

namespace
{

/** Tree depth whose ~50%-utilized capacity covers @p blocks. */
unsigned
levelsForBlocks(std::uint64_t blocks, unsigned z)
{
    // capacity = z * 2^L / 2  =>  L = ceil(log2(2 * blocks / z)).
    unsigned levels = 2;
    while ((static_cast<std::uint64_t>(z) << levels) / 2 < blocks)
        ++levels;
    return levels;
}

} // namespace

SecureMemorySystem::SecureMemorySystem(const Options &options)
    : options_(options),
      audits_(verify::AuditSettings::fromEnv(options.audits))
{
    const std::uint64_t want_blocks =
        divCeil(options.capacityBytes, blockBytes);
    SD_ASSERT(want_blocks >= 1);

    oram::OramParams params;
    params.stashCapacity = options.stashCapacity;

    switch (options_.protocol) {
      case Protocol::PathOram: {
        params.levels = levelsForBlocks(want_blocks, params.bucketBlocks);
        pathOram_ = std::make_unique<oram::PathOram>(
            params, crypto::makeKey(0xdeed, options.seed),
            crypto::makeKey(0xfeed, options.seed * 3 + 1),
            options.seed);
        capacityBlocks_ = params.capacityBlocks();
        break;
      }
      case Protocol::Freecursive: {
        oram::RecursiveOram::Params rp;
        rp.data = params;
        rp.data.levels =
            levelsForBlocks(want_blocks, params.bucketBlocks);
        recursive_ = std::make_unique<oram::RecursiveOram>(
            rp, options.seed);
        capacityBlocks_ = recursive_->capacityBlocks();
        break;
      }
      case Protocol::Independent: {
        SD_ASSERT(isPowerOfTwo(options_.numSdimms));
        const std::uint64_t per_sdimm =
            divCeil(want_blocks, options_.numSdimms);
        params.levels =
            levelsForBlocks(per_sdimm, params.bucketBlocks);
        sdimm::IndependentOram::Params ip;
        ip.perSdimm = params;
        ip.numSdimms = options_.numSdimms;
        independent_ =
            std::make_unique<sdimm::IndependentOram>(ip, options.seed);
        capacityBlocks_ = independent_->capacityBlocks();
        break;
      }
      case Protocol::Split: {
        SD_ASSERT(blockBytes % options_.numSdimms == 0);
        params.levels = levelsForBlocks(want_blocks, params.bucketBlocks);
        sdimm::SplitOram::Params sp;
        sp.tree = params;
        sp.slices = options_.numSdimms;
        split_ = std::make_unique<sdimm::SplitOram>(sp, options.seed);
        capacityBlocks_ = split_->capacityBlocks();
        break;
      }
      case Protocol::IndepSplit: {
        SD_ASSERT(isPowerOfTwo(options_.numSdimms));
        SD_ASSERT(blockBytes % options_.slicesPerGroup == 0);
        const std::uint64_t per_group =
            divCeil(want_blocks, options_.numSdimms);
        params.levels =
            levelsForBlocks(per_group, params.bucketBlocks);
        sdimm::IndepSplitOram::Params cp;
        cp.perGroupTree = params;
        cp.groups = options_.numSdimms;
        cp.slicesPerGroup = options_.slicesPerGroup;
        indepSplit_ =
            std::make_unique<sdimm::IndepSplitOram>(cp, options.seed);
        capacityBlocks_ = indepSplit_->capacityBlocks();
        break;
      }
    }

    if (options_.faultPlan.enabled()) {
        injector_ =
            std::make_unique<fault::FaultInjector>(options_.faultPlan);
        switch (options_.protocol) {
          case Protocol::PathOram:
            pathOram_->setFaultInjector(injector_.get());
            break;
          case Protocol::Freecursive:
            recursive_->setFaultInjector(injector_.get());
            break;
          case Protocol::Independent:
            independent_->setFaultInjector(injector_.get(),
                                           options_.degradationPolicy);
            break;
          case Protocol::Split:
            split_->setFaultInjector(injector_.get());
            break;
          case Protocol::IndepSplit:
            indepSplit_->setFaultInjector(injector_.get(),
                                          options_.degradationPolicy);
            break;
        }
    }
}

SecureMemorySystem::~SecureMemorySystem() = default;

std::uint64_t
SecureMemorySystem::capacityBytes() const
{
    return capacityBlocks_ * blockBytes;
}

BlockData
SecureMemorySystem::accessBlock(Addr block_index, oram::OramOp op,
                                const BlockData *data)
{
    if (block_index >= capacityBlocks_) {
        fatal("SecureMemorySystem: block %llu out of range (capacity "
              "%llu blocks)",
              static_cast<unsigned long long>(block_index),
              static_cast<unsigned long long>(capacityBlocks_));
    }
    BlockData result{};
    switch (options_.protocol) {
      case Protocol::PathOram:
        result = pathOram_->access(block_index, op, data);
        break;
      case Protocol::Freecursive:
        result = recursive_->access(block_index, op, data);
        break;
      case Protocol::Independent:
        result = independent_->access(block_index, op, data);
        break;
      case Protocol::Split:
        result = split_->access(block_index, op, data);
        break;
      case Protocol::IndepSplit:
        result = indepSplit_->access(block_index, op, data);
        break;
    }
    if (audits_.enabled && ++accessesSinceAudit_ >= audits_.interval) {
        accessesSinceAudit_ = 0;
        const verify::AuditReport report = auditNow();
        ++auditsRun_;
        auditViolations_ += report.violations.size();
        if (!report.ok()) {
            fatal("SecureMemorySystem invariant audit failed: %s",
                  report.summary().c_str());
        }
    }
    return result;
}

BlockData
SecureMemorySystem::readBlock(Addr block_index)
{
    return accessBlock(block_index, oram::OramOp::Read, nullptr);
}

void
SecureMemorySystem::writeBlock(Addr block_index, const BlockData &data)
{
    accessBlock(block_index, oram::OramOp::Write, &data);
}

void
SecureMemorySystem::read(Addr byte_addr, void *out, std::size_t len)
{
    std::uint8_t *dst = static_cast<std::uint8_t *>(out);
    while (len > 0) {
        const Addr block = byte_addr / blockBytes;
        const std::size_t off = byte_addr % blockBytes;
        const std::size_t n = std::min(len, blockBytes - off);
        const BlockData b = readBlock(block);
        std::memcpy(dst, b.data() + off, n);
        dst += n;
        byte_addr += n;
        len -= n;
    }
}

void
SecureMemorySystem::write(Addr byte_addr, const void *data,
                          std::size_t len)
{
    const std::uint8_t *src = static_cast<const std::uint8_t *>(data);
    while (len > 0) {
        const Addr block = byte_addr / blockBytes;
        const std::size_t off = byte_addr % blockBytes;
        const std::size_t n = std::min(len, blockBytes - off);
        BlockData b{};
        if (off != 0 || n != blockBytes)
            b = readBlock(block); // Read-modify-write.
        std::memcpy(b.data() + off, src, n);
        writeBlock(block, b);
        src += n;
        byte_addr += n;
        len -= n;
    }
}

std::uint64_t
SecureMemorySystem::accessCount() const
{
    switch (options_.protocol) {
      case Protocol::PathOram:
        return pathOram_->stats().accesses +
               pathOram_->stats().dummyAccesses;
      case Protocol::Freecursive:
        return recursive_->stats().treeAccesses;
      case Protocol::Independent: {
        std::uint64_t total = 0;
        for (unsigned i = 0; i < independent_->numSdimms(); ++i)
            total += independent_->buffer(i).stats().accessOps;
        return total;
      }
      case Protocol::Split:
        return split_->stats().accesses + split_->stats().dummyAccesses;
      case Protocol::IndepSplit: {
        std::uint64_t total = 0;
        for (unsigned g = 0; g < indepSplit_->groups(); ++g) {
            total += indepSplit_->group(g).stats().accesses +
                     indepSplit_->group(g).stats().dummyAccesses;
        }
        return total;
      }
    }
    return 0;
}

verify::AuditReport
SecureMemorySystem::auditNow() const
{
    switch (options_.protocol) {
      case Protocol::PathOram:
        // Driven via access(): the internal PosMap is authoritative.
        return verify::auditPathOram(*pathOram_, /*check_posmap=*/true);
      case Protocol::Freecursive:
        return verify::auditRecursiveOram(*recursive_);
      case Protocol::Independent:
        return verify::auditIndependentOram(*independent_);
      case Protocol::Split:
        return verify::auditSplitOram(*split_, /*check_posmap=*/true);
      case Protocol::IndepSplit:
        return verify::auditIndepSplitOram(*indepSplit_);
    }
    return verify::AuditReport{};
}

unsigned
SecureMemorySystem::attachObserver(verify::ChannelObserver &observer)
{
    switch (options_.protocol) {
      case Protocol::PathOram:
        observer.attach(pathOram_->store());
        return 1;
      case Protocol::Freecursive: {
        const unsigned trees = recursive_->posmapLevels() + 1;
        for (unsigned t = 0; t < trees; ++t)
            observer.attach(recursive_->tree(t).store());
        return trees;
      }
      case Protocol::Independent:
      case Protocol::Split:
      case Protocol::IndepSplit:
        return 0; // Visible trace exposed via busTrace()/leafTrace().
    }
    return 0;
}

util::MetricsRegistry
SecureMemorySystem::metrics() const
{
    util::MetricsRegistry m;
    m.setCounter("core.accesses", accessCount());
    m.setCounter("core.capacity_blocks", capacityBlocks_);
    m.setCounter("core.audits_run", auditsRun_);
    m.setCounter("core.audit_violations", auditViolations_);
    switch (options_.protocol) {
      case Protocol::PathOram:
        pathOram_->exportMetrics(m, "oram.data");
        break;
      case Protocol::Freecursive:
        recursive_->exportMetrics(m, "oram");
        break;
      case Protocol::Independent:
        independent_->exportMetrics(m, "sdimm");
        break;
      case Protocol::Split:
        split_->exportMetrics(m, "sdimm.split");
        break;
      case Protocol::IndepSplit:
        indepSplit_->exportMetrics(m, "sdimm.indep_split");
        break;
    }
    // Aggregate crypto work across whichever backend is active (see
    // docs/METRICS.md "crypto.*").
    crypto::CryptoTotals ct;
    switch (options_.protocol) {
      case Protocol::PathOram:
        pathOram_->collectCrypto(ct);
        break;
      case Protocol::Freecursive:
        recursive_->collectCrypto(ct);
        break;
      case Protocol::Independent:
        independent_->collectCrypto(ct);
        break;
      case Protocol::Split:
        split_->collectCrypto(ct);
        break;
      case Protocol::IndepSplit:
        indepSplit_->collectCrypto(ct);
        break;
    }
    m.setGauge("crypto.impl_id",
               static_cast<double>(
                   static_cast<int>(crypto::activeAesImpl())));
    m.setCounter("crypto.aes_blocks", ct.aesBlocks);
    m.setCounter("crypto.ctr_bytes", ct.ctrBytes);
    m.setCounter("crypto.mac_tags", ct.macTags);
    m.setCounter("crypto.mac_batch_calls", ct.macBatchCalls);
    m.setCounter("crypto.mac_batch_tags", ct.macBatchTags);
    if (injector_)
        injector_->exportMetrics(m, "fault");
    return m;
}

bool
SecureMemorySystem::integrityOk() const
{
    switch (options_.protocol) {
      case Protocol::PathOram:
        return pathOram_->integrityOk();
      case Protocol::Freecursive:
        return recursive_->integrityOk();
      case Protocol::Independent:
        return independent_->integrityOk();
      case Protocol::Split:
        return split_->integrityOk();
      case Protocol::IndepSplit:
        return indepSplit_->integrityOk();
    }
    return false;
}

} // namespace secdimm::core
