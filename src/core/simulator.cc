#include "core/simulator.hh"

#include <cstdlib>

#include "fault/fault_injector.hh"
#include "oram/freecursive_backend.hh"
#include "oram/nonsecure_backend.hh"
#include "sdimm/independent_backend.hh"
#include "sdimm/split_backend.hh"
#include "verify/channel_observer.hh"

namespace secdimm::core
{

namespace
{

/** Energy of CPU-channel protocol traffic (no DRAM banks involved). */
double
linkEnergyNj(const SystemConfig &cfg, std::uint64_t lines)
{
    dram::PowerModel pm(cfg.timing, cfg.cpuGeom, /*on_dimm_io=*/false);
    return pm.ioEnergyPerBurstNj() * static_cast<double>(lines);
}

/** Collect design-specific metrics into @p result. */
void
collectBackendMetrics(const SystemConfig &cfg, MemoryBackend &backend,
                      Tick end, SimResult &result)
{
    util::MetricsRegistry &m = result.metrics;

    if (auto *ns = dynamic_cast<oram::NonSecureBackend *>(&backend)) {
        ns->dramSystem().finalizeStats(end);
        dram::PowerModel pm(cfg.timing, cfg.cpuGeom, false);
        for (unsigned c = 0; c < ns->dramSystem().channelCount(); ++c) {
            const auto &ch = ns->dramSystem().channel(c);
            result.energy += pm.compute(ch.stats(), ch.rankStates());
            ch.exportMetrics(m, "dram." + ch.name());
        }
        const auto agg = ns->dramSystem().aggregateStats();
        result.offDimmLines = agg.reads + agg.writes;
        return;
    }

    if (auto *fc = dynamic_cast<oram::FreecursiveBackend *>(&backend)) {
        fc->dramSystem().finalizeStats(end);
        dram::PowerModel pm(cfg.timing, cfg.cpuGeom, false);
        for (unsigned c = 0; c < fc->dramSystem().channelCount(); ++c) {
            const auto &ch = fc->dramSystem().channel(c);
            result.energy += pm.compute(ch.stats(), ch.rankStates());
            ch.exportMetrics(m, "dram." + ch.name());
        }
        result.offDimmLines = fc->traffic().channelLines;
        result.accessOrams = fc->traffic().accessOrams;
        result.avgOramsPerMiss =
            fc->recursion().stats().avgOramsPerRequest();
        m.setCounter("oram.access_orams", fc->traffic().accessOrams);
        m.setCounter("oram.channel_lines", fc->traffic().channelLines);
        m.setCounter("oram.requests", fc->traffic().requests);
        fc->recursion().exportMetrics(m, "oram.recursion");
        return;
    }

    if (auto *ind = dynamic_cast<sdimm::IndependentBackend *>(&backend)) {
        dram::PowerModel pm(cfg.timing, cfg.sdimmGeom,
                            /*on_dimm_io=*/true);
        for (unsigned i = 0; i < cfg.numSdimms(); ++i) {
            auto &ch = ind->executor(i).channel();
            ch.finalizeStats(end);
            result.energy += pm.compute(ch.stats(), ch.rankStates());
            result.accessOrams += ind->executor(i).opsExecuted();
            ch.exportMetrics(m, "dram." + ch.name());
            ind->executor(i).exportMetrics(
                m, "sdimm.s" + std::to_string(i));
        }
        result.offDimmLines = ind->offDimmLines();
        result.energy.ioNj +=
            linkEnergyNj(cfg, ind->offDimmLines());
        for (unsigned b = 0; b < ind->busCount(); ++b) {
            result.probes += ind->bus(b).stats().probes;
            ind->bus(b).exportMetrics(m,
                                      "sdimm.bus" + std::to_string(b));
        }
        result.avgOramsPerMiss =
            ind->recursion().stats().avgOramsPerRequest();
        m.setCounter("sdimm.drain_ops", ind->drainOps());
        ind->recursion().exportMetrics(m, "oram.recursion");
        if (const fault::FaultInjector *inj = ind->faultInjector()) {
            inj->exportMetrics(m, "fault");
            result.recoveryCycles = inj->recoveryCycles();
        }
        return;
    }

    if (auto *sp = dynamic_cast<sdimm::SplitBackend *>(&backend)) {
        dram::PowerModel pm(cfg.timing, cfg.sdimmGeom,
                            /*on_dimm_io=*/true);
        for (unsigned g = 0; g < sp->groupCount(); ++g) {
            auto &grp = sp->group(g);
            result.accessOrams += grp.opsExecuted();
            grp.exportMetrics(m, "sdimm.g" + std::to_string(g));
            for (unsigned s = 0; s < grp.sliceCount(); ++s) {
                auto &ch = grp.sliceChannel(s);
                ch.finalizeStats(end);
                result.energy +=
                    pm.compute(ch.stats(), ch.rankStates());
                ch.exportMetrics(m, "dram." + ch.name());
            }
        }
        result.offDimmLines = sp->offDimmLines();
        result.energy.ioNj += linkEnergyNj(cfg, sp->offDimmLines());
        for (unsigned b = 0; b < sp->busCount(); ++b) {
            result.probes += sp->bus(b).stats().probes;
            sp->bus(b).exportMetrics(m,
                                     "sdimm.bus" + std::to_string(b));
        }
        result.avgOramsPerMiss =
            sp->recursion().stats().avgOramsPerRequest();
        sp->recursion().exportMetrics(m, "oram.recursion");
        return;
    }
}

/** Export the run-level counters every figure is built from. */
void
exportCoreMetrics(SimResult &r)
{
    util::MetricsRegistry &m = r.metrics;
    m.setCounter("core.cycles", r.core.cycles);
    m.setCounter("core.instructions", r.core.instructions);
    m.setCounter("core.l1_misses", r.core.l1Misses);
    m.setCounter("core.llc_misses", r.core.llcMisses);
    m.setCounter("core.llc_writebacks", r.core.llcWritebacks);
    m.setGauge("core.ipc", r.core.ipc());
    m.setGauge("core.cycles_per_miss", r.cyclesPerMiss());
    m.setCounter("core.off_dimm_lines", r.offDimmLines);
    m.setCounter("core.access_orams", r.accessOrams);
    m.setCounter("core.probes", r.probes);
    m.setCounter("core.recovery_cycles", r.recoveryCycles);
    m.setGauge("core.orams_per_miss", r.avgOramsPerMiss);
    m.setGauge("core.energy.act_pre_nj", r.energy.actPreNj);
    m.setGauge("core.energy.rd_wr_nj", r.energy.rdWrNj);
    m.setGauge("core.energy.io_nj", r.energy.ioNj);
    m.setGauge("core.energy.background_nj", r.energy.backgroundNj);
    m.setGauge("core.energy.refresh_nj", r.energy.refreshNj);
    m.setGauge("core.energy.total_nj", r.energy.totalNj());
}

} // namespace

SimResult
runWorkload(const SystemConfig &config,
            const trace::WorkloadProfile &profile,
            const SimLengths &lengths, std::uint64_t seed,
            verify::ChannelObserver *observer)
{
    trace::TraceGenerator gen(profile, seed ^ 0xabcdef);
    return runWorkloadFromSource(config, gen, lengths, seed, observer);
}

SimResult
runWorkloadFromSource(const SystemConfig &config,
                      trace::RecordSource &source,
                      const SimLengths &lengths, std::uint64_t seed,
                      verify::ChannelObserver *observer)
{
    auto backend = buildBackend(config, seed);
    if (observer != nullptr)
        verify::attachToBackend(*backend, *observer);

    trace::CacheModel llc(2ULL << 20, 8); // Table II: 2MB, 8-way.
    trace::CoreParams core_params;
    trace::CoreModel core(core_params, llc, *backend);

    SimResult result;
    result.core = core.run(source, lengths.warmupRecords,
                           lengths.measureRecords);
    collectBackendMetrics(config, *backend, result.core.cycles, result);
    exportCoreMetrics(result);
    return result;
}

SimLengths
benchLengths(std::uint64_t default_measure, std::uint64_t default_warmup)
{
    SimLengths lengths;
    lengths.measureRecords = default_measure;
    lengths.warmupRecords = default_warmup;
    if (const char *v = std::getenv("SDIMM_BENCH_ACCESSES"))
        lengths.measureRecords = std::strtoull(v, nullptr, 0);
    if (const char *v = std::getenv("SDIMM_BENCH_WARMUP"))
        lengths.warmupRecords = std::strtoull(v, nullptr, 0);
    return lengths;
}

} // namespace secdimm::core
