#include "core/simulator.hh"

#include <cstdlib>

#include "oram/freecursive_backend.hh"
#include "oram/nonsecure_backend.hh"
#include "sdimm/independent_backend.hh"
#include "sdimm/split_backend.hh"

namespace secdimm::core
{

namespace
{

/** Energy of CPU-channel protocol traffic (no DRAM banks involved). */
double
linkEnergyNj(const SystemConfig &cfg, std::uint64_t lines)
{
    dram::PowerModel pm(cfg.timing, cfg.cpuGeom, /*on_dimm_io=*/false);
    return pm.ioEnergyPerBurstNj() * static_cast<double>(lines);
}

/** Collect design-specific metrics into @p result. */
void
collectBackendMetrics(const SystemConfig &cfg, MemoryBackend &backend,
                      Tick end, SimResult &result)
{
    if (auto *ns = dynamic_cast<oram::NonSecureBackend *>(&backend)) {
        ns->dramSystem().finalizeStats(end);
        dram::PowerModel pm(cfg.timing, cfg.cpuGeom, false);
        for (unsigned c = 0; c < ns->dramSystem().channelCount(); ++c) {
            const auto &ch = ns->dramSystem().channel(c);
            result.energy += pm.compute(ch.stats(), ch.rankStates());
        }
        const auto agg = ns->dramSystem().aggregateStats();
        result.offDimmLines = agg.reads + agg.writes;
        return;
    }

    if (auto *fc = dynamic_cast<oram::FreecursiveBackend *>(&backend)) {
        fc->dramSystem().finalizeStats(end);
        dram::PowerModel pm(cfg.timing, cfg.cpuGeom, false);
        for (unsigned c = 0; c < fc->dramSystem().channelCount(); ++c) {
            const auto &ch = fc->dramSystem().channel(c);
            result.energy += pm.compute(ch.stats(), ch.rankStates());
        }
        result.offDimmLines = fc->traffic().channelLines;
        result.accessOrams = fc->traffic().accessOrams;
        result.avgOramsPerMiss =
            fc->recursion().stats().avgOramsPerRequest();
        return;
    }

    if (auto *ind = dynamic_cast<sdimm::IndependentBackend *>(&backend)) {
        dram::PowerModel pm(cfg.timing, cfg.sdimmGeom,
                            /*on_dimm_io=*/true);
        for (unsigned i = 0; i < cfg.numSdimms(); ++i) {
            auto &ch = ind->executor(i).channel();
            ch.finalizeStats(end);
            result.energy += pm.compute(ch.stats(), ch.rankStates());
            result.accessOrams += ind->executor(i).opsExecuted();
        }
        result.offDimmLines = ind->offDimmLines();
        result.energy.ioNj +=
            linkEnergyNj(cfg, ind->offDimmLines());
        for (unsigned b = 0; b < ind->busCount(); ++b)
            result.probes += ind->bus(b).stats().probes;
        result.avgOramsPerMiss =
            ind->recursion().stats().avgOramsPerRequest();
        return;
    }

    if (auto *sp = dynamic_cast<sdimm::SplitBackend *>(&backend)) {
        dram::PowerModel pm(cfg.timing, cfg.sdimmGeom,
                            /*on_dimm_io=*/true);
        for (unsigned g = 0; g < sp->groupCount(); ++g) {
            auto &grp = sp->group(g);
            result.accessOrams += grp.opsExecuted();
            for (unsigned s = 0; s < grp.sliceCount(); ++s) {
                auto &ch = grp.sliceChannel(s);
                ch.finalizeStats(end);
                result.energy +=
                    pm.compute(ch.stats(), ch.rankStates());
            }
        }
        result.offDimmLines = sp->offDimmLines();
        result.energy.ioNj += linkEnergyNj(cfg, sp->offDimmLines());
        for (unsigned b = 0; b < sp->busCount(); ++b)
            result.probes += sp->bus(b).stats().probes;
        result.avgOramsPerMiss =
            sp->recursion().stats().avgOramsPerRequest();
        return;
    }
}

} // namespace

SimResult
runWorkload(const SystemConfig &config,
            const trace::WorkloadProfile &profile,
            const SimLengths &lengths, std::uint64_t seed)
{
    auto backend = buildBackend(config, seed);

    trace::CacheModel llc(2ULL << 20, 8); // Table II: 2MB, 8-way.
    trace::CoreParams core_params;
    trace::CoreModel core(core_params, llc, *backend);
    trace::TraceGenerator gen(profile, seed ^ 0xabcdef);

    SimResult result;
    result.core = core.run(gen, lengths.warmupRecords,
                           lengths.measureRecords);
    collectBackendMetrics(config, *backend, result.core.cycles, result);
    return result;
}

SimLengths
benchLengths(std::uint64_t default_measure, std::uint64_t default_warmup)
{
    SimLengths lengths;
    lengths.measureRecords = default_measure;
    lengths.warmupRecords = default_warmup;
    if (const char *v = std::getenv("SDIMM_BENCH_ACCESSES"))
        lengths.measureRecords = std::strtoull(v, nullptr, 0);
    if (const char *v = std::getenv("SDIMM_BENCH_WARMUP"))
        lengths.warmupRecords = std::strtoull(v, nullptr, 0);
    return lengths;
}

} // namespace secdimm::core
