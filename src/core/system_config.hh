/**
 * @file
 * The design points of the paper's evaluation (Figure 7 plus the
 * baselines), Table II parameter defaults, and a factory building the
 * matching MemoryBackend.
 */

#ifndef SECUREDIMM_CORE_SYSTEM_CONFIG_HH
#define SECUREDIMM_CORE_SYSTEM_CONFIG_HH

#include <memory>
#include <string>

#include "fault/fault_plan.hh"
#include "fault/fault_types.hh"
#include "oram/oram_params.hh"
#include "trace/memory_backend.hh"

#include "dram/timing.hh"

namespace secdimm::core
{

/** Evaluated memory-system organizations. */
enum class DesignPoint
{
    NonSecure,    ///< Plain DRAM (Figure 6 / 10 reference).
    PathOram,     ///< CPU-side Path ORAM (no recursion) baseline.
    Freecursive,  ///< CPU-side Freecursive ORAM baseline [4].
    Indep2,       ///< Figure 7a: 1 channel, 2 SDIMMs, Independent.
    Split2,       ///< Figure 7b: 1 channel, 2-way Split.
    Indep4,       ///< Figure 7c: 2 channels, 4 SDIMMs, Independent.
    Split4,       ///< Figure 7d: 2 channels, 4-way Split.
    IndepSplit,   ///< Figure 7e: 2x Independent groups of 2-way Split.
};

/** Full description of one simulated system. */
struct SystemConfig
{
    DesignPoint design = DesignPoint::Freecursive;
    unsigned cpuChannels = 1;

    /** Global ORAM tree depth (leaves at this level). */
    unsigned treeLevels = 24;

    /** Levels cached in controller/buffer SRAM (0 = no ORAM cache). */
    unsigned cachedLevels = 7;

    oram::RecursionParams recursion;

    dram::TimingParams timing;
    dram::Geometry cpuGeom;    ///< Geometry of CPU-attached DRAM.
    dram::Geometry sdimmGeom;  ///< Geometry inside one SDIMM.

    bool lowPower = true;      ///< Section III-E for SDIMM designs.
    double drainProb = 0.1;    ///< See SdimmTimingConfig::drainProb.

    /** Fault campaign forwarded to the backend (Independent designs
     *  model it; an empty plan changes nothing anywhere). */
    fault::FaultPlan faultPlan;
    fault::DegradationPolicy degradationPolicy =
        fault::DegradationPolicy::Degraded;

    /** SDIMMs (or Split slices) in this design. */
    unsigned numSdimms() const;

    /** Independent partitions (Split groups) in this design. */
    unsigned groups() const;

    /** Global tree parameters. */
    oram::OramParams globalTree() const;
};

/**
 * Canonical configuration for a design point with Table II
 * parameters.
 * @param tree_levels     global ORAM depth (Figure 11 sweeps this)
 * @param cached_levels   ORAM-cache depth (0 disables)
 */
SystemConfig makeConfig(DesignPoint design, unsigned tree_levels = 24,
                        unsigned cached_levels = 7);

/** Construct the timing backend for a configuration. */
std::unique_ptr<MemoryBackend> buildBackend(const SystemConfig &config,
                                            std::uint64_t seed);

/** Display name matching the paper's figures. */
const char *designName(DesignPoint design);

} // namespace secdimm::core

#endif // SECUREDIMM_CORE_SYSTEM_CONFIG_HH
