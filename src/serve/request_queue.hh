/**
 * @file
 * Bounded multi-producer / single-consumer queue feeding one shard
 * worker of the sharded oblivious memory service (sharded_memory.hh).
 *
 * Producers block while the queue is full -- that is the service's
 * backpressure: a client can never run further ahead of a shard than
 * the queue capacity.  The single consumer drains up to `max` items
 * per wakeup (request batching), amortizing one condition-variable
 * round trip over a whole batch.
 *
 * The queue also keeps its own observability counters (depth
 * high-water, producer stalls, nanoseconds spent stalled) because the
 * interesting congestion events happen under the queue's own lock,
 * where the service cannot see them.
 */

#ifndef SECUREDIMM_SERVE_REQUEST_QUEUE_HH
#define SECUREDIMM_SERVE_REQUEST_QUEUE_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

namespace secdimm::serve
{

/** Bounded blocking MPSC queue with batch pop and close semantics. */
template <typename T>
class BoundedMpscQueue
{
  public:
    explicit BoundedMpscQueue(std::size_t capacity)
        : capacity_(capacity == 0 ? 1 : capacity)
    {
    }

    BoundedMpscQueue(const BoundedMpscQueue &) = delete;
    BoundedMpscQueue &operator=(const BoundedMpscQueue &) = delete;

    /**
     * Enqueue @p item, blocking while the queue is full.  Returns
     * false (and drops the item) once the queue is closed.
     */
    bool
    push(T item)
    {
        std::unique_lock<std::mutex> lk(mu_);
        if (q_.size() >= capacity_ && !closed_) {
            ++pushStalls_;
            const auto t0 = std::chrono::steady_clock::now();
            notFull_.wait(lk, [&] {
                return q_.size() < capacity_ || closed_;
            });
            stallNs_ += static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count());
        }
        if (closed_)
            return false;
        q_.push_back(std::move(item));
        if (q_.size() > highWater_)
            highWater_ = q_.size();
        lk.unlock();
        notEmpty_.notify_one();
        return true;
    }

    /**
     * Move up to @p max items into @p out (appended), blocking until
     * at least one item is available or the queue is closed.  Returns
     * the number of items delivered; 0 means closed *and* drained, so
     * the consumer can exit.  Items already queued at close() time
     * are still delivered -- shutdown never drops accepted work.
     */
    std::size_t
    popBatch(std::vector<T> &out, std::size_t max)
    {
        std::unique_lock<std::mutex> lk(mu_);
        notEmpty_.wait(lk, [&] { return !q_.empty() || closed_; });
        std::size_t n = 0;
        while (n < max && !q_.empty()) {
            out.push_back(std::move(q_.front()));
            q_.pop_front();
            ++n;
        }
        lk.unlock();
        if (n > 0)
            notFull_.notify_all();
        return n;
    }

    /** Reject future pushes; queued items remain poppable. */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lk(mu_);
            closed_ = true;
        }
        notEmpty_.notify_all();
        notFull_.notify_all();
    }

    bool
    closed() const
    {
        std::lock_guard<std::mutex> lk(mu_);
        return closed_;
    }

    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lk(mu_);
        return q_.size();
    }

    std::size_t capacity() const { return capacity_; }

    /** Deepest the queue has ever been. */
    std::size_t
    highWater() const
    {
        std::lock_guard<std::mutex> lk(mu_);
        return highWater_;
    }

    /** Number of pushes that had to wait for space. */
    std::uint64_t
    pushStalls() const
    {
        std::lock_guard<std::mutex> lk(mu_);
        return pushStalls_;
    }

    /** Wall-clock nanoseconds producers spent blocked on space. */
    std::uint64_t
    stallNs() const
    {
        std::lock_guard<std::mutex> lk(mu_);
        return stallNs_;
    }

  private:
    mutable std::mutex mu_;
    std::condition_variable notFull_;
    std::condition_variable notEmpty_;
    std::deque<T> q_;
    const std::size_t capacity_;
    bool closed_ = false;
    std::size_t highWater_ = 0;
    std::uint64_t pushStalls_ = 0;
    std::uint64_t stallNs_ = 0;
};

} // namespace secdimm::serve

#endif // SECUREDIMM_SERVE_REQUEST_QUEUE_HH
