#include "serve/sharded_memory.hh"

#include <cstring>
#include <stdexcept>
#include <utility>

#include "fault/fault_injector.hh"
#include "util/bit_utils.hh"
#include "util/logging.hh"

namespace secdimm::serve
{

const char *
shardHealthName(ShardHealth h)
{
    switch (h) {
    case ShardHealth::Healthy:
        return "healthy";
    case ShardHealth::Degraded:
        return "degraded";
    case ShardHealth::Failed:
        return "failed";
    }
    return "unknown";
}

core::SecureMemorySystem::Options
ShardedSecureMemory::shardOptions(const Options &options, unsigned i)
{
    core::SecureMemorySystem::Options so = options.shard;
    const unsigned n = options.numShards == 0 ? 1 : options.numShards;
    so.capacityBytes = divCeil(options.shard.capacityBytes, n);
    so.seed = options.shard.seed * 1000003 + i;
    if (i < options.shardFaultPlans.size())
        so.faultPlan = options.shardFaultPlans[i];
    return so;
}

ShardedSecureMemory::ShardedSecureMemory(const Options &options)
    : numShards_(options.numShards == 0 ? 1 : options.numShards),
      maxBatch_(options.maxBatch == 0 ? 1 : options.maxBatch)
{
    shards_.reserve(numShards_);
    queues_.reserve(numShards_);
    std::uint64_t min_local_blocks = 0;
    for (unsigned i = 0; i < numShards_; ++i) {
        shards_.push_back(std::make_unique<core::SecureMemorySystem>(
            shardOptions(options, i)));
        const std::uint64_t local =
            shards_.back()->capacityBytes() / blockBytes;
        min_local_blocks =
            i == 0 ? local : std::min(min_local_blocks, local);
        queues_.push_back(std::make_unique<BoundedMpscQueue<Request>>(
            options.queueCapacity));
        const std::string s = "serve.s" + std::to_string(i);
        accessesName_.push_back(s + ".accesses");
        batchSizeName_.push_back(s + ".batch_size");
        queueDepthName_.push_back(s + ".queue_depth");
    }
    // Uniform interleaving: every shard must be able to hold block
    // indices 0..min-1, so the global space is min * N blocks.
    capacityBlocks_ = min_local_blocks * numShards_;

    health_ = std::make_unique<std::atomic<int>[]>(numShards_);
    for (unsigned i = 0; i < numShards_; ++i)
        health_[i].store(static_cast<int>(ShardHealth::Healthy),
                         std::memory_order_relaxed);

    workers_.reserve(numShards_);
    for (unsigned i = 0; i < numShards_; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ShardedSecureMemory::~ShardedSecureMemory()
{
    shutdown();
}

void
ShardedSecureMemory::workerLoop(unsigned shard)
{
    core::SecureMemorySystem &mem = *shards_[shard];
    BoundedMpscQueue<Request> &q = *queues_[shard];
    std::vector<Request> batch;
    batch.reserve(maxBatch_);
    bool failed = false;
    for (;;) {
        batch.clear();
        const std::size_t n = q.popBatch(batch, maxBatch_);
        if (n == 0)
            return; // Closed and fully drained.
        verify::ScheduleRecorder *rec =
            scheduleRecorder_.load(std::memory_order_acquire);
        for (Request &r : batch) {
            /*
             * Graceful shard degradation: once this shard's
             * SecureMemorySystem reaches FailStop, the worker keeps
             * draining its queue (producers blocked on backpressure
             * unblock, shutdown still joins) but every request --
             * including the one that tripped the failure -- resolves
             * with the typed ShardFailedError instead of fabricated
             * zeros.  Healthy shards never notice.
             */
            if (!failed) {
                try {
                    if (r.write) {
                        mem.writeBlock(r.local, r.data);
                        failed = !mem.integrityOk();
                        if (!failed)
                            r.writeDone.set_value();
                    } else {
                        const BlockData d = mem.readBlock(r.local);
                        failed = !mem.integrityOk();
                        if (!failed)
                            r.readDone.set_value(d);
                    }
                } catch (...) {
                    failed = true;
                }
            }
            if (failed) {
                auto err = std::make_exception_ptr(
                    ShardFailedError(shard));
                if (r.write)
                    r.writeDone.set_exception(err);
                else
                    r.readDone.set_exception(err);
            }
            // A failed shard performs no protocol access for the
            // request, so there is nothing for the schedule
            // recorder's adversary to see.
            if (rec != nullptr && !failed)
                rec->record(shard, r.write);
        }
        publishHealth(shard, failed);
        live_.incCounter(accessesName_[shard], n);
        live_.sampleHistogram(batchSizeName_[shard], n);
        noteCompleted(n);
    }
}

void
ShardedSecureMemory::publishHealth(unsigned shard, bool failed)
{
    ShardHealth h = ShardHealth::Healthy;
    if (failed) {
        h = ShardHealth::Failed;
    } else {
        const fault::FaultInjector *inj =
            shards_[shard]->faultInjector();
        if (inj != nullptr && (inj->quarantinedUnits() > 0 ||
                               inj->unrecoveredTotal() > 0 ||
                               inj->retiredUnits() > 0))
            h = ShardHealth::Degraded;
    }
    health_[shard].store(static_cast<int>(h),
                         std::memory_order_release);
}

void
ShardedSecureMemory::noteSubmitted(unsigned shard)
{
    inflight_.fetch_add(1, std::memory_order_relaxed);
    // Depth at submission time: an approximation (other producers
    // race), but the histogram only needs the distribution shape.
    live_.sampleHistogram(queueDepthName_[shard],
                          queues_[shard]->size());
}

void
ShardedSecureMemory::noteCompleted(std::size_t n)
{
    if (inflight_.fetch_sub(n, std::memory_order_acq_rel) ==
        static_cast<std::uint64_t>(n)) {
        std::lock_guard<std::mutex> lk(idleMu_);
        idleCv_.notify_all();
    }
}

std::future<BlockData>
ShardedSecureMemory::submitRead(Addr block_index)
{
    if (block_index >= capacityBlocks_) {
        fatal("ShardedSecureMemory: block %llu out of range "
              "(capacity %llu blocks)",
              static_cast<unsigned long long>(block_index),
              static_cast<unsigned long long>(capacityBlocks_));
    }
    const unsigned shard = shardOf(block_index);
    Request r;
    r.local = localBlock(block_index);
    r.write = false;
    std::future<BlockData> f = r.readDone.get_future();
    noteSubmitted(shard);
    if (!queues_[shard]->push(std::move(r))) {
        noteCompleted(1);
        throw std::runtime_error(
            "ShardedSecureMemory: submitRead after shutdown");
    }
    return f;
}

std::future<void>
ShardedSecureMemory::submitWrite(Addr block_index, const BlockData &data)
{
    if (block_index >= capacityBlocks_) {
        fatal("ShardedSecureMemory: block %llu out of range "
              "(capacity %llu blocks)",
              static_cast<unsigned long long>(block_index),
              static_cast<unsigned long long>(capacityBlocks_));
    }
    const unsigned shard = shardOf(block_index);
    Request r;
    r.local = localBlock(block_index);
    r.write = true;
    r.data = data;
    std::future<void> f = r.writeDone.get_future();
    noteSubmitted(shard);
    if (!queues_[shard]->push(std::move(r))) {
        noteCompleted(1);
        throw std::runtime_error(
            "ShardedSecureMemory: submitWrite after shutdown");
    }
    return f;
}

BlockData
ShardedSecureMemory::readBlock(Addr block_index)
{
    return submitRead(block_index).get();
}

void
ShardedSecureMemory::writeBlock(Addr block_index, const BlockData &data)
{
    submitWrite(block_index, data).get();
}

BlockData
ShardedSecureMemory::readBlockFor(Addr block_index,
                                  std::chrono::milliseconds deadline)
{
    std::future<BlockData> f = submitRead(block_index);
    if (f.wait_for(deadline) != std::future_status::ready)
        throw RequestTimeoutError(shardOf(block_index), deadline);
    return f.get();
}

void
ShardedSecureMemory::writeBlockFor(Addr block_index,
                                   const BlockData &data,
                                   std::chrono::milliseconds deadline)
{
    std::future<void> f = submitWrite(block_index, data);
    if (f.wait_for(deadline) != std::future_status::ready)
        throw RequestTimeoutError(shardOf(block_index), deadline);
    f.get();
}

void
ShardedSecureMemory::read(Addr byte_addr, void *out, std::size_t len)
{
    struct Segment
    {
        std::uint8_t *dst;
        std::size_t off;
        std::size_t n;
        std::future<BlockData> f;
    };
    std::vector<Segment> segs;
    std::uint8_t *dst = static_cast<std::uint8_t *>(out);
    while (len > 0) {
        const Addr block = byte_addr / blockBytes;
        const std::size_t off = byte_addr % blockBytes;
        const std::size_t n = std::min(len, blockBytes - off);
        // Adjacent blocks land on different shards, so these reads
        // proceed in parallel across the shard workers.
        segs.push_back(Segment{dst, off, n, submitRead(block)});
        dst += n;
        byte_addr += n;
        len -= n;
    }
    for (Segment &s : segs) {
        const BlockData b = s.f.get();
        std::memcpy(s.dst, b.data() + s.off, s.n);
    }
}

void
ShardedSecureMemory::write(Addr byte_addr, const void *data,
                           std::size_t len)
{
    const std::uint8_t *src = static_cast<const std::uint8_t *>(data);
    std::vector<std::future<void>> done;
    while (len > 0) {
        const Addr block = byte_addr / blockBytes;
        const std::size_t off = byte_addr % blockBytes;
        const std::size_t n = std::min(len, blockBytes - off);
        BlockData b{};
        if (off != 0 || n != blockBytes)
            b = readBlock(block); // Read-modify-write.
        std::memcpy(b.data() + off, src, n);
        // FIFO per shard: this write lands after the RMW read above
        // and before any later op this thread issues to the block.
        done.push_back(submitWrite(block, b));
        src += n;
        byte_addr += n;
        len -= n;
    }
    for (auto &f : done)
        f.get();
}

void
ShardedSecureMemory::drain()
{
    std::unique_lock<std::mutex> lk(idleMu_);
    idleCv_.wait(lk, [&] {
        return inflight_.load(std::memory_order_acquire) == 0;
    });
}

void
ShardedSecureMemory::shutdown()
{
    std::lock_guard<std::mutex> lk(shutdownMu_);
    if (shutdown_.exchange(true))
        return;
    for (auto &q : queues_)
        q->close(); // Queued requests still complete (popBatch drains).
    for (auto &w : workers_) {
        if (w.joinable())
            w.join();
    }
}

util::MetricsRegistry
ShardedSecureMemory::metrics()
{
    drain();
    util::MetricsRegistry out;
    out.setCounter("serve.shards", numShards_);
    out.setCounter("serve.max_batch", maxBatch_);
    out.setCounter("serve.queue_capacity", queues_[0]->capacity());
    std::uint64_t total = 0;
    unsigned healthCounts[3] = {0, 0, 0};
    unsigned byzShards = 0;
    for (unsigned i = 0; i < numShards_; ++i) {
        const std::string s = "serve.s" + std::to_string(i);
        const std::uint64_t acc = live_.counter(accessesName_[i]);
        total += acc;
        out.setCounter(accessesName_[i], acc);
        if (const auto *h = live_.findHistogram(batchSizeName_[i]))
            out.histogram(batchSizeName_[i]).merge(*h);
        if (const auto *h = live_.findHistogram(queueDepthName_[i]))
            out.histogram(queueDepthName_[i]).merge(*h);
        out.setGauge(s + ".queue_high_water",
                     static_cast<double>(queues_[i]->highWater()));
        out.setCounter(s + ".enqueue_stalls",
                       queues_[i]->pushStalls());
        out.setCounter(s + ".stall_ns", queues_[i]->stallNs());
        const ShardHealth h = shardHealth(i);
        out.setGauge(s + ".health", static_cast<double>(h));
        ++healthCounts[static_cast<int>(h)];
        const fault::FaultInjector *inj = shards_[i]->faultInjector();
        if (inj != nullptr && inj->convictedUnits() > 0)
            ++byzShards;
        out.merge(shards_[i]->metrics());
    }
    out.setCounter("serve.requests", total);
    out.setGauge("serve.shard_health.healthy", healthCounts[0]);
    out.setGauge("serve.shard_health.degraded", healthCounts[1]);
    out.setGauge("serve.shard_health.failed", healthCounts[2]);
    // Gated: quiet fleets keep their exact pre-byzantine surface.
    if (byzShards > 0)
        out.setGauge("serve.shard_health.byzantine", byzShards);
    return out;
}

util::MetricsRegistry
ShardedSecureMemory::shardMetrics(unsigned shard)
{
    drain();
    return shards_.at(shard)->metrics();
}

std::uint64_t
ShardedSecureMemory::accessCount()
{
    drain();
    std::uint64_t total = 0;
    for (auto &s : shards_)
        total += s->accessCount();
    return total;
}

bool
ShardedSecureMemory::integrityOk()
{
    drain();
    for (auto &s : shards_) {
        if (!s->integrityOk())
            return false;
    }
    return true;
}

unsigned
ShardedSecureMemory::attachObserver(unsigned shard,
                                    verify::ChannelObserver &observer)
{
    return shards_.at(shard)->attachObserver(observer);
}

} // namespace secdimm::serve
