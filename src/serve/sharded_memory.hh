/**
 * @file
 * Sharded multi-threaded oblivious memory service: the block-address
 * space is interleaved across N independent core::SecureMemorySystem
 * shards (shard = block mod N), each driven by a dedicated worker
 * thread pulling from a bounded MPSC request queue.
 *
 * The partitioning argument mirrors the paper's Independent ORAM,
 * which splits the tree by top leaf bits across SDIMMs: each shard is
 * a complete, independently seeded ORAM, so its externally visible
 * command schedule depends only on the sequence of requests *it*
 * serves -- obliviousness stays shard-local (the per-shard trace is
 * checked by tests/serve), and a fixed seed plus a fixed per-shard
 * request order reproduces a bit-identical per-shard schedule
 * regardless of how the worker threads interleave in wall-clock time.
 *
 * Two frontends:
 *  - synchronous facade: readBlock/writeBlock plus byte-granular
 *    read/write that may span shards (adjacent blocks live on
 *    different shards, so multi-block spans fan out in parallel);
 *  - asynchronous futures: submitRead/submitWrite enqueue and return
 *    immediately (or block briefly on a full queue -- that is the
 *    backpressure), completing on the shard worker.
 *
 * Batching: each worker drains up to Options::maxBatch requests per
 * wakeup; maxBatch == 1 disables batching.  See docs/SHARDING.md.
 */

#ifndef SECUREDIMM_SERVE_SHARDED_MEMORY_HH
#define SECUREDIMM_SERVE_SHARDED_MEMORY_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/secure_memory_system.hh"
#include "serve/request_queue.hh"
#include "util/metrics.hh"

#include "verify/leak_meter.hh"

namespace secdimm::verify
{
class ChannelObserver;
}

namespace secdimm::serve
{

/**
 * Typed per-request error of a dead shard: a shard whose
 * SecureMemorySystem reached FailStop keeps draining its queue, but
 * every affected future resolves with this exception instead of
 * fabricated zeros -- and instead of taking the process (and the
 * other shards) down.  The sync facade rethrows it from get().
 */
class ShardFailedError : public std::runtime_error
{
  public:
    explicit ShardFailedError(unsigned shard)
        : std::runtime_error("shard " + std::to_string(shard) +
                             " failed (FailStop): request not served"),
          shard_(shard)
    {
    }

    unsigned shard() const { return shard_; }

  private:
    unsigned shard_;
};

/**
 * Typed per-request deadline error: the caller bounded its wait
 * (readBlockFor/writeBlockFor) and the shard worker did not complete
 * the request in time.  Unlike ShardFailedError this says nothing
 * about the shard's health -- the request is still queued and WILL
 * complete (accepted work is never dropped); only the caller's wait
 * was cut short.
 */
class RequestTimeoutError : public std::runtime_error
{
  public:
    RequestTimeoutError(unsigned shard,
                        std::chrono::milliseconds deadline)
        : std::runtime_error("shard " + std::to_string(shard) +
                             ": request not served within " +
                             std::to_string(deadline.count()) + " ms"),
          shard_(shard)
    {
    }

    unsigned shard() const { return shard_; }

  private:
    unsigned shard_;
};

/**
 * Point-in-time health of one shard, exported as the
 * `serve.sN.health` / `serve.shard_health.*` gauges:
 *  - Healthy:  integrity holds, nothing quarantined;
 *  - Degraded: still serving, but units were quarantined or faults
 *              went unrecovered (capacity/latency degraded);
 *  - Failed:   FailStop reached; requests resolve ShardFailedError.
 */
enum class ShardHealth : int
{
    Healthy = 0,
    Degraded = 1,
    Failed = 2,
};

const char *shardHealthName(ShardHealth h);

/** Byte-addressable oblivious memory served by N shard threads. */
class ShardedSecureMemory
{
  public:
    struct Options
    {
        /**
         * Template for every shard: protocol, stash size, fault plan,
         * audits.  `shard.capacityBytes` is the TOTAL requested
         * capacity; each shard gets a 1/numShards slice (rounded up to
         * its tree size).  `shard.seed` is the base seed; shard i runs
         * on `seed * 1000003 + i` (the per-component derivation idiom
         * of util/rng.hh), so shards draw decorrelated streams while
         * one top-level seed still pins the whole service.
         */
        core::SecureMemorySystem::Options shard;
        unsigned numShards = 4;
        /** Per-shard queue bound: producers block when it is full. */
        std::size_t queueCapacity = 64;
        /** Max requests a worker drains per wakeup; 1 = no batching. */
        unsigned maxBatch = 8;
        /**
         * Per-shard fault-plan overrides (chaos campaigns): shard i
         * runs shardFaultPlans[i] instead of shard.faultPlan when the
         * vector has an entry for it.  Shorter-than-numShards vectors
         * leave the remaining shards on the template plan.
         */
        std::vector<fault::FaultPlan> shardFaultPlans;
    };

    explicit ShardedSecureMemory(const Options &options);
    ~ShardedSecureMemory();

    ShardedSecureMemory(const ShardedSecureMemory &) = delete;
    ShardedSecureMemory &operator=(const ShardedSecureMemory &) = delete;

    /* ---- topology ------------------------------------------------ */
    unsigned numShards() const { return numShards_; }
    std::uint64_t capacityBlocks() const { return capacityBlocks_; }
    std::uint64_t capacityBytes() const
    {
        return capacityBlocks_ * blockBytes;
    }
    unsigned shardOf(Addr block) const
    {
        return static_cast<unsigned>(block % numShards_);
    }
    Addr localBlock(Addr block) const { return block / numShards_; }

    /** The exact per-shard Options the constructor builds for shard
     *  @p i -- exposed so tests can replay a single-threaded baseline
     *  with identical seeds and capacities. */
    static core::SecureMemorySystem::Options
    shardOptions(const Options &options, unsigned i);

    /* ---- asynchronous API ---------------------------------------- */
    /** Enqueue a block read; the future resolves on the shard worker.
     *  Blocks only while the target shard's queue is full. */
    std::future<BlockData> submitRead(Addr block_index);

    /** Enqueue a block write; the future resolves once durable in the
     *  shard's ORAM. */
    std::future<void> submitWrite(Addr block_index,
                                  const BlockData &data);

    /* ---- synchronous facade -------------------------------------- */
    BlockData readBlock(Addr block_index);
    void writeBlock(Addr block_index, const BlockData &data);

    /** readBlock with a bounded wait: throws RequestTimeoutError if
     *  the shard worker has not completed the request within
     *  @p deadline.  The request itself is NOT cancelled. */
    BlockData readBlockFor(Addr block_index,
                           std::chrono::milliseconds deadline);

    /** writeBlock with a bounded wait (see readBlockFor). */
    void writeBlockFor(Addr block_index, const BlockData &data,
                       std::chrono::milliseconds deadline);

    /** Byte-granular read; spans blocks (and therefore shards) as
     *  needed, fanning the per-block reads out concurrently. */
    void read(Addr byte_addr, void *out, std::size_t len);

    /** Byte-granular write (read-modify-write at block granularity
     *  for partial blocks). */
    void write(Addr byte_addr, const void *data, std::size_t len);

    /* ---- lifecycle ----------------------------------------------- */
    /**
     * Wait until every accepted request has completed and all workers
     * are idle.  Callers must have stopped submitting; with
     * concurrent producers the wait is satisfied on any transient
     * empty instant.
     */
    void drain();

    /**
     * Stop accepting requests, finish everything already queued, and
     * join the workers.  Idempotent; the destructor calls it.  Every
     * future obtained before shutdown() still completes -- accepted
     * work is never dropped.
     */
    void shutdown();

    /* ---- introspection ------------------------------------------- */
    /**
     * Aggregated snapshot: `serve.*` service counters (per-shard
     * access counts, batch-size and queue-depth histograms, queue
     * high-water, producer stalls) plus the merge of every shard's
     * SecureMemorySystem registry (counters add, histograms merge;
     * see docs/METRICS.md).  Drains first, so it must not race with
     * active producers.
     */
    util::MetricsRegistry metrics();

    /** One shard's own registry (drains first). */
    util::MetricsRegistry shardMetrics(unsigned shard);

    /** Sum of all shards' accessORAM counts (drains first). */
    std::uint64_t accessCount();

    /** All shards' integrity checks pass (drains first). */
    bool integrityOk();

    /**
     * Health of one shard, as last published by its worker (no
     * drain; safe from any thread).  A Failed shard stays in the
     * rotation -- its queue keeps draining, its requests resolve
     * ShardFailedError -- so one dead shard never blocks the rest.
     */
    ShardHealth shardHealth(unsigned shard) const
    {
        return static_cast<ShardHealth>(
            health_[shard].load(std::memory_order_acquire));
    }

    /**
     * Attach a passive trace observer to shard @p shard's externally
     * visible channel (see SecureMemorySystem::attachObserver).
     * Attach before submitting traffic; returns attach-point count.
     */
    unsigned attachObserver(unsigned shard,
                            verify::ChannelObserver &observer);

    /**
     * Observer hook for the INTERLEAVED schedule: every request a
     * worker completes is recorded as (shard, is-write) in global
     * completion order, which is exactly what an adversary watching
     * the service frontend sees of the multi-threaded execution.  The
     * concurrency-sound checker (verify::compareSchedules) compares
     * two such recordings.  Install before submitting traffic and
     * keep the recorder alive until shutdown(); nullptr detaches.
     */
    void
    setScheduleRecorder(verify::ScheduleRecorder *recorder)
    {
        scheduleRecorder_.store(recorder, std::memory_order_release);
    }

  private:
    struct Request
    {
        Addr local = 0;
        bool write = false;
        BlockData data{};
        std::promise<BlockData> readDone;
        std::promise<void> writeDone;
    };

    void workerLoop(unsigned shard);
    void noteSubmitted(unsigned shard);
    void noteCompleted(std::size_t n);

    /** Re-derive and publish shard @p shard's health gauge. */
    void publishHealth(unsigned shard, bool failed);

    unsigned numShards_;
    unsigned maxBatch_;
    std::uint64_t capacityBlocks_ = 0;
    std::vector<std::unique_ptr<core::SecureMemorySystem>> shards_;
    std::vector<std::unique_ptr<BoundedMpscQueue<Request>>> queues_;
    std::vector<std::thread> workers_;

    /** Worker-published ShardHealth per shard (atomics are not
     *  movable, hence the unique_ptr array). */
    std::unique_ptr<std::atomic<int>[]> health_;

    /** serve.sN.* metric names, precomputed per shard. */
    std::vector<std::string> accessesName_;
    std::vector<std::string> batchSizeName_;
    std::vector<std::string> queueDepthName_;

    /** Shared worker-written registry -- the thread-safe path of
     *  util::MetricsRegistry is load-bearing here. */
    util::MetricsRegistry live_;

    std::atomic<std::uint64_t> inflight_{0};
    std::mutex idleMu_;
    std::condition_variable idleCv_;

    std::atomic<verify::ScheduleRecorder *> scheduleRecorder_{nullptr};

    std::atomic<bool> shutdown_{false};
    std::mutex shutdownMu_;
};

} // namespace secdimm::serve

#endif // SECUREDIMM_SERVE_SHARDED_MEMORY_HH
