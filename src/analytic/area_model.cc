#include "analytic/area_model.hh"

namespace secdimm::analytic
{

double
sramAreaMm2(std::uint64_t bytes)
{
    // Anchored at the paper's CACTI 6.5 data point: 8 KB < 0.42 mm^2
    // at 32 nm.  Small arrays are dominated by periphery, so apply a
    // fixed floor plus a linear per-byte term fit through the anchor.
    constexpr double floor_mm2 = 0.10;
    constexpr double per_byte_mm2 = (0.42 - floor_mm2) / 8192.0;
    if (bytes == 0)
        return 0.0;
    return floor_mm2 + per_byte_mm2 * static_cast<double>(bytes);
}

SecureBufferArea
secureBufferArea(std::uint64_t buffer_bytes)
{
    SecureBufferArea a;
    a.bufferMm2 = sramAreaMm2(buffer_bytes);
    return a;
}

} // namespace secdimm::analytic
