/**
 * @file
 * The M/M/1/K transfer-queue model of Section IV-C / Figure 13b:
 * with drain probability p the utilization is
 * rho = 0.25 / (0.25 + p) and the full-queue probability is
 * P_K = rho^K (1 - rho) / (1 - rho^(K+1)).
 */

#ifndef SECUREDIMM_ANALYTIC_MM1K_HH
#define SECUREDIMM_ANALYTIC_MM1K_HH

#include <vector>

namespace secdimm::analytic
{

/** Utilization for arrival rate 0.25 and drain probability p. */
double mm1kUtilization(double drain_prob, double arrival_rate = 0.25);

/** Blocking (overflow) probability of an M/M/1/K queue. */
double mm1kBlockingProbability(double rho, unsigned k_slots);

/**
 * Figure 13b convenience: overflow probability of the transfer queue
 * with @p k_slots entries when draining with probability
 * @p drain_prob.
 */
double transferQueueOverflow(double drain_prob, unsigned k_slots);

/** Steady-state occupancy distribution (size k_slots + 1). */
std::vector<double> mm1kOccupancy(double rho, unsigned k_slots);

/** Mean queue length in steady state. */
double mm1kMeanOccupancy(double rho, unsigned k_slots);

} // namespace secdimm::analytic

#endif // SECUREDIMM_ANALYTIC_MM1K_HH
